module chainchaos

go 1.22
