GO ?= go

.PHONY: build test check bench bench-json race obs loadtest

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-test the packages that own goroutines: the parallel substrate and its
# users, plus the network layer (scanner retries, server accept loops, the
# faults clock) that runs goroutines against real sockets.
RACE_PKGS = ./internal/pipeline/... ./internal/difftest/... ./internal/parallel/... ./internal/experiments/... ./internal/study/... ./internal/population/... ./internal/faults/... ./internal/tlsserve/... ./internal/tlsscan/... ./internal/aia/... ./internal/obs/... ./internal/verdictcache/... ./internal/dist/... ./internal/chainserved/... ./internal/divfuzz/... ./internal/ledger/... ./internal/grid/...

race:
	$(GO) test -race $(RACE_PKGS)

# obs race-tests the metrics registry alone (counter/histogram hammering from
# parallel workers, snapshot determinism) and runs the instrumentation
# overhead guard.
obs:
	$(GO) test -race -count=1 ./internal/obs/...
	$(GO) test -run xxx -bench ObsOverheadGuard -benchtime 1x .

# check is the pre-commit gate: vet everything, race-test the concurrent core.
check:
	$(GO) vet ./...
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-json writes BENCH_<pr>.json (PR=pr7 by default) by driving cmd/grid
# over the committed spec in scripts/grids/<pr>.json. PR=pr6 reproduces the
# dedup-off/on and 10M-site record; PR=pr7 the distributed scaling table
# (outputs byte-identical to the single-process baseline); PR=pr8 the
# chainserved sustained-load + graceful-drain record; PR=pr9 the
# divergence-fuzzer campaign record (worker-invariant manifest, ledgered
# divergence records, scenario replay); PR=pr10 the Merkle-ledger overhead
# record (off vs on, audited roots, <5% wall gate).
bench-json:
	bash scripts/bench_json.sh

# loadtest sustains QPS (default 200) for DURATION seconds (default 5)
# against an in-process chainserved and writes the latency record to OUT.
loadtest:
	bash scripts/loadtest.sh
