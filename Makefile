GO ?= go

.PHONY: build test check bench bench-json race obs loadtest

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-test the packages that own goroutines: the parallel substrate and its
# users, plus the network layer (scanner retries, server accept loops, the
# faults clock) that runs goroutines against real sockets.
RACE_PKGS = ./internal/pipeline/... ./internal/difftest/... ./internal/parallel/... ./internal/experiments/... ./internal/study/... ./internal/population/... ./internal/faults/... ./internal/tlsserve/... ./internal/tlsscan/... ./internal/aia/... ./internal/obs/... ./internal/verdictcache/... ./internal/dist/... ./internal/chainserved/... ./internal/divfuzz/...

race:
	$(GO) test -race $(RACE_PKGS)

# obs race-tests the metrics registry alone (counter/histogram hammering from
# parallel workers, snapshot determinism) and runs the instrumentation
# overhead guard.
obs:
	$(GO) test -race -count=1 ./internal/obs/...
	$(GO) test -run xxx -bench ObsOverheadGuard -benchtime 1x .

# check is the pre-commit gate: vet everything, race-test the concurrent core.
check:
	$(GO) vet ./...
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-json writes BENCH_<pr>.json (PR=pr7 by default): the distributed
# coordinator/worker scaling table — single-process baseline vs -distribute
# 1/2/4/8 walls, each output verified byte-identical, with lease counters and
# fleet peak RSS. PR=pr6 reproduces the dedup-off/on and 10M-site record;
# PR=pr8 the chainserved sustained-load + graceful-drain record; PR=pr9 the
# divergence-fuzzer campaign record (mutants/s, bins, worker-invariant
# manifest, scenario replay through a streamed study).
bench-json:
	bash scripts/bench_json.sh

# loadtest sustains QPS (default 200) for DURATION seconds (default 5)
# against an in-process chainserved and writes the latency record to OUT.
loadtest:
	bash scripts/loadtest.sh
