GO ?= go

.PHONY: build test check bench race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-test the packages that own goroutines (the parallel substrate and its
# users); population and study gained worker pools too, so they ride along.
race:
	$(GO) test -race ./internal/difftest/... ./internal/parallel/... ./internal/experiments/... ./internal/study/... ./internal/population/...

# check is the pre-commit gate: vet everything, race-test the concurrent core.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/difftest/... ./internal/parallel/... ./internal/experiments/... ./internal/study/... ./internal/population/...

bench:
	$(GO) test -run xxx -bench . -benchmem .
