GO ?= go

.PHONY: build test check bench bench-json race obs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-test the packages that own goroutines: the parallel substrate and its
# users, plus the network layer (scanner retries, server accept loops, the
# faults clock) that runs goroutines against real sockets.
RACE_PKGS = ./internal/pipeline/... ./internal/difftest/... ./internal/parallel/... ./internal/experiments/... ./internal/study/... ./internal/population/... ./internal/faults/... ./internal/tlsserve/... ./internal/tlsscan/... ./internal/aia/... ./internal/obs/... ./internal/verdictcache/...

race:
	$(GO) test -race $(RACE_PKGS)

# obs race-tests the metrics registry alone (counter/histogram hammering from
# parallel workers, snapshot determinism) and runs the instrumentation
# overhead guard.
obs:
	$(GO) test -race -count=1 ./internal/obs/...
	$(GO) test -run xxx -bench ObsOverheadGuard -benchtime 1x .

# check is the pre-commit gate: vet everything, race-test the concurrent core.
check:
	$(GO) vet ./...
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-json writes BENCH_pr6.json: harness wall and allocs/op from the Go
# benchmarks, dedup-off vs dedup-on study walls at paper-realistic chain
# reuse, and the cache hit rate plus peak RSS from the runs' -metrics JSON.
bench-json:
	bash scripts/bench_json.sh
