package chainchaos_test

// End-to-end integration: the paper's whole pipeline on real sockets and
// real certificates. A miniature web population is deployed through the
// HTTP-server models onto loopback TLS listeners, scanned from two
// "vantages" ZGrab2-style, graded for structural compliance, differentially
// tested across the eight client models, repaired with the §6 fixer, and
// re-served — after which every client accepts every chain.

import (
	"context"
	"testing"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/chainfix"
	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/httpserver"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/tlsscan"
	"chainchaos/internal/tlsserve"
	"chainchaos/internal/topo"
)

// miniSite is one deployment in the integration population.
type miniSite struct {
	domain        string
	leaf          *certgen.Leaf
	wire          []*certmodel.Certificate
	wantCompliant bool
	wantDefect    string // informal label for error messages
}

// buildMiniPopulation creates one real PKI and five deployments spanning the
// paper's defect taxonomy, pushed through actual server deployment models.
func buildMiniPopulation(t *testing.T) ([]*miniSite, *rootstore.Store, *aia.Repository) {
	t.Helper()
	root, err := certgen.NewRoot("Integration Root")
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := root.NewIntermediate("Integration CA 2")
	if err != nil {
		t.Fatal(err)
	}
	const aiaURI = "http://repo.integration.example/ca2.der"
	ca1, err := ca2.NewIntermediate("Integration CA 1", certgen.WithAIA(aiaURI))
	if err != nil {
		t.Fatal(err)
	}
	stray, err := certgen.NewRoot("Integration Stray")
	if err != nil {
		t.Fatal(err)
	}
	repo := aia.NewRepository()
	repo.Put(aiaURI, ca2.Cert)
	roots := rootstore.NewWith("integration", root.Cert)

	mkLeaf := func(domain string) *certgen.Leaf {
		leaf, err := ca1.NewLeaf(domain, certgen.WithAIA("http://repo.integration.example/ca1.der"))
		if err != nil {
			t.Fatal(err)
		}
		return leaf
	}
	repoPutCA1 := func() { repo.Put("http://repo.integration.example/ca1.der", ca1.Cert) }
	repoPutCA1()

	deploy := func(model httpserver.Model, leaf *certgen.Leaf, chainFile []*certmodel.Certificate) []*certmodel.Certificate {
		// Split-scheme servers reject a Fullchain input outright, so hand
		// each model only the files its scheme actually reads.
		in := httpserver.ConfigInput{PrivateKeyFor: leaf.Cert}
		if model.Scheme == httpserver.SchemeSplit {
			in.CertFile = []*certmodel.Certificate{leaf.Cert}
			in.ChainFile = chainFile
		} else {
			in.Fullchain = append([]*certmodel.Certificate{leaf.Cert}, chainFile...)
		}
		wire, err := model.Deploy(in)
		if err != nil {
			t.Fatalf("deploy on %s: %v", model.Name, err)
		}
		return wire
	}

	var sites []*miniSite
	// 1. A compliant Nginx deployment.
	l1 := mkLeaf("good.int.example")
	sites = append(sites, &miniSite{
		domain: "good.int.example", leaf: l1,
		wire:          deploy(httpserver.Nginx(), l1, []*certmodel.Certificate{ca1.Cert, ca2.Cert}),
		wantCompliant: true,
	})
	// 2. Reversed bundle merged verbatim (the GoGetSSL story).
	l2 := mkLeaf("reversed.int.example")
	sites = append(sites, &miniSite{
		domain: "reversed.int.example", leaf: l2,
		wire:       deploy(httpserver.Nginx(), l2, []*certmodel.Certificate{root.Cert, ca2.Cert, ca1.Cert}),
		wantDefect: "reversed",
	})
	// 3. Duplicate leaf via Apache's split files.
	l3 := mkLeaf("duplicate.int.example")
	sites = append(sites, &miniSite{
		domain: "duplicate.int.example", leaf: l3,
		wire:       deploy(httpserver.ApacheOld(), l3, []*certmodel.Certificate{l3.Cert, ca1.Cert, ca2.Cert}),
		wantDefect: "duplicate leaf",
	})
	// 4. Missing intermediate (AIA-recoverable).
	l4 := mkLeaf("incomplete.int.example")
	sites = append(sites, &miniSite{
		domain: "incomplete.int.example", leaf: l4,
		wire:       deploy(httpserver.Nginx(), l4, []*certmodel.Certificate{ca1.Cert}),
		wantDefect: "incomplete",
	})
	// 5. An irrelevant stray root appended.
	l5 := mkLeaf("irrelevant.int.example")
	sites = append(sites, &miniSite{
		domain: "irrelevant.int.example", leaf: l5,
		wire:       deploy(httpserver.AWSELB(), l5, []*certmodel.Certificate{ca1.Cert, ca2.Cert, stray.Cert}),
		wantDefect: "irrelevant certificate",
	})
	return sites, roots, repo
}

func TestEndToEndPipeline(t *testing.T) {
	sites, roots, repo := buildMiniPopulation(t)

	// Serve everything over real TLS.
	farm := tlsserve.NewFarm()
	defer farm.Close()
	var targets []tlsscan.Target
	for _, s := range sites {
		srv, err := farm.Add(tlsserve.Config{List: s.wire, Key: s.leaf.Key, Domain: s.domain})
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, tlsscan.Target{Addr: srv.Addr(), Domain: s.domain})
	}

	// Scan from two vantages and merge, like the paper's US/AU pair.
	scanner := &tlsscan.Scanner{Timeout: 3 * time.Second, Concurrency: 4}
	merged := tlsscan.MergeVantages(
		scanner.ScanAll(context.Background(), targets),
		scanner.ScanAll(context.Background(), targets),
	)

	analyzer := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{Roots: roots, Fetcher: repo}}
	fixer := &chainfix.Fixer{Roots: roots, Fetcher: repo}

	for _, s := range sites {
		results := merged[s.domain]
		if len(results) != 1 {
			t.Fatalf("%s: %d merged captures, want 1", s.domain, len(results))
		}
		captured := results[0].List

		// The wire preserved the deployment bit for bit.
		if len(captured) != len(s.wire) {
			t.Fatalf("%s: captured %d certs, deployed %d", s.domain, len(captured), len(s.wire))
		}
		for i := range captured {
			if !captured[i].Equal(s.wire[i]) {
				t.Errorf("%s: wire position %d differs", s.domain, i)
			}
		}

		// Compliance grading matches the injected defect.
		rep := analyzer.Analyze(s.domain, topo.Build(captured))
		if rep.Compliant() != s.wantCompliant {
			t.Errorf("%s: compliant=%v, want %v (%s)", s.domain, rep.Compliant(), s.wantCompliant, s.wantDefect)
		}
		if s.wantCompliant {
			continue
		}

		// Differential testing: at least one client model must diverge
		// from another on defective chains OR all handle it (duplicates,
		// irrelevant certs are harmless to every model).
		verdicts := map[string]bool{}
		for _, p := range clients.All() {
			b := &pathbuild.Builder{
				Policy: p.Policy, Roots: roots, Fetcher: repo,
				Cache: rootstore.New("cache"), Now: certgen.Reference,
			}
			verdicts[p.Name] = b.Build(captured, s.domain).OK()
		}
		switch s.wantDefect {
		case "reversed":
			if verdicts["MbedTLS"] {
				t.Errorf("%s: MbedTLS accepted a reversed chain", s.domain)
			}
			if !verdicts["Chrome"] || !verdicts["OpenSSL"] {
				t.Errorf("%s: reordering clients should accept (%v)", s.domain, verdicts)
			}
		case "incomplete":
			if verdicts["OpenSSL"] || verdicts["GnuTLS"] {
				t.Errorf("%s: AIA-less libraries accepted an incomplete chain", s.domain)
			}
			if !verdicts["CryptoAPI"] || !verdicts["Chrome"] {
				t.Errorf("%s: AIA clients should recover (%v)", s.domain, verdicts)
			}
		}

		// Repair, re-serve, re-scan: the fixed deployment must be
		// compliant on the wire and accepted by every client model.
		fixed, err := fixer.Fix(captured, s.domain)
		if err != nil {
			t.Fatalf("%s: fix: %v", s.domain, err)
		}
		srv, err := farm.Add(tlsserve.Config{List: fixed.List, Key: s.leaf.Key, Domain: s.domain})
		if err != nil {
			t.Fatal(err)
		}
		res := scanner.Scan(context.Background(), tlsscan.Target{Addr: srv.Addr(), Domain: s.domain})
		if res.Err != nil {
			t.Fatalf("%s: rescan: %v", s.domain, res.Err)
		}
		rep2 := analyzer.Analyze(s.domain, topo.Build(res.List))
		if !rep2.Compliant() {
			t.Errorf("%s: repaired deployment still non-compliant", s.domain)
		}
		for _, p := range clients.All() {
			b := &pathbuild.Builder{
				Policy: p.Policy, Roots: roots, Fetcher: repo,
				Cache: rootstore.New("cache"), Now: certgen.Reference,
			}
			if !b.Build(res.List, s.domain).OK() {
				t.Errorf("%s: %s rejected the repaired chain", s.domain, p.Name)
			}
		}
	}
}
