// Package chainchaos is a from-scratch reproduction of "Chaos in the Chain:
// Evaluate Deployment and Construction Compliance of Web PKI Certificate
// Chain" (IMC 2025): a measurement and testing toolkit for X.509 certificate
// chain deployment (server side) and certificate path construction (client
// side).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); the executables under cmd/ and the runnable walkthroughs under
// examples/ are the public surface. bench_test.go in this directory holds
// one benchmark per paper table and figure plus ablations of the design
// choices called out in DESIGN.md.
package chainchaos
