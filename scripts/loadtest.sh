#!/usr/bin/env bash
# loadtest.sh — sustained-rate load test against chainserved.
#
# Default: in-process mode — the Go driver (cmd/chainserved/loadtest_test.go)
# starts a server on a loopback socket and sustains QPS for DURATION seconds,
# asserting zero failed requests and reporting p50/p95/p99 from the service's
# own obs histograms.
#
# External mode: point TARGET at a running daemon and PEM_DIR at a fixture
# directory (chainserved -exemplars DIR) to drive a real process instead —
# scripts/bench_json.sh PR=pr8 does exactly that.
#
# Knobs (env): QPS (default 200), DURATION seconds (default 5),
# OUT (default loadtest.json), TARGET (e.g. http://127.0.0.1:8080), PEM_DIR.
set -euo pipefail
cd "$(dirname "$0")/.."

QPS=${QPS:-200}
DURATION=${DURATION:-5}
OUT=${OUT:-loadtest.json}

LOAD_QPS="$QPS" LOAD_SECONDS="$DURATION" LOAD_OUT="$OUT" \
LOAD_TARGET="${TARGET:-}" LOAD_PEM_DIR="${PEM_DIR:-}" \
  go test ./cmd/chainserved -run 'TestLoadSustained$' -count=1 -v

echo "loadtest: wrote $OUT" >&2
