#!/usr/bin/env bash
# bench_json.sh — emits BENCH_<pr>.json, the PR performance record.
#
# Modes (env PR, default pr7):
#
#   PR=pr6  the PR 6 record:
#     * differential-harness wall and allocs/op (Go benchmark, -benchmem)
#     * 100k-site study wall, dedup off vs on, at paper-realistic chain reuse
#       (the off run pays the full physical cost per site; the on run pays it
#       per distinct chain) — the two JSONL outputs are verified byte-identical
#     * 10M-site dedup study under GOMEMLIMIT=64MiB: wall, peak RSS, hit rate
#
#   PR=pr7  the PR 7 record: distributed coordinator/worker scaling —
#     single-process 100k-site dedup study as the baseline, then the same
#     study under -distribute 1/2/4/8, each output verified byte-identical
#     to the baseline, with wall, fleet peak RSS, and lease counters per
#     fleet size. Speedup is bounded by the host's core count: on a 1-core
#     box the table measures distribution overhead, not parallelism.
#
#   PR=pr8  the PR 8 record: the chainserved daemon under sustained load —
#     a real daemon process serving the exemplar fixture set is driven at
#     LOAD_QPS for LOAD_SECONDS by scripts/loadtest.sh's Go driver (zero
#     failed requests required), then SIGTERM-drained; the record carries
#     the achieved qps, the verdict-endpoint p50/p95/p99 from the daemon's
#     own histograms, the cache hit counts, and the drain accounting
#     (admitted == completed, i.e. zero dropped in flight).
#
#   PR=pr9  the PR 9 record: the coverage-guided divergence fuzzer —
#     a fixed-seed campaign (FUZZ_GENS generations × FUZZ_MUTANTS mutants
#     over FUZZ_DOMAINS seed chains), with wall, mutants/s, corpus size,
#     divergence bins, and the novel-scenario count; the manifest is
#     verified byte-identical between -workers 1 and -workers 8, and the
#     emitted scenarios are replayed through a streamed study run.
#
# Knobs (env): PR (default pr7), OUT (default BENCH_<pr>.json),
# STUDY_SITES (default 100000), BIG_SITES (default 10000000, pr6 only),
# REUSE (default 0.9995), POOL (default 3000),
# WORKER_COUNTS (default "1 2 4 8", pr7 only),
# LOAD_QPS (default 300) and LOAD_SECONDS (default 10, pr8 only),
# FUZZ_GENS (default 8), FUZZ_MUTANTS (default 256) and
# FUZZ_DOMAINS (default 48, pr9 only).
set -euo pipefail
cd "$(dirname "$0")/.."

PR=${PR:-pr7}
OUT=${OUT:-BENCH_${PR}.json}
REUSE=${REUSE:-0.9995}
POOL=${POOL:-3000}
STUDY_SITES=${STUDY_SITES:-100000}
BIG_SITES=${BIG_SITES:-10000000}
WORKER_COUNTS=${WORKER_COUNTS:-1 2 4 8}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

now_ms() { date +%s%3N; }

go build -o "$TMP/study" ./cmd/study

bench_pr6() {
  echo "bench-json: harness benchmark" >&2
  go test -run xxx -bench 'BenchmarkDifferentialHarness2k$' -benchtime 2x -benchmem . >"$TMP/bench.txt"
  HARNESS_NS=$(awk '/^BenchmarkDifferentialHarness2k/ {print $3; exit}' "$TMP/bench.txt")
  HARNESS_ALLOCS=$(awk '/^BenchmarkDifferentialHarness2k/ {print $7; exit}' "$TMP/bench.txt")

  echo "bench-json: ${STUDY_SITES}-site study, dedup off (full physical cost per site)" >&2
  t0=$(now_ms)
  GOMEMLIMIT=64MiB "$TMP/study" -sites "$STUDY_SITES" -vantages 1 -stream \
    -reuse "$REUSE" -distinct "$POOL" \
    -out "$TMP/off.jsonl" -metrics "$TMP/off.json" >/dev/null
  OFF_MS=$(($(now_ms) - t0))

  echo "bench-json: ${STUDY_SITES}-site study, dedup on" >&2
  t0=$(now_ms)
  GOMEMLIMIT=64MiB "$TMP/study" -sites "$STUDY_SITES" -vantages 1 -stream -dedup \
    -reuse "$REUSE" -distinct "$POOL" \
    -out "$TMP/on.jsonl" -metrics "$TMP/on.json" >/dev/null
  ON_MS=$(($(now_ms) - t0))

  cmp -s "$TMP/off.jsonl" "$TMP/on.jsonl" || {
    echo "bench-json: dedup on/off JSONL streams differ — determinism broken" >&2
    exit 1
  }

  echo "bench-json: ${BIG_SITES}-site study, dedup on, GOMEMLIMIT=64MiB" >&2
  t0=$(now_ms)
  GOMEMLIMIT=64MiB "$TMP/study" -sites "$BIG_SITES" -vantages 1 -stream -dedup \
    -reuse "$REUSE" -distinct "$POOL" \
    -out /dev/null -metrics "$TMP/big.json" >/dev/null
  BIG_MS=$(($(now_ms) - t0))

  jq -e ".counters[\"study.grade.items\"] == $BIG_SITES" "$TMP/big.json" >/dev/null || {
    echo "bench-json: 10M run graded fewer than $BIG_SITES sites" >&2
    exit 1
  }

  jq -n \
    --argjson harness_ns "${HARNESS_NS:-0}" \
    --argjson harness_allocs "${HARNESS_ALLOCS:-0}" \
    --argjson sites "$STUDY_SITES" --argjson big_sites "$BIG_SITES" \
    --argjson reuse "$REUSE" --argjson pool "$POOL" \
    --argjson off_ms "$OFF_MS" --argjson on_ms "$ON_MS" --argjson big_ms "$BIG_MS" \
    --slurpfile on "$TMP/on.json" --slurpfile big "$TMP/big.json" \
    '
    def cache(m): {
      hits: m.counters["study.vcache.hits"],
      misses: m.counters["study.vcache.misses"],
      hit_rate: (m.counters["study.vcache.hits"] /
                 (m.counters["study.vcache.hits"] + m.counters["study.vcache.misses"]))
    };
    {
      harness_2k: { ns_per_op: $harness_ns, allocs_per_op: $harness_allocs },
      study_100k: {
        sites: $sites, reuse: $reuse, pool: $pool, vantages: 1,
        dedup_off_wall_ms: $off_ms,
        dedup_on_wall_ms: $on_ms,
        speedup: ($off_ms / $on_ms),
        output_identical: true,
        cache: cache($on[0]),
        max_rss_kb: $on[0].gauges["proc.max_rss_kb"]
      },
      study_10m: {
        sites: $big_sites, reuse: $reuse, pool: $pool, vantages: 1,
        gomemlimit: "64MiB",
        wall_ms: $big_ms,
        cache: cache($big[0]),
        max_rss_kb: $big[0].gauges["proc.max_rss_kb"]
      }
    }' >"$OUT"
}

bench_pr7() {
  echo "bench-json: ${STUDY_SITES}-site dedup study, single-process baseline" >&2
  t0=$(now_ms)
  "$TMP/study" -sites "$STUDY_SITES" -vantages 1 -stream -dedup \
    -reuse "$REUSE" -distinct "$POOL" \
    -out "$TMP/base.jsonl" -metrics "$TMP/base.json" >/dev/null
  BASE_MS=$(($(now_ms) - t0))

  # Two sweeps: default leases (span/(8·W) — fine-grained redo window, but
  # under -dedup every lease re-deploys and re-scans the distinct-chain pool
  # it encounters) and one-lease-per-worker (-dist-lease sites/W — the pool
  # is paid once per worker, the redo unit is the whole range).
  : >"$TMP/rows.jsonl"
  for MODE in auto coarse; do
    for W in $WORKER_COUNTS; do
      LEASE=0
      [ "$MODE" = coarse ] && LEASE=$((STUDY_SITES / W))
      echo "bench-json: ${STUDY_SITES}-site dedup study, -distribute $W -dist-lease $LEASE" >&2
      t0=$(now_ms)
      "$TMP/study" -sites "$STUDY_SITES" -vantages 1 -dedup \
        -reuse "$REUSE" -distinct "$POOL" -distribute "$W" -dist-lease "$LEASE" \
        -out "$TMP/w$W.jsonl" -metrics "$TMP/w$W.json" >/dev/null
      W_MS=$(($(now_ms) - t0))
      cmp -s "$TMP/base.jsonl" "$TMP/w$W.jsonl" || {
        echo "bench-json: -distribute $W JSONL differs from single-process — determinism broken" >&2
        exit 1
      }
      jq -n --argjson w "$W" --argjson ms "$W_MS" --argjson base "$BASE_MS" \
        --argjson lease "$LEASE" \
        --slurpfile m "$TMP/w$W.json" '
        {
          workers: $w,
          lease_size: (if $lease == 0 then "auto" else $lease end),
          wall_ms: $ms,
          speedup_vs_single: ($base / $ms),
          output_identical: true,
          lease_grants: $m[0].counters["dist.lease_grants"],
          lease_reassigned: ($m[0].counters["dist.lease_reassigned"] // 0),
          fleet_max_rss_kb: $m[0].gauges["proc.fleet_max_rss_kb"]
        }' >>"$TMP/rows.jsonl"
    done
  done

  jq -n \
    --argjson sites "$STUDY_SITES" \
    --argjson reuse "$REUSE" --argjson pool "$POOL" \
    --argjson base_ms "$BASE_MS" --argjson cores "$(nproc)" \
    --slurpfile rows "$TMP/rows.jsonl" \
    '{
      study_distributed: {
        sites: $sites, reuse: $reuse, pool: $pool, vantages: 1, dedup: true,
        host_cores: $cores,
        single_process_wall_ms: $base_ms,
        fleets: $rows
      }
    }' >"$OUT"
}

bench_pr8() {
  LOAD_QPS=${LOAD_QPS:-300}
  LOAD_SECONDS=${LOAD_SECONDS:-10}

  go build -o "$TMP/chainserved" ./cmd/chainserved
  "$TMP/chainserved" -exemplars "$TMP/fixtures" 2>/dev/null

  echo "bench-json: starting chainserved daemon" >&2
  "$TMP/chainserved" -listen 127.0.0.1:0 -roots "$TMP/fixtures/roots.pem" \
    -reference-time -metrics "$TMP/served.json" 2>"$TMP/daemon.log" &
  DAEMON=$!
  ADDR=
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*serving on http://##p' "$TMP/daemon.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "bench-json: daemon never came up" >&2; exit 1; }

  echo "bench-json: sustaining ${LOAD_QPS} qps for ${LOAD_SECONDS}s against http://$ADDR" >&2
  TARGET="http://$ADDR" PEM_DIR="$TMP/fixtures" \
    QPS="$LOAD_QPS" DURATION="$LOAD_SECONDS" OUT="$TMP/load.json" \
    scripts/loadtest.sh >&2

  echo "bench-json: SIGTERM drain" >&2
  kill -TERM "$DAEMON"
  wait "$DAEMON" || { echo "bench-json: daemon exited non-zero" >&2; exit 1; }

  jq -n --slurpfile load "$TMP/load.json" --slurpfile m "$TMP/served.json" '
    {
      chainserved_load: ($load[0] + {
        drain: {
          admitted: $m[0].counters["chainserved.verdict.admitted"],
          completed: $m[0].counters["chainserved.verdict.completed"],
          shed: ($m[0].counters["chainserved.verdict.shed"] // 0),
          dropped_in_flight: ($m[0].counters["chainserved.verdict.admitted"]
                            - $m[0].counters["chainserved.verdict.completed"])
        }
      })
    }' >"$OUT"

  jq -e '.chainserved_load.failed == 0
     and .chainserved_load.drain.dropped_in_flight == 0
     and .chainserved_load.verdict_latency_ns.count > 0' "$OUT" >/dev/null || {
    echo "bench-json: load/drain contract violated (failed requests, dropped in-flight, or empty histograms)" >&2
    exit 1
  }
}

bench_pr9() {
  FUZZ_GENS=${FUZZ_GENS:-8}
  FUZZ_MUTANTS=${FUZZ_MUTANTS:-256}
  FUZZ_DOMAINS=${FUZZ_DOMAINS:-48}

  go build -o "$TMP/divfuzz" ./cmd/divfuzz

  echo "bench-json: fuzz campaign, seed 1, ${FUZZ_GENS}x${FUZZ_MUTANTS} mutants over ${FUZZ_DOMAINS} chains" >&2
  t0=$(now_ms)
  "$TMP/divfuzz" -seed 1 -generations "$FUZZ_GENS" -mutants "$FUZZ_MUTANTS" \
    -seed-domains "$FUZZ_DOMAINS" -manifest "$TMP/fuzz.json" -scenarios "$TMP/novel.json" >/dev/null
  FUZZ_MS=$(($(now_ms) - t0))

  echo "bench-json: worker-invariance gate (-workers 1 vs -workers 8)" >&2
  "$TMP/divfuzz" -seed 1 -generations "$FUZZ_GENS" -mutants "$FUZZ_MUTANTS" \
    -seed-domains "$FUZZ_DOMAINS" -workers 1 -manifest "$TMP/fuzz-w1.json" >/dev/null
  "$TMP/divfuzz" -seed 1 -generations "$FUZZ_GENS" -mutants "$FUZZ_MUTANTS" \
    -seed-domains "$FUZZ_DOMAINS" -workers 8 -manifest "$TMP/fuzz-w8.json" >/dev/null
  cmp -s "$TMP/fuzz-w1.json" "$TMP/fuzz-w8.json" || {
    echo "bench-json: fuzz manifests differ between worker counts — determinism broken" >&2
    exit 1
  }

  echo "bench-json: replaying novel scenarios through a streamed study" >&2
  t0=$(now_ms)
  "$TMP/study" -sites 2000 -vantages 1 -stream \
    -scenario-file "$TMP/novel.json" -scenario-rate 0.02 \
    -out "$TMP/scen.jsonl" >/dev/null
  REPLAY_MS=$(($(now_ms) - t0))
  REPLAYED=$(jq -s '[.[] | select(.scenario != null)] | length' "$TMP/scen.jsonl")
  [ "$REPLAYED" -ge 1 ] || {
    echo "bench-json: study replayed no scenario sites" >&2
    exit 1
  }

  jq -n \
    --argjson wall_ms "$FUZZ_MS" --argjson replay_ms "$REPLAY_MS" \
    --argjson replayed "$REPLAYED" \
    --slurpfile m "$TMP/fuzz.json" --slurpfile novel "$TMP/novel.json" \
    '{
      divfuzz: {
        seed: $m[0].seed,
        generations: $m[0].generations,
        per_generation: $m[0].per_gen,
        seed_domains: $m[0].seed_domains,
        mutants: $m[0].mutants,
        wall_ms: $wall_ms,
        mutants_per_s: (($m[0].mutants * 1000) / $wall_ms),
        corpus_signatures: ($m[0].corpus | length),
        divergences: ($m[0].divergences | length),
        bins: $m[0].bins,
        novel_scenarios: ($novel[0] | length),
        manifest_worker_invariant: true,
        study_replay: { sites: 2000, rate: 0.02, replayed: $replayed, wall_ms: $replay_ms }
      }
    }' >"$OUT"
}

case "$PR" in
  pr6) bench_pr6 ;;
  pr7) bench_pr7 ;;
  pr8) bench_pr8 ;;
  pr9) bench_pr9 ;;
  *) echo "bench-json: unknown PR mode '$PR' (pr6|pr7|pr8|pr9)" >&2; exit 1 ;;
esac

echo "bench-json: wrote $OUT" >&2
jq . "$OUT"
