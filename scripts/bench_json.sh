#!/usr/bin/env bash
# bench_json.sh — emits BENCH_pr6.json, the PR 6 performance record:
#   * differential-harness wall and allocs/op (Go benchmark, -benchmem)
#   * 100k-site study wall, dedup off vs on, at paper-realistic chain reuse
#     (the off run pays the full physical cost per site; the on run pays it
#     per distinct chain) — the two JSONL outputs are verified byte-identical
#   * 10M-site dedup study under GOMEMLIMIT=64MiB: wall, peak RSS, hit rate
#
# Knobs (env): STUDY_SITES (default 100000), BIG_SITES (default 10000000),
# REUSE (default 0.9995), POOL (default 3000), OUT (default BENCH_pr6.json).
# The full run takes ~15 minutes on one core, dominated by the dedup-off
# baseline and the 10M sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_pr6.json}
REUSE=${REUSE:-0.9995}
POOL=${POOL:-3000}
STUDY_SITES=${STUDY_SITES:-100000}
BIG_SITES=${BIG_SITES:-10000000}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

now_ms() { date +%s%3N; }

echo "bench-json: harness benchmark" >&2
go test -run xxx -bench 'BenchmarkDifferentialHarness2k$' -benchtime 2x -benchmem . >"$TMP/bench.txt"
HARNESS_NS=$(awk '/^BenchmarkDifferentialHarness2k/ {print $3; exit}' "$TMP/bench.txt")
HARNESS_ALLOCS=$(awk '/^BenchmarkDifferentialHarness2k/ {print $7; exit}' "$TMP/bench.txt")

go build -o "$TMP/study" ./cmd/study

echo "bench-json: ${STUDY_SITES}-site study, dedup off (full physical cost per site)" >&2
t0=$(now_ms)
GOMEMLIMIT=64MiB "$TMP/study" -sites "$STUDY_SITES" -vantages 1 -stream \
  -reuse "$REUSE" -distinct "$POOL" \
  -out "$TMP/off.jsonl" -metrics "$TMP/off.json" >/dev/null
OFF_MS=$(($(now_ms) - t0))

echo "bench-json: ${STUDY_SITES}-site study, dedup on" >&2
t0=$(now_ms)
GOMEMLIMIT=64MiB "$TMP/study" -sites "$STUDY_SITES" -vantages 1 -stream -dedup \
  -reuse "$REUSE" -distinct "$POOL" \
  -out "$TMP/on.jsonl" -metrics "$TMP/on.json" >/dev/null
ON_MS=$(($(now_ms) - t0))

cmp -s "$TMP/off.jsonl" "$TMP/on.jsonl" || {
  echo "bench-json: dedup on/off JSONL streams differ — determinism broken" >&2
  exit 1
}

echo "bench-json: ${BIG_SITES}-site study, dedup on, GOMEMLIMIT=64MiB" >&2
t0=$(now_ms)
GOMEMLIMIT=64MiB "$TMP/study" -sites "$BIG_SITES" -vantages 1 -stream -dedup \
  -reuse "$REUSE" -distinct "$POOL" \
  -out /dev/null -metrics "$TMP/big.json" >/dev/null
BIG_MS=$(($(now_ms) - t0))

jq -e ".counters[\"study.grade.items\"] == $BIG_SITES" "$TMP/big.json" >/dev/null || {
  echo "bench-json: 10M run graded fewer than $BIG_SITES sites" >&2
  exit 1
}

jq -n \
  --argjson harness_ns "${HARNESS_NS:-0}" \
  --argjson harness_allocs "${HARNESS_ALLOCS:-0}" \
  --argjson sites "$STUDY_SITES" --argjson big_sites "$BIG_SITES" \
  --argjson reuse "$REUSE" --argjson pool "$POOL" \
  --argjson off_ms "$OFF_MS" --argjson on_ms "$ON_MS" --argjson big_ms "$BIG_MS" \
  --slurpfile on "$TMP/on.json" --slurpfile big "$TMP/big.json" \
  '
  def cache(m): {
    hits: m.counters["study.vcache.hits"],
    misses: m.counters["study.vcache.misses"],
    hit_rate: (m.counters["study.vcache.hits"] /
               (m.counters["study.vcache.hits"] + m.counters["study.vcache.misses"]))
  };
  {
    harness_2k: { ns_per_op: $harness_ns, allocs_per_op: $harness_allocs },
    study_100k: {
      sites: $sites, reuse: $reuse, pool: $pool, vantages: 1,
      dedup_off_wall_ms: $off_ms,
      dedup_on_wall_ms: $on_ms,
      speedup: ($off_ms / $on_ms),
      output_identical: true,
      cache: cache($on[0]),
      max_rss_kb: $on[0].gauges["proc.max_rss_kb"]
    },
    study_10m: {
      sites: $big_sites, reuse: $reuse, pool: $pool, vantages: 1,
      gomemlimit: "64MiB",
      wall_ms: $big_ms,
      cache: cache($big[0]),
      max_rss_kb: $big[0].gauges["proc.max_rss_kb"]
    }
  }' >"$OUT"

echo "bench-json: wrote $OUT" >&2
jq . "$OUT"
