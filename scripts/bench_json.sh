#!/usr/bin/env bash
# bench_json.sh — emits BENCH_<pr>.json, the PR performance record.
#
# This is a thin wrapper over cmd/grid: each historical PR mode maps onto a
# committed grid spec under scripts/grids/, and the env knobs below map onto
# -set variable overrides. The grid runner builds the tools, sweeps the
# spec's cells sequentially, audits ledgered outputs, enforces the
# byte-identity and JSON gates the old shell encoded as cmp/jq pipelines,
# and writes BENCH_<pr>.json plus a per-(cell, repeat, step) CSV beside it.
#
# Modes (env PR, default pr7):
#
#   PR=pr6   harness benchmark + 100k-site dedup off/on study + 10M-site
#            study under GOMEMLIMIT=64MiB       (knobs: STUDY_SITES,
#            BIG_SITES, REUSE, POOL)
#   PR=pr7   distributed scaling: single-process baseline, then auto/coarse
#            lease modes x worker counts, outputs byte-identical to the
#            baseline                           (knobs: STUDY_SITES, REUSE,
#            POOL, WORKER_COUNTS)
#   PR=pr8   chainserved daemon under sustained load, SIGTERM drain with
#            admitted == completed              (knobs: LOAD_QPS,
#            LOAD_SECONDS)
#   PR=pr9   fixed-seed fuzz campaign with worker-invariance gate, ledgered
#            divergence records, and scenario replay through a streamed
#            study                              (knobs: FUZZ_GENS,
#            FUZZ_MUTANTS, FUZZ_DOMAINS)
#   PR=pr10  ledger overhead: the 100k-site dedup study with the Merkle
#            ledger off vs on, audited roots, <5% wall gate
#                                               (knobs: STUDY_SITES, REUSE,
#            POOL)
#
# Shared knobs: OUT (default BENCH_<pr>.json), REPEATS, CELLS (regex over
# cell names), GRID_WORK (keep the work tree at this path).
set -euo pipefail
cd "$(dirname "$0")/.."

PR=${PR:-pr7}
OUT=${OUT:-BENCH_${PR}.json}
SPEC=scripts/grids/${PR}.json
[ -f "$SPEC" ] || { echo "bench-json: unknown PR mode '$PR' (no $SPEC)" >&2; exit 1; }

SETS=()
map() { # map <spec-var> <env-name>: add -set when the env knob is set
  local var=$1 env=$2
  [ -n "${!env:-}" ] && SETS+=(-set "$var=${!env}")
  return 0
}

case "$PR" in
  pr6)
    map sites STUDY_SITES
    map big_sites BIG_SITES
    map reuse REUSE
    map pool POOL
    ;;
  pr7)
    map sites STUDY_SITES
    map reuse REUSE
    map pool POOL
    # WORKER_COUNTS ("1 4") narrows the fixed 1/2/4/8 axis via a cell filter.
    if [ -n "${WORKER_COUNTS:-}" ]; then
      CELLS=${CELLS:-"workers=($(echo "$WORKER_COUNTS" | tr -s ' ' '|'))$"}
    fi
    ;;
  pr8)
    map qps LOAD_QPS
    map seconds LOAD_SECONDS
    ;;
  pr9)
    map gens FUZZ_GENS
    map mutants FUZZ_MUTANTS
    map domains FUZZ_DOMAINS
    ;;
  pr10)
    map sites STUDY_SITES
    map reuse REUSE
    map pool POOL
    ;;
esac

go run ./cmd/grid -spec "$SPEC" -out "$OUT" \
  ${REPEATS:+-repeats "$REPEATS"} \
  ${CELLS:+-cells "$CELLS"} \
  ${GRID_WORK:+-work "$GRID_WORK"} \
  ${SETS[@]+"${SETS[@]}"}

echo "bench-json: wrote $OUT" >&2
if command -v jq >/dev/null 2>&1; then jq . "$OUT"; else cat "$OUT"; fi
