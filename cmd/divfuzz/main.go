// divfuzz runs the coverage-guided divergence fuzzer over a synthetic seed
// population and reports the divergences it found, binned against the
// paper's I-1…I-4 classes.
//
// Usage:
//
//	divfuzz -seed 1 -generations 8 -mutants 256
//	divfuzz -seed 1 -manifest run.json -scenarios novel.json
//
// The manifest is deterministic: the same seed produces byte-identical
// manifests for any -workers value. -scenarios writes the novel divergences
// (topologies outside I-1…I-4) as a scenario file that cmd/genpop and
// cmd/study replay via -scenario-file.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"chainchaos/internal/divfuzz"
	"chainchaos/internal/obs"
)

func main() {
	cli := obs.NewCLI("divfuzz")
	seed := flag.Int64("seed", 1, "fuzzer seed (drives the seed population and every mutation draw)")
	gens := flag.Int("generations", 8, "evolutionary rounds after the seed corpus")
	perGen := flag.Int("mutants", 256, "mutants bred per generation")
	seedDomains := flag.Int("seed-domains", 48, "seed population size")
	maxMuts := flag.Int("max-muts", 6, "maximum mutations per genome")
	dedup := flag.Bool("dedup", true, "share graded verdict vectors across identical list digests")
	manifest := flag.String("manifest", "", "write the deterministic run manifest (JSON) here")
	scenarios := flag.String("scenarios", "", "write novel divergences as an injectable scenario file here")
	cli.BindWorkers("parallel evaluation workers (0 = GOMAXPROCS)")
	cli.BindObs()
	flag.Parse()
	cli.Start()
	defer cli.Finish()

	res, err := divfuzz.Run(context.Background(), divfuzz.Config{
		Seed:        *seed,
		Generations: *gens,
		PerGen:      *perGen,
		SeedDomains: *seedDomains,
		MaxMuts:     *maxMuts,
		Workers:     cli.Workers,
		Dedup:       *dedup,
		Metrics:     cli.Metrics,
	})
	if err != nil {
		cli.Fatal(err)
	}

	fmt.Printf("mutants evaluated:    %d\n", res.Mutants)
	fmt.Printf("corpus (signatures):  %d\n", len(res.Corpus))
	fmt.Printf("divergences:          %d\n", len(res.Divergences))
	bins := make([]string, 0, len(res.Bins))
	for b := range res.Bins {
		bins = append(bins, b)
	}
	sort.Strings(bins)
	for _, b := range bins {
		fmt.Printf("  %-6s %d\n", b, res.Bins[b])
	}
	for _, d := range res.Divergences {
		if d.Novel {
			fmt.Printf("novel: %s base=%d muts=%s sig=%s\n",
				d.Digest[:12], d.Minimized.Base, d.Minimized.Encode(), d.Signature)
		}
	}

	if *manifest != "" {
		b, err := res.Manifest().MarshalIndent()
		if err != nil {
			cli.Fatal(err)
		}
		if err := os.WriteFile(*manifest, b, 0o644); err != nil {
			cli.Fatal(err)
		}
	}
	if *scenarios != "" {
		b, err := json.MarshalIndent(res.Scenarios(), "", "  ")
		if err != nil {
			cli.Fatal(err)
		}
		if err := os.WriteFile(*scenarios, append(b, '\n'), 0o644); err != nil {
			cli.Fatal(err)
		}
	}
}
