// divfuzz runs the coverage-guided divergence fuzzer over a synthetic seed
// population and reports the divergences it found, binned against the
// paper's I-1…I-4 classes.
//
// Usage:
//
//	divfuzz -seed 1 -generations 8 -mutants 256
//	divfuzz -seed 1 -manifest run.json -scenarios novel.json
//
// The manifest is deterministic: the same seed produces byte-identical
// manifests for any -workers value. -scenarios writes the novel divergences
// (topologies outside I-1…I-4) as a scenario file that cmd/genpop and
// cmd/study replay via -scenario-file.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"chainchaos/internal/divfuzz"
	"chainchaos/internal/ledger"
	"chainchaos/internal/obs"
	"chainchaos/internal/pipeline"
)

func main() {
	cli := obs.NewCLI("divfuzz")
	seed := flag.Int64("seed", 1, "fuzzer seed (drives the seed population and every mutation draw)")
	gens := flag.Int("generations", 8, "evolutionary rounds after the seed corpus")
	perGen := flag.Int("mutants", 256, "mutants bred per generation")
	seedDomains := flag.Int("seed-domains", 48, "seed population size")
	maxMuts := flag.Int("max-muts", 6, "maximum mutations per genome")
	dedup := flag.Bool("dedup", true, "share graded verdict vectors across identical list digests")
	manifest := flag.String("manifest", "", "write the deterministic run manifest (JSON) here")
	scenarios := flag.String("scenarios", "", "write novel divergences as an injectable scenario file here")
	records := flag.String("records", "", "write one JSONL line per confirmed divergence here, in discovery order")
	recJournal := flag.String("records-journal", "", "anchor the -records lines' Merkle batch roots into this journal so cmd/ledgerverify -stage divergence can audit them")
	cli.BindWorkers("parallel evaluation workers (0 = GOMAXPROCS)")
	cli.BindLedger()
	cli.BindObs()
	flag.Parse()
	cli.Start()
	defer cli.Finish()

	res, err := divfuzz.Run(context.Background(), divfuzz.Config{
		Seed:        *seed,
		Generations: *gens,
		PerGen:      *perGen,
		SeedDomains: *seedDomains,
		MaxMuts:     *maxMuts,
		Workers:     cli.Workers,
		Dedup:       *dedup,
		Metrics:     cli.Metrics,
	})
	if err != nil {
		cli.Fatal(err)
	}

	fmt.Printf("mutants evaluated:    %d\n", res.Mutants)
	fmt.Printf("corpus (signatures):  %d\n", len(res.Corpus))
	fmt.Printf("divergences:          %d\n", len(res.Divergences))
	bins := make([]string, 0, len(res.Bins))
	for b := range res.Bins {
		bins = append(bins, b)
	}
	sort.Strings(bins)
	for _, b := range bins {
		fmt.Printf("  %-6s %d\n", b, res.Bins[b])
	}
	for _, d := range res.Divergences {
		if d.Novel {
			fmt.Printf("novel: %s base=%d muts=%s sig=%s\n",
				d.Digest[:12], d.Minimized.Base, d.Minimized.Encode(), d.Signature)
		}
	}

	if *manifest != "" {
		b, err := res.Manifest().MarshalIndent()
		if err != nil {
			cli.Fatal(err)
		}
		if err := os.WriteFile(*manifest, b, 0o644); err != nil {
			cli.Fatal(err)
		}
	}
	if *scenarios != "" {
		b, err := json.MarshalIndent(res.Scenarios(), "", "  ")
		if err != nil {
			cli.Fatal(err)
		}
		if err := os.WriteFile(*scenarios, append(b, '\n'), 0o644); err != nil {
			cli.Fatal(err)
		}
	}
	if *records != "" {
		if err := writeRecords(cli, res, *records, *recJournal); err != nil {
			cli.Fatal(err)
		}
	}
}

// writeRecords emits the divergence JSONL — one compact ManifestEntry per
// confirmed divergence, in discovery order — and, when a journal path is
// given, anchors the lines' Merkle batch roots into it under the
// "divergence" stage. The fuzzer is batch-deterministic, so the file (and
// therefore the anchored roots) is a pure function of the seed; the journal
// exists purely as tamper evidence, not for resume.
func writeRecords(cli *obs.CLI, res *divfuzz.Result, path, journalPath string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var b *ledger.Batcher
	var j *pipeline.Journal
	if journalPath != "" && cli.LedgerBatch > 0 {
		if j, err = pipeline.OpenJournal(journalPath); err != nil {
			return err
		}
		defer j.Close()
		var sw io.Writer
		if cli.LedgerSidecar != "" {
			side, err := os.Create(cli.LedgerSidecar)
			if err != nil {
				return err
			}
			defer side.Close()
			sw = side
		}
		b = ledger.JournalBatcher(j, "divergence", cli.LedgerBatch, 0, nil, sw)
	}

	w := bufio.NewWriter(f)
	m := res.Manifest()
	for _, e := range m.Divergences {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
		if err := b.Append(line); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if b != nil {
		if _, _, err := ledger.Seal(b, j, "divergence"); err != nil {
			return err
		}
	}
	return nil
}
