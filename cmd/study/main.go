// study runs the paper's full measurement pipeline over real loopback
// infrastructure: a real-certificate population deployed through HTTP-server
// models onto TLS listeners, scanned from multiple vantages, graded for
// structural compliance, and differentially tested across the eight client
// models.
//
// Usage:
//
//	study [-sites 60] [-seed 1] [-vantages 2] [-workers 0] [-retries 2] [-chaos]
//	      [-reuse 0.9995] [-distinct 3000] [-dedup]
//	      [-stream] [-out sites.jsonl] [-checkpoint study.ckpt]
//	      [-ledger-batch 1024] [-ledger-latency 0] [-ledger-sidecar sites.leaves]
//	      [-distribute 4] [-dist-listen addr | -worker -connect addr]
//	      [-metrics metrics.json] [-pprof localhost:6060]
//
// A run with both -out and -checkpoint is tamper-evident by default: every
// record line becomes a Merkle leaf, batch roots anchor into the checkpoint
// journal as they complete, and cmd/ledgerverify audits the output against
// them afterwards (-ledger-batch 0 opts out). Distributed runs fold
// worker-hashed subtree roots into the identical anchor sequence.
//
// -distribute N runs the study as a coordinator leasing contiguous site
// ranges to N worker processes (copies of this binary run with -worker);
// records merge in rank order, byte-identical to a single-process -stream
// run, resumable through the same -checkpoint. See cmd/study/dist.go.
//
// With -stream the run holds only in-flight sites in memory and writes one
// JSON line per site to -out (stdout by default); -checkpoint journals
// progress so an interrupted run resumes where it stopped, appending to the
// same -out file.
//
// -reuse makes that fraction of sites serve a chain drawn from a pool of
// -distinct slot chains (the paper's shared-hosting skew) and -dedup memoizes
// the physical scan and the verdicts per distinct chain, which is what makes
// a 10M-site run tractable: duplicate chains cost a cache lookup instead of a
// key generation, a handshake, and eight client path-builds.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"chainchaos/internal/ledger"
	"chainchaos/internal/obs"
	"chainchaos/internal/pipeline"
	"chainchaos/internal/population"
	"chainchaos/internal/study"
	"chainchaos/internal/tlsserve"
)

func main() {
	cli := obs.NewCLI("study")
	sites := flag.Int("sites", 60, "number of loopback TLS sites to deploy")
	seed := flag.Int64("seed", 1, "defect assignment seed")
	vantages := flag.Int("vantages", 2, "scan passes to merge")
	chaos := flag.Bool("chaos", false, "inject faults into every listener (reset first connection, slow writes) to exercise the retry path")
	reuse := flag.Float64("reuse", 0, "fraction of sites serving a pooled (duplicate) chain")
	distinct := flag.Int("distinct", 0, "distinct-chain pool size under -reuse (0 = default 3000)")
	dedup := flag.Bool("dedup", false, "share listeners, scans, and verdicts per distinct chain (bit-identical records, duplicate chains cost a lookup)")
	stream := flag.Bool("stream", false, "stream results site by site instead of materializing the run (bounded memory)")
	outFile := flag.String("out", "", "write per-site JSONL records here (default stdout; implies -stream)")
	checkpoint := flag.String("checkpoint", "", "journal progress to this file and resume an interrupted run from it (implies -stream)")
	killAfter := flag.Int("dist-kill-after", 0, "chaos: the first worker SIGKILLs itself after emitting this many records (distributed runs only)")
	scenarioFile := flag.String("scenario-file", "", "replay fuzzer-discovered chain topologies from this scenario file (cmd/divfuzz -scenarios)")
	scenarioRate := flag.Float64("scenario-rate", 0.02, "fraction of sites replaying an injected scenario under -scenario-file")
	cli.BindWorkers("parallel workers for the grading loop (0 = GOMAXPROCS)")
	cli.BindRetries(2, "extra handshake attempts per transport failure (0 = scan once)")
	cli.BindDistribute()
	cli.BindLedger()
	cli.BindObs()
	flag.Parse()
	if cli.Worker {
		// The worker path returns before Start, so validate here too.
		if err := cli.Validate(); err != nil {
			cli.Fatal(err)
		}
		if err := runWorker(cli); err != nil {
			cli.Fatal(err)
		}
		return
	}
	cli.Start()

	cfg := study.Config{
		Sites: *sites, Seed: *seed, Vantages: *vantages,
		Workers: cli.Workers, Retries: cli.Retries,
		Metrics: cli.Metrics,
		Reuse:   *reuse, DistinctChains: *distinct, Dedup: *dedup,
	}
	if *chaos {
		cfg.Faults = tlsserve.FaultConfig{FailFirst: 1, SlowWrite: time.Millisecond}
	}
	if *scenarioFile != "" {
		scs, err := population.LoadScenarios(*scenarioFile)
		if err != nil {
			cli.Fatal(err)
		}
		cfg.Scenarios, cfg.ScenarioRate = scs, *scenarioRate
	}

	start := time.Now()
	var rep *study.Report
	var err error
	if cli.Distribute > 0 {
		rep, err = runDistributed(cli, cfg, *chaos, *outFile, *checkpoint, *killAfter)
	} else if *stream || *outFile != "" || *checkpoint != "" {
		rep, err = runStreaming(cli, cfg, *outFile, *checkpoint)
	} else {
		rep, err = study.Run(cfg)
	}
	if err != nil {
		cli.Fatal(err)
	}
	for _, t := range rep.Tables() {
		fmt.Println(t)
	}
	cli.Finish()
	fmt.Printf("%d/%d sites compliant, %d scan errors (dial %d / handshake %d / parse %d / cancelled %d), %d rescanned, %d lost, %v elapsed\n",
		rep.CompliantCount(), rep.SiteCount(), rep.ScanErrors,
		rep.ScanErrorCauses.Dial, rep.ScanErrorCauses.Handshake,
		rep.ScanErrorCauses.Parse, rep.ScanErrorCauses.Cancelled,
		rep.Rescanned, rep.Lost, time.Since(start).Round(time.Millisecond))
	if rep.Snapshot != nil {
		if hits, misses := rep.Snapshot.Counters["study.vcache.hits"], rep.Snapshot.Counters["study.vcache.misses"]; hits+misses > 0 {
			fmt.Printf("verdict cache: %d hits / %d misses (%.2f%% hit rate, %d distinct chains graded)\n",
				hits, misses, 100*float64(hits)/float64(hits+misses), misses)
		}
	}
}

// runStreaming wires the -stream/-out/-checkpoint trio: per-site JSONL to
// out (appending under a checkpoint so resumed output continues the file),
// a journal of retired ranks, and a resume rank picked up from it. When the
// run both checkpoints and writes a real -out file, the ledger anchors batch
// roots into the same journal so cmd/ledgerverify can audit the output.
func runStreaming(cli *obs.CLI, cfg study.Config, outFile, checkpoint string) (*study.Report, error) {
	st := study.Stream{}
	var j *pipeline.Journal
	resume := 0
	if checkpoint != "" {
		var err error
		j, resume, err = pipeline.Checkpoint(checkpoint, "grade")
		if err != nil {
			return nil, err
		}
		defer j.Close()
		if outFile != "" {
			// Reconcile the JSONL with the watermark: one line per site.
			resume, err = pipeline.RecoverOutput(outFile, 0, j, "grade", nil)
			if err != nil {
				return nil, err
			}
		}
		st.Journal, st.Resume = j, resume
		if resume > 0 {
			fmt.Fprintf(os.Stderr, "study: resuming from site %d\n", resume)
		}
	}
	var out io.Writer = os.Stdout
	if outFile != "" {
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if checkpoint != "" {
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(outFile, mode, 0o644)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		out = f
	}
	st.Out = out
	// The ledger needs both halves of the audit pair — a journal to anchor
	// into and an on-disk output to verify against — so a stdout run stays
	// unledgered even with -checkpoint.
	if j != nil && outFile != "" && cli.LedgerBatch > 0 {
		side, err := openSidecar(cli.LedgerSidecar)
		if err != nil {
			return nil, err
		}
		var sw io.Writer
		if side != nil {
			defer side.Close()
			sw = side
		}
		b := ledger.JournalBatcher(j, "grade", cli.LedgerBatch, cli.LedgerLatency, nil, sw)
		// Resume = replay: re-hash the recovered lines so already-journaled
		// anchors verify (not re-emit) and the sidecar regrows in step.
		if err := ledger.Replay(b, outFile, 0, resume); err != nil {
			return nil, err
		}
		st.Ledger = b
	}
	rep, err := study.RunStream(context.Background(), cfg, st)
	if err != nil {
		return nil, err
	}
	if st.Ledger != nil {
		if _, _, err := ledger.Seal(st.Ledger, j, "grade"); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// openSidecar truncates and opens the leaf-hash sidecar. Truncation is
// deliberate: on resume the ledger replay regenerates the recovered prefix,
// keeping the sidecar aligned with the output file line for line.
func openSidecar(path string) (*os.File, error) {
	if path == "" {
		return nil, nil
	}
	return os.Create(path)
}
