// study runs the paper's full measurement pipeline over real loopback
// infrastructure: a real-certificate population deployed through HTTP-server
// models onto TLS listeners, scanned from multiple vantages, graded for
// structural compliance, and differentially tested across the eight client
// models.
//
// Usage:
//
//	study [-sites 60] [-seed 1] [-vantages 2] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chainchaos/internal/study"
)

func main() {
	sites := flag.Int("sites", 60, "number of loopback TLS sites to deploy")
	seed := flag.Int64("seed", 1, "defect assignment seed")
	vantages := flag.Int("vantages", 2, "scan passes to merge")
	workers := flag.Int("workers", 0, "parallel workers for the grading loop (0 = GOMAXPROCS)")
	flag.Parse()

	start := time.Now()
	rep, err := study.Run(study.Config{Sites: *sites, Seed: *seed, Vantages: *vantages, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "study:", err)
		os.Exit(1)
	}
	for _, t := range rep.Tables() {
		fmt.Println(t)
	}
	fmt.Printf("%d/%d sites compliant, %d scan errors, %v elapsed\n",
		rep.CompliantCount(), len(rep.Sites), rep.ScanErrors, time.Since(start).Round(time.Millisecond))
}
