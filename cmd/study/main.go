// study runs the paper's full measurement pipeline over real loopback
// infrastructure: a real-certificate population deployed through HTTP-server
// models onto TLS listeners, scanned from multiple vantages, graded for
// structural compliance, and differentially tested across the eight client
// models.
//
// Usage:
//
//	study [-sites 60] [-seed 1] [-vantages 2] [-workers 0] [-retries 2] [-chaos]
//	      [-metrics metrics.json] [-pprof localhost:6060]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chainchaos/internal/obs"
	"chainchaos/internal/study"
	"chainchaos/internal/tlsserve"
)

func main() {
	sites := flag.Int("sites", 60, "number of loopback TLS sites to deploy")
	seed := flag.Int64("seed", 1, "defect assignment seed")
	vantages := flag.Int("vantages", 2, "scan passes to merge")
	workers := flag.Int("workers", 0, "parallel workers for the grading loop (0 = GOMAXPROCS)")
	retries := flag.Int("retries", 2, "extra handshake attempts per transport failure (0 = scan once)")
	chaos := flag.Bool("chaos", false, "inject faults into every listener (reset first connection, slow writes) to exercise the retry path")
	metricsFile := flag.String("metrics", "", "write the run's metrics snapshot as JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address for the run's duration")
	flag.Parse()

	if addr, err := obs.StartPprof(*pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "study:", err)
		os.Exit(1)
	} else if addr != "" {
		fmt.Fprintf(os.Stderr, "study: pprof on http://%s/debug/pprof/\n", addr)
	}

	cfg := study.Config{
		Sites: *sites, Seed: *seed, Vantages: *vantages,
		Workers: *workers, Retries: *retries,
		Metrics: obs.NewRegistry(),
	}
	if *chaos {
		cfg.Faults = tlsserve.FaultConfig{FailFirst: 1, SlowWrite: time.Millisecond}
	}
	start := time.Now()
	rep, err := study.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "study:", err)
		os.Exit(1)
	}
	for _, t := range rep.Tables() {
		fmt.Println(t)
	}
	if *metricsFile != "" {
		if err := obs.WriteJSON(cfg.Metrics, *metricsFile); err != nil {
			fmt.Fprintln(os.Stderr, "study:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "study: metrics written to %s\n", *metricsFile)
	}
	fmt.Printf("%d/%d sites compliant, %d scan errors (dial %d / handshake %d / parse %d / cancelled %d), %d rescanned, %d lost, %v elapsed\n",
		rep.CompliantCount(), len(rep.Sites), rep.ScanErrors,
		rep.ScanErrorCauses.Dial, rep.ScanErrorCauses.Handshake,
		rep.ScanErrorCauses.Parse, rep.ScanErrorCauses.Cancelled,
		rep.Rescanned, rep.Lost, time.Since(start).Round(time.Millisecond))
}
