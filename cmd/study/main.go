// study runs the paper's full measurement pipeline over real loopback
// infrastructure: a real-certificate population deployed through HTTP-server
// models onto TLS listeners, scanned from multiple vantages, graded for
// structural compliance, and differentially tested across the eight client
// models.
//
// Usage:
//
//	study [-sites 60] [-seed 1] [-vantages 2] [-workers 0] [-retries 2] [-chaos]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chainchaos/internal/study"
	"chainchaos/internal/tlsserve"
)

func main() {
	sites := flag.Int("sites", 60, "number of loopback TLS sites to deploy")
	seed := flag.Int64("seed", 1, "defect assignment seed")
	vantages := flag.Int("vantages", 2, "scan passes to merge")
	workers := flag.Int("workers", 0, "parallel workers for the grading loop (0 = GOMAXPROCS)")
	retries := flag.Int("retries", 2, "extra handshake attempts per transport failure (0 = scan once)")
	chaos := flag.Bool("chaos", false, "inject faults into every listener (reset first connection, slow writes) to exercise the retry path")
	flag.Parse()

	cfg := study.Config{
		Sites: *sites, Seed: *seed, Vantages: *vantages,
		Workers: *workers, Retries: *retries,
	}
	if *chaos {
		cfg.Faults = tlsserve.FaultConfig{FailFirst: 1, SlowWrite: time.Millisecond}
	}
	start := time.Now()
	rep, err := study.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "study:", err)
		os.Exit(1)
	}
	for _, t := range rep.Tables() {
		fmt.Println(t)
	}
	fmt.Printf("%d/%d sites compliant, %d scan errors (dial %d / handshake %d / parse %d / cancelled %d), %d rescanned, %d lost, %v elapsed\n",
		rep.CompliantCount(), len(rep.Sites), rep.ScanErrors,
		rep.ScanErrorCauses.Dial, rep.ScanErrorCauses.Handshake,
		rep.ScanErrorCauses.Parse, rep.ScanErrorCauses.Cancelled,
		rep.Rescanned, rep.Lost, time.Since(start).Round(time.Millisecond))
}
