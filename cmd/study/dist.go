// Distributed execution for the study: -distribute N runs this command as a
// coordinator leasing contiguous site ranges to N copies of itself started
// with -worker; each worker runs the deploy→scan→grade pipeline over its
// leased range and streams records back, and the coordinator merges them in
// rank order — byte-identical to a single-process -stream run, resumable
// through the same -checkpoint journal.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"chainchaos/internal/dist"
	"chainchaos/internal/ledger"
	"chainchaos/internal/obs"
	"chainchaos/internal/pipeline"
	"chainchaos/internal/population"
	"chainchaos/internal/study"
	"chainchaos/internal/tlsserve"
)

// workerJob is the coordinator→worker config payload: everything a worker
// needs to reproduce the exact study a single process would run. The same
// (Sites, Seed, ...) must reach every worker — per-rank determinism is what
// makes leased sub-ranges byte-identical to the full run.
type workerJob struct {
	Sites    int     `json:"sites"`
	Seed     int64   `json:"seed"`
	Vantages int     `json:"vantages"`
	Workers  int     `json:"workers"`
	Retries  int     `json:"retries"`
	Reuse    float64 `json:"reuse,omitempty"`
	Distinct int     `json:"distinct,omitempty"`
	Dedup    bool    `json:"dedup,omitempty"`
	Chaos    bool    `json:"chaos,omitempty"`
	// Scenarios ship the replayed fuzzer topologies to every worker inline
	// (the coordinator loaded the scenario file; workers may not share its
	// filesystem).
	Scenarios    []population.Scenario `json:"scenarios,omitempty"`
	ScenarioRate float64               `json:"scenario_rate,omitempty"`
	// KillAfter, when > 0, makes the worker SIGKILL itself after emitting
	// that many records — the chaos knob the CI smoke test arms on one
	// worker to prove a mid-lease kill -9 loses no sites.
	KillAfter int `json:"kill_after,omitempty"`
}

func (j workerJob) config(metrics *obs.Registry) study.Config {
	cfg := study.Config{
		Sites: j.Sites, Seed: j.Seed, Vantages: j.Vantages,
		Workers: j.Workers, Retries: j.Retries, Metrics: metrics,
		Reuse: j.Reuse, DistinctChains: j.Distinct, Dedup: j.Dedup,
		Scenarios: j.Scenarios, ScenarioRate: j.ScenarioRate,
	}
	if j.Chaos {
		cfg.Faults = tlsserve.FaultConfig{FailFirst: 1, SlowWrite: time.Millisecond}
	}
	return cfg
}

// runWorker is the -worker mode: serve leases over stdio (or a dialed TCP
// connection when -connect is set) until the coordinator closes the wire.
// Stdout is the wire; the run must write nothing else to it.
func runWorker(cli *obs.CLI) error {
	setup := func(payload json.RawMessage) (dist.RangeRunner, *obs.Registry, error) {
		var job workerJob
		if err := json.Unmarshal(payload, &job); err != nil {
			return nil, nil, fmt.Errorf("bad worker payload: %w", err)
		}
		reg := obs.NewRegistry()
		cfg := job.config(reg)
		killAfter := job.KillAfter
		emitted := 0
		runner := func(ctx context.Context, lo, hi int, emit func(rank int, line []byte) error) (map[string]int64, error) {
			rep, err := study.RunStream(ctx, cfg, study.Stream{
				Resume: lo, Limit: hi,
				Record: func(rank int, line []byte) error {
					if err := emit(rank, line); err != nil {
						return err
					}
					if emitted++; killAfter > 0 && emitted >= killAfter {
						dist.KillSelf()
					}
					return nil
				},
			})
			if err != nil {
				return nil, err
			}
			return rep.Tallies(), nil
		}
		return runner, reg, nil
	}
	if cli.Connect != "" {
		return dist.ServeTCP(context.Background(), cli.Connect, setup)
	}
	return dist.ServeStdio(context.Background(), setup)
}

// runDistributed is the -distribute N coordinator: same journal/output
// wiring as runStreaming, with the pipeline executed by N worker processes
// instead of in-process stages.
func runDistributed(cli *obs.CLI, cfg study.Config, chaos bool, outFile, checkpoint string, killAfter int) (*study.Report, error) {
	var j *pipeline.Journal
	resume := 0
	if checkpoint != "" {
		var err error
		j, resume, err = pipeline.Checkpoint(checkpoint, "grade")
		if err != nil {
			return nil, err
		}
		defer j.Close()
		if outFile != "" {
			resume, err = pipeline.RecoverOutput(outFile, 0, j, "grade", nil)
			if err != nil {
				return nil, err
			}
		}
		if resume > 0 {
			fmt.Fprintf(os.Stderr, "study: resuming from site %d\n", resume)
		}
	}
	var out io.Writer = os.Stdout
	if outFile != "" {
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if checkpoint != "" {
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(outFile, mode, 0o644)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		out = f
	}

	// The distributed ledger: workers hash their own emitted lines into
	// compact ranges, the coordinator folds them into the same anchor
	// sequence a single-process run journals. Recovered output replays
	// through the folder first, exactly like the single-process path.
	var folder *ledger.Folder
	if j != nil && outFile != "" && cli.LedgerBatch > 0 {
		side, err := openSidecar(cli.LedgerSidecar)
		if err != nil {
			return nil, err
		}
		var sw io.Writer
		if side != nil {
			defer side.Close()
			sw = side
		}
		folder = ledger.JournalFolder(j, "grade", cli.LedgerBatch, sw)
		if err := ledger.Replay(folder, outFile, 0, resume); err != nil {
			return nil, err
		}
	}

	job := workerJob{
		Sites: cfg.Sites, Seed: cfg.Seed, Vantages: cfg.Vantages,
		Workers: cfg.Workers, Retries: cfg.Retries,
		Reuse: cfg.Reuse, Distinct: cfg.DistinctChains, Dedup: cfg.Dedup,
		Scenarios: cfg.Scenarios, ScenarioRate: cfg.ScenarioRate,
		Chaos: chaos,
	}
	payload := func(slot, spawn int) []byte {
		pj := job
		if killAfter > 0 && slot == 0 && spawn == 0 {
			// Arm the chaos kill on the first worker's first incarnation
			// only: its replacement (and every other worker) runs clean.
			pj.KillAfter = killAfter
		}
		b, _ := json.Marshal(pj)
		return b
	}

	var launch dist.Launcher
	if cli.DistListen != "" {
		tl, err := dist.ListenTCP(cli.DistListen)
		if err != nil {
			return nil, err
		}
		defer tl.Close()
		fmt.Fprintf(os.Stderr, "study: waiting for %d workers on %s (run: study -worker -connect %s)\n",
			cli.Distribute, tl.Addr(), tl.Addr())
		launch = tl
	} else {
		launch = &dist.ProcLauncher{Args: []string{"-worker"}}
	}

	res, err := dist.Run(context.Background(), dist.Config{
		Workers: cli.Distribute, Resume: resume, Total: cfg.Sites,
		LeaseSize: cli.DistLease,
		Out:       out, Journal: j, SinkStage: "grade",
		Metrics: cli.Metrics, Launch: launch, Payload: payload,
		Ledger: folder,
	})
	if err != nil {
		return nil, err
	}
	if folder != nil {
		if _, _, err := ledger.SealFolder(folder, j, "grade", cfg.Sites); err != nil {
			return nil, err
		}
	}
	if res.Reassigned > 0 {
		fmt.Fprintf(os.Stderr, "study: %d lease reassignments, %d worker respawns\n", res.Reassigned, res.Respawns)
	}
	rep := study.ReportFromTallies(cfg, res.Tallies)
	rep.Snapshot = cli.Metrics.Snapshot()
	return rep, nil
}
