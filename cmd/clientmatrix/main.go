// clientmatrix re-derives the paper's Table 9: it generates the nine
// capability test chains of Table 2 (real signed certificates) and runs the
// eight TLS client models against them, printing the measured capability
// matrix.
package main

import (
	"flag"
	"fmt"
	"os"

	"chainchaos/internal/experiments"
)

func main() {
	flag.Parse()
	env := experiments.NewEnv(1, 1) // population unused; the runner generates its own chains
	table, err := env.ClientCapabilities()
	if err != nil {
		fmt.Fprintln(os.Stderr, "clientmatrix:", err)
		os.Exit(1)
	}
	fmt.Println(table)

	for _, f := range []func() (interface{ String() string }, error){
		func() (interface{ String() string }, error) { return env.CaseLongChain() },
		func() (interface{ String() string }, error) { return env.CaseBacktracking() },
		func() (interface{ String() string }, error) { return env.CaseValidityPriority() },
	} {
		t, err := f()
		if err != nil {
			fmt.Fprintln(os.Stderr, "clientmatrix:", err)
			os.Exit(1)
		}
		fmt.Println(t)
	}
}
