// clientmatrix re-derives the paper's Table 9: it generates the nine
// capability test chains of Table 2 (real signed certificates) and runs the
// eight TLS client models against them, printing the measured capability
// matrix.
package main

import (
	"flag"
	"fmt"

	"chainchaos/internal/experiments"
	"chainchaos/internal/obs"
)

func main() {
	cli := obs.NewCLI("clientmatrix")
	cli.BindObs()
	flag.Parse()
	cli.Start()
	env := experiments.NewEnv(1, 1) // population unused; the runner generates its own chains
	env.Metrics = cli.Metrics
	table, err := env.ClientCapabilities()
	if err != nil {
		cli.Fatal(err)
	}
	fmt.Println(table)

	for _, f := range []func() (interface{ String() string }, error){
		func() (interface{ String() string }, error) { return env.CaseLongChain() },
		func() (interface{ String() string }, error) { return env.CaseBacktracking() },
		func() (interface{ String() string }, error) { return env.CaseValidityPriority() },
	} {
		t, err := f()
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Println(t)
	}
	cli.Finish()
}
