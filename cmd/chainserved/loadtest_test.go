package main

// The load-test driver behind scripts/loadtest.sh: it sustains a target
// request rate against a chainserved instance and reports the achieved
// throughput plus the service-side latency distribution (p50/p95/p99 from
// the obs histograms — the numbers BENCH_pr8.json records).
//
// Environment knobs (all optional; the defaults keep the default `go test`
// run to a ~2s smoke):
//
//	LOAD_QPS=200        target request rate
//	LOAD_SECONDS=2      sustained duration
//	LOAD_OUT=file.json  write the result record here
//	LOAD_TARGET=url     drive an external daemon instead of an in-process
//	                    server (requires LOAD_PEM_DIR)
//	LOAD_PEM_DIR=dir    chain fixtures for external mode (-exemplars output)
//
// The hard assertion is the ISSUE's: zero failed requests at the sustained
// rate, with every latency number coming from the service's own histograms.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/chainserved"
	"chainchaos/internal/obs"
	"chainchaos/internal/rootstore"
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// loadResult is the record written to LOAD_OUT.
type loadResult struct {
	Mode        string  `json:"mode"`
	QPSTarget   int     `json:"qps_target"`
	Seconds     int     `json:"seconds"`
	Sent        int64   `json:"sent"`
	OK          int64   `json:"ok"`
	Failed      int64   `json:"failed"`
	Shed429     int64   `json:"shed_429"`
	AchievedQPS float64 `json:"achieved_qps"`

	VerdictLatencyNS struct {
		Count int64 `json:"count"`
		P50   int64 `json:"p50"`
		P95   int64 `json:"p95"`
		P99   int64 `json:"p99"`
	} `json:"verdict_latency_ns"`
	Cache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"cache"`
}

// TestLoadSustained fires LOAD_QPS requests per second for LOAD_SECONDS and
// asserts the service absorbs the rate without a single failed request.
func TestLoadSustained(t *testing.T) {
	qps := envInt("LOAD_QPS", 200)
	seconds := envInt("LOAD_SECONDS", 2)

	var base string
	var bodies [][]byte
	var snapshot func(t *testing.T) *obs.Snapshot

	if target := os.Getenv("LOAD_TARGET"); target != "" {
		base = target
		bodies = externalBodies(t, os.Getenv("LOAD_PEM_DIR"))
		snapshot = func(t *testing.T) *obs.Snapshot { return fetchSnapshot(t, base) }
	} else {
		reg := obs.NewRegistry()
		srv := httptest.NewServer(inProcessServer(t, reg).Handler())
		defer srv.Close()
		base = srv.URL
		bodies = inProcessBodies(t)
		snapshot = func(t *testing.T) *obs.Snapshot { return reg.Snapshot() }
	}

	var sent, okCount, failed, shed atomic.Int64
	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	interval := time.Second / time.Duration(qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(time.Duration(seconds) * time.Second)

	start := time.Now()
	for i := 0; time.Now().Before(deadline); i++ {
		<-ticker.C
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sent.Add(1)
			resp, err := client.Post(base+"/v1/verdict", "application/json",
				bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				failed.Add(1)
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var v chainserved.VerdictResponse
				if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || len(v.Matrix) == 0 {
					failed.Add(1)
					t.Errorf("request %d: degraded response (err %v)", i, err)
					return
				}
				okCount.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1) // admission shedding is not a failure, but it is counted
			default:
				failed.Add(1)
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := loadResult{
		Mode:        "inprocess",
		QPSTarget:   qps,
		Seconds:     seconds,
		Sent:        sent.Load(),
		OK:          okCount.Load(),
		Failed:      failed.Load(),
		Shed429:     shed.Load(),
		AchievedQPS: float64(okCount.Load()) / elapsed.Seconds(),
	}
	if os.Getenv("LOAD_TARGET") != "" {
		res.Mode = "external"
	}
	snap := snapshot(t)
	if hs, ok := snap.Histograms["chainserved.verdict.latency"]; ok {
		res.VerdictLatencyNS.Count = hs.Count
		res.VerdictLatencyNS.P50 = hs.P50
		res.VerdictLatencyNS.P95 = hs.P95
		res.VerdictLatencyNS.P99 = hs.P99
	}
	res.Cache.Hits = snap.Counters["chainserved.vcache.hits"]
	res.Cache.Misses = snap.Counters["chainserved.vcache.misses"]

	t.Logf("sustained %.0f qps over %v: %d ok, %d failed, %d shed; verdict p50=%v p95=%v p99=%v",
		res.AchievedQPS, elapsed.Round(time.Millisecond), res.OK, res.Failed, res.Shed429,
		time.Duration(res.VerdictLatencyNS.P50), time.Duration(res.VerdictLatencyNS.P95),
		time.Duration(res.VerdictLatencyNS.P99))

	if res.Failed != 0 {
		t.Fatalf("%d failed requests under load", res.Failed)
	}
	if res.OK == 0 {
		t.Fatal("no request succeeded; the load test proved nothing")
	}
	if res.VerdictLatencyNS.Count == 0 {
		t.Fatal("verdict latency histogram is empty — instrumentation is broken")
	}

	if out := os.Getenv("LOAD_OUT"); out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("record written to %s", out)
	}
}

// inProcessServer builds a chainserved instance over a generated PKI.
func inProcessServer(t *testing.T, reg *obs.Registry) *chainserved.Server {
	t.Helper()
	root, _, _ := loadPKI(t)
	return chainserved.New(chainserved.Config{
		Roots:       rootstore.NewWith("load", root.Cert),
		MaxInFlight: 256,
		Now:         certgen.Reference,
		Metrics:     reg,
	})
}

var pkiOnce struct {
	sync.Once
	root, ca2, ca1 *certgen.Authority
}

// loadPKI generates (once) the load-test PKI: root → ca2 → ca1.
func loadPKI(t *testing.T) (root, ca1, ca2 *certgen.Authority) {
	t.Helper()
	pkiOnce.Do(func() {
		var err error
		if pkiOnce.root, err = certgen.NewRoot("Load Root"); err != nil {
			return
		}
		if pkiOnce.ca2, err = pkiOnce.root.NewIntermediate("Load CA 2"); err != nil {
			return
		}
		pkiOnce.ca1, err = pkiOnce.ca2.NewIntermediate("Load CA 1")
	})
	if pkiOnce.ca1 == nil {
		t.Fatal("PKI generation failed")
	}
	return pkiOnce.root, pkiOnce.ca1, pkiOnce.ca2
}

// inProcessBodies builds a rotation of distinct request bodies — a mix of
// compliant and defective chains across 32 distinct leaves, so the run
// exercises both the grading path and the cache.
func inProcessBodies(t *testing.T) [][]byte {
	t.Helper()
	_, ca1, ca2 := loadPKI(t)
	var bodies [][]byte
	for i := 0; i < 32; i++ {
		domain := fmt.Sprintf("load-%d.example", i)
		leaf, err := ca1.NewLeaf(domain)
		if err != nil {
			t.Fatal(err)
		}
		chain := []*certmodel.Certificate{leaf.Cert, ca1.Cert, ca2.Cert}
		if i%3 == 1 { // reversed bundle
			chain = []*certmodel.Certificate{leaf.Cert, ca2.Cert, ca1.Cert}
		}
		if i%3 == 2 { // duplicated leaf
			chain = []*certmodel.Certificate{leaf.Cert, leaf.Cert, ca1.Cert, ca2.Cert}
		}
		pem, err := certmodel.EncodePEM(chain)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(chainserved.VerdictRequest{Domain: domain, PEM: string(pem)})
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	return bodies
}

// externalBodies loads every chain fixture (all *.pem except roots.pem)
// from dir — the -exemplars output — for external-target mode.
func externalBodies(t *testing.T, dir string) [][]byte {
	t.Helper()
	if dir == "" {
		t.Fatal("LOAD_TARGET requires LOAD_PEM_DIR (run chainserved -exemplars DIR)")
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.pem"))
	if err != nil {
		t.Fatal(err)
	}
	var bodies [][]byte
	for _, p := range paths {
		if filepath.Base(p) == "roots.pem" {
			continue
		}
		pem, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(chainserved.VerdictRequest{Domain: "exemplar.test", PEM: string(pem)})
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	if len(bodies) == 0 {
		t.Fatalf("no chain fixtures in %s", dir)
	}
	return bodies
}

// fetchSnapshot pulls /metrics from an external daemon.
func fetchSnapshot(t *testing.T, base string) *obs.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return &snap
}
