// chainserved serves the paper's analysis pipeline as a long-running
// HTTP/JSON daemon: POST a certificate chain (PEM) or a host:port to
// live-scan and get back the structural compliance verdict, the
// eight-client construction matrix, and the §6-recommendations repair.
//
// Usage:
//
//	chainserved -roots roots.pem [-listen 127.0.0.1:8080] [-workers 0]
//	            [-max-inflight 64] [-max-body 1048576] [-scan-timeout 5s]
//	            [-drain-timeout 30s] [-aia] [-reference-time]
//	            [-metrics metrics.json] [-pprof localhost:6060]
//
//	chainserved -exemplars DIR
//
// Endpoints:
//
//	POST /v1/verdict  {"domain":"example.com","pem":"-----BEGIN ..."}
//	                  {"target":"example.com:443"}
//	GET  /healthz
//	GET  /metrics
//
// SIGTERM (or SIGINT) triggers a graceful drain: the listener closes, every
// in-flight verdict completes, the admitted/completed accounting is
// printed, and the -metrics snapshot is flushed before exit.
//
// -exemplars writes the paper's I-1…I-4 defect exemplars (reversed bundle,
// over-long input list, duplicate/stale/stray pollution, incomplete chain)
// plus a compliant chain and the matching roots.pem into DIR and exits —
// the fixture set the smoke tests and the README quickstart submit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/chainserved"
	"chainchaos/internal/obs"
	"chainchaos/internal/rootstore"
)

func main() {
	cli := obs.NewCLI("chainserved")
	listen := flag.String("listen", "127.0.0.1:8080", "address to serve on")
	rootsFile := flag.String("roots", "", "trust-anchor PEM bundle (required)")
	maxInFlight := flag.Int("max-inflight", chainserved.DefaultMaxInFlight, "concurrent verdict requests before shedding with 429")
	maxBody := flag.Int64("max-body", chainserved.DefaultMaxBody, "request body cap in bytes (oversize answers 413)")
	scanTimeout := flag.Duration("scan-timeout", chainserved.DefaultScanTimeout, "live-scan connection timeout")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on SIGTERM")
	useAIA := flag.Bool("aia", false, "chase caIssuers URIs over HTTP for completeness recovery, AIA-capable clients, and repair")
	refTime := flag.Bool("reference-time", false, "validate at the certgen reference instant (exemplar workflows) instead of structurally")
	exemplars := flag.String("exemplars", "", "write the exemplar chain fixtures plus roots.pem to this directory and exit")
	cli.BindWorkers("per-request client-matrix fan-out (0 = GOMAXPROCS)")
	cli.BindObs()
	flag.Parse()
	cli.Start()

	if *exemplars != "" {
		if err := writeExemplars(*exemplars); err != nil {
			cli.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chainserved: exemplar fixtures written to %s\n", *exemplars)
		return
	}

	if *rootsFile == "" {
		cli.Fatal(errors.New("-roots is required (generate a fixture set with -exemplars DIR)"))
	}
	data, err := os.ReadFile(*rootsFile)
	if err != nil {
		cli.Fatal(err)
	}
	anchors, err := certmodel.ParsePEMBundle(data)
	if err != nil {
		cli.Fatal(fmt.Errorf("parse %s: %w", *rootsFile, err))
	}
	cfg := chainserved.Config{
		Roots:       rootstore.NewWith("chainserved", anchors...),
		Workers:     cli.Workers,
		MaxInFlight: *maxInFlight,
		MaxBody:     *maxBody,
		ScanTimeout: *scanTimeout,
		Metrics:     cli.Metrics,
	}
	if *useAIA {
		cfg.AIA = &aia.HTTPFetcher{Metrics: cli.Metrics}
	}
	if *refTime {
		cfg.Now = certgen.Reference
	}
	s := chainserved.New(cfg)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		cli.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(os.Stderr, "chainserved: %d trust anchors, serving on http://%s\n", len(anchors), ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		cli.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second SIGTERM kills hard

	// Graceful drain: stop accepting, let every admitted request finish,
	// then flush metrics. The admitted/completed equality is the proof no
	// in-flight work was dropped.
	fmt.Fprintf(os.Stderr, "chainserved: draining (%d in flight)\n", s.Admitted()-s.Completed())
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		cli.Fatal(fmt.Errorf("drain: %w", err))
	}
	cli.Finish()
	fmt.Fprintf(os.Stderr, "chainserved: drained clean — %d admitted, %d completed, %d shed\n",
		s.Admitted(), s.Completed(), s.Shed())
	if s.Admitted() != s.Completed() {
		cli.Fatal(fmt.Errorf("drain dropped %d in-flight requests", s.Admitted()-s.Completed()))
	}
}

// writeExemplars generates one PKI for "exemplar.test" and renders the
// defect taxonomy as PEM fixtures:
//
//	roots.pem          the trust anchor for -roots
//	ok.pem             compliant: leaf, ca1, ca2
//	i1-reversed.pem    the bundle pasted in reverse under the leaf
//	i2-long-list.pem   the needed intermediate buried past position 16
//	                   (GnuTLS's input-list limit), padded with duplicates
//	i3-polluted.pem    duplicate leaf, stale renewal leftover, stray root
//	i4-incomplete.pem  leaf alone — the chain the server forgot to ship
func writeExemplars(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	root, err := certgen.NewRoot("Exemplar Root")
	if err != nil {
		return err
	}
	ca2, err := root.NewIntermediate("Exemplar CA 2")
	if err != nil {
		return err
	}
	ca1, err := ca2.NewIntermediate("Exemplar CA 1")
	if err != nil {
		return err
	}
	leaf, err := ca1.NewLeaf("exemplar.test")
	if err != nil {
		return err
	}
	stale, err := ca1.NewLeaf("exemplar.test",
		certgen.WithValidity(certgen.Reference.AddDate(-2, 0, 0), certgen.Reference.AddDate(-1, 0, 0)))
	if err != nil {
		return err
	}
	stray, err := certgen.NewRoot("Stray Root")
	if err != nil {
		return err
	}

	c := func(list ...*certmodel.Certificate) []*certmodel.Certificate { return list }
	long := c(leaf.Cert)
	for len(long) < 16 {
		long = append(long, ca1.Cert)
	}
	long = append(long, ca2.Cert) // position 17: past GnuTLS's window

	files := map[string][]*certmodel.Certificate{
		"roots.pem":         c(root.Cert),
		"ok.pem":            c(leaf.Cert, ca1.Cert, ca2.Cert),
		"i1-reversed.pem":   c(leaf.Cert, ca2.Cert, ca1.Cert),
		"i2-long-list.pem":  long,
		"i3-polluted.pem":   c(leaf.Cert, leaf.Cert, stale.Cert, root.Cert, ca2.Cert, ca1.Cert, stray.Cert),
		"i4-incomplete.pem": c(leaf.Cert),
	}
	for name, list := range files {
		pem, err := certmodel.EncodePEM(list)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name), pem, 0o644); err != nil {
			return err
		}
	}
	return nil
}
