// ledgerverify audits a run's output file against the Merkle anchors its
// checkpoint journal committed to: it re-hashes every record line, rebuilds
// each batch root, and compares them to the journaled anchors and run root.
//
// Usage:
//
//	ledgerverify -out sites.jsonl -journal study.ckpt
//	ledgerverify -out sites.jsonl -journal study.ckpt -sidecar sites.leaves
//	ledgerverify -out verdicts.jsonl -journal diff.ckpt -stage verdict
//	ledgerverify -out population.tsv -journal pop.ckpt -stage generate -header 1
//	ledgerverify -out sites.jsonl -journal study.ckpt -prove 4242
//
// Exit status: 0 when the file matches every commitment, 1 when it has been
// tampered with (the diagnostic names the offending rank when a -sidecar is
// available, the batch range otherwise), 2 on usage or I/O errors.
//
// -prove N emits an RFC 6962-style inclusion proof for record N against its
// anchored batch root — the audit path a third party can check with nothing
// but the journal's anchor line.
package main

import (
	"flag"
	"fmt"
	"os"

	"chainchaos/internal/ledger"
	"chainchaos/internal/pipeline"
)

func main() {
	out := flag.String("out", "", "output file to audit (the run's -out)")
	journal := flag.String("journal", "", "checkpoint journal holding the anchors (the run's -checkpoint)")
	stage := flag.String("stage", "grade", "journal stage the anchors were recorded under (grade, verdict, generate, divergence)")
	header := flag.Int("header", 0, "leading non-record lines to skip (1 for the genpop TSV)")
	sidecar := flag.String("sidecar", "", "leaf-hash sidecar from the run's -ledger-sidecar (enables exact-rank attribution)")
	prove := flag.Int("prove", -1, "emit an inclusion proof for this record instead of verifying the whole file")
	flag.Parse()
	if *out == "" || *journal == "" {
		fmt.Fprintln(os.Stderr, "ledgerverify: -out and -journal are required")
		flag.Usage()
		os.Exit(2)
	}

	if *prove >= 0 {
		if err := proveInclusion(*out, *header, *journal, *stage, *prove); err != nil {
			fmt.Fprintf(os.Stderr, "ledgerverify: %v\n", err)
			os.Exit(2)
		}
		return
	}

	rep, err := ledger.VerifyFile(*out, *header, *journal, *stage, *sidecar)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ledgerverify: %v\n", err)
		if _, tampered := err.(*ledger.TamperError); tampered {
			os.Exit(1)
		}
		os.Exit(2)
	}
	fmt.Printf("ledgerverify: OK — %d record lines, %d anchored batches", rep.Lines, rep.Batches)
	if rep.Partials > 0 {
		fmt.Printf(", %d partial anchors", rep.Partials)
	}
	if rep.Tail > 0 {
		fmt.Printf(", %d unanchored tail lines (interrupted run)", rep.Tail)
	}
	fmt.Println()
	if rep.RunRoot != "" {
		fmt.Printf("run root: %s\n", rep.RunRoot)
	} else {
		fmt.Println("run root: (none journaled — run not sealed)")
	}
}

// proveInclusion prints the audit path for one record: its leaf hash, the
// sibling hashes up to its batch root, and the anchored root it resolves to.
func proveInclusion(out string, header int, journal, stage string, rank int) error {
	recs, err := pipeline.ReadAnchors(journal)
	if err != nil {
		return err
	}
	var anchor *pipeline.AnchorRecord
	for i, r := range recs {
		if r.Stage != stage || r.Event != "anchor" || r.Partial {
			continue
		}
		if r.Lo <= rank && rank < r.Hi {
			anchor = &recs[i]
			break
		}
	}
	if anchor == nil {
		return fmt.Errorf("no final anchor covers record %d (stage %q)", rank, stage)
	}
	root, ok := ledger.ParseHash(anchor.Root)
	if !ok {
		return fmt.Errorf("journal anchor for batch %d holds malformed root %q", anchor.Batch, anchor.Root)
	}
	leaves, err := ledger.ReadLeafRange(out, header, anchor.Lo, anchor.Hi)
	if err != nil {
		return err
	}
	idx := rank - anchor.Lo
	proof := ledger.InclusionProof(leaves, idx)
	if !ledger.VerifyInclusion(root, len(leaves), idx, leaves[idx], proof) {
		return fmt.Errorf("record %d does not verify against the anchored root for batch %d — the file is tampered; run without -prove for the full audit", rank, anchor.Batch)
	}
	fmt.Printf("record:     %d (leaf %d of batch %d, leaves [%d,%d))\n", rank, idx, anchor.Batch, anchor.Lo, anchor.Hi)
	fmt.Printf("leaf hash:  %s\n", ledger.HexHash(leaves[idx]))
	for i, h := range proof {
		fmt.Printf("path[%d]:    %s\n", i, ledger.HexHash(h))
	}
	fmt.Printf("batch root: %s (anchored)\n", anchor.Root)
	fmt.Println("inclusion proof verifies")
	return nil
}
