// genpop generates a synthetic web population and emits a per-domain
// inventory (TSV) with its ground-truth defect labels, for external analysis
// or as a workload for other tools.
//
// Usage:
//
//	genpop -size 10000 -seed 1 > population.tsv
//	genpop -size 10000 -summary
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"chainchaos/internal/population"
)

func main() {
	size := flag.Int("size", 10000, "number of domains")
	seed := flag.Int64("seed", 1, "generator seed")
	summary := flag.Bool("summary", false, "print aggregate statistics instead of the TSV")
	flag.Parse()

	pop := population.Generate(population.Config{Size: *size, Seed: *seed})

	if *summary {
		printSummary(pop)
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "rank\tdomain\tca\tserver\tcerts\tdup\tirrelevant\tmultipath\treversed\tincomplete\tleaf_mismatch")
	for _, d := range pop.Domains {
		t := d.Truth
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%d\t%v\t%v\t%v\t%v\t%v\t%v\n",
			d.Rank, d.Name, d.CA, d.Server, len(d.List),
			t.DuplicateLeaf || t.DuplicateIntermediate || t.DuplicateRoot,
			t.Irrelevant != population.IrrelevantNone,
			t.MultiplePaths, t.Reversed, t.Incomplete, t.LeafMismatch)
	}
}

func printSummary(pop *population.Population) {
	var dup, irr, multi, rev, inc, mismatch, other, nc int
	byCA := map[string]int{}
	byServer := map[string]int{}
	for _, d := range pop.Domains {
		t := d.Truth
		byCA[d.CA]++
		byServer[d.Server]++
		if t.DuplicateLeaf || t.DuplicateIntermediate || t.DuplicateRoot {
			dup++
		}
		if t.Irrelevant != population.IrrelevantNone {
			irr++
		}
		if t.MultiplePaths {
			multi++
		}
		if t.Reversed {
			rev++
		}
		if t.Incomplete {
			inc++
		}
		if t.LeafMismatch {
			mismatch++
		}
		if t.LeafOther {
			other++
		}
		if t.NonCompliant() {
			nc++
		}
	}
	n := len(pop.Domains)
	pct := func(v int) string { return fmt.Sprintf("%d (%.2f%%)", v, 100*float64(v)/float64(n)) }
	fmt.Printf("domains:              %d\n", n)
	fmt.Printf("non-compliant:        %s\n", pct(nc))
	fmt.Printf("  duplicates:         %s\n", pct(dup))
	fmt.Printf("  irrelevant:         %s\n", pct(irr))
	fmt.Printf("  multiple paths:     %s\n", pct(multi))
	fmt.Printf("  reversed:           %s\n", pct(rev))
	fmt.Printf("  incomplete:         %s\n", pct(inc))
	fmt.Printf("leaf mismatch:        %s\n", pct(mismatch))
	fmt.Printf("leaf 'other':         %s\n", pct(other))
	fmt.Printf("issuer hierarchies:   %d, AIA repository entries: %d\n", len(pop.Issuers), pop.Repo.Len())
	fmt.Printf("union root store:     %d roots\n", pop.Roots().Len())
	fmt.Println("\nby CA:")
	for name, c := range byCA {
		fmt.Printf("  %-22s %s\n", name, pct(c))
	}
	fmt.Println("by server:")
	for name, c := range byServer {
		fmt.Printf("  %-38s %s\n", name, pct(c))
	}
}
