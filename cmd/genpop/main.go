// genpop generates a synthetic web population and emits a per-domain
// inventory (TSV) with its ground-truth defect labels, for external analysis
// or as a workload for other tools.
//
// Usage:
//
//	genpop -size 10000 -seed 1 > population.tsv
//	genpop -size 10000 -summary
//	genpop -size 1000000 -stream -out population.tsv -checkpoint population.ckpt
//
// With -stream, rows are written as domains are generated — peak memory is
// bounded by the worker pool, not the population — and the bytes are
// identical to the batch path. -checkpoint journals progress so an
// interrupted generation resumes where it stopped, appending to -out.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/ledger"
	"chainchaos/internal/obs"
	"chainchaos/internal/pipeline"
	"chainchaos/internal/population"
)

func main() {
	cli := obs.NewCLI("genpop")
	size := flag.Int("size", 10000, "number of domains")
	seed := flag.Int64("seed", 1, "generator seed")
	summary := flag.Bool("summary", false, "print aggregate statistics instead of the TSV")
	reuse := flag.Float64("reuse", 0, "fraction of domains presenting a pooled (duplicate) chain — the paper's hosting-provider skew")
	pool := flag.Int("pool", 0, "distinct-chain pool size under -reuse (0 = default 3000)")
	stream := flag.Bool("stream", false, "emit rows as domains are generated instead of materializing the population")
	outFile := flag.String("out", "", "write the TSV here (default stdout; implies -stream)")
	checkpoint := flag.String("checkpoint", "", "journal progress to this file and resume an interrupted run from it (implies -stream)")
	scenarioFile := flag.String("scenario-file", "", "inject fuzzer-discovered chain topologies from this scenario file (cmd/divfuzz -scenarios)")
	scenarioRate := flag.Float64("scenario-rate", 0.01, "fraction of domains presenting an injected scenario under -scenario-file")
	cli.BindWorkers("parallel workers for generation (0 = GOMAXPROCS)")
	cli.BindLedger()
	cli.BindObs()
	flag.Parse()
	cli.Start()
	defer cli.Finish()

	cfg := population.Config{Size: *size, Seed: *seed, Workers: cli.Workers, ChainReuse: *reuse, ChainPool: *pool}
	if *scenarioFile != "" {
		scs, err := population.LoadScenarios(*scenarioFile)
		if err != nil {
			cli.Fatal(err)
		}
		cfg.Scenarios, cfg.ScenarioRate = scs, *scenarioRate
	}
	if !(*stream || *outFile != "" || *checkpoint != "") {
		pop := population.Generate(cfg)
		if *summary {
			printSummary(pop)
			return
		}
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		writeHeader(w)
		for _, d := range pop.Domains {
			writeRow(w, d)
		}
		return
	}

	src := population.NewSource(cfg)
	opts := pipeline.Options{Name: "genpop", Metrics: cli.Metrics}
	if *checkpoint != "" {
		j, resume, err := pipeline.Checkpoint(*checkpoint, "generate")
		if err != nil {
			cli.Fatal(err)
		}
		defer j.Close()
		if *outFile != "" && !*summary {
			// Reconcile the TSV with the watermark: one header line, then
			// one row per rank.
			resume, err = pipeline.RecoverOutput(*outFile, 1, j, "generate", nil)
			if err != nil {
				cli.Fatal(err)
			}
		}
		opts.Journal, opts.Resume = j, resume
		if resume > 0 {
			fmt.Fprintf(os.Stderr, "genpop: resuming from rank %d\n", resume+1)
		}
	}

	if *summary {
		pop := src.Population()
		st := &stats{byCA: map[string]int{}, byServer: map[string]int{}}
		err := src.Each(context.Background(), opts, func(d *population.Domain) error {
			st.add(d)
			return nil
		})
		if err != nil {
			cli.Fatal(err)
		}
		st.print(pop)
		return
	}

	var out io.Writer = os.Stdout
	if *outFile != "" {
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if *checkpoint != "" {
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(*outFile, mode, 0o644)
		if err != nil {
			cli.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	// The TSV sink only exposes an io.Writer, so the ledger tees through a
	// LineWriter: every completed row (header excluded) becomes a leaf, and
	// row rank == leaf index.
	var b *ledger.Batcher
	if opts.Journal != nil && *outFile != "" && cli.LedgerBatch > 0 {
		var sw io.Writer
		if cli.LedgerSidecar != "" {
			side, err := os.Create(cli.LedgerSidecar)
			if err != nil {
				cli.Fatal(err)
			}
			defer side.Close()
			sw = side
		}
		b = ledger.JournalBatcher(opts.Journal, "generate", cli.LedgerBatch, cli.LedgerLatency, nil, sw)
		if err := ledger.Replay(b, *outFile, 1, opts.Resume); err != nil {
			cli.Fatal(err)
		}
		skip := 0
		if opts.Resume == 0 {
			skip = 1 // this run writes the header; a resumed run appends rows only
		}
		out = &ledger.LineWriter{W: out, B: b, Skip: skip}
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	if opts.Resume == 0 {
		writeHeader(w)
	}
	err := src.Each(context.Background(), opts, func(d *population.Domain) error {
		writeRow(w, d)
		return nil
	})
	if err != nil {
		cli.Fatal(err)
	}
	if b != nil {
		// Flush before sealing: rows still buffered here have not reached
		// the LineWriter, and the run root must cover every row.
		if err := w.Flush(); err != nil {
			cli.Fatal(err)
		}
		if _, _, err := ledger.Seal(b, opts.Journal, "generate"); err != nil {
			cli.Fatal(err)
		}
	}
}

func writeHeader(w io.Writer) {
	fmt.Fprintln(w, "rank\tdomain\tca\tserver\tcerts\tdup\tirrelevant\tmultipath\treversed\tincomplete\tleaf_mismatch\tshared")
}

func writeRow(w io.Writer, d *population.Domain) {
	t := d.Truth
	fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%d\t%v\t%v\t%v\t%v\t%v\t%v\t%v\n",
		d.Rank, d.Name, d.CA, d.Server, len(d.List),
		t.DuplicateLeaf || t.DuplicateIntermediate || t.DuplicateRoot,
		t.Irrelevant != population.IrrelevantNone,
		t.MultiplePaths, t.Reversed, t.Incomplete, t.LeafMismatch, d.Shared)
}

// stats accumulates the -summary aggregates one domain at a time, so the
// streaming path never holds the population.
type stats struct {
	n                                          int
	dup, irr, multi, rev, inc, mismatch, other int
	nc, shared, scenario                       int
	chains                                     map[certmodel.FP]struct{}
	byCA, byServer                             map[string]int
}

func (s *stats) add(d *population.Domain) {
	t := d.Truth
	s.n++
	s.byCA[d.CA]++
	s.byServer[d.Server]++
	if d.Shared {
		s.shared++
	}
	if d.Scenario != "" {
		s.scenario++
	}
	if s.chains == nil {
		s.chains = map[certmodel.FP]struct{}{}
	}
	s.chains[certmodel.ListDigest(d.List)] = struct{}{}
	if t.DuplicateLeaf || t.DuplicateIntermediate || t.DuplicateRoot {
		s.dup++
	}
	if t.Irrelevant != population.IrrelevantNone {
		s.irr++
	}
	if t.MultiplePaths {
		s.multi++
	}
	if t.Reversed {
		s.rev++
	}
	if t.Incomplete {
		s.inc++
	}
	if t.LeafMismatch {
		s.mismatch++
	}
	if t.LeafOther {
		s.other++
	}
	if t.NonCompliant() {
		s.nc++
	}
}

func (s *stats) print(pop *population.Population) {
	pct := func(v int) string { return fmt.Sprintf("%d (%.2f%%)", v, 100*float64(v)/float64(s.n)) }
	fmt.Printf("domains:              %d\n", s.n)
	fmt.Printf("non-compliant:        %s\n", pct(s.nc))
	fmt.Printf("  duplicates:         %s\n", pct(s.dup))
	fmt.Printf("  irrelevant:         %s\n", pct(s.irr))
	fmt.Printf("  multiple paths:     %s\n", pct(s.multi))
	fmt.Printf("  reversed:           %s\n", pct(s.rev))
	fmt.Printf("  incomplete:         %s\n", pct(s.inc))
	fmt.Printf("leaf mismatch:        %s\n", pct(s.mismatch))
	fmt.Printf("leaf 'other':         %s\n", pct(s.other))
	fmt.Printf("shared chain:         %s\n", pct(s.shared))
	fmt.Printf("injected scenario:    %s\n", pct(s.scenario))
	fmt.Printf("distinct chains:      %d\n", len(s.chains))
	fmt.Printf("issuer hierarchies:   %d, AIA repository entries: %d\n", len(pop.Issuers), pop.Repo.Len())
	fmt.Printf("union root store:     %d roots\n", pop.Roots().Len())
	fmt.Println("\nby CA:")
	for name, c := range s.byCA {
		fmt.Printf("  %-22s %s\n", name, pct(c))
	}
	fmt.Println("by server:")
	for name, c := range s.byServer {
		fmt.Printf("  %-38s %s\n", name, pct(c))
	}
}

func printSummary(pop *population.Population) {
	st := &stats{byCA: map[string]int{}, byServer: map[string]int{}}
	for _, d := range pop.Domains {
		st.add(d)
	}
	st.print(pop)
}
