// Distributed execution for the differential evaluation: -distribute N runs
// this command as a coordinator leasing contiguous rank ranges of the
// synthetic population to N copies of itself started with -worker; each
// worker runs generate→analyze→difftest over its leased range and streams
// verdict lines back, and the coordinator merges them in rank order —
// byte-identical to a single-process -stream run, resumable through the same
// -checkpoint journal.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"chainchaos/internal/dist"
	"chainchaos/internal/experiments"
	"chainchaos/internal/obs"
	"chainchaos/internal/pipeline"
)

// diffJob is the coordinator→worker config payload: everything a worker
// needs to reproduce the exact evaluation a single process would run. The
// population source is rank-deterministic in (Size, Seed), which is what
// makes leased sub-ranges byte-identical to the full run.
type diffJob struct {
	Size    int     `json:"size"`
	Seed    int64   `json:"seed"`
	Workers int     `json:"workers"`
	Reuse   float64 `json:"reuse,omitempty"`
	Pool    int     `json:"pool,omitempty"`
	Dedup   bool    `json:"dedup,omitempty"`
	// KillAfter, when > 0, makes the worker SIGKILL itself after processing
	// that many ranks — the chaos knob that proves a mid-lease kill -9
	// loses no verdicts.
	KillAfter int `json:"kill_after,omitempty"`
}

// runWorker is the -worker mode: serve leases over stdio (or a dialed TCP
// connection when -connect is set) until the coordinator closes the wire.
// Stdout is the wire; the run must write nothing else to it.
func runWorker(cli *obs.CLI) error {
	setup := func(payload json.RawMessage) (dist.RangeRunner, *obs.Registry, error) {
		var job diffJob
		if err := json.Unmarshal(payload, &job); err != nil {
			return nil, nil, fmt.Errorf("bad worker payload: %w", err)
		}
		reg := obs.NewRegistry()
		killAfter := job.KillAfter
		processed := 0
		runner := func(ctx context.Context, lo, hi int, emit func(rank int, line []byte) error) (map[string]int64, error) {
			sum, err := experiments.DifferentialStreamSummary(ctx, experiments.StreamConfig{
				Size: job.Size, Seed: job.Seed, Workers: job.Workers,
				Metrics: reg, Reuse: job.Reuse, Pool: job.Pool, Dedup: job.Dedup,
				Resume: lo, Limit: hi,
				Record: func(rank int, line []byte) error {
					if err := emit(rank, line); err != nil {
						return err
					}
					if processed++; killAfter > 0 && processed >= killAfter {
						dist.KillSelf()
					}
					return nil
				},
			})
			if err != nil {
				return nil, err
			}
			return sum.Tallies(), nil
		}
		return runner, reg, nil
	}
	if cli.Connect != "" {
		return dist.ServeTCP(context.Background(), cli.Connect, setup)
	}
	return dist.ServeStdio(context.Background(), setup)
}

// The distributed path does not ledger: worker-side root folding needs a
// dense sink (leaf index == rank), and the verdict stream is sparse — a
// line's leaf index is its position in the merged file, which no worker can
// know. Single-process -stream runs ledger; see runStreaming.
//
// runDistributed is the -distribute N coordinator: same journal/output
// wiring as runStreaming, with the evaluation executed by N worker processes
// instead of in-process stages. The verdict JSONL is sparse — only
// non-compliant chains emit a line — so output recovery locates the resume
// point through each line's rank field, exactly as the single-process path
// does.
func runDistributed(cli *obs.CLI, size int, seed int64, outFile, checkpoint string, reuse float64, pool int, dedup bool, killAfter int) error {
	var j *pipeline.Journal
	resume := 0
	if checkpoint != "" {
		var err error
		j, resume, err = pipeline.Checkpoint(checkpoint, "verdict")
		if err != nil {
			return err
		}
		defer j.Close()
		if outFile != "" {
			resume, err = pipeline.RecoverOutput(outFile, 0, j, "verdict", verdictRank)
			if err != nil {
				return err
			}
		}
		if resume > 0 {
			fmt.Fprintf(os.Stderr, "experiments: resuming from rank %d\n", resume+1)
		}
	}
	var out io.Writer = os.Stdout
	if outFile != "" {
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if checkpoint != "" {
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(outFile, mode, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	job := diffJob{
		Size: size, Seed: seed, Workers: cli.Workers,
		Reuse: reuse, Pool: pool, Dedup: dedup,
	}
	payload := func(slot, spawn int) []byte {
		pj := job
		if killAfter > 0 && slot == 0 && spawn == 0 {
			// Arm the chaos kill on the first worker's first incarnation
			// only: its replacement (and every other worker) runs clean.
			pj.KillAfter = killAfter
		}
		b, _ := json.Marshal(pj)
		return b
	}

	var launch dist.Launcher
	if cli.DistListen != "" {
		tl, err := dist.ListenTCP(cli.DistListen)
		if err != nil {
			return err
		}
		defer tl.Close()
		fmt.Fprintf(os.Stderr, "experiments: waiting for %d workers on %s (run: experiments -worker -connect %s)\n",
			cli.Distribute, tl.Addr(), tl.Addr())
		launch = tl
	} else {
		launch = &dist.ProcLauncher{Args: []string{"-worker"}}
	}

	fmt.Printf("population: %d domains, seed %d (distributed over %d workers)\n\n", size, seed, cli.Distribute)
	res, err := dist.Run(context.Background(), dist.Config{
		Workers: cli.Distribute, Resume: resume, Total: size,
		LeaseSize: cli.DistLease,
		Out:       out, Journal: j, SinkStage: "verdict",
		Metrics: cli.Metrics, Launch: launch, Payload: payload,
	})
	if err != nil {
		return err
	}
	if res.Reassigned > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d lease reassignments, %d worker respawns\n", res.Reassigned, res.Respawns)
	}
	fmt.Println(experiments.DifferentialTableFromTallies(res.Tallies))
	return nil
}
