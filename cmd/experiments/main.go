// experiments regenerates every table and figure of the paper's evaluation
// over the synthetic population.
//
// Usage:
//
//	experiments [-size 100000] [-seed 1] [-run t3,t9,d1] [-workers 0]
//	            [-stream] [-out verdicts.jsonl] [-checkpoint diff.ckpt]
//	            [-distribute 4] [-dist-listen addr | -worker -connect addr]
//	            [-metrics metrics.json] [-pprof localhost:6060]
//
// Experiment ids: t1 t3 t4 t5 t6 t7 t8 t9 t10 t11 f2 f3 f4 f5 d1 d2 d3 (default:
// all, in paper order).
//
// With -stream the differential evaluation (d1) runs over the streaming
// population source — domains are generated, analyzed, and graded in flight
// with bounded memory, which is how the paper-scale 906,336-chain run fits —
// writing one JSON line per non-compliant chain to -out and checkpointing
// progress to -checkpoint. The other experiments need the materialized
// population, so -stream runs d1 only.
//
// -distribute N runs d1 as a coordinator leasing contiguous rank ranges to
// N worker processes (copies of this binary run with -worker); verdict
// lines merge in rank order, byte-identical to a single-process -stream
// run, resumable through the same -checkpoint. See cmd/experiments/dist.go.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"chainchaos/internal/experiments"
	"chainchaos/internal/ledger"
	"chainchaos/internal/obs"
	"chainchaos/internal/pipeline"
)

func main() {
	cli := obs.NewCLI("experiments")
	size := flag.Int("size", 100000, "population size (906336 = paper scale)")
	seed := flag.Int64("seed", 1, "population seed")
	run := flag.String("run", "", "comma-separated experiment ids (default all)")
	stream := flag.Bool("stream", false, "run the differential evaluation (d1) over the streaming source with bounded memory")
	outFile := flag.String("out", "", "with -stream: write per-chain verdict JSONL here")
	checkpoint := flag.String("checkpoint", "", "with -stream: journal progress to this file and resume from it")
	reuse := flag.Float64("reuse", 0, "with -stream: fraction of domains presenting a pooled (duplicate) chain")
	pool := flag.Int("pool", 0, "with -stream: distinct-chain pool size under -reuse (0 = default 3000)")
	dedup := flag.Bool("dedup", false, "with -stream: memoize verdicts per distinct chain (bit-identical output, duplicate chains cost a lookup)")
	killAfter := flag.Int("dist-kill-after", 0, "chaos: the first worker SIGKILLs itself after processing this many ranks (distributed runs only)")
	cli.BindWorkers("parallel workers for generation/analysis/difftest (0 = GOMAXPROCS)")
	cli.BindDistribute()
	cli.BindLedger()
	cli.BindObs()
	flag.Parse()
	if cli.Worker {
		// The worker path returns before Start, so validate here too.
		if err := cli.Validate(); err != nil {
			cli.Fatal(err)
		}
		if err := runWorker(cli); err != nil {
			cli.Fatal(err)
		}
		return
	}
	cli.Start()

	if cli.Distribute > 0 {
		if *run != "" && strings.TrimSpace(strings.ToLower(*run)) != "d1" {
			cli.Fatal(fmt.Errorf("-distribute runs the differential evaluation only; drop -run or pass -run d1"))
		}
		if err := runDistributed(cli, *size, *seed, *outFile, *checkpoint, *reuse, *pool, *dedup, *killAfter); err != nil {
			cli.Fatal(err)
		}
		cli.Finish()
		return
	}
	if *stream || *outFile != "" || *checkpoint != "" {
		runStreaming(cli, *size, *seed, *run, *outFile, *checkpoint, *reuse, *pool, *dedup)
		cli.Finish()
		return
	}

	env := experiments.NewEnv(*size, *seed)
	env.Workers = cli.Workers
	env.Metrics = cli.Metrics
	type exp struct {
		id string
		fn func() (fmt.Stringer, error)
	}
	str := func(f func() fmt.Stringer) func() (fmt.Stringer, error) {
		return func() (fmt.Stringer, error) { return f(), nil }
	}
	all := []exp{
		{"t1", func() (fmt.Stringer, error) { return env.CapabilityComparison() }},
		{"t3", str(func() fmt.Stringer { return env.LeafPlacement() })},
		{"t4", str(func() fmt.Stringer { return env.HTTPServerCharacteristics() })},
		{"t5", str(func() fmt.Stringer { return env.IssuanceOrder() })},
		{"t6", str(func() fmt.Stringer { return env.CADeliveryCharacteristics() })},
		{"t7", str(func() fmt.Stringer { return env.Completeness() })},
		{"t8", str(func() fmt.Stringer { return env.RootStoreAIA() })},
		{"t9", func() (fmt.Stringer, error) { return env.ClientCapabilities() }},
		{"t10", str(func() fmt.Stringer { return env.HTTPServerBreakdown() })},
		{"t11", str(func() fmt.Stringer { return env.CABreakdown() })},
		{"f2", str(func() fmt.Stringer { return env.TopologyGallery() })},
		{"f3", func() (fmt.Stringer, error) { return env.CaseLongChain() }},
		{"f4", func() (fmt.Stringer, error) { return env.CaseBacktracking() }},
		{"f5", func() (fmt.Stringer, error) { return env.CaseValidityPriority() }},
		{"d1", str(func() fmt.Stringer { return env.DifferentialOverview() })},
		{"d2", str(func() fmt.Stringer { return env.PrioritizationStats() })},
		{"d3", str(func() fmt.Stringer { return env.CapabilityAblation() })},
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	fmt.Printf("population: %d domains, seed %d\n\n", *size, *seed)
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		t, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(t)
		fmt.Printf("[%s took %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	cli.Finish()
}

// runStreaming is the -stream path: the §5.2 differential evaluation over
// the streaming population source, with optional per-chain JSONL output and
// checkpoint/resume.
func runStreaming(cli *obs.CLI, size int, seed int64, run, outFile, checkpoint string, reuse float64, pool int, dedup bool) {
	if run != "" && strings.TrimSpace(strings.ToLower(run)) != "d1" {
		cli.Fatal(fmt.Errorf("-stream runs the differential evaluation only; drop -run or pass -run d1"))
	}
	cfg := experiments.StreamConfig{
		Size: size, Seed: seed, Workers: cli.Workers, Metrics: cli.Metrics,
		Reuse: reuse, Pool: pool, Dedup: dedup,
	}
	var j *pipeline.Journal
	if checkpoint != "" {
		var resume int
		var err error
		j, resume, err = pipeline.Checkpoint(checkpoint, "verdict")
		if err != nil {
			cli.Fatal(err)
		}
		defer j.Close()
		if outFile != "" {
			// The verdict JSONL is sparse — only non-compliant chains emit a
			// line — so each line's 1-based rank field locates it.
			resume, err = pipeline.RecoverOutput(outFile, 0, j, "verdict", verdictRank)
			if err != nil {
				cli.Fatal(err)
			}
		}
		cfg.Journal, cfg.Resume = j, resume
		if resume > 0 {
			fmt.Fprintf(os.Stderr, "experiments: resuming from rank %d (summary covers the remaining chains only)\n", resume+1)
		}
	}
	if outFile != "" {
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if checkpoint != "" {
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(outFile, mode, 0o644)
		if err != nil {
			cli.Fatal(err)
		}
		defer f.Close()
		cfg.Out = f
	}
	// Ledger the sparse verdict stream: leaf index is the line's position
	// in the file, so the resume replay feeds every recovered line (-1).
	if j != nil && outFile != "" && cli.LedgerBatch > 0 {
		var sw io.Writer
		if cli.LedgerSidecar != "" {
			side, err := os.Create(cli.LedgerSidecar)
			if err != nil {
				cli.Fatal(err)
			}
			defer side.Close()
			sw = side
		}
		cfg.Ledger = ledger.JournalBatcher(j, "verdict", cli.LedgerBatch, cli.LedgerLatency, nil, sw)
		if err := ledger.Replay(cfg.Ledger, outFile, 0, -1); err != nil {
			cli.Fatal(err)
		}
	}
	fmt.Printf("population: %d domains, seed %d (streaming)\n\n", size, seed)
	start := time.Now()
	t, err := experiments.DifferentialStream(context.Background(), cfg)
	if err != nil {
		cli.Fatal(err)
	}
	if cfg.Ledger != nil {
		if _, _, err := ledger.Seal(cfg.Ledger, j, "verdict"); err != nil {
			cli.Fatal(err)
		}
	}
	fmt.Println(t)
	fmt.Printf("[d1 took %v]\n\n", time.Since(start).Round(time.Millisecond))
}

// verdictRank extracts the zero-based pipeline rank from one line of the
// verdict JSONL (difftest.RecordLine carries the domain's 1-based rank).
func verdictRank(line []byte) (int, bool) {
	var rec struct {
		Rank int `json:"rank"`
	}
	if json.Unmarshal(line, &rec) != nil || rec.Rank < 1 {
		return 0, false
	}
	return rec.Rank - 1, true
}
