// experiments regenerates every table and figure of the paper's evaluation
// over the synthetic population.
//
// Usage:
//
//	experiments [-size 100000] [-seed 1] [-run t3,t9,d1] [-workers 0]
//	            [-metrics metrics.json] [-pprof localhost:6060]
//
// Experiment ids: t1 t3 t4 t5 t6 t7 t8 t9 t10 t11 f2 f3 f4 f5 d1 d2 d3 (default:
// all, in paper order).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chainchaos/internal/experiments"
	"chainchaos/internal/obs"
)

func main() {
	size := flag.Int("size", 100000, "population size (906336 = paper scale)")
	seed := flag.Int64("seed", 1, "population seed")
	run := flag.String("run", "", "comma-separated experiment ids (default all)")
	workers := flag.Int("workers", 0, "parallel workers for generation/analysis/difftest (0 = GOMAXPROCS)")
	metricsFile := flag.String("metrics", "", "write the run's metrics snapshot as JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address for the run's duration")
	flag.Parse()

	if addr, err := obs.StartPprof(*pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	} else if addr != "" {
		fmt.Fprintf(os.Stderr, "experiments: pprof on http://%s/debug/pprof/\n", addr)
	}

	env := experiments.NewEnv(*size, *seed)
	env.Workers = *workers
	env.Metrics = obs.NewRegistry()
	type exp struct {
		id string
		fn func() (fmt.Stringer, error)
	}
	str := func(f func() fmt.Stringer) func() (fmt.Stringer, error) {
		return func() (fmt.Stringer, error) { return f(), nil }
	}
	all := []exp{
		{"t1", func() (fmt.Stringer, error) { return env.CapabilityComparison() }},
		{"t3", str(func() fmt.Stringer { return env.LeafPlacement() })},
		{"t4", str(func() fmt.Stringer { return env.HTTPServerCharacteristics() })},
		{"t5", str(func() fmt.Stringer { return env.IssuanceOrder() })},
		{"t6", str(func() fmt.Stringer { return env.CADeliveryCharacteristics() })},
		{"t7", str(func() fmt.Stringer { return env.Completeness() })},
		{"t8", str(func() fmt.Stringer { return env.RootStoreAIA() })},
		{"t9", func() (fmt.Stringer, error) { return env.ClientCapabilities() }},
		{"t10", str(func() fmt.Stringer { return env.HTTPServerBreakdown() })},
		{"t11", str(func() fmt.Stringer { return env.CABreakdown() })},
		{"f2", str(func() fmt.Stringer { return env.TopologyGallery() })},
		{"f3", func() (fmt.Stringer, error) { return env.CaseLongChain() }},
		{"f4", func() (fmt.Stringer, error) { return env.CaseBacktracking() }},
		{"f5", func() (fmt.Stringer, error) { return env.CaseValidityPriority() }},
		{"d1", str(func() fmt.Stringer { return env.DifferentialOverview() })},
		{"d2", str(func() fmt.Stringer { return env.PrioritizationStats() })},
		{"d3", str(func() fmt.Stringer { return env.CapabilityAblation() })},
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	fmt.Printf("population: %d domains, seed %d\n\n", *size, *seed)
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		t, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(t)
		fmt.Printf("[%s took %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if *metricsFile != "" {
		if err := obs.WriteJSON(env.Metrics, *metricsFile); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: metrics written to %s\n", *metricsFile)
	}
}
