// chainfix repairs a non-compliant certificate bundle into a compliant
// deployment (the paper's §6 recommendations automated): duplicates removed,
// irrelevant certificates dropped, issuance order restored, missing
// intermediates fetched through AIA, root stripped (or kept with -keep-root).
//
// Usage:
//
//	chainfix -bundle chain.pem [-roots roots.pem] [-keep-root] [-aia] [-o fixed.pem]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/chainfix"
	"chainchaos/internal/obs"
	"chainchaos/internal/rootstore"
)

var cli = obs.NewCLI("chainfix")

func main() {
	bundle := flag.String("bundle", "", "PEM bundle to repair (required)")
	rootsFile := flag.String("roots", "", "PEM trust anchors (defaults to self-signed certs in the bundle)")
	keepRoot := flag.Bool("keep-root", false, "retain the root certificate in the output")
	useAIA := flag.Bool("aia", false, "allow live HTTP AIA fetching to complete the chain")
	out := flag.String("o", "", "write the repaired PEM here (default: stdout)")
	domain := flag.String("domain", "", "domain for the final compliance report")
	cli.BindObs()
	flag.Parse()
	cli.Start()

	if *bundle == "" {
		fmt.Fprintln(os.Stderr, "usage: chainfix -bundle chain.pem [flags]")
		os.Exit(2)
	}
	data, err := os.ReadFile(*bundle)
	if err != nil {
		fatal(err)
	}
	list, err := certmodel.ParsePEMBundle(data)
	if err != nil {
		fatal(err)
	}
	roots := rootstore.New("cli")
	if *rootsFile != "" {
		anchors, err := os.ReadFile(*rootsFile)
		if err != nil {
			fatal(err)
		}
		parsed, err := certmodel.ParsePEMBundle(anchors)
		if err != nil {
			fatal(err)
		}
		for _, c := range parsed {
			roots.Add(c)
		}
	} else {
		for _, c := range list {
			if c.SelfSigned() {
				roots.Add(c)
			}
		}
	}

	fixer := &chainfix.Fixer{Roots: roots, KeepRoot: *keepRoot}
	if *useAIA {
		fixer.Fetcher = &aia.HTTPFetcher{Client: &http.Client{Timeout: 10 * time.Second}}
	}
	d := *domain
	if d == "" {
		d = list[0].Subject.CommonName
	}
	res, err := fixer.Fix(list, d)
	if err != nil {
		fatal(err)
	}

	for _, a := range res.Actions {
		fmt.Fprintln(os.Stderr, "chainfix:", a)
	}
	fmt.Fprintf(os.Stderr, "chainfix: %d -> %d certificates, compliant: %v\n",
		len(list), len(res.List), res.Report.Compliant())

	pemOut, err := certmodel.EncodePEM(res.List)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(pemOut)
	} else if err := os.WriteFile(*out, pemOut, 0o644); err != nil {
		fatal(err)
	}
	cli.Finish()
}

func fatal(err error) {
	cli.Fatal(err)
}
