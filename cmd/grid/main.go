// grid runs a reproducible experiment grid from a declarative spec: it
// builds the named tools, sweeps the spec's variable axes cell by cell
// (sequentially — wall numbers must not share the machine), repeats each
// cell with fixed seeds, audits ledgered outputs, and writes one
// machine-readable summary (BENCH_<name>.json) plus a flat CSV of
// per-(cell, repeat, step) wall times and anchored run roots.
//
// Usage:
//
//	grid -spec scripts/grids/pr10.json
//	grid -spec scripts/grids/pr7.json -set sites=100000 -set reuse=0.9995
//	grid -spec scripts/grids/ci_smoke.json -repeats 2 -work grid-work -out smoke.json
//
// Spec format (JSON, or a small TOML subset): see internal/grid and the
// committed specs under scripts/grids/. scripts/bench_json.sh is a thin
// wrapper mapping the historical PR=pr6..pr10 env-var invocations onto
// these specs.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"chainchaos/internal/grid"
)

// setFlags collects repeatable -set key=value overrides.
type setFlags map[string]any

func (s setFlags) String() string { return "" }
func (s setFlags) Set(kv string) error {
	k, v, err := grid.ParseSet(kv)
	if err != nil {
		return err
	}
	s[k] = v
	return nil
}

func main() {
	sets := setFlags{}
	specPath := flag.String("spec", "", "grid spec file (JSON, or .toml subset)")
	out := flag.String("out", "", "summary JSON path (default BENCH_<name>.json)")
	csvPath := flag.String("csv", "", "per-(cell,repeat,step) CSV path (default <out>.csv next to -out)")
	work := flag.String("work", "", "work tree for tools and cell outputs (default: a temp dir, removed on success)")
	keep := flag.Bool("keep", false, "keep the temp work tree (ignored when -work is set: explicit trees always stay)")
	repeats := flag.Int("repeats", 0, "override the spec's repeat count")
	cellsRe := flag.String("cells", "", "only run cells whose name matches this regexp")
	flag.Var(sets, "set", "override a spec variable, key=value (repeatable)")
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "grid: %v\n", err)
		os.Exit(1)
	}
	if *specPath == "" {
		fatal(fmt.Errorf("-spec is required"))
	}
	spec, err := grid.Load(*specPath)
	if err != nil {
		fatal(err)
	}

	workDir := *work
	cleanup := func() {}
	if workDir == "" {
		tmp, err := os.MkdirTemp("", "grid-"+spec.Name+"-")
		if err != nil {
			fatal(err)
		}
		workDir = tmp
		if !*keep {
			cleanup = func() { os.RemoveAll(tmp) }
		} else {
			fmt.Fprintf(os.Stderr, "grid: work tree kept at %s\n", tmp)
		}
	} else if err := os.MkdirAll(workDir, 0o755); err != nil {
		fatal(err)
	}

	var filter *regexp.Regexp
	if *cellsRe != "" {
		if filter, err = regexp.Compile(*cellsRe); err != nil {
			fatal(err)
		}
	}

	r := &grid.Runner{
		Spec: spec, Work: workDir, Sets: sets,
		Repeats: *repeats, CellFilter: filter,
	}
	res, err := r.Run()
	if err != nil {
		fatal(err)
	}
	cleanup()

	outPath := *out
	if outPath == "" {
		outPath = "BENCH_" + spec.Name + ".json"
	}
	if err := res.WriteJSON(outPath); err != nil {
		fatal(err)
	}
	cp := *csvPath
	if cp == "" {
		cp = outPath + ".csv"
	}
	if err := res.WriteCSV(cp); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "grid: wrote %s and %s\n", outPath, cp)
}
