// chainscan captures the certificate list presented by TLS endpoints (or
// reads PEM bundles) and reports structural compliance: leaf placement,
// issuance order, and chain completeness — the paper's server-side analysis
// for arbitrary targets.
//
// Usage:
//
//	chainscan [-tls12] [-timeout 5s] [-metrics metrics.json] [-pprof localhost:6060] host[:port] ...
//	chainscan -pem bundle.pem -domain example.com
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/compliance"
	"chainchaos/internal/faults"
	"chainchaos/internal/obs"
	"chainchaos/internal/report"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/tlsscan"
	"chainchaos/internal/topo"
)

func main() {
	cli := obs.NewCLI("chainscan")
	pemFile := flag.String("pem", "", "analyze a PEM bundle instead of scanning")
	rootsFile := flag.String("roots", "", "PEM trust anchors for completeness analysis")
	domain := flag.String("domain", "", "expected domain (defaults to the target host)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-target connection timeout")
	tls12 := flag.Bool("tls12", false, "cap the handshake at TLS 1.2 (the paper's primary dataset)")
	rate := flag.Int("rate", 500<<10, "aggregate certificate bytes per second (0 = unlimited)")
	cli.BindRetries(1, "extra attempts after a transient dial/handshake failure (0 = scan once)")
	cli.BindObs()
	flag.Parse()
	cli.Start()

	anchors := loadRoots(*rootsFile)
	if *pemFile != "" {
		if err := analyzePEM(*pemFile, *domain, anchors); err != nil {
			cli.Fatal(err)
		}
		cli.Finish()
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: chainscan [flags] host[:port] ...  (or -pem bundle.pem)")
		os.Exit(2)
	}

	scanner := &tlsscan.Scanner{Timeout: *timeout, BytesPerSecond: *rate, Metrics: cli.Metrics}
	if cli.Retries > 0 {
		scanner.Retry = faults.Policy{Attempts: cli.Retries + 1, BaseDelay: 200 * time.Millisecond, Jitter: 0.5}
	}
	if *tls12 {
		scanner.MaxVersion = tls.VersionTLS12
	}
	var targets []tlsscan.Target
	for _, arg := range flag.Args() {
		addr := arg
		if !strings.Contains(addr, ":") {
			addr += ":443"
		}
		host := strings.Split(arg, ":")[0]
		targets = append(targets, tlsscan.Target{Addr: addr, Domain: host})
	}
	results := scanner.ScanAll(context.Background(), targets)
	exit := 0
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "chainscan: %s: %v (cause: %s, attempts: %d)\n",
				res.Target.Addr, res.Err, res.Cause, res.Attempts)
			exit = 1
			continue
		}
		d := *domain
		if d == "" {
			d = res.Target.Domain
		}
		printReport(d, res.List, anchors)
	}
	cli.Finish()
	os.Exit(exit)
}

// loadRoots reads the optional trust-anchor bundle; nil means "no anchors
// supplied" and downgrades completeness analysis to unknown.
func loadRoots(path string) *rootstore.Store {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chainscan:", err)
		os.Exit(1)
	}
	parsed, err := certmodel.ParsePEMBundle(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chainscan:", err)
		os.Exit(1)
	}
	return rootstore.NewWith("cli", parsed...)
}

func analyzePEM(path, domain string, anchors *rootstore.Store) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	list, err := certmodel.ParsePEMBundle(data)
	if err != nil {
		return err
	}
	if domain == "" {
		domain = list[0].Subject.CommonName
	}
	printReport(domain, list, anchors)
	return nil
}

func printReport(domain string, list []*certmodel.Certificate, anchors *rootstore.Store) {
	g := topo.Build(list)
	// Without a supplied trust store, fall back to the self-signed
	// certificates in the list itself; completeness then only
	// distinguishes with-root from everything else.
	completenessKnown := anchors != nil
	roots := anchors
	if roots == nil {
		roots = rootstore.New("ad-hoc")
		for _, c := range list {
			if c.SelfSigned() {
				roots.Add(c)
			}
		}
	}
	an := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{Roots: roots}}
	rep := an.Analyze(domain, g)

	t := report.New(fmt.Sprintf("chain report — %s (%d certificates)", domain, len(list)),
		"Check", "Result")
	t.Add("topology", g.String())
	t.Add("leaf placement", rep.Leaf.String())
	t.Add("sequential order (TLS 1.2 rule)", report.Mark(rep.Order.SequentialOK))
	t.Add("duplicates", report.Mark(!rep.Order.HasDuplicates))
	t.Add("irrelevant certificates", fmt.Sprintf("%d", rep.Order.IrrelevantTotal))
	t.Add("certification paths", fmt.Sprintf("%d", rep.Order.PathCount))
	t.Add("reversed sequence", report.Mark(!rep.Order.ReversedAny))
	completeness := rep.Completeness.Class.String()
	if !completenessKnown && rep.Completeness.Class != compliance.CompleteWithRoot {
		completeness = "unknown (supply -roots to check)"
	}
	t.Add("completeness", completeness)
	verdict := "COMPLIANT"
	if !rep.Compliant() {
		verdict = "NON-COMPLIANT"
	}
	if !completenessKnown && rep.Completeness.Class == compliance.Incomplete &&
		rep.Leaf.CorrectlyPlaced() && !rep.Order.NonCompliant() {
		verdict = "COMPLIANT (completeness unknown)"
	}
	t.Add("verdict", verdict)
	fmt.Println(t)

	for i, c := range list {
		fmt.Printf("  [%d] subject=%q issuer=%q\n", i, c.Subject, c.Issuer)
	}
	fmt.Println()
}
