// chainbuild constructs a certification path from a PEM bundle the way a
// chosen TLS client model would, showing which certificates were selected,
// what was fetched via AIA, and whether the result validates — the paper's
// client-side analysis for arbitrary inputs.
//
// Usage:
//
//	chainbuild -bundle chain.pem -roots roots.pem [-client Chrome] [-domain example.com] [-all]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/clients"
	"chainchaos/internal/obs"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/rootstore"
)

// cli carries the shared observability flags; package-level so findProfile's
// error path can use the common Fatal.
var cli = obs.NewCLI("chainbuild")

func main() {
	bundle := flag.String("bundle", "", "PEM bundle as presented by the server (required)")
	rootsFile := flag.String("roots", "", "PEM bundle of trust anchors (defaults to self-signed certs in -bundle)")
	clientName := flag.String("client", "recommended", "client model: OpenSSL, GnuTLS, MbedTLS, CryptoAPI, Chrome, Edge, Safari, Firefox, or 'recommended'")
	domain := flag.String("domain", "", "hostname to validate against (optional)")
	at := flag.String("at", "", "validation time, RFC3339 (default: now)")
	useAIA := flag.Bool("aia", false, "allow live HTTP AIA fetching (network access)")
	all := flag.Bool("all", false, "run every client model and compare")
	traceFlag := flag.Bool("trace", false, "print the construction decision trace")
	cli.BindObs()
	flag.Parse()
	cli.Start()

	if *bundle == "" {
		fmt.Fprintln(os.Stderr, "usage: chainbuild -bundle chain.pem [flags]")
		os.Exit(2)
	}
	list, err := readBundle(*bundle)
	if err != nil {
		fatal(err)
	}
	roots := rootstore.New("cli")
	if *rootsFile != "" {
		anchors, err := readBundle(*rootsFile)
		if err != nil {
			fatal(err)
		}
		for _, c := range anchors {
			roots.Add(c)
		}
	} else {
		for _, c := range list {
			if c.SelfSigned() {
				roots.Add(c)
			}
		}
	}
	now := time.Now()
	if *at != "" {
		now, err = time.Parse(time.RFC3339, *at)
		if err != nil {
			fatal(fmt.Errorf("bad -at: %w", err))
		}
	}
	var fetcher aia.Fetcher
	if *useAIA {
		fetcher = &aia.HTTPFetcher{Client: &http.Client{Timeout: 10 * time.Second}}
	}

	profiles := clients.All()
	if !*all {
		profiles = []clients.Profile{findProfile(*clientName)}
	}
	for _, p := range profiles {
		var trace *pathbuild.Trace
		if *traceFlag {
			trace = &pathbuild.Trace{}
		}
		b := &pathbuild.Builder{
			Policy:  p.Policy,
			Roots:   roots,
			Fetcher: fetcher,
			Cache:   rootstore.New("cache"),
			Now:     now,
			Trace:   trace,
			Metrics: cli.Metrics,
		}
		out := b.Build(list, *domain)
		fmt.Printf("=== %s ===\n", p.Name)
		if out.Err != nil {
			fmt.Printf("construction refused: %v\n\n", out.Err)
			continue
		}
		for i, c := range out.Path {
			fmt.Printf("  path[%d] %q (issuer %q)\n", i, c.Subject, c.Issuer)
		}
		fmt.Printf("  candidates considered: %d, paths tried: %d, AIA fetches: %d\n",
			out.CandidatesConsidered, out.PathsTried, out.AIAFetches)
		if out.Validation.OK {
			fmt.Println("  validation: OK")
		} else {
			fmt.Println("  validation: FAILED")
			for _, f := range out.Validation.Findings {
				fmt.Printf("    - %s\n", f)
			}
		}
		if trace != nil {
			fmt.Println("  trace:")
			for _, line := range strings.Split(trace.String(), "\n") {
				fmt.Println("    " + line)
			}
		}
		fmt.Println()
	}
	cli.Finish()
}

func readBundle(path string) ([]*certmodel.Certificate, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return certmodel.ParsePEMBundle(data)
}

func findProfile(name string) clients.Profile {
	if name == "recommended" {
		return clients.Profile{Name: "recommended", Policy: pathbuild.DefaultPolicy()}
	}
	for _, p := range clients.All() {
		if p.Name == name {
			return p
		}
	}
	fatal(fmt.Errorf("unknown client %q", name))
	return clients.Profile{}
}

func fatal(err error) {
	cli.Fatal(err)
}
