// Differential example: one malformed chain, eight client models.
//
// The example deploys an incomplete chain (missing intermediate, AIA
// available) and shows how each TLS client model handles it — reproducing
// finding I-4 in miniature: AIA-capable clients and cache-warm Firefox
// succeed, plain libraries fail.
//
// Run with: go run ./examples/differential
package main

import (
	"fmt"
	"log"

	"chainchaos/internal/aia"
	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/clients"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/report"
	"chainchaos/internal/rootstore"
)

func main() {
	root, err := certgen.NewRoot("Diff Root")
	if err != nil {
		log.Fatal(err)
	}
	ca2, err := root.NewIntermediate("Diff CA 2")
	if err != nil {
		log.Fatal(err)
	}
	const uri = "http://repo.diff.example/ca2.der"
	ca1, err := ca2.NewIntermediate("Diff CA 1", certgen.WithAIA(uri))
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := ca1.NewLeaf("differential.example")
	if err != nil {
		log.Fatal(err)
	}

	// The server ships only the leaf and its direct issuer; CA 2 must be
	// fetched (or recalled from cache).
	deployed := []*certmodel.Certificate{leaf.Cert, ca1.Cert}
	repo := aia.NewRepository()
	repo.Put(uri, ca2.Cert)
	roots := rootstore.NewWith("diff", root.Cert)

	// Firefox's intermediate cache has seen CA 2 before.
	warmCache := rootstore.New("firefox-cache")
	warmCache.Add(ca2.Cert)

	fmt.Println("deployed: leaf + issuing CA only; CA 2 retrievable via AIA")
	t := report.New("differential verdicts", "Client", "Kind", "Result", "Path length", "AIA fetches", "Why")
	for _, p := range clients.All() {
		cache := rootstore.New("cold")
		if p.Name == "Firefox" {
			cache = warmCache
		}
		b := &pathbuild.Builder{
			Policy:  p.Policy,
			Roots:   roots,
			Fetcher: repo,
			Cache:   cache,
			Now:     certgen.Reference,
		}
		out := b.Build(deployed, "differential.example")
		why := "-"
		switch {
		case out.Err != nil:
			why = out.Err.Error()
		case !out.Validation.OK:
			why = out.Validation.Findings[0].String()
		case out.AIAFetches > 0:
			why = "completed via AIA"
		case p.Name == "Firefox":
			why = "completed from intermediate cache"
		}
		result := "PASS"
		if !out.OK() {
			result = "FAIL"
		}
		t.Addf(p.Name, p.Kind, result, len(out.Path), out.AIAFetches, why)
	}
	fmt.Println(t)
}
