// Doctor example: diagnose and repair a broken deployment.
//
// The example deploys the worst chain the paper's taxonomy allows — reversed
// bundle, duplicated leaf, a stale renewal leftover and a stray root — shows
// a client's construction *trace* (the decisions the paper had to infer from
// source code), then repairs the deployment with the §6-recommendations
// fixer and proves every client model accepts the result.
//
// Run with: go run ./examples/doctor
package main

import (
	"fmt"
	"log"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/chainfix"
	"chainchaos/internal/clients"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/rootstore"
)

func main() {
	root, err := certgen.NewRoot("Doctor Root")
	if err != nil {
		log.Fatal(err)
	}
	ca2, err := root.NewIntermediate("Doctor CA 2")
	if err != nil {
		log.Fatal(err)
	}
	ca1, err := ca2.NewIntermediate("Doctor CA 1")
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := ca1.NewLeaf("doctor.example")
	if err != nil {
		log.Fatal(err)
	}
	stale, err := ca1.NewLeaf("doctor.example",
		certgen.WithValidity(certgen.Reference.AddDate(-2, 0, 0), certgen.Reference.AddDate(-1, 0, 0)))
	if err != nil {
		log.Fatal(err)
	}
	stray, err := certgen.NewRoot("Stray Root")
	if err != nil {
		log.Fatal(err)
	}

	// The patient: duplicated leaf up front, stale renewal leftover, the
	// bundle pasted in reverse, a stray root at the end.
	sick := []*certmodel.Certificate{
		leaf.Cert, leaf.Cert, stale.Cert, root.Cert, ca2.Cert, ca1.Cert, stray.Cert,
	}
	roots := rootstore.NewWith("doctor", root.Cert)

	fmt.Println("deployed list:")
	for i, c := range sick {
		fmt.Printf("  [%d] %s (serial %s)\n", i, c.Subject, c.SerialNumber)
	}

	// Diagnose: watch a capable client work through the mess.
	trace := &pathbuild.Trace{}
	chrome := clients.Chrome()
	b := &pathbuild.Builder{
		Policy: chrome.Policy, Roots: roots, Cache: rootstore.New("cache"),
		Now: certgen.Reference, Trace: trace,
	}
	out := b.Build(sick, "doctor.example")
	fmt.Printf("\n%s verdict: OK=%v (candidates considered: %d)\n", chrome.Name, out.OK(), out.CandidatesConsidered)
	fmt.Println("construction trace:")
	fmt.Println(trace)

	// Treat: repair the deployment.
	fixer := &chainfix.Fixer{Roots: roots}
	res, err := fixer.Fix(sick, "doctor.example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrepair actions:")
	for _, a := range res.Actions {
		fmt.Printf("  - %s\n", a)
	}
	fmt.Println("repaired list:")
	for i, c := range res.List {
		fmt.Printf("  [%d] %s\n", i, c.Subject)
	}

	// Verify: every client model must now accept it.
	fmt.Println("\npost-repair verdicts:")
	for _, p := range clients.All() {
		cb := &pathbuild.Builder{Policy: p.Policy, Roots: roots, Cache: rootstore.New("c"), Now: certgen.Reference}
		v := cb.Build(res.List, "doctor.example")
		status := "PASS"
		if !v.OK() {
			status = "FAIL"
		}
		fmt.Printf("  %-10s %s\n", p.Name, status)
	}
}
