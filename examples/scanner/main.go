// Scanner example: a miniature measurement study over real TLS sockets.
//
// The example stands up a farm of loopback TLS servers, each deployed with a
// different misconfiguration from the paper's taxonomy (compliant, reversed,
// duplicate leaf, irrelevant certificate, missing intermediate), scans them
// with the ZGrab2-style scanner from two "vantages", merges the captures,
// and prints a compliance report per site — the full RQ1 pipeline end to
// end.
//
// One site is additionally flaky at the transport level (it resets its
// first connection, like a mid-scan outage on the live Internet); the
// scanner's retry policy absorbs it, so the compliance tables still cover
// every site.
//
// Run with: go run ./examples/scanner
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/compliance"
	"chainchaos/internal/faults"
	"chainchaos/internal/report"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/tlsscan"
	"chainchaos/internal/tlsserve"
	"chainchaos/internal/topo"
)

func main() {
	root, err := certgen.NewRoot("Farm Root")
	if err != nil {
		log.Fatal(err)
	}
	ca2, err := root.NewIntermediate("Farm CA 2")
	if err != nil {
		log.Fatal(err)
	}
	ca1, err := ca2.NewIntermediate("Farm CA 1")
	if err != nil {
		log.Fatal(err)
	}
	stranger, err := certgen.NewRoot("Stranger Root")
	if err != nil {
		log.Fatal(err)
	}

	deployments := []struct {
		domain string
		list   func(leaf *certgen.Leaf) []*certmodel.Certificate
	}{
		{"compliant.farm.example", func(l *certgen.Leaf) []*certmodel.Certificate {
			return []*certmodel.Certificate{l.Cert, ca1.Cert, ca2.Cert}
		}},
		{"reversed.farm.example", func(l *certgen.Leaf) []*certmodel.Certificate {
			return []*certmodel.Certificate{l.Cert, root.Cert, ca2.Cert, ca1.Cert}
		}},
		{"duplicate.farm.example", func(l *certgen.Leaf) []*certmodel.Certificate {
			return []*certmodel.Certificate{l.Cert, l.Cert, ca1.Cert, ca2.Cert}
		}},
		{"irrelevant.farm.example", func(l *certgen.Leaf) []*certmodel.Certificate {
			return []*certmodel.Certificate{l.Cert, stranger.Cert, ca1.Cert, ca2.Cert}
		}},
		{"incomplete.farm.example", func(l *certgen.Leaf) []*certmodel.Certificate {
			return []*certmodel.Certificate{l.Cert} // intermediates missing
		}},
	}

	farm := tlsserve.NewFarm()
	defer farm.Close()
	var targets []tlsscan.Target
	for i, dep := range deployments {
		leaf, err := ca1.NewLeaf(dep.domain)
		if err != nil {
			log.Fatal(err)
		}
		cfg := tlsserve.Config{List: dep.list(leaf), Key: leaf.Key, Domain: dep.domain}
		if i == 0 {
			// The first site is transport-flaky on top of its deployment:
			// it resets its first connection before any TLS byte.
			cfg.Faults = tlsserve.FaultConfig{FailFirst: 1}
		}
		srv, err := farm.Add(cfg)
		if err != nil {
			log.Fatal(err)
		}
		targets = append(targets, tlsscan.Target{Addr: srv.Addr(), Domain: dep.domain})
		fmt.Printf("serving %-28s at %s\n", dep.domain, srv.Addr())
	}

	// Two vantage scans, merged like the paper's US/Australia pair. The
	// retry policy turns the injected reset into one extra attempt instead
	// of a lost site.
	scanner := &tlsscan.Scanner{
		Timeout: 3 * time.Second, Concurrency: 4, BytesPerSecond: 500 << 10,
		Retry: faults.Policy{Attempts: 3, BaseDelay: 20 * time.Millisecond},
	}
	vantage1 := scanner.ScanAll(context.Background(), targets)
	vantage2 := scanner.ScanAll(context.Background(), targets)
	for _, res := range vantage1 {
		if res.Attempts > 1 {
			fmt.Printf("recovered %s after %d attempts (injected reset)\n", res.Target.Domain, res.Attempts)
		}
		if res.Err != nil {
			fmt.Printf("scan failed: %s: %v (cause %s)\n", res.Target.Domain, res.Err, res.Cause)
		}
	}
	merged := tlsscan.MergeVantages(vantage1, vantage2)

	roots := rootstore.NewWith("farm", root.Cert)
	analyzer := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{Roots: roots}}

	t := report.New("scan results", "Domain", "Certs", "Leaf", "Order OK", "Dup", "Irrelevant", "Reversed", "Completeness", "Verdict")
	for _, dep := range deployments {
		for _, res := range merged[dep.domain] {
			g := topo.Build(res.List)
			rep := analyzer.Analyze(dep.domain, g)
			verdict := "COMPLIANT"
			if !rep.Compliant() {
				verdict = "NON-COMPLIANT"
			}
			t.Addf(dep.domain, len(res.List), rep.Leaf,
				report.Mark(rep.Order.SequentialOK),
				report.Mark(rep.Order.HasDuplicates),
				rep.Order.IrrelevantTotal,
				report.Mark(rep.Order.ReversedAny),
				rep.Completeness.Class, verdict)
		}
	}
	fmt.Println()
	fmt.Println(t)
}
