// Quickstart: build a certification path out of a messy server-provided
// certificate list.
//
// The example creates a real PKI (root -> two intermediates -> leaf), shuffles
// the chain the way misconfigured servers do — leaf first, then the bundle
// pasted in reverse — and lets the recommended path-building policy sort it
// out, printing each construction decision.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/compliance"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/topo"
)

func main() {
	// A small real PKI: Example Root -> Example CA 2 -> Example CA 1 ->
	// quickstart.example.
	root, err := certgen.NewRoot("Example Root")
	if err != nil {
		log.Fatal(err)
	}
	ca2, err := root.NewIntermediate("Example CA 2")
	if err != nil {
		log.Fatal(err)
	}
	ca1, err := ca2.NewIntermediate("Example CA 1")
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := ca1.NewLeaf("quickstart.example")
	if err != nil {
		log.Fatal(err)
	}

	// What a GoGetSSL-style delivery plus a naive merge produces: the leaf
	// followed by the ca-bundle in top-down (reversed) order.
	deployed := []*certmodel.Certificate{leaf.Cert, root.Cert, ca2.Cert, ca1.Cert}

	fmt.Println("deployed list (wire order):")
	for i, c := range deployed {
		fmt.Printf("  [%d] %s\n", i, c.Subject)
	}

	// Server-side view: is this list structurally compliant?
	g := topo.Build(deployed)
	order := compliance.AnalyzeOrder(g)
	fmt.Printf("\ntopology: %s\n", g)
	fmt.Printf("sequential order OK: %v, reversed: %v\n", order.SequentialOK, order.ReversedAny)

	// Client-side view: construct a path anyway.
	builder := &pathbuild.Builder{
		Policy: pathbuild.DefaultPolicy(),
		Roots:  rootstore.NewWith("demo", root.Cert),
		Now:    certgen.Reference,
	}
	out := builder.Build(deployed, "quickstart.example")
	if out.Err != nil {
		log.Fatalf("construction failed: %v", out.Err)
	}

	fmt.Println("\nconstructed certification path:")
	for i, c := range out.Path {
		fmt.Printf("  path[%d] %s\n", i, c.Subject)
	}
	fmt.Printf("candidates considered: %d, validation OK: %v\n",
		out.CandidatesConsidered, out.Validation.OK)

	// The same list defeats a client that cannot reorder (MbedTLS's
	// forward-only scan).
	mbed := builder
	mbedPolicy := pathbuild.Policy{Name: "forward-only"}
	mbed = &pathbuild.Builder{Policy: mbedPolicy, Roots: builder.Roots, Now: builder.Now}
	out2 := mbed.Build(deployed, "quickstart.example")
	fmt.Printf("\nforward-only client validation OK: %v", out2.Validation.OK)
	if !out2.Validation.OK && len(out2.Validation.Findings) > 0 {
		fmt.Printf(" (%s)", out2.Validation.Findings[0])
	}
	fmt.Println()
}
