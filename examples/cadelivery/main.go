// CA-delivery example: how reversed chains are born.
//
// The example walks the full deployment pipeline for two CAs — an automated
// one delivering a fullchain file, and a GoGetSSL-style reseller delivering
// a reversed ca-bundle — through two administrator behaviours and two HTTP
// server models, then shows what lands on the wire and which clients cope.
//
// Run with: go run ./examples/cadelivery
package main

import (
	"fmt"
	"time"

	"chainchaos/internal/ca"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/clients"
	"chainchaos/internal/httpserver"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/report"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/topo"
)

func main() {
	base := time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)

	var goget, letsEncrypt ca.Profile
	for _, p := range ca.Profiles() {
		switch p.Name {
		case "GoGetSSL":
			goget = p
		case "Let's Encrypt":
			letsEncrypt = p
		}
	}

	fmt.Println("--- Case 1: reseller delivers the ca-bundle in reverse order ---")
	iss := ca.NewSyntheticIssuer(ca.IssuerConfig{Profile: goget, Base: base, Tag: "demo"})
	delivery := iss.Issue("shop.example", base, base.AddDate(1, 0, 0), ca.LeafOptions{})

	fmt.Println("files received from the CA:")
	fmt.Printf("  CertificateFile.pem: %s\n", delivery.Leaf.Subject)
	for i, c := range delivery.Bundle {
		fmt.Printf("  Ca-bundle.pem[%d]:    %s\n", i, c.Subject)
	}

	// The administrator pastes both files into Nginx's fullchain without
	// reordering — the naive merge the paper blames for most reversals.
	nginx := httpserver.Nginx()
	wire, err := nginx.Deploy(httpserver.ConfigInput{
		Fullchain:     append([]*certmodel.Certificate{delivery.Leaf}, delivery.Bundle...),
		PrivateKeyFor: delivery.Leaf,
	})
	if err != nil {
		fmt.Println("deploy error:", err)
		return
	}
	g := topo.Build(wire)
	rev, _ := g.ReversedSequences()
	fmt.Printf("\ndeployed wire list topology: %s (reversed: %v)\n", g, rev)

	roots := rootstore.NewWith("demo", iss.Root)
	verdicts(wire, "shop.example", roots, base)

	fmt.Println("\n--- Case 2: duplicate leaf on Apache vs Azure ---")
	iss2 := ca.NewSyntheticIssuer(ca.IssuerConfig{Profile: letsEncrypt, Base: base, Tag: "demo2"})
	d2 := iss2.Issue("blog.example", base, base.AddDate(0, 3, 0), ca.LeafOptions{})
	// The admin misreads SF1 and pastes the leaf into the chain file too.
	// Each model gets the upload in its own file scheme (Deploy rejects a
	// fullchain handed to a split-scheme server).
	for _, model := range []httpserver.Model{httpserver.ApacheOld(), httpserver.AzureAppGateway()} {
		in := httpserver.ConfigInput{PrivateKeyFor: d2.Leaf}
		if model.Scheme == httpserver.SchemeSplit {
			in.CertFile = []*certmodel.Certificate{d2.Leaf}
			in.ChainFile = append([]*certmodel.Certificate{d2.Leaf}, correctBundle(iss2)...)
		} else {
			in.Fullchain = append([]*certmodel.Certificate{d2.Leaf, d2.Leaf}, correctBundle(iss2)...)
		}
		wire, err := model.Deploy(in)
		switch {
		case err != nil:
			fmt.Printf("  %-38s rejected upload: %v\n", model.Name, err)
		default:
			g := topo.Build(wire)
			fmt.Printf("  %-38s deployed %d certs (duplicates: %v)\n", model.Name, len(wire), g.HasDuplicates())
		}
	}
}

func correctBundle(iss *ca.Issuer) []*certmodel.Certificate {
	return []*certmodel.Certificate{iss.Intermediates[1], iss.Intermediates[0]}
}

func verdicts(wire []*certmodel.Certificate, domain string, roots *rootstore.Store, now time.Time) {
	t := report.New("client verdicts on the deployed chain", "Client", "Result")
	for _, p := range clients.All() {
		b := &pathbuild.Builder{Policy: p.Policy, Roots: roots, Cache: rootstore.New("c"), Now: now}
		out := b.Build(wire, domain)
		res := "PASS"
		if !out.OK() {
			res = "FAIL"
		}
		t.Add(p.Name, res)
	}
	fmt.Println(t)
}
