package chainchaos_test

// One benchmark per paper table/figure (see DESIGN.md's experiment index)
// plus ablation benchmarks for the design choices the paper's findings hinge
// on. Kernels are benchmarked per chain; matrix-level experiments per full
// run.

import (
	"context"
	"io"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/bettertls"
	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/chainfix"
	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/difftest"
	"chainchaos/internal/obs"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/pipeline"
	"chainchaos/internal/population"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/study"
	"chainchaos/internal/tlsscan"
	"chainchaos/internal/tlsserve"
	"chainchaos/internal/topo"
)

const benchPopSize = 20000

var (
	benchOnce   sync.Once
	benchPop    *population.Population
	benchGraphs []*topo.Graph
	benchBad    []*population.Domain // non-compliant (by ground truth)
)

func benchSetup(b *testing.B) (*population.Population, []*topo.Graph) {
	b.Helper()
	benchOnce.Do(func() {
		benchPop = population.Generate(population.Config{Size: benchPopSize, Seed: 1})
		benchGraphs = make([]*topo.Graph, len(benchPop.Domains))
		for i, d := range benchPop.Domains {
			benchGraphs[i] = topo.Build(d.List)
			if d.Truth.NonCompliant() {
				benchBad = append(benchBad, d)
			}
		}
	})
	return benchPop, benchGraphs
}

// --- Workload generation ---

func BenchmarkPopulationGenerate1k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		population.Generate(population.Config{Size: 1000, Seed: int64(i)})
	}
}

// --- Table 3: leaf placement kernel ---

func BenchmarkTable3LeafPlacement(b *testing.B) {
	pop, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := pop.Domains[i%len(pop.Domains)]
		compliance.ClassifyLeafPlacement(d.List, d.Name)
	}
}

// --- Table 5: topology build + order analysis kernel ---

func BenchmarkTable5IssuanceOrder(b *testing.B) {
	pop, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := pop.Domains[i%len(pop.Domains)]
		compliance.AnalyzeOrder(topo.Build(d.List))
	}
}

// --- Table 7: completeness kernel (union store + AIA) ---

func BenchmarkTable7Completeness(b *testing.B) {
	pop, graphs := benchSetup(b)
	cfg := compliance.CompletenessConfig{Roots: pop.Roots(), Fetcher: pop.Repo}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compliance.AnalyzeCompleteness(graphs[i%len(graphs)], cfg)
	}
}

// --- Table 8: completeness kernel, single store, no AIA ---

func BenchmarkTable8RootStoreAIA(b *testing.B) {
	pop, graphs := benchSetup(b)
	cfg := compliance.CompletenessConfig{Roots: pop.Vendors.Mozilla}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compliance.AnalyzeCompleteness(graphs[i%len(graphs)], cfg)
	}
}

// --- Table 9: full client capability matrix ---

func BenchmarkTable9ClientCapabilities(b *testing.B) {
	runner, err := clients.NewRunner()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 10/11: grouping non-compliant chains by server and CA ---

func BenchmarkTable10ServerBreakdown(b *testing.B) {
	pop, graphs := benchSetup(b)
	an := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{Roots: pop.Roots(), Fetcher: pop.Repo}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		byServer := map[string]int{}
		for j, d := range pop.Domains {
			rep := an.Analyze(d.Name, graphs[j])
			if !rep.Compliant() {
				byServer[d.Server]++
			}
		}
	}
}

func BenchmarkTable11CABreakdown(b *testing.B) {
	pop, graphs := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		byCA := map[string]int{}
		for j, d := range pop.Domains {
			if compliance.AnalyzeOrder(graphs[j]).NonCompliant() {
				byCA[d.CA]++
			}
		}
	}
}

// --- Figure 2: topology graph construction ---

func BenchmarkFigure2TopologyBuild(b *testing.B) {
	pop, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo.Build(pop.Domains[i%len(pop.Domains)].List)
	}
}

// --- Figures 3/4: the case-study chains ---

func benchCaseChains(b *testing.B) ([]*certmodel.Certificate, *rootstore.Store) {
	b.Helper()
	root, err := certgen.NewRoot("Bench Case Root")
	if err != nil {
		b.Fatal(err)
	}
	mid, _ := root.NewIntermediate("Bench Mid CA")
	issuing, _ := mid.NewIntermediate("Bench Issuing CA")
	leaf, _ := issuing.NewLeaf("bench.case.example")
	list := make([]*certmodel.Certificate, 0, 17)
	list = append(list, leaf.Cert)
	for len(list) < 14 {
		stale, _ := issuing.NewLeaf("bench.case.example",
			certgen.WithValidity(certgen.Reference.AddDate(-2, 0, 0), certgen.Reference.AddDate(-1, 0, 0)))
		list = append(list, stale.Cert)
	}
	list = append(list, mid.Cert, issuing.Cert, root.Cert)
	return list, rootstore.NewWith("bench", root.Cert)
}

func BenchmarkFigure3LongChain(b *testing.B) {
	list, roots := benchCaseChains(b)
	builder := &pathbuild.Builder{Policy: clients.Chrome().Policy, Roots: roots, Now: certgen.Reference}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Build(list, "bench.case.example")
	}
}

// BenchmarkPathBuildLongList measures a single reused builder over the two
// pathological list shapes the paper's resource-consumption findings rest
// on: the ns3.link-style 25-cert duplicate list and the Figure 3 17-cert
// stale-sibling list. Steady-state allocations here are the indexed-lookup +
// reusable-scratch hot path.
func BenchmarkPathBuildLongList(b *testing.B) {
	root, err := certgen.NewRoot("Bench LL Root")
	if err != nil {
		b.Fatal(err)
	}
	inter, _ := root.NewIntermediate("Bench LL CA")
	leaf, _ := inter.NewLeaf("bench.ll.example")
	dup25 := []*certmodel.Certificate{leaf.Cert}
	for i := 0; i < 12; i++ {
		dup25 = append(dup25, inter.Cert, root.Cert)
	}
	dupRoots := rootstore.NewWith("bench-ll", root.Cert)
	dupRoots.Seal()

	fig3, fig3Roots := benchCaseChains(b)
	fig3Roots.Seal()

	cases := []struct {
		name   string
		list   []*certmodel.Certificate
		roots  *rootstore.Store
		domain string
	}{
		{"dup25", dup25, dupRoots, "bench.ll.example"},
		{"fig3x17", fig3, fig3Roots, "bench.case.example"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			builder := &pathbuild.Builder{Policy: clients.Chrome().Policy, Roots: c.roots, Now: certgen.Reference}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out := builder.Build(c.list, c.domain); !out.OK() {
					b.Fatal("long-list build should succeed")
				}
			}
		})
	}
}

func BenchmarkFigure4Backtracking(b *testing.B) {
	trusted, err := certgen.NewRoot("Bench F4 Trusted")
	if err != nil {
		b.Fatal(err)
	}
	topSelf, _ := certgen.NewRoot("Bench F4 Gov CA")
	cross, _ := trusted.CrossSign(topSelf)
	issuing, _ := topSelf.NewIntermediate("Bench F4 Issuing")
	leaf, _ := issuing.NewLeaf("bench.f4.example")
	list := []*certmodel.Certificate{leaf.Cert, topSelf.Cert, issuing.Cert, cross, trusted.Cert}
	roots := rootstore.NewWith("bench", trusted.Cert)
	builder := &pathbuild.Builder{Policy: clients.CryptoAPI().Policy, Roots: roots, Now: certgen.Reference}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := builder.Build(list, "bench.f4.example")
		if !out.OK() {
			b.Fatal("backtracking build should succeed")
		}
	}
}

// --- §5.2 differential testing ---

func BenchmarkDifferentialPerChain(b *testing.B) {
	pop, _ := benchSetup(b)
	if len(benchBad) == 0 {
		b.Skip("no non-compliant chains in bench population")
	}
	profiles := clients.All()
	builders := make([]*pathbuild.Builder, len(profiles))
	for i, p := range profiles {
		builders[i] = &pathbuild.Builder{Policy: p.Policy, Roots: pop.Roots(), Fetcher: pop.Repo, Now: pop.Cfg.Base}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := benchBad[i%len(benchBad)]
		for _, bd := range builders {
			bd.Build(d.List, "")
		}
	}
}

func BenchmarkDifferentialHarness2k(b *testing.B) {
	pop := population.Generate(population.Config{Size: 2000, Seed: 5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&difftest.Harness{}).Run(pop)
	}
}

// BenchmarkDifferentialHarnessDedup2k runs the harness over a chain-reuse
// population with the verdict cache on — the number to diff against
// BenchmarkDifferentialHarness2k for the memoization win at realistic skew.
func BenchmarkDifferentialHarnessDedup2k(b *testing.B) {
	pop := population.Generate(population.Config{Size: 2000, Seed: 5, ChainReuse: 0.9, ChainPool: 32})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&difftest.Harness{Dedup: true}).Run(pop)
	}
}

// BenchmarkDifferentialHarness2kInstrumented is the same run with a live
// metrics registry wired through the harness and every builder — the number
// to diff against BenchmarkDifferentialHarness2k when eyeballing
// instrumentation cost.
func BenchmarkDifferentialHarness2kInstrumented(b *testing.B) {
	pop := population.Generate(population.Config{Size: 2000, Seed: 5})
	reg := obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&difftest.Harness{Metrics: reg}).Run(pop)
	}
}

// obsOverhead caches the bare-vs-instrumented comparison so the benchmark
// framework's N-ramping does not re-measure on every invocation.
var (
	obsOverheadOnce sync.Once
	obsOverheadPct  float64
)

// BenchmarkObsOverheadGuard enforces the observability budget: a fully
// instrumented difftest harness must cost less than 3% over the bare one
// (DESIGN.md "Observability"). Wall-clock noise on shared hardware dwarfs
// a sub-3% signal, so the estimator is layered: min-of-trials inside each
// repetition discards slow outliers, the median across repetitions discards
// unlucky minima, and a breach must then reproduce on three independent
// estimates before the guard fails — a real regression reproduces every
// time, a noise spike does not. Bench-gated so plain `go test` never runs it.
func BenchmarkObsOverheadGuard(b *testing.B) {
	obsOverheadOnce.Do(func() {
		pop := population.Generate(population.Config{Size: 2000, Seed: 5})
		// Single-worker runs: a serial run is the honest measurement —
		// every instrumentation event is on the critical path instead of
		// hidden behind idle cores.
		one := func(reg *obs.Registry) time.Duration {
			start := time.Now()
			(&difftest.Harness{Workers: 1, Metrics: reg}).Run(pop)
			return time.Since(start)
		}
		reg := obs.NewRegistry()
		// Warm both paths (page cache, lazily-built client sets).
		one(nil)
		one(reg)
		estimate := func() float64 {
			const reps, trials = 5, 8
			ratios := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				var bare, instr time.Duration
				for i := 0; i < trials; i++ {
					// Alternate order inside each pair so load drift hits
					// both sides symmetrically.
					var wb, wi time.Duration
					if i%2 == 0 {
						wb, wi = one(nil), one(reg)
					} else {
						wi, wb = one(reg), one(nil)
					}
					if bare == 0 || wb < bare {
						bare = wb
					}
					if instr == 0 || wi < instr {
						instr = wi
					}
				}
				ratios = append(ratios, float64(instr)/float64(bare))
			}
			sort.Float64s(ratios)
			return (ratios[reps/2] - 1) * 100
		}
		obsOverheadPct = estimate()
		for retry := 0; retry < 2 && obsOverheadPct >= 3.0; retry++ {
			if e := estimate(); e < obsOverheadPct {
				obsOverheadPct = e
			}
		}
	})
	b.ReportMetric(obsOverheadPct, "overhead-%")
	if obsOverheadPct >= 3.0 {
		b.Fatalf("instrumentation overhead %.2f%% breaches the 3%% budget", obsOverheadPct)
	}
	for i := 0; i < b.N; i++ {
		// The guard's work is the cached comparison above.
	}
}

// Sharded-engine variants of the 2k harness run: fixed worker counts pin
// down the scheduling overhead; Max measures the configured default.
func benchDifftestParallel(b *testing.B, workers int) {
	b.Helper()
	pop := population.Generate(population.Config{Size: 2000, Seed: 5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&difftest.Harness{Workers: workers}).Run(pop)
	}
}

func BenchmarkDifftestParallel1(b *testing.B)   { benchDifftestParallel(b, 1) }
func BenchmarkDifftestParallel4(b *testing.B)   { benchDifftestParallel(b, 4) }
func BenchmarkDifftestParallelMax(b *testing.B) { benchDifftestParallel(b, runtime.GOMAXPROCS(0)) }

// BenchmarkDifftestPrecomputedAnalysis measures the RunAnalyzed path: grading
// is done once outside the timer, so the loop isolates pure differential
// testing over precomputed graphs/reports.
func BenchmarkDifftestPrecomputedAnalysis(b *testing.B) {
	pop := population.Generate(population.Config{Size: 2000, Seed: 5})
	analyzer := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{Roots: pop.Roots(), Fetcher: pop.Repo}}
	pre := &difftest.Analysis{
		Graphs:  make([]*topo.Graph, len(pop.Domains)),
		Reports: make([]compliance.Report, len(pop.Domains)),
	}
	for i, d := range pop.Domains {
		pre.Graphs[i] = topo.Build(d.List)
		pre.Reports[i] = analyzer.Analyze(d.Name, pre.Graphs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(&difftest.Harness{}).RunAnalyzed(pop, pre)
	}
}

// --- Streaming pipeline engine vs batch orchestration ---

// BenchmarkPipelineDifftest compares the streaming differential evaluation —
// domains generated, analyzed, and graded in flight through the staged
// pipeline, peak memory bounded by the worker window — against the batch
// path that materializes the population first. The two produce bit-identical
// summaries; B/op is the memory story.
func BenchmarkPipelineDifftest(b *testing.B) {
	cfg := population.Config{Size: 2000, Seed: 5}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			(&difftest.Harness{}).Run(population.Generate(cfg))
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src := population.NewSource(cfg)
			if _, err := (&difftest.Harness{}).RunStream(context.Background(), src, pipeline.Options{}, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipelineStudy compares the streaming study — sites deployed,
// scanned, and graded through the bounded deploy→scan→grade pipeline with a
// JSONL sink — against the batch adapter that additionally retains every
// graded Site.
func BenchmarkPipelineStudy(b *testing.B) {
	cfg := study.Config{Sites: 200, Seed: 4, Vantages: 1}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := study.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := study.RunStream(context.Background(), cfg, study.Stream{Out: io.Discard}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Path building per client model on a reversed chain ---

func BenchmarkPathBuildPerClient(b *testing.B) {
	root, err := certgen.NewRoot("Bench PB Root")
	if err != nil {
		b.Fatal(err)
	}
	ca2, _ := root.NewIntermediate("Bench PB CA2")
	ca1, _ := ca2.NewIntermediate("Bench PB CA1")
	leaf, _ := ca1.NewLeaf("bench.pb.example")
	reversed := []*certmodel.Certificate{leaf.Cert, root.Cert, ca2.Cert, ca1.Cert}
	roots := rootstore.NewWith("bench", root.Cert)
	for _, p := range clients.All() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			builder := &pathbuild.Builder{Policy: p.Policy, Roots: roots, Now: certgen.Reference}
			for i := 0; i < b.N; i++ {
				builder.Build(reversed, "bench.pb.example")
			}
		})
	}
}

// --- AIA recursive chase ---

func BenchmarkAIAChase(b *testing.B) {
	pop, _ := benchSetup(b)
	var tail *certmodel.Certificate
	for _, d := range pop.Domains {
		if d.Truth.Incomplete && !d.Truth.AIAMissing && !d.Truth.AIADead && !d.Truth.AIAWrong {
			tail = d.List[len(d.List)-1]
			break
		}
	}
	if tail == nil {
		b.Skip("no AIA-recoverable incomplete chain in population")
	}
	chaser := &aia.Chaser{Fetcher: pop.Repo}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !chaser.Chase(tail).Completed() {
			b.Fatal("chase should reach the root")
		}
	}
}

// --- TLS loopback scan (the ZGrab2-equivalent data path) ---

func BenchmarkTLSScanLoopback(b *testing.B) {
	root, err := certgen.NewRoot("Bench Scan Root")
	if err != nil {
		b.Fatal(err)
	}
	inter, _ := root.NewIntermediate("Bench Scan CA")
	leaf, _ := inter.NewLeaf("bench.scan.example")
	srv, err := tlsserve.Start(tlsserve.Config{
		List:   []*certmodel.Certificate{leaf.Cert, inter.Cert, root.Cert},
		Key:    leaf.Key,
		Domain: "bench.scan.example",
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	scanner := &tlsscan.Scanner{Timeout: 5 * time.Second}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := scanner.Scan(ctx, tlsscan.Target{Addr: srv.Addr(), Domain: "bench.scan.example"})
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// --- Ablations (DESIGN.md "design choices worth ablating") ---

// Backtracking on vs off over the Figure 4 multi-path chain: cost and
// success trade-off.
func BenchmarkAblationBacktracking(b *testing.B) {
	trusted, err := certgen.NewRoot("Abl BT Trusted")
	if err != nil {
		b.Fatal(err)
	}
	topSelf, _ := certgen.NewRoot("Abl BT Gov")
	cross, _ := trusted.CrossSign(topSelf)
	issuing, _ := topSelf.NewIntermediate("Abl BT Issuing")
	leaf, _ := issuing.NewLeaf("abl.bt.example")
	list := []*certmodel.Certificate{leaf.Cert, topSelf.Cert, issuing.Cert, cross, trusted.Cert}
	roots := rootstore.NewWith("abl", trusted.Cert)
	for _, bt := range []bool{true, false} {
		name := "off"
		if bt {
			name = "on"
		}
		policy := clients.CryptoAPI().Policy
		policy.Backtrack = bt
		b.Run(name, func(b *testing.B) {
			builder := &pathbuild.Builder{Policy: policy, Roots: roots, Now: certgen.Reference}
			ok := 0
			for i := 0; i < b.N; i++ {
				if builder.Build(list, "abl.bt.example").OK() {
					ok++
				}
			}
			b.ReportMetric(float64(ok)/float64(b.N), "success-rate")
		})
	}
}

// Duplicate elimination on vs off over a duplicate-heavy list (MbedTLS keeps
// duplicates and pays for rescanning them).
func BenchmarkAblationDuplicateElimination(b *testing.B) {
	root, err := certgen.NewRoot("Abl Dup Root")
	if err != nil {
		b.Fatal(err)
	}
	inter, _ := root.NewIntermediate("Abl Dup CA")
	leaf, _ := inter.NewLeaf("abl.dup.example")
	list := []*certmodel.Certificate{leaf.Cert}
	for i := 0; i < 12; i++ { // the ns3.link shape: the same pair repeated
		list = append(list, inter.Cert, root.Cert)
	}
	roots := rootstore.NewWith("abl", root.Cert)
	for _, elim := range []bool{true, false} {
		name := "off"
		if elim {
			name = "on"
		}
		policy := pathbuild.DefaultPolicy()
		policy.EliminateDuplicates = elim
		policy.AIA = false
		b.Run(name, func(b *testing.B) {
			builder := &pathbuild.Builder{Policy: policy, Roots: roots, Now: certgen.Reference}
			considered := 0
			for i := 0; i < b.N; i++ {
				out := builder.Build(list, "abl.dup.example")
				considered += out.CandidatesConsidered
			}
			b.ReportMetric(float64(considered)/float64(b.N), "candidates/op")
		})
	}
}

// KID priority (recommended match>absent>mismatch) vs none over the Table 2
// KID scenario.
func BenchmarkAblationKIDPriority(b *testing.B) {
	runner, err := clients.NewRunner()
	if err != nil {
		b.Fatal(err)
	}
	sc := runner.Set.KID
	for _, mode := range []struct {
		name string
		pref pathbuild.KIDPolicy
	}{{"kp2", pathbuild.KIDMatchFirst}, {"none", pathbuild.KIDNone}} {
		policy := pathbuild.DefaultPolicy()
		policy.KIDPref = mode.pref
		policy.AIA = false
		b.Run(mode.name, func(b *testing.B) {
			builder := &pathbuild.Builder{Policy: policy, Roots: sc.Roots, Now: certgen.Reference}
			for i := 0; i < b.N; i++ {
				builder.Build(sc.List, sc.Domain)
			}
		})
	}
}

// Issuance-rule variants: the paper's flexible rule vs the strict
// all-criteria rule.
func BenchmarkAblationIssuanceRule(b *testing.B) {
	pop, _ := benchSetup(b)
	d := pop.Domains[0]
	parent, child := d.List[len(d.List)-1], d.List[0]
	b.Run("flexible", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			certmodel.Issued(parent, child)
		}
	})
	b.Run("strict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			certmodel.IssuedStrict(parent, child)
		}
	})
}

// Synthetic vs real certificate creation: the population-scale trade-off.
func BenchmarkAblationCertBackend(b *testing.B) {
	base := time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)
	parent := certmodel.SyntheticRoot("Abl Backend Root", base)
	b.Run("synthetic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			certmodel.SyntheticLeaf("abl.backend.example", "s", parent, base, base.AddDate(1, 0, 0))
		}
	})
	realRoot, err := certgen.NewRoot("Abl Backend Real Root")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("real", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := realRoot.NewLeaf("abl.backend.example"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// GnuTLS-style input-list limit vs constructed-path limit on a padded list.
func BenchmarkAblationLengthSemantics(b *testing.B) {
	root, err := certgen.NewRoot("Abl Len Root")
	if err != nil {
		b.Fatal(err)
	}
	inter, _ := root.NewIntermediate("Abl Len CA")
	leaf, _ := inter.NewLeaf("abl.len.example")
	list := []*certmodel.Certificate{leaf.Cert, inter.Cert, root.Cert}
	for i := 0; i < 20; i++ {
		pad, _ := certgen.NewRoot("Abl Len Pad")
		list = append(list, pad.Cert)
	}
	roots := rootstore.NewWith("abl", root.Cert)
	for _, mode := range []struct {
		name   string
		policy pathbuild.Policy
	}{
		{"input-list-16", func() pathbuild.Policy { p := pathbuild.DefaultPolicy(); p.AIA = false; p.MaxInputList = 16; return p }()},
		{"path-16", func() pathbuild.Policy { p := pathbuild.DefaultPolicy(); p.AIA = false; p.MaxPathLen = 16; return p }()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			builder := &pathbuild.Builder{Policy: mode.policy, Roots: roots, Now: certgen.Reference}
			ok := 0
			for i := 0; i < b.N; i++ {
				if builder.Build(list, "abl.len.example").OK() {
					ok++
				}
			}
			b.ReportMetric(float64(ok)/float64(b.N), "success-rate")
		})
	}
}

// --- Extensions beyond the paper ---

// BenchmarkChainFix measures the §6-recommendations repair engine over the
// population's non-compliant chains.
func BenchmarkChainFix(b *testing.B) {
	pop, _ := benchSetup(b)
	if len(benchBad) == 0 {
		b.Skip("no non-compliant chains")
	}
	fixer := &chainfix.Fixer{Roots: pop.Roots(), Fetcher: pop.Repo}
	b.ResetTimer()
	fixed := 0
	for i := 0; i < b.N; i++ {
		d := benchBad[i%len(benchBad)]
		if _, err := fixer.Fix(d.List, d.Name); err == nil {
			fixed++
		}
	}
	b.ReportMetric(float64(fixed)/float64(b.N), "fixed-rate")
}

// BenchmarkTable1BetterTLS runs the full BetterTLS-style validation
// correctness suite across all eight client models.
func BenchmarkTable1BetterTLS(b *testing.B) {
	suite, err := bettertls.NewSuite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite.RunAll()
	}
}

// BenchmarkAblationTraceOverhead measures the cost of recording the
// construction trace.
func BenchmarkAblationTraceOverhead(b *testing.B) {
	root, err := certgen.NewRoot("Abl Trace Root")
	if err != nil {
		b.Fatal(err)
	}
	ca2, _ := root.NewIntermediate("Abl Trace CA2")
	ca1, _ := ca2.NewIntermediate("Abl Trace CA1")
	leaf, _ := ca1.NewLeaf("abl.trace.example")
	list := []*certmodel.Certificate{leaf.Cert, root.Cert, ca2.Cert, ca1.Cert}
	roots := rootstore.NewWith("abl", root.Cert)
	pol := clients.Chrome().Policy
	b.Run("off", func(b *testing.B) {
		builder := &pathbuild.Builder{Policy: pol, Roots: roots, Now: certgen.Reference}
		for i := 0; i < b.N; i++ {
			builder.Build(list, "abl.trace.example")
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			builder := &pathbuild.Builder{Policy: pol, Roots: roots, Now: certgen.Reference, Trace: &pathbuild.Trace{}}
			builder.Build(list, "abl.trace.example")
		}
	})
}
