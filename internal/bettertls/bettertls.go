// Package bettertls implements the comparison baseline of the paper's
// Table 1: a BetterTLS-style test suite for "validation correctness" —
// whether a client rejects an invalid certificate and selects an alternative
// valid chain when one exists. The paper contrasts its own construction-
// focused tests with BetterTLS's validation-focused ones; implementing both
// sides lets the combined matrix be generated rather than transcribed.
//
// Each test deploys two candidate issuers for the leaf's key: a poisoned
// variant (expired, name-constraint-violating, wrong EKU, missing Basic
// Constraints, or not a CA) presented first, and a healthy variant behind
// it. A client passes when it ends up on the healthy chain — by candidate
// prioritization, construction-time filtering, or backtracking.
package bettertls

import (
	"fmt"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/clients"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/rootstore"
)

// TestKind enumerates the BetterTLS-side capability types of Table 1.
type TestKind int

const (
	Expired TestKind = iota
	NameConstraintsViolation
	BadEKU
	MissingBasicConstraints
	NotACA
	DeprecatedCrypto
)

// String returns Table 1's label.
func (k TestKind) String() string {
	switch k {
	case Expired:
		return "EXPIRED"
	case NameConstraintsViolation:
		return "NAME_CONSTRAINTS"
	case BadEKU:
		return "BAD_EKU"
	case MissingBasicConstraints:
		return "MISS_BASIC_CONSTRAINTS"
	case NotACA:
		return "NOT_A_CA"
	case DeprecatedCrypto:
		return "DEPRECATED_CRYPTO"
	default:
		return fmt.Sprintf("TEST(%d)", int(k))
	}
}

// Kinds returns every implemented test kind.
func Kinds() []TestKind {
	return []TestKind{Expired, NameConstraintsViolation, BadEKU, MissingBasicConstraints, NotACA, DeprecatedCrypto}
}

// Case is one generated test: a list with a poisoned-first candidate pair.
type Case struct {
	Kind    TestKind
	Domain  string
	List    []*certmodel.Certificate
	Roots   *rootstore.Store
	Poison  *certmodel.Certificate
	Healthy *certmodel.Certificate
}

// NewCase builds the test chain for a kind. The poisoned issuer variant
// shares the healthy one's subject and key, so only validity decides.
func NewCase(kind TestKind) (*Case, error) {
	root, err := certgen.NewRoot("BetterTLS Root " + kind.String())
	if err != nil {
		return nil, err
	}
	healthy, err := root.NewIntermediate("BetterTLS CA " + kind.String())
	if err != nil {
		return nil, err
	}
	domain := "bettertls.test.example"
	leaf, err := healthy.NewLeaf(domain)
	if err != nil {
		return nil, err
	}

	var poisonOpts []certgen.Option
	switch kind {
	case Expired:
		poisonOpts = []certgen.Option{certgen.WithValidity(
			certgen.Reference.AddDate(-3, 0, 0), certgen.Reference.AddDate(-1, 0, 0))}
	case NameConstraintsViolation:
		// The poisoned CA only permits names under a different tree.
		poisonOpts = []certgen.Option{certgen.WithNameConstraints([]string{"allowed.example"}, nil)}
	case BadEKU:
		poisonOpts = []certgen.Option{certgen.WithEKU(certmodel.EKUClientAuth)}
	case MissingBasicConstraints:
		poisonOpts = []certgen.Option{certgen.WithoutBasicConstraints()}
	case NotACA:
		poisonOpts = []certgen.Option{func(t *certgen.Template) { t.IsCA = false }}
	case DeprecatedCrypto:
		// ECDSA-SHA1: parses fine, but modern verifiers refuse the
		// signature outright.
		poisonOpts = []certgen.Option{certgen.WithWeakSignature()}
	default:
		return nil, fmt.Errorf("bettertls: unknown kind %v", kind)
	}
	poison, err := root.ReissueIntermediate(healthy, poisonOpts...)
	if err != nil {
		return nil, err
	}

	return &Case{
		Kind:    kind,
		Domain:  domain,
		List:    []*certmodel.Certificate{leaf.Cert, poison, healthy.Cert, root.Cert},
		Roots:   rootstore.NewWith("bettertls", root.Cert),
		Poison:  poison,
		Healthy: healthy.Cert,
	}, nil
}

// Result is one client's outcome on one case.
type Result struct {
	Client string
	Kind   TestKind
	// Accepted: the client validated some chain.
	Accepted bool
	// ViaHealthy: the final path routes through the healthy variant.
	ViaHealthy bool
	// Pass is the BetterTLS notion of success: the connection succeeds AND
	// avoids the poisoned certificate.
	Pass bool
}

// Suite holds the generated cases.
type Suite struct {
	Cases []*Case
}

// NewSuite generates every case.
func NewSuite() (*Suite, error) {
	s := &Suite{}
	for _, k := range Kinds() {
		c, err := NewCase(k)
		if err != nil {
			return nil, fmt.Errorf("bettertls: case %v: %w", k, err)
		}
		s.Cases = append(s.Cases, c)
	}
	return s, nil
}

// Run evaluates one client model over every case.
func (s *Suite) Run(p clients.Profile) []Result {
	var out []Result
	for _, c := range s.Cases {
		b := &pathbuild.Builder{
			Policy: p.Policy,
			Roots:  c.Roots,
			Cache:  rootstore.New("cache"),
			Now:    certgen.Reference,
		}
		res := b.Build(c.List, c.Domain)
		r := Result{Client: p.Name, Kind: c.Kind, Accepted: res.OK()}
		for _, cert := range res.Path {
			if cert.Equal(c.Healthy) {
				r.ViaHealthy = true
			}
		}
		r.Pass = r.Accepted && r.ViaHealthy
		out = append(out, r)
	}
	return out
}

// RunAll evaluates every client model, keyed by client name then kind.
func (s *Suite) RunAll() map[string]map[TestKind]Result {
	out := make(map[string]map[TestKind]Result)
	for _, p := range clients.All() {
		m := make(map[TestKind]Result)
		for _, r := range s.Run(p) {
			m[r.Kind] = r
		}
		out[p.Name] = m
	}
	return out
}

// recommendedPolicy exposes the §6 recommended builder policy for the test
// suite and the Table 1 experiment.
func recommendedPolicy() pathbuild.Policy {
	p := pathbuild.DefaultPolicy()
	p.AIA = false // these cases need no fetching
	return p
}
