package bettertls

import (
	"testing"

	"chainchaos/internal/clients"
)

func TestSuiteShapes(t *testing.T) {
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cases) != len(Kinds()) {
		t.Fatalf("case count = %d", len(s.Cases))
	}
	for _, c := range s.Cases {
		if len(c.List) != 4 {
			t.Errorf("%v: list length = %d", c.Kind, len(c.List))
		}
		if c.Poison.Subject != c.Healthy.Subject {
			t.Errorf("%v: poison/healthy subjects differ", c.Kind)
		}
		if string(c.Poison.PublicKeyID) != string(c.Healthy.PublicKeyID) {
			t.Errorf("%v: poison/healthy keys differ", c.Kind)
		}
		// The poisoned variant must be presented before the healthy one.
		if !c.List[1].Equal(c.Poison) || !c.List[2].Equal(c.Healthy) {
			t.Errorf("%v: presentation order wrong", c.Kind)
		}
	}
}

// TestValidationCorrectnessMatrix pins the expected Table 1-style outcomes
// for each client model: backtracking clients always recover onto the
// healthy chain; BP-capable clients dodge the BasicConstraints poisons
// up front; validity-prioritizing clients dodge the expired poison; plain
// positional clients (GnuTLS) fall for everything.
func TestValidationCorrectnessMatrix(t *testing.T) {
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	results := s.RunAll()

	pass := func(client string, kind TestKind) bool {
		return results[client][kind].Pass
	}

	// Backtracking clients (CryptoAPI + all browsers) pass every test.
	for _, client := range []string{"CryptoAPI", "Chrome", "Edge", "Safari", "Firefox"} {
		for _, kind := range Kinds() {
			if !pass(client, kind) {
				t.Errorf("%s should pass %v", client, kind)
			}
		}
	}

	// OpenSSL: VP1 dodges the expired poison, but nothing helps against
	// the semantic poisons and it cannot backtrack.
	if !pass("OpenSSL", Expired) {
		t.Error("OpenSSL should dodge the expired candidate (VP1)")
	}
	for _, kind := range []TestKind{NameConstraintsViolation, BadEKU} {
		if pass("OpenSSL", kind) {
			t.Errorf("OpenSSL should fail %v (no priority, no backtracking)", kind)
		}
	}

	// GnuTLS has no validity priority and no backtracking: it falls for
	// every poison.
	for _, kind := range Kinds() {
		if pass("GnuTLS", kind) {
			t.Errorf("GnuTLS should fail %v", kind)
		}
	}

	// MbedTLS: construction-time validity filtering dodges EXPIRED, and
	// its BasicConstraints priority dodges the BC poisons; the NC and EKU
	// poisons defeat it. So does DEPRECATED_CRYPTO: the weak signature
	// sits on the candidate itself and only fails one level up (verifying
	// root->poison), after the forward-only scan has committed — exactly
	// why only backtracking clients recover.
	if !pass("MbedTLS", Expired) {
		t.Error("MbedTLS should dodge the expired candidate (partial validation)")
	}
	for _, c := range []string{"MbedTLS", "GnuTLS", "OpenSSL"} {
		if pass(c, DeprecatedCrypto) {
			t.Errorf("%s should fail DEPRECATED_CRYPTO (no backtracking)", c)
		}
	}
	if !pass("MbedTLS", MissingBasicConstraints) || !pass("MbedTLS", NotACA) {
		t.Error("MbedTLS should dodge BasicConstraints poisons (BP)")
	}
	if pass("MbedTLS", NameConstraintsViolation) || pass("MbedTLS", BadEKU) {
		t.Error("MbedTLS should fail the NC/EKU poisons")
	}

	// And the recommended policy (not in the matrix) must pass everything.
	rec := clients.Profile{Name: "recommended"}
	rec.Policy = recommendedPolicy()
	for _, r := range s.Run(rec) {
		if !r.Pass {
			t.Errorf("recommended policy failed %v", r.Kind)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Errorf("kind %d renders empty", int(k))
		}
	}
	if TestKind(99).String() != "TEST(99)" {
		t.Error("unknown kind rendering")
	}
}
