package core

import (
	"testing"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/revocation"
	"chainchaos/internal/rootstore"
)

var base = time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)

type env struct {
	root, ca2, ca1, leaf *certmodel.Certificate
	roots                *rootstore.Store
	repo                 *aia.Repository
}

func newEnv() *env {
	root := certmodel.SyntheticRoot("Core Root", base)
	ca2 := certmodel.SyntheticIntermediate("Core CA2", root, base)
	ca1 := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "Core CA1"}, Issuer: ca2.Subject,
		Serial: "1", NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
		Key: certmodel.NewSyntheticKey("core-ca1"), SignedBy: certmodel.KeyOf(ca2),
		IsCA: true, BasicConstraintsValid: true,
		KeyUsage: certmodel.KeyUsageCertSign, HasKeyUsage: true,
		AIAIssuerURLs: []string{"http://repo.core/ca2.der"},
	})
	leaf := certmodel.SyntheticLeaf("core.example", "1", ca1, base, base.AddDate(1, 0, 0))
	repo := aia.NewRepository()
	repo.Put("http://repo.core/ca2.der", ca2)
	return &env{root, ca2, ca1, leaf, rootstore.NewWith("core", root), repo}
}

func TestAuditorGrades(t *testing.T) {
	e := newEnv()
	a := &Auditor{Roots: e.roots, Fetcher: e.repo}

	good := a.Audit("core.example", []*certmodel.Certificate{e.leaf, e.ca1, e.ca2})
	if !good.Compliant() || good.Topology == nil {
		t.Errorf("compliant deployment graded: %+v", good.Report)
	}
	bad := a.Audit("core.example", []*certmodel.Certificate{e.leaf, e.ca2, e.ca1})
	if bad.Compliant() {
		t.Error("reversed deployment passed the audit")
	}
	if !bad.Order.ReversedAny {
		t.Error("reversal not detected through the facade")
	}
}

func TestClientModels(t *testing.T) {
	e := newEnv()
	reversed := []*certmodel.Certificate{e.leaf, e.ca2, e.ca1}

	chrome := NewClient("Chrome", e.roots)
	chrome.Fetcher = e.repo
	chrome.Now = base
	if !chrome.Accepts("core.example", reversed) {
		t.Error("Chrome model should reorder the chain")
	}

	mbed := NewClient("MbedTLS", e.roots)
	mbed.Now = base
	if mbed.Accepts("core.example", reversed) {
		t.Error("MbedTLS model should fail the reversed chain")
	}

	// An unknown model name falls back to the recommended policy.
	rec := NewClient("my-client", e.roots)
	rec.Fetcher = e.repo
	rec.Now = base
	if rec.Profile.Name != "my-client" || !rec.Accepts("core.example", reversed) {
		t.Error("recommended fallback wrong")
	}

	// AIA completion through the facade.
	incomplete := []*certmodel.Certificate{e.leaf, e.ca1}
	out := chrome.Connect("core.example", incomplete)
	if !out.OK() || out.AIAFetches == 0 {
		t.Errorf("facade AIA build: ok=%v fetches=%d", out.OK(), out.AIAFetches)
	}
}

func TestClientRevocation(t *testing.T) {
	e := newEnv()
	crl := revocation.NewList()
	crl.Revoke(e.ca1)
	c := NewClient("OpenSSL", e.roots)
	c.Now = base
	c.Revocation = crl
	out := c.Connect("core.example", []*certmodel.Certificate{e.leaf, e.ca1, e.ca2})
	if out.OK() {
		t.Error("revoked intermediate accepted")
	}
	if Classify(out) != VerdictRevoked {
		t.Errorf("class = %v, want revoked", Classify(out))
	}
}

func TestClassify(t *testing.T) {
	e := newEnv()
	full := []*certmodel.Certificate{e.leaf, e.ca1, e.ca2}

	mk := func(model string, cfg func(*Client)) pathbuild.Outcome {
		c := NewClient(model, e.roots)
		c.Now = base
		c.Fetcher = e.repo
		if cfg != nil {
			cfg(c)
		}
		return c.Connect("core.example", full)
	}

	if got := Classify(mk("Chrome", nil)); got != VerdictOK {
		t.Errorf("healthy = %v", got)
	}
	out := mk("Chrome", func(c *Client) { c.Roots = rootstore.New("empty") })
	if got := Classify(out); got != VerdictUnknownIssuer {
		t.Errorf("untrusted = %v", got)
	}
	out = mk("OpenSSL", func(c *Client) { c.Now = base.AddDate(10, 0, 0) })
	if got := Classify(out); got != VerdictDateInvalid {
		t.Errorf("expired = %v", got)
	}
	gnutls := NewClient("GnuTLS", e.roots)
	long := append([]*certmodel.Certificate(nil), full...)
	for len(long) <= 16 {
		long = append(long, e.ca2)
	}
	if got := Classify(gnutls.Connect("core.example", long)); got != VerdictRejectedList {
		t.Errorf("long list = %v", got)
	}
	// Hostname mismatch.
	c := NewClient("Chrome", e.roots)
	c.Now = base
	if got := Classify(c.Connect("unrelated.example", full)); got != VerdictDomainMismatch {
		t.Errorf("mismatch = %v", got)
	}
	for v := VerdictOK; v <= VerdictOtherFailure; v++ {
		if v.String() == "" {
			t.Errorf("class %d renders empty", int(v))
		}
	}
}

func TestExplain(t *testing.T) {
	e := newEnv()
	c := NewClient("Chrome", e.roots)
	c.Now = base
	if s := Explain(c.Connect("core.example", []*certmodel.Certificate{e.leaf, e.ca1, e.ca2})); s != "path valid" {
		t.Errorf("Explain healthy = %q", s)
	}
	gnutls := NewClient("GnuTLS", e.roots)
	long := make([]*certmodel.Certificate, 0, 18)
	long = append(long, e.leaf)
	for len(long) < 18 {
		long = append(long, e.ca1)
	}
	if s := Explain(gnutls.Connect("core.example", long)); s == "" || s == "path valid" {
		t.Errorf("Explain refused = %q", s)
	}
	if s := Explain(pathbuild.Outcome{}); s != "no result" {
		t.Errorf("Explain zero = %q", s)
	}
}
