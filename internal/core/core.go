// Package core is the library's facade: it ties the paper's two workflows —
// server-side deployment auditing (RQ1) and client-side path construction
// (RQ2) — into two top-level types, Auditor and Client, over the substrates
// in the sibling packages. The cmd/ tools and examples compose the
// substrates directly for fine control; downstream users who just want
// "grade this chain" or "build a path like Chrome would" start here.
package core

import (
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/revocation"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/topo"
	"chainchaos/internal/validate"
)

// Auditor grades server-side certificate chain deployments against the TLS
// structural requirements (leaf first, issuance order, completeness).
type Auditor struct {
	// Roots is the trust store used for completeness analysis; the paper's
	// baseline is a multi-vendor union.
	Roots *rootstore.Store
	// Fetcher resolves AIA URIs during completeness analysis; nil models a
	// client without AIA support.
	Fetcher aia.Fetcher
}

// Audit is the compliance report for one deployment, with the topology used
// to derive it.
type Audit struct {
	compliance.Report
	Topology *topo.Graph
}

// Audit grades the certificate list a server presented for domain.
func (a *Auditor) Audit(domain string, list []*certmodel.Certificate) Audit {
	g := topo.Build(list)
	an := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{
		Roots:   a.Roots,
		Fetcher: a.Fetcher,
	}}
	return Audit{Report: an.Analyze(domain, g), Topology: g}
}

// Client is a chain-constructing TLS client: a behavioural profile bound to
// a trust store and environment.
type Client struct {
	Profile clients.Profile

	// Roots is the client's trust store.
	Roots *rootstore.Store
	// Fetcher serves AIA fetches for AIA-capable profiles.
	Fetcher aia.Fetcher
	// Cache is the intermediate cache for cache-using profiles (Firefox).
	Cache *rootstore.Store
	// Revocation, when non-nil, is enforced during validation.
	Revocation *revocation.List
	// Now is the validation time; zero disables validity checks.
	Now time.Time
}

// NewClient builds a client from a named model ("OpenSSL", "Chrome", …) or
// the recommended policy for any other name.
func NewClient(model string, roots *rootstore.Store) *Client {
	for _, p := range clients.All() {
		if p.Name == model {
			return &Client{Profile: p, Roots: roots, Cache: rootstore.New("cache")}
		}
	}
	return &Client{
		Profile: clients.Profile{Name: model, Policy: pathbuild.DefaultPolicy()},
		Roots:   roots,
		Cache:   rootstore.New("cache"),
	}
}

// Connect simulates the client receiving list from a server for domain: it
// constructs a certification path and validates it, returning the full
// outcome (path, validation findings, construction counters).
func (c *Client) Connect(domain string, list []*certmodel.Certificate) pathbuild.Outcome {
	b := &pathbuild.Builder{
		Policy:     c.Profile.Policy,
		Roots:      c.Roots,
		Fetcher:    c.Fetcher,
		Cache:      c.Cache,
		Revocation: c.Revocation,
		Now:        c.Now,
	}
	return b.Build(list, domain)
}

// Accepts reports whether the client would establish the connection.
func (c *Client) Accepts(domain string, list []*certmodel.Certificate) bool {
	return c.Connect(domain, list).OK()
}

// Explain renders a one-line human explanation of an outcome.
func Explain(out pathbuild.Outcome) string {
	switch {
	case out.Err != nil:
		return "construction refused: " + out.Err.Error()
	case out.Validation.OK:
		return "path valid"
	case len(out.Validation.Findings) > 0:
		return "validation failed: " + out.Validation.Findings[0].String()
	default:
		return "no result"
	}
}

// VerdictClass buckets an outcome into the coarse error classes the paper's
// differential testing compares across clients ("date_invalid / OK / domain
// mismatch / unknown issuer").
type VerdictClass int

const (
	VerdictOK            VerdictClass = iota
	VerdictRejectedList               // construction-phase refusal (list too long, self-signed leaf)
	VerdictUnknownIssuer              // no trust-anchored path (SEC_ERROR_UNKNOWN_ISSUER class)
	VerdictDateInvalid
	VerdictDomainMismatch
	VerdictRevoked
	VerdictOtherFailure
)

// String returns the class label.
func (v VerdictClass) String() string {
	switch v {
	case VerdictOK:
		return "OK"
	case VerdictRejectedList:
		return "rejected-list"
	case VerdictUnknownIssuer:
		return "unknown-issuer"
	case VerdictDateInvalid:
		return "date-invalid"
	case VerdictDomainMismatch:
		return "domain-mismatch"
	case VerdictRevoked:
		return "revoked"
	default:
		return "other-failure"
	}
}

// Classify maps an outcome onto its verdict class, mirroring how the paper
// groups browser error messages.
func Classify(out pathbuild.Outcome) VerdictClass {
	if out.Err != nil {
		return VerdictRejectedList
	}
	if out.Validation.OK {
		return VerdictOK
	}
	// Priority order mirrors browser error surfaces: trust first, then
	// dates, then the hostname.
	switch {
	case out.Validation.Has(validate.ProblemUntrusted):
		return VerdictUnknownIssuer
	case out.Validation.Has(validate.ProblemExpired), out.Validation.Has(validate.ProblemNotYetValid):
		return VerdictDateInvalid
	case out.Validation.Has(validate.ProblemRevoked):
		return VerdictRevoked
	case out.Validation.Has(validate.ProblemHostnameMismatch):
		return VerdictDomainMismatch
	default:
		return VerdictOtherFailure
	}
}
