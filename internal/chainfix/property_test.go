package chainfix

import (
	"testing"

	"chainchaos/internal/population"
	"chainchaos/internal/topo"
)

// TestFixIdempotent: repairing an already-repaired list is a no-op — same
// certificates, same order, no actions.
func TestFixIdempotent(t *testing.T) {
	pop := population.Generate(population.Config{Size: 6000, Seed: 77})
	f := &Fixer{Roots: pop.Roots(), Fetcher: pop.Repo}

	checked := 0
	for _, d := range pop.Domains {
		if !d.Truth.NonCompliant() {
			continue
		}
		first, err := f.Fix(d.List, d.Name)
		if err != nil {
			continue
		}
		checked++
		second, err := f.Fix(first.List, d.Name)
		if err != nil {
			t.Fatalf("%s: second fix errored: %v", d.Name, err)
		}
		if len(second.Actions) != 0 {
			t.Errorf("%s: second fix took actions: %v", d.Name, second.Actions)
		}
		if len(second.List) != len(first.List) {
			t.Fatalf("%s: second fix changed length %d -> %d", d.Name, len(first.List), len(second.List))
		}
		for i := range first.List {
			if !second.List[i].Equal(first.List[i]) {
				t.Errorf("%s: second fix changed position %d", d.Name, i)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no fixable chains sampled")
	}
	t.Logf("idempotence verified on %d chains", checked)
}

// TestFixOutputStructure: every successful fix yields a list that is
// leaf-first, sequentially ordered, duplicate-free and irrelevant-free.
func TestFixOutputStructure(t *testing.T) {
	pop := population.Generate(population.Config{Size: 6000, Seed: 78})
	f := &Fixer{Roots: pop.Roots(), Fetcher: pop.Repo}
	for _, d := range pop.Domains {
		if !d.Truth.NonCompliant() {
			continue
		}
		res, err := f.Fix(d.List, d.Name)
		if err != nil {
			continue
		}
		if !topo.SequentialOrderOK(res.List) {
			t.Errorf("%s: fixed list not sequential", d.Name)
		}
		g := topo.Build(res.List)
		if g.HasDuplicates() {
			t.Errorf("%s: fixed list has duplicates", d.Name)
		}
		if len(g.IrrelevantNodes()) != 0 {
			t.Errorf("%s: fixed list has irrelevant certs", d.Name)
		}
		if !res.List[0].Equal(d.List[0]) {
			t.Errorf("%s: fixed list does not start with the server's leaf", d.Name)
		}
	}
}
