// Package chainfix turns the paper's §6 recommendations into a tool: it
// repairs a structurally non-compliant certificate list into a compliant
// deployment — duplicates removed, irrelevant certificates dropped,
// certificates reordered into issuance order, missing intermediates
// completed through AIA, and the root optionally omitted (the recommended
// practice) or retained.
//
// This is the automation CAs and HTTP servers are urged to ship: the fixer
// is deterministic, explains every action it takes, and its output always
// satisfies the same compliance analyzer that graded the input.
package chainfix

import (
	"errors"
	"fmt"

	"chainchaos/internal/aia"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/compliance"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/topo"
)

// ActionKind classifies a repair step.
type ActionKind int

const (
	ActionRemoveDuplicate ActionKind = iota
	ActionRemoveIrrelevant
	ActionReorder
	ActionFetchMissing
	ActionStripRoot
	ActionKeepRoot
)

// String returns the action's name.
func (k ActionKind) String() string {
	switch k {
	case ActionRemoveDuplicate:
		return "remove-duplicate"
	case ActionRemoveIrrelevant:
		return "remove-irrelevant"
	case ActionReorder:
		return "reorder"
	case ActionFetchMissing:
		return "fetch-missing-intermediate"
	case ActionStripRoot:
		return "strip-root"
	case ActionKeepRoot:
		return "keep-root"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// Action is one explained repair step.
type Action struct {
	Kind ActionKind
	Cert *certmodel.Certificate
}

func (a Action) String() string {
	if a.Cert == nil {
		return a.Kind.String()
	}
	return fmt.Sprintf("%s: %s", a.Kind, a.Cert.Subject)
}

// Result is the repaired deployment plus the audit trail.
type Result struct {
	// List is the compliant wire-order list: leaf first, issuance order,
	// root included only when KeepRoot was requested.
	List    []*certmodel.Certificate
	Actions []Action
	// Report grades the repaired list with the same analyzer that grades
	// inputs; Fix guarantees Report.Compliant() on success.
	Report compliance.Report
}

// Fixer repairs certificate lists.
type Fixer struct {
	// Roots anchors path construction and completeness analysis.
	Roots *rootstore.Store
	// Fetcher supplies missing intermediates via AIA; nil disables
	// completion.
	Fetcher aia.Fetcher
	// KeepRoot retains the self-signed root in the output; the default
	// follows the recommendation to omit it.
	KeepRoot bool
}

// Fix errors.
var (
	// ErrNoPath: no certification path from the leaf reaches a trust
	// anchor even with AIA completion — the deployment cannot be repaired
	// mechanically.
	ErrNoPath = errors.New("chainfix: no trust-anchored path constructible from the input")
	// ErrEmpty: nothing to fix.
	ErrEmpty = errors.New("chainfix: empty certificate list")
)

// Fix repairs list for domain. The repair is a construction problem: build
// the best certification path the input (plus AIA) supports, then emit it in
// compliant order, reporting everything that had to change.
func (f *Fixer) Fix(list []*certmodel.Certificate, domain string) (Result, error) {
	var res Result
	if len(list) == 0 {
		return res, ErrEmpty
	}

	policy := pathbuild.DefaultPolicy()
	policy.Name = "chainfix"
	policy.AIA = f.Fetcher != nil
	builder := &pathbuild.Builder{
		Policy:  policy,
		Roots:   f.Roots,
		Fetcher: f.Fetcher,
		// No clock: structural repair must not depend on when it runs;
		// expiry is a renewal problem, not an ordering problem.
	}
	out := builder.Build(list, "")
	if out.Err != nil || len(out.Path) == 0 {
		return res, fmt.Errorf("%w: %v", ErrNoPath, out.Err)
	}
	if !out.Validation.OK {
		return res, fmt.Errorf("%w: best candidate path fails validation: %v",
			ErrNoPath, out.Validation.Findings[0])
	}

	res.Actions = f.explain(list, out)
	res.List = f.emit(out.Path)

	g := topo.Build(res.List)
	an := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{
		Roots:   f.Roots,
		Fetcher: f.Fetcher,
	}}
	res.Report = an.Analyze(domain, g)
	if !res.Report.Compliant() {
		// The fixer's contract is a compliant output; reaching here means
		// the input was unfixable in a way construction missed (e.g. the
		// leaf itself is a trust anchor mismatch).
		return res, fmt.Errorf("%w: repaired list still non-compliant", ErrNoPath)
	}
	return res, nil
}

// emit renders the constructed path in wire order, applying the root policy.
func (f *Fixer) emit(path []*certmodel.Certificate) []*certmodel.Certificate {
	outList := append([]*certmodel.Certificate(nil), path...)
	last := outList[len(outList)-1]
	if last.SelfSigned() && !f.KeepRoot {
		outList = outList[:len(outList)-1]
	}
	return outList
}

// explain diffs the input list against the constructed path.
func (f *Fixer) explain(list []*certmodel.Certificate, out pathbuild.Outcome) []Action {
	var actions []Action

	inPath := map[certmodel.FP]bool{}
	for _, c := range out.Path {
		inPath[c.Fingerprint()] = true
	}
	seen := map[certmodel.FP]bool{}
	for _, c := range list {
		fp := c.Fingerprint()
		switch {
		case seen[fp]:
			actions = append(actions, Action{ActionRemoveDuplicate, c})
		case !inPath[fp]:
			actions = append(actions, Action{ActionRemoveIrrelevant, c})
		}
		seen[fp] = true
	}

	// Anything on the path that the server never sent was fetched.
	sent := map[certmodel.FP]bool{}
	for _, c := range list {
		sent[c.Fingerprint()] = true
	}
	for _, c := range out.Path {
		if !sent[c.Fingerprint()] && !c.SelfSigned() {
			actions = append(actions, Action{ActionFetchMissing, c})
		}
	}

	// Order change: compare the surviving input order against path order.
	if !sameOrder(list, out.Path) {
		actions = append(actions, Action{Kind: ActionReorder})
	}

	last := out.Path[len(out.Path)-1]
	if last.SelfSigned() {
		if f.KeepRoot {
			actions = append(actions, Action{ActionKeepRoot, last})
		} else if sent[last.Fingerprint()] {
			actions = append(actions, Action{ActionStripRoot, last})
		}
	}
	return actions
}

// sameOrder reports whether the path-member certificates appear in the input
// in path order (first occurrences).
func sameOrder(list, path []*certmodel.Certificate) bool {
	pos := map[certmodel.FP]int{}
	for i, c := range list {
		fp := c.Fingerprint()
		if _, ok := pos[fp]; !ok {
			pos[fp] = i
		}
	}
	prev := -1
	for _, c := range path {
		p, ok := pos[c.Fingerprint()]
		if !ok {
			continue // fetched via AIA
		}
		if p < prev {
			return false
		}
		prev = p
	}
	return true
}
