package chainfix

import (
	"errors"
	"testing"

	"chainchaos/internal/aia"
	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/compliance"
	"chainchaos/internal/population"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/topo"
)

type fixPKI struct {
	root, ca2, ca1 *certgen.Authority
	leaf           *certgen.Leaf
	roots          *rootstore.Store
}

func newFixPKI(t *testing.T) *fixPKI {
	t.Helper()
	root, err := certgen.NewRoot("Fix Root")
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := root.NewIntermediate("Fix CA 2")
	if err != nil {
		t.Fatal(err)
	}
	ca1, err := ca2.NewIntermediate("Fix CA 1")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca1.NewLeaf("fix.example")
	if err != nil {
		t.Fatal(err)
	}
	return &fixPKI{root, ca2, ca1, leaf, rootstore.NewWith("fix", root.Cert)}
}

func hasAction(actions []Action, kind ActionKind) bool {
	for _, a := range actions {
		if a.Kind == kind {
			return true
		}
	}
	return false
}

func TestFixReversedChain(t *testing.T) {
	p := newFixPKI(t)
	f := &Fixer{Roots: p.roots}
	in := []*certmodel.Certificate{p.leaf.Cert, p.root.Cert, p.ca2.Cert, p.ca1.Cert}
	res, err := f.Fix(in, "fix.example")
	if err != nil {
		t.Fatal(err)
	}
	if !hasAction(res.Actions, ActionReorder) {
		t.Errorf("expected reorder action, got %v", res.Actions)
	}
	if !hasAction(res.Actions, ActionStripRoot) {
		t.Errorf("expected strip-root action, got %v", res.Actions)
	}
	want := []*certmodel.Certificate{p.leaf.Cert, p.ca1.Cert, p.ca2.Cert}
	if len(res.List) != len(want) {
		t.Fatalf("fixed list length = %d, want %d (%v)", len(res.List), len(want), res.List)
	}
	for i := range want {
		if !res.List[i].Equal(want[i]) {
			t.Errorf("fixed[%d] = %s", i, res.List[i].Subject)
		}
	}
	if !res.Report.Compliant() {
		t.Error("fixed list not compliant")
	}
}

func TestFixDuplicatesAndIrrelevant(t *testing.T) {
	p := newFixPKI(t)
	stranger, err := certgen.NewRoot("Fix Stranger")
	if err != nil {
		t.Fatal(err)
	}
	f := &Fixer{Roots: p.roots}
	in := []*certmodel.Certificate{
		p.leaf.Cert, p.leaf.Cert, stranger.Cert, p.ca1.Cert, p.ca1.Cert, p.ca2.Cert,
	}
	res, err := f.Fix(in, "fix.example")
	if err != nil {
		t.Fatal(err)
	}
	if !hasAction(res.Actions, ActionRemoveDuplicate) {
		t.Errorf("expected duplicate removal, got %v", res.Actions)
	}
	if !hasAction(res.Actions, ActionRemoveIrrelevant) {
		t.Errorf("expected irrelevant removal, got %v", res.Actions)
	}
	g := topo.Build(res.List)
	if g.HasDuplicates() || len(g.IrrelevantNodes()) != 0 {
		t.Errorf("fixed list still dirty: %s", g)
	}
	if !res.Report.Compliant() {
		t.Error("fixed list not compliant")
	}
}

func TestFixIncompleteViaAIA(t *testing.T) {
	root, err := certgen.NewRoot("FixAIA Root")
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := root.NewIntermediate("FixAIA CA 2")
	if err != nil {
		t.Fatal(err)
	}
	const uri = "http://repo.fix.example/ca2.der"
	ca1, err := ca2.NewIntermediate("FixAIA CA 1", certgen.WithAIA(uri))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca1.NewLeaf("fixaia.example")
	if err != nil {
		t.Fatal(err)
	}
	repo := aia.NewRepository()
	repo.Put(uri, ca2.Cert)

	f := &Fixer{Roots: rootstore.NewWith("fixaia", root.Cert), Fetcher: repo}
	res, err := f.Fix([]*certmodel.Certificate{leaf.Cert, ca1.Cert}, "fixaia.example")
	if err != nil {
		t.Fatal(err)
	}
	if !hasAction(res.Actions, ActionFetchMissing) {
		t.Errorf("expected fetch-missing action, got %v", res.Actions)
	}
	if len(res.List) != 3 {
		t.Fatalf("fixed list = %d certs, want 3", len(res.List))
	}
	if !res.List[2].Equal(ca2.Cert) {
		t.Errorf("fixed[2] = %s, want CA 2", res.List[2].Subject)
	}
}

func TestFixKeepRoot(t *testing.T) {
	p := newFixPKI(t)
	f := &Fixer{Roots: p.roots, KeepRoot: true}
	in := []*certmodel.Certificate{p.leaf.Cert, p.ca2.Cert, p.ca1.Cert, p.root.Cert}
	res, err := f.Fix(in, "fix.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.List) != 4 || !res.List[3].Equal(p.root.Cert) {
		t.Errorf("root not retained: %v", res.List)
	}
	if !hasAction(res.Actions, ActionKeepRoot) {
		t.Errorf("expected keep-root action, got %v", res.Actions)
	}
}

func TestFixAlreadyCompliantIsNoop(t *testing.T) {
	p := newFixPKI(t)
	f := &Fixer{Roots: p.roots}
	in := []*certmodel.Certificate{p.leaf.Cert, p.ca1.Cert, p.ca2.Cert}
	res, err := f.Fix(in, "fix.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Actions) != 0 {
		t.Errorf("compliant input should need no actions, got %v", res.Actions)
	}
	if len(res.List) != 3 {
		t.Errorf("list changed: %v", res.List)
	}
}

func TestFixUnfixable(t *testing.T) {
	p := newFixPKI(t)
	orphanRoot, err := certgen.NewRoot("Unrelated Anchor")
	if err != nil {
		t.Fatal(err)
	}
	f := &Fixer{Roots: rootstore.NewWith("wrong", orphanRoot.Cert)}
	_, err = f.Fix([]*certmodel.Certificate{p.leaf.Cert, p.ca1.Cert}, "fix.example")
	if !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
	if _, err := f.Fix(nil, "x"); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

// TestFixPopulation runs the fixer across every non-compliant chain of a
// synthetic population: every chain with a constructible trusted path must
// come out compliant.
func TestFixPopulation(t *testing.T) {
	pop := population.Generate(population.Config{Size: 8000, Seed: 23})
	f := &Fixer{Roots: pop.Roots(), Fetcher: pop.Repo}
	an := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{Roots: pop.Roots(), Fetcher: pop.Repo}}

	fixed, unfixable := 0, 0
	for _, d := range pop.Domains {
		g := topo.Build(d.List)
		if an.Analyze(d.Name, g).Compliant() {
			continue
		}
		res, err := f.Fix(d.List, d.Name)
		if err != nil {
			unfixable++
			continue
		}
		fixed++
		if !res.Report.Compliant() {
			t.Errorf("%s: fixer returned non-compliant list", d.Name)
		}
	}
	if fixed == 0 {
		t.Fatal("no chains fixed")
	}
	t.Logf("fixed %d non-compliant chains, %d unfixable (untrusted/expired)", fixed, unfixable)
	// The overwhelming majority must be mechanically repairable.
	if float64(unfixable) > 0.25*float64(fixed+unfixable) {
		t.Errorf("too many unfixable chains: %d of %d", unfixable, fixed+unfixable)
	}
}
