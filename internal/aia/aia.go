// Package aia implements the Authority Information Access machinery: an
// issuer-certificate repository addressable by URI, fetchers (in-memory and
// real HTTP), and a recursive chaser that completes chains with missing
// intermediates the way AIA-capable clients (CryptoAPI, Chromium) do.
//
// The paper finds AIA support to be the single most decisive chain-building
// capability: 94.5% of incomplete chains are recoverable by recursively
// downloading issuers, and 8,553 chains validate only in the AIA-capable
// library (§5.2, I-4).
package aia

import (
	"errors"
	"fmt"
	"sync"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/obs"
)

// ErrNotFound is returned when no certificate is published at a URI.
var ErrNotFound = errors.New("aia: no certificate at URI")

// Fetcher retrieves the certificate published at an AIA caIssuers URI.
type Fetcher interface {
	Fetch(uri string) (*certmodel.Certificate, error)
}

// Repository is an in-memory certificate repository keyed by URI. It plays
// the role of the CAs' public HTTP repositories. It is safe for concurrent
// use.
type Repository struct {
	mu       sync.RWMutex
	certs    map[string]*certmodel.Certificate
	failures map[string]error
	fetches  int

	mFetches *obs.Counter // aia.fetches
	mHits    *obs.Counter // aia.hits: a certificate was published at the URI
	mMisses  *obs.Counter // aia.misses: dead or unknown URI
}

// Instrument wires the repository's fetch counters into reg (aia.fetches /
// aia.hits / aia.misses) and returns the repository for chaining. A nil
// registry detaches the counters.
func (r *Repository) Instrument(reg *obs.Registry) *Repository {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mFetches = reg.Counter("aia.fetches")
	r.mHits = reg.Counter("aia.hits")
	r.mMisses = reg.Counter("aia.misses")
	return r
}

// NewRepository creates an empty repository.
func NewRepository() *Repository {
	return &Repository{
		certs:    make(map[string]*certmodel.Certificate),
		failures: make(map[string]error),
	}
}

// Put publishes cert at uri.
func (r *Repository) Put(uri string, cert *certmodel.Certificate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.certs[uri] = cert
	delete(r.failures, uri)
}

// PutError makes fetches of uri fail with err — a dead or unreachable URI
// (the paper found 88 such chains).
func (r *Repository) PutError(uri string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures[uri] = err
	delete(r.certs, uri)
}

// Fetch implements Fetcher.
func (r *Repository) Fetch(uri string) (*certmodel.Certificate, error) {
	r.mu.Lock()
	r.fetches++
	r.mu.Unlock()

	r.mu.RLock()
	defer r.mu.RUnlock()
	r.mFetches.Inc()
	if err, ok := r.failures[uri]; ok {
		r.mMisses.Inc()
		return nil, fmt.Errorf("aia: fetch %s: %w", uri, err)
	}
	if cert, ok := r.certs[uri]; ok {
		r.mHits.Inc()
		return cert, nil
	}
	r.mMisses.Inc()
	return nil, fmt.Errorf("aia: fetch %s: %w", uri, ErrNotFound)
}

// FetchCount returns how many fetches have been issued, for resource-cost
// accounting in the benchmarks.
func (r *Repository) FetchCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.fetches
}

// Len returns the number of published certificates.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.certs)
}

// Terminal describes how a recursive AIA chase ended.
type Terminal int

const (
	// ReachedRoot: the chase reached a self-signed certificate or one whose
	// issuer is already trusted.
	ReachedRoot Terminal = iota
	// NoAIA: a certificate in the chase carries no caIssuers URI.
	NoAIA
	// FetchFailed: a URI could not be retrieved.
	FetchFailed
	// WrongIssuer: the certificate at the URI is not the issuer of the
	// certificate that referenced it (the CAcert class3.crt self-pointer).
	WrongIssuer
	// DepthExceeded: the chase hit its depth limit.
	DepthExceeded
)

// String returns the terminal's name.
func (t Terminal) String() string {
	switch t {
	case ReachedRoot:
		return "reached-root"
	case NoAIA:
		return "no-aia"
	case FetchFailed:
		return "fetch-failed"
	case WrongIssuer:
		return "wrong-issuer"
	case DepthExceeded:
		return "depth-exceeded"
	default:
		return fmt.Sprintf("terminal(%d)", int(t))
	}
}

// ChaseResult reports a recursive chase: the issuers fetched in order, and
// why the chase stopped.
type ChaseResult struct {
	Fetched  []*certmodel.Certificate
	Terminal Terminal
	// Err carries the underlying fetch error: always set when Terminal is
	// FetchFailed, and also set for WrongIssuer when some URIs failed while
	// others answered with the wrong certificate — the dead-URI/wrong-cert
	// distinction the paper draws in §4.3 is preserved, not collapsed.
	Err error
}

// Completed reports whether the chase ended at a root.
func (r ChaseResult) Completed() bool { return r.Terminal == ReachedRoot }

// Chaser recursively downloads issuers through AIA.
type Chaser struct {
	Fetcher Fetcher
	// MaxDepth bounds the number of fetches per chase; 0 means the default
	// of 8 (deep chains beyond that do not occur in the Web PKI).
	MaxDepth int
	// TrustedIssuer, when non-nil, lets the chase stop early once a fetched
	// certificate's issuer is already trusted (a root-store membership
	// test), mirroring clients that stop at a known anchor.
	TrustedIssuer func(*certmodel.Certificate) bool
}

// Chase fetches issuers starting from cert until it reaches a self-signed
// certificate, a trusted issuer, or a terminal failure.
func (c *Chaser) Chase(cert *certmodel.Certificate) ChaseResult {
	maxDepth := c.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 8
	}
	var result ChaseResult
	current := cert
	seen := map[certmodel.FP]bool{cert.Fingerprint(): true}
	for depth := 0; ; depth++ {
		if current.SelfSigned() {
			result.Terminal = ReachedRoot
			return result
		}
		if c.TrustedIssuer != nil && c.TrustedIssuer(current) {
			result.Terminal = ReachedRoot
			return result
		}
		if depth >= maxDepth {
			result.Terminal = DepthExceeded
			return result
		}
		if len(current.AIAIssuerURLs) == 0 {
			result.Terminal = NoAIA
			return result
		}
		next, answered, ferr := c.fetchIssuer(current)
		if next == nil {
			if answered {
				// At least one URI served a certificate, just not the
				// issuer; ferr still records any URIs that also failed.
				result.Terminal = WrongIssuer
			} else {
				result.Terminal = FetchFailed
			}
			result.Err = ferr
			return result
		}
		if seen[next.Fingerprint()] {
			// Fetching loops back onto an already-seen certificate; the
			// chase can make no progress.
			result.Terminal = WrongIssuer
			return result
		}
		seen[next.Fingerprint()] = true
		result.Fetched = append(result.Fetched, next)
		current = next
	}
}

// fetchIssuer tries each caIssuers URI in order and returns the first
// certificate that actually issued cert, whether any URI answered at all,
// and the last fetch error. A nil certificate with answered=true is the
// WrongIssuer case; the error is carried either way so a chase with one
// dead URI and one wrong-cert URI loses neither signal.
func (c *Chaser) fetchIssuer(cert *certmodel.Certificate) (found *certmodel.Certificate, answered bool, lastErr error) {
	for _, uri := range cert.AIAIssuerURLs {
		fetched, err := c.Fetcher.Fetch(uri)
		if err != nil {
			lastErr = err
			continue
		}
		answered = true
		if certmodel.Issued(fetched, cert) {
			return fetched, true, lastErr
		}
	}
	return nil, answered, lastErr
}
