package aia

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"chainchaos/internal/certmodel"
)

// Handler serves a Repository over HTTP: GET <prefix>/<name> answers with
// the DER bytes of the certificate published at the request URL. It lets the
// AIA code path run over a real network socket in the examples and
// integration tests — the transport the paper notes is plain HTTP, with the
// MITM and privacy caveats that entails.
func Handler(repo *Repository, baseURL string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		uri := strings.TrimSuffix(baseURL, "/") + req.URL.Path
		cert, err := repo.Fetch(uri)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if cert.X509 == nil {
			http.Error(w, "certificate has no DER form", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/pkix-cert")
		w.Write(cert.Raw)
	})
}

// HTTPFetcher fetches issuer certificates over real HTTP. Rewrite, when
// non-nil, maps the URI embedded in the certificate to the URL actually
// requested — tests use it to point fixed in-cert URIs at an ephemeral
// localhost listener.
type HTTPFetcher struct {
	Client  *http.Client
	Rewrite func(uri string) string
}

// Fetch implements Fetcher over HTTP. The response body is limited to 64 KiB
// (no legitimate certificate is larger).
func (f *HTTPFetcher) Fetch(uri string) (*certmodel.Certificate, error) {
	target := uri
	if f.Rewrite != nil {
		target = f.Rewrite(uri)
	}
	if _, err := url.Parse(target); err != nil {
		return nil, fmt.Errorf("aia: bad URI %q: %w", target, err)
	}
	client := f.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := client.Get(target)
	if err != nil {
		return nil, fmt.Errorf("aia: GET %s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("aia: GET %s: status %d", target, resp.StatusCode)
	}
	der, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if err != nil {
		return nil, fmt.Errorf("aia: read %s: %w", target, err)
	}
	cert, err := certmodel.ParseDER(der)
	if err != nil {
		return nil, fmt.Errorf("aia: parse %s: %w", target, err)
	}
	return cert, nil
}
