package aia

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/faults"
	"chainchaos/internal/obs"
)

// Handler serves a Repository over HTTP: GET <prefix>/<name> answers with
// the DER bytes of the certificate published at the request URL. It lets the
// AIA code path run over a real network socket in the examples and
// integration tests — the transport the paper notes is plain HTTP, with the
// MITM and privacy caveats that entails.
func Handler(repo *Repository, baseURL string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		uri := strings.TrimSuffix(baseURL, "/") + req.URL.Path
		cert, err := repo.Fetch(uri)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if cert.X509 == nil {
			http.Error(w, "certificate has no DER form", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/pkix-cert")
		w.Write(cert.Raw)
	})
}

// maxBody caps AIA response bodies; no legitimate issuer certificate is
// larger.
const maxBody = 64 << 10

// ErrTruncated marks a response body that exceeded the 64 KiB limit.
// Previously the LimitReader silently cut such bodies down to a misleading
// parse error; now the oversize is reported as what it is.
var ErrTruncated = errors.New("aia: response body exceeds 64 KiB certificate limit")

// defaultClient is shared by every HTTPFetcher with a nil Client, so
// connections are reused across a chase instead of a fresh client (and
// transport) being allocated per fetch. The transport carries explicit
// connection limits: the stdlib default transport caps idle connections per
// host at 2 and in-flight connections per host not at all, which under
// daemon-scale traffic (many concurrent verdict requests chasing the same CA
// repository) either thrashes connection setup or floods one origin. 16 warm
// idle connections per host cover a busy chase; 32 in-flight per host bound
// what one misbehaving repository can absorb.
var defaultClient = &http.Client{
	Timeout:   10 * time.Second,
	Transport: newTransport(),
}

// newTransport builds the fetcher's bounded transport from the stdlib
// default (keeping its proxy, dialer, and TLS settings current).
func newTransport() *http.Transport {
	t, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		t = &http.Transport{}
	}
	t = t.Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 16
	t.MaxConnsPerHost = 32
	t.IdleConnTimeout = 90 * time.Second
	return t
}

// StatusError is a non-200 AIA response.
type StatusError struct {
	URL  string
	Code int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("aia: GET %s: status %d", e.URL, e.Code)
}

// Transient reports whether the status is worth retrying (429 and 5xx).
func (e *StatusError) Transient() bool {
	return e.Code == http.StatusTooManyRequests || e.Code >= 500
}

// transientFetch classifies HTTP fetch failures for the retry policy:
// transient network errors plus retryable status codes.
func transientFetch(err error) bool {
	var serr *StatusError
	if errors.As(err, &serr) {
		return serr.Transient()
	}
	if errors.Is(err, ErrTruncated) {
		return false
	}
	return faults.IsTransient(err)
}

// HTTPFetcher fetches issuer certificates over real HTTP. Rewrite, when
// non-nil, maps the URI embedded in the certificate to the URL actually
// requested — tests use it to point fixed in-cert URIs at an ephemeral
// localhost listener.
type HTTPFetcher struct {
	Client  *http.Client
	Rewrite func(uri string) string
	// Retry re-attempts transient GET failures (network errors, 429/5xx).
	// The zero value fetches exactly once — the pre-existing behaviour.
	Retry faults.Policy
	// Metrics, when non-nil, receives fetch counters and a latency
	// histogram: aia.http.fetches / aia.http.errors / aia.http.truncated /
	// aia.http.fetch_latency.
	Metrics *obs.Registry

	metricsOnce sync.Once
	m           httpMetrics
}

// httpMetrics holds the fetcher's resolved handles; all no-op without a
// registry.
type httpMetrics struct {
	fetches   *obs.Counter
	errors    *obs.Counter
	truncated *obs.Counter
	latency   *obs.Histogram
}

func (f *HTTPFetcher) metrics() *httpMetrics {
	f.metricsOnce.Do(func() {
		r := f.Metrics
		f.m = httpMetrics{
			fetches:   r.Counter("aia.http.fetches"),
			errors:    r.Counter("aia.http.errors"),
			truncated: r.Counter("aia.http.truncated"),
			latency:   r.Histogram("aia.http.fetch_latency", obs.LatencyBuckets),
		}
	})
	return &f.m
}

// Fetch implements Fetcher over HTTP. The response body is limited to 64 KiB
// and oversized bodies fail explicitly with ErrTruncated.
func (f *HTTPFetcher) Fetch(uri string) (*certmodel.Certificate, error) {
	return f.FetchContext(context.Background(), uri)
}

// FetchContext is Fetch under a caller-supplied context: the GET request
// carries ctx, so cancelling a verdict request aborts its in-flight AIA
// fetch (connection torn down, retry backoff interrupted) instead of leaking
// it until the 10s client timeout. The chainserved daemon threads each
// request's context through here via WithContext.
func (f *HTTPFetcher) FetchContext(ctx context.Context, uri string) (*certmodel.Certificate, error) {
	target := uri
	if f.Rewrite != nil {
		target = f.Rewrite(uri)
	}
	if _, err := url.Parse(target); err != nil {
		return nil, fmt.Errorf("aia: bad URI %q: %w", target, err)
	}
	client := f.Client
	if client == nil {
		client = defaultClient
	}
	policy := f.Retry
	if policy.Retryable == nil {
		policy.Retryable = transientFetch
	}
	m := f.metrics()
	clock := policy.Clock
	if clock == nil {
		clock = faults.Wall()
	}
	var der []byte
	start := clock.Now()
	err := policy.Do(ctx, func(ctx context.Context) error {
		m.fetches.Inc()
		var getErr error
		der, getErr = get(ctx, client, target)
		return getErr
	})
	m.latency.ObserveDuration(clock.Now().Sub(start))
	if err != nil {
		m.errors.Inc()
		if errors.Is(err, ErrTruncated) {
			m.truncated.Inc()
		}
		return nil, err
	}
	cert, err := certmodel.ParseDER(der)
	if err != nil {
		return nil, fmt.Errorf("aia: parse %s: %w", target, err)
	}
	return cert, nil
}

// WithContext binds a fetcher to a request context: the returned Fetcher's
// Fetch calls FetchContext(ctx, ·). Path construction and completeness
// analysis take the context-free Fetcher interface, so per-request callers
// (the chainserved daemon) wrap once and pass the wrapper down.
func (f *HTTPFetcher) WithContext(ctx context.Context) Fetcher {
	return ctxFetcher{ctx: ctx, f: f}
}

type ctxFetcher struct {
	ctx context.Context
	f   *HTTPFetcher
}

func (c ctxFetcher) Fetch(uri string) (*certmodel.Certificate, error) {
	return c.f.FetchContext(c.ctx, uri)
}

// get performs one GET under ctx and returns the body, failing on bad status
// or a body past the certificate size limit.
func get(ctx context.Context, client *http.Client, target string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, fmt.Errorf("aia: GET %s: %w", target, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("aia: GET %s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{URL: target, Code: resp.StatusCode}
	}
	der, err := io.ReadAll(io.LimitReader(resp.Body, maxBody+1))
	if err != nil {
		return nil, fmt.Errorf("aia: read %s: %w", target, err)
	}
	if len(der) > maxBody {
		return nil, fmt.Errorf("aia: read %s: %w", target, ErrTruncated)
	}
	return der, nil
}
