package aia

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chainchaos/internal/certgen"
	"chainchaos/internal/faults"
)

// TestHTTPRoundTrip serves a repository over a real loopback HTTP listener
// and drives the HTTPFetcher and Chaser across it — the full AIA data path
// on actual sockets.
func TestHTTPRoundTrip(t *testing.T) {
	root, err := certgen.NewRoot("HTTP AIA Root")
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := root.NewIntermediate("HTTP AIA CA2", certgen.WithAIA("http://aia.example/root.der"))
	if err != nil {
		t.Fatal(err)
	}
	ca1, err := root.NewIntermediate("HTTP AIA CA1") // placeholder for chain building below
	if err != nil {
		t.Fatal(err)
	}
	_ = ca1

	repo := NewRepository()
	const base = "http://aia.example"
	repo.Put(base+"/ca2.der", ca2.Cert)
	repo.Put(base+"/root.der", root.Cert)

	srv := httptest.NewServer(Handler(repo, base))
	defer srv.Close()

	fetcher := &HTTPFetcher{
		Client: srv.Client(),
		Rewrite: func(uri string) string {
			return srv.URL + strings.TrimPrefix(uri, base)
		},
	}

	got, err := fetcher.Fetch(base + "/ca2.der")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ca2.Cert) {
		t.Error("fetched certificate differs")
	}

	// Missing path: 404 surfaces as an error.
	if _, err := fetcher.Fetch(base + "/nope.der"); err == nil {
		t.Error("404 fetch succeeded")
	}

	// A leaf whose AIA chases over real HTTP up to the root.
	leaf, err := ca2.NewLeaf("http-aia.example", certgen.WithAIA(base+"/ca2.der"))
	if err != nil {
		t.Fatal(err)
	}
	chaser := &Chaser{Fetcher: fetcher}
	res := chaser.Chase(leaf.Cert)
	if !res.Completed() {
		t.Fatalf("HTTP chase = %+v (err=%v)", res.Terminal, res.Err)
	}
	if len(res.Fetched) != 2 {
		t.Errorf("fetched %d certs, want 2", len(res.Fetched))
	}
}

func TestHandlerRejectsSynthetic(t *testing.T) {
	repo := NewRepository()
	_, _, ca1 := chain(repo) // synthetic certs
	srv := httptest.NewServer(Handler(repo, "http://repo"))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/ca2.der")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("synthetic cert served with status %d", resp.StatusCode)
	}
	_ = ca1
}

func TestHTTPFetcherBadURI(t *testing.T) {
	f := &HTTPFetcher{}
	if _, err := f.Fetch("http://127.0.0.1:1/dead.der"); err == nil {
		t.Error("connection-refused fetch succeeded")
	}
}

// TestHTTPFetcherTruncation: a body past the 64 KiB certificate limit must
// fail with ErrTruncated, not silently truncate into a parse error.
func TestHTTPFetcherTruncation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write(make([]byte, 80<<10))
	}))
	defer srv.Close()
	f := &HTTPFetcher{Client: srv.Client()}
	_, err := f.Fetch(srv.URL + "/huge.der")
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("oversized body err = %v, want ErrTruncated", err)
	}
}

// TestHTTPFetcherRetriesTransient: 503s are retried under the policy and
// the eventual 200 wins; backoff runs on the injected clock.
func TestHTTPFetcherRetriesTransient(t *testing.T) {
	root, err := certgen.NewRoot("Retry AIA Root")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	failures := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		fail := failures > 0
		if fail {
			failures--
		}
		mu.Unlock()
		if fail {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Write(root.Cert.Raw)
	}))
	defer srv.Close()

	clock := faults.NewFakeClock(time.Now())
	f := &HTTPFetcher{
		Client: srv.Client(),
		Retry:  faults.Policy{Attempts: 4, BaseDelay: 10 * time.Millisecond, Clock: clock},
	}
	got, err := f.Fetch(srv.URL + "/root.der")
	if err != nil {
		t.Fatalf("retrying fetch failed: %v", err)
	}
	if !got.Equal(root.Cert) {
		t.Error("fetched certificate differs")
	}
	if n := len(clock.Sleeps()); n != 2 {
		t.Errorf("backoff sleeps = %d, want 2", n)
	}

	// Without retry budget, the same failure surfaces as a StatusError.
	mu.Lock()
	failures = 1
	mu.Unlock()
	_, err = (&HTTPFetcher{Client: srv.Client()}).Fetch(srv.URL + "/root.der")
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Code != http.StatusServiceUnavailable {
		t.Errorf("one-shot fetch err = %v, want 503 StatusError", err)
	}
	if !serr.Transient() {
		t.Error("503 not classified transient")
	}
	if (&StatusError{Code: 404}).Transient() {
		t.Error("404 classified transient")
	}
}

// TestFetchContextCancelFreesInFlight: cancelling the request context must
// abort an in-flight AIA GET promptly — the handler below never writes a
// response, so without context propagation the fetch would sit in the
// client's 10s timeout while the verdict request that wanted it is long
// gone. The retry policy runs on a FakeClock, so the test also proves the
// cancel is not spent sleeping in backoff: the clock never advances, and
// the fetch returns the moment the context dies.
func TestFetchContextCancelFreesInFlight(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()

	clock := faults.NewFakeClock(time.Unix(0, 0))
	fetcher := &HTTPFetcher{
		Client: srv.Client(),
		Retry:  faults.Policy{Attempts: 3, BaseDelay: time.Hour, Clock: clock},
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := fetcher.FetchContext(ctx, srv.URL+"/hang.der")
		done <- err
	}()

	<-inHandler // the GET is in flight on the server
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled fetch returned nil error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled in the chain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled fetch did not return promptly (context not honored)")
	}
	if n := len(clock.Sleeps()); n != 0 {
		t.Errorf("retry backoff slept %d times on a cancelled fetch", n)
	}
}

// TestDefaultClientTransportLimits pins the daemon-scale connection limits:
// the stdlib default transport's 2 idle connections per host (and unlimited
// in-flight) is what the shared fetcher client must override.
func TestDefaultClientTransportLimits(t *testing.T) {
	tr, ok := defaultClient.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("defaultClient.Transport is %T, want *http.Transport", defaultClient.Transport)
	}
	if tr.MaxIdleConnsPerHost < 8 {
		t.Errorf("MaxIdleConnsPerHost = %d, want >= 8", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxConnsPerHost == 0 {
		t.Error("MaxConnsPerHost unset: one slow repository can absorb unbounded connections")
	}
	if tr.MaxIdleConns < tr.MaxIdleConnsPerHost {
		t.Errorf("MaxIdleConns = %d < per-host %d", tr.MaxIdleConns, tr.MaxIdleConnsPerHost)
	}
}
