package aia

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chainchaos/internal/certgen"
)

// TestHTTPRoundTrip serves a repository over a real loopback HTTP listener
// and drives the HTTPFetcher and Chaser across it — the full AIA data path
// on actual sockets.
func TestHTTPRoundTrip(t *testing.T) {
	root, err := certgen.NewRoot("HTTP AIA Root")
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := root.NewIntermediate("HTTP AIA CA2", certgen.WithAIA("http://aia.example/root.der"))
	if err != nil {
		t.Fatal(err)
	}
	ca1, err := root.NewIntermediate("HTTP AIA CA1") // placeholder for chain building below
	if err != nil {
		t.Fatal(err)
	}
	_ = ca1

	repo := NewRepository()
	const base = "http://aia.example"
	repo.Put(base+"/ca2.der", ca2.Cert)
	repo.Put(base+"/root.der", root.Cert)

	srv := httptest.NewServer(Handler(repo, base))
	defer srv.Close()

	fetcher := &HTTPFetcher{
		Client: srv.Client(),
		Rewrite: func(uri string) string {
			return srv.URL + strings.TrimPrefix(uri, base)
		},
	}

	got, err := fetcher.Fetch(base + "/ca2.der")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ca2.Cert) {
		t.Error("fetched certificate differs")
	}

	// Missing path: 404 surfaces as an error.
	if _, err := fetcher.Fetch(base + "/nope.der"); err == nil {
		t.Error("404 fetch succeeded")
	}

	// A leaf whose AIA chases over real HTTP up to the root.
	leaf, err := ca2.NewLeaf("http-aia.example", certgen.WithAIA(base+"/ca2.der"))
	if err != nil {
		t.Fatal(err)
	}
	chaser := &Chaser{Fetcher: fetcher}
	res := chaser.Chase(leaf.Cert)
	if !res.Completed() {
		t.Fatalf("HTTP chase = %+v (err=%v)", res.Terminal, res.Err)
	}
	if len(res.Fetched) != 2 {
		t.Errorf("fetched %d certs, want 2", len(res.Fetched))
	}
}

func TestHandlerRejectsSynthetic(t *testing.T) {
	repo := NewRepository()
	_, _, ca1 := chain(repo) // synthetic certs
	srv := httptest.NewServer(Handler(repo, "http://repo"))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/ca2.der")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("synthetic cert served with status %d", resp.StatusCode)
	}
	_ = ca1
}

func TestHTTPFetcherBadURI(t *testing.T) {
	f := &HTTPFetcher{}
	if _, err := f.Fetch("http://127.0.0.1:1/dead.der"); err == nil {
		t.Error("connection-refused fetch succeeded")
	}
}
