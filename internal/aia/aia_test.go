package aia

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"chainchaos/internal/certmodel"
)

var base = time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)

// chain builds root -> ca2 -> ca1 with AIA links wired through the given
// repository: ca1's URI serves ca2, ca2's URI serves root.
func chain(repo *Repository) (root, ca2, ca1 *certmodel.Certificate) {
	root = certmodel.SyntheticRoot("AIA Test Root", base)
	ca2 = certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "AIA Test CA2"}, Issuer: root.Subject,
		Serial: "2", NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
		Key: certmodel.NewSyntheticKey("aia-ca2"), SignedBy: certmodel.KeyOf(root),
		IsCA: true, BasicConstraintsValid: true,
		AIAIssuerURLs: []string{"http://repo/root.der"},
	})
	ca1 = certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "AIA Test CA1"}, Issuer: ca2.Subject,
		Serial: "1", NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
		Key: certmodel.NewSyntheticKey("aia-ca1"), SignedBy: certmodel.KeyOf(ca2),
		IsCA: true, BasicConstraintsValid: true,
		AIAIssuerURLs: []string{"http://repo/ca2.der"},
	})
	if repo != nil {
		repo.Put("http://repo/ca2.der", ca2)
		repo.Put("http://repo/root.der", root)
	}
	return
}

func TestRepository(t *testing.T) {
	repo := NewRepository()
	root, _, _ := chain(nil)
	repo.Put("http://repo/x.der", root)
	got, err := repo.Fetch("http://repo/x.der")
	if err != nil || !got.Equal(root) {
		t.Fatalf("fetch = %v, %v", got, err)
	}
	if _, err := repo.Fetch("http://repo/missing.der"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing fetch err = %v", err)
	}
	repo.PutError("http://repo/x.der", fmt.Errorf("boom"))
	if _, err := repo.Fetch("http://repo/x.der"); err == nil {
		t.Error("PutError ignored")
	}
	if repo.FetchCount() != 3 {
		t.Errorf("fetch count = %d", repo.FetchCount())
	}
	if repo.Len() != 0 {
		t.Errorf("len = %d after error replacement", repo.Len())
	}
}

func TestChaseReachesRoot(t *testing.T) {
	repo := NewRepository()
	_, _, ca1 := chain(repo)
	c := &Chaser{Fetcher: repo}
	res := c.Chase(ca1)
	if !res.Completed() || res.Terminal != ReachedRoot {
		t.Fatalf("chase = %+v", res)
	}
	if len(res.Fetched) != 2 {
		t.Errorf("fetched %d certs, want 2 (ca2, root)", len(res.Fetched))
	}
}

func TestChaseStopsAtTrustedIssuer(t *testing.T) {
	repo := NewRepository()
	root, _, ca1 := chain(repo)
	c := &Chaser{
		Fetcher: repo,
		TrustedIssuer: func(cert *certmodel.Certificate) bool {
			// ca2's issuer is the root: pretend a store lookup succeeds.
			return cert.Issuer == root.Subject
		},
	}
	res := c.Chase(ca1)
	if !res.Completed() {
		t.Fatalf("chase = %+v", res)
	}
	if len(res.Fetched) != 1 {
		t.Errorf("fetched %d, want 1 (stop before downloading the root)", len(res.Fetched))
	}
}

func TestChaseNoAIA(t *testing.T) {
	orphan := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "No AIA"}, Issuer: certmodel.Name{CommonName: "Gone CA"},
		Serial: "1", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: certmodel.NewSyntheticKey("noaia"), SignedBy: certmodel.NewSyntheticKey("gone"),
	})
	c := &Chaser{Fetcher: NewRepository()}
	if res := c.Chase(orphan); res.Terminal != NoAIA || res.Completed() {
		t.Errorf("chase = %+v", res)
	}
}

func TestChaseFetchFailed(t *testing.T) {
	repo := NewRepository()
	repo.PutError("http://repo/dead.der", fmt.Errorf("connection refused"))
	cert := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "Dead AIA"}, Issuer: certmodel.Name{CommonName: "Dead CA"},
		Serial: "1", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: certmodel.NewSyntheticKey("dead"), SignedBy: certmodel.NewSyntheticKey("dead-ca"),
		AIAIssuerURLs: []string{"http://repo/dead.der"},
	})
	c := &Chaser{Fetcher: repo}
	res := c.Chase(cert)
	if res.Terminal != FetchFailed || res.Err == nil {
		t.Errorf("chase = %+v", res)
	}
}

func TestChaseWrongIssuer(t *testing.T) {
	// The CAcert case: the URI serves the certificate itself rather than
	// its issuer.
	repo := NewRepository()
	self := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "CAcert Class 3"}, Issuer: certmodel.Name{CommonName: "CA Cert Signing Authority"},
		Serial: "1", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: certmodel.NewSyntheticKey("cacert"), SignedBy: certmodel.NewSyntheticKey("cacert-parent"),
		AIAIssuerURLs: []string{"http://www.cacert.example/class3.crt"},
	})
	repo.Put("http://www.cacert.example/class3.crt", self)
	c := &Chaser{Fetcher: repo}
	if res := c.Chase(self); res.Terminal != WrongIssuer {
		t.Errorf("chase = %+v", res)
	}
}

func TestChaseDepthExceeded(t *testing.T) {
	// A ladder deeper than the chase limit.
	repo := NewRepository()
	parentKey := certmodel.NewSyntheticKey("ladder-0")
	prev := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "Ladder 0"}, Issuer: certmodel.Name{CommonName: "Ladder 1"},
		Serial: "0", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: parentKey, SignedBy: certmodel.NewSyntheticKey("ladder-1"),
		AIAIssuerURLs: []string{"http://repo/ladder/1.der"},
	})
	start := prev
	for i := 1; i <= 5; i++ {
		key := certmodel.NewSyntheticKey(fmt.Sprintf("ladder-%d", i))
		cert := certmodel.NewSynthetic(certmodel.SyntheticConfig{
			Subject: certmodel.Name{CommonName: fmt.Sprintf("Ladder %d", i)},
			Issuer:  certmodel.Name{CommonName: fmt.Sprintf("Ladder %d", i+1)},
			Serial:  fmt.Sprintf("%d", i), NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
			Key: key, SignedBy: certmodel.NewSyntheticKey(fmt.Sprintf("ladder-%d", i+1)),
			AIAIssuerURLs: []string{fmt.Sprintf("http://repo/ladder/%d.der", i+1)},
		})
		repo.Put(fmt.Sprintf("http://repo/ladder/%d.der", i), cert)
		prev = cert
	}
	_ = prev
	c := &Chaser{Fetcher: repo, MaxDepth: 3}
	res := c.Chase(start)
	if res.Terminal != DepthExceeded && res.Terminal != FetchFailed {
		t.Errorf("chase terminal = %v", res.Terminal)
	}
}

func TestChaseMultipleURIs(t *testing.T) {
	// First URI dead, second good: the chaser must fall through.
	repo := NewRepository()
	root, ca2, _ := chain(nil)
	cert := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "Multi URI"}, Issuer: ca2.Subject,
		Serial: "1", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: certmodel.NewSyntheticKey("multi"), SignedBy: certmodel.KeyOf(ca2),
		AIAIssuerURLs: []string{"http://repo/dead.der", "http://repo/alive.der"},
	})
	repo.PutError("http://repo/dead.der", fmt.Errorf("nope"))
	repo.Put("http://repo/alive.der", ca2)
	repo.Put("http://repo/root.der", root)
	c := &Chaser{Fetcher: repo}
	res := c.Chase(cert)
	if !res.Completed() {
		t.Errorf("chase = %+v", res)
	}
}

// TestChaseTerminalErrClassification pins down the terminal/error matrix:
// which URIs fail and which answer wrongly must be distinguishable from the
// ChaseResult alone — the paper's dead-URI (88 chains, §4.3) vs wrong-cert
// (CAcert) split.
func TestChaseTerminalErrClassification(t *testing.T) {
	repo := NewRepository()
	root, ca2, _ := chain(nil)
	repo.Put("http://repo/root.der", root)
	repo.Put("http://repo/wrong.der", root) // answers, but root did not issue the test certs
	repo.Put("http://repo/ca2.der", ca2)
	repo.PutError("http://repo/dead.der", fmt.Errorf("connection refused"))

	mkCert := func(name string, uris ...string) *certmodel.Certificate {
		return certmodel.NewSynthetic(certmodel.SyntheticConfig{
			Subject: certmodel.Name{CommonName: name}, Issuer: ca2.Subject,
			Serial: "9", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
			Key: certmodel.NewSyntheticKey(name), SignedBy: certmodel.KeyOf(ca2),
			AIAIssuerURLs: uris,
		})
	}

	cases := []struct {
		name     string
		uris     []string
		terminal Terminal
		wantErr  bool
	}{
		{"all-dead", []string{"http://repo/dead.der"}, FetchFailed, true},
		{"wrong-only", []string{"http://repo/wrong.der"}, WrongIssuer, false},
		{"dead-then-wrong", []string{"http://repo/dead.der", "http://repo/wrong.der"}, WrongIssuer, true},
		{"wrong-then-dead", []string{"http://repo/wrong.der", "http://repo/dead.der"}, WrongIssuer, true},
		{"dead-then-good", []string{"http://repo/dead.der", "http://repo/ca2.der"}, ReachedRoot, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			chaser := &Chaser{Fetcher: repo}
			res := chaser.Chase(mkCert("Cls "+c.name, c.uris...))
			if res.Terminal != c.terminal {
				t.Errorf("terminal = %v, want %v", res.Terminal, c.terminal)
			}
			if (res.Err != nil) != c.wantErr {
				t.Errorf("err = %v, want err=%v", res.Err, c.wantErr)
			}
		})
	}
}

func TestTerminalStrings(t *testing.T) {
	for term := ReachedRoot; term <= DepthExceeded; term++ {
		if s := term.String(); s == "" {
			t.Errorf("terminal %d renders empty", int(term))
		}
	}
	if Terminal(42).String() != "terminal(42)" {
		t.Error("unknown terminal rendering wrong")
	}
}
