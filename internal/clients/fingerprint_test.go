package clients

import "testing"

// TestFingerprint: stable for the same set, sensitive to membership, order,
// and any policy knob.
func TestFingerprint(t *testing.T) {
	all := Fingerprint(All())
	if all != Fingerprint(All()) {
		t.Fatal("fingerprint not stable across calls")
	}
	if Fingerprint(Libraries()) == all {
		t.Fatal("subset shares the full set's fingerprint")
	}
	reordered := append(Browsers(), Libraries()...)
	if Fingerprint(reordered) == all {
		t.Fatal("order does not contribute to the fingerprint")
	}
	tweaked := All()
	tweaked[0].Policy.MaxInputList = 5
	if Fingerprint(tweaked) == all {
		t.Fatal("policy knobs do not contribute to the fingerprint")
	}
}
