package clients

import (
	"testing"

	"chainchaos/internal/pathbuild"
)

// TestTable9 asserts that the eight client models, run through the Table 2
// capability scenarios, reproduce the paper's Table 9 cell for cell.
func TestTable9(t *testing.T) {
	runner, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		order, redundancy, aiaCap bool
		validity                  pathbuild.ValidityPolicy
		kid                       pathbuild.KIDPolicy
		kup, bp                   bool
		maxLen                    int // 0 = ">52"
		inputLimited              bool
		selfSigned                bool
	}
	const (
		vpNone = pathbuild.ValidityNone
		vp1    = pathbuild.ValidityFirstValid
		vp2    = pathbuild.ValidityMostRecent
		kpNone = pathbuild.KIDNone
		kp1    = pathbuild.KIDMatchOrAbsentFirst
		kp2    = pathbuild.KIDMatchFirst
	)
	wants := map[string]want{
		"OpenSSL":   {true, true, false, vp1, kp1, false, false, 0, false, false},
		"GnuTLS":    {true, true, false, vpNone, kp1, false, false, 16, true, false},
		"MbedTLS":   {false, true, false, vp1, kpNone, true, true, 10, false, true},
		"CryptoAPI": {true, true, true, vp2, kp2, true, true, 13, false, false},
		"Chrome":    {true, true, true, vp2, kp2, true, true, 0, false, false},
		"Edge":      {true, true, true, vp2, kp2, true, true, 21, false, false},
		"Safari":    {true, true, true, vp2, kp1, true, true, 0, false, true},
		"Firefox":   {true, true, false, vp1, kpNone, true, true, 8, false, false},
	}

	reports, err := runner.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(wants) {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, rep := range reports {
		w, ok := wants[rep.Profile.Name]
		if !ok {
			t.Errorf("unexpected profile %s", rep.Profile.Name)
			continue
		}
		if rep.OrderReorganization != w.order {
			t.Errorf("%s: order reorganization = %v, want %v", rep.Profile.Name, rep.OrderReorganization, w.order)
		}
		if rep.RedundancyElimination != w.redundancy {
			t.Errorf("%s: redundancy elimination = %v, want %v", rep.Profile.Name, rep.RedundancyElimination, w.redundancy)
		}
		if rep.AIACompletion != w.aiaCap {
			t.Errorf("%s: AIA completion = %v, want %v", rep.Profile.Name, rep.AIACompletion, w.aiaCap)
		}
		if rep.Validity != w.validity {
			t.Errorf("%s: validity priority = %v, want %v", rep.Profile.Name, rep.Validity, w.validity)
		}
		if rep.KID != w.kid {
			t.Errorf("%s: KID priority = %v, want %v", rep.Profile.Name, rep.KID, w.kid)
		}
		if rep.KeyUsagePref != w.kup {
			t.Errorf("%s: KeyUsage preference = %v, want %v", rep.Profile.Name, rep.KeyUsagePref, w.kup)
		}
		if rep.BasicConstraints != w.bp {
			t.Errorf("%s: BasicConstraints preference = %v, want %v", rep.Profile.Name, rep.BasicConstraints, w.bp)
		}
		if rep.MaxChainLength != w.maxLen {
			t.Errorf("%s: max chain length = %d, want %d", rep.Profile.Name, rep.MaxChainLength, w.maxLen)
		}
		if rep.InputListLimited != w.inputLimited {
			t.Errorf("%s: input-list-limited = %v, want %v", rep.Profile.Name, rep.InputListLimited, w.inputLimited)
		}
		if rep.SelfSignedLeafAllowed != w.selfSigned {
			t.Errorf("%s: self-signed leaf = %v, want %v", rep.Profile.Name, rep.SelfSignedLeafAllowed, w.selfSigned)
		}
	}
}
