package clients

import (
	"errors"
	"fmt"
	"sync"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/rootstore"
)

// ProbeMaxLength is the deepest total chain length the path-length probe
// tries. The paper reports clients without an observable limit as ">52"; the
// probe therefore goes a little past that.
const ProbeMaxLength = 56

// CapabilityReport is one client's row of Table 9.
type CapabilityReport struct {
	Profile Profile

	OrderReorganization   bool
	RedundancyElimination bool
	AIACompletion         bool

	Validity         pathbuild.ValidityPolicy
	KID              pathbuild.KIDPolicy
	KeyUsagePref     bool
	BasicConstraints bool

	// MaxChainLength is the largest total chain length that validated; 0
	// means no limit was hit up to ProbeMaxLength (rendered ">52").
	MaxChainLength int
	// InputListLimited: the limit applies to the presented list rather
	// than the constructed path (GnuTLS's semantics, finding I-2).
	InputListLimited bool

	SelfSignedLeafAllowed bool
}

// MaxChainString renders the path-length cell the way Table 9 does.
func (r CapabilityReport) MaxChainString() string {
	if r.MaxChainLength == 0 {
		return ">52"
	}
	return fmt.Sprintf("=%d", r.MaxChainLength)
}

// Runner executes the Table 2 capability tests against client models. Deep
// probe chains are generated once and shared across clients.
type Runner struct {
	Set *ScenarioSet

	mu     sync.Mutex
	deep   map[int]*Scenario // keyed by total chain length
	padded *Scenario         // length-10 chain with irrelevant padding
}

// NewRunner creates a runner over a fresh scenario set.
func NewRunner() (*Runner, error) {
	set, err := NewScenarioSet()
	if err != nil {
		return nil, err
	}
	return &Runner{Set: set, deep: make(map[int]*Scenario)}, nil
}

// builder instantiates the profile's path builder for a scenario. Every run
// gets a cold intermediate cache: the capability tests measure intrinsic
// ability, not cache warmth.
func (r *Runner) builder(p Profile, sc *Scenario) *pathbuild.Builder {
	return &pathbuild.Builder{
		Policy:  p.Policy,
		Roots:   sc.Roots,
		Fetcher: sc.Fetcher,
		Cache:   rootstore.New("cache"),
		Now:     certgen.Reference,
	}
}

// Run derives the full capability report for one client model.
func (r *Runner) Run(p Profile) (CapabilityReport, error) {
	rep := CapabilityReport{Profile: p}

	rep.OrderReorganization = r.builder(p, r.Set.OrderReorganization).
		Build(r.Set.OrderReorganization.List, r.Set.OrderReorganization.Domain).OK()
	rep.RedundancyElimination = r.builder(p, r.Set.RedundancyElimination).
		Build(r.Set.RedundancyElimination.List, r.Set.RedundancyElimination.Domain).OK()
	rep.AIACompletion = r.builder(p, r.Set.AIACompletion).
		Build(r.Set.AIACompletion.List, r.Set.AIACompletion.Domain).OK()

	rep.Validity = r.classifyValidity(p)
	rep.KID = r.classifyKID(p)
	rep.KeyUsagePref = r.classifyKeyUsage(p)
	rep.BasicConstraints = r.classifyBasicConstraints(p)

	maxLen, inputLimited, err := r.probePathLength(p)
	if err != nil {
		return rep, err
	}
	rep.MaxChainLength = maxLen
	rep.InputListLimited = inputLimited

	ssOutcome := r.builder(p, r.Set.SelfSigned).Build(r.Set.SelfSigned.List, r.Set.SelfSigned.Domain)
	rep.SelfSignedLeafAllowed = !errors.Is(ssOutcome.Err, pathbuild.ErrSelfSignedLeaf)

	return rep, nil
}

// RunAll reports on every supplied profile (or All() when none given).
func (r *Runner) RunAll(profiles ...Profile) ([]CapabilityReport, error) {
	if len(profiles) == 0 {
		profiles = All()
	}
	out := make([]CapabilityReport, 0, len(profiles))
	for _, p := range profiles {
		rep, err := r.Run(p)
		if err != nil {
			return nil, fmt.Errorf("clients: capability run for %s: %w", p.Name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// chosenIssuer returns the certificate the client put directly above the
// leaf, or nil when construction stopped at the leaf.
func chosenIssuer(path []*certmodel.Certificate) *certmodel.Certificate {
	if len(path) < 2 {
		return nil
	}
	return path[1]
}

func (r *Runner) classifyValidity(p Profile) pathbuild.ValidityPolicy {
	sc := r.Set.Validity
	out := r.builder(p, sc).Build(sc.List, sc.Domain)
	switch sc.LabelOf(chosenIssuer(out.Path)) {
	case "I2":
		return pathbuild.ValidityMostRecent
	case "I":
		return pathbuild.ValidityFirstValid
	default: // "I1" (the invalid first candidate), "I3", or a dead end
		return pathbuild.ValidityNone
	}
}

func (r *Runner) classifyKID(p Profile) pathbuild.KIDPolicy {
	sc := r.Set.KID
	out := r.builder(p, sc).Build(sc.List, sc.Domain)
	switch sc.LabelOf(chosenIssuer(out.Path)) {
	case "I":
		return pathbuild.KIDMatchFirst
	case "I2":
		return pathbuild.KIDMatchOrAbsentFirst
	default:
		return pathbuild.KIDNone
	}
}

func (r *Runner) classifyKeyUsage(p Profile) bool {
	sc := r.Set.KeyUsage
	out := r.builder(p, sc).Build(sc.List, sc.Domain)
	// Correct/missing KeyUsage wins over incorrect when the client did NOT
	// pick the bad-KeyUsage candidate presented first.
	return sc.LabelOf(chosenIssuer(out.Path)) != "I1" && chosenIssuer(out.Path) != nil
}

func (r *Runner) classifyBasicConstraints(p Profile) bool {
	sc := r.Set.BasicConstraints
	out := r.builder(p, sc).Build(sc.List, sc.Domain)
	// The observable is which same-subject upper CA ended up in the final
	// path — the paper's method cannot distinguish a priority rule from
	// backtracking recovery, and neither do we.
	for _, c := range out.Path {
		if sc.LabelOf(c) == "I2" {
			return true
		}
		if sc.LabelOf(c) == "I3" {
			return false
		}
	}
	return false
}

// deepScenario returns (building on demand) the probe chain with the given
// total length.
func (r *Runner) deepScenario(total int) (*Scenario, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sc, ok := r.deep[total]; ok {
		return sc, nil
	}
	sc, err := r.Set.DeepChain(total-2, 0)
	if err != nil {
		return nil, err
	}
	r.deep[total] = sc
	return sc, nil
}

// probePathLength finds the largest total chain length the client validates
// (0 when even ProbeMaxLength passes) and whether the limit binds the input
// list rather than the constructed path.
func (r *Runner) probePathLength(p Profile) (maxLen int, inputLimited bool, err error) {
	passes := func(total int) (bool, error) {
		sc, err := r.deepScenario(total)
		if err != nil {
			return false, err
		}
		return r.builder(p, sc).Build(sc.List, sc.Domain).OK(), nil
	}

	ok, err := passes(ProbeMaxLength)
	if err != nil {
		return 0, false, err
	}
	if ok {
		return 0, false, nil
	}
	// Binary search for the largest passing total in [3, ProbeMaxLength).
	lo, hi := 3, ProbeMaxLength // lo assumed passing, hi failing
	if ok, err := passes(lo); err != nil {
		return 0, false, err
	} else if !ok {
		return lo - 1, false, nil
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		ok, err := passes(mid)
		if err != nil {
			return 0, false, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	maxLen = lo

	// Semantics check: a chain well inside the limit, padded with
	// irrelevant certificates beyond it. Input-list-limited clients fail.
	r.mu.Lock()
	if r.padded == nil {
		r.padded, err = r.Set.DeepChain(4, maxPaddedListLen-6)
	}
	padded := r.padded
	r.mu.Unlock()
	if err != nil {
		return maxLen, false, err
	}
	if maxLen >= 6 { // only meaningful when the unpadded 6-cert chain fits
		out := r.builder(p, padded).Build(padded.List, padded.Domain)
		inputLimited = !out.OK()
	}
	return maxLen, inputLimited, nil
}

// maxPaddedListLen is the padded probe's list length: a 6-cert chain padded
// to 24 certificates, beyond every observed input-list limit.
const maxPaddedListLen = 24
