// Package clients models the eight TLS implementations the paper evaluates —
// four libraries (OpenSSL, GnuTLS, MbedTLS, CryptoAPI) and four browsers
// (Chrome, Edge, Safari, Firefox) — as pathbuild.Policy values derived from
// the empirical analysis in §3.2/§5.1 and Table 9. It also implements the
// nine capability tests of Table 2 and the runner that re-derives Table 9
// from the models.
package clients

import (
	"chainchaos/internal/pathbuild"
)

// Kind distinguishes libraries from browsers, the split that drives the
// paper's headline comparison (libraries minus CryptoAPI underperform).
type Kind int

const (
	Library Kind = iota
	Browser
)

// String returns the kind's name.
func (k Kind) String() string {
	if k == Browser {
		return "browser"
	}
	return "library"
}

// Profile couples a named client model with its kind.
type Profile struct {
	Name   string
	Kind   Kind
	Policy pathbuild.Policy
}

// The individual client models. Knob settings come from Table 9 and the
// paper's narrative findings: MbedTLS's forward-only scan (I-1), GnuTLS's
// input-list limit of 16 (I-2), the missing backtracking in the three
// non-CryptoAPI libraries (I-3), AIA support concentrated in CryptoAPI and
// the Chromium/WebKit browsers with Firefox substituting an intermediate
// cache (I-4).

// OpenSSL (v3.0.2 in the paper).
func OpenSSL() Profile {
	return Profile{Name: "OpenSSL", Kind: Library, Policy: pathbuild.Policy{
		Name:                "OpenSSL",
		Reorder:             true,
		EliminateDuplicates: true,
		ValidityPref:        pathbuild.ValidityFirstValid,
		KIDPref:             pathbuild.KIDMatchOrAbsentFirst,
	}}
}

// GnuTLS (v3.7.3).
func GnuTLS() Profile {
	return Profile{Name: "GnuTLS", Kind: Library, Policy: pathbuild.Policy{
		Name:                "GnuTLS",
		Reorder:             true,
		EliminateDuplicates: true,
		KIDPref:             pathbuild.KIDMatchOrAbsentFirst,
		MaxInputList:        16,
	}}
}

// MbedTLS (v3.5.2).
func MbedTLS() Profile {
	return Profile{Name: "MbedTLS", Kind: Library, Policy: pathbuild.Policy{
		Name:                 "MbedTLS",
		Reorder:              false, // forward-only scan: finding I-1
		EliminateDuplicates:  false, // duplicates are rescanned every step
		ValidityPref:         pathbuild.ValidityFirstValid,
		KeyUsagePref:         true,
		BasicConstraintsPref: true,
		MaxPathLen:           10,
		AllowSelfSignedLeaf:  true,
		PartialValidation:    true, // validates while constructing (§3.2)
	}}
}

// CryptoAPI (Windows, v10.0.19041).
func CryptoAPI() Profile {
	return Profile{Name: "CryptoAPI", Kind: Library, Policy: pathbuild.Policy{
		Name:                 "CryptoAPI",
		Reorder:              true,
		EliminateDuplicates:  true,
		AIA:                  true,
		ValidityPref:         pathbuild.ValidityMostRecent,
		KIDPref:              pathbuild.KIDMatchFirst,
		KeyUsagePref:         true,
		BasicConstraintsPref: true,
		PreferTrustedRoot:    true,
		MaxPathLen:           13,
		Backtrack:            true,
	}}
}

// Chrome (v128).
func Chrome() Profile {
	return Profile{Name: "Chrome", Kind: Browser, Policy: pathbuild.Policy{
		Name:                 "Chrome",
		Reorder:              true,
		EliminateDuplicates:  true,
		AIA:                  true,
		ValidityPref:         pathbuild.ValidityMostRecent,
		KIDPref:              pathbuild.KIDMatchFirst,
		KeyUsagePref:         true,
		BasicConstraintsPref: true,
		PreferTrustedRoot:    true,
		Backtrack:            true,
	}}
}

// Edge (v128); shares the Chromium engine but enforces a path-length limit
// of 21.
func Edge() Profile {
	p := Chrome()
	p.Name = "Edge"
	p.Policy.Name = "Edge"
	p.Policy.MaxPathLen = 21
	return p
}

// Safari (v17.4).
func Safari() Profile {
	return Profile{Name: "Safari", Kind: Browser, Policy: pathbuild.Policy{
		Name:                 "Safari",
		Reorder:              true,
		EliminateDuplicates:  true,
		AIA:                  true,
		ValidityPref:         pathbuild.ValidityMostRecent,
		KIDPref:              pathbuild.KIDMatchOrAbsentFirst,
		KeyUsagePref:         true,
		BasicConstraintsPref: true,
		PreferTrustedRoot:    true,
		AllowSelfSignedLeaf:  true,
		Backtrack:            true,
	}}
}

// Firefox (v126): no AIA, but a populated intermediate cache substitutes.
func Firefox() Profile {
	return Profile{Name: "Firefox", Kind: Browser, Policy: pathbuild.Policy{
		Name:                 "Firefox",
		Reorder:              true,
		EliminateDuplicates:  true,
		UseCache:             true,
		ValidityPref:         pathbuild.ValidityFirstValid,
		KeyUsagePref:         true,
		BasicConstraintsPref: true,
		MaxPathLen:           8,
		Backtrack:            true,
	}}
}

// Libraries returns the four library models in the paper's column order.
func Libraries() []Profile {
	return []Profile{OpenSSL(), GnuTLS(), MbedTLS(), CryptoAPI()}
}

// Browsers returns the four browser models in the paper's column order.
func Browsers() []Profile {
	return []Profile{Chrome(), Edge(), Safari(), Firefox()}
}

// All returns every client model, libraries first.
func All() []Profile {
	return append(Libraries(), Browsers()...)
}
