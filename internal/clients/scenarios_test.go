package clients

import (
	"testing"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/rootstore"
)

func buildWith(p Profile, sc *Scenario, list []*certmodel.Certificate) pathbuild.Outcome {
	b := &pathbuild.Builder{
		Policy:  p.Policy,
		Roots:   sc.Roots,
		Fetcher: sc.Fetcher,
		Cache:   rootstore.New("cache"),
		Now:     certgen.Reference,
	}
	if list == nil {
		list = sc.List
	}
	return b.Build(list, sc.Domain)
}

func TestScenarioShapes(t *testing.T) {
	set, err := NewScenarioSet()
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		sc      *Scenario
		wantLen int
		labels  []string
	}{
		{set.OrderReorganization, 4, []string{"E", "I1", "I2", "R"}},
		{set.RedundancyElimination, 4, []string{"E", "X", "I", "R"}},
		{set.AIACompletion, 2, []string{"E", "I1", "I2", "R"}},
		{set.Validity, 6, []string{"E", "I", "I1", "I2", "I3", "R"}},
		{set.KID, 5, []string{"E", "I", "I1", "I2", "R"}},
		{set.KeyUsage, 5, []string{"E", "I", "I1", "I2", "R"}},
		{set.BasicConstraints, 5, []string{"E", "I1", "I2", "I3", "R"}},
		{set.SelfSigned, 4, []string{"ES", "E", "I", "R"}},
	}
	for _, c := range checks {
		if len(c.sc.List) != c.wantLen {
			t.Errorf("%v: list length = %d, want %d", c.sc.Capability, len(c.sc.List), c.wantLen)
		}
		for _, l := range c.labels {
			if c.sc.Labels[l] == nil {
				t.Errorf("%v: label %q missing", c.sc.Capability, l)
			}
		}
		if c.sc.Domain == "" || c.sc.Roots == nil || c.sc.Roots.Len() == 0 {
			t.Errorf("%v: scenario incomplete", c.sc.Capability)
		}
	}
	// LabelOf falls back to "?" for foreign certs.
	if set.KID.LabelOf(set.Validity.Labels["E"]) != "?" {
		t.Error("LabelOf leaked across scenarios")
	}
	for c := CapOrderReorganization; c <= CapSelfSignedLeaf; c++ {
		if c.String() == "" {
			t.Errorf("capability %d renders empty", int(c))
		}
	}
}

func TestKIDScenarioVariantsShareKey(t *testing.T) {
	set, err := NewScenarioSet()
	if err != nil {
		t.Fatal(err)
	}
	sc := set.KID
	e := sc.Labels["E"]
	// All three candidates must verify E's signature: the KID is the only
	// discriminator, exactly as Table 2 prescribes.
	for _, label := range []string{"I", "I1", "I2"} {
		if !e.SignatureVerifiedBy(sc.Labels[label]) {
			t.Errorf("candidate %s does not verify E", label)
		}
	}
	if sc.Labels["I2"].SubjectKeyID != nil {
		t.Error("I2 should lack an SKID")
	}
	if string(sc.Labels["I1"].SubjectKeyID) == string(sc.Labels["I"].SubjectKeyID) {
		t.Error("I1's SKID should mismatch")
	}
}

// TestFigure4SwapFlipsMbedTLS reproduces the paper's control experiment: in
// Figure 4's list MbedTLS lands on the correct path only because the
// untrusted root sits before the leaf's issuer; swapping the two makes
// MbedTLS pick the untrusted root and fail.
func TestFigure4SwapFlipsMbedTLS(t *testing.T) {
	trusted, err := certgen.NewRoot("Swap Trusted Root")
	if err != nil {
		t.Fatal(err)
	}
	topSelf, err := certgen.NewRoot("Swap Gov CA")
	if err != nil {
		t.Fatal(err)
	}
	cross, err := trusted.CrossSign(topSelf)
	if err != nil {
		t.Fatal(err)
	}
	issuing, err := topSelf.NewIntermediate("Swap Issuing CA")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := issuing.NewLeaf("swap.gov.example")
	if err != nil {
		t.Fatal(err)
	}
	roots := rootstore.NewWith("swap", trusted.Cert)
	sc := &Scenario{Domain: "swap.gov.example", Roots: roots}

	original := []*certmodel.Certificate{leaf.Cert, topSelf.Cert, issuing.Cert, cross, trusted.Cert}
	swapped := []*certmodel.Certificate{leaf.Cert, issuing.Cert, topSelf.Cert, cross, trusted.Cert}

	if out := buildWith(MbedTLS(), sc, original); !out.OK() {
		t.Errorf("MbedTLS should pass the original order (forward-only skips the early root): %v", out.Validation.Findings)
	}
	if out := buildWith(MbedTLS(), sc, swapped); out.OK() {
		t.Error("MbedTLS should fail after the swap (unreachable untrusted root chosen)")
	}
	// Backtracking clients are indifferent to the swap.
	for _, p := range []Profile{CryptoAPI(), Chrome()} {
		if out := buildWith(p, sc, swapped); !out.OK() {
			t.Errorf("%s should recover regardless of order", p.Name)
		}
	}
}

// TestFirefoxCacheCompensatesForAIA shows the Firefox mechanism the paper
// describes: no AIA support, but a warm intermediate cache validates the
// same chain.
func TestFirefoxCacheCompensatesForAIA(t *testing.T) {
	set, err := NewScenarioSet()
	if err != nil {
		t.Fatal(err)
	}
	sc := set.AIACompletion

	cold := buildWith(Firefox(), sc, nil)
	if cold.OK() {
		t.Fatal("cold-cache Firefox should fail the AIA scenario")
	}

	warm := rootstore.New("warm")
	warm.Add(sc.Labels["I2"])
	b := &pathbuild.Builder{
		Policy: Firefox().Policy, Roots: sc.Roots, Cache: warm, Now: certgen.Reference,
	}
	out := b.Build(sc.List, sc.Domain)
	if !out.OK() {
		t.Errorf("warm-cache Firefox should pass: %v", out.Validation.Findings)
	}
	if out.AIAFetches != 0 {
		t.Error("Firefox must not fetch AIA")
	}
}

func TestProfileCatalog(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("client count = %d", len(all))
	}
	libs, brs := Libraries(), Browsers()
	if len(libs) != 4 || len(brs) != 4 {
		t.Fatal("kind split wrong")
	}
	for _, p := range libs {
		if p.Kind != Library {
			t.Errorf("%s kind = %v", p.Name, p.Kind)
		}
	}
	for _, p := range brs {
		if p.Kind != Browser {
			t.Errorf("%s kind = %v", p.Name, p.Kind)
		}
	}
	if Library.String() != "library" || Browser.String() != "browser" {
		t.Error("kind strings wrong")
	}
	// Edge is Chromium with a path limit.
	if Edge().Policy.MaxPathLen != 21 || Chrome().Policy.MaxPathLen != 0 {
		t.Error("Edge/Chrome path limits wrong")
	}
	if Edge().Policy.AIA != Chrome().Policy.AIA {
		t.Error("Edge should share Chromium's AIA behaviour")
	}
}
