package clients

import (
	"crypto/sha256"
	"fmt"

	"chainchaos/internal/certmodel"
)

// Fingerprint digests a client-profile set into the scope key the verdict
// dedup cache uses: two runs share memoized verdicts only if they grade with
// byte-identical profile sets (same clients, same order, same policy knobs).
// Policy is a flat value struct, so the %+v rendering covers every knob; a
// new policy field changes the rendering and therefore the fingerprint, which
// fails safe (a cache keyed on the old scope simply misses).
func Fingerprint(profiles []Profile) certmodel.FP {
	h := sha256.New()
	for _, p := range profiles {
		fmt.Fprintf(h, "%s/%d/%+v\n", p.Name, p.Kind, p.Policy)
	}
	var fp certmodel.FP
	h.Sum(fp[:0])
	return fp
}
