package clients

import (
	"bytes"
	"fmt"

	"chainchaos/internal/aia"
	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/rootstore"
)

// Capability enumerates the nine chain-construction capabilities of Table 2.
type Capability int

const (
	CapOrderReorganization Capability = iota
	CapRedundancyElimination
	CapAIACompletion
	CapValidityPriority
	CapKIDMatchingPriority
	CapKeyUsagePriority
	CapBasicConstraintsPriority
	CapPathLengthConstraint
	CapSelfSignedLeaf
)

// String returns the capability's Table 2 name.
func (c Capability) String() string {
	switch c {
	case CapOrderReorganization:
		return "Order Reorganization"
	case CapRedundancyElimination:
		return "Redundancy Elimination"
	case CapAIACompletion:
		return "AIA Completion"
	case CapValidityPriority:
		return "Validity Priority"
	case CapKIDMatchingPriority:
		return "KID Matching Priority"
	case CapKeyUsagePriority:
		return "KeyUsage Correctness Priority"
	case CapBasicConstraintsPriority:
		return "Basic Constraints Priority"
	case CapPathLengthConstraint:
		return "Path Length Constraint"
	case CapSelfSignedLeaf:
		return "Self-signed Leaf Certificate"
	default:
		return fmt.Sprintf("Capability(%d)", int(c))
	}
}

// Scenario is one crafted test chain: the list a malicious-or-misconfigured
// server would present, the trust store the client holds, an AIA fetcher
// when the test involves fetching, and labelled certificates so the runner
// can identify which candidate a client chose.
type Scenario struct {
	Capability Capability
	Domain     string
	List       []*certmodel.Certificate
	Roots      *rootstore.Store
	Fetcher    aia.Fetcher
	Labels     map[string]*certmodel.Certificate
}

// LabelOf returns the label of cert within the scenario, or "?".
func (s *Scenario) LabelOf(cert *certmodel.Certificate) string {
	for label, c := range s.Labels {
		if c.Equal(cert) {
			return label
		}
	}
	return "?"
}

// ScenarioSet holds one generated instance of every Table 2 test. Generating
// real keys and signatures is not free, so a set is built once and shared.
type ScenarioSet struct {
	OrderReorganization   *Scenario
	RedundancyElimination *Scenario
	AIACompletion         *Scenario
	Validity              *Scenario
	KID                   *Scenario
	KeyUsage              *Scenario
	BasicConstraints      *Scenario

	// SelfSigned is test 9's {ES, E, I, R} list.
	SelfSigned *Scenario

	// deepRoot anchors the path-length probe chains (test 8), built on
	// demand by DeepChain.
	deepRoot *certgen.Authority
}

// NewScenarioSet builds every fixed scenario. It returns an error only on
// key-generation or encoding failure.
func NewScenarioSet() (*ScenarioSet, error) {
	set := &ScenarioSet{}
	builders := []struct {
		name string
		fn   func() (*Scenario, error)
		dst  **Scenario
	}{
		{"order", scenarioOrder, &set.OrderReorganization},
		{"redundancy", scenarioRedundancy, &set.RedundancyElimination},
		{"aia", scenarioAIA, &set.AIACompletion},
		{"validity", scenarioValidity, &set.Validity},
		{"kid", scenarioKID, &set.KID},
		{"keyusage", scenarioKeyUsage, &set.KeyUsage},
		{"basicconstraints", scenarioBasicConstraints, &set.BasicConstraints},
		{"selfsigned", scenarioSelfSigned, &set.SelfSigned},
	}
	for _, b := range builders {
		s, err := b.fn()
		if err != nil {
			return nil, fmt.Errorf("clients: scenario %s: %w", b.name, err)
		}
		*b.dst = s
	}
	root, err := certgen.NewRoot("Deep Chain Root")
	if err != nil {
		return nil, err
	}
	set.deepRoot = root
	return set, nil
}

// scenarioOrder builds Table 2 test 1: {E, I2, I1, R} for the chain
// E<-I1<-I2<-R.
func scenarioOrder() (*Scenario, error) {
	root, err := certgen.NewRoot("Order Root")
	if err != nil {
		return nil, err
	}
	i2, err := root.NewIntermediate("Order CA 2")
	if err != nil {
		return nil, err
	}
	i1, err := i2.NewIntermediate("Order CA 1")
	if err != nil {
		return nil, err
	}
	leaf, err := i1.NewLeaf("order.test.example")
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Capability: CapOrderReorganization,
		Domain:     "order.test.example",
		List:       []*certmodel.Certificate{leaf.Cert, i2.Cert, i1.Cert, root.Cert},
		Roots:      rootstore.NewWith("test", root.Cert),
		Labels: map[string]*certmodel.Certificate{
			"E": leaf.Cert, "I1": i1.Cert, "I2": i2.Cert, "R": root.Cert,
		},
	}, nil
}

// scenarioRedundancy builds test 2: {E, X, I, R} with X entirely unrelated.
func scenarioRedundancy() (*Scenario, error) {
	root, err := certgen.NewRoot("Redundancy Root")
	if err != nil {
		return nil, err
	}
	inter, err := root.NewIntermediate("Redundancy CA")
	if err != nil {
		return nil, err
	}
	leaf, err := inter.NewLeaf("redundancy.test.example")
	if err != nil {
		return nil, err
	}
	strangerRoot, err := certgen.NewRoot("Stranger Root")
	if err != nil {
		return nil, err
	}
	strangerCA, err := strangerRoot.NewIntermediate("Stranger CA")
	if err != nil {
		return nil, err
	}
	stranger, err := strangerCA.NewLeaf("stranger.example")
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Capability: CapRedundancyElimination,
		Domain:     "redundancy.test.example",
		List:       []*certmodel.Certificate{leaf.Cert, stranger.Cert, inter.Cert, root.Cert},
		Roots:      rootstore.NewWith("test", root.Cert),
		Labels: map[string]*certmodel.Certificate{
			"E": leaf.Cert, "X": stranger.Cert, "I": inter.Cert, "R": root.Cert,
		},
	}, nil
}

// scenarioAIA builds test 3: {E, I1} with I1's caIssuers URI pointing at I2,
// whose issuer R sits in the trust store.
func scenarioAIA() (*Scenario, error) {
	root, err := certgen.NewRoot("AIA Root")
	if err != nil {
		return nil, err
	}
	i2, err := root.NewIntermediate("AIA CA 2")
	if err != nil {
		return nil, err
	}
	const uri = "http://repo.test.example/aia-ca-2.der"
	i1, err := i2.NewIntermediate("AIA CA 1", certgen.WithAIA(uri))
	if err != nil {
		return nil, err
	}
	leaf, err := i1.NewLeaf("aia.test.example")
	if err != nil {
		return nil, err
	}
	repo := aia.NewRepository()
	repo.Put(uri, i2.Cert)
	return &Scenario{
		Capability: CapAIACompletion,
		Domain:     "aia.test.example",
		List:       []*certmodel.Certificate{leaf.Cert, i1.Cert},
		Roots:      rootstore.NewWith("test", root.Cert),
		Fetcher:    repo,
		Labels: map[string]*certmodel.Certificate{
			"E": leaf.Cert, "I1": i1.Cert, "I2": i2.Cert, "R": root.Cert,
		},
	}, nil
}

// scenarioValidity builds test 4: four same-subject/same-key variants of the
// leaf's issuer differing only in validity. Presented with the invalid
// variant first so a no-priority client betrays itself by picking it.
//
//	I  — one-year validity, currently valid
//	I1 — expired
//	I2 — one-year validity, more recently issued
//	I3 — same start as I, ten-year validity
func scenarioValidity() (*Scenario, error) {
	ref := certgen.Reference
	root, err := certgen.NewRoot("Validity Root")
	if err != nil {
		return nil, err
	}
	ca, err := root.NewIntermediate("Validity CA",
		certgen.WithValidity(ref.AddDate(0, -6, 0), ref.AddDate(0, 6, 0)))
	if err != nil {
		return nil, err
	}
	i1, err := root.ReissueIntermediate(ca,
		certgen.WithValidity(ref.AddDate(-2, 0, 0), ref.AddDate(-1, 0, 0)))
	if err != nil {
		return nil, err
	}
	i2, err := root.ReissueIntermediate(ca,
		certgen.WithValidity(ref.AddDate(0, -1, 0), ref.AddDate(0, 11, 0)))
	if err != nil {
		return nil, err
	}
	i3, err := root.ReissueIntermediate(ca,
		certgen.WithValidity(ref.AddDate(0, -6, 0), ref.AddDate(9, 6, 0)))
	if err != nil {
		return nil, err
	}
	leaf, err := ca.NewLeaf("validity.test.example")
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Capability: CapValidityPriority,
		Domain:     "validity.test.example",
		List:       []*certmodel.Certificate{leaf.Cert, i1, ca.Cert, i2, i3, root.Cert},
		Roots:      rootstore.NewWith("test", root.Cert),
		Labels: map[string]*certmodel.Certificate{
			"E": leaf.Cert, "I": ca.Cert, "I1": i1, "I2": i2, "I3": i3, "R": root.Cert,
		},
	}, nil
}

// scenarioKID builds test 5: same-subject/same-key issuer variants whose
// SKID matches the leaf's AKID (I), mismatches it (I1), or is absent (I2).
// Presented mismatch-first, absent-second, match-third, so the choice
// separates KP2 (match first), KP1 (match/absent tie, earliest wins), and
// no-priority (first candidate).
func scenarioKID() (*Scenario, error) {
	root, err := certgen.NewRoot("KID Root")
	if err != nil {
		return nil, err
	}
	ca, err := root.NewIntermediate("KID CA")
	if err != nil {
		return nil, err
	}
	wrong := bytes.Repeat([]byte{0x5a}, 20)
	i1, err := root.ReissueIntermediate(ca, certgen.WithSKID(wrong))
	if err != nil {
		return nil, err
	}
	i2, err := root.ReissueIntermediate(ca, certgen.WithoutSKID())
	if err != nil {
		return nil, err
	}
	leaf, err := ca.NewLeaf("kid.test.example")
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Capability: CapKIDMatchingPriority,
		Domain:     "kid.test.example",
		List:       []*certmodel.Certificate{leaf.Cert, i1, i2, ca.Cert, root.Cert},
		Roots:      rootstore.NewWith("test", root.Cert),
		Labels: map[string]*certmodel.Certificate{
			"E": leaf.Cert, "I": ca.Cert, "I1": i1, "I2": i2, "R": root.Cert,
		},
	}, nil
}

// scenarioKeyUsage builds test 6: issuer variants with correct KeyUsage (I),
// incorrect KeyUsage (I1, no certSign), and no KeyUsage extension (I2).
// Presented incorrect-first.
func scenarioKeyUsage() (*Scenario, error) {
	root, err := certgen.NewRoot("KeyUsage Root")
	if err != nil {
		return nil, err
	}
	ca, err := root.NewIntermediate("KeyUsage CA")
	if err != nil {
		return nil, err
	}
	i1, err := root.ReissueIntermediate(ca, certgen.WithKeyUsage(certmodel.KeyUsageDigitalSignature))
	if err != nil {
		return nil, err
	}
	i2, err := root.ReissueIntermediate(ca, certgen.WithoutKeyUsage())
	if err != nil {
		return nil, err
	}
	leaf, err := ca.NewLeaf("keyusage.test.example")
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Capability: CapKeyUsagePriority,
		Domain:     "keyusage.test.example",
		List:       []*certmodel.Certificate{leaf.Cert, i1, ca.Cert, i2, root.Cert},
		Roots:      rootstore.NewWith("test", root.Cert),
		Labels: map[string]*certmodel.Certificate{
			"E": leaf.Cert, "I": ca.Cert, "I1": i1, "I2": i2, "R": root.Cert,
		},
	}, nil
}

// scenarioBasicConstraints builds test 7: {E, I1, I3, I2, R} where I2 and I3
// share I1's issuer subject and key, I2 carrying a correct pathLenConstraint
// (1) and I3 an incorrect one (0). The incorrect variant is presented first.
func scenarioBasicConstraints() (*Scenario, error) {
	root, err := certgen.NewRoot("BC Root")
	if err != nil {
		return nil, err
	}
	upper, err := root.NewIntermediate("BC Upper CA", certgen.WithPathLen(1))
	if err != nil {
		return nil, err
	}
	i3, err := root.ReissueIntermediate(upper, certgen.WithPathLen(0))
	if err != nil {
		return nil, err
	}
	i1, err := upper.NewIntermediate("BC Issuing CA", certgen.WithPathLen(0))
	if err != nil {
		return nil, err
	}
	leaf, err := i1.NewLeaf("bc.test.example")
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Capability: CapBasicConstraintsPriority,
		Domain:     "bc.test.example",
		List:       []*certmodel.Certificate{leaf.Cert, i1.Cert, i3, upper.Cert, root.Cert},
		Roots:      rootstore.NewWith("test", root.Cert),
		Labels: map[string]*certmodel.Certificate{
			"E": leaf.Cert, "I1": i1.Cert, "I2": upper.Cert, "I3": i3, "R": root.Cert,
		},
	}, nil
}

// scenarioSelfSigned builds test 9: {ES, E, I, R} where ES is a self-signed
// certificate sharing E's subject.
func scenarioSelfSigned() (*Scenario, error) {
	root, err := certgen.NewRoot("SelfSigned Root")
	if err != nil {
		return nil, err
	}
	inter, err := root.NewIntermediate("SelfSigned CA")
	if err != nil {
		return nil, err
	}
	const domain = "selfsigned.test.example"
	leaf, err := inter.NewLeaf(domain)
	if err != nil {
		return nil, err
	}
	es, err := certgen.SelfSignedLeaf(domain)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Capability: CapSelfSignedLeaf,
		Domain:     domain,
		List:       []*certmodel.Certificate{es.Cert, leaf.Cert, inter.Cert, root.Cert},
		Roots:      rootstore.NewWith("test", root.Cert),
		Labels: map[string]*certmodel.Certificate{
			"ES": es.Cert, "E": leaf.Cert, "I": inter.Cert, "R": root.Cert,
		},
	}, nil
}

// DeepChain builds test 8's probe chain {E, I1 … In, R}: n stacked
// intermediates, total list length n+2. extraIrrelevant appends unrelated
// certificates, which distinguishes input-list limits (GnuTLS) from
// constructed-path limits (everyone else).
func (s *ScenarioSet) DeepChain(n int, extraIrrelevant int) (*Scenario, error) {
	cur := s.deepRoot
	// Authorities in creation order: I_n (just under the root) … I_1 (the
	// leaf's issuer).
	created := make([]*certgen.Authority, 0, n)
	for i := n; i >= 1; i-- {
		next, err := cur.NewIntermediate(fmt.Sprintf("Deep CA %d/%d", i, n))
		if err != nil {
			return nil, err
		}
		created = append(created, next)
		cur = next
	}
	domain := fmt.Sprintf("deep-%d.test.example", n)
	leaf, err := cur.NewLeaf(domain)
	if err != nil {
		return nil, err
	}
	list := make([]*certmodel.Certificate, 0, n+2+extraIrrelevant)
	list = append(list, leaf.Cert)
	for i := len(created) - 1; i >= 0; i-- { // leaf-first order: I_1 … I_n
		list = append(list, created[i].Cert)
	}
	list = append(list, s.deepRoot.Cert)
	for i := 0; i < extraIrrelevant; i++ {
		pad, err := certgen.NewRoot(fmt.Sprintf("Padding Root %d-%d", n, i))
		if err != nil {
			return nil, err
		}
		list = append(list, pad.Cert)
	}
	return &Scenario{
		Capability: CapPathLengthConstraint,
		Domain:     domain,
		List:       list,
		Roots:      rootstore.NewWith("test", s.deepRoot.Cert),
	}, nil
}
