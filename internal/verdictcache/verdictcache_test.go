package verdictcache

import (
	"fmt"
	"sync"
	"testing"

	"chainchaos/internal/obs"
)

func key(i int) Key {
	var k Key
	k.Digest[0] = byte(i)
	k.Digest[1] = byte(i >> 8)
	return k
}

// TestCacheBasics: miss, insert, hit, and the counter/gauge accounting that
// the CI smoke asserts on (hits + misses == lookups, inserts == entries).
func TestCacheBasics(t *testing.T) {
	reg := obs.NewRegistry()
	c := New[string]("vc", reg)

	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key(1), "one")
	v, ok := c.Get(key(1))
	if !ok || v != "one" {
		t.Fatalf("Get = %q, %v after Put", v, ok)
	}

	// Same digest, different scope: distinct entries.
	k2 := key(1)
	k2.Scope[0] = 0xFF
	if _, ok := c.Get(k2); ok {
		t.Fatal("scope is not part of the key")
	}
	c.Put(k2, "scoped")

	// Duplicate Put: first insert wins.
	c.Put(key(1), "two")
	if v, _ := c.Get(key(1)); v != "one" {
		t.Fatalf("duplicate Put overwrote the entry: %q", v)
	}

	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	snap := reg.Snapshot()
	counters := snap.Counters
	if counters["vc.hits"] != 2 || counters["vc.misses"] != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", counters["vc.hits"], counters["vc.misses"])
	}
	if counters["vc.inserts"] != 2 || counters["vc.races"] != 1 {
		t.Fatalf("inserts/races = %d/%d, want 2/1", counters["vc.inserts"], counters["vc.races"])
	}
	if snap.Gauges["vc.entries"] != 2 {
		t.Fatalf("entries gauge = %d, want 2", snap.Gauges["vc.entries"])
	}
}

// TestCacheNil: a nil cache is an always-miss, drop-writes cache, so callers
// thread an optional cache unconditionally.
func TestCacheNil(t *testing.T) {
	var c *Cache[int]
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(key(1), 7)
	c.Seal()
	if c.Sealed() || c.Len() != 0 || c.Name() != "" {
		t.Fatal("nil cache is not inert")
	}
}

// TestCacheSealPanics: writes after Seal are programming errors.
func TestCacheSealPanics(t *testing.T) {
	c := New[int]("vc", nil)
	c.Put(key(1), 1)
	c.Seal()
	if !c.Sealed() {
		t.Fatal("Sealed() false after Seal")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Put on sealed cache did not panic")
		}
	}()
	c.Put(key(2), 2)
}

// TestCacheSealThenReadHammer: fill from many goroutines, seal, then hammer
// the lock-free read path from many goroutines (run under -race via the
// Makefile's RACE_PKGS). Every reader must observe every entry.
func TestCacheSealThenReadHammer(t *testing.T) {
	const writers, entries, readers = 8, 512, 8
	reg := obs.NewRegistry()
	c := New[int]("vc", reg)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Overlapping key ranges force first-insert-wins races; the
			// value is derived from the key, so every winner stored the
			// same value.
			for i := 0; i < entries; i++ {
				c.Put(key(i), i)
			}
		}(w)
	}
	wg.Wait()
	c.Seal()

	if c.Len() != entries {
		t.Fatalf("Len = %d, want %d", c.Len(), entries)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < entries; i++ {
				v, ok := c.Get(key(i))
				if !ok || v != i {
					panic(fmt.Sprintf("sealed read %d = %d, %v", i, v, ok))
				}
			}
		}()
	}
	wg.Wait()

	snap := reg.Snapshot()
	if snap.Counters["vc.inserts"] != entries {
		t.Fatalf("inserts = %d, want %d", snap.Counters["vc.inserts"], entries)
	}
	if snap.Counters["vc.races"] != int64(writers*entries-entries) {
		t.Fatalf("races = %d, want %d", snap.Counters["vc.races"], writers*entries-entries)
	}
	if snap.Counters["vc.hits"] != int64(readers*entries) {
		t.Fatalf("sealed hits = %d, want %d", snap.Counters["vc.hits"], readers*entries)
	}
}

// TestCacheShardSpread: digests spread across stripes (the leading byte
// drives shardOf), so parallel inserts are not serialized on one mutex.
func TestCacheShardSpread(t *testing.T) {
	c := New[int]("vc", nil)
	used := map[*shard[int]]bool{}
	for i := 0; i < 256; i++ {
		var k Key
		k.Digest[0] = byte(i)
		used[c.shardOf(k)] = true
	}
	if len(used) != shardCount {
		t.Fatalf("256 leading bytes hit %d shards, want %d", len(used), shardCount)
	}
}
