// Package verdictcache memoizes grading results per distinct certificate
// list. The paper's population-scale observation is that the Top-1M presents
// only a few thousand distinct lists, so grading every site independently is
// O(sites × clients) path-builds where O(unique chains × clients) plus
// O(sites) tallying suffices. The cache stores one value per
// (list digest, client-profile-set fingerprint) key; study and difftest put
// their full differential verdict + compliance grade there and recompute only
// the per-site leaf-placement bits on a hit.
//
// Only domain-independent analysis may be memoized under a digest: the
// compliance pieces that depend on the queried hostname (leaf placement) are
// the caller's responsibility per site, and hostname-checking differential
// runs must bypass the cache entirely (see difftest.Harness.Dedup).
//
// The cache follows the rootstore lifecycle: lock-striped while filling,
// Seal()able into a lock-free read phase for callers that warm it once and
// then share it across a measurement (the PR 2 store idiom). Writes after
// Seal panic.
package verdictcache

import (
	"sync"
	"sync/atomic"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/obs"
)

// Key identifies one memoized grading: the presented list's digest and the
// fingerprint of the client-profile set that graded it. Runs with different
// profile sets never share entries even if they share one cache.
type Key struct {
	// Digest is certmodel.ListDigest over the presented list.
	Digest certmodel.FP
	// Scope fingerprints the grading configuration (the client-profile set;
	// see clients.Fingerprint). The zero FP is a valid scope for callers
	// whose configuration never varies within a cache's lifetime.
	Scope certmodel.FP
	// Match records whether the presented leaf matches the queried hostname.
	// Client verdicts depend on the domain only through this bit (a
	// mismatched leaf fails hostname validation identically for every
	// domain), so keying on it keeps hostname-checking gradings memoizable
	// without memoizing anything domain-specific.
	Match bool
}

// shardCount is the lock-striping width. 64 shards keep contention negligible
// for any realistic worker count while the per-shard overhead stays at one
// mutex and one map header.
const shardCount = 64

// shard is one stripe: a mutex-guarded map while the cache is unsealed.
type shard[V any] struct {
	mu sync.Mutex
	m  map[Key]V
}

// Cache is a sharded, lock-striped memo map. The zero value is not usable;
// call New. All methods are safe for concurrent use; a nil *Cache is valid
// everywhere and behaves as an always-miss, drop-writes cache, so callers
// thread an optional cache without branching.
type Cache[V any] struct {
	name   string
	sealed atomic.Bool
	shards [shardCount]shard[V]

	// Metric handles, resolved once at New (nil-safe no-ops when the
	// registry is nil).
	hits      *obs.Counter // <name>.hits: Get found an entry
	misses    *obs.Counter // <name>.misses: Get found nothing
	inserts   *obs.Counter // <name>.inserts: Put stored a new entry
	races     *obs.Counter // <name>.races: Put lost to a concurrent insert
	contended *obs.Counter // <name>.contended: a shard lock was busy on first try
	entries   *obs.Gauge   // <name>.entries: current entry count
}

// New creates an empty cache named name, registering its counters
// (<name>.hits, .misses, .inserts, .races, .contended) and the <name>.entries
// gauge on reg. A nil registry yields no-op handles.
func New[V any](name string, reg *obs.Registry) *Cache[V] {
	c := &Cache[V]{
		name:      name,
		hits:      reg.Counter(name + ".hits"),
		misses:    reg.Counter(name + ".misses"),
		inserts:   reg.Counter(name + ".inserts"),
		races:     reg.Counter(name + ".races"),
		contended: reg.Counter(name + ".contended"),
		entries:   reg.Gauge(name + ".entries"),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]V)
	}
	return c
}

// Name returns the cache's metric prefix.
func (c *Cache[V]) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// shardOf stripes by the digest's leading byte. ListDigest is a sha256, so
// the byte is uniform; the scope does not contribute because a run uses one
// scope and striping must spread digests, not configurations.
func (c *Cache[V]) shardOf(k Key) *shard[V] {
	return &c.shards[k.Digest[0]&(shardCount-1)]
}

// Get returns the memoized value for k. Sealed caches answer without touching
// any lock; unsealed caches lock only k's stripe.
func (c *Cache[V]) Get(k Key) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	s := c.shardOf(k)
	if !c.sealed.Load() {
		c.lock(s)
		defer s.mu.Unlock()
	}
	v, ok := s.m[k]
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return v, ok
}

// Put memoizes v under k, first insert wins: when two workers grade the same
// digest concurrently, both computed the same deterministic value, so the
// loser's copy is discarded (counted in <name>.races) and every later Get
// observes one canonical entry. Put panics on a sealed cache.
func (c *Cache[V]) Put(k Key, v V) {
	if c == nil {
		return
	}
	if c.sealed.Load() {
		panic("verdictcache: Put on sealed cache " + c.name)
	}
	s := c.shardOf(k)
	c.lock(s)
	defer s.mu.Unlock()
	if _, dup := s.m[k]; dup {
		c.races.Inc()
		return
	}
	s.m[k] = v
	c.inserts.Inc()
	c.entries.Add(1)
}

// lock acquires a stripe, counting the acquisitions that found it busy — the
// shard-contention signal the obs snapshot exposes.
func (c *Cache[V]) lock(s *shard[V]) {
	if s.mu.TryLock() {
		return
	}
	c.contended.Inc()
	s.mu.Lock()
}

// Seal freezes the cache: subsequent Put calls panic and Get skips the stripe
// locks entirely. Seal must happen-before any read it is meant to
// de-synchronize (fill, seal, then share — the rootstore contract); sealing
// twice is a no-op.
func (c *Cache[V]) Seal() {
	if c == nil {
		return
	}
	c.sealed.Store(true)
}

// Sealed reports whether the cache has been sealed.
func (c *Cache[V]) Sealed() bool { return c != nil && c.sealed.Load() }

// Len returns the number of memoized entries.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	sealed := c.sealed.Load()
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		if !sealed {
			s.mu.Lock()
		}
		n += len(s.m)
		if !sealed {
			s.mu.Unlock()
		}
	}
	return n
}
