package difftest

import (
	"testing"

	"chainchaos/internal/clients"
	"chainchaos/internal/obs"
	"chainchaos/internal/population"
)

// TestHarnessMetricsExact pins the batched-flush design: even though the
// per-shard builders tally construction metrics locally and publish in
// batches, nothing may be lost — the registry's totals must equal what the
// Summary implies arithmetically.
func TestHarnessMetricsExact(t *testing.T) {
	pop := population.Generate(population.Config{Size: 4000, Seed: 3})
	reg := obs.NewRegistry()
	sum := (&Harness{Workers: 4, Metrics: reg}).Run(pop)

	snap := reg.Snapshot()
	c := snap.Counters
	if got := c["difftest.chains"]; got != int64(sum.Total) {
		t.Errorf("difftest.chains = %d, summary says %d", got, sum.Total)
	}
	if got := c["difftest.noncompliant"]; got != int64(sum.NonCompliant) {
		t.Errorf("difftest.noncompliant = %d, summary says %d", got, sum.NonCompliant)
	}
	// Every non-compliant chain is built once per client profile, and only
	// those chains reach the builders.
	wantBuilds := int64(sum.NonCompliant) * int64(len(clients.All()))
	if got := c["pathbuild.builds"]; got != wantBuilds {
		t.Errorf("pathbuild.builds = %d, want %d (NonCompliant × clients)", got, wantBuilds)
	}
	var wantOK int64
	for _, n := range sum.PerClientPass {
		wantOK += int64(n)
	}
	if got := c["pathbuild.builds_ok"]; got != wantOK {
		t.Errorf("pathbuild.builds_ok = %d, want %d (sum of per-client passes)", got, wantOK)
	}
	// Every successful build records its constructed path's length; failed
	// builds record one too when they completed a candidate path, so the
	// count sits between builds_ok and builds.
	if n := snap.Histograms["pathbuild.chain_length"].Count; n < wantOK || n > wantBuilds {
		t.Errorf("chain_length count = %d, want within [%d, %d]", n, wantOK, wantBuilds)
	}
	if snap.Timers["difftest.run"].Count != 1 {
		t.Errorf("difftest.run intervals = %d, want 1", snap.Timers["difftest.run"].Count)
	}
	if got := snap.Timers["difftest.shard"].Count; got != 4 {
		t.Errorf("difftest.shard intervals = %d, want 4", got)
	}

	// An uninstrumented harness over the same population is unaffected and
	// bit-identical in its summary.
	bare := (&Harness{Workers: 4}).Run(pop)
	if bare.Total != sum.Total || bare.NonCompliant != sum.NonCompliant {
		t.Error("instrumentation changed the summary")
	}
}
