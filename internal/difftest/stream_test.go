package difftest

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"chainchaos/internal/pipeline"
	"chainchaos/internal/population"
)

// verdictsEqual compares two verdict lists from different population
// generations: every field except the certificate pointers by value, the
// constructed paths certificate by certificate (lazily-cached certificate
// internals rule out reflect.DeepEqual across runs).
func verdictsEqual(t *testing.T, i int, name string, a, b []ClientVerdict) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("record %d (%s): %d verdicts vs %d", i, name, len(a), len(b))
	}
	for j := range a {
		va, vb := a[j], b[j]
		if va.Client != vb.Client || va.Kind != vb.Kind {
			t.Fatalf("record %d (%s) verdict %d client differs: %s/%v vs %s/%v", i, name, j, va.Client, va.Kind, vb.Client, vb.Kind)
		}
		oa, ob := va.Outcome, vb.Outcome
		if fmt.Sprint(oa.Err) != fmt.Sprint(ob.Err) ||
			oa.Validation.OK != ob.Validation.OK ||
			!reflect.DeepEqual(oa.Validation.Findings, ob.Validation.Findings) ||
			oa.CandidatesConsidered != ob.CandidatesConsidered ||
			oa.PathsTried != ob.PathsTried || oa.AIAFetches != ob.AIAFetches {
			t.Fatalf("record %d (%s) %s outcome differs:\nstream: %+v\nbatch:  %+v", i, name, va.Client, oa, ob)
		}
		if len(oa.Path) != len(ob.Path) {
			t.Fatalf("record %d (%s) %s path length differs: %d vs %d", i, name, va.Client, len(oa.Path), len(ob.Path))
		}
		for k := range oa.Path {
			if !oa.Path[k].Equal(ob.Path[k]) {
				t.Fatalf("record %d (%s) %s path cert %d differs", i, name, va.Client, k)
			}
		}
	}
}

// TestRunStreamMatchesBatch: the streaming differential evaluation — domains
// generated, analyzed, and graded in flight — produces a Summary deep-equal
// to the batch path over the materialized population, for several
// (seed, workers, queue) combinations.
func TestRunStreamMatchesBatch(t *testing.T) {
	const size = 1500
	for _, tc := range []struct {
		seed           int64
		workers, queue int
	}{
		{3, 1, 1},
		{3, 4, 2},
		{3, 8, 16},
		{9, 3, 0},
	} {
		cfg := population.Config{Size: size, Seed: tc.seed, Workers: tc.workers}
		batch := (&Harness{Workers: tc.workers, KeepRecords: true}).Run(population.Generate(cfg))

		src := population.NewSource(cfg)
		stream, err := (&Harness{Workers: tc.workers, KeepRecords: true}).
			RunStream(context.Background(), src, pipeline.Options{Name: "difftest"}, tc.queue)
		if err != nil {
			t.Fatalf("seed=%d workers=%d queue=%d: RunStream: %v", tc.seed, tc.workers, tc.queue, err)
		}

		// Records hold certificates from two separate generation runs whose
		// lazily-cached internals differ; compare the generated identity and
		// the verdicts field by field, then the aggregate summaries.
		if len(stream.Records) != len(batch.Records) {
			t.Fatalf("seed=%d workers=%d queue=%d: %d streamed records, batch has %d",
				tc.seed, tc.workers, tc.queue, len(stream.Records), len(batch.Records))
		}
		for i := range stream.Records {
			rs, rb := stream.Records[i], batch.Records[i]
			ds, db := rs.Domain, rb.Domain
			if ds.Rank != db.Rank || ds.Name != db.Name || ds.CA != db.CA || ds.Server != db.Server || ds.Truth != db.Truth {
				t.Fatalf("record %d domain differs: %+v vs %+v", i, ds, db)
			}
			verdictsEqual(t, i, ds.Name, rs.Verdicts, rb.Verdicts)
			if !reflect.DeepEqual(rs.Causes, rb.Causes) {
				t.Fatalf("record %d (%s) causes differ: %v vs %v", i, ds.Name, rs.Causes, rb.Causes)
			}
		}
		stream.Records, batch.Records = nil, nil
		if !reflect.DeepEqual(stream, batch) {
			t.Errorf("seed=%d workers=%d queue=%d: streaming summary differs from batch:\nstream: %+v\nbatch:  %+v",
				tc.seed, tc.workers, tc.queue, stream, batch)
		}
	}
}

// TestRunStreamCancellation: cancelling the context aborts the streaming run
// with the context error instead of hanging or fabricating a summary.
func TestRunStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := population.NewSource(population.Config{Size: 100000, Seed: 1, Workers: 4})
	sum, err := (&Harness{Workers: 4}).RunStream(ctx, src, pipeline.Options{}, 4)
	if err == nil {
		t.Fatalf("cancelled RunStream returned %+v with nil error", sum)
	}
}
