package difftest

import (
	"reflect"
	"testing"

	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/population"
	"chainchaos/internal/topo"
)

func TestDifferentialShape(t *testing.T) {
	pop := population.Generate(population.Config{Size: 20000, Seed: 3})
	h := &Harness{KeepRecords: true}
	sum := h.Run(pop)

	if sum.Total != 20000 {
		t.Fatalf("total = %d", sum.Total)
	}
	if sum.NonCompliant == 0 {
		t.Fatal("no non-compliant chains generated")
	}
	t.Logf("non-compliant: %d (%.2f%%)", sum.NonCompliant, 100*float64(sum.NonCompliant)/float64(sum.Total))
	t.Logf("all-browsers-pass: %.1f%%, all-libraries-pass: %.1f%%",
		100*float64(sum.AllBrowsersPass)/float64(sum.NonCompliant),
		100*float64(sum.AllLibrariesPass)/float64(sum.NonCompliant))
	t.Logf("discrepant: browsers %d, libraries %d", sum.BrowserDiscrepant, sum.LibraryDiscrepant)
	for c, n := range sum.CauseCounts {
		t.Logf("cause %v: %d", c, n)
	}
	for name, n := range sum.PerClientPass {
		t.Logf("pass %-10s %d", name, n)
	}

	// Headline shape: browsers validate more non-compliant chains than
	// libraries, both in all-pass rate and per-client.
	if sum.AllBrowsersPass <= sum.AllLibrariesPass {
		t.Errorf("browsers (all-pass %d) should beat libraries (all-pass %d)",
			sum.AllBrowsersPass, sum.AllLibrariesPass)
	}
	// Libraries disagree more often than browsers (paper: 10,804 vs 3,295).
	if sum.LibraryDiscrepant <= sum.BrowserDiscrepant {
		t.Errorf("library discrepancies (%d) should exceed browser discrepancies (%d)",
			sum.LibraryDiscrepant, sum.BrowserDiscrepant)
	}
	// CryptoAPI is the strongest library (AIA + backtracking).
	for _, other := range []string{"OpenSSL", "GnuTLS", "MbedTLS"} {
		if sum.PerClientPass["CryptoAPI"] < sum.PerClientPass[other] {
			t.Errorf("CryptoAPI (%d) should pass at least as many chains as %s (%d)",
				sum.PerClientPass["CryptoAPI"], other, sum.PerClientPass[other])
		}
	}
	// The dominant cause is missing AIA completion (I-4), as in the paper.
	if sum.CauseCounts[CauseI4AIA] == 0 {
		t.Error("no I-4 (AIA) causes attributed")
	}
	if sum.CauseCounts[CauseI2InputLimit] > sum.CauseCounts[CauseI4AIA] {
		t.Error("I-2 should be rare compared to I-4")
	}
}

// TestParallelMatchesSerial is the regression guard for the sharded engine:
// with KeepRecords on, a serial run and an 8-worker run over the same
// population must produce bit-identical summaries — same counts, same cause
// attribution, and Records in pop.Domains order.
func TestParallelMatchesSerial(t *testing.T) {
	pop := population.Generate(population.Config{Size: 8000, Seed: 3})
	serial := (&Harness{KeepRecords: true, Workers: 1}).Run(pop)
	parallel8 := (&Harness{KeepRecords: true, Workers: 8}).Run(pop)

	if !reflect.DeepEqual(serial, parallel8) {
		t.Errorf("serial and 8-worker summaries differ:\nserial:   %+v\nparallel: %+v", headline(serial), headline(parallel8))
		for i := range serial.Records {
			if i >= len(parallel8.Records) || serial.Records[i].Domain != parallel8.Records[i].Domain {
				t.Fatalf("record %d: domain order diverges", i)
			}
		}
	}

	// Odd worker counts exercise the remainder shard.
	parallel3 := (&Harness{KeepRecords: true, Workers: 3}).Run(pop)
	if !reflect.DeepEqual(serial, parallel3) {
		t.Error("serial and 3-worker summaries differ")
	}
	// More workers than domains must also be safe and identical.
	tiny := population.Generate(population.Config{Size: 3, Seed: 3})
	if !reflect.DeepEqual((&Harness{Workers: 1}).Run(tiny), (&Harness{Workers: 64}).Run(tiny)) {
		t.Error("64-worker run over a 3-domain population diverged from serial")
	}
}

// TestRunAnalyzedMatchesRun: handing the harness precomputed graphs/reports
// must not change the outcome in any way.
func TestRunAnalyzedMatchesRun(t *testing.T) {
	pop := population.Generate(population.Config{Size: 6000, Seed: 13})
	analyzer := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{
		Roots:   pop.Roots(),
		Fetcher: pop.Repo,
	}}
	pre := &Analysis{
		Graphs:  make([]*topo.Graph, len(pop.Domains)),
		Reports: make([]compliance.Report, len(pop.Domains)),
	}
	for i, d := range pop.Domains {
		pre.Graphs[i] = topo.Build(d.List)
		pre.Reports[i] = analyzer.Analyze(d.Name, pre.Graphs[i])
	}
	plain := (&Harness{KeepRecords: true, Workers: 4}).Run(pop)
	reused := (&Harness{KeepRecords: true, Workers: 4}).RunAnalyzed(pop, pre)
	if !reflect.DeepEqual(plain, reused) {
		t.Errorf("precomputed-analysis run differs from plain run:\nplain:  %+v\nreused: %+v", headline(plain), headline(reused))
	}
}

// headline projects a Summary's scalar fields for readable failure output.
func headline(s *Summary) map[string]int {
	return map[string]int{
		"Total":             s.Total,
		"NonCompliant":      s.NonCompliant,
		"AllBrowsersPass":   s.AllBrowsersPass,
		"AllLibrariesPass":  s.AllLibrariesPass,
		"BrowserDiscrepant": s.BrowserDiscrepant,
		"LibraryDiscrepant": s.LibraryDiscrepant,
		"Records":           len(s.Records),
	}
}

func TestCauseI2LongList(t *testing.T) {
	// Force a long-list chain through the harness and confirm GnuTLS's
	// verdict carries the input-limit error while others pass.
	pop := population.Generate(population.Config{Size: 1, Seed: 9})
	d := pop.Domains[0]
	// Inflate the list beyond 16 with duplicates of its intermediates.
	for len(d.List) <= 16 {
		d.List = append(d.List, d.List[len(d.List)-1])
	}
	h := &Harness{KeepRecords: true}
	sum := h.Run(pop)
	if sum.NonCompliant != 1 {
		t.Fatalf("expected the inflated chain to be non-compliant, got %d", sum.NonCompliant)
	}
	rec := sum.Records[0]
	v, ok := rec.verdictOf("GnuTLS")
	if !ok {
		t.Fatal("no GnuTLS verdict")
	}
	if v.OK() {
		t.Error("GnuTLS should reject a 17-cert list")
	}
	found := false
	for _, c := range rec.Causes {
		if c == CauseI2InputLimit {
			found = true
		}
	}
	if !found {
		t.Errorf("causes = %v, want I-2", rec.Causes)
	}
}

func TestHostnameCheckLowersPassRates(t *testing.T) {
	pop := population.Generate(population.Config{Size: 5000, Seed: 11})
	loose := (&Harness{}).Run(pop)
	strict := (&Harness{CheckHostname: true}).Run(pop)
	for _, p := range clients.All() {
		if strict.PerClientPass[p.Name] > loose.PerClientPass[p.Name] {
			t.Errorf("%s: hostname checking increased pass count (%d > %d)",
				p.Name, strict.PerClientPass[p.Name], loose.PerClientPass[p.Name])
		}
	}
}
