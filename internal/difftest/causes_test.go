package difftest

import (
	"testing"

	"chainchaos/internal/clients"
	"chainchaos/internal/core"
	"chainchaos/internal/population"
)

// runNamed runs the harness over a 1-domain population whose chain has been
// replaced by the given list-mutating function, returning the single record.
func runMutated(t *testing.T, seed int64, mutate func(d *population.Domain)) *ChainRecord {
	t.Helper()
	pop := population.Generate(population.Config{Size: 1, Seed: seed})
	mutate(pop.Domains[0])
	sum := (&Harness{KeepRecords: true}).Run(pop)
	if sum.NonCompliant != 1 || len(sum.Records) != 1 {
		t.Fatalf("mutation did not yield one non-compliant record (got %d)", sum.NonCompliant)
	}
	return sum.Records[0]
}

func hasCause(rec *ChainRecord, c Cause) bool {
	for _, got := range rec.Causes {
		if got == c {
			return true
		}
	}
	return false
}

func TestCauseI1Reversal(t *testing.T) {
	rec := runMutated(t, 31, func(d *population.Domain) {
		// Reverse everything after the leaf.
		tail := d.List[1:]
		for i, j := 0, len(tail)-1; i < j; i, j = i+1, j-1 {
			tail[i], tail[j] = tail[j], tail[i]
		}
	})
	if !hasCause(rec, CauseI1Reorder) {
		t.Errorf("causes = %v, want I-1", rec.Causes)
	}
	v, _ := rec.verdictOf("MbedTLS")
	if v.OK() {
		t.Error("MbedTLS should fail the reversed chain")
	}
	o, _ := rec.verdictOf("OpenSSL")
	if !o.OK() {
		t.Error("OpenSSL should pass the reversed chain")
	}
}

func TestCauseI4Incomplete(t *testing.T) {
	rec := runMutated(t, 32, func(d *population.Domain) {
		d.List = d.List[:1] // leaf only; AIA completes it
	})
	if !hasCause(rec, CauseI4AIA) {
		t.Errorf("causes = %v, want I-4", rec.Causes)
	}
	cv, _ := rec.verdictOf("CryptoAPI")
	if !cv.OK() {
		t.Error("CryptoAPI should complete via AIA")
	}
	ov, _ := rec.verdictOf("OpenSSL")
	if ov.OK() {
		t.Error("OpenSSL should fail without AIA")
	}
	// The verdict classes must mirror the paper's split: unknown-issuer
	// for the AIA-less library, OK for the fetcher.
	if ov.Class() != core.VerdictUnknownIssuer {
		t.Errorf("OpenSSL class = %v", ov.Class())
	}
	if cv.Class() != core.VerdictOK {
		t.Errorf("CryptoAPI class = %v", cv.Class())
	}
}

func TestClassDiscrepantDetectsMessageDifferences(t *testing.T) {
	rec := runMutated(t, 33, func(d *population.Domain) {
		d.List = d.List[:1]
	})
	// Libraries split between unknown-issuer and OK: class-discrepant.
	if !rec.ClassDiscrepant(clients.Library) {
		t.Error("library verdict classes should differ on an incomplete chain")
	}
}

func TestCauseStringCoverage(t *testing.T) {
	for c := CauseOther; c <= CauseI4AIA; c++ {
		if c.String() == "" {
			t.Errorf("cause %d renders empty", int(c))
		}
	}
	if CauseNames(nil) != "-" {
		t.Error("empty cause list rendering")
	}
	if CauseNames([]Cause{CauseI1Reorder, CauseI4AIA}) == "" {
		t.Error("cause list rendering")
	}
}
