// Tally flattening for distributed runs: a worker ships its sub-range
// Summary as a flat counter map over the dist wire, and the coordinator
// folds the maps from every lease back into one merged Summary. Only
// additive counts cross the wire — Records stay local (the JSONL stream is
// the durable per-chain record).
package difftest

import (
	"strconv"
	"strings"
)

// Prefixed tally keys for the map-valued summary fields. Kept stable: they
// cross the coordinator/worker wire.
const (
	tallyCausePrefix     = "cause."
	tallyPassPrefix      = "pass."
	tallyBuildFailPrefix = "buildfail."
)

// Tallies flattens the summary's additive counts into the wire form a
// distributed worker returns per lease.
func (s *Summary) Tallies() map[string]int64 {
	t := map[string]int64{
		"total":                    int64(s.Total),
		"noncompliant":             int64(s.NonCompliant),
		"all_browsers_pass":        int64(s.AllBrowsersPass),
		"all_libraries_pass":       int64(s.AllLibrariesPass),
		"browser_discrepant":       int64(s.BrowserDiscrepant),
		"library_discrepant":       int64(s.LibraryDiscrepant),
		"browser_class_discrepant": int64(s.BrowserClassDiscrepant),
		"library_class_discrepant": int64(s.LibraryClassDiscrepant),
	}
	for c, n := range s.CauseCounts {
		t[tallyCausePrefix+strconv.Itoa(int(c))] = int64(n)
	}
	for name, n := range s.PerClientPass {
		t[tallyPassPrefix+name] = int64(n)
	}
	for name, n := range s.PerClientBuildFail {
		t[tallyBuildFailPrefix+name] = int64(n)
	}
	return t
}

// SummaryFromTallies rebuilds the merged Summary from the summed tally maps
// of every lease of a distributed run. Records is empty — per-chain detail
// lives in the merged JSONL stream.
func SummaryFromTallies(t map[string]int64) *Summary {
	s := newSummary()
	s.Total = int(t["total"])
	s.NonCompliant = int(t["noncompliant"])
	s.AllBrowsersPass = int(t["all_browsers_pass"])
	s.AllLibrariesPass = int(t["all_libraries_pass"])
	s.BrowserDiscrepant = int(t["browser_discrepant"])
	s.LibraryDiscrepant = int(t["library_discrepant"])
	s.BrowserClassDiscrepant = int(t["browser_class_discrepant"])
	s.LibraryClassDiscrepant = int(t["library_class_discrepant"])
	for k, v := range t {
		switch {
		case strings.HasPrefix(k, tallyCausePrefix):
			if c, err := strconv.Atoi(k[len(tallyCausePrefix):]); err == nil {
				s.CauseCounts[Cause(c)] = int(v)
			}
		case strings.HasPrefix(k, tallyPassPrefix):
			s.PerClientPass[k[len(tallyPassPrefix):]] = int(v)
		case strings.HasPrefix(k, tallyBuildFailPrefix):
			s.PerClientBuildFail[k[len(tallyBuildFailPrefix):]] = int(v)
		}
	}
	return s
}
