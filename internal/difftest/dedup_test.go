package difftest

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"chainchaos/internal/obs"
	"chainchaos/internal/pipeline"
	"chainchaos/internal/population"
)

// reuseCfg is a population with paper-realistic chain sharing: most sites
// present one of a handful of pooled chains.
func reuseCfg(size int) population.Config {
	return population.Config{Size: size, Seed: 11, ChainReuse: 0.85, ChainPool: 12}
}

// runOnce executes the harness batch path and returns the summary, the
// streamed record bytes, and the metrics snapshot.
func runOnce(t *testing.T, pop *population.Population, dedup bool, workers int) (*Summary, []byte, *obs.Snapshot) {
	t.Helper()
	var out bytes.Buffer
	reg := obs.NewRegistry()
	h := &Harness{Dedup: dedup, Workers: workers, Metrics: reg, Out: &out}
	sum := h.Run(pop)
	return sum, out.Bytes(), reg.Snapshot()
}

// TestDedupBitIdentical: with chain reuse in the population, the verdict
// cache must change only the cost of the run — the Summary and the per-chain
// JSONL stream stay byte-identical with dedup on or off, serial or parallel.
func TestDedupBitIdentical(t *testing.T) {
	pop := population.Generate(reuseCfg(400))

	base, baseOut, _ := runOnce(t, pop, false, 1)
	for _, tc := range []struct {
		name    string
		dedup   bool
		workers int
	}{
		{"dedup-serial", true, 1},
		{"dedup-parallel", true, 4},
		{"nodedup-parallel", false, 4},
	} {
		sum, out, snap := runOnce(t, pop, tc.dedup, tc.workers)
		if !reflect.DeepEqual(base, sum) {
			t.Errorf("%s: summary differs from dedup-off serial run:\n  off: %+v\n  got: %+v", tc.name, base, sum)
		}
		if !bytes.Equal(baseOut, out) {
			t.Errorf("%s: record stream differs from dedup-off serial run (%d vs %d bytes)", tc.name, len(baseOut), len(out))
		}
		hits, misses := snap.Counters["difftest.vcache.hits"], snap.Counters["difftest.vcache.misses"]
		if tc.dedup {
			if hits == 0 {
				t.Errorf("%s: cache saw no hits over a ChainReuse=0.85 population", tc.name)
			}
			if hits+misses != int64(sum.Total) {
				t.Errorf("%s: hits(%d)+misses(%d) != sites(%d)", tc.name, hits, misses, sum.Total)
			}
		} else if hits+misses != 0 {
			t.Errorf("%s: dedup off but cache counters moved (hits=%d misses=%d)", tc.name, hits, misses)
		}
	}
}

// TestDedupStreamBitIdentical: same identity through the streaming path.
func TestDedupStreamBitIdentical(t *testing.T) {
	cfg := reuseCfg(300)

	run := func(dedup bool) (*Summary, []byte, *obs.Snapshot) {
		var out bytes.Buffer
		reg := obs.NewRegistry()
		h := &Harness{Dedup: dedup, Workers: 4, Metrics: reg, Out: &out}
		src := population.NewSource(cfg)
		sum, err := h.RunStream(context.Background(), src, pipeline.Options{Name: "difftest", Metrics: reg}, 0)
		if err != nil {
			t.Fatalf("RunStream(dedup=%v): %v", dedup, err)
		}
		return sum, out.Bytes(), reg.Snapshot()
	}

	offSum, offOut, _ := run(false)
	onSum, onOut, snap := run(true)
	if !reflect.DeepEqual(offSum, onSum) {
		t.Errorf("streamed summary differs dedup on vs off:\n  off: %+v\n  on:  %+v", offSum, onSum)
	}
	if !bytes.Equal(offOut, onOut) {
		t.Errorf("streamed records differ dedup on vs off (%d vs %d bytes)", len(offOut), len(onOut))
	}
	if hits := snap.Counters["difftest.vcache.hits"]; hits == 0 {
		t.Error("streaming run saw no cache hits over a reuse population")
	}
	if got := snap.Gauges["difftest.vcache.entries"]; got == 0 || got >= int64(cfg.Size) {
		t.Errorf("cache holds %d entries for %d sites: reuse did not collapse the key space", got, cfg.Size)
	}
}

// TestDedupHostnameOverride: CheckHostname verdicts are domain-specific, so
// Dedup must be ignored rather than shared across sites.
func TestDedupHostnameOverride(t *testing.T) {
	pop := population.Generate(reuseCfg(120))
	reg := obs.NewRegistry()
	h := &Harness{Dedup: true, CheckHostname: true, Workers: 2, Metrics: reg}
	off := &Harness{CheckHostname: true, Workers: 2}
	got, want := h.Run(pop), off.Run(pop)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CheckHostname+Dedup diverged from CheckHostname alone:\n  want: %+v\n  got:  %+v", want, got)
	}
	snap := reg.Snapshot()
	if n := snap.Counters["difftest.vcache.hits"] + snap.Counters["difftest.vcache.misses"]; n != 0 {
		t.Errorf("CheckHostname run consulted the cache %d times; want 0", n)
	}
}
