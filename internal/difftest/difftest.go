// Package difftest implements the paper's §5.2 evaluation: run every client
// model over every (potentially non-compliant) deployed chain, compare
// verdicts, and attribute disagreements to the four root causes the paper
// isolates — missing order reorganization (I-1), input-list length limits
// (I-2), missing backtracking (I-3), and missing AIA completion (I-4).
package difftest

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"strings"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/core"
	"chainchaos/internal/ledger"
	"chainchaos/internal/obs"
	"chainchaos/internal/parallel"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/pipeline"
	"chainchaos/internal/population"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/topo"
	"chainchaos/internal/verdictcache"
)

// Cause is a root-cause class for client disagreement.
type Cause int

const (
	CauseOther Cause = iota
	// CauseI1Reorder: a client without order reorganization failed a
	// disordered chain that reordering clients validated.
	CauseI1Reorder
	// CauseI2InputLimit: a client rejected the list for its size alone.
	CauseI2InputLimit
	// CauseI3Backtrack: non-backtracking clients committed to an invalid
	// path on a multi-path chain.
	CauseI3Backtrack
	// CauseI4AIA: only clients able to fetch (or recall) missing
	// intermediates validated an incomplete chain.
	CauseI4AIA
)

// String returns the paper's label.
func (c Cause) String() string {
	switch c {
	case CauseI1Reorder:
		return "I-1 order reorganization"
	case CauseI2InputLimit:
		return "I-2 input list limit"
	case CauseI3Backtrack:
		return "I-3 backtracking"
	case CauseI4AIA:
		return "I-4 AIA completion"
	default:
		return "other"
	}
}

// ClientVerdict is one client's result on one chain.
type ClientVerdict struct {
	Client  string
	Kind    clients.Kind
	Outcome pathbuild.Outcome
}

// OK reports whether the client accepted the chain.
func (v ClientVerdict) OK() bool { return v.Outcome.OK() }

// Class buckets the verdict into the paper's error classes (OK,
// unknown-issuer, date-invalid, domain-mismatch, ...).
func (v ClientVerdict) Class() core.VerdictClass { return core.Classify(v.Outcome) }

// ChainRecord is the differential record for one domain.
type ChainRecord struct {
	Domain   *population.Domain
	Report   compliance.Report
	Verdicts []ClientVerdict
	Causes   []Cause

	// byClient indexes Verdicts by client name, built once per record so
	// cause attribution does not linear-scan the verdict list per lookup.
	byClient map[string]int
}

// buildIndex (re)builds the client-name index. The harness calls it once as
// soon as a record's verdicts are complete.
func (r *ChainRecord) buildIndex() {
	r.byClient = make(map[string]int, len(r.Verdicts))
	for i, v := range r.Verdicts {
		r.byClient[v.Client] = i
	}
}

// verdictOf returns the named client's verdict.
func (r *ChainRecord) verdictOf(name string) (ClientVerdict, bool) {
	if r.byClient == nil {
		r.buildIndex()
	}
	if i, ok := r.byClient[name]; ok {
		return r.Verdicts[i], true
	}
	return ClientVerdict{}, false
}

// excludedSet compiles an exclude list into a membership predicate once per
// call, instead of rescanning the slice for every verdict.
func excludedSet(exclude []string) func(string) bool {
	switch len(exclude) {
	case 0:
		return func(string) bool { return false }
	case 1:
		only := exclude[0]
		return func(s string) bool { return s == only }
	default:
		m := make(map[string]bool, len(exclude))
		for _, s := range exclude {
			m[s] = true
		}
		return func(s string) bool { return m[s] }
	}
}

// Discrepant reports whether clients of the given kind disagree.
func (r *ChainRecord) Discrepant(kind clients.Kind, exclude ...string) bool {
	skip := excludedSet(exclude)
	pass, fail := 0, 0
	for _, v := range r.Verdicts {
		if v.Kind != kind || skip(v.Client) {
			continue
		}
		if v.OK() {
			pass++
		} else {
			fail++
		}
	}
	return pass > 0 && fail > 0
}

// ClassDiscrepant reports whether clients of the given kind produced
// different verdict classes — a finer comparison than pass/fail that mirrors
// the paper's browser-message methodology.
func (r *ChainRecord) ClassDiscrepant(kind clients.Kind, exclude ...string) bool {
	skip := excludedSet(exclude)
	var classes []core.VerdictClass
	for _, v := range r.Verdicts {
		if v.Kind != kind || skip(v.Client) {
			continue
		}
		classes = append(classes, v.Class())
	}
	if len(classes) == 0 {
		return false
	}
	for _, c := range classes[1:] {
		if c != classes[0] {
			return true
		}
	}
	return false
}

// AllPass reports whether every client of the kind accepted the chain.
func (r *ChainRecord) AllPass(kind clients.Kind, exclude ...string) bool {
	skip := excludedSet(exclude)
	for _, v := range r.Verdicts {
		if v.Kind != kind || skip(v.Client) {
			continue
		}
		if !v.OK() {
			return false
		}
	}
	return true
}

func contains(xs []string, x string) bool {
	for _, s := range xs {
		if s == x {
			return true
		}
	}
	return false
}

// Summary aggregates a differential run, mirroring §5.2's result overview.
type Summary struct {
	Total        int
	NonCompliant int

	// Over the non-compliant chains (the paper's focus):
	AllBrowsersPass  int // Safari excluded, as in the paper
	AllLibrariesPass int
	// *Discrepant count pass/fail disagreements; *ClassDiscrepant count
	// verdict-class disagreements (the paper compares browser error
	// messages, not just accept/reject).
	BrowserDiscrepant      int
	LibraryDiscrepant      int
	BrowserClassDiscrepant int
	LibraryClassDiscrepant int
	CauseCounts            map[Cause]int
	PerClientPass          map[string]int // over non-compliant chains
	PerClientBuildFail     map[string]int // construction-phase errors

	Records []*ChainRecord
}

// Harness wires client models to a population.
type Harness struct {
	// Profiles defaults to clients.All().
	Profiles []clients.Profile
	// WarmCacheShares lists CA profile names whose intermediates are
	// preloaded into cache-using clients (Firefox); the default warms the
	// high-market-share CAs, leaving long-tail intermediates to miss —
	// the paper's 1,074 SEC_ERROR_UNKNOWN_ISSUER chains.
	WarmCacheShares []string
	// CheckHostname includes the leaf/domain match in validation.
	CheckHostname bool
	// Dedup memoizes analysis and verdicts per distinct certificate list
	// (verdictcache): duplicate chains cost a map lookup plus per-site leaf
	// classification instead of a topology build, a compliance analysis and
	// eight client path-builds. Summaries and record streams are
	// bit-identical with the cache on or off. Ignored when CheckHostname is
	// set — hostname-checking verdicts are domain-specific and must not be
	// shared across sites.
	Dedup bool
	// KeepRecords retains per-chain records (memory-heavy on large
	// populations).
	KeepRecords bool
	// Workers shards the population across goroutines; <= 0 means
	// GOMAXPROCS. Per-worker summaries are merged in shard order, so the
	// Summary is bit-identical to a serial run for any worker count.
	Workers int
	// Metrics, when non-nil, receives the run's stage timer
	// (difftest.run), a per-shard wall-time histogram (difftest.shard_wall)
	// and counters (difftest.chains, difftest.noncompliant), and is
	// propagated to every per-shard Builder for construction metrics.
	Metrics *obs.Registry
	// Out, when non-nil, receives one RecordLine of JSON per non-compliant
	// chain, written by the single sink goroutine in rank order — a
	// streaming result file that never requires KeepRecords. The bytes are
	// deterministic for a (seed, population) pair regardless of worker
	// count or queue depth.
	Out io.Writer
	// Record, when non-nil, is called by the sink for every retired rank in
	// rank order — the distributed worker's tap. line is the rank's
	// RecordLine JSON without a trailing newline, or nil for ranks that
	// produce no output (compliant chains): the harness is a sparse sink,
	// and the nil calls let the caller track progress through silent ranks.
	Record func(rank int, line []byte) error
	// Ledger, when non-nil, receives every emitted RecordLine as a Merkle
	// leaf. The harness is a sparse sink — compliant chains emit nothing —
	// so the leaf index is the line's position in the output file, not the
	// domain rank. Nil is inert.
	Ledger *ledger.Batcher
}

// RecordLine is the JSONL row the sink emits per non-compliant chain when
// Harness.Out is set: the chain's generated identity, each client's verdict
// class, and the attributed root causes.
type RecordLine struct {
	Rank     int               `json:"rank"`
	Domain   string            `json:"domain"`
	CA       string            `json:"ca"`
	Server   string            `json:"server"`
	Verdicts map[string]string `json:"verdicts"`
	Causes   []string          `json:"causes,omitempty"`
}

// marshalRecordLine builds a record's JSONL row, without the trailing
// newline.
func marshalRecordLine(rec *ChainRecord) ([]byte, error) {
	line := RecordLine{
		Rank:     rec.Domain.Rank,
		Domain:   rec.Domain.Name,
		CA:       rec.Domain.CA,
		Server:   rec.Domain.Server,
		Verdicts: make(map[string]string, len(rec.Verdicts)),
	}
	for _, v := range rec.Verdicts {
		line.Verdicts[v.Client] = v.Class().String()
	}
	for _, c := range rec.Causes {
		line.Causes = append(line.Causes, c.String())
	}
	return json.Marshal(line)
}

// Analysis carries precomputed per-domain topology graphs and compliance
// reports, index-aligned with pop.Domains. Callers that already ran the
// server-side analysis (experiments.Env holds both) pass it to RunAnalyzed so
// the harness does not rebuild and regrade every chain.
type Analysis struct {
	Graphs  []*topo.Graph
	Reports []compliance.Report
}

// storeFor maps each client to its vendor root store, as deployed in
// practice: NSS/OpenSSL-family ship Mozilla's store, CryptoAPI and Edge use
// Microsoft's, Safari Apple's, Chrome its own.
func storeFor(name string, v *rootstore.VendorSet) *rootstore.Store {
	switch name {
	case "CryptoAPI", "Edge":
		return v.Microsoft
	case "Safari":
		return v.Apple
	case "Chrome":
		return v.Chrome
	default:
		return v.Mozilla
	}
}

// Run executes the differential evaluation over the population.
func (h *Harness) Run(pop *population.Population) *Summary {
	return h.RunAnalyzed(pop, nil)
}

// setup resolves the run's profiles and warm intermediate cache from the
// population context (pop.Domains may be nil for streaming runs).
func (h *Harness) setup(pop *population.Population) ([]clients.Profile, *rootstore.Store) {
	profiles := h.Profiles
	if len(profiles) == 0 {
		profiles = clients.All()
	}
	warm := h.WarmCacheShares
	if warm == nil {
		// Firefox preloads every CCADB-disclosed intermediate (the
		// "Mozilla caches all known CA certificates" design the paper
		// cites); what it cannot know are intermediates of CAs that do
		// not disclose — the government/regional hierarchies here. Their
		// incomplete chains become the SEC_ERROR_UNKNOWN_ISSUER browser
		// discrepancies of finding I-4.
		undisclosed := map[string]bool{
			"TAIWAN-CA":                 true,
			"TW Government CA":          true,
			"EU Qualified CA":           true,
			"Regional Commerce CA":      true,
			"Undisclosed Enterprise CA": true,
		}
		for _, iss := range pop.Issuers {
			if !undisclosed[iss.Profile.Name] && !contains(warm, iss.Profile.Name) {
				warm = append(warm, iss.Profile.Name)
			}
		}
	}
	return profiles, buildWarmCache(pop, warm)
}

// analyzed couples a domain with its compliance report between the analyze
// and verdict stages. Under Dedup it also carries the cache coordinates: a
// hit's memo for the verdict stage to reuse, or the key a miss should be
// stored under once graded.
type analyzed struct {
	d   *population.Domain
	rep compliance.Report
	// memo is non-nil on a cache hit; rep then holds the memoized
	// order/completeness analysis plus this domain's own leaf placement.
	memo *dedupMemo
	// key is the domain's cache key; valid only when keyed is true.
	key   verdictcache.Key
	keyed bool
}

// dedupMemo is the value memoized per distinct chain: every analysis and
// verdict that does not depend on the queried hostname. Leaf placement — the
// one hostname-dependent piece — is recomputed per site on a hit.
type dedupMemo struct {
	Order        compliance.OrderReport
	Completeness compliance.CompletenessReport
	// Verdicts and Causes are nil when the chain graded compliant (the
	// harness only grades non-compliant chains). Hit records alias these
	// slices read-only; absorb and the record sink never mutate them.
	Verdicts []ClientVerdict
	Causes   []Cause
}

// dedupCache builds the run's verdict cache, or nil when dedup is off (or
// overridden by CheckHostname, whose verdicts must not be shared across
// domains). The scope fingerprint keys entries to this profile set.
func (h *Harness) dedupCache(profiles []clients.Profile) (*verdictcache.Cache[dedupMemo], certmodel.FP) {
	if !h.Dedup || h.CheckHostname {
		return nil, certmodel.FP{}
	}
	return verdictcache.New[dedupMemo]("difftest.vcache", h.Metrics), clients.Fingerprint(profiles)
}

// analyzeDomain is the analyze stage's work item: consult the cache first —
// a hit replaces the topology build and the order/completeness analysis with
// a lookup plus leaf classification — and fall back to the full analyzer.
func analyzeDomain(an *compliance.Analyzer, cache *verdictcache.Cache[dedupMemo], scope certmodel.FP, d *population.Domain) analyzed {
	if cache == nil {
		return analyzed{d: d, rep: an.Analyze(d.Name, topo.Build(d.List))}
	}
	k := verdictcache.Key{Digest: certmodel.ListDigest(d.List), Scope: scope}
	if m, ok := cache.Get(k); ok {
		return analyzed{d: d, rep: compliance.Report{
			Domain:       d.Name,
			Leaf:         compliance.ClassifyLeafPlacement(d.List, d.Name),
			Order:        m.Order,
			Completeness: m.Completeness,
		}, memo: &m, key: k, keyed: true}
	}
	return analyzed{d: d, rep: an.Analyze(d.Name, topo.Build(d.List)), key: k, keyed: true}
}

// grader is the per-worker state of the verdict stage: one reusable
// pathbuild.Builder per client profile — Build keeps no state across calls
// (the shared warm cache is read-only here), so reuse only removes the
// per-chain allocations.
type grader struct {
	h        *Harness
	profiles []clients.Profile
	builders []*pathbuild.Builder
}

func (h *Harness) newGrader(pop *population.Population, profiles []clients.Profile, cache *rootstore.Store) *grader {
	g := &grader{h: h, profiles: profiles, builders: make([]*pathbuild.Builder, len(profiles))}
	for i, p := range profiles {
		g.builders[i] = &pathbuild.Builder{
			Policy:  p.Policy,
			Roots:   storeFor(p.Name, pop.Vendors),
			Fetcher: pop.Repo,
			Cache:   cache,
			// The cache models a fixed preload (CCADB disclosure),
			// not state accumulated during this measurement.
			CacheReadOnly: true,
			Now:           pop.Cfg.Base,
			Metrics:       h.Metrics,
		}
	}
	return g
}

// grade runs every client over one non-compliant chain and returns its
// record; compliant chains return nil without touching the builders.
func (g *grader) grade(a analyzed) *ChainRecord {
	if a.rep.Compliant() {
		return nil
	}
	rec := &ChainRecord{Domain: a.d, Report: a.rep, Verdicts: make([]ClientVerdict, 0, len(g.profiles))}
	for j, p := range g.profiles {
		domain := ""
		if g.h.CheckHostname {
			domain = a.d.Name
		}
		out := g.builders[j].Build(a.d.List, domain)
		rec.Verdicts = append(rec.Verdicts, ClientVerdict{Client: p.Name, Kind: p.Kind, Outcome: out})
	}
	rec.buildIndex()
	rec.Causes = classifyCauses(rec)
	return rec
}

// flush publishes the builders' final partial batch of construction metrics;
// called once at worker retirement.
func (g *grader) flush() {
	for _, b := range g.builders {
		b.FlushMetrics()
	}
}

// verdictStage builds the pipeline stage that grades analyzed chains across
// all client profiles. Worker lifetimes carry the difftest.shard timer and
// shard_wall histogram the batch path has always published: one interval per
// worker.
func (h *Harness) verdictStage(pop *population.Population, profiles []clients.Profile, cache *rootstore.Store, vcache *verdictcache.Cache[dedupMemo], workers, queue int) pipeline.Stage[analyzed, *ChainRecord] {
	graders := make([]*grader, workers)
	shardWall := h.Metrics.Histogram("difftest.shard_wall", obs.LatencyBuckets)
	return pipeline.Stage[analyzed, *ChainRecord]{
		Name:    "verdict",
		Workers: workers,
		Queue:   queue,
		OnWorker: func(worker int) func() {
			sw := h.Metrics.Timer("difftest.shard").Start()
			graders[worker] = h.newGrader(pop, profiles, cache)
			return func() {
				graders[worker].flush()
				shardWall.ObserveDuration(sw.Stop())
			}
		},
		Fn: func(_ context.Context, worker, _ int, a analyzed) (*ChainRecord, error) {
			if a.memo != nil {
				if a.rep.Compliant() {
					return nil, nil
				}
				if a.memo.Verdicts != nil {
					// The memoized verdicts are exactly what grading would
					// recompute (Build sees no hostname here), so the record
					// aliases them; only the domain identity and its leaf
					// report are per-site.
					return &ChainRecord{Domain: a.d, Report: a.rep, Verdicts: a.memo.Verdicts, Causes: a.memo.Causes}, nil
				}
				// Defensive: the digest was first seen on a domain where it
				// graded compliant, but this domain's leaf placement flips
				// the verdict. Grade it fully; keep the first-seen memo.
				return graders[worker].grade(a), nil
			}
			rec := graders[worker].grade(a)
			if a.keyed {
				m := dedupMemo{Order: a.rep.Order, Completeness: a.rep.Completeness}
				if rec != nil {
					m.Verdicts, m.Causes = rec.Verdicts, rec.Causes
				}
				vcache.Put(a.key, m)
			}
			return rec, nil
		},
	}
}

// drainSummary terminates a verdict flow: records are absorbed into one
// Summary on the single sink goroutine, in rank order — exactly the order a
// serial run would produce.
func (h *Harness) drainSummary(f *pipeline.Flow[*ChainRecord]) (*Summary, error) {
	sum := newSummary()
	err := f.Drain(func(rank int, rec *ChainRecord) error {
		sum.Total++
		var line []byte
		if rec != nil {
			sum.absorb(rec, h.KeepRecords)
			if h.Out != nil || h.Record != nil {
				var err error
				if line, err = marshalRecordLine(rec); err != nil {
					return err
				}
			}
		}
		if h.Record != nil {
			if err := h.Record(rank, line); err != nil {
				return err
			}
		}
		if h.Out != nil && line != nil {
			if _, err := h.Out.Write(append(line, '\n')); err != nil {
				return err
			}
		}
		if line != nil {
			if err := h.Ledger.Append(line); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	h.Metrics.Counter("difftest.chains").Add(int64(sum.Total))
	h.Metrics.Counter("difftest.noncompliant").Add(int64(sum.NonCompliant))
	return sum, nil
}

// workerCount caps the harness worker pool at the population size so tiny
// runs do not spin up idle builders.
func (h *Harness) workerCount(size int) int {
	workers := parallel.Workers(h.Workers)
	if size >= 0 && workers > size {
		workers = size
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunAnalyzed executes the differential evaluation, reusing precomputed
// topology graphs and compliance reports when pre is non-nil (it must be
// index-aligned with pop.Domains). It is the batch adapter over the
// analyze→verdict pipeline: domains stream through per-worker analyzers and
// builders and the Summary merges at the sink in rank order — bit-identical
// to a serial run for any worker count or queue depth.
func (h *Harness) RunAnalyzed(pop *population.Population, pre *Analysis) *Summary {
	profiles, cache := h.setup(pop)
	vcache, scope := h.dedupCache(profiles)
	workers := h.workerCount(len(pop.Domains))

	run := h.Metrics.Timer("difftest.run").Start()
	opts := pipeline.Options{Name: "difftest", Metrics: h.Metrics}
	src := pipeline.From(context.Background(), opts, "domains", workers, func(rank int) (int, bool, error) {
		return rank, rank < len(pop.Domains), nil
	})
	analyzers := make([]*compliance.Analyzer, workers)
	an := pipeline.Through(src, pipeline.Stage[int, analyzed]{
		Name:    "analyze",
		Workers: workers,
		OnWorker: func(worker int) func() {
			if pre == nil {
				analyzers[worker] = &compliance.Analyzer{Completeness: compliance.CompletenessConfig{
					Roots:   pop.Roots(),
					Fetcher: pop.Repo,
				}}
			}
			return nil
		},
		Fn: func(_ context.Context, worker, _ int, i int) (analyzed, error) {
			d := pop.Domains[i]
			if pre != nil {
				return analyzed{d: d, rep: pre.Reports[i]}, nil
			}
			return analyzeDomain(analyzers[worker], vcache, scope, d), nil
		},
	})
	sum, err := h.drainSummary(pipeline.Through(an, h.verdictStage(pop, profiles, cache, vcache, workers, 0)))
	if err != nil {
		// Reachable only through an Out write failure: no stage errors and
		// the context is never cancelled. Batch callers wanting to handle
		// sink errors should use RunStream.
		panic(err)
	}
	run.Stop()
	return sum
}

// RunStream executes the differential evaluation over a streaming population
// source: domains are generated, analyzed, and graded in flight, so peak
// memory is O(workers · queue) regardless of src.Size(). The Summary is
// bit-identical to Run over the materialized population. opts carries the
// metrics registry, journal, and resume rank shared by every stage.
func (h *Harness) RunStream(ctx context.Context, src *population.Source, opts pipeline.Options, queue int) (*Summary, error) {
	pop := src.Population()
	profiles, cache := h.setup(pop)
	vcache, scope := h.dedupCache(profiles)
	workers := h.workerCount(src.Size())

	run := h.Metrics.Timer("difftest.run").Start()
	defer run.Stop()
	analyzers := make([]*compliance.Analyzer, workers)
	an := pipeline.Through(src.Flow(ctx, opts, queue), pipeline.Stage[*population.Domain, analyzed]{
		Name:    "analyze",
		Workers: workers,
		Queue:   queue,
		OnWorker: func(worker int) func() {
			analyzers[worker] = &compliance.Analyzer{Completeness: compliance.CompletenessConfig{
				Roots:   pop.Roots(),
				Fetcher: pop.Repo,
			}}
			return nil
		},
		Fn: func(_ context.Context, worker, _ int, d *population.Domain) (analyzed, error) {
			return analyzeDomain(analyzers[worker], vcache, scope, d), nil
		},
	})
	return h.drainSummary(pipeline.Through(an, h.verdictStage(pop, profiles, cache, vcache, workers, queue)))
}

// newSummary creates a Summary with its maps allocated.
func newSummary() *Summary {
	return &Summary{
		CauseCounts:        make(map[Cause]int),
		PerClientPass:      make(map[string]int),
		PerClientBuildFail: make(map[string]int),
	}
}

// absorb folds one non-compliant chain record into the summary. The sink
// calls it in rank order, so counts and Records match a serial run exactly.
func (s *Summary) absorb(rec *ChainRecord, keepRecords bool) {
	s.NonCompliant++
	for _, v := range rec.Verdicts {
		if v.OK() {
			s.PerClientPass[v.Client]++
		}
		if v.Outcome.Err != nil {
			s.PerClientBuildFail[v.Client]++
		}
	}
	if rec.AllPass(clients.Browser, "Safari") {
		s.AllBrowsersPass++
	}
	if rec.AllPass(clients.Library) {
		s.AllLibrariesPass++
	}
	if rec.Discrepant(clients.Browser, "Safari") {
		s.BrowserDiscrepant++
	}
	if rec.Discrepant(clients.Library) {
		s.LibraryDiscrepant++
	}
	if rec.ClassDiscrepant(clients.Browser, "Safari") {
		s.BrowserClassDiscrepant++
	}
	if rec.ClassDiscrepant(clients.Library) {
		s.LibraryClassDiscrepant++
	}
	for _, c := range rec.Causes {
		s.CauseCounts[c]++
	}
	if keepRecords {
		s.Records = append(s.Records, rec)
	}
}

// buildWarmCache preloads the intermediates of the named CA profiles, the
// model of Firefox's intermediate-certificate cache.
func buildWarmCache(pop *population.Population, warm []string) *rootstore.Store {
	cache := rootstore.New("intermediate-cache")
	for _, iss := range pop.Issuers {
		if !contains(warm, iss.Profile.Name) {
			continue
		}
		for _, inter := range iss.Intermediates {
			cache.Add(inter)
		}
	}
	// Every harness builder reads this cache CacheReadOnly, so freeze it:
	// the worker shards then hit it lock-free.
	cache.Seal()
	return cache
}

// classifyCauses attributes each disagreement to the paper's I-1…I-4 causes.
func classifyCauses(rec *ChainRecord) []Cause {
	if !rec.Discrepant(clients.Library) && !rec.Discrepant(clients.Browser, "Safari") {
		return nil
	}
	var causes []Cause
	seen := map[Cause]bool{}
	add := func(c Cause) {
		if !seen[c] {
			seen[c] = true
			causes = append(causes, c)
		}
	}

	for _, v := range rec.Verdicts {
		if v.OK() {
			continue
		}
		switch {
		case errors.Is(v.Outcome.Err, pathbuild.ErrInputListTooLong):
			add(CauseI2InputLimit)
		case v.Client == "MbedTLS" && rec.Report.Order.ReversedAny && passesElsewhere(rec, v.Client):
			add(CauseI1Reorder)
		case rec.Report.Completeness.Class == compliance.Incomplete && aiaCapablePasses(rec):
			add(CauseI4AIA)
		case rec.Report.Order.MultiplePaths && !hasBacktrack(v.Client) && backtrackerPasses(rec):
			add(CauseI3Backtrack)
		default:
			add(CauseOther)
		}
	}
	return causes
}

func passesElsewhere(rec *ChainRecord, except string) bool {
	for _, v := range rec.Verdicts {
		if v.Client != except && v.Kind == clients.Library && v.OK() {
			return true
		}
	}
	return false
}

func aiaCapablePasses(rec *ChainRecord) bool {
	for _, name := range []string{"CryptoAPI", "Chrome", "Edge", "Safari"} {
		if v, ok := rec.verdictOf(name); ok && v.OK() {
			return true
		}
	}
	return false
}

func hasBacktrack(client string) bool {
	switch client {
	case "OpenSSL", "GnuTLS", "MbedTLS":
		return false
	}
	return true
}

func backtrackerPasses(rec *ChainRecord) bool {
	for _, v := range rec.Verdicts {
		if hasBacktrack(v.Client) && v.OK() {
			return true
		}
	}
	return false
}

// AttributeCauses classifies a hand-assembled record's client disagreements
// into the paper's I-1…I-4 causes — the same attribution the harness applies
// at its sink. Exported for the divergence fuzzer, which constructs records
// for mutated chains outside any harness run and bins them by cause.
func AttributeCauses(rec *ChainRecord) []Cause {
	rec.buildIndex()
	return classifyCauses(rec)
}

// DefaultWarmCache builds the harness's default Firefox-style warm
// intermediate cache over the population: every disclosed CA's intermediates,
// sealed (see setup). Out-of-harness graders — the divergence fuzzer's oracle
// — use it so mutants are judged in the identical client context.
func DefaultWarmCache(pop *population.Population) *rootstore.Store {
	var h Harness
	_, cache := h.setup(pop)
	return cache
}

// Builders constructs one pathbuild.Builder per profile wired exactly as the
// harness wires its graders: the client's vendor root store, the population's
// AIA repository, the shared read-only warm cache, validation pinned to the
// population's reference time.
func Builders(pop *population.Population, profiles []clients.Profile, cache *rootstore.Store, reg *obs.Registry) []*pathbuild.Builder {
	h := &Harness{Metrics: reg}
	return h.newGrader(pop, profiles, cache).builders
}

// CauseNames renders the causes of a record for reports.
func CauseNames(causes []Cause) string {
	if len(causes) == 0 {
		return "-"
	}
	parts := make([]string, len(causes))
	for i, c := range causes {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}
