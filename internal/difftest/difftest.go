// Package difftest implements the paper's §5.2 evaluation: run every client
// model over every (potentially non-compliant) deployed chain, compare
// verdicts, and attribute disagreements to the four root causes the paper
// isolates — missing order reorganization (I-1), input-list length limits
// (I-2), missing backtracking (I-3), and missing AIA completion (I-4).
package difftest

import (
	"context"
	"errors"
	"strings"

	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/core"
	"chainchaos/internal/obs"
	"chainchaos/internal/parallel"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/population"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/topo"
)

// Cause is a root-cause class for client disagreement.
type Cause int

const (
	CauseOther Cause = iota
	// CauseI1Reorder: a client without order reorganization failed a
	// disordered chain that reordering clients validated.
	CauseI1Reorder
	// CauseI2InputLimit: a client rejected the list for its size alone.
	CauseI2InputLimit
	// CauseI3Backtrack: non-backtracking clients committed to an invalid
	// path on a multi-path chain.
	CauseI3Backtrack
	// CauseI4AIA: only clients able to fetch (or recall) missing
	// intermediates validated an incomplete chain.
	CauseI4AIA
)

// String returns the paper's label.
func (c Cause) String() string {
	switch c {
	case CauseI1Reorder:
		return "I-1 order reorganization"
	case CauseI2InputLimit:
		return "I-2 input list limit"
	case CauseI3Backtrack:
		return "I-3 backtracking"
	case CauseI4AIA:
		return "I-4 AIA completion"
	default:
		return "other"
	}
}

// ClientVerdict is one client's result on one chain.
type ClientVerdict struct {
	Client  string
	Kind    clients.Kind
	Outcome pathbuild.Outcome
}

// OK reports whether the client accepted the chain.
func (v ClientVerdict) OK() bool { return v.Outcome.OK() }

// Class buckets the verdict into the paper's error classes (OK,
// unknown-issuer, date-invalid, domain-mismatch, ...).
func (v ClientVerdict) Class() core.VerdictClass { return core.Classify(v.Outcome) }

// ChainRecord is the differential record for one domain.
type ChainRecord struct {
	Domain   *population.Domain
	Report   compliance.Report
	Verdicts []ClientVerdict
	Causes   []Cause
}

// verdictOf returns the named client's verdict.
func (r *ChainRecord) verdictOf(name string) (ClientVerdict, bool) {
	for _, v := range r.Verdicts {
		if v.Client == name {
			return v, true
		}
	}
	return ClientVerdict{}, false
}

// Discrepant reports whether clients of the given kind disagree.
func (r *ChainRecord) Discrepant(kind clients.Kind, exclude ...string) bool {
	pass, fail := 0, 0
	for _, v := range r.Verdicts {
		if v.Kind != kind || contains(exclude, v.Client) {
			continue
		}
		if v.OK() {
			pass++
		} else {
			fail++
		}
	}
	return pass > 0 && fail > 0
}

// ClassDiscrepant reports whether clients of the given kind produced
// different verdict classes — a finer comparison than pass/fail that mirrors
// the paper's browser-message methodology.
func (r *ChainRecord) ClassDiscrepant(kind clients.Kind, exclude ...string) bool {
	var classes []core.VerdictClass
	for _, v := range r.Verdicts {
		if v.Kind != kind || contains(exclude, v.Client) {
			continue
		}
		classes = append(classes, v.Class())
	}
	if len(classes) == 0 {
		return false
	}
	for _, c := range classes[1:] {
		if c != classes[0] {
			return true
		}
	}
	return false
}

// AllPass reports whether every client of the kind accepted the chain.
func (r *ChainRecord) AllPass(kind clients.Kind, exclude ...string) bool {
	for _, v := range r.Verdicts {
		if v.Kind != kind || contains(exclude, v.Client) {
			continue
		}
		if !v.OK() {
			return false
		}
	}
	return true
}

func contains(xs []string, x string) bool {
	for _, s := range xs {
		if s == x {
			return true
		}
	}
	return false
}

// Summary aggregates a differential run, mirroring §5.2's result overview.
type Summary struct {
	Total        int
	NonCompliant int

	// Over the non-compliant chains (the paper's focus):
	AllBrowsersPass  int // Safari excluded, as in the paper
	AllLibrariesPass int
	// *Discrepant count pass/fail disagreements; *ClassDiscrepant count
	// verdict-class disagreements (the paper compares browser error
	// messages, not just accept/reject).
	BrowserDiscrepant      int
	LibraryDiscrepant      int
	BrowserClassDiscrepant int
	LibraryClassDiscrepant int
	CauseCounts            map[Cause]int
	PerClientPass          map[string]int // over non-compliant chains
	PerClientBuildFail     map[string]int // construction-phase errors

	Records []*ChainRecord
}

// Harness wires client models to a population.
type Harness struct {
	// Profiles defaults to clients.All().
	Profiles []clients.Profile
	// WarmCacheShares lists CA profile names whose intermediates are
	// preloaded into cache-using clients (Firefox); the default warms the
	// high-market-share CAs, leaving long-tail intermediates to miss —
	// the paper's 1,074 SEC_ERROR_UNKNOWN_ISSUER chains.
	WarmCacheShares []string
	// CheckHostname includes the leaf/domain match in validation.
	CheckHostname bool
	// KeepRecords retains per-chain records (memory-heavy on large
	// populations).
	KeepRecords bool
	// Workers shards the population across goroutines; <= 0 means
	// GOMAXPROCS. Per-worker summaries are merged in shard order, so the
	// Summary is bit-identical to a serial run for any worker count.
	Workers int
	// Metrics, when non-nil, receives the run's stage timer
	// (difftest.run), a per-shard wall-time histogram (difftest.shard_wall)
	// and counters (difftest.chains, difftest.noncompliant), and is
	// propagated to every per-shard Builder for construction metrics.
	Metrics *obs.Registry
}

// Analysis carries precomputed per-domain topology graphs and compliance
// reports, index-aligned with pop.Domains. Callers that already ran the
// server-side analysis (experiments.Env holds both) pass it to RunAnalyzed so
// the harness does not rebuild and regrade every chain.
type Analysis struct {
	Graphs  []*topo.Graph
	Reports []compliance.Report
}

// storeFor maps each client to its vendor root store, as deployed in
// practice: NSS/OpenSSL-family ship Mozilla's store, CryptoAPI and Edge use
// Microsoft's, Safari Apple's, Chrome its own.
func storeFor(name string, v *rootstore.VendorSet) *rootstore.Store {
	switch name {
	case "CryptoAPI", "Edge":
		return v.Microsoft
	case "Safari":
		return v.Apple
	case "Chrome":
		return v.Chrome
	default:
		return v.Mozilla
	}
}

// Run executes the differential evaluation over the population.
func (h *Harness) Run(pop *population.Population) *Summary {
	return h.RunAnalyzed(pop, nil)
}

// RunAnalyzed executes the differential evaluation, reusing precomputed
// topology graphs and compliance reports when pre is non-nil (it must be
// index-aligned with pop.Domains). The population is sharded across
// h.Workers goroutines; each worker grades its contiguous shard into a
// private Summary with one reusable pathbuild.Builder per client profile,
// and the shard summaries are merged in shard order — the result is
// bit-identical to a serial run for any worker count.
func (h *Harness) RunAnalyzed(pop *population.Population, pre *Analysis) *Summary {
	profiles := h.Profiles
	if len(profiles) == 0 {
		profiles = clients.All()
	}
	warm := h.WarmCacheShares
	if warm == nil {
		// Firefox preloads every CCADB-disclosed intermediate (the
		// "Mozilla caches all known CA certificates" design the paper
		// cites); what it cannot know are intermediates of CAs that do
		// not disclose — the government/regional hierarchies here. Their
		// incomplete chains become the SEC_ERROR_UNKNOWN_ISSUER browser
		// discrepancies of finding I-4.
		undisclosed := map[string]bool{
			"TAIWAN-CA":                 true,
			"TW Government CA":          true,
			"EU Qualified CA":           true,
			"Regional Commerce CA":      true,
			"Undisclosed Enterprise CA": true,
		}
		for _, iss := range pop.Issuers {
			if !undisclosed[iss.Profile.Name] && !contains(warm, iss.Profile.Name) {
				warm = append(warm, iss.Profile.Name)
			}
		}
	}
	cache := buildWarmCache(pop, warm)

	workers := parallel.Workers(h.Workers)
	if workers > len(pop.Domains) {
		workers = len(pop.Domains)
	}
	if workers < 1 {
		workers = 1
	}
	run := h.Metrics.Timer("difftest.run").Start()
	shardWall := h.Metrics.Histogram("difftest.shard_wall", obs.LatencyBuckets)
	partials := make([]*Summary, workers)
	parallel.Shards(context.Background(), len(pop.Domains), workers, func(shard, lo, hi int) {
		sw := h.Metrics.Timer("difftest.shard").Start()
		partials[shard] = h.runShard(pop, pre, profiles, cache, lo, hi)
		shardWall.ObserveDuration(sw.Stop())
	})

	sum := newSummary()
	for _, p := range partials {
		if p != nil {
			sum.merge(p)
		}
	}
	run.Stop()
	h.Metrics.Counter("difftest.chains").Add(int64(sum.Total))
	h.Metrics.Counter("difftest.noncompliant").Add(int64(sum.NonCompliant))
	return sum
}

// runShard grades pop.Domains[lo:hi] into a fresh Summary. Builders are
// allocated once per (shard, profile) pair and reused for every chain —
// Build keeps no state across calls (the shared warm cache is read-only
// here), so reuse only removes the per-chain allocations.
func (h *Harness) runShard(pop *population.Population, pre *Analysis, profiles []clients.Profile, cache *rootstore.Store, lo, hi int) *Summary {
	var analyzer *compliance.Analyzer
	if pre == nil {
		analyzer = &compliance.Analyzer{Completeness: compliance.CompletenessConfig{
			Roots:   pop.Roots(),
			Fetcher: pop.Repo,
		}}
	}
	builders := make([]*pathbuild.Builder, len(profiles))
	for i, p := range profiles {
		builders[i] = &pathbuild.Builder{
			Policy:  p.Policy,
			Roots:   storeFor(p.Name, pop.Vendors),
			Fetcher: pop.Repo,
			Cache:   cache,
			// The cache models a fixed preload (CCADB disclosure),
			// not state accumulated during this measurement.
			CacheReadOnly: true,
			Now:           pop.Cfg.Base,
			Metrics:       h.Metrics,
		}
	}

	sum := newSummary()
	for i := lo; i < hi; i++ {
		d := pop.Domains[i]
		sum.Total++
		var rep compliance.Report
		if pre != nil {
			rep = pre.Reports[i]
		} else {
			rep = analyzer.Analyze(d.Name, topo.Build(d.List))
		}
		if rep.Compliant() {
			continue
		}
		sum.NonCompliant++

		rec := &ChainRecord{Domain: d, Report: rep, Verdicts: make([]ClientVerdict, 0, len(profiles))}
		for j, p := range profiles {
			domain := ""
			if h.CheckHostname {
				domain = d.Name
			}
			out := builders[j].Build(d.List, domain)
			rec.Verdicts = append(rec.Verdicts, ClientVerdict{Client: p.Name, Kind: p.Kind, Outcome: out})
			if out.OK() {
				sum.PerClientPass[p.Name]++
			}
			if out.Err != nil {
				sum.PerClientBuildFail[p.Name]++
			}
		}
		rec.Causes = classifyCauses(rec)

		if rec.AllPass(clients.Browser, "Safari") {
			sum.AllBrowsersPass++
		}
		if rec.AllPass(clients.Library) {
			sum.AllLibrariesPass++
		}
		if rec.Discrepant(clients.Browser, "Safari") {
			sum.BrowserDiscrepant++
		}
		if rec.Discrepant(clients.Library) {
			sum.LibraryDiscrepant++
		}
		if rec.ClassDiscrepant(clients.Browser, "Safari") {
			sum.BrowserClassDiscrepant++
		}
		if rec.ClassDiscrepant(clients.Library) {
			sum.LibraryClassDiscrepant++
		}
		for _, c := range rec.Causes {
			sum.CauseCounts[c]++
		}
		if h.KeepRecords {
			sum.Records = append(sum.Records, rec)
		}
	}
	// Builders retire with the shard: publish their final partial batch of
	// construction metrics.
	for _, b := range builders {
		b.FlushMetrics()
	}
	return sum
}

// newSummary creates a Summary with its maps allocated.
func newSummary() *Summary {
	return &Summary{
		CauseCounts:        make(map[Cause]int),
		PerClientPass:      make(map[string]int),
		PerClientBuildFail: make(map[string]int),
	}
}

// merge folds a shard summary into s. Shards cover disjoint contiguous
// domain ranges and are merged in shard order, so Records stays in
// pop.Domains order.
func (s *Summary) merge(o *Summary) {
	s.Total += o.Total
	s.NonCompliant += o.NonCompliant
	s.AllBrowsersPass += o.AllBrowsersPass
	s.AllLibrariesPass += o.AllLibrariesPass
	s.BrowserDiscrepant += o.BrowserDiscrepant
	s.LibraryDiscrepant += o.LibraryDiscrepant
	s.BrowserClassDiscrepant += o.BrowserClassDiscrepant
	s.LibraryClassDiscrepant += o.LibraryClassDiscrepant
	for c, n := range o.CauseCounts {
		s.CauseCounts[c] += n
	}
	for name, n := range o.PerClientPass {
		s.PerClientPass[name] += n
	}
	for name, n := range o.PerClientBuildFail {
		s.PerClientBuildFail[name] += n
	}
	s.Records = append(s.Records, o.Records...)
}

// buildWarmCache preloads the intermediates of the named CA profiles, the
// model of Firefox's intermediate-certificate cache.
func buildWarmCache(pop *population.Population, warm []string) *rootstore.Store {
	cache := rootstore.New("intermediate-cache")
	for _, iss := range pop.Issuers {
		if !contains(warm, iss.Profile.Name) {
			continue
		}
		for _, inter := range iss.Intermediates {
			cache.Add(inter)
		}
	}
	// Every harness builder reads this cache CacheReadOnly, so freeze it:
	// the worker shards then hit it lock-free.
	cache.Seal()
	return cache
}

// classifyCauses attributes each disagreement to the paper's I-1…I-4 causes.
func classifyCauses(rec *ChainRecord) []Cause {
	if !rec.Discrepant(clients.Library) && !rec.Discrepant(clients.Browser, "Safari") {
		return nil
	}
	var causes []Cause
	seen := map[Cause]bool{}
	add := func(c Cause) {
		if !seen[c] {
			seen[c] = true
			causes = append(causes, c)
		}
	}

	for _, v := range rec.Verdicts {
		if v.OK() {
			continue
		}
		switch {
		case errors.Is(v.Outcome.Err, pathbuild.ErrInputListTooLong):
			add(CauseI2InputLimit)
		case v.Client == "MbedTLS" && rec.Report.Order.ReversedAny && passesElsewhere(rec, v.Client):
			add(CauseI1Reorder)
		case rec.Report.Completeness.Class == compliance.Incomplete && aiaCapablePasses(rec):
			add(CauseI4AIA)
		case rec.Report.Order.MultiplePaths && !hasBacktrack(v.Client) && backtrackerPasses(rec):
			add(CauseI3Backtrack)
		default:
			add(CauseOther)
		}
	}
	return causes
}

func passesElsewhere(rec *ChainRecord, except string) bool {
	for _, v := range rec.Verdicts {
		if v.Client != except && v.Kind == clients.Library && v.OK() {
			return true
		}
	}
	return false
}

func aiaCapablePasses(rec *ChainRecord) bool {
	for _, name := range []string{"CryptoAPI", "Chrome", "Edge", "Safari"} {
		if v, ok := rec.verdictOf(name); ok && v.OK() {
			return true
		}
	}
	return false
}

func hasBacktrack(client string) bool {
	switch client {
	case "OpenSSL", "GnuTLS", "MbedTLS":
		return false
	}
	return true
}

func backtrackerPasses(rec *ChainRecord) bool {
	for _, v := range rec.Verdicts {
		if hasBacktrack(v.Client) && v.OK() {
			return true
		}
	}
	return false
}

// CauseNames renders the causes of a record for reports.
func CauseNames(causes []Cause) string {
	if len(causes) == 0 {
		return "-"
	}
	parts := make([]string, len(causes))
	for i, c := range causes {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}
