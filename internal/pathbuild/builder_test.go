package pathbuild

import (
	"errors"
	"testing"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/rootstore"
)

var base = time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)

// pki is the standard four-cert fixture: root -> ca2 -> ca1 -> leaf.
type pki struct {
	root, ca2, ca1, leaf *certmodel.Certificate
	roots                *rootstore.Store
}

func newPKI(tag string) *pki {
	root := certmodel.SyntheticRoot("PB Root "+tag, base)
	ca2 := certmodel.SyntheticIntermediate("PB CA2 "+tag, root, base)
	ca1 := certmodel.SyntheticIntermediate("PB CA1 "+tag, ca2, base)
	leaf := certmodel.SyntheticLeaf("pb-"+tag+".example", "1", ca1, base, base.AddDate(1, 0, 0))
	return &pki{root, ca2, ca1, leaf, rootstore.NewWith("pb", root)}
}

func builderFor(p *pki, policy Policy) *Builder {
	return &Builder{Policy: policy, Roots: p.roots, Now: base.AddDate(0, 1, 0)}
}

func reorderPolicy() Policy {
	return Policy{Name: "t", Reorder: true, EliminateDuplicates: true}
}

func TestBuildCompliantChain(t *testing.T) {
	p := newPKI("ok")
	out := builderFor(p, reorderPolicy()).Build(
		[]*certmodel.Certificate{p.leaf, p.ca1, p.ca2}, "pb-ok.example")
	if !out.OK() {
		t.Fatalf("build failed: err=%v findings=%v", out.Err, out.Validation.Findings)
	}
	// Path should be leaf, ca1, ca2 and then the root appended from the
	// store as the terminal anchor.
	if len(out.Path) != 4 || !out.Path[3].Equal(p.root) {
		t.Errorf("path = %v", out.Path)
	}
	if out.PathsTried != 1 {
		t.Errorf("paths tried = %d", out.PathsTried)
	}
}

func TestBuildEmptyList(t *testing.T) {
	p := newPKI("empty")
	out := builderFor(p, reorderPolicy()).Build(nil, "x")
	if !errors.Is(out.Err, ErrEmptyList) {
		t.Errorf("err = %v", out.Err)
	}
}

func TestReorderOnOff(t *testing.T) {
	p := newPKI("reorder")
	reversed := []*certmodel.Certificate{p.leaf, p.root, p.ca2, p.ca1}

	if out := builderFor(p, reorderPolicy()).Build(reversed, ""); !out.OK() {
		t.Errorf("reordering client failed reversed chain: %v", out.Validation.Findings)
	}
	forward := Policy{Name: "fwd"}
	if out := builderFor(p, forward).Build(reversed, ""); out.OK() {
		t.Error("forward-only client validated a reversed chain")
	}
}

func TestForwardOnlySkipsIrrelevant(t *testing.T) {
	// Redundancy elimination holds even without reordering: irrelevant
	// certificates between the leaf and its issuer are skipped.
	p := newPKI("fwdskip")
	stranger := certmodel.SyntheticRoot("PB Stranger", base)
	list := []*certmodel.Certificate{p.leaf, stranger, p.ca1, p.ca2}
	out := builderFor(p, Policy{Name: "fwd"}).Build(list, "")
	if !out.OK() {
		t.Errorf("forward-only client failed to skip irrelevant cert: %v", out.Validation.Findings)
	}
}

func TestForwardOnlyCannotLookBack(t *testing.T) {
	// {E, I2, I1, R}: the issuer of I1 (=I2) sits before it.
	p := newPKI("fwdback")
	list := []*certmodel.Certificate{p.leaf, p.ca2, p.ca1, p.root}
	out := builderFor(p, Policy{Name: "fwd"}).Build(list, "")
	if out.OK() {
		t.Error("forward-only client should fail {E, I2, I1, R}")
	}
	// The partial path should have reached ca1 and stopped.
	if len(out.Path) != 2 || !out.Path[1].Equal(p.ca1) {
		t.Errorf("partial path = %v", out.Path)
	}
}

func TestInputListLimit(t *testing.T) {
	p := newPKI("inputlimit")
	list := []*certmodel.Certificate{p.leaf, p.ca1, p.ca2}
	pol := reorderPolicy()
	pol.MaxInputList = 2
	out := builderFor(p, pol).Build(list, "")
	if !errors.Is(out.Err, ErrInputListTooLong) {
		t.Errorf("err = %v, want input list limit", out.Err)
	}
	pol.MaxInputList = 3
	if out := builderFor(p, pol).Build(list, ""); !out.OK() {
		t.Error("list exactly at the limit should build")
	}
}

func TestSelfSignedLeaf(t *testing.T) {
	p := newPKI("ssleaf")
	ss := certmodel.SyntheticRoot("Self Signed Server", base)
	list := []*certmodel.Certificate{ss, p.leaf, p.ca1, p.ca2}

	refuse := reorderPolicy()
	out := builderFor(p, refuse).Build(list, "")
	if !errors.Is(out.Err, ErrSelfSignedLeaf) {
		t.Errorf("err = %v, want self-signed-leaf refusal", out.Err)
	}

	allow := reorderPolicy()
	allow.AllowSelfSignedLeaf = true
	out = builderFor(p, allow).Build(list, "")
	if out.Err != nil {
		t.Fatalf("allowing policy refused: %v", out.Err)
	}
	if len(out.Path) != 1 || !out.Path[0].Equal(ss) {
		t.Errorf("path = %v, want just the self-signed leaf", out.Path)
	}
	if out.Validation.OK {
		t.Error("untrusted self-signed leaf should not validate")
	}
}

func TestBacktrackingRecovers(t *testing.T) {
	// Two candidate issuers for ca1's subject: a decoy sharing the DN and
	// key but expired, presented first; the good one second.
	p := newPKI("bt")
	decoy := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: p.ca1.Subject, Issuer: p.ca2.Subject, Serial: "decoy",
		NotBefore: base.AddDate(-3, 0, 0), NotAfter: base.AddDate(-2, 0, 0),
		Key: certmodel.KeyOf(p.ca1), SignedBy: certmodel.KeyOf(p.ca2),
		IsCA: true, BasicConstraintsValid: true,
		KeyUsage: certmodel.KeyUsageCertSign, HasKeyUsage: true,
	})
	list := []*certmodel.Certificate{p.leaf, decoy, p.ca1, p.ca2}

	plain := Policy{Name: "plain", Reorder: true, EliminateDuplicates: true}
	out := builderFor(p, plain).Build(list, "")
	if out.OK() {
		t.Fatal("no-priorities, no-backtracking client should pick the expired decoy and fail")
	}
	if out.PathsTried != 1 {
		t.Errorf("paths tried = %d, want 1", out.PathsTried)
	}

	bt := plain
	bt.Backtrack = true
	out = builderFor(p, bt).Build(list, "")
	if !out.OK() {
		t.Fatalf("backtracking client failed: %v", out.Validation.Findings)
	}
	if out.PathsTried < 2 {
		t.Errorf("paths tried = %d, want >= 2", out.PathsTried)
	}
}

func TestBacktrackingAttemptBudget(t *testing.T) {
	// Many same-subject expired decoys; a tiny attempt budget gives up
	// before reaching the good candidate.
	p := newPKI("btbudget")
	var list []*certmodel.Certificate
	list = append(list, p.leaf)
	for i := 0; i < 6; i++ {
		decoy := certmodel.NewSynthetic(certmodel.SyntheticConfig{
			Subject: p.ca1.Subject, Issuer: p.ca2.Subject, Serial: string(rune('a' + i)),
			NotBefore: base.AddDate(-3, 0, 0), NotAfter: base.AddDate(-2, 0, 0),
			Key: certmodel.KeyOf(p.ca1), SignedBy: certmodel.KeyOf(p.ca2),
			IsCA: true, BasicConstraintsValid: true,
		})
		list = append(list, decoy)
	}
	list = append(list, p.ca1, p.ca2)

	pol := Policy{Name: "budget", Reorder: true, EliminateDuplicates: true, Backtrack: true, MaxAttempts: 3}
	out := builderFor(p, pol).Build(list, "")
	if out.OK() {
		t.Error("3-attempt budget should not reach the valid candidate behind 6 decoys")
	}
	if out.PathsTried > 3 {
		t.Errorf("paths tried = %d, budget was 3", out.PathsTried)
	}

	pol.MaxAttempts = 0 // default (32) is plenty
	if out := builderFor(p, pol).Build(list, ""); !out.OK() {
		t.Error("default budget should recover")
	}
}

func TestPartialValidationFiltersCandidates(t *testing.T) {
	// A same-DN candidate whose signature does not verify: partial
	// validation drops it during collection, so even without backtracking
	// the good candidate is used.
	p := newPKI("pv")
	forged := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: p.ca1.Subject, Issuer: p.ca2.Subject, Serial: "forged",
		NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
		Key: certmodel.NewSyntheticKey("pv-forged"), SignedBy: certmodel.NewSyntheticKey("pv-wrong-signer"),
		IsCA: true, BasicConstraintsValid: true,
	})
	list := []*certmodel.Certificate{p.leaf, forged, p.ca1, p.ca2}

	noPV := Policy{Name: "nopv", Reorder: true}
	if out := builderFor(p, noPV).Build(list, ""); out.OK() {
		t.Error("without partial validation the forged candidate should poison the path")
	}
	pv := Policy{Name: "pv", Reorder: true, PartialValidation: true}
	if out := builderFor(p, pv).Build(list, ""); !out.OK() {
		t.Errorf("partial validation should skip the forged candidate: %v", out.Validation.Findings)
	}
}

func TestAIAFallback(t *testing.T) {
	root := certmodel.SyntheticRoot("PB AIA Root", base)
	ca2 := certmodel.SyntheticIntermediate("PB AIA CA2", root, base)
	const uri = "http://repo.pb.example/ca2.der"
	ca1 := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "PB AIA CA1"}, Issuer: ca2.Subject,
		Serial: "1", NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
		Key: certmodel.NewSyntheticKey("pb-aia-ca1"), SignedBy: certmodel.KeyOf(ca2),
		IsCA: true, BasicConstraintsValid: true,
		KeyUsage: certmodel.KeyUsageCertSign, HasKeyUsage: true,
		AIAIssuerURLs: []string{uri},
	})
	leaf := certmodel.SyntheticLeaf("pb-aia.example", "1", ca1, base, base.AddDate(1, 0, 0))
	repo := aia.NewRepository()
	repo.Put(uri, ca2)
	roots := rootstore.NewWith("pb-aia", root)

	pol := reorderPolicy()
	pol.AIA = true
	b := &Builder{Policy: pol, Roots: roots, Fetcher: repo, Now: base.AddDate(0, 1, 0)}
	out := b.Build([]*certmodel.Certificate{leaf, ca1}, "pb-aia.example")
	if !out.OK() {
		t.Fatalf("AIA build failed: %v %v", out.Err, out.Validation.Findings)
	}
	if out.AIAFetches == 0 {
		t.Error("no AIA fetches recorded")
	}

	// AIA is a fallback: when the issuer is in the list, no fetch happens.
	out = b.Build([]*certmodel.Certificate{leaf, ca1, ca2}, "pb-aia.example")
	if !out.OK() || out.AIAFetches != 0 {
		t.Errorf("AIA used despite local candidate (fetches=%d)", out.AIAFetches)
	}

	// Without the policy bit the fetcher must stay untouched.
	pol.AIA = false
	b2 := &Builder{Policy: pol, Roots: roots, Fetcher: repo, Now: base.AddDate(0, 1, 0)}
	if out := b2.Build([]*certmodel.Certificate{leaf, ca1}, ""); out.OK() {
		t.Error("AIA-less policy should fail the incomplete chain")
	}
}

func TestCacheUseAndPopulation(t *testing.T) {
	p := newPKI("cache")
	cache := rootstore.New("cache")
	pol := reorderPolicy()
	pol.UseCache = true
	b := &Builder{Policy: pol, Roots: p.roots, Cache: cache, Now: base.AddDate(0, 1, 0)}

	// Incomplete chain, cold cache: fail.
	if out := b.Build([]*certmodel.Certificate{p.leaf, p.ca1}, ""); out.OK() {
		t.Fatal("cold cache should not complete the chain")
	}
	// Full chain: validates and populates the cache.
	if out := b.Build([]*certmodel.Certificate{p.leaf, p.ca1, p.ca2}, ""); !out.OK() {
		t.Fatal("full chain failed")
	}
	if cache.Len() == 0 {
		t.Fatal("cache not populated after a successful build")
	}
	// Incomplete chain again: now warm.
	if out := b.Build([]*certmodel.Certificate{p.leaf, p.ca1}, ""); !out.OK() {
		t.Error("warm cache should complete the chain")
	}

	// Read-only mode must not populate.
	cold := rootstore.New("cold")
	ro := &Builder{Policy: pol, Roots: p.roots, Cache: cold, CacheReadOnly: true, Now: base.AddDate(0, 1, 0)}
	if out := ro.Build([]*certmodel.Certificate{p.leaf, p.ca1, p.ca2}, ""); !out.OK() {
		t.Fatal("read-only full chain failed")
	}
	if cold.Len() != 0 {
		t.Error("read-only cache was populated")
	}
}

func TestMaxPathLenCountsImplicitAnchor(t *testing.T) {
	p := newPKI("maxlen")
	full := []*certmodel.Certificate{p.leaf, p.ca1, p.ca2, p.root}
	noRoot := []*certmodel.Certificate{p.leaf, p.ca1, p.ca2}

	pol := reorderPolicy()
	pol.MaxPathLen = 4
	if out := builderFor(p, pol).Build(full, ""); !out.OK() {
		t.Error("4-cert chain should fit a limit of 4")
	}
	if out := builderFor(p, pol).Build(noRoot, ""); !out.OK() {
		t.Error("3-cert list with implicit anchor (total 4) should fit a limit of 4")
	}
	pol.MaxPathLen = 3
	if out := builderFor(p, pol).Build(full, ""); out.OK() {
		t.Error("4-cert chain should exceed a limit of 3")
	}
	if out := builderFor(p, pol).Build(noRoot, ""); out.OK() {
		t.Error("implicit anchor must count: effective 4 > 3")
	}
}

func TestDuplicateEliminationCost(t *testing.T) {
	p := newPKI("dupcost")
	list := []*certmodel.Certificate{p.leaf}
	for i := 0; i < 10; i++ {
		list = append(list, p.ca1, p.ca2)
	}
	with := reorderPolicy()
	without := reorderPolicy()
	without.EliminateDuplicates = false

	outWith := builderFor(p, with).Build(list, "")
	outWithout := builderFor(p, without).Build(list, "")
	if !outWith.OK() || !outWithout.OK() {
		t.Fatal("both variants should validate")
	}
	if outWithout.CandidatesConsidered <= outWith.CandidatesConsidered {
		t.Errorf("duplicate scanning cost not visible: %d <= %d",
			outWithout.CandidatesConsidered, outWith.CandidatesConsidered)
	}
}

func TestCrossSignCycleTerminates(t *testing.T) {
	// Mutually cross-signed CAs (CVE-2024-0567 shape): construction must
	// terminate and report a failure rather than loop.
	keyA, keyB := certmodel.NewSyntheticKey("pb-cyc-a"), certmodel.NewSyntheticKey("pb-cyc-b")
	nameA, nameB := certmodel.Name{CommonName: "Cyc A"}, certmodel.Name{CommonName: "Cyc B"}
	mk := func(sub, iss certmodel.Name, key, signer certmodel.SyntheticKey, serial string) *certmodel.Certificate {
		return certmodel.NewSynthetic(certmodel.SyntheticConfig{
			Subject: sub, Issuer: iss, Serial: serial,
			NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
			Key: key, SignedBy: signer, IsCA: true, BasicConstraintsValid: true,
		})
	}
	aByB := mk(nameA, nameB, keyA, keyB, "ab")
	bByA := mk(nameB, nameA, keyB, keyA, "ba")
	leaf := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "cyc.example"}, Issuer: nameA,
		Serial: "leaf", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: certmodel.NewSyntheticKey("pb-cyc-leaf"), SignedBy: keyA,
		DNSNames: []string{"cyc.example"},
	})
	pol := reorderPolicy()
	pol.Backtrack = true
	b := &Builder{Policy: pol, Roots: rootstore.New("empty"), Now: base}
	out := b.Build([]*certmodel.Certificate{leaf, aByB, bByA}, "cyc.example")
	if out.OK() {
		t.Error("untrusted cycle should not validate")
	}
	if len(out.Path) == 0 {
		t.Error("partial path expected")
	}
}
