package pathbuild

import (
	"strings"
	"testing"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/rootstore"
)

func TestTraceRecordsDecisions(t *testing.T) {
	p := newPKI("trace")
	trace := &Trace{}
	pol := reorderPolicy()
	b := &Builder{Policy: pol, Roots: p.roots, Now: base.AddDate(0, 1, 0), Trace: trace}
	out := b.Build([]*certmodel.Certificate{p.leaf, p.root, p.ca2, p.ca1}, "pb-trace.example")
	if !out.OK() {
		t.Fatalf("build failed: %v", out.Validation.Findings)
	}
	if trace.Len() == 0 {
		t.Fatal("no trace events recorded")
	}

	var steps, attempts int
	for _, e := range trace.Events {
		switch e.Kind {
		case TraceStep:
			steps++
			if len(e.Candidates) == 0 {
				t.Error("step event without candidates")
			}
			chosen := 0
			for _, c := range e.Candidates {
				if c.Chosen {
					chosen++
				}
			}
			if chosen != 1 {
				t.Errorf("step has %d chosen candidates", chosen)
			}
		case TraceAttempt:
			attempts++
			if !e.Accepted {
				t.Errorf("attempt rejected: %s", e.Detail)
			}
		}
	}
	if steps < 3 || attempts != 1 {
		t.Errorf("steps=%d attempts=%d", steps, attempts)
	}

	rendered := trace.String()
	for _, want := range []string{"step depth=1", "attempt", "accepted"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("trace rendering lacks %q:\n%s", want, rendered)
		}
	}
}

func TestTraceBacktrackingShowsRejectedAttempts(t *testing.T) {
	p := newPKI("tracebt")
	decoy := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: p.ca1.Subject, Issuer: p.ca2.Subject, Serial: "trace-decoy",
		NotBefore: base.AddDate(-3, 0, 0), NotAfter: base.AddDate(-2, 0, 0),
		Key: certmodel.KeyOf(p.ca1), SignedBy: certmodel.KeyOf(p.ca2),
		IsCA: true, BasicConstraintsValid: true,
	})
	trace := &Trace{}
	pol := reorderPolicy()
	pol.Backtrack = true
	b := &Builder{Policy: pol, Roots: p.roots, Now: base.AddDate(0, 1, 0), Trace: trace}
	out := b.Build([]*certmodel.Certificate{p.leaf, decoy, p.ca1, p.ca2}, "")
	if !out.OK() {
		t.Fatal("backtracking build failed")
	}
	rejected, accepted := 0, 0
	for _, e := range trace.Events {
		if e.Kind != TraceAttempt {
			continue
		}
		if e.Accepted {
			accepted++
		} else {
			rejected++
			if e.Detail == "" {
				t.Error("rejected attempt without detail")
			}
		}
	}
	if rejected == 0 || accepted != 1 {
		t.Errorf("rejected=%d accepted=%d; backtracking should show both", rejected, accepted)
	}
}

func TestTraceDeadEnd(t *testing.T) {
	p := newPKI("tracedead")
	trace := &Trace{}
	b := &Builder{Policy: reorderPolicy(), Roots: rootstore.New("empty"), Now: base, Trace: trace}
	out := b.Build([]*certmodel.Certificate{p.leaf}, "")
	if out.OK() {
		t.Fatal("orphan leaf validated")
	}
	found := false
	for _, e := range trace.Events {
		if e.Kind == TraceDeadEnd {
			found = true
		}
	}
	if !found {
		t.Errorf("no dead-end event:\n%s", trace)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.add(TraceEvent{}) // must not panic
	if tr.Len() != 0 {
		t.Error("nil trace has events")
	}
	p := newPKI("tracenil")
	b := &Builder{Policy: reorderPolicy(), Roots: p.roots, Now: base}
	if out := b.Build([]*certmodel.Certificate{p.leaf, p.ca1, p.ca2}, ""); !out.OK() {
		t.Error("trace-less build failed")
	}
}
