package pathbuild

import (
	"errors"
	"fmt"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/revocation"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/validate"
)

// Sentinel errors for construction-phase failures. Validation-phase failures
// are reported through Outcome.Validation instead.
var (
	// ErrEmptyList: the server presented no certificates.
	ErrEmptyList = errors.New("pathbuild: empty certificate list")
	// ErrInputListTooLong: the presented list exceeds Policy.MaxInputList
	// (GnuTLS's behaviour, finding I-2).
	ErrInputListTooLong = errors.New("pathbuild: certificate list exceeds input limit")
	// ErrSelfSignedLeaf: the first certificate is self-signed and the
	// policy refuses to build from it.
	ErrSelfSignedLeaf = errors.New("pathbuild: self-signed leaf certificate rejected")
	// ErrPathTooLong: no candidate path fits within Policy.MaxPathLen.
	ErrPathTooLong = errors.New("pathbuild: constructed path exceeds length limit")
)

// Outcome reports one construction attempt.
type Outcome struct {
	// Path is the constructed certification path, leaf first, including
	// the trust anchor when one was found. On a construction dead end it
	// holds the longest partial path, so differential analysis can see how
	// far the client got.
	Path []*certmodel.Certificate

	// Validation is the path-validation result for Path. Zero when Err is
	// a construction-phase error.
	Validation validate.Result

	// Err is non-nil for construction-phase refusals (see the sentinel
	// errors above).
	Err error

	// CandidatesConsidered counts issuer candidates examined, the resource
	// metric behind the paper's duplicate/irrelevant-certificate cost
	// observations.
	CandidatesConsidered int

	// PathsTried counts complete candidate paths validated (1 without
	// backtracking).
	PathsTried int

	// AIAFetches counts Authority Information Access retrievals.
	AIAFetches int
}

// OK reports whether construction succeeded and the path validates.
func (o Outcome) OK() bool { return o.Err == nil && o.Validation.OK }

// Builder constructs certification paths under a Policy.
type Builder struct {
	Policy Policy
	// Roots is the builder's trust store.
	Roots *rootstore.Store
	// Fetcher resolves AIA URIs when the policy enables AIA.
	Fetcher aia.Fetcher
	// Cache is the intermediate cache consulted when the policy enables
	// UseCache. Successful builds populate it, mirroring Firefox.
	Cache *rootstore.Store
	// CacheReadOnly stops successful builds from populating the cache —
	// used to model a fixed preloaded cache (Mozilla ships every
	// CCADB-disclosed intermediate) rather than one that learns during the
	// measurement itself.
	CacheReadOnly bool
	// Now is the validation time; zero disables validity checks.
	Now time.Time
	// Revocation, when non-nil, is consulted during validation — and, for
	// policies with PartialValidation, during candidate selection, the
	// MbedTLS behaviour noted in §3.2.
	Revocation *revocation.List
	// Trace, when non-nil, records every construction decision.
	Trace *Trace
}

const defaultMaxAttempts = 32

// Build constructs and validates a path for the presented list. domain, when
// non-empty, is checked against the leaf during validation.
func (b *Builder) Build(list []*certmodel.Certificate, domain string) Outcome {
	var out Outcome
	if len(list) == 0 {
		out.Err = ErrEmptyList
		return out
	}
	if b.Policy.MaxInputList > 0 && len(list) > b.Policy.MaxInputList {
		out.Err = fmt.Errorf("%w: %d > %d", ErrInputListTooLong, len(list), b.Policy.MaxInputList)
		return out
	}

	leaf := list[0]
	if leaf.SelfSigned() && !b.Policy.AllowSelfSignedLeaf {
		out.Err = ErrSelfSignedLeaf
		return out
	}

	pool := b.buildPool(list)
	search := &searcher{
		builder: b,
		pool:    pool,
		domain:  domain,
		out:     &out,
		maxTry:  b.Policy.MaxAttempts,
	}
	if search.maxTry <= 0 {
		search.maxTry = defaultMaxAttempts
	}

	search.run(leaf)

	if out.Err == nil && len(out.Path) > 0 && out.Validation.OK && b.Policy.UseCache && b.Cache != nil && !b.CacheReadOnly {
		// Cache the intermediates of a successfully validated path.
		for _, c := range out.Path[1:] {
			if c.IsCA && !c.SelfSigned() {
				b.Cache.Add(c)
			}
		}
	}
	return out
}

// poolEntry is one usable certificate from the presented list.
type poolEntry struct {
	cert *certmodel.Certificate
	pos  int // position in the original list
}

// buildPool converts the list into the candidate pool, folding duplicates
// when the policy eliminates them. The leaf (position 0) stays in the pool:
// a duplicated leaf must still be skipped over, at scanning cost.
func (b *Builder) buildPool(list []*certmodel.Certificate) []poolEntry {
	pool := make([]poolEntry, 0, len(list))
	if b.Policy.EliminateDuplicates {
		seen := make(map[string]bool, len(list))
		for i, c := range list {
			fp := c.FingerprintHex()
			if seen[fp] {
				continue
			}
			seen[fp] = true
			pool = append(pool, poolEntry{c, i})
		}
		return pool
	}
	for i, c := range list {
		pool = append(pool, poolEntry{c, i})
	}
	return pool
}

// searcher runs the (possibly backtracking) DFS over issuer choices.
type searcher struct {
	builder *Builder
	pool    []poolEntry
	domain  string
	out     *Outcome
	maxTry  int

	firstPath       []*certmodel.Certificate
	firstValidation validate.Result
	haveFirst       bool
	done            bool
}

func (s *searcher) run(leaf *certmodel.Certificate) {
	s.extend([]*certmodel.Certificate{leaf}, map[string]bool{leaf.FingerprintHex(): true}, 0)
	if s.done {
		return
	}
	// Nothing validated. Report the first complete attempt, or a length
	// failure if even that was impossible.
	if s.haveFirst {
		s.out.Path = s.firstPath
		s.out.Validation = s.firstValidation
		return
	}
	if s.builder.Policy.MaxPathLen > 0 {
		s.out.Err = fmt.Errorf("%w: limit %d", ErrPathTooLong, s.builder.Policy.MaxPathLen)
	}
}

// finish validates a complete candidate path and records it. It returns true
// when the search should stop.
func (s *searcher) finish(path []*certmodel.Certificate) bool {
	s.out.PathsTried++
	res := validate.Path(path, validate.Options{
		Roots:      s.builder.Roots,
		Now:        s.builder.Now,
		Domain:     s.domain,
		Revocation: s.builder.Revocation,
	})
	if res.OK && !s.effectiveLengthOK(path) {
		res = validate.Result{Findings: []validate.Finding{{
			Index:   -1,
			Problem: validate.ProblemPathLenExceeded,
			Detail:  fmt.Sprintf("client limit %d", s.builder.Policy.MaxPathLen),
		}}}
	}
	detail := ""
	if !res.OK && len(res.Findings) > 0 {
		detail = res.Findings[0].String()
	}
	s.recordAttempt(path, res.OK, detail)
	if res.OK || !s.builder.Policy.Backtrack || s.out.PathsTried >= s.maxTry {
		s.out.Path = append([]*certmodel.Certificate(nil), path...)
		s.out.Validation = res
		s.done = true
		return true
	}
	if !s.haveFirst {
		s.firstPath = append([]*certmodel.Certificate(nil), path...)
		s.firstValidation = res
		s.haveFirst = true
	}
	return false
}

// withinLengthLimit reports whether a path of n certificates is acceptable.
func (s *searcher) withinLengthLimit(n int) bool {
	limit := s.builder.Policy.MaxPathLen
	return limit <= 0 || n <= limit
}

// effectiveLengthOK checks the client's path-length limit against the chain
// the client actually verifies: when the path's terminal certificate is not
// itself the anchor but is issued by a store root, that implicit anchor
// counts toward the length.
func (s *searcher) effectiveLengthOK(path []*certmodel.Certificate) bool {
	limit := s.builder.Policy.MaxPathLen
	if limit <= 0 {
		return true
	}
	effective := len(path)
	last := path[len(path)-1]
	if s.builder.Roots != nil && !s.builder.Roots.Contains(last) && len(s.builder.Roots.FindIssuers(last)) > 0 {
		effective++
	}
	return effective <= limit
}

// extend grows the path upward from its last certificate. lastPos is the
// list position of the most recently consumed in-list certificate, used by
// forward-only (non-reordering) policies.
func (s *searcher) extend(path []*certmodel.Certificate, used map[string]bool, lastPos int) {
	if s.done {
		return
	}
	current := path[len(path)-1]

	// A self-signed certificate terminates construction.
	if current.SelfSigned() {
		s.finish(path)
		return
	}

	cands := s.collectCandidates(current, used, lastPos, len(path))
	s.recordStep(current, len(path), cands)

	tried := false
	for _, cand := range cands {
		if s.done {
			return
		}
		if !s.withinLengthLimit(len(path) + 1) {
			// Every extension would blow the limit; terminate with the
			// partial path so validation reports the dangling end —
			// unless nothing has been tried, in which case fall through
			// to the dead-end handling below.
			break
		}
		tried = true
		fp := cand.cert.FingerprintHex()
		used[fp] = true
		next := append(path, cand.cert)
		if cand.terminal {
			if !s.finish(next) && s.builder.Policy.Backtrack {
				delete(used, fp)
				continue
			}
			delete(used, fp)
			return
		}
		s.extend(next, used, cand.nextLastPos(lastPos))
		delete(used, fp)
		if s.done || !s.builder.Policy.Backtrack {
			return
		}
	}
	if tried {
		return
	}

	// Dead end: no candidate issuer anywhere. The client presents what it
	// has; validation will flag the untrusted terminus.
	s.finish(path)
}
