package pathbuild

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/obs"
	"chainchaos/internal/revocation"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/validate"
)

// Sentinel errors for construction-phase failures. Validation-phase failures
// are reported through Outcome.Validation instead.
var (
	// ErrEmptyList: the server presented no certificates.
	ErrEmptyList = errors.New("pathbuild: empty certificate list")
	// ErrInputListTooLong: the presented list exceeds Policy.MaxInputList
	// (GnuTLS's behaviour, finding I-2).
	ErrInputListTooLong = errors.New("pathbuild: certificate list exceeds input limit")
	// ErrSelfSignedLeaf: the first certificate is self-signed and the
	// policy refuses to build from it.
	ErrSelfSignedLeaf = errors.New("pathbuild: self-signed leaf certificate rejected")
	// ErrPathTooLong: no candidate path fits within Policy.MaxPathLen.
	ErrPathTooLong = errors.New("pathbuild: constructed path exceeds length limit")
)

// Outcome reports one construction attempt.
type Outcome struct {
	// Path is the constructed certification path, leaf first, including
	// the trust anchor when one was found. On a construction dead end it
	// holds the longest partial path, so differential analysis can see how
	// far the client got.
	Path []*certmodel.Certificate

	// Validation is the path-validation result for Path. Zero when Err is
	// a construction-phase error.
	Validation validate.Result

	// Err is non-nil for construction-phase refusals (see the sentinel
	// errors above).
	Err error

	// CandidatesConsidered counts issuer candidates examined, the resource
	// metric behind the paper's duplicate/irrelevant-certificate cost
	// observations. It counts presented-list entries a sequential scanner
	// visits per step (all of them under Reorder, the forward tail
	// otherwise), so the metric is independent of how the lookup is
	// implemented internally.
	CandidatesConsidered int

	// PathsTried counts complete candidate paths validated (1 without
	// backtracking).
	PathsTried int

	// AIAFetches counts Authority Information Access retrievals.
	AIAFetches int
}

// OK reports whether construction succeeded and the path validates.
func (o Outcome) OK() bool { return o.Err == nil && o.Validation.OK }

// Builder constructs certification paths under a Policy.
//
// A Builder owns reusable construction scratch (candidate pool, pool index,
// search stacks), so calling Build repeatedly on one Builder runs
// allocation-lean; the differential harness keeps one Builder per
// (shard, profile) for exactly this reason. A Builder is therefore NOT safe
// for concurrent use — share certificates and (sealed) stores across
// goroutines, not Builders.
type Builder struct {
	Policy Policy
	// Roots is the builder's trust store.
	Roots *rootstore.Store
	// Fetcher resolves AIA URIs when the policy enables AIA.
	Fetcher aia.Fetcher
	// Cache is the intermediate cache consulted when the policy enables
	// UseCache. Successful builds populate it, mirroring Firefox.
	Cache *rootstore.Store
	// CacheReadOnly stops successful builds from populating the cache —
	// used to model a fixed preloaded cache (Mozilla ships every
	// CCADB-disclosed intermediate) rather than one that learns during the
	// measurement itself.
	CacheReadOnly bool
	// Now is the validation time; zero disables validity checks.
	Now time.Time
	// Revocation, when non-nil, is consulted during validation — and, for
	// policies with PartialValidation, during candidate selection, the
	// MbedTLS behaviour noted in §3.2.
	Revocation *revocation.List
	// Trace, when non-nil, records every construction decision.
	Trace *Trace
	// Metrics, when non-nil, receives per-build counters (builds,
	// candidates considered, paths tried, AIA fetches, build failures) and
	// a constructed-chain-length histogram. Builds tally into plain
	// builder-local ints (the Builder is single-goroutine, like scratch)
	// and the batch is published every flushEvery builds and on
	// FlushMetrics — per-build atomics on registry-shared counters would
	// ping-pong cache lines across difftest workers.
	Metrics *obs.Registry

	metricsOnce sync.Once
	m           buildMetrics

	// scratch is the builder-owned search state, lazily created on the
	// first Build and reused (cleared, not reallocated) on every later one.
	scratch *searcher
}

// buildMetrics holds the builder's resolved handles plus the builder-local
// tallies batched between flushes; everything no-ops without a registry.
type buildMetrics struct {
	builds     *obs.Counter   // pathbuild.builds
	ok         *obs.Counter   // pathbuild.builds_ok
	candidates *obs.Counter   // pathbuild.candidates: sequential-scan candidates considered
	pathsTried *obs.Counter   // pathbuild.paths_tried
	aiaFetches *obs.Counter   // pathbuild.aia_fetches
	chainLen   *obs.Tally     // pathbuild.chain_length: constructed path lengths

	nBuilds, nOK, nCandidates, nPathsTried, nAIAFetches int64
}

// flushEvery bounds how stale the published pathbuild counters can get:
// long-running builders publish at least every this many builds even if the
// owner never calls FlushMetrics.
const flushEvery = 64

func (b *Builder) metrics() *buildMetrics {
	b.metricsOnce.Do(func() {
		r := b.Metrics
		b.m = buildMetrics{
			builds:     r.Counter("pathbuild.builds"),
			ok:         r.Counter("pathbuild.builds_ok"),
			candidates: r.Counter("pathbuild.candidates"),
			pathsTried: r.Counter("pathbuild.paths_tried"),
			aiaFetches: r.Counter("pathbuild.aia_fetches"),
			chainLen:   r.Histogram("pathbuild.chain_length", obs.SizeBuckets).Tally(),
		}
	})
	return &b.m
}

// record tallies one finished Build locally, publishing every flushEvery-th
// batch.
func (m *buildMetrics) record(out *Outcome) {
	if m.builds == nil {
		return // unwired
	}
	m.nBuilds++
	if out.OK() {
		m.nOK++
	}
	m.nCandidates += int64(out.CandidatesConsidered)
	m.nPathsTried += int64(out.PathsTried)
	m.nAIAFetches += int64(out.AIAFetches)
	if len(out.Path) > 0 {
		m.chainLen.Observe(int64(len(out.Path)))
	}
	if m.nBuilds >= flushEvery {
		m.flush()
	}
}

// flush publishes the local batch into the shared counters and resets it.
func (m *buildMetrics) flush() {
	if m.builds == nil || m.nBuilds == 0 {
		return
	}
	m.builds.Add(m.nBuilds)
	m.ok.Add(m.nOK)
	m.candidates.Add(m.nCandidates)
	m.pathsTried.Add(m.nPathsTried)
	m.aiaFetches.Add(m.nAIAFetches)
	m.chainLen.Flush()
	m.nBuilds, m.nOK, m.nCandidates, m.nPathsTried, m.nAIAFetches = 0, 0, 0, 0, 0
}

// FlushMetrics publishes any batched tallies into the registry. Owners that
// wire Metrics should call it when a builder retires (end of a shard) so the
// final partial batch is not lost; harmless without a registry.
func (b *Builder) FlushMetrics() {
	b.metrics().flush()
}

const defaultMaxAttempts = 32

// searcher returns the builder's reusable search scratch.
func (b *Builder) searcher() *searcher {
	if b.scratch == nil {
		b.scratch = &searcher{
			builder:   b,
			used:      make(map[certmodel.FP]bool, 8),
			poolSeen:  make(map[certmodel.FP]bool, 8),
			bySubject: make(map[certmodel.Name]int32, 8),
			bySKID:    make(map[skidKey]int32, 8),
		}
	}
	return b.scratch
}

// Build constructs and validates a path for the presented list. domain, when
// non-empty, is checked against the leaf during validation.
func (b *Builder) Build(list []*certmodel.Certificate, domain string) Outcome {
	m := b.metrics()
	var out Outcome
	defer m.record(&out)
	if len(list) == 0 {
		out.Err = ErrEmptyList
		return out
	}
	if b.Policy.MaxInputList > 0 && len(list) > b.Policy.MaxInputList {
		out.Err = fmt.Errorf("%w: %d > %d", ErrInputListTooLong, len(list), b.Policy.MaxInputList)
		return out
	}

	leaf := list[0]
	if leaf.SelfSigned() && !b.Policy.AllowSelfSignedLeaf {
		out.Err = ErrSelfSignedLeaf
		return out
	}

	search := b.searcher()
	search.begin(list, domain, &out)
	search.run(leaf)

	if out.Err == nil && len(out.Path) > 0 && out.Validation.OK && b.Policy.UseCache && b.Cache != nil && !b.CacheReadOnly {
		// Cache the intermediates of a successfully validated path.
		for _, c := range out.Path[1:] {
			if c.IsCA && !c.SelfSigned() {
				b.Cache.Add(c)
			}
		}
	}
	return out
}

// poolEntry is one usable certificate from the presented list.
type poolEntry struct {
	cert *certmodel.Certificate
	pos  int // position in the original list
}

// buildPool converts the list into the candidate pool, folding duplicates
// when the policy eliminates them. The leaf (position 0) stays in the pool:
// a duplicated leaf must still be skipped over, at scanning cost. The pool
// slice and dedup set live in the searcher scratch and are reused across
// Build calls.
func (s *searcher) buildPool(list []*certmodel.Certificate) {
	pool := s.poolBuf[:0]
	if s.builder.Policy.EliminateDuplicates {
		clear(s.poolSeen)
		for i, c := range list {
			fp := c.Fingerprint()
			if s.poolSeen[fp] {
				continue
			}
			s.poolSeen[fp] = true
			pool = append(pool, poolEntry{c, i})
		}
	} else {
		for i, c := range list {
			pool = append(pool, poolEntry{c, i})
		}
	}
	s.poolBuf = pool
	s.pool = pool
}

// searcher runs the (possibly backtracking) DFS over issuer choices. One
// searcher is owned by its Builder and reused across Build calls: the pool,
// the pool index, the path stack, the used set and the per-depth candidate
// buffers are cleared — not reallocated — by begin.
type searcher struct {
	builder *Builder
	pool    []poolEntry
	domain  string
	out     *Outcome
	maxTry  int

	// Reusable scratch.

	// poolBuf backs pool; poolSeen dedups it when the policy eliminates
	// duplicates.
	poolBuf  []poolEntry
	poolSeen map[certmodel.FP]bool
	// bySubject/bySKID head per-key chains threaded through nextSubject/
	// nextSKID, indexing pool entries so candidate lookup touches only
	// entries that can match (see indexPool).
	bySubject   map[certmodel.Name]int32
	bySKID      map[skidKey]int32
	nextSubject []int32
	nextSKID    []int32
	// path is the DFS stack of the partial path; used marks the
	// fingerprints on it.
	path []*certmodel.Certificate
	used map[certmodel.FP]bool
	// candStack holds one reusable candidate buffer per search depth, so
	// backtracking frames never share (or reallocate) a shortlist.
	candStack [][]candidate
	// issuerBuf is the reusable buffer handed to rootstore.AppendIssuers.
	// Safe to share across the roots and cache lookups within one step:
	// each is fully consumed (copied into cands) before the other runs.
	issuerBuf []*certmodel.Certificate

	// Per-Build results.
	firstPath       []*certmodel.Certificate
	firstValidation validate.Result
	haveFirst       bool
	done            bool
}

// begin resets the searcher for a new Build call: per-call results are
// zeroed, the candidate pool is rebuilt into the reusable buffers, and the
// pool index is rewired.
func (s *searcher) begin(list []*certmodel.Certificate, domain string, out *Outcome) {
	s.domain = domain
	s.out = out
	s.maxTry = s.builder.Policy.MaxAttempts
	if s.maxTry <= 0 {
		s.maxTry = defaultMaxAttempts
	}
	s.path = s.path[:0]
	clear(s.used)
	s.firstPath = nil
	s.firstValidation = validate.Result{}
	s.haveFirst = false
	s.done = false
	s.buildPool(list)
	s.indexPool()
}

func (s *searcher) run(leaf *certmodel.Certificate) {
	s.path = append(s.path, leaf)
	s.used[leaf.Fingerprint()] = true
	s.extend(0)
	if s.done {
		return
	}
	// Nothing validated. Report the first complete attempt, or a length
	// failure if even that was impossible.
	if s.haveFirst {
		s.out.Path = s.firstPath
		s.out.Validation = s.firstValidation
		return
	}
	if s.builder.Policy.MaxPathLen > 0 {
		s.out.Err = fmt.Errorf("%w: limit %d", ErrPathTooLong, s.builder.Policy.MaxPathLen)
	}
}

// finish validates a complete candidate path and records it. It returns true
// when the search should stop. The recorded paths are fresh copies — the
// live path slice is builder-owned scratch and must never escape.
func (s *searcher) finish(path []*certmodel.Certificate) bool {
	s.out.PathsTried++
	res := validate.Path(path, validate.Options{
		Roots:      s.builder.Roots,
		Now:        s.builder.Now,
		Domain:     s.domain,
		Revocation: s.builder.Revocation,
	})
	if res.OK && !s.effectiveLengthOK(path) {
		res = validate.Result{Findings: []validate.Finding{{
			Index:   -1,
			Problem: validate.ProblemPathLenExceeded,
			Detail:  fmt.Sprintf("client limit %d", s.builder.Policy.MaxPathLen),
		}}}
	}
	detail := ""
	if !res.OK && len(res.Findings) > 0 {
		detail = res.Findings[0].String()
	}
	s.recordAttempt(path, res.OK, detail)
	if res.OK || !s.builder.Policy.Backtrack || s.out.PathsTried >= s.maxTry {
		s.out.Path = append([]*certmodel.Certificate(nil), path...)
		s.out.Validation = res
		s.done = true
		return true
	}
	if !s.haveFirst {
		s.firstPath = append([]*certmodel.Certificate(nil), path...)
		s.firstValidation = res
		s.haveFirst = true
	}
	return false
}

// withinLengthLimit reports whether a path of n certificates is acceptable.
func (s *searcher) withinLengthLimit(n int) bool {
	limit := s.builder.Policy.MaxPathLen
	return limit <= 0 || n <= limit
}

// effectiveLengthOK checks the client's path-length limit against the chain
// the client actually verifies: when the path's terminal certificate is not
// itself the anchor but is issued by a store root, that implicit anchor
// counts toward the length.
func (s *searcher) effectiveLengthOK(path []*certmodel.Certificate) bool {
	limit := s.builder.Policy.MaxPathLen
	if limit <= 0 {
		return true
	}
	effective := len(path)
	last := path[len(path)-1]
	if s.builder.Roots != nil && !s.builder.Roots.Contains(last) && s.builder.Roots.HasIssuer(last) {
		effective++
	}
	return effective <= limit
}

// extend grows s.path upward from its last certificate. lastPos is the
// list position of the most recently consumed in-list certificate, used by
// forward-only (non-reordering) policies. The path stack is pushed/popped in
// place; finish copies whatever escapes into the Outcome.
func (s *searcher) extend(lastPos int) {
	if s.done {
		return
	}
	current := s.path[len(s.path)-1]

	// A self-signed certificate terminates construction.
	if current.SelfSigned() {
		s.finish(s.path)
		return
	}

	cands := s.collectCandidates(current, lastPos, len(s.path))
	s.recordStep(current, len(s.path), cands)

	tried := false
	for i := range cands {
		cand := cands[i]
		if s.done {
			return
		}
		if !s.withinLengthLimit(len(s.path) + 1) {
			// Every extension would blow the limit; terminate with the
			// partial path so validation reports the dangling end —
			// unless nothing has been tried, in which case fall through
			// to the dead-end handling below.
			break
		}
		tried = true
		fp := cand.cert.Fingerprint()
		s.used[fp] = true
		s.path = append(s.path, cand.cert)
		if cand.terminal {
			finished := s.finish(s.path)
			s.path = s.path[:len(s.path)-1]
			delete(s.used, fp)
			if !finished && s.builder.Policy.Backtrack {
				continue
			}
			return
		}
		s.extend(cand.nextLastPos(lastPos))
		s.path = s.path[:len(s.path)-1]
		delete(s.used, fp)
		if s.done || !s.builder.Policy.Backtrack {
			return
		}
	}
	if tried {
		return
	}

	// Dead end: no candidate issuer anywhere. The client presents what it
	// has; validation will flag the untrusted terminus.
	s.finish(s.path)
}
