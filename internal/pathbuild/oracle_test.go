package pathbuild

import (
	"math/rand"
	"testing"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/validate"
)

// oracleExists brute-forces every certificate sequence starting at list[0]
// (plus optional store roots as terminal elements) and reports whether ANY
// validates — the ground truth a complete path builder should match.
func oracleExists(list []*certmodel.Certificate, roots *rootstore.Store, opts validate.Options) bool {
	if len(list) == 0 {
		return false
	}
	var walk func(path []*certmodel.Certificate, used map[int]bool) bool
	walk = func(path []*certmodel.Certificate, used map[int]bool) bool {
		if validate.Path(path, opts).OK {
			return true
		}
		if len(path) > len(list)+2 {
			return false
		}
		for i, cand := range list {
			if used[i] {
				continue
			}
			used[i] = true
			if walk(append(path, cand), used) {
				return true
			}
			delete(used, i)
		}
		// Try appending a store root as terminal.
		for _, root := range roots.All() {
			if walk2 := append(path, root); validate.Path(walk2, opts).OK {
				return true
			}
		}
		return false
	}
	return walk([]*certmodel.Certificate{list[0]}, map[int]bool{0: true})
}

// randomDeployment builds a small random deployment out of a two-hierarchy
// pool, applying random corruption: shuffling, dropping, duplicating and
// injecting strangers.
func randomDeployment(r *rand.Rand, tag string) ([]*certmodel.Certificate, *rootstore.Store) {
	rootA := certmodel.SyntheticRoot("Oracle Root A "+tag, base)
	rootB := certmodel.SyntheticRoot("Oracle Root B "+tag, base)
	caA := certmodel.SyntheticIntermediate("Oracle CA A "+tag, rootA, base)
	caB := certmodel.SyntheticIntermediate("Oracle CA B "+tag, rootB, base)
	var leaf *certmodel.Certificate
	var chain []*certmodel.Certificate
	if r.Intn(2) == 0 {
		leaf = certmodel.SyntheticLeaf("oracle-"+tag+".example", "1", caA, base, base.AddDate(1, 0, 0))
		chain = []*certmodel.Certificate{leaf, caA, rootA}
	} else {
		leaf = certmodel.SyntheticLeaf("oracle-"+tag+".example", "1", caB, base, base.AddDate(1, 0, 0))
		chain = []*certmodel.Certificate{leaf, caB, rootB}
	}

	list := append([]*certmodel.Certificate(nil), chain...)
	// Random corruption.
	switch r.Intn(5) {
	case 0: // reversed
		list = []*certmodel.Certificate{list[0], list[2], list[1]}
	case 1: // drop the intermediate
		list = []*certmodel.Certificate{list[0], list[2]}
	case 2: // duplicate everything once
		list = append(list, list[1], list[2])
	case 3: // inject strangers
		list = append(list, caB, rootB, caA)
	case 4: // keep compliant
	}
	// Random extra shuffle of the tail (never the leaf).
	if len(list) > 2 && r.Intn(2) == 0 {
		tail := list[1:]
		r.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
	}

	var roots *rootstore.Store
	switch r.Intn(3) {
	case 0:
		roots = rootstore.NewWith("oracle", rootA)
	case 1:
		roots = rootstore.NewWith("oracle", rootB)
	default:
		roots = rootstore.NewWith("oracle", rootA, rootB)
	}
	return list, roots
}

// TestOracleAgreement: the recommended (backtracking, reordering) policy
// succeeds exactly when the exhaustive oracle proves a valid path exists.
func TestOracleAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	agree, disagreeBuildWeaker, disagreeBuildStronger := 0, 0, 0
	for i := 0; i < 300; i++ {
		list, roots := randomDeployment(r, string(rune('a'+i%26))+string(rune('0'+i%10)))
		pol := DefaultPolicy()
		pol.AIA = false
		b := &Builder{Policy: pol, Roots: roots, Now: base.AddDate(0, 1, 0)}
		got := b.Build(list, "").OK()
		want := oracleExists(list, roots, validate.Options{Roots: roots, Now: base.AddDate(0, 1, 0)})
		switch {
		case got == want:
			agree++
		case want && !got:
			disagreeBuildWeaker++
			t.Errorf("case %d: oracle finds a valid path the builder misses (list %d certs)", i, len(list))
		default:
			disagreeBuildStronger++
			t.Errorf("case %d: builder validated a path the oracle cannot find", i)
		}
	}
	t.Logf("oracle agreement: %d/%d", agree, 300)
}

// TestPathNeverRepeatsCertificates: the constructed path must never contain
// the same certificate twice, for any corrupted deployment — the usedFP
// invariant that keeps cross-signing cycles finite.
func TestPathNeverRepeatsCertificates(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for i := 0; i < 400; i++ {
		list, roots := randomDeployment(r, "rep"+string(rune('a'+i%26)))
		for _, policy := range []Policy{
			DefaultPolicy(),
			{Name: "fwd", PartialValidation: true},
			{Name: "bt", Reorder: true, Backtrack: true},
		} {
			policy.AIA = false
			b := &Builder{Policy: policy, Roots: roots, Now: base.AddDate(0, 1, 0)}
			out := b.Build(list, "")
			seen := map[string]bool{}
			for _, c := range out.Path {
				fp := c.FingerprintHex()
				if seen[fp] {
					t.Fatalf("case %d policy %s: certificate repeated in path", i, policy.Name)
				}
				seen[fp] = true
			}
		}
	}
}
