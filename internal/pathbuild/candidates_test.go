package pathbuild

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/rootstore"
)

func TestKIDStatus(t *testing.T) {
	root := certmodel.SyntheticRoot("KS Root", base)
	child := certmodel.SyntheticIntermediate("KS Child", root, base)

	if got := kidStatus(root, child); got != 0 {
		t.Errorf("matching KID status = %d, want 0", got)
	}
	noSKID := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: root.Subject, Issuer: root.Subject, Serial: "noskid",
		NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: certmodel.KeyOf(root), SignedBy: certmodel.KeyOf(root),
		OmitSKID: true,
	})
	if got := kidStatus(noSKID, child); got != 1 {
		t.Errorf("absent-SKID status = %d, want 1", got)
	}
	wrong := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: root.Subject, Issuer: root.Subject, Serial: "wrongskid",
		NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: certmodel.NewSyntheticKey("ks-other"), SignedBy: certmodel.KeyOf(root),
	})
	if got := kidStatus(wrong, child); got != 2 {
		t.Errorf("mismatch status = %d, want 2", got)
	}
	noAKID := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "KS NoAKID"}, Issuer: root.Subject,
		Serial: "noakid", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: certmodel.NewSyntheticKey("ks-noakid"), SignedBy: certmodel.KeyOf(root),
		OmitAKID: true,
	})
	if got := kidStatus(root, noAKID); got != 1 {
		t.Errorf("absent-AKID status = %d, want 1", got)
	}
}

func randomRank(r *rand.Rand) rank {
	return rank{
		kid:      r.Intn(3),
		keyUsage: r.Intn(2),
		basic:    r.Intn(2),
		trusted:  r.Intn(2),
		validity: validityKey{
			invalid:  r.Intn(2),
			recency:  int64(r.Intn(5)),
			duration: int64(r.Intn(5)),
		},
		pos: r.Intn(8),
	}
}

// TestQuickRankStrictWeakOrder: less() must be irreflexive, asymmetric and
// transitive — otherwise sort.SliceStable's behaviour is undefined and
// candidate priority becomes nondeterministic.
func TestQuickRankStrictWeakOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomRank(r), randomRank(r), randomRank(r)
		if a.less(a) {
			return false
		}
		if a.less(b) && b.less(a) {
			return false
		}
		if a.less(b) && b.less(c) && !a.less(c) {
			return false
		}
		// Totality on distinct ranks: equal-compare means neither less.
		if !a.less(b) && !b.less(a) && !a.less(c) && !c.less(a) && (b.less(c) != (!c.less(b) && (b != c))) {
			// Weak consistency check only; exact equivalence classes are
			// allowed to tie.
			_ = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRankPrecedence(t *testing.T) {
	// KID outranks everything below it; position is the final tiebreak.
	better := rank{kid: 0, keyUsage: 1, basic: 1, trusted: 1, validity: validityKey{invalid: 1}, pos: 9}
	worse := rank{kid: 1, keyUsage: 0, basic: 0, trusted: 0, validity: validityKey{}, pos: 0}
	if !better.less(worse) {
		t.Error("KID rank must dominate")
	}
	a := rank{pos: 1}
	b := rank{pos: 2}
	if !a.less(b) || b.less(a) {
		t.Error("position tiebreak wrong")
	}
}

func TestCandidateSourcePriority(t *testing.T) {
	// A certificate reachable both from the list and the trust store must
	// be treated as a terminal trust anchor (store wins the dedup).
	root := certmodel.SyntheticRoot("SrcPrio Root", base)
	leaf := certmodel.SyntheticLeaf("srcprio.example", "1", root, base, base.AddDate(1, 0, 0))
	b := &Builder{
		Policy: Policy{Reorder: true},
		Roots:  rootstore.NewWith("srcprio", root),
		Now:    base,
	}
	out := b.Build([]*certmodel.Certificate{leaf, root}, "srcprio.example")
	if !out.OK() {
		t.Fatalf("build failed: %v", out.Validation.Findings)
	}
	if len(out.Path) != 2 {
		t.Errorf("path length = %d", len(out.Path))
	}
}

func TestValidityRankingVP2PrefersLongest(t *testing.T) {
	// Two valid candidates with the same NotBefore: VP2's tiebreak is the
	// longer validity.
	root := certmodel.SyntheticRoot("VP2 Root", base)
	ca := certmodel.SyntheticIntermediate("VP2 CA", root, base)
	longer := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: ca.Subject, Issuer: root.Subject, Serial: "longer",
		NotBefore: ca.NotBefore, NotAfter: ca.NotAfter.AddDate(5, 0, 0),
		Key: certmodel.KeyOf(ca), SignedBy: certmodel.KeyOf(root),
		IsCA: true, BasicConstraintsValid: true,
		KeyUsage: certmodel.KeyUsageCertSign, HasKeyUsage: true,
	})
	leaf := certmodel.SyntheticLeaf("vp2.example", "1", ca, base, base.AddDate(1, 0, 0))

	pol := Policy{Reorder: true, EliminateDuplicates: true, ValidityPref: ValidityMostRecent}
	b := &Builder{Policy: pol, Roots: rootstore.NewWith("vp2", root), Now: base.AddDate(0, 1, 0)}
	out := b.Build([]*certmodel.Certificate{leaf, ca, longer}, "vp2.example")
	if !out.OK() {
		t.Fatal("build failed")
	}
	if !out.Path[1].Equal(longer) {
		t.Errorf("VP2 chose %s, want the longer-validity candidate", out.Path[1].SerialNumber)
	}
}

func TestPolicyStringForms(t *testing.T) {
	if ValidityNone.String() != "-" || ValidityFirstValid.String() != "VP1" || ValidityMostRecent.String() != "VP2" {
		t.Error("validity policy strings wrong")
	}
	if KIDNone.String() != "-" || KIDMatchOrAbsentFirst.String() != "KP1" || KIDMatchFirst.String() != "KP2" {
		t.Error("KID policy strings wrong")
	}
	if ValidityPolicy(9).String() == "" || KIDPolicy(9).String() == "" {
		t.Error("unknown policies must still render")
	}
}
