package pathbuild

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/rootstore"
)

// figureTopologies builds the paper's canonical chain shapes — Figure 2's
// four topologies, a Figure 3-style long duplicate-heavy list, and Figure 4's
// cross-signed multi-path list — with synthetic certificates, each paired
// with a trust store.
func figureTopologies(tag string) []struct {
	name  string
	list  []*certmodel.Certificate
	roots *rootstore.Store
} {
	root := certmodel.SyntheticRoot("Fig Root "+tag, base)
	top := certmodel.SyntheticIntermediate("Fig CA 2 "+tag, root, base)
	issuing := certmodel.SyntheticIntermediate("Fig CA 1 "+tag, top, base)
	leaf := certmodel.SyntheticLeaf("fig."+tag+".example", "1", issuing, base, base.AddDate(1, 0, 0))
	stranger := certmodel.SyntheticRoot("Fig Stranger "+tag, base)

	legacy := certmodel.SyntheticRoot("Fig Legacy "+tag, base.AddDate(-8, 0, 0))
	cross := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: top.Subject, Issuer: legacy.Subject, Serial: "fig-cross-" + tag,
		NotBefore: base, NotAfter: base.AddDate(4, 0, 0),
		Key: certmodel.KeyOf(top), SignedBy: certmodel.KeyOf(legacy),
		IsCA: true, BasicConstraintsValid: true,
		KeyUsage: certmodel.KeyUsageCertSign, HasKeyUsage: true,
	})

	// Figure 3 shape: a pile of stale sibling leaves and duplicate copies
	// before the usable intermediates.
	long := []*certmodel.Certificate{leaf}
	for i := 0; i < 6; i++ {
		stale := certmodel.SyntheticLeaf("fig."+tag+".example", fmt.Sprintf("stale-%d", i),
			issuing, base.AddDate(-2, 0, 0), base.AddDate(-1, 0, 0))
		long = append(long, stale, stale) // bit-identical duplicate copies
	}
	long = append(long, top, issuing, root)

	store := rootstore.NewWith("fig-"+tag, root)
	crossStore := rootstore.NewWith("fig-cross-"+tag, root, legacy)
	// Exercise the sealed read paths too: these stores never grow again.
	store.Seal()
	crossStore.Seal()

	return []struct {
		name  string
		list  []*certmodel.Certificate
		roots *rootstore.Store
	}{
		{"fig2a-compliant", []*certmodel.Certificate{leaf, issuing, top, root}, store},
		{"fig2b-irrelevant", []*certmodel.Certificate{leaf, stranger, issuing, top, root}, store},
		{"fig2c-crosssigned", []*certmodel.Certificate{leaf, issuing, legacy, cross, top, root}, crossStore},
		{"fig2d-duplicated", []*certmodel.Certificate{leaf, issuing, top, root, top, issuing}, store},
		{"fig3-long", long, store},
		{"fig4-multipath", []*certmodel.Certificate{leaf, issuing, cross, top}, crossStore},
	}
}

func oraclePolicies() []Policy {
	chrome := Policy{Name: "chrome-like", Reorder: true, EliminateDuplicates: true,
		ValidityPref: ValidityMostRecent, KIDPref: KIDMatchFirst, KeyUsagePref: true,
		BasicConstraintsPref: true, PreferTrustedRoot: true, Backtrack: true}
	openssl := Policy{Name: "openssl-like", Reorder: true, EliminateDuplicates: true,
		ValidityPref: ValidityFirstValid, KIDPref: KIDMatchOrAbsentFirst}
	mbed := Policy{Name: "mbed-like", PartialValidation: true, AllowSelfSignedLeaf: true}
	rec := DefaultPolicy()
	rec.AIA = false
	return []Policy{chrome, openssl, mbed, rec}
}

// linearCollectOracle reimplements candidate collection as the sequential
// scan the index replaced: fresh seen map, full front-to-back pool walk,
// then ranking. It is the test oracle for collectCandidates.
func linearCollectOracle(s *searcher, current *certmodel.Certificate, lastPos, depth int) ([]candidate, int) {
	b := s.builder
	var cands []candidate
	seen := make(map[certmodel.FP]bool)
	considered := 0

	add := func(cert *certmodel.Certificate, pos int, source candSource, terminal bool) {
		fp := cert.Fingerprint()
		if s.used[fp] || seen[fp] {
			return
		}
		if cert.Equal(current) {
			return
		}
		if b.Policy.PartialValidation {
			if !current.SignatureVerifiedBy(cert) {
				return
			}
			if !b.Now.IsZero() && !cert.ValidAt(b.Now) {
				return
			}
			if b.Revocation.IsRevoked(cert) {
				return
			}
		}
		seen[fp] = true
		cands = append(cands, candidate{cert: cert, pos: pos, source: source, terminal: terminal})
	}

	if b.Roots != nil {
		for _, root := range b.Roots.FindIssuers(current) {
			add(root, -1, sourceRoots, true)
		}
	}
	for _, entry := range s.pool {
		if !b.Policy.Reorder && entry.pos <= lastPos {
			continue
		}
		considered++
		if certmodel.NameIndicatesIssuance(entry.cert, current) {
			add(entry.cert, entry.pos, sourceList, false)
		}
	}
	if b.Policy.UseCache && b.Cache != nil {
		for _, cached := range b.Cache.FindIssuers(current) {
			add(cached, -1, sourceCache, false)
		}
	}
	for i := range cands {
		cands[i].rank = s.rankCandidate(current, cands[i], depth)
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].rank.less(cands[j].rank) })
	return cands, considered
}

// TestPoolIndexOracle: on every Figure 2/3/4 topology, under every policy
// family, for every path tip and forward-only cursor, the indexed
// collectCandidates must return the same ranked slice — and account the same
// CandidatesConsidered — as the sequential scan it replaced.
func TestPoolIndexOracle(t *testing.T) {
	for _, pol := range oraclePolicies() {
		for _, tc := range figureTopologies(pol.Name) {
			b := &Builder{Policy: pol, Roots: tc.roots, Now: base.AddDate(0, 1, 0)}
			var out Outcome
			s := b.searcher()
			s.begin(tc.list, "", &out)
			s.used[tc.list[0].Fingerprint()] = true

			for _, current := range tc.list {
				for lastPos := 0; lastPos <= len(tc.list); lastPos++ {
					before := out.CandidatesConsidered
					got := append([]candidate(nil), s.collectCandidates(current, lastPos, 1)...)
					gotConsidered := out.CandidatesConsidered - before
					want, wantConsidered := linearCollectOracle(s, current, lastPos, 1)

					label := fmt.Sprintf("%s/%s tip=%s lastPos=%d", pol.Name, tc.name, current.Subject.CommonName, lastPos)
					if gotConsidered != wantConsidered {
						t.Fatalf("%s: CandidatesConsidered %d, linear scan %d", label, gotConsidered, wantConsidered)
					}
					if len(got) != len(want) {
						t.Fatalf("%s: %d candidates, linear scan %d", label, len(got), len(want))
					}
					for i := range got {
						g, w := got[i], want[i]
						if g.cert != w.cert || g.pos != w.pos || g.source != w.source || g.terminal != w.terminal || g.rank != w.rank {
							t.Fatalf("%s: candidate %d = {%s pos=%d src=%d term=%v %+v}, linear scan {%s pos=%d src=%d term=%v %+v}",
								label, i,
								g.cert.Subject.CommonName, g.pos, g.source, g.terminal, g.rank,
								w.cert.Subject.CommonName, w.pos, w.source, w.terminal, w.rank)
						}
					}
				}
			}
		}
	}
}

// outcomesEqual compares everything a caller can observe about two Outcomes.
func outcomesEqual(a, b Outcome) bool {
	if (a.Err == nil) != (b.Err == nil) {
		return false
	}
	if a.Err != nil && a.Err.Error() != b.Err.Error() {
		return false
	}
	if a.Validation.OK != b.Validation.OK ||
		len(a.Validation.Findings) != len(b.Validation.Findings) ||
		a.CandidatesConsidered != b.CandidatesConsidered ||
		a.PathsTried != b.PathsTried ||
		a.AIAFetches != b.AIAFetches ||
		len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i].Fingerprint() != b.Path[i].Fingerprint() {
			return false
		}
	}
	return true
}

// TestScratchReuseMatchesFreshBuilder: a Builder reused across many Build
// calls with different lists must behave exactly like a fresh Builder per
// call — no scratch state (pool, index, used set, candidate buffers) may
// leak between calls.
func TestScratchReuseMatchesFreshBuilder(t *testing.T) {
	for _, pol := range oraclePolicies() {
		cases := figureTopologies(pol.Name + "-reuse")
		reused := &Builder{Policy: pol, Now: base.AddDate(0, 1, 0)}
		// Interleave the topologies twice over, so every pairing of
		// consecutive lists (long after short, duplicated after distinct)
		// crosses the reused scratch.
		for round := 0; round < 2; round++ {
			for _, tc := range cases {
				reused.Roots = tc.roots
				got := reused.Build(tc.list, "")
				fresh := &Builder{Policy: pol, Roots: tc.roots, Now: base.AddDate(0, 1, 0)}
				want := fresh.Build(tc.list, "")
				if !outcomesEqual(got, want) {
					t.Errorf("%s/%s round %d: reused builder outcome diverges from fresh builder\nreused: path=%d ok=%v cand=%d tried=%d err=%v\nfresh:  path=%d ok=%v cand=%d tried=%d err=%v",
						pol.Name, tc.name, round,
						len(got.Path), got.Validation.OK, got.CandidatesConsidered, got.PathsTried, got.Err,
						len(want.Path), want.Validation.OK, want.CandidatesConsidered, want.PathsTried, want.Err)
				}
			}
		}
	}
}

// TestBuildOutcomePathIsIndependent: the path returned by Build must be a
// copy, not a view of builder scratch — a later Build on the same Builder
// must not mutate an earlier Outcome.
func TestBuildOutcomePathIsIndependent(t *testing.T) {
	cases := figureTopologies("indep")
	b := &Builder{Policy: DefaultPolicy(), Roots: cases[0].roots, Now: base.AddDate(0, 1, 0)}
	b.Policy.AIA = false

	first := b.Build(cases[0].list, "")
	snapshot := make([]certmodel.FP, len(first.Path))
	for i, c := range first.Path {
		snapshot[i] = c.Fingerprint()
	}
	for _, tc := range cases[1:] {
		b.Roots = tc.roots
		b.Build(tc.list, "")
	}
	if len(first.Path) != len(snapshot) {
		t.Fatalf("earlier outcome path length changed")
	}
	for i, c := range first.Path {
		if c.Fingerprint() != snapshot[i] {
			t.Fatalf("earlier outcome path element %d mutated by a later Build", i)
		}
	}
	if first.Err != nil && !errors.Is(first.Err, ErrPathTooLong) {
		t.Fatalf("unexpected error: %v", first.Err)
	}
}
