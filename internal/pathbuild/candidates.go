package pathbuild

import (
	"bytes"
	"sort"

	"chainchaos/internal/certmodel"
)

// candSource identifies where a candidate issuer came from; lower values are
// preferred when the same certificate is reachable several ways.
type candSource int

const (
	sourceRoots candSource = iota
	sourceList
	sourceCache
	sourceAIA
)

// candidate is one potential issuer of the current certificate.
type candidate struct {
	cert   *certmodel.Certificate
	pos    int // original list position; -1 for out-of-list sources
	source candSource
	// terminal marks trust-store candidates: appending one completes the
	// path even if the certificate is not self-signed (cross-signed roots).
	terminal bool

	rank rank
}

// nextLastPos computes the forward-only cursor after consuming this
// candidate: in-list candidates advance it, out-of-list ones leave it.
func (c candidate) nextLastPos(lastPos int) int {
	if c.source == sourceList && c.pos > lastPos {
		return c.pos
	}
	return lastPos
}

// rank is the composite priority key. Fields are compared in order; smaller
// wins. The precedence — KID agreement, KeyUsage, Basic Constraints, trust
// anchor preference, validity, presented position — follows the empirical
// ordering observed in Chromium (§3.2: KID match first, self-signed next,
// validity last), with each component collapsing to zero when the policy
// disables it.
type rank struct {
	kid      int
	keyUsage int
	basic    int
	trusted  int
	validity validityKey
	pos      int
}

type validityKey struct {
	invalid  int   // 0 = valid at build time
	recency  int64 // negated NotBefore (VP2 only)
	duration int64 // negated validity span (VP2 only)
}

func (r rank) less(o rank) bool {
	if r.kid != o.kid {
		return r.kid < o.kid
	}
	if r.keyUsage != o.keyUsage {
		return r.keyUsage < o.keyUsage
	}
	if r.basic != o.basic {
		return r.basic < o.basic
	}
	if r.trusted != o.trusted {
		return r.trusted < o.trusted
	}
	if r.validity.invalid != o.validity.invalid {
		return r.validity.invalid < o.validity.invalid
	}
	if r.validity.recency != o.validity.recency {
		return r.validity.recency < o.validity.recency
	}
	if r.validity.duration != o.validity.duration {
		return r.validity.duration < o.validity.duration
	}
	return r.pos < o.pos
}

// kidStatus classifies the AKID/SKID agreement between child and candidate
// parent: 0 match, 1 absent (either side lacks the identifier), 2 mismatch.
func kidStatus(parent, child *certmodel.Certificate) int {
	if len(child.AuthorityKeyID) == 0 || len(parent.SubjectKeyID) == 0 {
		return 1
	}
	if bytes.Equal(parent.SubjectKeyID, child.AuthorityKeyID) {
		return 0
	}
	return 2
}

// skidKey is the fixed-size map key for the SKID chain: the first 8 bytes
// of the identifier (zero-padded). Using a prefix instead of the full
// variable-length SKID keeps index construction allocation-free — a
// map[string] insert would copy the byte slice on every pool entry. Prefix
// collisions merely lengthen a chain; every chain entry is re-checked with
// NameIndicatesIssuance (which compares the full identifiers) before use.
type skidKey [8]byte

func skidKeyOf(id []byte) (k skidKey) {
	copy(k[:], id)
	return k
}

// indexPool (re)builds the pool index for the current Build call: a
// subject-DN chain and an SKID chain over the pool entries, so candidate
// lookup touches only the entries that can satisfy NameIndicatesIssuance
// for the path tip — O(matches) instead of O(pool) per step. Chain heads
// live in the reusable bySubject/bySKID maps; links are threaded through the
// nextSubject/nextSKID arrays. Entries are inserted in reverse pool order so
// every chain iterates in ascending pool position, the same visit order as a
// front-to-back sequential scan.
//
// Zero-subject entries never enter the subject chain (the DN criterion
// requires a non-empty issuer name), and SKID-less entries never enter the
// SKID chain, mirroring the guards inside NameIndicatesIssuance.
func (s *searcher) indexPool() {
	clear(s.bySubject)
	clear(s.bySKID)
	n := len(s.pool)
	if cap(s.nextSubject) < n {
		s.nextSubject = make([]int32, n)
		s.nextSKID = make([]int32, n)
	}
	s.nextSubject = s.nextSubject[:n]
	s.nextSKID = s.nextSKID[:n]
	for i := n - 1; i >= 0; i-- {
		c := s.pool[i].cert
		s.nextSubject[i] = -1
		s.nextSKID[i] = -1
		if !c.Subject.IsZero() {
			if head, ok := s.bySubject[c.Subject]; ok {
				s.nextSubject[i] = head
			}
			s.bySubject[c.Subject] = int32(i)
		}
		if len(c.SubjectKeyID) > 0 {
			k := skidKeyOf(c.SubjectKeyID)
			if head, ok := s.bySKID[k]; ok {
				s.nextSKID[i] = head
			}
			s.bySKID[k] = int32(i)
		}
	}
}

// addCandidate appends cert to cands unless it is already on the path,
// already shortlisted, identical to the current tip, or (under partial
// validation) cryptographically unusable. The shortlist is small, so the
// dedup is a linear scan over the cached binary fingerprints rather than a
// per-step map.
func (s *searcher) addCandidate(cands []candidate, current, cert *certmodel.Certificate, pos int, source candSource, terminal bool) []candidate {
	fp := cert.Fingerprint()
	if s.used[fp] {
		return cands
	}
	for i := range cands {
		if cands[i].cert.Fingerprint() == fp {
			return cands
		}
	}
	if cert.Equal(current) {
		return cands
	}
	b := s.builder
	if b.Policy.PartialValidation {
		// MbedTLS-style interleaving: check the signature (and validity,
		// when a clock is set) before accepting the candidate at all.
		if !current.SignatureVerifiedBy(cert) {
			return cands
		}
		if !b.Now.IsZero() && !cert.ValidAt(b.Now) {
			return cands
		}
		if b.Revocation.IsRevoked(cert) {
			return cands
		}
	}
	return append(cands, candidate{cert: cert, pos: pos, source: source, terminal: terminal})
}

// candBuf returns the reusable candidate buffer for a search depth, length
// zero. One buffer per depth, because a frame iterates its shortlist while
// deeper frames collect theirs.
func (s *searcher) candBuf(depth int) []candidate {
	for len(s.candStack) <= depth {
		s.candStack = append(s.candStack, nil)
	}
	return s.candStack[depth][:0]
}

// collectCandidates gathers, filters, deduplicates and ranks the issuer
// candidates for current. depth is the length of the path built so far
// (candidate would become element depth); lastPos is the forward-only cursor
// for non-reordering policies. The returned slice is searcher-owned scratch,
// valid until the next collection at the same depth.
func (s *searcher) collectCandidates(current *certmodel.Certificate, lastPos, depth int) []candidate {
	b := s.builder
	cands := s.candBuf(depth)

	// Trust store first so that a root reachable both ways is flagged
	// terminal.
	if b.Roots != nil {
		s.issuerBuf = b.Roots.AppendIssuers(s.issuerBuf[:0], current)
		for _, root := range s.issuerBuf {
			cands = s.addCandidate(cands, current, root, -1, sourceRoots, true)
		}
	}

	// Presented list, via the pool index. CandidatesConsidered keeps the
	// sequential-scan semantics — every pool entry a front-to-back scanner
	// would visit counts, whether or not the index touches it: reordering
	// policies scan the whole pool, forward-only ones the tail past
	// lastPos (pool positions are strictly increasing).
	if b.Policy.Reorder {
		s.out.CandidatesConsidered += len(s.pool)
	} else {
		first := sort.Search(len(s.pool), func(i int) bool { return s.pool[i].pos > lastPos })
		s.out.CandidatesConsidered += len(s.pool) - first
	}
	if !current.Issuer.IsZero() {
		if head, ok := s.bySubject[current.Issuer]; ok {
			for i := head; i >= 0; i = s.nextSubject[i] {
				entry := s.pool[i]
				if !b.Policy.Reorder && entry.pos <= lastPos {
					continue
				}
				if certmodel.NameIndicatesIssuance(entry.cert, current) {
					cands = s.addCandidate(cands, current, entry.cert, entry.pos, sourceList, false)
				}
			}
		}
	}
	if len(current.AuthorityKeyID) > 0 {
		if head, ok := s.bySKID[skidKeyOf(current.AuthorityKeyID)]; ok {
			for i := head; i >= 0; i = s.nextSKID[i] {
				entry := s.pool[i]
				if !b.Policy.Reorder && entry.pos <= lastPos {
					continue
				}
				if certmodel.NameIndicatesIssuance(entry.cert, current) {
					cands = s.addCandidate(cands, current, entry.cert, entry.pos, sourceList, false)
				}
			}
		}
	}

	// Intermediate cache (Firefox).
	if b.Policy.UseCache && b.Cache != nil {
		s.issuerBuf = b.Cache.AppendIssuers(s.issuerBuf[:0], current)
		for _, cached := range s.issuerBuf {
			cands = s.addCandidate(cands, current, cached, -1, sourceCache, false)
		}
	}

	// AIA fetching, only when nothing local turned up — the behaviour of
	// AIA-capable clients, which treat fetching as the fallback.
	if len(cands) == 0 && b.Policy.AIA && b.Fetcher != nil {
		for _, uri := range current.AIAIssuerURLs {
			s.out.AIAFetches++
			fetched, err := b.Fetcher.Fetch(uri)
			if err != nil {
				continue
			}
			if certmodel.Issued(fetched, current) {
				cands = s.addCandidate(cands, current, fetched, -1, sourceAIA, false)
				break
			}
		}
	}

	for i := range cands {
		cands[i].rank = s.rankCandidate(current, cands[i], depth)
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].rank.less(cands[j].rank) })
	s.candStack[depth] = cands
	return cands
}

// rankCandidate computes the policy-dependent priority key.
func (s *searcher) rankCandidate(current *certmodel.Certificate, cand candidate, depth int) rank {
	b := s.builder
	var r rank

	switch b.Policy.KIDPref {
	case KIDMatchFirst:
		r.kid = kidStatus(cand.cert, current)
	case KIDMatchOrAbsentFirst:
		if kidStatus(cand.cert, current) == 2 {
			r.kid = 1
		}
	}

	if b.Policy.KeyUsagePref && !cand.cert.CanSignCertificates() {
		r.keyUsage = 1
	}

	if b.Policy.BasicConstraintsPref {
		ok := cand.cert.IsCA && cand.cert.BasicConstraintsValid
		if ok && cand.cert.MaxPathLen != certmodel.MaxPathLenUnset {
			// The candidate would sit at path index depth, with depth-1
			// intermediates below it.
			ok = cand.cert.MaxPathLen >= depth-1
		}
		if !ok {
			r.basic = 1
		}
	}

	if b.Policy.PreferTrustedRoot {
		trusted := cand.terminal || cand.cert.SelfSigned()
		if !trusted {
			r.trusted = 1
		}
	}

	switch b.Policy.ValidityPref {
	case ValidityFirstValid:
		if !b.Now.IsZero() && !cand.cert.ValidAt(b.Now) {
			r.validity.invalid = 1
		}
	case ValidityMostRecent:
		if !b.Now.IsZero() && !cand.cert.ValidAt(b.Now) {
			r.validity.invalid = 1
		}
		r.validity.recency = -cand.cert.NotBefore.Unix()
		r.validity.duration = -int64(cand.cert.NotAfter.Sub(cand.cert.NotBefore))
	}

	if cand.pos >= 0 {
		r.pos = cand.pos
	} else {
		// Out-of-list sources sort after in-list candidates of equal
		// priority, in source order.
		r.pos = len(s.pool) + int(cand.source)
	}
	return r
}
