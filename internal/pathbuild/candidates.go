package pathbuild

import (
	"bytes"
	"sort"

	"chainchaos/internal/certmodel"
)

// candSource identifies where a candidate issuer came from; lower values are
// preferred when the same certificate is reachable several ways.
type candSource int

const (
	sourceRoots candSource = iota
	sourceList
	sourceCache
	sourceAIA
)

// candidate is one potential issuer of the current certificate.
type candidate struct {
	cert   *certmodel.Certificate
	pos    int // original list position; -1 for out-of-list sources
	source candSource
	// terminal marks trust-store candidates: appending one completes the
	// path even if the certificate is not self-signed (cross-signed roots).
	terminal bool

	rank rank
}

// nextLastPos computes the forward-only cursor after consuming this
// candidate: in-list candidates advance it, out-of-list ones leave it.
func (c candidate) nextLastPos(lastPos int) int {
	if c.source == sourceList && c.pos > lastPos {
		return c.pos
	}
	return lastPos
}

// rank is the composite priority key. Fields are compared in order; smaller
// wins. The precedence — KID agreement, KeyUsage, Basic Constraints, trust
// anchor preference, validity, presented position — follows the empirical
// ordering observed in Chromium (§3.2: KID match first, self-signed next,
// validity last), with each component collapsing to zero when the policy
// disables it.
type rank struct {
	kid      int
	keyUsage int
	basic    int
	trusted  int
	validity validityKey
	pos      int
}

type validityKey struct {
	invalid  int   // 0 = valid at build time
	recency  int64 // negated NotBefore (VP2 only)
	duration int64 // negated validity span (VP2 only)
}

func (r rank) less(o rank) bool {
	if r.kid != o.kid {
		return r.kid < o.kid
	}
	if r.keyUsage != o.keyUsage {
		return r.keyUsage < o.keyUsage
	}
	if r.basic != o.basic {
		return r.basic < o.basic
	}
	if r.trusted != o.trusted {
		return r.trusted < o.trusted
	}
	if r.validity.invalid != o.validity.invalid {
		return r.validity.invalid < o.validity.invalid
	}
	if r.validity.recency != o.validity.recency {
		return r.validity.recency < o.validity.recency
	}
	if r.validity.duration != o.validity.duration {
		return r.validity.duration < o.validity.duration
	}
	return r.pos < o.pos
}

// kidStatus classifies the AKID/SKID agreement between child and candidate
// parent: 0 match, 1 absent (either side lacks the identifier), 2 mismatch.
func kidStatus(parent, child *certmodel.Certificate) int {
	if len(child.AuthorityKeyID) == 0 || len(parent.SubjectKeyID) == 0 {
		return 1
	}
	if bytes.Equal(parent.SubjectKeyID, child.AuthorityKeyID) {
		return 0
	}
	return 2
}

// collectCandidates gathers, filters, deduplicates and ranks the issuer
// candidates for current. depth is the length of the path built so far
// (candidate would become element depth); lastPos is the forward-only cursor
// for non-reordering policies.
func (s *searcher) collectCandidates(current *certmodel.Certificate, used map[string]bool, lastPos, depth int) []candidate {
	b := s.builder
	var cands []candidate
	seen := make(map[string]bool)

	add := func(cert *certmodel.Certificate, pos int, source candSource, terminal bool) {
		fp := cert.FingerprintHex()
		if used[fp] || seen[fp] {
			return
		}
		if cert.Equal(current) {
			return
		}
		if b.Policy.PartialValidation {
			// MbedTLS-style interleaving: check the signature (and
			// validity, when a clock is set) before accepting the
			// candidate at all.
			if !current.SignatureVerifiedBy(cert) {
				return
			}
			if !b.Now.IsZero() && !cert.ValidAt(b.Now) {
				return
			}
			if b.Revocation.IsRevoked(cert) {
				return
			}
		}
		seen[fp] = true
		cands = append(cands, candidate{cert: cert, pos: pos, source: source, terminal: terminal})
	}

	// Trust store first so that a root reachable both ways is flagged
	// terminal.
	if b.Roots != nil {
		for _, root := range b.Roots.FindIssuers(current) {
			add(root, -1, sourceRoots, true)
		}
	}

	// Presented list.
	for _, entry := range s.pool {
		if !b.Policy.Reorder && entry.pos <= lastPos {
			continue
		}
		s.out.CandidatesConsidered++
		if certmodel.NameIndicatesIssuance(entry.cert, current) {
			add(entry.cert, entry.pos, sourceList, false)
		}
	}

	// Intermediate cache (Firefox).
	if b.Policy.UseCache && b.Cache != nil {
		for _, cached := range b.Cache.FindIssuers(current) {
			add(cached, -1, sourceCache, false)
		}
	}

	// AIA fetching, only when nothing local turned up — the behaviour of
	// AIA-capable clients, which treat fetching as the fallback.
	if len(cands) == 0 && b.Policy.AIA && b.Fetcher != nil {
		for _, uri := range current.AIAIssuerURLs {
			s.out.AIAFetches++
			fetched, err := b.Fetcher.Fetch(uri)
			if err != nil {
				continue
			}
			if certmodel.Issued(fetched, current) {
				add(fetched, -1, sourceAIA, false)
				break
			}
		}
	}

	for i := range cands {
		cands[i].rank = s.rankCandidate(current, cands[i], depth)
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].rank.less(cands[j].rank) })
	return cands
}

// rankCandidate computes the policy-dependent priority key.
func (s *searcher) rankCandidate(current *certmodel.Certificate, cand candidate, depth int) rank {
	b := s.builder
	var r rank

	switch b.Policy.KIDPref {
	case KIDMatchFirst:
		r.kid = kidStatus(cand.cert, current)
	case KIDMatchOrAbsentFirst:
		if kidStatus(cand.cert, current) == 2 {
			r.kid = 1
		}
	}

	if b.Policy.KeyUsagePref && !cand.cert.CanSignCertificates() {
		r.keyUsage = 1
	}

	if b.Policy.BasicConstraintsPref {
		ok := cand.cert.IsCA && cand.cert.BasicConstraintsValid
		if ok && cand.cert.MaxPathLen != certmodel.MaxPathLenUnset {
			// The candidate would sit at path index depth, with depth-1
			// intermediates below it.
			ok = cand.cert.MaxPathLen >= depth-1
		}
		if !ok {
			r.basic = 1
		}
	}

	if b.Policy.PreferTrustedRoot {
		trusted := cand.terminal || cand.cert.SelfSigned()
		if !trusted {
			r.trusted = 1
		}
	}

	switch b.Policy.ValidityPref {
	case ValidityFirstValid:
		if !b.Now.IsZero() && !cand.cert.ValidAt(b.Now) {
			r.validity.invalid = 1
		}
	case ValidityMostRecent:
		if !b.Now.IsZero() && !cand.cert.ValidAt(b.Now) {
			r.validity.invalid = 1
		}
		r.validity.recency = -cand.cert.NotBefore.Unix()
		r.validity.duration = -int64(cand.cert.NotAfter.Sub(cand.cert.NotBefore))
	}

	if cand.pos >= 0 {
		r.pos = cand.pos
	} else {
		// Out-of-list sources sort after in-list candidates of equal
		// priority, in source order.
		r.pos = len(s.pool) + int(cand.source)
	}
	return r
}
