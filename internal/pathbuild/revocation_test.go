package pathbuild

import (
	"testing"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/revocation"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/validate"
)

// addTrustPKI reproduces the AddTrust-2020 class of incident the paper's
// introduction cites, with revocation instead of expiry: the intermediate's
// key is certified twice — once by a revoked certificate, once by a healthy
// cross-signed one. Clients that only find the revoked variant lose the
// site; backtracking (or revocation-aware selection) keeps it reachable.
type addTrustPKI struct {
	rootA, rootB   *certmodel.Certificate
	revoked, cross *certmodel.Certificate
	leaf           *certmodel.Certificate
	roots          *rootstore.Store
	crl            *revocation.List
}

func newAddTrustPKI() *addTrustPKI {
	rootA := certmodel.SyntheticRoot("AddTrust Root A", base)
	rootB := certmodel.SyntheticRoot("AddTrust Root B", base)
	interKey := certmodel.NewSyntheticKey("addtrust-inter")
	subject := certmodel.Name{CommonName: "AddTrust Intermediate CA"}
	mk := func(parent *certmodel.Certificate, serial string) *certmodel.Certificate {
		return certmodel.NewSynthetic(certmodel.SyntheticConfig{
			Subject: subject, Issuer: parent.Subject, Serial: serial,
			NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
			Key: interKey, SignedBy: certmodel.KeyOf(parent),
			IsCA: true, BasicConstraintsValid: true,
			KeyUsage: certmodel.KeyUsageCertSign, HasKeyUsage: true,
		})
	}
	bad := mk(rootA, "revoked-variant")
	good := mk(rootB, "healthy-variant")
	leaf := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "addtrust.example"}, Issuer: subject,
		Serial: "leaf", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: certmodel.NewSyntheticKey("addtrust-leaf"), SignedBy: interKey,
		DNSNames: []string{"addtrust.example"},
	})
	crl := revocation.NewList()
	crl.Revoke(bad)
	return &addTrustPKI{
		rootA: rootA, rootB: rootB, revoked: bad, cross: good, leaf: leaf,
		roots: rootstore.NewWith("addtrust", rootA, rootB),
		crl:   crl,
	}
}

func (p *addTrustPKI) list() []*certmodel.Certificate {
	// The revoked variant is presented first, as stale deployments did.
	return []*certmodel.Certificate{p.leaf, p.revoked, p.cross}
}

func TestRevokedPathFailsValidation(t *testing.T) {
	p := newAddTrustPKI()
	res := validate.Path([]*certmodel.Certificate{p.leaf, p.revoked, p.rootA},
		validate.Options{Roots: p.roots, Now: base, Revocation: p.crl})
	if res.OK || !res.Has(validate.ProblemRevoked) {
		t.Errorf("revoked path result = %+v", res)
	}
	// Without the CRL the same path is fine.
	res = validate.Path([]*certmodel.Certificate{p.leaf, p.revoked, p.rootA},
		validate.Options{Roots: p.roots, Now: base})
	if !res.OK {
		t.Errorf("CRL-less validation failed: %v", res.Findings)
	}
}

func TestBacktrackingRecoversFromRevocation(t *testing.T) {
	p := newAddTrustPKI()

	naive := &Builder{
		Policy:     Policy{Reorder: true, EliminateDuplicates: true},
		Roots:      p.roots,
		Now:        base,
		Revocation: p.crl,
	}
	out := naive.Build(p.list(), "addtrust.example")
	if out.OK() {
		t.Fatal("naive client should pick the revoked variant and fail")
	}
	if !out.Validation.Has(validate.ProblemRevoked) {
		t.Errorf("failure should be the revocation: %v", out.Validation.Findings)
	}

	bt := naive
	btPolicy := naive.Policy
	btPolicy.Backtrack = true
	bt = &Builder{Policy: btPolicy, Roots: p.roots, Now: base, Revocation: p.crl}
	out = bt.Build(p.list(), "addtrust.example")
	if !out.OK() {
		t.Fatalf("backtracking client failed: %v", out.Validation.Findings)
	}
	foundCross := false
	for _, c := range out.Path {
		if c.Equal(p.cross) {
			foundCross = true
		}
		if c.Equal(p.revoked) {
			t.Error("final path contains the revoked certificate")
		}
	}
	if !foundCross {
		t.Error("final path should route through the healthy cross-signed variant")
	}
}

func TestPartialValidationSkipsRevokedCandidates(t *testing.T) {
	p := newAddTrustPKI()
	// MbedTLS-style: no backtracking, but revocation is checked during
	// candidate selection, so the revoked variant is never chosen.
	mbed := &Builder{
		Policy:     Policy{Reorder: true, PartialValidation: true},
		Roots:      p.roots,
		Now:        base,
		Revocation: p.crl,
	}
	out := mbed.Build(p.list(), "addtrust.example")
	if !out.OK() {
		t.Fatalf("revocation-aware selection failed: %v", out.Validation.Findings)
	}
	for _, c := range out.Path {
		if c.Equal(p.revoked) {
			t.Error("revocation-aware selection picked the revoked variant")
		}
	}
}
