package pathbuild

import (
	"fmt"
	"strings"
	"sync"

	"chainchaos/internal/certmodel"
)

// Trace records the builder's decisions — which candidates were considered
// at each step, how they ranked, which was chosen, and why paths were
// accepted or abandoned. It exists for the same reason the paper had to
// reverse-engineer client behaviour from source code and probes: chain
// construction is invisible in the final verdict. Attach one to a Builder to
// make it visible.
type Trace struct {
	mu     sync.Mutex
	Events []TraceEvent
}

// TraceEventKind classifies a trace event.
type TraceEventKind int

const (
	// TraceStep: candidates were collected for the path's current tip.
	TraceStep TraceEventKind = iota
	// TraceAttempt: a complete candidate path was validated.
	TraceAttempt
	// TraceDeadEnd: no candidate issuer existed anywhere.
	TraceDeadEnd
)

// TraceCandidate describes one ranked candidate.
type TraceCandidate struct {
	Subject  certmodel.Name
	Serial   string
	Source   string // "list", "roots", "cache", "aia"
	Position int    // list position, -1 otherwise
	Chosen   bool   // first in rank order
}

// TraceEvent is one recorded decision.
type TraceEvent struct {
	Kind TraceEventKind
	// Depth is the current path length when the event fired.
	Depth int
	// Tip is the certificate whose issuer was being sought (TraceStep /
	// TraceDeadEnd) or the path's terminal certificate (TraceAttempt).
	Tip certmodel.Name
	// Candidates is the ranked shortlist (TraceStep only).
	Candidates []TraceCandidate
	// Accepted reports validation success (TraceAttempt only).
	Accepted bool
	// Detail carries the failure reason for rejected attempts.
	Detail string
}

// String renders the event as one log line.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceStep:
		parts := make([]string, 0, len(e.Candidates))
		for _, c := range e.Candidates {
			mark := ""
			if c.Chosen {
				mark = "*"
			}
			parts = append(parts, fmt.Sprintf("%s%s(%s)", mark, c.Subject.CommonName, c.Source))
		}
		return fmt.Sprintf("step depth=%d tip=%q candidates=[%s]", e.Depth, e.Tip.CommonName, strings.Join(parts, " "))
	case TraceAttempt:
		verdict := "rejected"
		if e.Accepted {
			verdict = "accepted"
		}
		s := fmt.Sprintf("attempt depth=%d terminal=%q %s", e.Depth, e.Tip.CommonName, verdict)
		if e.Detail != "" {
			s += ": " + e.Detail
		}
		return s
	case TraceDeadEnd:
		return fmt.Sprintf("dead-end depth=%d tip=%q", e.Depth, e.Tip.CommonName)
	default:
		return fmt.Sprintf("event(%d)", int(e.Kind))
	}
}

// String renders the whole trace, one event per line.
func (t *Trace) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	lines := make([]string, len(t.Events))
	for i, e := range t.Events {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// add appends an event; nil traces swallow everything so call sites need no
// guards.
func (t *Trace) add(e TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Events = append(t.Events, e)
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.Events)
}

func sourceName(s candSource) string {
	switch s {
	case sourceRoots:
		return "roots"
	case sourceList:
		return "list"
	case sourceCache:
		return "cache"
	case sourceAIA:
		return "aia"
	default:
		return "?"
	}
}

// recordStep logs a candidate-collection event.
func (s *searcher) recordStep(current *certmodel.Certificate, depth int, cands []candidate) {
	if s.builder.Trace == nil {
		return
	}
	ev := TraceEvent{Kind: TraceStep, Depth: depth, Tip: current.Subject}
	if len(cands) == 0 {
		ev.Kind = TraceDeadEnd
		s.builder.Trace.add(ev)
		return
	}
	for i, c := range cands {
		ev.Candidates = append(ev.Candidates, TraceCandidate{
			Subject:  c.cert.Subject,
			Serial:   c.cert.SerialNumber,
			Source:   sourceName(c.source),
			Position: c.pos,
			Chosen:   i == 0,
		})
	}
	s.builder.Trace.add(ev)
}

// recordAttempt logs a path-validation event.
func (s *searcher) recordAttempt(path []*certmodel.Certificate, accepted bool, detail string) {
	if s.builder.Trace == nil {
		return
	}
	s.builder.Trace.add(TraceEvent{
		Kind:     TraceAttempt,
		Depth:    len(path),
		Tip:      path[len(path)-1].Subject,
		Accepted: accepted,
		Detail:   detail,
	})
}
