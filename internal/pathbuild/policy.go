// Package pathbuild is the paper's primary object of study implemented as a
// library: a certificate path construction engine whose behaviour is fully
// described by a Policy. Every capability the paper tests (Table 2) and
// every behavioural difference it observes between TLS implementations
// (Table 9) corresponds to a Policy knob, so the eight client models in
// internal/clients are just eight Policy values.
//
// Construction is forward: starting from the leaf the engine repeatedly
// selects an issuer for the current certificate from the server-provided
// list, the intermediate cache, the trust store, or AIA fetching, ranks
// competing candidates according to the policy's priority preferences, and —
// when the policy backtracks — explores alternatives until a candidate path
// validates.
package pathbuild

import "fmt"

// ValidityPolicy is how a builder ranks candidate issuers by their validity
// period (Table 9's VP column).
type ValidityPolicy int

const (
	// ValidityNone: validity does not influence candidate order.
	ValidityNone ValidityPolicy = iota
	// ValidityFirstValid (VP1): currently-valid candidates are preferred,
	// otherwise the presented order decides (OpenSSL, MbedTLS, Firefox).
	ValidityFirstValid
	// ValidityMostRecent (VP2): among valid candidates the most recently
	// issued wins, ties broken by the longest validity (CryptoAPI and the
	// browsers).
	ValidityMostRecent
)

// String returns the paper's shorthand for the policy.
func (v ValidityPolicy) String() string {
	switch v {
	case ValidityNone:
		return "-"
	case ValidityFirstValid:
		return "VP1"
	case ValidityMostRecent:
		return "VP2"
	default:
		return fmt.Sprintf("VP(%d)", int(v))
	}
}

// KIDPolicy is how a builder ranks candidates by Authority/Subject Key
// Identifier agreement (Table 9's KP column).
type KIDPolicy int

const (
	// KIDNone: the KID does not influence candidate order (MbedTLS,
	// Firefox — first candidate wins).
	KIDNone KIDPolicy = iota
	// KIDMatchOrAbsentFirst (KP1): a matching or absent KID outranks a
	// mismatch; match and absence tie (OpenSSL, GnuTLS, Safari).
	KIDMatchOrAbsentFirst
	// KIDMatchFirst (KP2): match > absent > mismatch (CryptoAPI, Chrome,
	// Edge).
	KIDMatchFirst
)

// String returns the paper's shorthand for the policy.
func (k KIDPolicy) String() string {
	switch k {
	case KIDNone:
		return "-"
	case KIDMatchOrAbsentFirst:
		return "KP1"
	case KIDMatchFirst:
		return "KP2"
	default:
		return fmt.Sprintf("KP(%d)", int(k))
	}
}

// Policy is the complete behavioural description of a chain-building client.
type Policy struct {
	// Name identifies the policy in reports ("OpenSSL", "Chrome", ...).
	Name string

	// Reorder: the builder may select issuers anywhere in the presented
	// list. Without it the search is forward-only from the last consumed
	// position — which still skips irrelevant certificates (so redundancy
	// elimination holds) but cannot look backwards, reproducing MbedTLS's
	// failures on reversed chains (Table 9 row 1, finding I-1).
	Reorder bool

	// EliminateDuplicates folds bit-identical copies before construction.
	// Clients without it (MbedTLS) scan every copy, which the cost
	// accounting in Outcome.CandidatesConsidered makes visible.
	EliminateDuplicates bool

	// AIA enables fetching missing issuers through the Authority
	// Information Access extension.
	AIA bool

	// UseCache consults (and populates) an intermediate-certificate cache —
	// Firefox's substitute for AIA fetching.
	UseCache bool

	ValidityPref ValidityPolicy
	KIDPref      KIDPolicy

	// KeyUsagePref (KUP): candidates with a correct or absent KeyUsage
	// outrank candidates whose KeyUsage cannot sign certificates.
	KeyUsagePref bool

	// BasicConstraintsPref (BP): candidates whose Basic Constraints (CA
	// flag and pathLenConstraint) permit the current chain position
	// outrank violating candidates.
	BasicConstraintsPref bool

	// PreferTrustedRoot ranks candidates that are trust anchors (or
	// self-signed) above ordinary intermediates, the §6.2 recommendation
	// and Chromium's observed behaviour.
	PreferTrustedRoot bool

	// MaxPathLen caps the length of the constructed path, counting every
	// certificate including leaf and root; 0 means unlimited. Table 9 row
	// 8 measured: MbedTLS 10, CryptoAPI 13, Edge 21, Firefox 8.
	MaxPathLen int

	// MaxInputList caps the size of the presented list itself — GnuTLS's
	// unusual limit of 16, the cause of finding I-2; 0 means unlimited.
	MaxInputList int

	// AllowSelfSignedLeaf: a self-signed server certificate may serve as
	// the start of construction (MbedTLS, Safari); otherwise construction
	// refuses outright.
	AllowSelfSignedLeaf bool

	// Backtrack: when a completed candidate path fails validation, resume
	// the search at the most recent choice point (CryptoAPI and the
	// browsers; the lack of it is finding I-3).
	Backtrack bool

	// PartialValidation verifies signatures and validity while selecting
	// candidates, discarding failures immediately — MbedTLS's interleaved
	// construction/validation noted in §3.2.
	PartialValidation bool

	// MaxAttempts bounds how many complete candidate paths a backtracking
	// search may try; 0 means the default of 32.
	MaxAttempts int
}

// DefaultPolicy returns a fully capable builder: reordering, duplicate
// elimination, AIA, all priority preferences, trusted-root preference and
// backtracking — the paper's §6 recommendations in one value.
func DefaultPolicy() Policy {
	return Policy{
		Name:                 "recommended",
		Reorder:              true,
		EliminateDuplicates:  true,
		AIA:                  true,
		ValidityPref:         ValidityMostRecent,
		KIDPref:              KIDMatchFirst,
		KeyUsagePref:         true,
		BasicConstraintsPref: true,
		PreferTrustedRoot:    true,
		Backtrack:            true,
	}
}
