package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

var testEpoch = time.Date(2026, time.January, 1, 0, 0, 0, 0, time.UTC)

func TestDelayCappedExponential(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestDelayDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(0); got != 50*time.Millisecond {
		t.Errorf("default base delay = %v", got)
	}
	if got := p.Delay(20); got != 2*time.Second {
		t.Errorf("default cap = %v", got)
	}
	if p.MaxAttempts() != 1 {
		t.Errorf("zero policy attempts = %d, want 1", p.MaxAttempts())
	}
}

func TestDelayJitterSeededAndBounded(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5, Seed: 7}
	q := p // identical fields -> identical schedule
	for attempt := 0; attempt < 6; attempt++ {
		d := p.Delay(attempt)
		if d != q.Delay(attempt) {
			t.Fatalf("jitter not deterministic at attempt %d", attempt)
		}
		full := Policy{BaseDelay: p.BaseDelay, MaxDelay: p.MaxDelay}.Delay(attempt)
		if d > full || d < full/2 {
			t.Errorf("Delay(%d) = %v outside [%v, %v]", attempt, d, full/2, full)
		}
	}
	other := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5, Seed: 8}
	same := true
	for attempt := 0; attempt < 6; attempt++ {
		if other.Delay(attempt) != p.Delay(attempt) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter schedules")
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	clock := NewFakeClock(testEpoch)
	p := Policy{Attempts: 5, BaseDelay: 10 * time.Millisecond, Clock: clock}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls <= 2 {
			return fmt.Errorf("wrap: %w", syscall.ECONNRESET)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	sleeps := clock.Sleeps()
	if len(sleeps) != 2 || sleeps[0] != p.Delay(0) || sleeps[1] != p.Delay(1) {
		t.Errorf("sleeps = %v, want the policy's first two delays", sleeps)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	clock := NewFakeClock(testEpoch)
	p := Policy{Attempts: 5, Clock: clock}
	calls := 0
	permanent := errors.New("bad certificate")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) || calls != 1 {
		t.Errorf("err = %v, calls = %d; want one non-retried attempt", err, calls)
	}
	if len(clock.Sleeps()) != 0 {
		t.Errorf("slept %v for a permanent error", clock.Sleeps())
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	clock := NewFakeClock(testEpoch)
	p := Policy{Attempts: 3, Clock: clock}
	calls := 0
	transient := fmt.Errorf("still down: %w", syscall.ECONNREFUSED)
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return transient
	})
	if !errors.Is(err, syscall.ECONNREFUSED) || calls != 3 {
		t.Errorf("err = %v, calls = %d", err, calls)
	}
	if len(clock.Sleeps()) != 2 {
		t.Errorf("sleeps = %v, want 2", clock.Sleeps())
	}
}

func TestDoRespectsCancellation(t *testing.T) {
	clock := NewFakeClock(testEpoch)
	p := Policy{Attempts: 10, Clock: clock}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	transient := fmt.Errorf("flaky: %w", syscall.ECONNRESET)
	err := p.Do(ctx, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return transient
	})
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("Do returned %v, want the operation's last error", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want cancellation to stop the loop at 2", calls)
	}
}

func TestSleepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("Sleep on cancelled ctx = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("cancelled Sleep blocked %v", elapsed)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Errorf("zero Sleep = %v", err)
	}
}

func TestFakeClock(t *testing.T) {
	clock := NewFakeClock(testEpoch)
	if !clock.Now().Equal(testEpoch) {
		t.Error("start time wrong")
	}
	if err := clock.Sleep(context.Background(), time.Minute); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	if got := clock.Now(); !got.Equal(testEpoch.Add(time.Minute + time.Second)) {
		t.Errorf("Now = %v", got)
	}
	if clock.SleptTotal() != time.Minute {
		t.Errorf("SleptTotal = %v", clock.SleptTotal())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := clock.Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("fake Sleep on cancelled ctx = %v", err)
	}
	if clock.SleptTotal() != time.Minute {
		t.Error("cancelled sleep was recorded")
	}
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{fmt.Errorf("scan: %w", context.Canceled), false},
		{context.DeadlineExceeded, true},
		{syscall.ECONNREFUSED, true},
		{fmt.Errorf("dial: %w", syscall.ECONNRESET), true},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{errors.New("x509: certificate signed by unknown authority"), false},
		{&net.OpError{Op: "dial", Err: &timeoutErr{}}, true},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestIsTemporaryAccept(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{net.ErrClosed, false},
		{fmt.Errorf("accept: %w", net.ErrClosed), false},
		{syscall.EMFILE, true},
		{fmt.Errorf("accept: %w", syscall.ENFILE), true},
		{syscall.ECONNABORTED, true},
		{&timeoutErr{}, true},
		{errors.New("permanent listener damage"), false},
	}
	for _, c := range cases {
		if got := IsTemporaryAccept(c.err); got != c.want {
			t.Errorf("IsTemporaryAccept(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// timeoutErr implements net.Error with Timeout()=true.
type timeoutErr struct{}

func (*timeoutErr) Error() string   { return "i/o timeout" }
func (*timeoutErr) Timeout() bool   { return true }
func (*timeoutErr) Temporary() bool { return true }
