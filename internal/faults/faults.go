// Package faults is the repository's failure substrate: a deterministic
// retry policy (bounded attempts, capped exponential backoff, seeded jitter),
// context-aware sleeping, and an injectable clock so every flaky-network
// scenario the measurement must survive — dead AIA URIs, stalled handshakes,
// transient accept errors — can be provoked and re-run in tests without a
// single real sleep.
//
// The paper's substrate is the hostile live Internet (88 chains with dead
// AIA URIs in §4.3, two vantages partly to survive transient scan loss);
// this package is how the loopback reproduction stops assuming a polite
// network.
package faults

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"syscall"
	"time"
)

// Clock abstracts time for retry and throttling code. Production code uses
// Wall(); tests inject a *FakeClock so backoff schedules are asserted, not
// waited out.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	return Sleep(ctx, d)
}

// Wall returns the real-time clock.
func Wall() Clock { return wallClock{} }

// Sleep is a context-aware time.Sleep: it returns nil after d has elapsed,
// or ctx.Err() as soon as the context is cancelled. Unlike time.Sleep it
// never strands a goroutine sleeping off debt for a cancelled operation.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// FakeClock is a deterministic Clock for tests: Sleep advances the fake
// time instantly and records the requested duration instead of blocking.
// Safe for concurrent use.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

// NewFakeClock creates a fake clock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the fake time forward without recording a sleep.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Sleep records d, advances the fake time by d and returns immediately. A
// cancelled context still wins: nothing is recorded and ctx.Err() is
// returned, mirroring the wall clock's contract.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
	return nil
}

// Sleeps returns a copy of every duration passed to Sleep, in order.
func (c *FakeClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

// SleptTotal returns the sum of all recorded sleeps.
func (c *FakeClock) SleptTotal() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total time.Duration
	for _, d := range c.sleeps {
		total += d
	}
	return total
}

// Policy is a retry policy: how many times to attempt an operation, how long
// to back off between attempts, and which errors are worth retrying. The
// zero value means "one attempt, no retry", so embedding a Policy in a
// config struct costs callers nothing until they opt in.
type Policy struct {
	// Attempts is the total number of tries (first attempt included).
	// Values <= 1 mean a single attempt.
	Attempts int
	// BaseDelay is the backoff before the second attempt (default 50ms
	// when retries are enabled).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 2s).
	MaxDelay time.Duration
	// Multiplier scales the delay between attempts (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay randomized away, in [0,1]. A
	// delay d becomes d - uniform(0, d*Jitter), derived deterministically
	// from Seed and the attempt number.
	Jitter float64
	// Seed drives the jitter; two policies with equal fields produce
	// identical backoff schedules.
	Seed int64
	// Retryable classifies errors; nil means IsTransient.
	Retryable func(error) bool
	// Clock is the time source; nil means the wall clock.
	Clock Clock
}

// MaxAttempts returns the effective attempt budget (always >= 1).
func (p Policy) MaxAttempts() int {
	if p.Attempts <= 1 {
		return 1
	}
	return p.Attempts
}

func (p Policy) clock() Clock {
	if p.Clock != nil {
		return p.Clock
	}
	return Wall()
}

func (p Policy) retryable(err error) bool {
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return IsTransient(err)
}

// Delay returns the backoff after the given 0-based failed attempt:
// BaseDelay * Multiplier^attempt, capped at MaxDelay, minus seeded jitter.
// It is a pure function of the policy and the attempt number.
func (p Policy) Delay(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// splitmix64 of (Seed, attempt) -> uniform fraction in [0,1).
		frac := float64(splitmix64(uint64(p.Seed)+uint64(attempt)*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
		d -= d * j * frac
	}
	return time.Duration(d)
}

// Do runs op up to MaxAttempts times, sleeping Delay(i) between attempts on
// the policy's clock. It stops early when op succeeds, when the error is not
// retryable, or when ctx is cancelled (including mid-backoff); the last
// error from op is returned, never the bare context error from the sleep —
// callers keep the underlying cause.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.MaxAttempts()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		lastErr = op(ctx)
		if lastErr == nil {
			return nil
		}
		if attempt+1 >= attempts || !p.retryable(lastErr) || ctx.Err() != nil {
			return lastErr
		}
		if err := p.clock().Sleep(ctx, p.Delay(attempt)); err != nil {
			return lastErr
		}
	}
	return lastErr
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// IsTransient reports whether err looks like a transient network failure
// worth retrying: timeouts, refused/reset/aborted connections, broken pipes,
// and abrupt EOFs (a peer that accepted and then reset mid-handshake).
// Context cancellation is never transient — the caller asked to stop.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// A per-attempt deadline; a fresh attempt gets a fresh one.
		return true
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return true
	}
	for _, target := range []error{
		syscall.ECONNREFUSED, syscall.ECONNRESET, syscall.ECONNABORTED,
		syscall.EPIPE, syscall.ETIMEDOUT, syscall.EHOSTUNREACH,
		syscall.ENETUNREACH,
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	return false
}

// IsTemporaryAccept reports whether a net.Listener.Accept error is worth
// retrying with backoff rather than abandoning the listener: timeouts and
// resource-exhaustion errors (EMFILE/ENFILE — the classic mid-study killer),
// plus connections aborted before accept. A closed listener is never
// temporary.
func IsTemporaryAccept(err error) bool {
	if err == nil || errors.Is(err, net.ErrClosed) {
		return false
	}
	for _, target := range []error{
		syscall.EMFILE, syscall.ENFILE, syscall.ENOBUFS, syscall.ENOMEM,
		syscall.ECONNABORTED, syscall.EINTR,
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return true
	}
	// Some wrapped listeners only expose the legacy Temporary signal.
	var terr interface{ Temporary() bool }
	if errors.As(err, &terr) {
		return terr.Temporary()
	}
	return false
}
