package experiments

import (
	"fmt"

	"chainchaos/internal/compliance"
	"chainchaos/internal/report"
)

// LeafPlacement reproduces Table 3: where the end-entity certificate sits in
// the deployed list.
func (e *Env) LeafPlacement() *report.Table {
	reports := e.Reports()
	total := len(reports)
	counts := map[compliance.LeafPlacement]int{}
	for _, r := range reports {
		counts[r.Leaf]++
	}
	t := report.New(fmt.Sprintf("Table 3 — Leaf certificate deployment (%d domains)", total),
		"Place", "Match", "#domains")
	t.Add("Y", "Y", report.Count(counts[compliance.LeafCorrectMatched], total))
	t.Add("Y", "x", report.Count(counts[compliance.LeafCorrectMismatched], total))
	t.Add("x", "Y", report.Count(counts[compliance.LeafIncorrectMatched], total))
	t.Add("x", "x", report.Count(counts[compliance.LeafIncorrectMismatched], total))
	t.Add("Other", "", report.Count(counts[compliance.LeafOther], total))
	return t
}

// IssuanceOrder reproduces Table 5: chains with non-compliant issuance
// order, by category (categories overlap; the total counts distinct chains).
func (e *Env) IssuanceOrder() *report.Table {
	reports := e.Reports()
	var dup, irr, multi, rev, anyBad, revAll int
	for _, r := range reports {
		o := r.Order
		if o.HasDuplicates {
			dup++
		}
		if o.HasIrrelevant {
			irr++
		}
		if o.MultiplePaths {
			multi++
		}
		if o.ReversedAny {
			rev++
		}
		if o.ReversedAll && o.ReversedAny {
			revAll++
		}
		if o.NonCompliant() {
			anyBad++
		}
	}
	t := report.New("Table 5 — Chains with non-compliant issuance order",
		"Type", "#domains (% of non-compliant order)")
	t.Add("Duplicate Certificates", report.Count(dup, anyBad))
	t.Add("Irrelevant Certificates", report.Count(irr, anyBad))
	t.Add("Multiple Paths", report.Count(multi, anyBad))
	t.Add("Reversed Sequences", report.Count(rev, anyBad))
	t.Add("Total (distinct chains)", fmt.Sprintf("%d", anyBad))
	t.Note = fmt.Sprintf("all paths reversed: %d of %d reversed chains", revAll, rev)
	return t
}

// Completeness reproduces Table 7: chain completeness under the four-vendor
// union store with AIA available.
func (e *Env) Completeness() *report.Table {
	reports := e.Reports()
	total := len(reports)
	var withRoot, withoutRoot, incomplete, recoverable, missOne int
	var aiaMissing, aiaDead, aiaWrong int
	for _, r := range reports {
		switch r.Completeness.Class {
		case compliance.CompleteWithRoot:
			withRoot++
		case compliance.CompleteWithoutRoot:
			withoutRoot++
		case compliance.Incomplete:
			incomplete++
			if r.Completeness.AIARecoverable {
				recoverable++
				if r.Completeness.MissingIntermediates == 1 {
					missOne++
				}
			} else {
				switch r.Completeness.Terminal.String() {
				case "no-aia":
					aiaMissing++
				case "fetch-failed":
					aiaDead++
				case "wrong-issuer":
					aiaWrong++
				}
			}
		}
	}
	t := report.New("Table 7 — Completeness of certificate chain", "Type", "#domains")
	t.Add("Complete Chain w/ Root", report.Count(withRoot, total))
	t.Add("Complete Chain w/o Root", report.Count(withoutRoot, total))
	t.Add("Incomplete Chain", report.Count(incomplete, total))
	t.Note = fmt.Sprintf(
		"of incomplete: %s recoverable via recursive AIA (%s missing exactly one cert); failures: %d no-AIA, %d dead URI, %d wrong issuer",
		report.Pct(recoverable, incomplete), report.Pct(missOne, recoverable), aiaMissing, aiaDead, aiaWrong)
	return t
}

// RootStoreAIA reproduces Table 8: additional incomplete chains relative to
// the union+AIA baseline when a client trusts a single vendor store, with
// and without AIA support.
func (e *Env) RootStoreAIA() *report.Table {
	pop := e.Population()
	graphs := e.Graphs()

	baseline := 0
	for _, r := range e.Reports() {
		if r.Completeness.Class == compliance.Incomplete {
			baseline++
		}
	}

	t := report.New("Table 8 — Additional incomplete chains by root store and AIA support",
		"Root Store", "AIA Supported", "AIA Not Supported")
	for _, store := range pop.Vendors.Stores() {
		counts := make([]int, 2)
		for i, withAIA := range []bool{true, false} {
			cfg := compliance.CompletenessConfig{Roots: store}
			if withAIA {
				cfg.Fetcher = pop.Repo
			}
			n := 0
			for _, g := range graphs {
				if compliance.AnalyzeCompleteness(g, cfg).Class == compliance.Incomplete {
					n++
				}
			}
			counts[i] = n - baseline
			if counts[i] < 0 {
				counts[i] = 0
			}
		}
		t.Addf(store.Name(), counts[0], counts[1])
	}
	t.Note = fmt.Sprintf("baseline (union store + AIA): %d incomplete chains", baseline)
	return t
}

// HTTPServerBreakdown reproduces Table 10: which HTTP servers host the
// non-compliant chains, by defect type.
func (e *Env) HTTPServerBreakdown() *report.Table {
	pop := e.Population()
	reports := e.Reports()

	servers := []string{"Apache", "Nginx", "Microsoft-Azure-Application-Gateway", "cloudflare", "IIS", "AWS ELB", "Other"}
	idx := map[string]int{}
	for i, s := range servers {
		idx[s] = i
	}
	types := []string{"Overview", "Duplicate Certificates", "Duplicate Leaf", "Irrelevant Certificates", "Multiple Paths", "Reversed Sequences", "Incomplete Chain"}
	counts := make([][]int, len(types))
	for i := range counts {
		counts[i] = make([]int, len(servers)+1) // last column: total
	}
	bump := func(row int, server string) {
		col, ok := idx[server]
		if !ok {
			col = idx["Other"]
		}
		counts[row][col]++
		counts[row][len(servers)]++
	}
	for i, r := range reports {
		d := pop.Domains[i]
		if !r.Compliant() {
			bump(0, d.Server)
		}
		if r.Order.HasDuplicates {
			bump(1, d.Server)
		}
		if r.Order.DuplicateLeaf {
			bump(2, d.Server)
		}
		if r.Order.HasIrrelevant {
			bump(3, d.Server)
		}
		if r.Order.MultiplePaths {
			bump(4, d.Server)
		}
		if r.Order.ReversedAny {
			bump(5, d.Server)
		}
		if r.Completeness.Class == compliance.Incomplete {
			bump(6, d.Server)
		}
	}

	headers := append([]string{"Non-compliant Type"}, append(shortNames(servers), "Total")...)
	t := report.New("Table 10 — HTTP servers of non-compliant chains", headers...)
	for i, ty := range types {
		row := []string{ty}
		total := counts[i][len(servers)]
		for c := range servers {
			row = append(row, report.Count(counts[i][c], total))
		}
		row = append(row, fmt.Sprintf("%d", total))
		t.Add(row...)
	}
	return t
}

func shortNames(servers []string) []string {
	out := make([]string, len(servers))
	for i, s := range servers {
		if s == "Microsoft-Azure-Application-Gateway" {
			s = "Azure"
		}
		out[i] = s
	}
	return out
}

// CABreakdown reproduces Table 11: non-compliant chains by issuing CA or
// reseller.
func (e *Env) CABreakdown() *report.Table {
	pop := e.Population()
	reports := e.Reports()

	type row struct {
		total, nonCompliant, dup, irr, multi, rev, inc int
	}
	byCA := map[string]*row{}
	var order []string
	for i, r := range reports {
		caName := pop.Domains[i].CA
		rw := byCA[caName]
		if rw == nil {
			rw = &row{}
			byCA[caName] = rw
			order = append(order, caName)
		}
		rw.total++
		if !r.Compliant() {
			rw.nonCompliant++
		}
		if r.Order.HasDuplicates {
			rw.dup++
		}
		if r.Order.HasIrrelevant {
			rw.irr++
		}
		if r.Order.MultiplePaths {
			rw.multi++
		}
		if r.Order.ReversedAny {
			rw.rev++
		}
		if r.Completeness.Class == compliance.Incomplete {
			rw.inc++
		}
	}

	t := report.New("Table 11 — CAs/resellers of non-compliant chains",
		"CA", "Total", "Non-compliant", "Duplicate", "Irrelevant", "MultiPath", "Reversed", "Incomplete")
	for _, name := range order {
		rw := byCA[name]
		t.Add(name,
			fmt.Sprintf("%d", rw.total),
			report.Count(rw.nonCompliant, rw.total),
			report.Count(rw.dup, rw.total),
			report.Count(rw.irr, rw.total),
			report.Count(rw.multi, rw.total),
			report.Count(rw.rev, rw.total),
			report.Count(rw.inc, rw.total))
	}
	return t
}
