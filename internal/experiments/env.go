// Package experiments regenerates every table and figure of the paper's
// evaluation from this repository's substrates. Each experiment returns a
// report.Table whose rows mirror the paper's rows; cmd/experiments prints
// them and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"sync"

	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/difftest"
	"chainchaos/internal/obs"
	"chainchaos/internal/parallel"
	"chainchaos/internal/population"
	"chainchaos/internal/topo"
)

// Env carries the shared state of an experiment run: the synthetic
// population, its per-domain topology graphs and compliance reports (computed
// once, reused by every server-side table and by the differential harness),
// and the client capability runner.
type Env struct {
	Size int
	Seed int64
	// Workers bounds parallelism in population generation, per-domain
	// analysis, and the differential harness; <= 0 means GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, instruments the analysis stage (a stage timer
	// under experiments.analyze) and every differential harness the
	// experiments run; nil runs uninstrumented.
	Metrics *obs.Registry

	popOnce sync.Once
	pop     *population.Population

	analysisOnce sync.Once
	graphs       []*topo.Graph
	reports      []compliance.Report

	runnerOnce sync.Once
	runner     *clients.Runner
	runnerErr  error
}

// NewEnv creates an environment. size <= 0 defaults to 100,000 domains — a
// 1/9 scale model of the paper's 906,336-chain dataset that keeps every
// experiment under a minute on a laptop. Pass 906336 for full scale.
func NewEnv(size int, seed int64) *Env {
	if size <= 0 {
		size = 100000
	}
	return &Env{Size: size, Seed: seed}
}

// Population generates (once) and returns the synthetic population.
func (e *Env) Population() *population.Population {
	e.popOnce.Do(func() {
		e.pop = population.Generate(population.Config{Size: e.Size, Seed: e.Seed, Workers: e.Workers})
	})
	return e.pop
}

// analyze builds topology graphs and compliance reports for every domain,
// in parallel.
func (e *Env) analyze() {
	e.analysisOnce.Do(func() {
		sw := e.Metrics.Timer("experiments.analyze").Start()
		defer sw.Stop()
		pop := e.Population()
		n := len(pop.Domains)
		e.graphs = make([]*topo.Graph, n)
		e.reports = make([]compliance.Report, n)
		analyzer := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{
			Roots:   pop.Roots(),
			Fetcher: pop.Repo,
		}}
		parallel.For(context.Background(), n, e.Workers, func(i int) {
			d := pop.Domains[i]
			g := topo.Build(d.List)
			e.graphs[i] = g
			e.reports[i] = analyzer.Analyze(d.Name, g)
		})
	})
}

// Graphs returns the per-domain topology graphs (index-aligned with
// Population().Domains).
func (e *Env) Graphs() []*topo.Graph {
	e.analyze()
	return e.graphs
}

// Reports returns the per-domain compliance reports.
func (e *Env) Reports() []compliance.Report {
	e.analyze()
	return e.reports
}

// Analysis bundles the precomputed graphs and reports for the differential
// harness, so client-side tables never regrade what the server-side tables
// already computed.
func (e *Env) Analysis() *difftest.Analysis {
	e.analyze()
	return &difftest.Analysis{Graphs: e.graphs, Reports: e.reports}
}

// Runner returns the shared client capability runner.
func (e *Env) Runner() (*clients.Runner, error) {
	e.runnerOnce.Do(func() {
		e.runner, e.runnerErr = clients.NewRunner()
	})
	return e.runner, e.runnerErr
}
