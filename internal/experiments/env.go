// Package experiments regenerates every table and figure of the paper's
// evaluation from this repository's substrates. Each experiment returns a
// report.Table whose rows mirror the paper's rows; cmd/experiments prints
// them and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"runtime"
	"sync"

	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/population"
	"chainchaos/internal/topo"
)

// Env carries the shared state of an experiment run: the synthetic
// population, its per-domain topology graphs and compliance reports (computed
// once, reused by every server-side table), and the client capability runner.
type Env struct {
	Size int
	Seed int64

	popOnce sync.Once
	pop     *population.Population

	analysisOnce sync.Once
	graphs       []*topo.Graph
	reports      []compliance.Report

	runnerOnce sync.Once
	runner     *clients.Runner
	runnerErr  error
}

// NewEnv creates an environment. size <= 0 defaults to 100,000 domains — a
// 1/9 scale model of the paper's 906,336-chain dataset that keeps every
// experiment under a minute on a laptop. Pass 906336 for full scale.
func NewEnv(size int, seed int64) *Env {
	if size <= 0 {
		size = 100000
	}
	return &Env{Size: size, Seed: seed}
}

// Population generates (once) and returns the synthetic population.
func (e *Env) Population() *population.Population {
	e.popOnce.Do(func() {
		e.pop = population.Generate(population.Config{Size: e.Size, Seed: e.Seed})
	})
	return e.pop
}

// analyze builds topology graphs and compliance reports for every domain,
// in parallel.
func (e *Env) analyze() {
	e.analysisOnce.Do(func() {
		pop := e.Population()
		n := len(pop.Domains)
		e.graphs = make([]*topo.Graph, n)
		e.reports = make([]compliance.Report, n)
		analyzer := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{
			Roots:   pop.Roots(),
			Fetcher: pop.Repo,
		}}
		workers := runtime.GOMAXPROCS(0)
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					d := pop.Domains[i]
					g := topo.Build(d.List)
					e.graphs[i] = g
					e.reports[i] = analyzer.Analyze(d.Name, g)
				}
			}(lo, hi)
		}
		wg.Wait()
	})
}

// Graphs returns the per-domain topology graphs (index-aligned with
// Population().Domains).
func (e *Env) Graphs() []*topo.Graph {
	e.analyze()
	return e.graphs
}

// Reports returns the per-domain compliance reports.
func (e *Env) Reports() []compliance.Report {
	e.analyze()
	return e.reports
}

// Runner returns the shared client capability runner.
func (e *Env) Runner() (*clients.Runner, error) {
	e.runnerOnce.Do(func() {
		e.runner, e.runnerErr = clients.NewRunner()
	})
	return e.runner, e.runnerErr
}
