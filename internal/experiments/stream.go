// The streaming path of the differential evaluation: at paper scale
// (906,336 chains) the batch experiments cannot hold the population, its
// analyses, and every verdict at once, so cmd/experiments -stream routes
// §5.2 through the population Source and the difftest pipeline instead —
// domains are generated, analyzed, and graded in flight with peak memory
// O(workers · queue), and per-chain results leave through a JSONL sink
// rather than accumulating in a Summary's Records.

package experiments

import (
	"context"
	"io"

	"chainchaos/internal/difftest"
	"chainchaos/internal/ledger"
	"chainchaos/internal/obs"
	"chainchaos/internal/pipeline"
	"chainchaos/internal/population"
	"chainchaos/internal/report"
)

// StreamConfig parameterizes DifferentialStream.
type StreamConfig struct {
	// Size and Seed define the synthetic population, Workers its
	// parallelism — the same knobs as NewEnv.
	Size    int
	Seed    int64
	Workers int
	// Queue bounds each stage's channel (0 = workers-proportional).
	Queue int
	// Metrics, when non-nil, instruments every pipeline stage.
	Metrics *obs.Registry
	// Out, when non-nil, receives one difftest.RecordLine of JSON per
	// non-compliant chain, in rank order.
	Out io.Writer
	// Journal and Resume checkpoint the run: Journal records retired ranks,
	// Resume skips ranks a previous run already retired. A resumed run's
	// summary covers only the ranks processed by this invocation; the JSONL
	// stream in Out is the run's durable record.
	Journal *pipeline.Journal
	Resume  int
	// Limit, when > 0, is the first rank the run does NOT process: the run
	// covers exactly [Resume, Limit) of the Size-domain population. The
	// population source is rank-deterministic, so the records of a
	// range-restricted run are byte-identical to the same ranks of a
	// full-range run — what lets the distributed coordinator lease
	// sub-ranges to workers.
	Limit int
	// Record, when non-nil, receives every retired rank in order (line nil
	// for compliant chains, which emit no JSONL) — the distributed worker's
	// tap. See difftest.Harness.Record.
	Record func(rank int, line []byte) error
	// Reuse and Pool shape the population's chain-duplication skew
	// (population.Config.ChainReuse / ChainPool): the fraction of domains
	// presenting a pooled chain, and the slot-pool size.
	Reuse float64
	Pool  int
	// Dedup turns on the harness verdict cache, so duplicate chains cost a
	// lookup instead of a full analysis and eight client path-builds. The
	// summary and JSONL are bit-identical either way.
	Dedup bool
	// Ledger, when non-nil, Merkle-anchors every emitted RecordLine. See
	// difftest.Harness.Ledger.
	Ledger *ledger.Batcher
}

// DifferentialStream runs the §5.2 differential evaluation over a streaming
// population source and renders the overview table. The summary — and
// therefore the table — is bit-identical to Env.DifferentialOverview for the
// same (size, seed) when the run is not resumed partway.
func DifferentialStream(ctx context.Context, cfg StreamConfig) (*report.Table, error) {
	sum, err := DifferentialStreamSummary(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return differentialTable(sum), nil
}

// DifferentialStreamSummary is DifferentialStream stopping at the raw
// summary — the form distributed workers ship (as Summary.Tallies) so the
// coordinator can merge leases before rendering one table.
func DifferentialStreamSummary(ctx context.Context, cfg StreamConfig) (*difftest.Summary, error) {
	if cfg.Size <= 0 {
		cfg.Size = 100000
	}
	src := population.NewSource(population.Config{
		Size: cfg.Size, Seed: cfg.Seed, Workers: cfg.Workers,
		ChainReuse: cfg.Reuse, ChainPool: cfg.Pool,
	})
	h := &difftest.Harness{
		Workers: cfg.Workers, Metrics: cfg.Metrics, Out: cfg.Out,
		Dedup: cfg.Dedup, Record: cfg.Record, Ledger: cfg.Ledger,
	}
	return h.RunStream(ctx, src, pipeline.Options{
		Name:    "difftest",
		Metrics: cfg.Metrics,
		Journal: cfg.Journal,
		Resume:  cfg.Resume,
		Limit:   cfg.Limit,
	}, cfg.Queue)
}

// DifferentialTableFromTallies renders the §5.2 overview table from the
// merged tally maps of a distributed run.
func DifferentialTableFromTallies(t map[string]int64) *report.Table {
	return differentialTable(difftest.SummaryFromTallies(t))
}
