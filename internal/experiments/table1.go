package experiments

import (
	"chainchaos/internal/bettertls"
	"chainchaos/internal/clients"
	"chainchaos/internal/report"
)

// CapabilityComparison reproduces Table 1 — the coverage comparison between
// BetterTLS and this work — and extends it: instead of transcribing the
// paper's check marks, both test families are implemented and executed, so
// the table shows per-client outcomes for every capability type.
func (e *Env) CapabilityComparison() (*report.Table, error) {
	runner, err := e.Runner()
	if err != nil {
		return nil, err
	}
	capReports, err := runner.RunAll()
	if err != nil {
		return nil, err
	}
	suite, err := bettertls.NewSuite()
	if err != nil {
		return nil, err
	}
	btResults := suite.RunAll()

	t := report.New("Table 1 — Capability coverage: BetterTLS vs this work (executed)",
		"Group", "Type", "BetterTLS", "This Work", "Clients passing (of 8)")

	// Construction-side capabilities (this work's tests, Table 2).
	passCount := func(f func(clients.CapabilityReport) bool) int {
		n := 0
		for _, r := range capReports {
			if f(r) {
				n++
			}
		}
		return n
	}
	t.Addf("Basic", "ORDER_REORGANIZATION", "x", "Y",
		passCount(func(r clients.CapabilityReport) bool { return r.OrderReorganization }))
	t.Addf("Basic", "REDUNDANCY_ELIMINATION", "x", "Y",
		passCount(func(r clients.CapabilityReport) bool { return r.RedundancyElimination }))
	t.Addf("Basic", "AIA_COMPLETION", "x", "Y",
		passCount(func(r clients.CapabilityReport) bool { return r.AIACompletion }))

	// Validation-correctness tests (BetterTLS's side, executed by
	// internal/bettertls). The paper leaves these to BetterTLS; this
	// repository implements them too, so the "This Work" column is
	// upgraded from the paper's x to Y*.
	btPass := func(kind bettertls.TestKind) int {
		n := 0
		for _, p := range clients.All() {
			if btResults[p.Name][kind].Pass {
				n++
			}
		}
		return n
	}
	t.Addf("Priority", "EXPIRED", "Y", "Y", btPass(bettertls.Expired))
	t.Addf("Priority", "NAME_CONSTRAINTS", "Y", "Y*", btPass(bettertls.NameConstraintsViolation))
	t.Addf("Priority", "BAD_EKU", "Y", "Y*", btPass(bettertls.BadEKU))
	t.Addf("Priority", "MISS_BASIC_CONSTRAINTS", "Y", "Y*", btPass(bettertls.MissingBasicConstraints))
	t.Addf("Priority", "NOT_A_CA", "Y", "Y*", btPass(bettertls.NotACA))
	t.Addf("Priority", "DEPRECATED_CRYPTO", "Y", "Y*", btPass(bettertls.DeprecatedCrypto))

	// Construction-side priority and restriction tests.
	t.Addf("Priority", "BAD_PATH_LENGTH", "x", "Y",
		passCount(func(r clients.CapabilityReport) bool { return r.BasicConstraints }))
	t.Addf("Priority", "BAD_KID", "x", "Y",
		passCount(func(r clients.CapabilityReport) bool { return r.KID != 0 }))
	t.Addf("Priority", "BAD_KU", "x", "Y",
		passCount(func(r clients.CapabilityReport) bool { return r.KeyUsagePref }))
	t.Addf("Restriction", "PATH_LENGTH_CONSTRAINT", "x", "Y",
		passCount(func(r clients.CapabilityReport) bool { return r.MaxChainLength != 0 }))
	t.Addf("Restriction", "SELF_SIGNED_LEAF_CERT", "x", "Y",
		passCount(func(r clients.CapabilityReport) bool { return r.SelfSignedLeafAllowed }))

	t.Note = "Y* = extension beyond the paper (Table 1 lists these as BetterTLS-only); 'clients passing' counts the 8 models on the executed tests"
	return t, nil
}
