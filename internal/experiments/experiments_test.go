package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsRun exercises every table/figure generator at small
// scale and sanity-checks the rendered output.
func TestAllExperimentsRun(t *testing.T) {
	env := NewEnv(5000, 17)

	checks := []struct {
		name string
		run  func() (string, error)
		want []string // substrings that must appear
	}{
		{"T3", wrap(env.LeafPlacement), []string{"Table 3", "Other"}},
		{"T5", wrap(env.IssuanceOrder), []string{"Table 5", "Reversed Sequences"}},
		{"T7", wrap(env.Completeness), []string{"Table 7", "Incomplete"}},
		{"T8", wrap(env.RootStoreAIA), []string{"Table 8", "Mozilla", "Apple"}},
		{"T4", wrap(env.HTTPServerCharacteristics), []string{"Table 4", "Azure", "SF1"}},
		{"T6", wrap(env.CADeliveryCharacteristics), []string{"Table 6", "GoGetSSL", "Trustico"}},
		{"T10", wrap(env.HTTPServerBreakdown), []string{"Table 10", "Apache"}},
		{"T11", wrap(env.CABreakdown), []string{"Table 11", "Let's Encrypt"}},
		{"F2", wrap(env.TopologyGallery), []string{"Figure 2", "(a)", "(d)"}},
		{"T9", env2(env.ClientCapabilities), []string{"Table 9", "OpenSSL", "=16"}},
		{"T1", env2(env.CapabilityComparison), []string{"Table 1", "NAME_CONSTRAINTS", "Y*"}},
		{"F3", env2(env.CaseLongChain), []string{"Figure 3", "GnuTLS"}},
		{"F4", env2(env.CaseBacktracking), []string{"Figure 4", "cross-signed (trusted)"}},
		{"F5", env2(env.CaseValidityPriority), []string{"Figure 5", "VP2"}},
		{"D1", wrap(env.DifferentialOverview), []string{"§5.2", "I-4"}},
		{"D2", wrap(env.PrioritizationStats), []string{"§6.2", "trusted self-signed root"}},
	}
	for _, c := range checks {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Errorf("output of %s lacks %q:\n%s", c.name, w, out)
				}
			}
		})
	}
}

// TestFigure3GnuTLSRejects asserts the I-2 reproduction: GnuTLS fails the
// 17-cert list while reordering AIA-free clients like OpenSSL pass.
func TestFigure3GnuTLSRejects(t *testing.T) {
	env := NewEnv(10, 1)
	tab, err := env.CaseLongChain()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, row := range tab.Rows {
		got[row[0]] = row[1]
	}
	if got["GnuTLS"] != "FAIL" {
		t.Errorf("GnuTLS = %s, want FAIL", got["GnuTLS"])
	}
	for _, c := range []string{"OpenSSL", "CryptoAPI", "Chrome", "Safari"} {
		if got[c] != "PASS" {
			t.Errorf("%s = %s, want PASS", c, got[c])
		}
	}
}

// TestFigure4Backtracking asserts the I-3 reproduction: OpenSSL and GnuTLS
// commit to the untrusted root; CryptoAPI recovers by backtracking; MbedTLS
// lands on the correct path only because of its forward-only scan.
func TestFigure4Backtracking(t *testing.T) {
	env := NewEnv(10, 1)
	tab, err := env.CaseBacktracking()
	if err != nil {
		t.Fatal(err)
	}
	type row struct{ result, chosen string }
	got := map[string]row{}
	for _, r := range tab.Rows {
		got[r[0]] = row{r[1], r[2]}
	}
	for _, c := range []string{"OpenSSL", "GnuTLS"} {
		if got[c].result != "FAIL" || got[c].chosen != "self-signed (untrusted)" {
			t.Errorf("%s = %+v, want FAIL via untrusted root", c, got[c])
		}
	}
	if got["CryptoAPI"].result != "PASS" || got["CryptoAPI"].chosen != "cross-signed (trusted)" {
		t.Errorf("CryptoAPI = %+v, want PASS via cross-signed", got["CryptoAPI"])
	}
	if got["MbedTLS"].result != "PASS" {
		t.Errorf("MbedTLS = %+v, want PASS (forward-only scan skips the early untrusted root)", got["MbedTLS"])
	}
}

func wrap[T interface{ String() string }](f func() T) func() (string, error) {
	return func() (string, error) { return f().String(), nil }
}

func env2[T interface{ String() string }](f func() (T, error)) func() (string, error) {
	return func() (string, error) {
		v, err := f()
		if err != nil {
			return "", err
		}
		return v.String(), nil
	}
}

// TestCapabilityAblationOrdering pins the §6.2 quantified claim: AIA
// completion is the decisive capability.
func TestCapabilityAblationOrdering(t *testing.T) {
	env := NewEnv(8000, 21)
	tab := env.CapabilityAblation()
	rates := map[string]string{}
	for _, row := range tab.Rows {
		rates[row[0]] = row[1]
	}
	parse := func(s string) float64 {
		var v float64
		fmt.Sscanf(s, "%f%%", &v)
		return v
	}
	rec := parse(rates["recommended (all capabilities)"])
	noAIA := parse(rates["without AIA completion"])
	bare := parse(rates["bare (first-candidate, nothing else)"])
	if rec <= noAIA {
		t.Errorf("recommended (%v) should beat no-AIA (%v)", rec, noAIA)
	}
	if rec-noAIA < 10 {
		t.Errorf("AIA should be decisive: gap = %.1f points", rec-noAIA)
	}
	if bare > rec {
		t.Errorf("bare policy (%v) beats recommended (%v)", bare, rec)
	}
}
