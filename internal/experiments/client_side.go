package experiments

import (
	"bytes"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/clients"
	"chainchaos/internal/difftest"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/report"
	"chainchaos/internal/rootstore"
)

// ClientCapabilities reproduces Table 9: the full capability matrix of the
// eight client models, measured (not configured) via the Table 2 scenarios.
func (e *Env) ClientCapabilities() (*report.Table, error) {
	runner, err := e.Runner()
	if err != nil {
		return nil, err
	}
	reports, err := runner.RunAll()
	if err != nil {
		return nil, err
	}
	t := report.New("Table 9 — Capabilities of TLS implementations",
		"Type", "OpenSSL", "GnuTLS", "MbedTLS", "CryptoAPI", "Chrome", "Edge", "Safari", "Firefox")
	row := func(label string, cell func(clients.CapabilityReport) string) {
		cells := []string{label}
		for _, r := range reports {
			cells = append(cells, cell(r))
		}
		t.Add(cells...)
	}
	row("Order Reorganization", func(r clients.CapabilityReport) string { return report.Mark(r.OrderReorganization) })
	row("Redundancy Elimination", func(r clients.CapabilityReport) string { return report.Mark(r.RedundancyElimination) })
	row("AIA Completion", func(r clients.CapabilityReport) string { return report.Mark(r.AIACompletion) })
	row("Validity Priority", func(r clients.CapabilityReport) string { return r.Validity.String() })
	row("KID Matching Priority", func(r clients.CapabilityReport) string { return r.KID.String() })
	row("KeyUsage Correctness Priority", func(r clients.CapabilityReport) string {
		if r.KeyUsagePref {
			return "KUP"
		}
		return "-"
	})
	row("Basic Constraints Priority", func(r clients.CapabilityReport) string {
		if r.BasicConstraints {
			return "BP"
		}
		return "-"
	})
	row("Path Length Constraint", func(r clients.CapabilityReport) string {
		s := r.MaxChainString()
		if r.InputListLimited {
			s += " (input list)"
		}
		return s
	})
	row("Self-signed Leaf Certificate", func(r clients.CapabilityReport) string { return report.Mark(r.SelfSignedLeafAllowed) })
	return t, nil
}

// clientBuilders instantiates one builder per client model over an ad-hoc
// scenario (store + optional fetcher).
func clientBuilders(roots *rootstore.Store, fetcher interface {
	Fetch(string) (*certmodel.Certificate, error)
}) []*pathbuild.Builder {
	var out []*pathbuild.Builder
	for _, p := range clients.All() {
		out = append(out, &pathbuild.Builder{
			Policy:  p.Policy,
			Roots:   roots,
			Fetcher: fetcher,
			Cache:   rootstore.New("cache"),
			Now:     certgen.Reference,
		})
	}
	return out
}

// CaseLongChain reproduces Figure 3 / finding I-2: the
// assiste6.serpro.gov.br shape — a 17-certificate list whose correct path
// spans positions 8 -> 1 -> 16 -> 0, which GnuTLS rejects for size alone.
func (e *Env) CaseLongChain() (*report.Table, error) {
	root, err := certgen.NewRoot("Serpro Root")
	if err != nil {
		return nil, err
	}
	mid, err := root.NewIntermediate("Serpro Policy CA")
	if err != nil {
		return nil, err
	}
	issuing, err := mid.NewIntermediate("Serpro Issuing CA")
	if err != nil {
		return nil, err
	}
	leaf, err := issuing.NewLeaf("assiste6.serpro.gov.br")
	if err != nil {
		return nil, err
	}

	// Pad the list to 17 certificates with stale leaves for the same
	// domain (duplicated-renewal debris), placing the real path at
	// positions 0 (leaf), 16 (issuing), 1 (mid), 8 (root).
	list := make([]*certmodel.Certificate, 17)
	list[0] = leaf.Cert
	list[16] = issuing.Cert
	list[1] = mid.Cert
	list[8] = root.Cert
	padSerial := 0
	for i := range list {
		if list[i] != nil {
			continue
		}
		padSerial++
		stale, err := issuing.NewLeaf("assiste6.serpro.gov.br",
			certgen.WithSerial(int64(900000+padSerial)),
			certgen.WithValidity(certgen.Reference.AddDate(-2, 0, 0), certgen.Reference.AddDate(-1, 0, 0)))
		if err != nil {
			return nil, err
		}
		list[i] = stale.Cert
	}
	roots := rootstore.NewWith("test", root.Cert)

	t := report.New("Figure 3 / I-2 — 17-certificate list, correct path 8->1->16->0",
		"Client", "Result", "Detail")
	for i, b := range clientBuilders(roots, nil) {
		name := clients.All()[i].Name
		out := b.Build(list, "assiste6.serpro.gov.br")
		detail := "-"
		switch {
		case out.Err != nil:
			detail = out.Err.Error()
		case !out.Validation.OK:
			detail = out.Validation.Findings[0].String()
		}
		t.Add(name, passFail(out.OK()), detail)
	}
	return t, nil
}

// CaseBacktracking reproduces Figure 4 / finding I-3: the moex.gov.tw shape.
// The intermediate's issuer key exists as an untrusted self-signed root
// (list position 1) and as a variant signed by a trusted root (position 3).
// Clients without backtracking commit to the untrusted path.
func (e *Env) CaseBacktracking() (*report.Table, error) {
	trusted, err := certgen.NewRoot("MOEX Trusted Root")
	if err != nil {
		return nil, err
	}
	// The shared intermediate key, self-signed (untrusted variant).
	topSelf, err := certgen.NewRoot("MOEX Government CA")
	if err != nil {
		return nil, err
	}
	topByTrusted, err := trusted.CrossSign(topSelf)
	if err != nil {
		return nil, err
	}
	issuing, err := topSelf.NewIntermediate("MOEX Issuing CA")
	if err != nil {
		return nil, err
	}
	leaf, err := issuing.NewLeaf("moex.gov.tw")
	if err != nil {
		return nil, err
	}
	// List: 0=leaf, 1=untrusted self-signed variant, 2=issuing CA,
	// 3=trusted-signed variant, 4=trusted root.
	list := []*certmodel.Certificate{leaf.Cert, topSelf.Cert, issuing.Cert, topByTrusted, trusted.Cert}
	roots := rootstore.NewWith("test", trusted.Cert)

	t := report.New("Figure 4 / I-3 — multiple candidate paths, untrusted root first",
		"Client", "Result", "Chosen upper CA", "Paths tried")
	for i, b := range clientBuilders(roots, nil) {
		name := clients.All()[i].Name
		out := b.Build(list, "moex.gov.tw")
		chosen := "-"
		for _, c := range out.Path {
			if bytes.Equal(c.PublicKeyID, topSelf.Cert.PublicKeyID) {
				if c.Equal(topSelf.Cert) {
					chosen = "self-signed (untrusted)"
				} else {
					chosen = "cross-signed (trusted)"
				}
			}
		}
		t.Addf(name, passFail(out.OK()), chosen, out.PathsTried)
	}
	return t, nil
}

// CaseValidityPriority reproduces Figure 5: two same-subject candidates
// differing only in validity; which one does each client put in the path?
func (e *Env) CaseValidityPriority() (*report.Table, error) {
	runner, err := e.Runner()
	if err != nil {
		return nil, err
	}
	sc := runner.Set.Validity
	t := report.New("Figure 5 — candidate selection among same-subject issuers",
		"Client", "Chosen candidate", "Inferred policy")
	for _, p := range clients.All() {
		b := &pathbuild.Builder{Policy: p.Policy, Roots: sc.Roots, Cache: rootstore.New("cache"), Now: certgen.Reference}
		out := b.Build(sc.List, sc.Domain)
		label := "-"
		if len(out.Path) > 1 {
			label = sc.LabelOf(out.Path[1])
		}
		policy := map[string]string{
			"I2": "most recent (VP2)", "I": "first valid (VP1)", "I1": "presented order (no priority)",
		}[label]
		if policy == "" {
			policy = "unknown"
		}
		t.Add(p.Name, label, policy)
	}
	return t, nil
}

// DifferentialOverview reproduces the §5.2 result overview: pass rates and
// discrepancy counts over the population's non-compliant chains, with the
// I-1…I-4 cause attribution. The compliance grading is shared with the
// server-side tables through Env.Analysis, not recomputed.
func (e *Env) DifferentialOverview() *report.Table {
	pop := e.Population()
	sum := (&difftest.Harness{Workers: e.Workers, Metrics: e.Metrics}).RunAnalyzed(pop, e.Analysis())
	return differentialTable(sum)
}

// differentialTable renders a differential Summary as the §5.2 overview
// table — shared by the batch path above and the streaming path in
// stream.go.
func differentialTable(sum *difftest.Summary) *report.Table {
	t := report.New("§5.2 — Differential testing overview", "Metric", "Value")
	t.Addf("chains analyzed", sum.Total)
	t.Add("non-compliant chains", report.Count(sum.NonCompliant, sum.Total))
	t.Add("pass in all 3 browsers (Safari excluded)", report.Pct(sum.AllBrowsersPass, sum.NonCompliant))
	t.Add("pass in all 4 libraries", report.Pct(sum.AllLibrariesPass, sum.NonCompliant))
	t.Add("browser discrepancies (pass/fail)", report.Count(sum.BrowserDiscrepant, sum.NonCompliant))
	t.Add("library discrepancies (pass/fail)", report.Count(sum.LibraryDiscrepant, sum.NonCompliant))
	t.Add("browser discrepancies (verdict class)", report.Count(sum.BrowserClassDiscrepant, sum.NonCompliant))
	t.Add("library discrepancies (verdict class)", report.Count(sum.LibraryClassDiscrepant, sum.NonCompliant))
	for _, c := range []difftest.Cause{difftest.CauseI1Reorder, difftest.CauseI2InputLimit, difftest.CauseI3Backtrack, difftest.CauseI4AIA, difftest.CauseOther} {
		t.Addf("cause "+c.String(), sum.CauseCounts[c])
	}
	for _, p := range clients.All() {
		t.Add("pass rate "+p.Name, report.Pct(sum.PerClientPass[p.Name], sum.NonCompliant))
	}
	return t
}

// PrioritizationStats reproduces the §6.2 analysis: chains where several
// candidates share both subject DN and key identifier, split into the
// trusted-root-vs-intermediate case and the validity-only case.
func (e *Env) PrioritizationStats() *report.Table {
	pop := e.Population()
	graphs := e.Graphs()
	roots := pop.Roots()

	var multiCandidate, rootVsIntermediate, validityOnly int
	for _, g := range graphs {
		found := false
		foundRoot := false
		foundValidity := false
		for i, a := range g.Nodes {
			for _, b := range g.Nodes[i+1:] {
				if a.Cert.Subject != b.Cert.Subject {
					continue
				}
				if len(a.Cert.SubjectKeyID) == 0 || !bytes.Equal(a.Cert.SubjectKeyID, b.Cert.SubjectKeyID) {
					continue
				}
				found = true
				aSelf, bSelf := a.Cert.SelfSigned(), b.Cert.SelfSigned()
				if (aSelf && roots.Contains(a.Cert)) || (bSelf && roots.Contains(b.Cert)) {
					foundRoot = true
				} else if a.Cert.NotBefore != b.Cert.NotBefore || a.Cert.NotAfter != b.Cert.NotAfter {
					foundValidity = true
				}
			}
		}
		if found {
			multiCandidate++
		}
		if foundRoot {
			rootVsIntermediate++
		}
		if foundValidity {
			validityOnly++
		}
	}
	t := report.New("§6.2 — Same-subject/same-KID candidate sets in deployed chains", "Class", "#chains")
	t.Addf("chains with same-DN+KID candidate pairs", multiCandidate)
	t.Addf("  of which: intermediate vs trusted self-signed root", rootVsIntermediate)
	t.Addf("  of which: candidates differing only in validity", validityOnly)
	t.Note = "recommendation: prefer the trusted self-signed root; among intermediates prefer the most recently issued"
	return t
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
