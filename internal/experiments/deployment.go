package experiments

import (
	"errors"
	"time"

	"chainchaos/internal/ca"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/httpserver"
	"chainchaos/internal/report"
	"chainchaos/internal/topo"
)

// HTTPServerCharacteristics reproduces Table 4 by *probing* each server
// model rather than restating its configuration: a key-mismatched upload and
// a duplicate-leaf upload are attempted against every model and the observed
// acceptance/rejection fills the cells.
func (e *Env) HTTPServerCharacteristics() *report.Table {
	base := time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)
	root := certmodel.SyntheticRoot("T4 Probe Root", base)
	inter := certmodel.SyntheticIntermediate("T4 Probe CA", root, base)
	leaf := certmodel.SyntheticLeaf("probe.example", "1", inter, base, base.AddDate(1, 0, 0))
	otherLeaf := certmodel.SyntheticLeaf("other.example", "2", inter, base, base.AddDate(1, 0, 0))

	t := report.New("Table 4 — SSL deployment characteristics across HTTP servers",
		"Server", "Auto Mgmt", "Cert Fields", "Key/Leaf Match Check", "Dup Leaf Check", "Dup Intermediate/Root Check")
	// probeInput builds the scheme-appropriate upload: split-scheme servers
	// get CertFile+ChainFile, the rest get one Fullchain (Deploy rejects a
	// Fullchain handed to a split-scheme server).
	probeInput := func(m httpserver.Model, chain []*certmodel.Certificate, key *certmodel.Certificate) httpserver.ConfigInput {
		in := httpserver.ConfigInput{PrivateKeyFor: key}
		if m.Scheme == httpserver.SchemeSplit {
			in.CertFile = []*certmodel.Certificate{leaf}
			in.ChainFile = chain
		} else {
			in.Fullchain = append([]*certmodel.Certificate{leaf}, chain...)
		}
		return in
	}
	for _, m := range httpserver.Models() {
		// Probe 1: private key belongs to a different certificate.
		_, err := m.Deploy(probeInput(m, []*certmodel.Certificate{inter}, otherLeaf))
		keyCheck := errors.Is(err, httpserver.ErrPrivateKeyMismatch)

		// Probe 2: duplicate leaf in the upload.
		_, err = m.Deploy(probeInput(m, []*certmodel.Certificate{leaf, inter}, leaf))
		dupLeafCheck := errors.Is(err, httpserver.ErrDuplicateLeaf)

		// Probe 3: duplicate intermediate.
		_, err = m.Deploy(probeInput(m, []*certmodel.Certificate{inter, inter}, leaf))
		dupInterCheck := errors.Is(err, httpserver.ErrDuplicateIntermediate)

		t.Add(m.Name,
			report.Mark(m.AutomaticManagement),
			m.Scheme.String(),
			report.Mark(keyCheck),
			report.Mark(dupLeafCheck),
			report.Mark(dupInterCheck))
	}
	return t
}

// CADeliveryCharacteristics reproduces Table 6 by issuing a certificate from
// every CA profile and inspecting the delivered files: which files exist,
// whether the root is included, and whether the ca-bundle follows the
// issuance order (checked with the topology analyzer, not the profile flag).
func (e *Env) CADeliveryCharacteristics() *report.Table {
	base := time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)
	t := report.New("Table 6 — SSL issuance characteristics by CA/reseller",
		"CA", "Auto Mgmt", "Fullchain File", "Ca-bundle File", "Root Included", "Bundle Order Compliant", "Install Guide")
	for _, p := range ca.Profiles() {
		iss := ca.NewSyntheticIssuer(ca.IssuerConfig{Profile: p, Base: base, Tag: "t6"})
		d := iss.Issue("order-probe.example", base, base.AddDate(1, 0, 0), ca.LeafOptions{})

		rootIncluded := false
		for _, c := range d.Bundle {
			if c.Equal(iss.Root) {
				rootIncluded = true
			}
		}
		// Order compliance of the bundle: prepend the leaf and ask the
		// sequential-order rule.
		orderOK := true
		if len(d.Bundle) > 0 {
			orderOK = topo.SequentialOrderOK(append([]*certmodel.Certificate{d.Leaf}, d.Bundle...))
		}
		t.Add(p.Name,
			report.Mark(p.AutomaticManagement),
			report.Mark(len(d.Fullchain) > 0),
			report.Mark(len(d.Bundle) > 0),
			report.Mark(rootIncluded),
			report.Mark(orderOK),
			p.InstallGuide.String())
	}
	return t
}

// TopologyGallery reproduces Figure 2: the four canonical chain topologies
// rendered through the same graph code the analyzers use.
func (e *Env) TopologyGallery() *report.Table {
	base := time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)
	root := certmodel.SyntheticRoot("F2 Root", base)
	top := certmodel.SyntheticIntermediate("F2 CA 2", root, base)
	issuing := certmodel.SyntheticIntermediate("F2 CA 1", top, base)
	leaf := certmodel.SyntheticLeaf("f2.example", "1", issuing, base, base.AddDate(1, 0, 0))
	stranger := certmodel.SyntheticRoot("F2 Stranger", base)

	legacy := certmodel.SyntheticRoot("F2 Legacy Root", base.AddDate(-8, 0, 0))
	cross := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: top.Subject, Issuer: legacy.Subject, Serial: "f2-cross",
		NotBefore: base, NotAfter: base.AddDate(4, 0, 0),
		Key: certmodel.KeyOf(top), SignedBy: certmodel.KeyOf(legacy),
		IsCA: true, BasicConstraintsValid: true,
		KeyUsage: certmodel.KeyUsageCertSign, HasKeyUsage: true,
	})

	cases := []struct {
		label string
		list  []*certmodel.Certificate
	}{
		{"(a) compliant chain", []*certmodel.Certificate{leaf, issuing, top, root}},
		{"(b) irrelevant certificate", []*certmodel.Certificate{leaf, stranger, issuing, top, root}},
		{"(c) cross-signed, multiple paths", []*certmodel.Certificate{leaf, issuing, legacy, cross, top, root}},
		{"(d) duplicated certificates", []*certmodel.Certificate{leaf, issuing, top, root, top, issuing}},
	}
	t := report.New("Figure 2 — Server-side certificate chain topologies",
		"Case", "Topology (child<-issuer by list position)", "Paths", "Dup", "Irrelevant", "Reversed")
	for _, c := range cases {
		g := topo.Build(c.list)
		rev, _ := g.ReversedSequences()
		t.Addf(c.label, g.String(), len(g.Paths()), report.Mark(g.HasDuplicates()),
			len(g.IrrelevantNodes()), report.Mark(rev))
	}
	return t
}
