package experiments

import (
	"fmt"

	"chainchaos/internal/pathbuild"
	"chainchaos/internal/report"
	"chainchaos/internal/rootstore"
)

// CapabilityAblation quantifies §6.2's recommendation: "clients equipped
// with all three capabilities [completion, backtracking, reorganization]
// exhibit a significantly higher success rate in validating server
// certificate chains." The recommended policy is run over the population's
// non-compliant chains with each capability removed in turn.
func (e *Env) CapabilityAblation() *report.Table {
	pop := e.Population()
	reports := e.Reports()

	variants := []struct {
		name string
		mut  func(*pathbuild.Policy)
	}{
		{"recommended (all capabilities)", func(p *pathbuild.Policy) {}},
		{"without AIA completion", func(p *pathbuild.Policy) { p.AIA = false }},
		{"without backtracking", func(p *pathbuild.Policy) { p.Backtrack = false }},
		{"without order reorganization", func(p *pathbuild.Policy) { p.Reorder = false }},
		{"without priority preferences", func(p *pathbuild.Policy) {
			p.ValidityPref = pathbuild.ValidityNone
			p.KIDPref = pathbuild.KIDNone
			p.KeyUsagePref = false
			p.BasicConstraintsPref = false
			p.PreferTrustedRoot = false
		}},
		{"bare (first-candidate, nothing else)", func(p *pathbuild.Policy) {
			*p = pathbuild.Policy{Name: "bare", Reorder: true, EliminateDuplicates: true}
		}},
	}

	// Collect the non-compliant chains once.
	var bad []int
	for i, r := range reports {
		if !r.Compliant() {
			bad = append(bad, i)
		}
	}

	t := report.New("§6.2 — capability ablation over non-compliant chains",
		"Policy variant", "Pass rate", "Avg candidates", "Avg paths tried")
	for _, v := range variants {
		policy := pathbuild.DefaultPolicy()
		v.mut(&policy)
		b := &pathbuild.Builder{
			Policy:  policy,
			Roots:   pop.Roots(),
			Fetcher: pop.Repo,
			Cache:   rootstore.New("cache"),
			Now:     pop.Cfg.Base,
		}
		pass, cands, tried := 0, 0, 0
		for _, idx := range bad {
			out := b.Build(pop.Domains[idx].List, "")
			if out.OK() {
				pass++
			}
			cands += out.CandidatesConsidered
			tried += out.PathsTried
		}
		n := len(bad)
		if n == 0 {
			n = 1
		}
		t.Add(v.name,
			report.Pct(pass, len(bad)),
			fmt.Sprintf("%.1f", float64(cands)/float64(n)),
			fmt.Sprintf("%.2f", float64(tried)/float64(n)))
	}
	t.Note = "run over the population's non-compliant chains with the union root store"
	return t
}
