package ca

import (
	"testing"
	"time"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/topo"
)

var base = time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)

func profileByName(t *testing.T, name string) Profile {
	t.Helper()
	for _, p := range Profiles() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("no profile %q", name)
	return Profile{}
}

func TestProfileCatalog(t *testing.T) {
	profiles := Profiles()
	if len(profiles) != 9 {
		t.Fatalf("profile count = %d", len(profiles))
	}
	var share float64
	for _, p := range profiles {
		share += p.MarketShare
		if p.Name == "" {
			t.Error("unnamed profile")
		}
	}
	if share < 0.95 || share > 1.05 {
		t.Errorf("market shares sum to %.3f, want ~1", share)
	}
	// The reversed-bundle trio.
	for _, name := range []string{"GoGetSSL", "cyber_Folks S.A.", "Trustico"} {
		p := profileByName(t, name)
		if !p.BundleReversed || !p.ProvidesRoot {
			t.Errorf("%s should deliver a reversed bundle including the root", name)
		}
		if p.Rates.Reversed < 0.07 {
			t.Errorf("%s reversed rate = %v", name, p.Rates.Reversed)
		}
	}
	le := profileByName(t, "Let's Encrypt")
	if !le.AutomaticManagement || !le.ProvidesFullchain || le.InstallGuide != GuideFull {
		t.Error("Let's Encrypt profile wrong")
	}
	if le.Rates.Reversed > 0.001 {
		t.Error("Let's Encrypt reversed rate should be negligible")
	}
	tw := profileByName(t, "TAIWAN-CA")
	if !tw.OmitsIntermediate || tw.Rates.Incomplete < 0.3 {
		t.Error("TAIWAN-CA must omit an intermediate with a high incomplete rate")
	}
}

func TestIssuerHierarchyShape(t *testing.T) {
	iss := NewSyntheticIssuer(IssuerConfig{Profile: profileByName(t, "DigiCert"), Base: base, Tag: "t"})
	if !iss.Root.SelfSigned() {
		t.Error("root not self-signed")
	}
	if len(iss.Intermediates) != 2 {
		t.Fatalf("intermediates = %d", len(iss.Intermediates))
	}
	top, issuing := iss.Intermediates[0], iss.Intermediates[1]
	if !certmodel.Issued(iss.Root, top) || !certmodel.Issued(top, issuing) {
		t.Error("hierarchy links broken")
	}
	if !certmodel.Issued(iss.CrossRoot, iss.CrossSigned) {
		t.Error("cross-signed link broken")
	}
	if iss.CrossSigned.Subject != top.Subject {
		t.Error("cross-signed cert must share the top subject")
	}
	if !certmodel.Issued(iss.CrossRoot, iss.RootCrossSigned) {
		t.Error("root-cross link broken")
	}
	if iss.RootCrossSigned.Subject != iss.Root.Subject {
		t.Error("root-cross subject mismatch")
	}
	leaf := iss.IssueLeaf("shape.example", base, base.AddDate(1, 0, 0), LeafOptions{})
	if !certmodel.Issued(issuing, leaf) {
		t.Error("leaf issuance broken")
	}
	// Both the direct and cross-signed top variant must verify issuing.
	if !certmodel.Issued(iss.CrossSigned, issuing) {
		t.Error("cross-signed top does not verify the issuing CA")
	}
}

func TestAIAWiring(t *testing.T) {
	published := map[string]*certmodel.Certificate{}
	iss := NewSyntheticIssuer(IssuerConfig{
		Profile: profileByName(t, "Sectigo Limited"), Base: base, Tag: "w",
		AIABase: "http://aia.test",
	})
	iss.RegisterAIA(func(uri string, cert *certmodel.Certificate) { published[uri] = cert })
	if len(published) != 3 {
		t.Fatalf("published %d certs, want 3", len(published))
	}
	leaf := iss.IssueLeaf("wire.example", base, base.AddDate(1, 0, 0), LeafOptions{})
	if len(leaf.AIAIssuerURLs) != 1 {
		t.Fatalf("leaf AIA = %v", leaf.AIAIssuerURLs)
	}
	if got := published[leaf.AIAIssuerURLs[0]]; got == nil || !got.Equal(iss.IssuingCA()) {
		t.Error("leaf AIA does not resolve to the issuing CA")
	}
	issuing := iss.IssuingCA()
	if got := published[issuing.AIAIssuerURLs[0]]; got == nil || !got.Equal(iss.Intermediates[0]) {
		t.Error("issuing CA AIA does not resolve to the top CA")
	}

	// Leaf options.
	noAIA := iss.IssueLeaf("wire2.example", base, base.AddDate(1, 0, 0), LeafOptions{OmitAIA: true})
	if len(noAIA.AIAIssuerURLs) != 0 {
		t.Error("OmitAIA ignored")
	}
	override := iss.IssueLeaf("wire3.example", base, base.AddDate(1, 0, 0), LeafOptions{AIAOverride: "http://dead"})
	if len(override.AIAIssuerURLs) != 1 || override.AIAIssuerURLs[0] != "http://dead" {
		t.Error("AIAOverride ignored")
	}

	// An AIA-less hierarchy publishes nothing and issues AIA-less certs.
	silent := NewSyntheticIssuer(IssuerConfig{Profile: profileByName(t, "Other"), Base: base, Tag: "s"})
	count := 0
	silent.RegisterAIA(func(string, *certmodel.Certificate) { count++ })
	if count != 0 {
		t.Error("AIA-less hierarchy published certs")
	}
	if l := silent.IssueLeaf("s.example", base, base.AddDate(1, 0, 0), LeafOptions{}); len(l.AIAIssuerURLs) != 0 {
		t.Error("AIA-less hierarchy issued AIA URLs")
	}
}

func TestTopNoAKID(t *testing.T) {
	iss := NewSyntheticIssuer(IssuerConfig{Profile: profileByName(t, "Other"), Base: base, Tag: "na", TopNoAKID: true})
	if iss.Intermediates[0].AuthorityKeyID != nil {
		t.Error("TopNoAKID ignored")
	}
	// The link must still hold through DN + signature.
	if !certmodel.Issued(iss.Root, iss.Intermediates[0]) {
		t.Error("AKID-less top no longer linked to the root")
	}
}

func TestDeliveryShapes(t *testing.T) {
	issue := func(name string) Delivery {
		iss := NewSyntheticIssuer(IssuerConfig{Profile: profileByName(t, name), Base: base, Tag: "d"})
		return iss.Issue("delivery.example", base, base.AddDate(1, 0, 0), LeafOptions{})
	}

	le := issue("Let's Encrypt")
	if len(le.Fullchain) == 0 || len(le.Bundle) == 0 {
		t.Error("Let's Encrypt delivery missing files")
	}
	if !topo.SequentialOrderOK(le.Fullchain) {
		t.Error("fullchain not in issuance order")
	}
	if !topo.SequentialOrderOK(append([]*certmodel.Certificate{le.Leaf}, le.Bundle...)) {
		t.Error("LE bundle not in issuance order")
	}

	gg := issue("GoGetSSL")
	if gg.Fullchain != nil {
		t.Error("GoGetSSL should not deliver a fullchain")
	}
	if topo.SequentialOrderOK(append([]*certmodel.Certificate{gg.Leaf}, gg.Bundle...)) {
		t.Error("GoGetSSL bundle should be reversed")
	}
	// Reversing it back must restore compliance.
	rev := append([]*certmodel.Certificate(nil), gg.Bundle...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if !topo.SequentialOrderOK(append([]*certmodel.Certificate{gg.Leaf}, rev...)) {
		t.Error("un-reversed GoGetSSL bundle still out of order")
	}
	// Root included.
	foundRoot := false
	for _, c := range gg.Bundle {
		if c.SelfSigned() {
			foundRoot = true
		}
	}
	if !foundRoot {
		t.Error("GoGetSSL bundle should include the root")
	}

	tw := issue("TAIWAN-CA")
	// The omitted intermediate leaves a one-cert bundle that cannot reach
	// the root.
	if len(tw.Bundle) != 1 {
		t.Errorf("TAIWAN-CA bundle = %d certs, want 1 (top omitted)", len(tw.Bundle))
	}
}

func TestIssueLeafSerialsUnique(t *testing.T) {
	iss := NewSyntheticIssuer(IssuerConfig{Profile: profileByName(t, "ZeroSSL"), Base: base, Tag: "u"})
	a := iss.IssueLeaf("u.example", base, base.AddDate(1, 0, 0), LeafOptions{})
	b := iss.IssueLeaf("u.example", base, base.AddDate(1, 0, 0), LeafOptions{})
	if a.Equal(b) {
		t.Error("two issuances produced identical certificates")
	}
	if a.SerialNumber == b.SerialNumber {
		t.Error("serials repeat")
	}
}

func TestGuideLevelStrings(t *testing.T) {
	if GuideNone.String() != "none" || GuidePartial.String() != "partial" || GuideFull.String() != "full" {
		t.Error("guide level strings wrong")
	}
	if GuideLevel(7).String() != "unknown" {
		t.Error("unknown guide level rendering")
	}
}
