// Package ca simulates certificate authorities and resellers as the paper
// characterizes them in Table 6 and Appendix C (Table 11): each profile
// issues a leaf certificate and hands the subscriber a set of files —
// possibly a fullchain, possibly a ca-bundle with intermediates in reverse
// order, possibly with the root included or an intermediate missing. Those
// delivery quirks, combined with administrator behaviour and HTTP server
// checks (internal/httpserver), are the mechanical origin of the
// non-compliant chains the paper measures.
package ca

import (
	"fmt"
	"time"

	"chainchaos/internal/certmodel"
)

// GuideLevel describes the quality of the CA's installation guidance.
type GuideLevel int

const (
	GuideNone    GuideLevel = iota
	GuidePartial            // e.g. covers only Apache/IIS
	GuideFull
)

// String returns the level's name.
func (g GuideLevel) String() string {
	switch g {
	case GuideNone:
		return "none"
	case GuidePartial:
		return "partial"
	case GuideFull:
		return "full"
	default:
		return "unknown"
	}
}

// MisconfigRates are per-type probabilities that a chain issued by this CA
// ends up deployed non-compliantly, calibrated from Table 11's percentages.
type MisconfigRates struct {
	Duplicate     float64
	Irrelevant    float64
	MultiplePaths float64
	Reversed      float64
	Incomplete    float64
}

// Profile is a CA or reseller's issuance characteristics (Table 6).
type Profile struct {
	Name string

	AutomaticManagement bool
	ProvidesFullchain   bool
	ProvidesCABundle    bool
	ProvidesRoot        bool
	// BundleReversed: the ca-bundle lists certificates top-down (root or
	// topmost intermediate first) — the GoGetSSL / cyber_Folks / Trustico
	// behaviour behind the reversed-sequence epidemic.
	BundleReversed bool
	// OmitsIntermediate: the delivered bundle lacks a required
	// intermediate (TAIWAN-CA's missing cross-signed root CA).
	OmitsIntermediate bool
	InstallGuide      GuideLevel

	// MarketShare weights population assignment; Rates calibrate
	// misconfiguration injection (both from Table 11).
	MarketShare float64
	Rates       MisconfigRates
}

// Profiles returns the eight CAs/resellers of Table 11 plus a residual
// "Other" profile covering the rest of the market. Shares are the Table 11
// "Total" row normalized against the 906,336-chain dataset; rates are the
// per-type percentages.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "Let's Encrypt", AutomaticManagement: true,
			ProvidesFullchain: true, ProvidesCABundle: true, InstallGuide: GuideFull,
			MarketShare: 0.4422,
			Rates:       MisconfigRates{Duplicate: 0.008, Irrelevant: 0.001, MultiplePaths: 0.0001, Reversed: 0.0002, Incomplete: 0.003},
		},
		{
			Name: "DigiCert", ProvidesCABundle: true, InstallGuide: GuidePartial,
			MarketShare: 0.0672,
			Rates:       MisconfigRates{Duplicate: 0.013, Irrelevant: 0.012, MultiplePaths: 0.0001, Reversed: 0.029, Incomplete: 0.037},
		},
		{
			Name: "Sectigo Limited", ProvidesCABundle: true, InstallGuide: GuidePartial,
			MarketShare: 0.0530,
			Rates:       MisconfigRates{Duplicate: 0.013, Irrelevant: 0.010, MultiplePaths: 0.003, Reversed: 0.053, Incomplete: 0.042},
		},
		{
			Name: "ZeroSSL", AutomaticManagement: true, ProvidesCABundle: true,
			ProvidesRoot: false, InstallGuide: GuidePartial,
			MarketShare: 0.0091,
			Rates:       MisconfigRates{Duplicate: 0.010, Irrelevant: 0.004, Reversed: 0.0002, Incomplete: 0.015},
		},
		{
			Name: "GoGetSSL", ProvidesCABundle: true, ProvidesRoot: true,
			BundleReversed: true, InstallGuide: GuideNone,
			MarketShare: 0.0018,
			Rates:       MisconfigRates{Duplicate: 0.025, Irrelevant: 0.021, MultiplePaths: 0.004, Reversed: 0.077, Incomplete: 0.069},
		},
		{
			Name: "TAIWAN-CA", ProvidesCABundle: true, OmitsIntermediate: true,
			InstallGuide: GuidePartial,
			MarketShare:  0.00054,
			Rates:        MisconfigRates{Duplicate: 0.014, Irrelevant: 0.016, Reversed: 0.096, Incomplete: 0.419},
		},
		{
			Name: "cyber_Folks S.A.", ProvidesCABundle: true, ProvidesRoot: true,
			BundleReversed: true, InstallGuide: GuideNone,
			MarketShare: 0.00016,
			Rates:       MisconfigRates{Duplicate: 0.021, Irrelevant: 0.056, Reversed: 0.606, Incomplete: 0.056},
		},
		{
			Name: "Trustico", ProvidesCABundle: true, ProvidesRoot: true,
			BundleReversed: true, InstallGuide: GuideNone,
			MarketShare: 0.00012,
			Rates:       MisconfigRates{Duplicate: 0.009, Irrelevant: 0.009, Reversed: 0.620, Incomplete: 0.037},
		},
		{
			// The long tail of CAs not broken out by the paper. Rates are
			// the residual mass: Table 5/7 totals minus the eight named
			// CAs' contributions, normalized over the remaining ~386k
			// chains (which makes this tail the largest single source of
			// reversed sequences and incomplete chains).
			Name: "Other", ProvidesFullchain: true, ProvidesCABundle: true,
			InstallGuide: GuidePartial,
			MarketShare:  0.4259,
			Rates:        MisconfigRates{Duplicate: 0.003, Irrelevant: 0.0034, MultiplePaths: 0.00012, Reversed: 0.010, Incomplete: 0.016},
		},
	}
}

// Delivery is the set of files (as ordered certificate lists) a subscriber
// receives after issuance.
type Delivery struct {
	// Leaf is the end-entity certificate (CertificateFile.pem).
	Leaf *certmodel.Certificate
	// Bundle is Ca-bundle.pem: intermediates (plus the root when the CA
	// includes it) in the CA's delivered order — reversed for
	// BundleReversed profiles.
	Bundle []*certmodel.Certificate
	// Fullchain is Fullchain.pem when the CA provides one: leaf followed
	// by the correctly ordered intermediates.
	Fullchain []*certmodel.Certificate
}

// Issuer is an instantiated CA hierarchy for one profile: a root, a chain of
// intermediates, and optionally a cross-signed variant of the top
// intermediate (for multiple-path deployments).
type Issuer struct {
	Profile       Profile
	Tag           string
	Root          *certmodel.Certificate
	Intermediates []*certmodel.Certificate // top-down: closest to root first
	// CrossSigned, when non-nil, is an alternative certificate for
	// Intermediates[0]'s key chaining to CrossRoot.
	CrossSigned *certmodel.Certificate
	CrossRoot   *certmodel.Certificate
	// RootCrossSigned is an alternative certificate for the Root's own key
	// signed by CrossRoot — the shape behind the paper's §6.2 observation
	// that 744 chains carry an intermediate and a trusted self-signed root
	// sharing subject DN and KID.
	RootCrossSigned *certmodel.Certificate

	aiaBase string
	serial  int
}

// IssuerConfig controls hierarchy instantiation beyond the profile.
type IssuerConfig struct {
	Profile Profile
	Base    time.Time
	// Tag uniquifies multiple hierarchies of the same CA (real CAs operate
	// many intermediates).
	Tag string
	// AIABase, when non-empty, equips every non-root certificate with an
	// AIA caIssuers URI of the form <AIABase>/<tag>/<level>.der; empty
	// disables AIA in the whole hierarchy (the paper's 579 missing-AIA
	// chains, and the regional-CA mechanism behind Table 8).
	AIABase string
	// TopNoAKID omits the Authority Key Identifier on the topmost
	// intermediate, so a client or analyzer can link it to the root only
	// through its issuer DN or an AIA fetch — the population's lever for
	// Table 8's "AIA Not Supported" column.
	TopNoAKID bool
}

// NewSyntheticIssuer builds a synthetic two-intermediate hierarchy.
func NewSyntheticIssuer(cfg IssuerConfig) *Issuer {
	p := cfg.Profile
	base := cfg.Base
	name := func(s string) string {
		if cfg.Tag == "" {
			return p.Name + " " + s
		}
		return p.Name + " " + s + " " + cfg.Tag
	}
	iss := &Issuer{Profile: p, Tag: cfg.Tag, aiaBase: cfg.AIABase}

	root := certmodel.SyntheticRoot(name("Root CA"), base)

	topKey := certmodel.NewSyntheticKey(name("TLS CA"))
	top := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject:               certmodel.Name{CommonName: name("TLS CA"), Organization: root.Subject.Organization},
		Issuer:                root.Subject,
		Serial:                "int-" + name("TLS CA"),
		NotBefore:             base,
		NotAfter:              base.AddDate(5, 0, 0),
		Key:                   topKey,
		SignedBy:              certmodel.KeyOf(root),
		OmitAKID:              cfg.TopNoAKID,
		KeyUsage:              certmodel.KeyUsageCertSign | certmodel.KeyUsageCRLSign,
		HasKeyUsage:           true,
		IsCA:                  true,
		BasicConstraintsValid: true,
		AIAIssuerURLs:         iss.aiaURLs("root"),
	})

	issuingKey := certmodel.NewSyntheticKey(name("DV TLS CA"))
	issuing := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject:               certmodel.Name{CommonName: name("DV TLS CA"), Organization: root.Subject.Organization},
		Issuer:                top.Subject,
		Serial:                "int-" + name("DV TLS CA"),
		NotBefore:             base,
		NotAfter:              base.AddDate(5, 0, 0),
		Key:                   issuingKey,
		SignedBy:              certmodel.KeyOf(top),
		KeyUsage:              certmodel.KeyUsageCertSign | certmodel.KeyUsageCRLSign,
		HasKeyUsage:           true,
		IsCA:                  true,
		BasicConstraintsValid: true,
		AIAIssuerURLs:         iss.aiaURLs("top"),
	})

	legacy := certmodel.SyntheticRoot(name("Legacy Root"), base.AddDate(-8, 0, 0))
	cross := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject:               top.Subject,
		Issuer:                legacy.Subject,
		Serial:                "cross-" + name("TLS CA"),
		NotBefore:             base,
		NotAfter:              base.AddDate(4, 0, 0),
		Key:                   certmodel.KeyOf(top),
		SignedBy:              certmodel.KeyOf(legacy),
		KeyUsage:              certmodel.KeyUsageCertSign,
		HasKeyUsage:           true,
		IsCA:                  true,
		BasicConstraintsValid: true,
	})

	rootCross := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject:               root.Subject,
		Issuer:                legacy.Subject,
		Serial:                "rootcross-" + name("Root CA"),
		NotBefore:             base,
		NotAfter:              base.AddDate(4, 0, 0),
		Key:                   certmodel.KeyOf(root),
		SignedBy:              certmodel.KeyOf(legacy),
		KeyUsage:              certmodel.KeyUsageCertSign,
		HasKeyUsage:           true,
		IsCA:                  true,
		BasicConstraintsValid: true,
	})

	iss.Root = root
	iss.Intermediates = []*certmodel.Certificate{top, issuing}
	iss.CrossSigned = cross
	iss.CrossRoot = legacy
	iss.RootCrossSigned = rootCross
	return iss
}

// aiaURLs returns the caIssuers URI list pointing at the given level of this
// hierarchy, or nil when AIA is disabled.
func (iss *Issuer) aiaURLs(level string) []string {
	if iss.aiaBase == "" {
		return nil
	}
	return []string{iss.aiaBase + "/" + urlTag(iss.Profile.Name, iss.Tag) + "/" + level + ".der"}
}

func urlTag(name, tag string) string {
	s := ""
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			s += string(r)
		case r >= 'A' && r <= 'Z':
			s += string(r - 'A' + 'a')
		}
	}
	if tag != "" {
		s += "-" + tag
	}
	return s
}

// RegisterAIA publishes each certificate at the URI its children reference.
func (iss *Issuer) RegisterAIA(put func(uri string, cert *certmodel.Certificate)) {
	if iss.aiaBase == "" {
		return
	}
	put(iss.aiaURLs("root")[0], iss.Root)
	put(iss.aiaURLs("top")[0], iss.Intermediates[0])
	put(iss.aiaURLs("issuing")[0], iss.Intermediates[1])
}

// IssuingCA returns the intermediate that signs leaves.
func (iss *Issuer) IssuingCA() *certmodel.Certificate {
	return iss.Intermediates[len(iss.Intermediates)-1]
}

// LeafOptions tweak a single leaf issuance.
type LeafOptions struct {
	// OmitAIA drops the AIA extension from this leaf even when the
	// hierarchy carries AIA.
	OmitAIA bool
	// AIAOverride replaces the leaf's caIssuers URI (dead URIs, the CAcert
	// self-pointer case).
	AIAOverride string
	// Serial, when non-empty, replaces the issuer's internal serial counter
	// for this leaf. Callers that issue from multiple goroutines (the
	// parallel population generator) must supply one: the internal counter
	// is shared mutable state, and serials derived from it would depend on
	// issuance order.
	Serial string
}

// IssueLeaf creates a leaf certificate for domain valid [notBefore,
// notAfter].
func (iss *Issuer) IssueLeaf(domain string, notBefore, notAfter time.Time, opts LeafOptions) *certmodel.Certificate {
	var serial string
	if opts.Serial != "" {
		serial = fmt.Sprintf("%s-%s-%s", iss.Profile.Name, iss.Tag, opts.Serial)
	} else {
		iss.serial++
		serial = fmt.Sprintf("%s-%s-%06d", iss.Profile.Name, iss.Tag, iss.serial)
	}
	var aiaList []string
	switch {
	case opts.AIAOverride != "":
		aiaList = []string{opts.AIAOverride}
	case !opts.OmitAIA:
		aiaList = iss.aiaURLs("issuing")
	}
	key := certmodel.NewSyntheticKey("leaf:" + domain + ":" + serial)
	return certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject:               certmodel.Name{CommonName: domain},
		Issuer:                iss.IssuingCA().Subject,
		Serial:                serial,
		NotBefore:             notBefore,
		NotAfter:              notAfter,
		Key:                   key,
		SignedBy:              certmodel.KeyOf(iss.IssuingCA()),
		KeyUsage:              certmodel.KeyUsageDigitalSignature | certmodel.KeyUsageKeyEncipherment,
		HasKeyUsage:           true,
		BasicConstraintsValid: true,
		DNSNames:              []string{domain},
		AIAIssuerURLs:         aiaList,
	})
}

// Issue creates the leaf and assembles the delivery files according to the
// profile's Table 6 characteristics.
func (iss *Issuer) Issue(domain string, notBefore, notAfter time.Time, opts LeafOptions) Delivery {
	leaf := iss.IssueLeaf(domain, notBefore, notAfter, opts)
	d := Delivery{Leaf: leaf}

	// Correct bundle order is leaf-first issuance order: issuing CA, then
	// the CAs above it, optionally the root last.
	correct := make([]*certmodel.Certificate, 0, len(iss.Intermediates)+1)
	for i := len(iss.Intermediates) - 1; i >= 0; i-- {
		correct = append(correct, iss.Intermediates[i])
	}
	if iss.Profile.ProvidesRoot {
		correct = append(correct, iss.Root)
	}
	if iss.Profile.OmitsIntermediate {
		// Drop the topmost intermediate — TAIWAN-CA's missing CA cert.
		trimmed := make([]*certmodel.Certificate, 0, len(correct))
		for _, c := range correct {
			if c == iss.Intermediates[0] {
				continue
			}
			trimmed = append(trimmed, c)
		}
		correct = trimmed
	}

	if iss.Profile.ProvidesCABundle {
		bundle := append([]*certmodel.Certificate(nil), correct...)
		if iss.Profile.BundleReversed {
			for i, j := 0, len(bundle)-1; i < j; i, j = i+1, j-1 {
				bundle[i], bundle[j] = bundle[j], bundle[i]
			}
		}
		d.Bundle = bundle
	}
	if iss.Profile.ProvidesFullchain {
		d.Fullchain = append([]*certmodel.Certificate{leaf}, correct...)
	}
	return d
}
