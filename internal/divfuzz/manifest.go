// The manifest is the run's deterministic fingerprint: everything in it is a
// pure function of the Config, so two runs with the same seed — at any
// worker count — marshal to identical bytes. Raced observables (wall time,
// cache hit counters) are deliberately absent; they live in the metrics
// snapshot instead.
package divfuzz

import "encoding/json"

// Manifest summarizes a run for reproducibility checks and CI byte-identity
// assertions.
type Manifest struct {
	Seed        int64 `json:"seed"`
	Generations int   `json:"generations"`
	PerGen      int   `json:"per_gen"`
	SeedDomains int   `json:"seed_domains"`
	MaxMuts     int   `json:"max_muts"`
	Mutants     int   `json:"mutants"`

	// Corpus holds every admitted genome's encoding in admission order.
	Corpus []string `json:"corpus"`
	// Bins counts divergences per attributed class plus "novel"; JSON
	// marshalling sorts the keys, keeping the bytes stable.
	Bins map[string]int `json:"bins"`
	// Divergences lists the confirmed divergences in discovery order.
	Divergences []ManifestEntry `json:"divergences"`
}

// ManifestEntry is one divergence's deterministic identity.
type ManifestEntry struct {
	Digest    string   `json:"digest"`
	Base      int      `json:"base"`
	Domain    string   `json:"domain"`
	Genome    string   `json:"genome"`
	Found     string   `json:"found"`
	Signature string   `json:"signature"`
	Causes    []string `json:"causes,omitempty"`
	Novel     bool     `json:"novel,omitempty"`
}

// Manifest builds the run's manifest.
func (r *Result) Manifest() Manifest {
	m := Manifest{
		Seed:        r.Cfg.Seed,
		Generations: r.Cfg.Generations,
		PerGen:      r.Cfg.PerGen,
		SeedDomains: r.Cfg.SeedDomains,
		MaxMuts:     r.Cfg.MaxMuts,
		Mutants:     r.Mutants,
		Bins:        r.Bins,
	}
	for _, g := range r.Corpus {
		m.Corpus = append(m.Corpus, g.Encode())
	}
	for _, d := range r.Divergences {
		m.Divergences = append(m.Divergences, ManifestEntry{
			Digest:    d.Digest,
			Base:      d.Minimized.Base,
			Domain:    d.Domain,
			Genome:    d.Minimized.Encode(),
			Found:     d.Found.Encode(),
			Signature: d.Signature,
			Causes:    d.Causes,
			Novel:     d.Novel,
		})
	}
	return m
}

// MarshalIndent renders the manifest as indented JSON with a trailing
// newline — the exact bytes cmd/divfuzz writes, compared verbatim by the CI
// reproducibility check.
func (m Manifest) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
