// The evolutionary scheduler: generations of mutants flow through the
// pipeline engine — parallel evaluation, serial rank-ordered admission — so
// a fixed seed reproduces the identical corpus, minimized divergence set,
// and bin counts for any worker count.
package divfuzz

import (
	"context"
	"sort"
	"strings"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/compliance"
	"chainchaos/internal/difftest"
	"chainchaos/internal/obs"
	"chainchaos/internal/parallel"
	"chainchaos/internal/pipeline"
	"chainchaos/internal/population"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/topo"
	"chainchaos/internal/verdictcache"
)

// Config parameterizes a fuzzing run.
type Config struct {
	// Seed drives everything: the seed population, every mutation draw,
	// every parent pick. Two runs with equal Config produce byte-identical
	// manifests.
	Seed int64
	// Generations is the number of evolutionary rounds after the seed
	// corpus is evaluated (default 8).
	Generations int
	// PerGen is the number of mutants bred per generation (default 256).
	PerGen int
	// SeedDomains is the size of the seed population whose deployed lists
	// form generation zero (default 48). Defective seed domains diverge
	// immediately, so the known I-1…I-4 classes are rediscovered before any
	// mutation runs.
	SeedDomains int
	// MaxMuts bounds genome length; breeding past it first drops a random
	// mutation (default 6).
	MaxMuts int
	// Workers bounds evaluation parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Dedup enables the shared verdict-vector cache: mutants reaching a
	// list digest already graded reuse its vector. Hit counters race and
	// are excluded from the manifest; results are unaffected.
	Dedup bool
	// Metrics receives mutants/divergence/bin counters and stage timings.
	Metrics *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.Generations <= 0 {
		c.Generations = 8
	}
	if c.PerGen <= 0 {
		c.PerGen = 256
	}
	if c.SeedDomains <= 0 {
		c.SeedDomains = 48
	}
	if c.MaxMuts <= 0 {
		c.MaxMuts = 6
	}
}

// Divergence is one confirmed, minimized divergence.
type Divergence struct {
	// Found is the genome as discovered; Minimized its delta-debugged
	// canonical form, whose Digest identifies the divergence.
	Found     Genome
	Minimized Genome
	Digest    string
	// Signature is the verdict vector that triggered admission.
	Signature string
	// Causes holds the attributed I-classes ("I-1".."I-4"); empty when the
	// topology falls outside the known classes.
	Causes []string
	// Novel marks a divergence with no I-class attribution — the fuzzer's
	// actual discoveries, exported as scenarios.
	Novel bool
	// Domain is the base domain's hostname; List the minimized mutant's
	// deployed list.
	Domain string
	List   []*certmodel.Certificate
}

// Result is a completed run.
type Result struct {
	Cfg Config
	// Pop is the seed population context (hierarchies, AIA repository,
	// vendor stores) the run graded against.
	Pop *population.Population
	// Corpus holds every admitted genome in admission order; its encodings
	// appear in the manifest.
	Corpus []Genome
	// Divergences are the confirmed divergences in discovery order,
	// deduplicated by minimized digest.
	Divergences []*Divergence
	// Bins counts divergences per attributed class ("I-1".."I-4") plus
	// "novel".
	Bins map[string]int
	// Mutants is the total number of evaluations admitted at the sink
	// (seed corpus included).
	Mutants int
}

// fuzzer is the run's sink-side state; all mutation happens in rank order.
type fuzzer struct {
	cfg      Config
	pop      *population.Population
	bases    [][]*certmodel.Certificate
	names    []string
	analyzer *compliance.Analyzer
	oracle   *Oracle // sink-side: minimization and attribution
	vcache   *verdictcache.Cache[Vector]
	warm     *rootstore.Store

	corpus      []Genome
	seenSigs    map[string]bool
	seenDigests map[string]bool
	divergences []*Divergence
	bins        map[string]int
	mutants     int

	cMutants, cDivergent, cNovel *obs.Counter
}

// Run executes the fuzzing campaign.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	pop := population.Generate(population.Config{
		Size: cfg.SeedDomains, Seed: cfg.Seed, Workers: cfg.Workers,
	})

	warm := difftest.DefaultWarmCache(pop)
	var vcache *verdictcache.Cache[Vector]
	if cfg.Dedup {
		vcache = verdictcache.New[Vector]("divfuzz.vcache", cfg.Metrics)
	}

	f := &fuzzer{
		cfg:  cfg,
		pop:  pop,
		warm: warm,
		analyzer: &compliance.Analyzer{Completeness: compliance.CompletenessConfig{
			Roots:   pop.Roots(),
			Fetcher: pop.Repo,
		}},
		oracle:      NewOracle(pop, warm, vcache, cfg.Metrics),
		vcache:      vcache,
		seenSigs:    make(map[string]bool),
		seenDigests: make(map[string]bool),
		bins:        make(map[string]int),
		cMutants:    cfg.Metrics.Counter("divfuzz.mutants"),
		cDivergent:  cfg.Metrics.Counter("divfuzz.divergent"),
		cNovel:      cfg.Metrics.Counter("divfuzz.novel"),
	}
	for _, d := range pop.Domains {
		f.bases = append(f.bases, d.List)
		f.names = append(f.names, d.Name)
	}

	// Generation zero: the seed corpus itself. Defective domains diverge
	// here, rediscovering the known classes before any mutation runs.
	seed := f.cfg.Metrics.Timer("divfuzz.generation").Start()
	for i := range f.bases {
		f.admit(Genome{Base: i}, f.oracle.Evaluate(f.bases[i]))
	}
	seed.Stop()

	for gen := 1; gen <= cfg.Generations; gen++ {
		if err := f.generation(ctx, gen); err != nil {
			return nil, err
		}
	}
	if f.vcache != nil {
		f.vcache.Seal()
	}
	return &Result{
		Cfg: cfg, Pop: pop,
		Corpus:      f.corpus,
		Divergences: f.divergences,
		Bins:        f.bins,
		Mutants:     f.mutants,
	}, nil
}

// generation breeds and evaluates one round of mutants. Parents come from a
// corpus snapshot frozen here, mutation draws are pure in (Seed, gen, rank),
// and admission happens at the sink in rank order — the three properties
// that make the run worker-invariant.
func (f *fuzzer) generation(ctx context.Context, gen int) error {
	t := f.cfg.Metrics.Timer("divfuzz.generation").Start()
	defer t.Stop()
	snapshot := append([]Genome(nil), f.corpus...)
	workers := parallel.Workers(f.cfg.Workers)

	type evaluated struct {
		g   Genome
		vec Vector
	}
	opts := pipeline.Options{Name: "divfuzz", Metrics: f.cfg.Metrics}
	src := pipeline.From(ctx, opts, "breed", 0, func(rank int) (int, bool, error) {
		return rank, rank < f.cfg.PerGen, nil
	})
	oracles := make([]*Oracle, workers)
	ev := pipeline.Through(src, pipeline.Stage[int, evaluated]{
		Name:    "evaluate",
		Workers: workers,
		OnWorker: func(worker int) func() {
			oracles[worker] = NewOracle(f.pop, f.warm, f.vcache, f.cfg.Metrics)
			return nil
		},
		Fn: func(_ context.Context, worker, _ int, rank int) (evaluated, error) {
			g := breed(snapshot, f.cfg, gen, rank)
			vec := oracles[worker].Evaluate(Apply(f.pop, f.bases[g.Base], g))
			f.cMutants.Inc()
			return evaluated{g: g, vec: vec}, nil
		},
	})
	return ev.Drain(func(_ int, e evaluated) error {
		f.admit(e.g, e.vec)
		return nil
	})
}

// breed derives one child genome from the frozen corpus snapshot — a pure
// function of (cfg.Seed, gen, rank) and the snapshot.
func breed(snapshot []Genome, cfg Config, gen, rank int) Genome {
	r := newRNG(cfg.Seed, gen, rank)
	g := snapshot[r.intn(len(snapshot))].Clone()
	if len(g.Muts) >= cfg.MaxMuts {
		i := r.intn(len(g.Muts))
		g.Muts = append(g.Muts[:i], g.Muts[i+1:]...)
	}
	g.Muts = append(g.Muts, Mut{
		Op:   Op(r.intn(int(opCount))),
		A:    r.intn(1 << 16),
		Salt: r.next(),
	})
	return g
}

// admit is the sink: coverage bookkeeping, minimization, and attribution,
// strictly in rank order.
func (f *fuzzer) admit(g Genome, vec Vector) {
	f.mutants++
	sig := vec.Signature()
	if f.seenSigs[sig] {
		return
	}
	f.seenSigs[sig] = true
	f.corpus = append(f.corpus, g)
	if !vec.Divergent() {
		return
	}
	min := Minimize(f.pop, f.bases[g.Base], g, f.oracle)
	digest := min.Digest()
	if f.seenDigests[digest] {
		return
	}
	f.seenDigests[digest] = true
	f.cDivergent.Inc()

	list := Apply(f.pop, f.bases[g.Base], min)
	d := &Divergence{
		Found:     g,
		Minimized: min,
		Digest:    digest,
		Signature: sig,
		Domain:    f.names[g.Base],
		List:      list,
	}
	d.Causes = f.attribute(d.Domain, list)
	d.Novel = len(d.Causes) == 0
	if d.Novel {
		f.bins["novel"]++
		f.cNovel.Inc()
	}
	for _, c := range d.Causes {
		f.bins[c]++
	}
	f.cfg.Metrics.Counter("divfuzz.bin." + binMetric(d)).Inc()
	f.divergences = append(f.divergences, d)
}

// binMetric renders a divergence's primary bin for the metric name.
func binMetric(d *Divergence) string {
	if d.Novel {
		return "novel"
	}
	return d.Causes[0]
}

// attribute grades the minimized list with full outcomes and classifies the
// disagreement via the harness's cause attribution; only the short I-class
// codes are kept ("other" contributes nothing).
func (f *fuzzer) attribute(domain string, list []*certmodel.Certificate) []string {
	rec := &difftest.ChainRecord{
		Domain:   &population.Domain{Name: domain, List: list},
		Report:   f.analyzer.Analyze(domain, topo.Build(list)),
		Verdicts: f.oracle.Outcomes(list),
	}
	var out []string
	for _, c := range difftest.AttributeCauses(rec) {
		code := strings.Fields(c.String())[0]
		if strings.HasPrefix(code, "I-") {
			out = append(out, code)
		}
	}
	return out
}

// Scenarios serializes the run's novel divergences as injectable scenarios:
// the minimized list, the trust anchors its paths can reach, and the AIA
// entries those certificates reference — everything internal/population
// needs to replay the topology in a generated population or a study run.
func (r *Result) Scenarios() []population.Scenario {
	var out []population.Scenario
	for _, d := range r.Divergences {
		if !d.Novel {
			continue
		}
		s := population.Scenario{
			Name:      "novel-" + d.Digest[:12],
			Signature: d.Signature,
			Causes:    d.Causes,
			Domain:    d.Domain,
		}
		for _, c := range d.List {
			s.Certs = append(s.Certs, population.CertSpecOf(c))
		}
		closure, roots := r.ancestorClosure(d.List)
		for _, root := range roots {
			s.Roots = append(s.Roots, population.CertSpecOf(root))
		}
		for _, c := range closure {
			for _, uri := range c.AIAIssuerURLs {
				if _, ok := s.AIA[uri]; ok {
					continue
				}
				target, err := r.Pop.Repo.Fetch(uri)
				if err != nil {
					continue // dead or wrong endpoints don't travel
				}
				if s.AIA == nil {
					s.AIA = make(map[string]population.CertSpec)
				}
				s.AIA[uri] = population.CertSpecOf(target)
			}
		}
		out = append(out, s)
	}
	return out
}

// ancestorClosure walks issuer links upward from the list through the
// population's CA material, returning every certificate visited and the
// self-signed roots reached, both in deterministic order.
func (r *Result) ancestorClosure(list []*certmodel.Certificate) (closure, roots []*certmodel.Certificate) {
	byKey := make(map[string][]*certmodel.Certificate)
	add := func(c *certmodel.Certificate) {
		k := string(c.PublicKeyID)
		byKey[k] = append(byKey[k], c)
	}
	for _, iss := range r.Pop.Issuers {
		add(iss.Root)
		add(iss.CrossRoot)
		add(iss.RootCrossSigned)
		add(iss.CrossSigned)
		for _, inter := range iss.Intermediates {
			add(inter)
		}
	}
	seen := make(map[[32]byte]bool)
	var walk func(c *certmodel.Certificate)
	walk = func(c *certmodel.Certificate) {
		fp := c.Fingerprint()
		if seen[fp] {
			return
		}
		seen[fp] = true
		closure = append(closure, c)
		if c.SelfSigned() {
			roots = append(roots, c)
			return
		}
		for _, parent := range byKey[string(c.SignedByKeyID)] {
			walk(parent)
		}
	}
	for _, c := range list {
		walk(c)
	}
	sort.Slice(roots, func(i, j int) bool {
		return roots[i].FingerprintHex() < roots[j].FingerprintHex()
	})
	return closure, roots
}
