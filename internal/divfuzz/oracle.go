// The divergence oracle: every mutant is graded by the full client-profile
// matrix, wired exactly as the differential harness wires its graders, and
// the per-client verdict classes form the coverage signature.
package divfuzz

import (
	"strings"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/clients"
	"chainchaos/internal/core"
	"chainchaos/internal/difftest"
	"chainchaos/internal/obs"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/population"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/verdictcache"
)

// Vector is the per-profile verdict classes of one list, in fixed profile
// order — the fuzzer's coverage coordinate.
type Vector []core.VerdictClass

// Signature joins the classes into the coverage key.
func (v Vector) Signature() string {
	parts := make([]string, len(v))
	for i, c := range v {
		parts[i] = c.String()
	}
	return strings.Join(parts, "|")
}

// Divergent reports whether any two profiles disagree.
func (v Vector) Divergent() bool {
	for i := 1; i < len(v); i++ {
		if v[i] != v[0] {
			return true
		}
	}
	return false
}

// Oracle grades certificate lists across every client profile. It is
// single-goroutine state (one per worker); the verdict cache and warm store
// it reads are safe to share.
type Oracle struct {
	profiles []clients.Profile
	builders []*pathbuild.Builder
	cache    *verdictcache.Cache[Vector]
	scope    certmodel.FP
}

// NewOracle builds an oracle over the population's client matrix: one
// pathbuild.Builder per profile with the client's vendor store, the
// population's AIA repository, and the shared read-only warm intermediate
// cache — the identical context internal/difftest grades in, so a divergence
// found here is a divergence the harness would report. cache, when non-nil,
// memoizes vectors by list digest across all oracles sharing it.
func NewOracle(pop *population.Population, warm *rootstore.Store, cache *verdictcache.Cache[Vector], reg *obs.Registry) *Oracle {
	profiles := clients.All()
	return &Oracle{
		profiles: profiles,
		builders: difftest.Builders(pop, profiles, warm, reg),
		cache:    cache,
		scope:    clients.Fingerprint(profiles),
	}
}

// Evaluate returns the list's verdict vector, consulting the shared dedup
// cache first. Cache hit counters race across workers; the vector itself is
// a pure function of the list, so cached and fresh results are identical.
func (o *Oracle) Evaluate(list []*certmodel.Certificate) Vector {
	if len(list) == 0 {
		return nil
	}
	var key verdictcache.Key
	if o.cache != nil {
		key = verdictcache.Key{Digest: certmodel.ListDigest(list), Scope: o.scope}
		if v, ok := o.cache.Get(key); ok {
			return v
		}
	}
	v := make(Vector, len(o.builders))
	for i, b := range o.builders {
		v[i] = core.Classify(b.Build(list, ""))
	}
	if o.cache != nil {
		o.cache.Put(key, v)
	}
	return v
}

// Outcomes runs the full construction per profile, bypassing the class
// cache — cause attribution needs the complete outcomes, not just their
// classes. Only confirmed divergences pay this cost.
func (o *Oracle) Outcomes(list []*certmodel.Certificate) []difftest.ClientVerdict {
	out := make([]difftest.ClientVerdict, len(o.builders))
	for i, b := range o.builders {
		out[i] = difftest.ClientVerdict{
			Client:  o.profiles[i].Name,
			Kind:    o.profiles[i].Kind,
			Outcome: b.Build(list, ""),
		}
	}
	return out
}
