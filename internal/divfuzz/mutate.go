// Mutation application: a genome materializes into a certificate list by
// copying its base and applying each mutation in order. Certificate-field
// operators rebuild through certmodel.SyntheticConfigOf — which round-trips
// bit-identically — so a mutant differs from its base in exactly the fields
// the operator touched.
package divfuzz

import (
	"chainchaos/internal/ca"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/population"
)

// Apply materializes g over base: the base list is copied, then each
// mutation is applied in order. The population supplies cross-signing
// material (other hierarchies' certificates). Apply never mutates base or
// the population and is a pure function of its arguments.
func Apply(pop *population.Population, base []*certmodel.Certificate, g Genome) []*certmodel.Certificate {
	list := append([]*certmodel.Certificate(nil), base...)
	for _, m := range g.Muts {
		list = applyOne(pop, list, m)
	}
	return list
}

// maxBloat caps list growth so bloat chains stay bounded while still
// exceeding every profile's input limit.
const maxBloat = 40

func applyOne(pop *population.Population, list []*certmodel.Certificate, m Mut) []*certmodel.Certificate {
	n := len(list)
	if n == 0 {
		return list
	}
	switch m.Op {
	case OpSwap:
		i, j := m.A%n, int(m.Salt%uint64(n))
		list[i], list[j] = list[j], list[i]
	case OpDup:
		i := m.A % n
		list = append(list, nil)
		copy(list[i+1:], list[i:])
		list[i+1] = list[i]
	case OpDrop:
		if n > 1 {
			i := m.A % n
			list = append(list[:i], list[i+1:]...)
		}
	case OpReverse:
		for i, j := 1, n-1; i < j; i, j = i+1, j-1 {
			list[i], list[j] = list[j], list[i]
		}
	case OpBloat:
		orig := append([]*certmodel.Certificate(nil), list...)
		for len(list) <= ppMaxInputList && len(list) < maxBloat {
			list = append(list, orig...)
		}
	case OpTruncate:
		list = list[:1]
	case OpCrossInsert:
		iss := pickIssuer(pop, m.Salt)
		i := m.A % (n + 1)
		list = append(list, nil)
		copy(list[i+1:], list[i:])
		list[i] = iss.CrossSigned
	case OpCrossRoot:
		iss := pickIssuer(pop, m.Salt)
		list = append(list, iss.Root, iss.RootCrossSigned)
	case OpStripSKID:
		i := m.A % n
		list[i] = rebuild(list[i], func(cfg *certmodel.SyntheticConfig) {
			cfg.OmitSKID = true
		})
	case OpPerturbAKID:
		i := m.A % n
		list[i] = rebuild(list[i], func(cfg *certmodel.SyntheticConfig) {
			cfg.OmitAKID = false
			cfg.AKIDOverride = saltBytes(m.Salt)
		})
	case OpShiftValidity:
		i := m.A % n
		years := -3
		if m.Salt&1 == 1 {
			years = 2
		}
		list[i] = rebuild(list[i], func(cfg *certmodel.SyntheticConfig) {
			cfg.NotBefore = cfg.NotBefore.AddDate(years, 0, 0)
			cfg.NotAfter = cfg.NotAfter.AddDate(years, 0, 0)
		})
	case OpPerturbEKU:
		i := m.A % n
		list[i] = rebuild(list[i], func(cfg *certmodel.SyntheticConfig) {
			cfg.ExtKeyUsages = []certmodel.ExtKeyUsage{certmodel.EKUCodeSigning}
		})
	case OpToggleBC:
		i := m.A % n
		list[i] = rebuild(list[i], func(cfg *certmodel.SyntheticConfig) {
			cfg.IsCA = !cfg.IsCA
			cfg.BasicConstraintsValid = true
		})
	case OpNameConstrain:
		i := m.A % n
		list[i] = rebuild(list[i], func(cfg *certmodel.SyntheticConfig) {
			cfg.PermittedDNSDomains = []string{"constrained.invalid"}
		})
	case OpSelfSignLeaf:
		list[0] = rebuild(list[0], func(cfg *certmodel.SyntheticConfig) {
			cfg.Issuer = cfg.Subject
			cfg.SignedBy = cfg.Key
		})
	}
	return list
}

// ppMaxInputList is GnuTLS's input-list limit, the boundary OpBloat crosses.
const ppMaxInputList = 16

// rebuild reconstructs a synthetic certificate with the given config tweak,
// relying on the SyntheticConfigOf round-trip for all untouched fields.
func rebuild(c *certmodel.Certificate, tweak func(*certmodel.SyntheticConfig)) *certmodel.Certificate {
	cfg := certmodel.SyntheticConfigOf(c)
	tweak(&cfg)
	return certmodel.NewSynthetic(cfg)
}

// pickIssuer selects a hierarchy by salt; the population always has at least
// one.
func pickIssuer(pop *population.Population, salt uint64) *ca.Issuer {
	return pop.Issuers[int(salt%uint64(len(pop.Issuers)))]
}

// saltBytes derives a fixed-width key identifier from a salt — deliberately
// matching no real key.
func saltBytes(salt uint64) []byte {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(salt >> (8 * i))
	}
	return b
}
