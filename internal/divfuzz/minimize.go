// Greedy delta-debugging over mutation lists: a divergent genome is reduced
// to a local minimum that preserves its divergence signature, yielding the
// canonical form divergences are deduplicated and exported by.
package divfuzz

import (
	"chainchaos/internal/certmodel"
	"chainchaos/internal/population"
)

// Minimize deletes mutations one at a time, keeping each deletion that
// preserves the genome's signature, and loops until a full pass removes
// nothing. Running to a fixpoint makes the result canonical:
// Minimize(Minimize(g)) == Minimize(g), which the divergence digest relies
// on. The base list and signature evaluation are pure, so minimization is
// deterministic wherever it runs.
func Minimize(pop *population.Population, base []*certmodel.Certificate, g Genome, o *Oracle) Genome {
	want := o.Evaluate(Apply(pop, base, g)).Signature()
	muts := append([]Mut(nil), g.Muts...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(muts); i++ {
			trial := make([]Mut, 0, len(muts)-1)
			trial = append(trial, muts[:i]...)
			trial = append(trial, muts[i+1:]...)
			got := o.Evaluate(Apply(pop, base, Genome{Base: g.Base, Muts: trial}))
			if got.Signature() == want {
				muts = trial
				changed = true
				i--
			}
		}
	}
	return Genome{Base: g.Base, Muts: muts}
}
