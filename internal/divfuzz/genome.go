// Package divfuzz is a coverage-guided divergence fuzzer for certificate
// chain construction: it mutates deployed certificate lists and keeps the
// mutants on which any two client profiles disagree about the chain — the
// behavioural divergences the paper's differential harness finds in the wild,
// searched for here by evolution instead of by population statistics.
//
// The feedback signal is the verdict vector: each mutant is graded by every
// client profile (the same builder wiring as internal/difftest) and the
// per-client verdict classes, joined in profile order, form its signature. A
// mutant whose signature has not been seen joins the corpus; a divergent
// signature (any two classes differ) is minimized by greedy delta-debugging
// to a canonical genome, attributed to the paper's I-1…I-4 causes, and —
// when it falls outside them — emitted as an injectable scenario that
// internal/population can replay.
//
// Determinism contract (the PR 1 rule): every mutation draw derives from
// (Config.Seed, generation, rank) through a splitmix64 stream, parents are
// picked from a corpus snapshot frozen at generation start, and corpus
// admission happens at the pipeline sink in rank order — so a given seed
// reproduces the identical corpus, minimized set, and bin counts for any
// worker count.
package divfuzz

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Op enumerates the mutation operators. Each is total: indices are taken
// modulo the current list length and inapplicable ops degrade to no-ops, so
// any genome applies to any list.
type Op uint8

const (
	// OpSwap exchanges two list positions.
	OpSwap Op = iota
	// OpDup inserts a duplicate of one certificate after itself — the
	// Apache two-file shape.
	OpDup
	// OpDrop removes one certificate (never the last one standing).
	OpDrop
	// OpReverse reverses the intermediates, leaving the leaf first — the
	// reseller-bundle shape behind finding I-1.
	OpReverse
	// OpBloat repeats the list until it exceeds GnuTLS's 16-certificate
	// input limit — the lever behind finding I-2.
	OpBloat
	// OpTruncate keeps only the leaf — the incomplete-chain shape behind
	// finding I-4.
	OpTruncate
	// OpCrossInsert inserts another hierarchy's cross-signed intermediate.
	OpCrossInsert
	// OpCrossRoot appends a hierarchy's root together with its cross-signed
	// variant — the §6.2 multi-path shape behind finding I-3.
	OpCrossRoot
	// OpStripSKID rebuilds one certificate without its Subject Key
	// Identifier, forcing name-based chaining.
	OpStripSKID
	// OpPerturbAKID rebuilds one certificate with an AKID that matches no
	// key, desynchronizing KID-based and name-based chaining.
	OpPerturbAKID
	// OpShiftValidity moves one certificate's validity window wholly into
	// the past or the future.
	OpShiftValidity
	// OpPerturbEKU replaces one certificate's extended key usages with
	// code-signing only.
	OpPerturbEKU
	// OpToggleBC flips one certificate's basicConstraints CA bit.
	OpToggleBC
	// OpNameConstrain rebuilds one certificate with a permitted-DNS name
	// constraint no leaf satisfies.
	OpNameConstrain
	// OpSelfSignLeaf rebuilds the leaf as self-signed — divergent because
	// only some profiles tolerate self-signed leaves at all.
	OpSelfSignLeaf

	opCount
)

var opNames = [...]string{
	"swap", "dup", "drop", "reverse", "bloat", "truncate",
	"cross-insert", "cross-root", "strip-skid", "perturb-akid",
	"shift-validity", "perturb-eku", "toggle-bc", "name-constrain",
	"self-sign-leaf",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Mut is one mutation: an operator plus its parameters. A is the primary
// index operand (interpreted modulo the list length at application time);
// Salt supplies secondary entropy — the partner index, the issuer pick, the
// direction of a validity shift.
type Mut struct {
	Op   Op
	A    int
	Salt uint64
}

// Genome is a mutant's recipe: a seed-corpus base index plus an ordered
// mutation list. Applying the same genome to the same base is pure, so the
// genome — not the materialized list — is the unit of corpus storage,
// minimization, and manifest identity.
type Genome struct {
	Base int
	Muts []Mut
}

// Clone returns a deep copy whose mutation list the caller may extend.
func (g Genome) Clone() Genome {
	return Genome{Base: g.Base, Muts: append([]Mut(nil), g.Muts...)}
}

// Encode renders the genome canonically: base index, then each mutation as
// op:a:salt. Equal genomes encode equally, and the encoding round-trips
// through the manifest.
func (g Genome) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "b%d", g.Base)
	for _, m := range g.Muts {
		fmt.Fprintf(&b, ";%d:%d:%x", int(m.Op), m.A, m.Salt)
	}
	return b.String()
}

// Digest is the canonical identity of the genome — the sha256 of its
// encoding. Divergences are deduplicated by the digest of their minimized
// genome, which is stable because minimization runs to a fixpoint.
func (g Genome) Digest() string {
	sum := sha256.Sum256([]byte(g.Encode()))
	return hex.EncodeToString(sum[:])
}

// rng is a splitmix64 stream keyed by (seed, generation, rank) — the same
// finalizer the population and study generators use, so every mutation draw
// is a pure function of its coordinates and never of scheduling.
type rng struct{ state uint64 }

func newRNG(seed int64, gen, rank int) *rng {
	return &rng{state: uint64(seed)*0x9E3779B97F4A7C15 +
		uint64(gen)*0xD1B54A32D192ED03 +
		uint64(rank)*0x8CB92BA72F3D8DD7 + 1}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
