package divfuzz

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/difftest"
	"chainchaos/internal/population"
)

// smallCfg is the shared test campaign: big enough to rediscover known
// classes and breed novel topologies, small enough for the race detector.
func smallCfg(workers int) Config {
	return Config{Seed: 1, Generations: 3, PerGen: 96, SeedDomains: 48, Workers: workers, Dedup: true}
}

// TestRunFindsKnownAndNovel: a fixed-seed campaign rediscovers at least one
// of the paper's I-1…I-4 divergence classes and bins at least one topology
// outside them — the acceptance shape the CI smoke asserts on the binary.
func TestRunFindsKnownAndNovel(t *testing.T) {
	res, err := Run(context.Background(), smallCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	known := 0
	for _, class := range []string{"I-1", "I-2", "I-3", "I-4"} {
		known += res.Bins[class]
	}
	if known == 0 {
		t.Fatalf("no known I-class divergence rediscovered; bins: %v", res.Bins)
	}
	if res.Bins["novel"] == 0 {
		t.Fatalf("no novel divergence binned; bins: %v", res.Bins)
	}
	if res.Mutants != 48+3*96 {
		t.Fatalf("mutants = %d, want %d", res.Mutants, 48+3*96)
	}
	for _, d := range res.Divergences {
		if !d.Novel && len(d.Causes) == 0 {
			t.Fatalf("divergence %s neither novel nor attributed", d.Digest[:12])
		}
	}
}

// TestManifestWorkerInvariance: the manifest bytes are identical for 1, 4,
// and 8 workers — the determinism contract the distributed corpus scheduler
// rests on.
func TestManifestWorkerInvariance(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		res, err := Run(context.Background(), smallCfg(workers))
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Manifest().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("workers=%d: manifest differs from workers=1 run", workers)
		}
	}
}

// TestMinimizeIdempotent: minimize(minimize(g)) == minimize(g) for every
// divergence a campaign finds — the fixpoint property the canonical digest
// relies on.
func TestMinimizeIdempotent(t *testing.T) {
	res, err := Run(context.Background(), smallCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) == 0 {
		t.Fatal("campaign found no divergences to minimize")
	}
	warm := difftest.DefaultWarmCache(res.Pop)
	oracle := NewOracle(res.Pop, warm, nil, nil)
	for _, d := range res.Divergences {
		base := res.Pop.Domains[d.Minimized.Base].List
		again := Minimize(res.Pop, base, d.Minimized, oracle)
		if again.Encode() != d.Minimized.Encode() {
			t.Fatalf("minimize not idempotent for %s: %s -> %s",
				d.Digest[:12], d.Minimized.Encode(), again.Encode())
		}
		if again.Digest() != d.Digest {
			t.Fatalf("digest drifted on re-minimize for %s", d.Digest[:12])
		}
	}
}

// TestApplyPure: applying a genome never mutates the base list.
func TestApplyPure(t *testing.T) {
	pop := population.Generate(population.Config{Size: 4, Seed: 2})
	base := pop.Domains[0].List
	before := certmodel.ListDigest(base)
	snapshot := append([]*certmodel.Certificate(nil), base...)
	for op := Op(0); op < opCount; op++ {
		Apply(pop, base, Genome{Muts: []Mut{{Op: op, A: 3, Salt: 7}}})
	}
	if certmodel.ListDigest(base) != before {
		t.Fatal("Apply mutated the base list digest")
	}
	for i := range base {
		if base[i] != snapshot[i] {
			t.Fatalf("Apply replaced base[%d]", i)
		}
	}
}

// TestGenomeEncodeStable: encoding is canonical and digest-stable.
func TestGenomeEncodeStable(t *testing.T) {
	g := Genome{Base: 3, Muts: []Mut{{Op: OpReverse, A: 5, Salt: 0xbeef}, {Op: OpBloat, A: 1, Salt: 2}}}
	if got, want := g.Encode(), "b3;3:5:beef;4:1:2"; got != want {
		t.Fatalf("Encode() = %q, want %q", got, want)
	}
	if g.Digest() != g.Clone().Digest() {
		t.Fatal("clone digest differs")
	}
	c := g.Clone()
	c.Muts[0].A = 99
	if g.Muts[0].A != 5 {
		t.Fatal("Clone shares the mutation slice")
	}
}

// TestScenariosReplayable: every emitted scenario survives the JSON round
// trip and materializes to the exact divergent list — digest-equal — so
// population injection replays what the fuzzer graded.
func TestScenariosReplayable(t *testing.T) {
	res, err := Run(context.Background(), smallCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	scs := res.Scenarios()
	if len(scs) == 0 {
		t.Fatal("campaign emitted no scenarios")
	}
	data, err := json.Marshal(scs)
	if err != nil {
		t.Fatal(err)
	}
	var back []population.Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	byDigest := map[string]*Divergence{}
	for _, d := range res.Divergences {
		if d.Novel {
			byDigest["novel-"+d.Digest[:12]] = d
		}
	}
	for _, s := range back {
		m, err := s.Materialize()
		if err != nil {
			t.Fatalf("scenario %s: %v", s.Name, err)
		}
		d := byDigest[s.Name]
		if d == nil {
			t.Fatalf("scenario %s has no matching novel divergence", s.Name)
		}
		if certmodel.ListDigest(m.List) != certmodel.ListDigest(d.List) {
			t.Fatalf("scenario %s: materialized list digest differs from the graded mutant", s.Name)
		}
		if !reflect.DeepEqual(s.Causes, d.Causes) {
			t.Fatalf("scenario %s: causes %v != %v", s.Name, s.Causes, d.Causes)
		}
	}
}

// TestVectorSignature: divergence detection and signature formatting.
func TestVectorSignature(t *testing.T) {
	pop := population.Generate(population.Config{Size: 2, Seed: 9})
	warm := difftest.DefaultWarmCache(pop)
	o := NewOracle(pop, warm, nil, nil)
	vec := o.Evaluate(pop.Domains[0].List)
	if len(vec) != 8 {
		t.Fatalf("vector has %d entries, want 8", len(vec))
	}
	if vec.Signature() == "" {
		t.Fatal("empty signature")
	}
	uniform := Vector{0, 0, 0}
	if uniform.Divergent() {
		t.Fatal("uniform vector reported divergent")
	}
	mixed := Vector{0, 1, 0}
	if !mixed.Divergent() {
		t.Fatal("mixed vector not reported divergent")
	}
}
