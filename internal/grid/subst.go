// Variable substitution for spec strings: ${name} references a binding, and
// ${a/b}, ${a*b}, ${a+b}, ${a-b} compute simple integer (or float, when
// either operand is one) arithmetic over bindings or literals — enough for
// derived knobs like -dist-lease ${sites/workers} without a template engine.
package grid

import (
	"fmt"
	"strconv"
	"strings"
)

// maxSubstDepth bounds recursive resolution (a binding's value may itself
// contain ${...}, as tied-axis entries do).
const maxSubstDepth = 8

// subst resolves every ${...} in s against vars. When the whole string is a
// single reference, the binding's typed value is returned (so numbers stay
// numbers); otherwise the result is the concatenated string.
func subst(s string, vars map[string]any) (any, error) {
	return substDepth(s, vars, 0)
}

// substString is subst flattened to a string.
func substString(s string, vars map[string]any) (string, error) {
	v, err := subst(s, vars)
	if err != nil {
		return "", err
	}
	return formatValue(v), nil
}

func substDepth(s string, vars map[string]any, depth int) (any, error) {
	if depth > maxSubstDepth {
		return nil, fmt.Errorf("grid: substitution loop resolving %q", s)
	}
	start := strings.Index(s, "${")
	if start < 0 {
		return s, nil
	}
	var b strings.Builder
	b.WriteString(s[:start])
	rest := s[start:]
	first := true
	wholeStart := start == 0
	var whole any
	for {
		if !strings.HasPrefix(rest, "${") {
			i := strings.Index(rest, "${")
			if i < 0 {
				b.WriteString(rest)
				break
			}
			b.WriteString(rest[:i])
			rest = rest[i:]
			continue
		}
		end := strings.Index(rest, "}")
		if end < 0 {
			return nil, fmt.Errorf("grid: unterminated ${ in %q", s)
		}
		expr := rest[2:end]
		rest = rest[end+1:]
		v, err := evalExpr(expr, vars, depth)
		if err != nil {
			return nil, err
		}
		if first && wholeStart && b.Len() == 0 && rest == "" {
			whole = v
		}
		first = false
		b.WriteString(formatValue(v))
		if rest == "" {
			break
		}
	}
	if whole != nil {
		return whole, nil
	}
	out := b.String()
	if strings.Contains(out, "${") {
		return substDepth(out, vars, depth+1)
	}
	return out, nil
}

// evalExpr resolves one ${...} body: a bare name, or `a op b` with op one of
// + - * /.
func evalExpr(expr string, vars map[string]any, depth int) (any, error) {
	expr = strings.TrimSpace(expr)
	for _, op := range []string{"+", "-", "*", "/"} {
		if i := strings.Index(expr, op); i > 0 {
			a, err := operand(expr[:i], vars, depth)
			if err != nil {
				return nil, err
			}
			b, err := operand(expr[i+1:], vars, depth)
			if err != nil {
				return nil, err
			}
			return arith(a, b, op)
		}
	}
	return lookup(expr, vars, depth)
}

func lookup(name string, vars map[string]any, depth int) (any, error) {
	v, ok := vars[name]
	if !ok {
		return nil, fmt.Errorf("grid: undefined variable %q", name)
	}
	if s, ok := v.(string); ok && strings.Contains(s, "${") {
		return substDepth(s, vars, depth+1)
	}
	return v, nil
}

// operand resolves one side of an arithmetic expression: a numeric literal
// or a binding.
func operand(s string, vars map[string]any, depth int) (float64, error) {
	s = strings.TrimSpace(s)
	if n, err := strconv.ParseFloat(s, 64); err == nil {
		return n, nil
	}
	v, err := lookup(s, vars, depth)
	if err != nil {
		return 0, err
	}
	return toFloat(v)
}

func toFloat(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case string:
		n, err := strconv.ParseFloat(x, 64)
		if err != nil {
			return 0, fmt.Errorf("grid: %q is not numeric", x)
		}
		return n, nil
	default:
		return 0, fmt.Errorf("grid: %v is not numeric", v)
	}
}

func arith(a, b float64, op string) (any, error) {
	var r float64
	switch op {
	case "+":
		r = a + b
	case "-":
		r = a - b
	case "*":
		r = a * b
	case "/":
		if b == 0 {
			return nil, fmt.Errorf("grid: division by zero")
		}
		r = a / b
	}
	// Integer operands with an integral result stay integers, so command
	// lines read -dist-lease 12500, not -dist-lease 12500.000000.
	if a == float64(int64(a)) && b == float64(int64(b)) {
		if op == "/" {
			return float64(int64(a) / int64(b)), nil
		}
		if r == float64(int64(r)) {
			return r, nil
		}
	}
	return r, nil
}
