// Declarative assertions: the gates the shell benchmarks used to encode as
// cmp/jq pipelines, evaluated natively so a failed check names the files and
// values involved instead of a silent non-zero exit.
package grid

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// evalAssert evaluates one assertion against the bindings; res is non-nil
// only for final (post-grid) asserts, which may reference cell records.
// Returns the record and an error when the assertion failed.
func evalAssert(a *Assert, vars map[string]any, res *Result) (AssertRecord, error) {
	ok, detail, err := checkAssert(a, vars, res)
	if err != nil {
		return AssertRecord{Kind: a.Kind, Detail: err.Error()}, err
	}
	rec := AssertRecord{Kind: a.Kind, Detail: detail, OK: ok}
	if !ok {
		return rec, fmt.Errorf("assert %s failed: %s", a.Kind, detail)
	}
	return rec, nil
}

func checkAssert(a *Assert, vars map[string]any, res *Result) (bool, string, error) {
	sub := func(s string) (string, error) { return substString(s, vars) }
	// An expected value written as a string may reference bindings
	// ("${n}"); resolve it to its typed value before comparing.
	want := a.Value
	if s, ok := want.(string); ok {
		v, err := subst(s, vars)
		if err != nil {
			return false, "", err
		}
		want = v
	}
	switch a.Kind {
	case "identical":
		pa, err := sub(a.A)
		if err != nil {
			return false, "", err
		}
		pb, err := sub(a.B)
		if err != nil {
			return false, "", err
		}
		da, err := os.ReadFile(pa)
		if err != nil {
			return false, "", err
		}
		db, err := os.ReadFile(pb)
		if err != nil {
			return false, "", err
		}
		if !bytes.Equal(da, db) {
			return false, fmt.Sprintf("%s and %s differ (%d vs %d bytes)", pa, pb, len(da), len(db)), nil
		}
		return true, fmt.Sprintf("%s == %s (%d bytes)", pa, pb, len(da)), nil

	case "exists":
		p, err := sub(a.File)
		if err != nil {
			return false, "", err
		}
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			return false, fmt.Sprintf("%s missing or empty", p), nil
		}
		return true, fmt.Sprintf("%s exists (%d bytes)", p, fi.Size()), nil

	case "json":
		p, err := sub(a.File)
		if err != nil {
			return false, "", err
		}
		got, err := jsonField(p, a.Path)
		if err != nil {
			return false, "", err
		}
		ok, err := compare(got, a.Op, want)
		if err != nil {
			return false, "", err
		}
		return ok, fmt.Sprintf("%s %s: %v %s %v", p, a.Path, got, a.Op, want), nil

	case "json_eq":
		pa, err := sub(a.AFile)
		if err != nil {
			return false, "", err
		}
		pb, err := sub(a.BFile)
		if err != nil {
			return false, "", err
		}
		va, err := jsonField(pa, a.APath)
		if err != nil {
			return false, "", err
		}
		vb, err := jsonField(pb, a.BPath)
		if err != nil {
			return false, "", err
		}
		ok, err := compare(va, "==", vb)
		if err != nil {
			return false, "", err
		}
		return ok, fmt.Sprintf("%s:%s (%v) vs %s:%s (%v)", pa, a.APath, va, pb, a.BPath, vb), nil

	case "jsonl_count":
		p, err := sub(a.File)
		if err != nil {
			return false, "", err
		}
		n, err := countJSONL(p, a.Where)
		if err != nil {
			return false, "", err
		}
		ok, err := compare(float64(n), a.Op, want)
		if err != nil {
			return false, "", err
		}
		where := ""
		if a.Where != "" {
			where = fmt.Sprintf(" with %q", a.Where)
		}
		return ok, fmt.Sprintf("%s: %d lines%s %s %v", p, n, where, a.Op, want), nil

	case "wall_ratio":
		if res == nil {
			return false, "", fmt.Errorf("wall_ratio is a final assert")
		}
		num, err := minWall(res, a.Cell, a.Step)
		if err != nil {
			return false, "", err
		}
		den, err := minWall(res, a.Base, a.Step)
		if err != nil {
			return false, "", err
		}
		if den == 0 {
			den = 1 // sub-millisecond baseline: treat as 1ms to stay defined
		}
		ratio := float64(num) / float64(den)
		return ratio <= a.Max,
			fmt.Sprintf("step %s: %s %dms / %s %dms = %.3f (max %.3f)", a.Step, a.Cell, num, a.Base, den, ratio, a.Max), nil

	default:
		return false, "", fmt.Errorf("unknown assert kind %q", a.Kind)
	}
}

// minWall is the fastest repeat of a step in a named cell — the usual
// benchmark statistic for wall-clock comparisons.
func minWall(res *Result, cellName, step string) (int64, error) {
	for _, c := range res.Cells {
		if c.Name != cellName {
			continue
		}
		best := int64(-1)
		for _, rep := range c.Repeats {
			if sr, ok := rep.Steps[step]; ok && !sr.Skipped {
				if best < 0 || sr.WallMS < best {
					best = sr.WallMS
				}
			}
		}
		if best < 0 {
			return 0, fmt.Errorf("cell %q has no executed step %q", cellName, step)
		}
		return best, nil
	}
	return 0, fmt.Errorf("no cell named %q", cellName)
}

// jsonField loads a JSON file and walks a dot-separated object path. Metric
// maps use dotted key names ("study.grade.items"), so at each level the
// longest joined run of remaining segments that exists as a key wins:
// "counters.study.grade.items" resolves as counters → "study.grade.items".
func jsonField(path, field string) (any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	parts := strings.Split(field, ".")
	for len(parts) > 0 {
		obj, ok := v.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("%s: %q is not an object at %q", path, field, parts[0])
		}
		matched := false
		for i := len(parts); i >= 1; i-- {
			key := strings.Join(parts[:i], ".")
			if val, ok := obj[key]; ok {
				v, parts, matched = val, parts[i:], true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("%s: no field %q in %q", path, parts[0], field)
		}
	}
	return v, nil
}

// countJSONL counts the record lines of a JSONL file; with where set, only
// lines whose JSON carries that field non-null count.
func countJSONL(path, where string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if where == "" {
			n++
			continue
		}
		var obj map[string]any
		if json.Unmarshal(sc.Bytes(), &obj) != nil {
			continue
		}
		if v, ok := obj[where]; ok && v != nil {
			n++
		}
	}
	return n, sc.Err()
}

// compare applies op between two values: numerically when both parse as
// numbers, by string equality otherwise (==/!= only).
func compare(got any, op string, want any) (bool, error) {
	if op == "" {
		op = "=="
	}
	gf, gerr := toFloat(got)
	wf, werr := toFloat(want)
	if gerr == nil && werr == nil {
		switch op {
		case "==":
			return gf == wf, nil
		case "!=":
			return gf != wf, nil
		case ">=":
			return gf >= wf, nil
		case "<=":
			return gf <= wf, nil
		case ">":
			return gf > wf, nil
		case "<":
			return gf < wf, nil
		}
		return false, fmt.Errorf("unknown op %q", op)
	}
	gs, ws := formatValue(got), formatValue(want)
	switch op {
	case "==":
		return gs == ws, nil
	case "!=":
		return gs != ws, nil
	}
	return false, fmt.Errorf("op %q needs numeric operands (%v, %v)", op, got, want)
}
