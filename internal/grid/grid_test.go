package grid

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSubstitution(t *testing.T) {
	vars := map[string]any{
		"sites": float64(100000), "workers": float64(8),
		"rate": 0.5, "name": "pr7", "lease": "${sites/workers}",
	}
	cases := []struct {
		in   string
		want string
	}{
		{"${sites}", "100000"},
		{"${sites/workers}", "12500"},
		{"${sites*2}", "200000"},
		{"${workers+1}", "9"},
		{"${workers-1}", "7"},
		{"w${workers}.jsonl", "w8.jsonl"},
		{"${name}-${workers}", "pr7-8"},
		{"${rate}", "0.5"},
		{"${lease}", "12500"}, // nested reference resolves
	}
	for _, c := range cases {
		got, err := substString(c.in, vars)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("%s = %q, want %q", c.in, got, c.want)
		}
	}
	// Typed whole-string result: numbers stay numbers.
	v, err := subst("${sites}", vars)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.(float64); !ok {
		t.Fatalf("whole-string subst lost the numeric type: %T", v)
	}
	if _, err := substString("${missing}", vars); err == nil {
		t.Fatal("undefined variable accepted")
	}
	if _, err := substString("${unterminated", vars); err == nil {
		t.Fatal("unterminated reference accepted")
	}
}

func TestTOMLSubset(t *testing.T) {
	src := `
# a grid
name = "smoke"
repeats = 2

[vars]
sites = 100       # per cell
reuse = 0.25
dedup = true
label = "a#b"     # hash inside a string is not a comment

[[axes]]
name = "workers"
values = [1, 2, 4]

[[axes]]
name = "mode"
values = [{mode = "auto", lease = 0}, {mode = "coarse", lease = "${sites/workers}"}]

[[steps]]
id = "run"
run = ["study", "-sites", "${sites}"]
`
	m, err := parseTOML(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if err := s.validate(); err != nil {
		t.Fatal(err)
	}
	if s.Name != "smoke" || s.Repeats != 2 {
		t.Fatalf("header: %+v", s)
	}
	if s.Vars["sites"] != float64(100) || s.Vars["reuse"] != 0.25 || s.Vars["dedup"] != true {
		t.Fatalf("vars: %+v", s.Vars)
	}
	if s.Vars["label"] != "a#b" {
		t.Fatalf("string with hash: %v", s.Vars["label"])
	}
	if len(s.Axes) != 2 || s.Axes[0].Name != "workers" || len(s.Axes[1].Values) != 2 {
		t.Fatalf("axes: %+v", s.Axes)
	}
	obj, ok := s.Axes[1].Values[1].(map[string]any)
	if !ok || obj["lease"] != "${sites/workers}" {
		t.Fatalf("tied axis object: %+v", s.Axes[1].Values[1])
	}
	cells, err := s.cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("%d cells, want 6", len(cells))
	}
	if cells[0].name != "workers=1,mode=auto" || cells[5].name != "workers=4,mode=coarse" {
		t.Fatalf("cell names: %q ... %q", cells[0].name, cells[5].name)
	}
	if _, err := parseTOML("x = nonsense"); err == nil {
		t.Fatal("bad scalar accepted")
	}
}

func TestCellExpansionExplicit(t *testing.T) {
	s := Spec{
		Name:  "x",
		Steps: []Step{{ID: "a", Run: []string{"true"}}},
		Cells: []map[string]any{
			{"name": "base", "ledger": float64(0)},
			{"name": "ledgered", "ledger": float64(1024)},
		},
	}
	if err := s.validate(); err != nil {
		t.Fatal(err)
	}
	cells, err := s.cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || cells[0].name != "base" || cells[1].vars["ledger"] != float64(1024) {
		t.Fatalf("cells: %+v", cells)
	}
}

// TestRunnerEndToEnd drives a two-axis grid of shell steps: per-cell files,
// a when-gated step, captures, json/jsonl/identical asserts, and a final
// wall_ratio — the whole surface minus real tools.
func TestRunnerEndToEnd(t *testing.T) {
	work := t.TempDir()
	spec := &Spec{
		Name:    "e2e",
		Vars:    map[string]any{"payload": "hello"},
		Repeats: 2,
		Axes: []Axis{
			{Name: "n", Values: []any{float64(2), float64(3)}},
			{Name: "mode", Values: []any{"plain", "extra"}},
		},
		Setup: []Step{
			{ID: "seed", Run: []string{"sh", "-c", `printf '{"ok":true,"count":7}' > ${setup}/seed.json`}},
		},
		Steps: []Step{
			{
				ID:  "emit",
				Run: []string{"sh", "-c", `for i in $(seq 1 ${n}); do echo "{\"rank\":$i}"; done > ${dir}/out.jsonl; echo "made ${n} lines"`},
				Captures: []Capture{
					{Var: "made", Regex: `made (\d+) lines`},
				},
				Asserts: []Assert{
					{Kind: "exists", File: "${dir}/out.jsonl"},
					{Kind: "jsonl_count", File: "${dir}/out.jsonl", Op: "==", Value: "${n}"},
					{Kind: "json", File: "${setup}/seed.json", Path: "count", Op: ">=", Value: float64(7)},
				},
			},
			{
				ID:   "extra",
				When: map[string]any{"mode": "extra"},
				Run:  []string{"sh", "-c", `cp ${dir}/out.jsonl ${dir}/copy.jsonl`},
				Asserts: []Assert{
					{Kind: "identical", A: "${dir}/out.jsonl", B: "${dir}/copy.jsonl"},
				},
			},
		},
		Final: []Assert{
			{Kind: "wall_ratio", Cell: "n=3,mode=plain", Base: "n=2,mode=plain", Step: "emit", Max: 1000},
		},
	}
	if err := spec.validate(); err != nil {
		t.Fatal(err)
	}
	r := &Runner{Spec: spec, Work: work, Log: io_Discard(t)}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if len(c.Repeats) != 2 {
			t.Fatalf("cell %s: %d repeats", c.Name, len(c.Repeats))
		}
		for _, rep := range c.Repeats {
			em := rep.Steps["emit"]
			if em == nil || em.Skipped {
				t.Fatalf("cell %s: emit did not run", c.Name)
			}
			if em.Captures["made"] != formatValue(c.Vars["n"]) {
				t.Fatalf("cell %s: capture %q", c.Name, em.Captures["made"])
			}
			ex := rep.Steps["extra"]
			wantSkip := c.Vars["mode"] == "plain"
			if ex == nil || ex.Skipped != wantSkip {
				t.Fatalf("cell %s: extra skipped=%v, want %v", c.Name, ex != nil && ex.Skipped, wantSkip)
			}
		}
	}
	if len(res.Final) != 1 || !res.Final[0].OK {
		t.Fatalf("final asserts: %+v", res.Final)
	}

	// Summary + CSV round-trip.
	outJSON := filepath.Join(work, "res.json")
	outCSV := filepath.Join(work, "res.csv")
	if err := res.WriteJSON(outJSON); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(outCSV); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(outCSV)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	// header + 4 cells x 2 repeats x (1 or 2 executed steps); plain cells
	// run only emit, extra cells run both.
	want := 1 + 2*2*1 + 2*2*2
	if len(lines) != want {
		t.Fatalf("%d CSV rows, want %d:\n%s", len(lines), want, csv)
	}
}

// TestRunnerFailsOnAssert: a failing assertion aborts the run.
func TestRunnerFailsOnAssert(t *testing.T) {
	spec := &Spec{
		Name: "fail",
		Steps: []Step{{
			ID:  "mk",
			Run: []string{"sh", "-c", "echo one > ${dir}/a; echo two > ${dir}/b"},
			Asserts: []Assert{
				{Kind: "identical", A: "${dir}/a", B: "${dir}/b"},
			},
		}},
	}
	if err := spec.validate(); err != nil {
		t.Fatal(err)
	}
	r := &Runner{Spec: spec, Work: t.TempDir(), Log: io_Discard(t)}
	if _, err := r.Run(); err == nil || !strings.Contains(err.Error(), "identical") {
		t.Fatalf("want identical-assert failure, got %v", err)
	}
}

// TestRunnerServeDrain: a serve step must publish its ready capture, keep
// running through later steps, and exit cleanly on SIGTERM.
func TestRunnerServeDrain(t *testing.T) {
	spec := &Spec{
		Name: "serve",
		Steps: []Step{
			{
				ID:    "daemon",
				Serve: true,
				Ready: `listening on (\S+)`,
				Run: []string{"sh", "-c",
					`echo "listening on 127.0.0.1:1234" >&2; trap 'echo bye >&2; exit 0' TERM; while true; do sleep 0.1; done`},
			},
			{
				ID:  "use",
				Run: []string{"sh", "-c", `echo "target was ${addr}"`},
				Captures: []Capture{
					{Var: "target", Regex: `target was (\S+)`},
				},
			},
		},
	}
	if err := spec.validate(); err != nil {
		t.Fatal(err)
	}
	r := &Runner{Spec: spec, Work: t.TempDir(), Log: io_Discard(t)}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Cells[0].Repeats[0]
	if rep.Steps["daemon"].Captures["addr"] != "127.0.0.1:1234" {
		t.Fatalf("ready capture: %+v", rep.Steps["daemon"].Captures)
	}
	if rep.Steps["use"].Captures["target"] != "127.0.0.1:1234" {
		t.Fatalf("addr did not reach the later step: %+v", rep.Steps["use"].Captures)
	}
}

// io_Discard adapts t's helper-less needs: progress goes nowhere in tests.
func io_Discard(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
