// Package grid runs reproducible experiment grids: a declarative spec names
// the tools to build, the variable axes to sweep, and the steps to execute
// per cell, and the runner executes every (cell, repeat) sequentially —
// benchmarks share nothing — recording wall times, metrics snapshots, ledger
// roots, and assertion outcomes into one machine-readable summary plus a
// flat CSV. The spec is the experiment: re-running it with the same seeds
// reproduces the same outputs (and the same anchored Merkle roots), which is
// what makes a benchmark number auditable instead of anecdotal.
package grid

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// Spec is a grid description, loaded from JSON or (a subset of) TOML.
type Spec struct {
	// Name labels the grid; the default output file is BENCH_<name>.json.
	Name string `json:"name"`
	// Tools are command names built once from ./cmd/<tool> into the work
	// dir; a step whose argv[0] matches a tool runs the built binary.
	Tools []string `json:"tools,omitempty"`
	// Vars are the spec's default variables, overridable with -set. Axis
	// values and reserved vars (${dir}, ${work}, ${setup}, ${repeat},
	// ${cell}) shadow them inside a cell.
	Vars map[string]any `json:"vars,omitempty"`
	// Axes, in order, define the cell grid as their cross product. An axis
	// value may be a scalar (bound to the axis name) or an object binding
	// several variables at once (a tied axis).
	Axes []Axis `json:"axes,omitempty"`
	// Cells lists explicit cells instead of an axes product; each entry is
	// a variable map, with an optional "name" key. Mutually exclusive with
	// Axes.
	Cells []map[string]any `json:"cells,omitempty"`
	// Repeats runs every cell this many times (default 1); ${repeat} is the
	// zero-based index. Seeds are spec variables, so repeats are identical
	// by construction unless a step varies them explicitly.
	Repeats int `json:"repeats,omitempty"`
	// Setup steps run once, before any cell, in ${work}/setup — the place
	// for baselines later cells compare against.
	Setup []Step `json:"setup,omitempty"`
	// Steps run per (cell, repeat), in ${dir} = ${work}/cells/<cell>/r<N>.
	Steps []Step `json:"steps"`
	// Final asserts run after every cell completed; wall_ratio asserts live
	// here.
	Final []Assert `json:"final,omitempty"`
}

// Axis is one swept dimension.
type Axis struct {
	Name   string `json:"name"`
	Values []any  `json:"values"`
}

// Step is one command execution (or background daemon) within a cell.
type Step struct {
	// ID names the step in records and CSV rows; required, unique per list.
	ID string `json:"id"`
	// Run is the argv after substitution. argv[0] naming a spec tool runs
	// the built binary; anything else resolves through PATH (or relative to
	// the repo root, where the runner keeps its working directory).
	Run []string `json:"run"`
	// Env sets extra environment variables (values substituted).
	Env map[string]string `json:"env,omitempty"`
	// Stdout, when set, redirects the step's stdout to this file. The
	// runner always captures a copy for regex captures either way.
	Stdout string `json:"stdout,omitempty"`
	// Serve starts the step as a background daemon: the runner waits for
	// Ready to match the daemon's output, binds its first capture group to
	// ReadyVar (default "addr"), runs the remaining steps, and SIGTERMs the
	// daemon at the end of the repeat — a non-zero daemon exit fails the
	// cell. Serve-step asserts are evaluated after the drain.
	Serve    bool   `json:"serve,omitempty"`
	Ready    string `json:"ready,omitempty"`
	ReadyVar string `json:"ready_var,omitempty"`
	// When gates the step: it runs only when every listed variable equals
	// the given value in the cell's binding.
	When map[string]any `json:"when,omitempty"`
	// Captures bind regex capture groups over the step's combined output to
	// variables visible to later steps and asserts.
	Captures []Capture `json:"captures,omitempty"`
	// Metrics names a metrics-snapshot JSON the step wrote; it is parsed
	// and inlined into the repeat record under the step's ID.
	Metrics string `json:"metrics,omitempty"`
	// Ledger audits an output file against its checkpoint journal after the
	// step, recording the verification report (run root included) in the
	// repeat record. A failed audit fails the cell.
	Ledger *LedgerCheck `json:"ledger,omitempty"`
	// Asserts are checked after the step (after the drain, for Serve).
	Asserts []Assert `json:"asserts,omitempty"`
}

// Capture is one regex extraction from a step's output.
type Capture struct {
	Var   string `json:"var"`
	Regex string `json:"regex"`
}

// LedgerCheck parameterizes the post-step ledger audit.
type LedgerCheck struct {
	Out     string `json:"out"`
	Journal string `json:"journal"`
	Stage   string `json:"stage,omitempty"` // default "grade"
	Header  int    `json:"header,omitempty"`
	Sidecar string `json:"sidecar,omitempty"`
}

// Assert is one declarative check. Kind selects the fields that apply:
//
//   - identical:  A and B are byte-identical files
//   - exists:     File exists and is non-empty
//   - json:       field Path of JSON file File, compared via Op to Value
//   - json_eq:    field APath of AFile equals field BPath of BFile
//   - jsonl_count: number of lines in File (where field Where is present
//     and non-null, when set), compared via Op to Value
//   - wall_ratio: min wall of step Step in cell Cell over the same step in
//     cell Base is <= Max (final asserts only)
type Assert struct {
	Kind  string  `json:"kind"`
	A     string  `json:"a,omitempty"`
	B     string  `json:"b,omitempty"`
	File  string  `json:"file,omitempty"`
	Path  string  `json:"path,omitempty"`
	AFile string  `json:"a_file,omitempty"`
	APath string  `json:"a_path,omitempty"`
	BFile string  `json:"b_file,omitempty"`
	BPath string  `json:"b_path,omitempty"`
	Op    string  `json:"op,omitempty"`
	Value any     `json:"value,omitempty"`
	Where string  `json:"where,omitempty"`
	Cell  string  `json:"cell,omitempty"`
	Base  string  `json:"base,omitempty"`
	Step  string  `json:"step,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// Load reads a spec from path: TOML when the extension is .toml, JSON
// otherwise.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	if strings.EqualFold(filepath.Ext(path), ".toml") {
		m, err := parseTOML(string(data))
		if err != nil {
			return nil, fmt.Errorf("grid: %s: %w", path, err)
		}
		// Round-trip through JSON so both formats share one decoder.
		b, err := json.Marshal(m)
		if err != nil {
			return nil, fmt.Errorf("grid: %s: %w", path, err)
		}
		data = b
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("grid: %s: %w", path, err)
	}
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("grid: %s: %w", path, err)
	}
	return &s, nil
}

func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec has no name")
	}
	if len(s.Steps) == 0 {
		return fmt.Errorf("spec has no steps")
	}
	if len(s.Axes) > 0 && len(s.Cells) > 0 {
		return fmt.Errorf("axes and cells are mutually exclusive")
	}
	if s.Repeats < 0 {
		return fmt.Errorf("repeats %d is negative", s.Repeats)
	}
	for _, a := range s.Axes {
		if a.Name == "" || len(a.Values) == 0 {
			return fmt.Errorf("axis %q needs a name and at least one value", a.Name)
		}
	}
	seen := map[string]bool{}
	for _, list := range [][]Step{s.Setup, s.Steps} {
		for _, st := range list {
			if st.ID == "" {
				return fmt.Errorf("every step needs an id")
			}
			if seen[st.ID] {
				return fmt.Errorf("duplicate step id %q", st.ID)
			}
			seen[st.ID] = true
			if len(st.Run) == 0 {
				return fmt.Errorf("step %q has an empty run", st.ID)
			}
			if st.Serve && st.Ready == "" {
				return fmt.Errorf("serve step %q needs a ready regex", st.ID)
			}
			if st.Ready != "" {
				if _, err := regexp.Compile(st.Ready); err != nil {
					return fmt.Errorf("step %q ready regex: %w", st.ID, err)
				}
			}
			for _, c := range st.Captures {
				if _, err := regexp.Compile(c.Regex); err != nil {
					return fmt.Errorf("step %q capture %q: %w", st.ID, c.Var, err)
				}
			}
		}
	}
	return nil
}

// cell is one resolved grid point.
type cell struct {
	name string
	vars map[string]any
}

// cells expands the axes product (or the explicit cell list) into named
// cells. Axis order is significant: earlier axes vary slowest.
func (s *Spec) cells() ([]cell, error) {
	if len(s.Cells) > 0 {
		out := make([]cell, 0, len(s.Cells))
		for i, m := range s.Cells {
			c := cell{vars: map[string]any{}}
			for k, v := range m {
				if k == "name" {
					c.name, _ = v.(string)
					continue
				}
				c.vars[k] = v
			}
			if c.name == "" {
				c.name = fmt.Sprintf("cell%d", i)
			}
			out = append(out, c)
		}
		return out, nil
	}
	out := []cell{{name: "", vars: map[string]any{}}}
	for _, ax := range s.Axes {
		next := make([]cell, 0, len(out)*len(ax.Values))
		for _, base := range out {
			for _, v := range ax.Values {
				c := cell{name: base.name, vars: map[string]any{}}
				for k, bv := range base.vars {
					c.vars[k] = bv
				}
				label := ""
				if obj, ok := v.(map[string]any); ok {
					for k, ov := range obj {
						c.vars[k] = ov
					}
					if lv, ok := obj[ax.Name]; ok {
						label = fmt.Sprintf("%s=%s", ax.Name, formatValue(lv))
					} else {
						return nil, fmt.Errorf("axis %q object value must bind %q", ax.Name, ax.Name)
					}
				} else {
					c.vars[ax.Name] = v
					label = fmt.Sprintf("%s=%s", ax.Name, formatValue(v))
				}
				if c.name != "" {
					c.name += ","
				}
				c.name += label
				next = append(next, c)
			}
		}
		out = next
	}
	if len(out) == 1 && out[0].name == "" {
		out[0].name = "all"
	}
	return out, nil
}

// formatValue renders a variable for command lines and cell names: integers
// without exponents, floats via %v, everything else via fmt.
func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// ParseSet parses one -set k=v override, keeping numeric and boolean types
// so substituted arithmetic works on them.
func ParseSet(kv string) (string, any, error) {
	k, v, ok := strings.Cut(kv, "=")
	if !ok || k == "" {
		return "", nil, fmt.Errorf("grid: -set %q: want key=value", kv)
	}
	if n, err := strconv.ParseInt(v, 10, 64); err == nil {
		return k, float64(n), nil
	}
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		return k, f, nil
	}
	if b, err := strconv.ParseBool(v); err == nil {
		return k, b, nil
	}
	return k, v, nil
}
