// The grid executor: builds the spec's tools once, then walks every
// (cell, repeat) sequentially — wall-clock numbers are only comparable when
// cells never share the machine — running each step with substituted argv,
// timing it, scraping captures, inlining metrics snapshots, auditing ledgers
// and evaluating asserts. Serve steps run as background daemons with a
// readiness regex and a SIGTERM drain whose exit status is part of the
// contract.
package grid

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"chainchaos/internal/ledger"
)

// Runner executes one spec.
type Runner struct {
	Spec *Spec
	// Work is the work-tree root: tools build into Work/bin, setup runs in
	// Work/setup, cell repeats in Work/cells/<cell>/r<N>.
	Work string
	// Sets override spec vars (-set key=value).
	Sets map[string]any
	// Repeats, when > 0, overrides the spec's repeat count.
	Repeats int
	// CellFilter, when non-nil, restricts execution to matching cell names.
	CellFilter *regexp.Regexp
	// Log receives progress lines; nil means os.Stderr.
	Log io.Writer
}

// Result is the grid summary written as BENCH_<name>.json.
type Result struct {
	Grid      string                 `json:"grid"`
	HostCores int                    `json:"host_cores"`
	Vars      map[string]any         `json:"vars"`
	Repeats   int                    `json:"repeats"`
	Setup     map[string]*StepRecord `json:"setup,omitempty"`
	Cells     []*CellRecord          `json:"cells"`
	Final     []AssertRecord         `json:"final,omitempty"`
}

// CellRecord is one grid point's outcomes.
type CellRecord struct {
	Name    string          `json:"name"`
	Vars    map[string]any  `json:"vars"`
	Repeats []*RepeatRecord `json:"repeats"`
}

// RepeatRecord is one execution of a cell.
type RepeatRecord struct {
	Repeat  int                      `json:"repeat"`
	Steps   map[string]*StepRecord   `json:"steps"`
	Metrics map[string]any           `json:"metrics,omitempty"`
	Ledger  map[string]*LedgerRecord `json:"ledger,omitempty"`
	Asserts []AssertRecord           `json:"asserts,omitempty"`
}

// StepRecord is one step's outcome.
type StepRecord struct {
	WallMS   int64             `json:"wall_ms"`
	Skipped  bool              `json:"skipped,omitempty"`
	Captures map[string]string `json:"captures,omitempty"`
}

// LedgerRecord is the recorded ledger audit of a step's output.
type LedgerRecord struct {
	RunRoot string `json:"run_root,omitempty"`
	Batches int    `json:"batches"`
	Lines   int    `json:"lines"`
	Tail    int    `json:"tail,omitempty"`
	Sidecar bool   `json:"sidecar,omitempty"`
}

// AssertRecord is one evaluated assertion.
type AssertRecord struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	OK     bool   `json:"ok"`
}

// serveProc is a running serve-step daemon awaiting its drain. It owns the
// step's log/stdout files until the daemon exits — the daemon writes to them
// for as long as it lives.
type serveProc struct {
	step    *Step
	cmd     *exec.Cmd
	out     *safeBuf
	vars    map[string]any
	closers []io.Closer
}

// safeBuf is a mutex-guarded buffer shared by the runner and a daemon's
// output pipes.
type safeBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (r *Runner) logf(format string, args ...any) {
	w := r.Log
	if w == nil {
		w = os.Stderr
	}
	fmt.Fprintf(w, "grid: "+format+"\n", args...)
}

// Run executes the grid and returns its summary. The first failed step or
// assertion aborts the run with an error (partial results are not written —
// a benchmark record either holds everything it claims or nothing).
func (r *Runner) Run() (*Result, error) {
	repeats := r.Spec.Repeats
	if r.Repeats > 0 {
		repeats = r.Repeats
	}
	if repeats <= 0 {
		repeats = 1
	}
	res := &Result{
		Grid: r.Spec.Name, HostCores: runtime.NumCPU(), Repeats: repeats,
		Vars: map[string]any{},
	}
	base := map[string]any{}
	for k, v := range r.Spec.Vars {
		base[k] = v
	}
	for k, v := range r.Sets {
		base[k] = v
	}
	for k, v := range base {
		res.Vars[k] = v
	}

	binDir := filepath.Join(r.Work, "bin")
	if err := os.MkdirAll(binDir, 0o755); err != nil {
		return nil, err
	}
	tools := map[string]string{}
	for _, t := range r.Spec.Tools {
		out := filepath.Join(binDir, t)
		r.logf("building %s", t)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+t)
		if msg, err := cmd.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("grid: build %s: %v\n%s", t, err, msg)
		}
		tools[t] = out
	}

	// Setup phase: once, in its own directory, before any cell.
	setupDir := filepath.Join(r.Work, "setup")
	if err := os.MkdirAll(setupDir, 0o755); err != nil {
		return nil, err
	}
	base["work"], base["setup"] = r.Work, setupDir
	if len(r.Spec.Setup) > 0 {
		res.Setup = map[string]*StepRecord{}
		vars := withDir(base, setupDir, "setup", 0)
		rec := newRepeatRecord(0)
		var serves []*serveProc
		for i := range r.Spec.Setup {
			if err := r.runStep(&r.Spec.Setup[i], vars, rec, tools, &serves); err != nil {
				drainServes(serves, rec, nil)
				return nil, err
			}
		}
		if err := drainServes(serves, rec, r); err != nil {
			return nil, err
		}
		for id, sr := range rec.Steps {
			res.Setup[id] = sr
		}
		// Setup metrics/ledger records fold into a synthetic cell-less spot:
		// keep them visible under Setup via captures only; full records stay
		// in the setup repeat if ever needed.
		_ = rec
	}

	cells, err := r.Spec.cells()
	if err != nil {
		return nil, err
	}
	// Repeat-major order: every cell's repeat N runs before any cell's
	// repeat N+1. Cell-major order would let slow machine drift (thermal,
	// noisy neighbors) land entirely on the later cells and bias every
	// cross-cell wall comparison; interleaving spreads the drift evenly.
	recs := make([]*CellRecord, 0, len(cells))
	run := make([]cell, 0, len(cells))
	for _, c := range cells {
		if r.CellFilter != nil && !r.CellFilter.MatchString(c.name) {
			continue
		}
		crec := &CellRecord{Name: c.name, Vars: c.vars}
		res.Cells = append(res.Cells, crec)
		recs = append(recs, crec)
		run = append(run, c)
	}
	for rep := 0; rep < repeats; rep++ {
		for i, c := range run {
			dir := filepath.Join(r.Work, "cells", sanitize(c.name), fmt.Sprintf("r%d", rep))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			vars := withDir(base, dir, c.name, rep)
			for k, v := range c.vars {
				vars[k] = v
			}
			r.logf("cell %s repeat %d", c.name, rep)
			rrec := newRepeatRecord(rep)
			recs[i].Repeats = append(recs[i].Repeats, rrec)
			var serves []*serveProc
			for j := range r.Spec.Steps {
				if err := r.runStep(&r.Spec.Steps[j], vars, rrec, tools, &serves); err != nil {
					drainServes(serves, rrec, nil)
					return nil, fmt.Errorf("cell %s repeat %d: %w", c.name, rep, err)
				}
			}
			if err := drainServes(serves, rrec, r); err != nil {
				return nil, fmt.Errorf("cell %s repeat %d: %w", c.name, rep, err)
			}
		}
	}

	// Final asserts see the base bindings plus every cell's records.
	for _, a := range r.Spec.Final {
		rec, err := evalAssert(&a, base, res)
		res.Final = append(res.Final, rec)
		if err != nil {
			return nil, fmt.Errorf("final assert: %w", err)
		}
	}
	return res, nil
}

func newRepeatRecord(rep int) *RepeatRecord {
	return &RepeatRecord{
		Repeat: rep, Steps: map[string]*StepRecord{},
		Metrics: map[string]any{}, Ledger: map[string]*LedgerRecord{},
	}
}

// withDir copies base bindings and installs the per-execution reserved vars.
func withDir(base map[string]any, dir, cellName string, repeat int) map[string]any {
	vars := make(map[string]any, len(base)+3)
	for k, v := range base {
		vars[k] = v
	}
	vars["dir"] = dir
	vars["cell"] = cellName
	vars["repeat"] = float64(repeat)
	return vars
}

// sanitize maps a cell name onto a directory name.
func sanitize(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_', c == '=', c == ',':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// stepEnabled evaluates a step's when-gate against the bindings.
func stepEnabled(st *Step, vars map[string]any) bool {
	for k, want := range st.When {
		got, ok := vars[k]
		if !ok || formatValue(got) != formatValue(want) {
			return false
		}
	}
	return true
}

// runStep executes one step (or starts it, for serve steps) and records the
// outcome. Serve steps enqueue onto serves for the end-of-repeat drain.
func (r *Runner) runStep(st *Step, vars map[string]any, rec *RepeatRecord, tools map[string]string, serves *[]*serveProc) error {
	if !stepEnabled(st, vars) {
		rec.Steps[st.ID] = &StepRecord{Skipped: true}
		return nil
	}
	argv := make([]string, len(st.Run))
	for i, a := range st.Run {
		s, err := substString(a, vars)
		if err != nil {
			return fmt.Errorf("step %s: %w", st.ID, err)
		}
		argv[i] = s
	}
	if p, ok := tools[argv[0]]; ok {
		argv[0] = p
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = os.Environ()
	for k, v := range st.Env {
		s, err := substString(v, vars)
		if err != nil {
			return fmt.Errorf("step %s env %s: %w", st.ID, k, err)
		}
		cmd.Env = append(cmd.Env, k+"="+s)
	}

	out := &safeBuf{}
	logPath, _ := substString("${dir}/"+st.ID+".log", vars)
	logFile, err := os.Create(logPath)
	if err != nil {
		return err
	}
	closers := []io.Closer{logFile}
	handedOff := false
	defer func() {
		if !handedOff {
			closeAll(closers)
		}
	}()
	sink := io.MultiWriter(out, logFile)
	cmd.Stderr = sink
	if st.Stdout != "" {
		p, err := substString(st.Stdout, vars)
		if err != nil {
			return fmt.Errorf("step %s: %w", st.ID, err)
		}
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		cmd.Stdout = io.MultiWriter(f, out)
	} else {
		cmd.Stdout = sink
	}

	srec := &StepRecord{Captures: map[string]string{}}
	rec.Steps[st.ID] = srec
	start := time.Now()

	if st.Serve {
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("step %s: %v", st.ID, err)
		}
		re := regexp.MustCompile(st.Ready)
		deadline := time.Now().Add(30 * time.Second)
		for {
			if m := re.FindStringSubmatch(out.String()); m != nil {
				if len(m) > 1 {
					name := st.ReadyVar
					if name == "" {
						name = "addr"
					}
					vars[name] = m[1]
					srec.Captures[name] = m[1]
				}
				break
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill() //nolint:errcheck
				cmd.Wait()         //nolint:errcheck
				return fmt.Errorf("step %s: daemon never matched ready regex %q", st.ID, st.Ready)
			}
			time.Sleep(25 * time.Millisecond)
		}
		srec.WallMS = time.Since(start).Milliseconds()
		handedOff = true
		*serves = append(*serves, &serveProc{step: st, cmd: cmd, out: out, vars: cloneVars(vars), closers: closers})
		return nil
	}

	runErr := cmd.Run()
	srec.WallMS = time.Since(start).Milliseconds()
	if runErr != nil {
		return fmt.Errorf("step %s (%s): %v — see %s", st.ID, argv[0], runErr, logPath)
	}
	return r.finishStep(st, vars, rec, srec, out.String())
}

// finishStep applies a completed step's captures, metrics, ledger audit, and
// asserts. For serve steps it runs after the drain.
func (r *Runner) finishStep(st *Step, vars map[string]any, rec *RepeatRecord, srec *StepRecord, output string) error {
	for _, c := range st.Captures {
		m := regexp.MustCompile(c.Regex).FindStringSubmatch(output)
		if m == nil || len(m) < 2 {
			return fmt.Errorf("step %s: capture %q matched nothing", st.ID, c.Var)
		}
		vars[c.Var] = m[1]
		srec.Captures[c.Var] = m[1]
	}
	if st.Metrics != "" {
		p, err := substString(st.Metrics, vars)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return fmt.Errorf("step %s metrics: %w", st.ID, err)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			return fmt.Errorf("step %s metrics %s: %w", st.ID, p, err)
		}
		rec.Metrics[st.ID] = v
	}
	if st.Ledger != nil {
		lr, err := r.auditLedger(st, vars)
		if err != nil {
			return err
		}
		rec.Ledger[st.ID] = lr
	}
	for _, a := range st.Asserts {
		arec, err := evalAssert(&a, vars, nil)
		rec.Asserts = append(rec.Asserts, arec)
		if err != nil {
			return fmt.Errorf("step %s: %w", st.ID, err)
		}
	}
	return nil
}

// auditLedger verifies a step's output file against its journal anchors and
// records the roots — the per-cell tamper-evidence the summary carries.
func (r *Runner) auditLedger(st *Step, vars map[string]any) (*LedgerRecord, error) {
	sub := func(s string) (string, error) {
		if s == "" {
			return "", nil
		}
		return substString(s, vars)
	}
	outPath, err := sub(st.Ledger.Out)
	if err != nil {
		return nil, err
	}
	journal, err := sub(st.Ledger.Journal)
	if err != nil {
		return nil, err
	}
	sidecar, err := sub(st.Ledger.Sidecar)
	if err != nil {
		return nil, err
	}
	stage := st.Ledger.Stage
	if stage == "" {
		stage = "grade"
	}
	rep, err := ledger.VerifyFile(outPath, st.Ledger.Header, journal, stage, sidecar)
	if err != nil {
		return nil, fmt.Errorf("step %s ledger audit: %w", st.ID, err)
	}
	return &LedgerRecord{
		RunRoot: rep.RunRoot, Batches: rep.Batches, Lines: rep.Lines,
		Tail: rep.Tail, Sidecar: rep.Sidecar,
	}, nil
}

// drainServes SIGTERMs every daemon in reverse start order and requires a
// clean exit, then evaluates the serve steps' deferred captures and asserts.
// A nil runner only reaps (the abort path).
func drainServes(serves []*serveProc, rec *RepeatRecord, r *Runner) error {
	var firstErr error
	for i := len(serves) - 1; i >= 0; i-- {
		sp := serves[i]
		sp.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		done := make(chan error, 1)
		go func() { done <- sp.cmd.Wait() }()
		var waitErr error
		select {
		case waitErr = <-done:
		case <-time.After(30 * time.Second):
			sp.cmd.Process.Kill() //nolint:errcheck
			waitErr = fmt.Errorf("drain timed out")
			<-done
		}
		closeAll(sp.closers)
		if r == nil {
			continue
		}
		if waitErr != nil && firstErr == nil {
			firstErr = fmt.Errorf("step %s: daemon exited dirty after SIGTERM: %v", sp.step.ID, waitErr)
			continue
		}
		srec := rec.Steps[sp.step.ID]
		if err := r.finishStep(sp.step, sp.vars, rec, srec, sp.out.String()); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func closeAll(closers []io.Closer) {
	for _, c := range closers {
		c.Close() //nolint:errcheck
	}
}

func cloneVars(vars map[string]any) map[string]any {
	out := make(map[string]any, len(vars))
	for k, v := range vars {
		out[k] = v
	}
	return out
}

// WriteJSON writes the summary with a trailing newline.
func (res *Result) WriteJSON(path string) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// WriteCSV writes the flat per-(cell, repeat, step) record: one row per
// executed step, with its wall time and the step's audited run root when a
// ledger check ran.
func (res *Result) WriteCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"grid", "cell", "repeat", "step", "wall_ms", "run_root"}); err != nil {
		return err
	}
	for _, c := range res.Cells {
		for _, rep := range c.Repeats {
			ids := make([]string, 0, len(rep.Steps))
			for id := range rep.Steps {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				sr := rep.Steps[id]
				if sr.Skipped {
					continue
				}
				root := ""
				if lr, ok := rep.Ledger[id]; ok {
					root = lr.RunRoot
				}
				if err := w.Write([]string{
					res.Grid, c.Name, strconv.Itoa(rep.Repeat), id,
					strconv.FormatInt(sr.WallMS, 10), root,
				}); err != nil {
					return err
				}
			}
		}
	}
	w.Flush()
	return w.Error()
}
