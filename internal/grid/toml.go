// A deliberately small TOML subset, just enough for hand-written grid specs
// without a dependency: [table] and [[array-of-table]] headers, key = value
// pairs with string/integer/float/boolean/array/inline-table values, and #
// comments. Dotted keys, multi-line strings, and dates are out of scope —
// specs needing more use JSON.
package grid

import (
	"fmt"
	"strconv"
	"strings"
)

// parseTOML parses the subset into the same map shape encoding/json
// produces, so one decoder serves both formats.
func parseTOML(src string) (map[string]any, error) {
	root := map[string]any{}
	cur := root
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		fail := func(msg string) error { return fmt.Errorf("toml line %d: %s", ln+1, msg) }
		switch {
		case strings.HasPrefix(line, "[["):
			name := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "[["), "]]"))
			if name == "" || strings.Contains(name, ".") {
				return nil, fail("bad array-of-tables header")
			}
			entry := map[string]any{}
			list, _ := root[name].([]any)
			root[name] = append(list, any(entry))
			cur = entry
		case strings.HasPrefix(line, "["):
			name := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "["), "]"))
			if name == "" || strings.Contains(name, ".") {
				return nil, fail("bad table header")
			}
			t := map[string]any{}
			root[name] = t
			cur = t
		default:
			k, v, ok := strings.Cut(line, "=")
			if !ok {
				return nil, fail("expected key = value")
			}
			key := strings.TrimSpace(k)
			if key == "" {
				return nil, fail("empty key")
			}
			val, rest, err := parseValue(strings.TrimSpace(v))
			if err != nil {
				return nil, fail(err.Error())
			}
			if strings.TrimSpace(rest) != "" {
				return nil, fail("trailing content after value")
			}
			cur[strings.Trim(key, `"`)] = val
		}
	}
	return root, nil
}

func stripComment(line string) string {
	inStr := false
	for i, r := range line {
		switch r {
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// parseValue parses one value, returning the unconsumed remainder (used
// inside arrays and inline tables).
func parseValue(s string) (any, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, "", fmt.Errorf("empty value")
	}
	switch s[0] {
	case '"':
		end := strings.Index(s[1:], `"`)
		if end < 0 {
			return nil, "", fmt.Errorf("unterminated string")
		}
		return s[1 : 1+end], s[end+2:], nil
	case '[':
		rest := strings.TrimSpace(s[1:])
		var arr []any
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("unterminated array")
			}
			if rest[0] == ']' {
				return arr, rest[1:], nil
			}
			v, r, err := parseValue(rest)
			if err != nil {
				return nil, "", err
			}
			arr = append(arr, v)
			rest = strings.TrimSpace(r)
			if strings.HasPrefix(rest, ",") {
				rest = strings.TrimSpace(rest[1:])
			}
		}
	case '{':
		rest := strings.TrimSpace(s[1:])
		obj := map[string]any{}
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("unterminated inline table")
			}
			if rest[0] == '}' {
				return obj, rest[1:], nil
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return nil, "", fmt.Errorf("inline table expects key = value")
			}
			key := strings.Trim(strings.TrimSpace(rest[:eq]), `"`)
			v, r, err := parseValue(rest[eq+1:])
			if err != nil {
				return nil, "", err
			}
			obj[key] = v
			rest = strings.TrimSpace(r)
			if strings.HasPrefix(rest, ",") {
				rest = strings.TrimSpace(rest[1:])
			}
		}
	}
	// Bare scalar: ends at , ] or }.
	end := len(s)
	for i, r := range s {
		if r == ',' || r == ']' || r == '}' {
			end = i
			break
		}
	}
	tok, rest := strings.TrimSpace(s[:end]), s[end:]
	switch tok {
	case "true":
		return true, rest, nil
	case "false":
		return false, rest, nil
	}
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return float64(n), rest, nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return f, rest, nil
	}
	return nil, "", fmt.Errorf("unrecognized value %q", tok)
}
