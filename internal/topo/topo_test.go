package topo

import (
	"testing"
	"time"

	"chainchaos/internal/certmodel"
)

var base = time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)

// pki builds a small synthetic hierarchy: root -> i1 -> i2 -> leaf.
func pki(t *testing.T) (root, i1, i2, leaf *certmodel.Certificate) {
	t.Helper()
	root = certmodel.SyntheticRoot("Topo Root", base)
	i1 = certmodel.SyntheticIntermediate("Topo CA 1", root, base)
	i2 = certmodel.SyntheticIntermediate("Topo CA 2", i1, base)
	leaf = certmodel.SyntheticLeaf("topo.example", "1", i2, base, base.AddDate(1, 0, 0))
	return
}

func TestCompliantChainFigure2a(t *testing.T) {
	root, i1, i2, leaf := pki(t)
	g := Build([]*certmodel.Certificate{leaf, i2, i1, root})

	if !SequentialOrderOK(g.List) {
		t.Error("compliant chain should satisfy the sequential rule")
	}
	if g.HasDuplicates() || g.HasMultiplePaths() {
		t.Error("compliant chain misclassified")
	}
	if rev, _ := g.ReversedSequences(); rev {
		t.Error("compliant chain reported reversed")
	}
	paths := g.Paths()
	if len(paths) != 1 {
		t.Fatalf("path count = %d, want 1", len(paths))
	}
	want := []int{0, 1, 2, 3}
	for i, n := range paths[0] {
		if n.Index != want[i] {
			t.Errorf("path[%d] = node %d, want %d", i, n.Index, want[i])
		}
	}
	if len(g.IrrelevantNodes()) != 0 {
		t.Error("no node should be irrelevant")
	}
}

func TestIrrelevantCertificateFigure2b(t *testing.T) {
	root, i1, i2, leaf := pki(t)
	stranger := certmodel.SyntheticRoot("Unrelated Root", base)
	g := Build([]*certmodel.Certificate{leaf, stranger, i2, i1, root})

	if SequentialOrderOK(g.List) {
		t.Error("list with interloper should fail sequential rule")
	}
	irr := g.IrrelevantNodes()
	if len(irr) != 1 || irr[0].Index != 1 {
		t.Fatalf("irrelevant nodes = %v, want just node 1", irr)
	}
	if g.HasMultiplePaths() {
		t.Error("single path expected")
	}
}

func TestCrossSignMultiplePathsFigure2c(t *testing.T) {
	// The USERTrust shape of Figure 2c: the intermediate's issuer exists
	// in two variants sharing subject and key — a self-signed root and a
	// cross-signed certificate chaining to an older root ("AAA"). The
	// server inserts the cross-signed certificate at the wrong position:
	// AFTER its own issuer, producing one reversed path next to one
	// in-order path. Swapping nodes 2 and 3 would restore compliance.
	usertrust := certmodel.SyntheticRoot("USERTrust RSA Certification Authority", base)
	aaa := certmodel.SyntheticRoot("AAA Certificate Services", base)
	cross := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: usertrust.Subject, Issuer: aaa.Subject, Serial: "cross",
		NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
		Key: certmodel.KeyOf(usertrust), SignedBy: certmodel.KeyOf(aaa),
		IsCA: true, BasicConstraintsValid: true,
		KeyUsage: certmodel.KeyUsageCertSign, HasKeyUsage: true,
	})
	issuing := certmodel.SyntheticIntermediate("Sectigo DV CA", usertrust, base)
	leaf := certmodel.SyntheticLeaf("cross.example", "1", issuing, base, base.AddDate(1, 0, 0))

	// Deployed order: 0=leaf, 1=issuing, 2=AAA root, 3=cross-signed
	// USERTrust, 4=self-signed USERTrust.
	g := Build([]*certmodel.Certificate{leaf, issuing, aaa, cross, usertrust})

	paths := g.Paths()
	if len(paths) != 2 {
		t.Fatalf("path count = %d, want 2 (cross-signing)", len(paths))
	}
	if !g.HasMultiplePaths() {
		t.Error("multiple paths not flagged")
	}
	anyRev, allRev := g.ReversedSequences()
	if !anyRev {
		t.Error("cross-signed cert placed after its issuer should yield a reversed path")
	}
	if allRev {
		t.Error("the direct path (0,1,4) is in order; not all paths are reversed")
	}
}

func TestDuplicateFoldingFigure2d(t *testing.T) {
	root, i1, i2, leaf := pki(t)
	// leaf, i2, i1, root, i1(dup), i2(dup)
	g := Build([]*certmodel.Certificate{leaf, i2, i1, root, i1, i2})

	if !g.HasDuplicates() {
		t.Fatal("duplicates not detected")
	}
	if got := g.DuplicateCount(); got != 2 {
		t.Errorf("duplicate count = %d, want 2", got)
	}
	if len(g.Nodes) != 4 {
		t.Errorf("folded node count = %d, want 4", len(g.Nodes))
	}
	dups := g.DuplicatedNodes()
	if len(dups) != 2 {
		t.Fatalf("duplicated nodes = %d, want 2", len(dups))
	}
	// i1 first occurs at index 2, duplicated at 4; i2 at 1 and 5.
	occ := map[int][]int{}
	for _, d := range dups {
		occ[d.Index] = d.Occurrences
	}
	if got := occ[2]; len(got) != 2 || got[1] != 4 {
		t.Errorf("node2 occurrences = %v", got)
	}
	if got := occ[1]; len(got) != 2 || got[1] != 5 {
		t.Errorf("node1 occurrences = %v", got)
	}
}

func TestReversedChain(t *testing.T) {
	root, i1, i2, leaf := pki(t)
	// The classic GoGetSSL shape: leaf first, then the bundle root->i1->i2
	// pasted in top-down (reversed) order.
	g := Build([]*certmodel.Certificate{leaf, root, i1, i2})
	anyRev, allRev := g.ReversedSequences()
	if !anyRev || !allRev {
		t.Errorf("reversed = (%v,%v), want (true,true)", anyRev, allRev)
	}
	if SequentialOrderOK(g.List) {
		t.Error("reversed chain passed sequential rule")
	}
	// The path itself is still discoverable by a reordering client.
	paths := g.Paths()
	if len(paths) != 1 || len(paths[0]) != 4 {
		t.Fatalf("paths = %d", len(paths))
	}
}

func TestCyclicCrossSignTerminates(t *testing.T) {
	// Two CAs cross-signing each other (CVE-2024-0567's DoS shape). The
	// walk must terminate, not loop.
	keyA := certmodel.NewSyntheticKey("Cycle A")
	keyB := certmodel.NewSyntheticKey("Cycle B")
	nameA := certmodel.Name{CommonName: "Cycle A"}
	nameB := certmodel.Name{CommonName: "Cycle B"}
	mk := func(subject, issuer certmodel.Name, key, signer certmodel.SyntheticKey, serial string) *certmodel.Certificate {
		return certmodel.NewSynthetic(certmodel.SyntheticConfig{
			Subject: subject, Issuer: issuer, Serial: serial,
			NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
			Key: key, SignedBy: signer,
			IsCA: true, BasicConstraintsValid: true,
		})
	}
	aByB := mk(nameA, nameB, keyA, keyB, "a-by-b")
	bByA := mk(nameB, nameA, keyB, keyA, "b-by-a")
	leafKey := certmodel.NewSyntheticKey("cycle leaf")
	leaf := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "cycle.example"}, Issuer: nameA,
		Serial: "leaf", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: leafKey, SignedBy: keyA,
		DNSNames: []string{"cycle.example"},
	})
	g := Build([]*certmodel.Certificate{leaf, aByB, bByA})
	paths := g.Paths()
	if len(paths) == 0 {
		t.Fatal("no paths found in cyclic graph")
	}
	for _, p := range paths {
		if len(p) > 3 {
			t.Errorf("path longer than node count: %d", len(p))
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if g := Build(nil); g.Leaf() != nil || len(g.Paths()) != 0 {
		t.Error("empty graph misbehaves")
	}
	root, _, _, _ := pki(t)
	g := Build([]*certmodel.Certificate{root})
	if !SequentialOrderOK(g.List) {
		t.Error("singleton trivially ordered")
	}
	paths := g.Paths()
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Fatalf("singleton paths = %v", paths)
	}
}

func TestStringRendering(t *testing.T) {
	root, i1, i2, leaf := pki(t)
	g := Build([]*certmodel.Certificate{leaf, i2, i1, root, i1})
	s := g.String()
	if s == "" || s == "(no edges)" {
		t.Errorf("String() = %q", s)
	}
}
