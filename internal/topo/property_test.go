package topo

import (
	"math/rand"
	"testing"

	"chainchaos/internal/certmodel"
)

// randomList draws a list from a fixed pool of related and unrelated
// certificates, with duplicates allowed.
func randomList(r *rand.Rand) []*certmodel.Certificate {
	root := certmodel.SyntheticRoot("Prop Root", base)
	i1 := certmodel.SyntheticIntermediate("Prop CA 1", root, base)
	i2 := certmodel.SyntheticIntermediate("Prop CA 2", i1, base)
	leafA := certmodel.SyntheticLeaf("prop-a.example", "a", i2, base, base.AddDate(1, 0, 0))
	stranger := certmodel.SyntheticRoot("Prop Stranger", base)
	pool := []*certmodel.Certificate{root, i1, i2, leafA, stranger}

	n := 1 + r.Intn(8)
	list := make([]*certmodel.Certificate, 0, n+1)
	list = append(list, leafA) // position 0 is always the leaf
	for i := 0; i < n; i++ {
		list = append(list, pool[r.Intn(len(pool))])
	}
	return list
}

// TestPropertyFoldingPreservesDistinctCerts: node count equals the number of
// distinct fingerprints, and every occurrence is accounted for.
func TestPropertyFoldingPreservesDistinctCerts(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		list := randomList(r)
		g := Build(list)
		distinct := map[string]bool{}
		for _, c := range list {
			distinct[c.FingerprintHex()] = true
		}
		if len(g.Nodes) != len(distinct) {
			t.Fatalf("case %d: nodes=%d distinct=%d", i, len(g.Nodes), len(distinct))
		}
		occ := 0
		for _, n := range g.Nodes {
			occ += len(n.Occurrences)
		}
		if occ != len(list) {
			t.Fatalf("case %d: occurrences=%d list=%d", i, occ, len(list))
		}
	}
}

// TestPropertySequentialImpliesNotReversed: a list satisfying the TLS 1.2
// sequential rule can never contain a reversed path.
func TestPropertySequentialImpliesNotReversed(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	checked := 0
	for i := 0; i < 2000; i++ {
		list := randomList(r)
		if !SequentialOrderOK(list) {
			continue
		}
		g := Build(list)
		if g.HasDuplicates() {
			// Duplicates legitimately relabel positions; the implication
			// is only claimed for duplicate-free lists.
			continue
		}
		checked++
		if rev, _ := g.ReversedSequences(); rev {
			t.Fatalf("case %d: sequential list reported reversed: %s", i, g)
		}
	}
	if checked == 0 {
		t.Skip("no sequential duplicate-free samples drawn")
	}
}

// TestPropertyPathsStartAtLeafAndFollowIssuance: every reported path starts
// at position 0 and every step is a genuine issuance link.
func TestPropertyPathsStartAtLeafAndFollowIssuance(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		g := Build(randomList(r))
		for _, p := range g.Paths() {
			if len(p) == 0 || p[0].Index != 0 {
				t.Fatalf("case %d: path does not start at the leaf: %v", i, p)
			}
			for j := 0; j+1 < len(p); j++ {
				if !certmodel.Issued(p[j+1].Cert, p[j].Cert) {
					t.Fatalf("case %d: non-issuance step %d", i, j)
				}
			}
			// No node repeats within one path.
			seen := map[*Node]bool{}
			for _, n := range p {
				if seen[n] {
					t.Fatalf("case %d: node repeated on a path", i)
				}
				seen[n] = true
			}
		}
	}
}

// TestPropertyIrrelevantDisjointFromPaths: the irrelevant set never
// intersects any path.
func TestPropertyIrrelevantDisjointFromPaths(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		g := Build(randomList(r))
		irrelevant := map[*Node]bool{}
		for _, n := range g.IrrelevantNodes() {
			irrelevant[n] = true
		}
		for _, p := range g.Paths() {
			for _, n := range p {
				if irrelevant[n] {
					t.Fatalf("case %d: path node flagged irrelevant", i)
				}
			}
		}
		if len(g.IrrelevantNodes())+len(g.RelevantNodes()) != len(g.Nodes) {
			t.Fatalf("case %d: relevant/irrelevant partition broken", i)
		}
	}
}
