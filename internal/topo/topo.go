// Package topo builds the issuance topology graph the paper uses to classify
// out-of-order certificate chains (§3.1, Figure 2). The server's certificate
// list is laid out positionally; duplicates are folded onto their first
// occurrence (the Cp[i] relabeling); edges follow the issuance relation; and
// classification queries — duplicates, irrelevant certificates, multiple
// paths, reversed sequences — are answered over the folded graph.
package topo

import (
	"fmt"
	"strings"
	"sync"

	"chainchaos/internal/certmodel"
)

// maxPaths bounds path enumeration. Real-world cross-signing produces at most
// a handful of paths (the paper observed up to three); the bound only guards
// against adversarial inputs.
const maxPaths = 64

// Node is one distinct certificate in the list.
type Node struct {
	// Index is the position of the certificate's first occurrence in the
	// original list; it is the node's label in Figure 2 terms.
	Index int
	Cert  *certmodel.Certificate
	// Occurrences lists every position where a bit-identical copy appears.
	Occurrences []int
	// Issuers are the distinct in-list candidates that issued this node.
	Issuers []*Node
	// Children are the inverse edges.
	Children []*Node
}

// Label renders the node in the paper's notation: "4" for a first
// occurrence; duplicates are described via Occurrences.
func (n *Node) Label() string { return fmt.Sprintf("%d", n.Index) }

// Graph is the folded issuance topology of a certificate list. A Graph is
// immutable after Build; the derived path enumeration and ancestor closure
// are memoized, so the compliance analyzers and difftest grading that each
// interrogate the same graph several times per chain pay for the DFS once.
// Use Graphs by pointer — the memoization state makes them non-copyable.
type Graph struct {
	// List is the original server-provided order, including duplicates.
	List []*certmodel.Certificate
	// Nodes holds the distinct certificates in first-occurrence order.
	Nodes []*Node

	byFP map[certmodel.FP]*Node

	// Memoized query results (goroutine-safe: difftest and the experiment
	// Env grade precomputed graphs from worker pools).
	pathsOnce    sync.Once
	paths        [][]*Node
	relevantOnce sync.Once
	relevant     map[*Node]bool
}

// Build folds duplicates and wires issuance edges. It accepts an empty list,
// producing an empty graph.
func Build(list []*certmodel.Certificate) *Graph {
	g := &Graph{List: list, byFP: make(map[certmodel.FP]*Node, len(list))}
	for i, cert := range list {
		fp := cert.Fingerprint()
		if node, ok := g.byFP[fp]; ok {
			node.Occurrences = append(node.Occurrences, i)
			continue
		}
		node := &Node{Index: i, Cert: cert, Occurrences: []int{i}}
		g.byFP[fp] = node
		g.Nodes = append(g.Nodes, node)
	}
	for _, child := range g.Nodes {
		for _, parent := range g.Nodes {
			if parent == child {
				continue
			}
			if certmodel.Issued(parent.Cert, child.Cert) {
				child.Issuers = append(child.Issuers, parent)
				parent.Children = append(parent.Children, child)
			}
		}
	}
	return g
}

// Leaf returns the node of the first certificate in the list — the position
// TLS requires the end-entity certificate to occupy — or nil for an empty
// graph.
func (g *Graph) Leaf() *Node {
	if len(g.Nodes) == 0 {
		return nil
	}
	return g.Nodes[0]
}

// HasDuplicates reports whether any certificate appears more than once
// bit-for-bit.
func (g *Graph) HasDuplicates() bool {
	for _, n := range g.Nodes {
		if len(n.Occurrences) > 1 {
			return true
		}
	}
	return false
}

// DuplicateCount returns the number of surplus copies across the whole list
// (a certificate appearing three times contributes two).
func (g *Graph) DuplicateCount() int {
	total := 0
	for _, n := range g.Nodes {
		total += len(n.Occurrences) - 1
	}
	return total
}

// DuplicatedNodes returns the nodes with more than one occurrence.
func (g *Graph) DuplicatedNodes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if len(n.Occurrences) > 1 {
			out = append(out, n)
		}
	}
	return out
}

// Paths enumerates the certification paths that terminate at the leaf:
// sequences [leaf, issuer, issuer-of-issuer, ...] following issuance edges
// upward until a node has no in-list issuer or only issuers already on the
// path (cycles from mutually cross-signed certificates are cut, the
// CVE-2024-0567 shape). At most maxPaths paths are returned.
//
// The result is computed once and shared by every later call; callers must
// not mutate the returned slices.
func (g *Graph) Paths() [][]*Node {
	g.pathsOnce.Do(func() { g.paths = g.computePaths() })
	return g.paths
}

func (g *Graph) computePaths() [][]*Node {
	leaf := g.Leaf()
	if leaf == nil {
		return nil
	}
	var paths [][]*Node
	onPath := make(map[*Node]bool)
	var walk func(node *Node, acc []*Node)
	walk = func(node *Node, acc []*Node) {
		if len(paths) >= maxPaths {
			return
		}
		acc = append(acc, node)
		onPath[node] = true
		defer delete(onPath, node)

		if node.Cert.SelfSigned() {
			// A self-signed certificate terminates the path even if some
			// other in-list certificate could nominally extend it (e.g. a
			// cross-signed sibling sharing the same key).
			paths = append(paths, append([]*Node(nil), acc...))
			return
		}
		extended := false
		for _, issuer := range node.Issuers {
			if issuer == node || onPath[issuer] {
				continue // cross-signing cycle
			}
			extended = true
			walk(issuer, acc)
		}
		if !extended {
			paths = append(paths, append([]*Node(nil), acc...))
		}
	}
	walk(leaf, nil)
	return paths
}

// RelevantNodes returns the ancestor closure of the leaf (every node that
// appears on some path), including the leaf itself. The result is computed
// once and shared by every later call; callers must not mutate the returned
// map.
func (g *Graph) RelevantNodes() map[*Node]bool {
	g.relevantOnce.Do(func() {
		relevant := make(map[*Node]bool)
		for _, path := range g.Paths() {
			for _, n := range path {
				relevant[n] = true
			}
		}
		g.relevant = relevant
	})
	return g.relevant
}

// IrrelevantNodes returns the distinct certificates with no direct or
// indirect issuance relation to the leaf. Duplicates are already folded, so
// surplus copies do not count (matching the paper: "duplicate certificates
// are not counted").
func (g *Graph) IrrelevantNodes() []*Node {
	relevant := g.RelevantNodes()
	var out []*Node
	for _, n := range g.Nodes {
		if !relevant[n] {
			out = append(out, n)
		}
	}
	return out
}

// HasMultiplePaths reports whether more than one certification path
// terminates at the leaf (Figure 2c).
func (g *Graph) HasMultiplePaths() bool {
	return len(g.Paths()) > 1
}

// pathReversed reports whether any issuance step in the path places the
// issuer at an earlier list position than its subject. In a compliant chain
// every issuer follows its subject.
func pathReversed(path []*Node) bool {
	for i := 0; i+1 < len(path); i++ {
		subject, issuer := path[i], path[i+1]
		if issuer.Index < subject.Index {
			return true
		}
	}
	return false
}

// ReversedSequences reports whether at least one path is reversed and
// whether all paths are reversed (the paper reports both counts: 8,566
// chains with ≥1 reversed path, 8,370 with all paths reversed).
func (g *Graph) ReversedSequences() (any, all bool) {
	paths := g.Paths()
	if len(paths) == 0 {
		return false, false
	}
	all = true
	for _, p := range paths {
		if pathReversed(p) {
			any = true
		} else {
			all = false
		}
	}
	return any, all
}

// SequentialOrderOK applies TLS 1.2's literal rule to the raw list: each
// certificate must directly certify the one preceding it. Single-certificate
// lists are trivially ordered.
func SequentialOrderOK(list []*certmodel.Certificate) bool {
	for i := 0; i+1 < len(list); i++ {
		if !certmodel.Issued(list[i+1], list[i]) {
			return false
		}
	}
	return true
}

// String renders the folded topology compactly, e.g.
// "0<-1 1<-2 2<-3 | dup 4:[4 6]" — used by the Figure 2 gallery and debug
// output.
func (g *Graph) String() string {
	var edges []string
	for _, n := range g.Nodes {
		for _, issuer := range n.Issuers {
			edges = append(edges, fmt.Sprintf("%d<-%d", n.Index, issuer.Index))
		}
	}
	var dups []string
	for _, n := range g.DuplicatedNodes() {
		dups = append(dups, fmt.Sprintf("%d:%v", n.Index, n.Occurrences))
	}
	s := strings.Join(edges, " ")
	if len(dups) > 0 {
		s += " | dup " + strings.Join(dups, " ")
	}
	if s == "" {
		s = "(no edges)"
	}
	return s
}
