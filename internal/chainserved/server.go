// Package chainserved is the serving layer over the paper's analysis
// pipeline: an HTTP/JSON service that accepts one certificate chain per
// request — pasted as PEM or named as a host:port to live-scan — and answers
// with the structural compliance verdict (§3/§4), the per-client
// construction matrix (Table 9's eight models), and the §6-recommendations
// repair from chainfix.
//
// The production posture mirrors the measurement pipeline's discipline:
//
//   - Admission control bounds concurrent verdict work with a semaphore;
//     excess load is shed immediately with 429 + Retry-After instead of
//     queueing without bound (a verdict request costs eight path-builds, so
//     an unbounded queue is a memory bomb).
//   - Responses are memoized in a verdictcache keyed on the chain digest,
//     the client-profile-set fingerprint, and the leaf-match bit — the
//     study's dedup soundness model. Only domain-independent outputs are
//     cached; leaf placement is recomputed per request. The cache is never
//     Seal()ed: a daemon keeps learning new chains for its whole lifetime.
//   - Every endpoint carries its own latency histogram, in-flight gauge,
//     and request counter; the verdict endpoint additionally counts
//     admitted vs completed requests, the pair a graceful drain compares to
//     prove nothing in flight was dropped.
package chainserved

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/chainfix"
	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/obs"
	"chainchaos/internal/parallel"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/tlsscan"
	"chainchaos/internal/topo"
	"chainchaos/internal/verdictcache"
)

// Defaults for the zero Config fields.
const (
	// DefaultMaxBody caps request bodies at 1 MiB — a chain of the paper's
	// worst observed length (151 certificates) PEM-encodes well under this.
	DefaultMaxBody = 1 << 20
	// DefaultMaxInFlight bounds concurrent verdict requests.
	DefaultMaxInFlight = 64
	// DefaultScanTimeout bounds one live-scan handshake.
	DefaultScanTimeout = 5 * time.Second
)

// Config wires a Server.
type Config struct {
	// Roots anchors path construction, completeness analysis, and repair.
	// Required.
	Roots *rootstore.Store
	// AIA, when non-nil, resolves caIssuers URIs for completeness recovery,
	// AIA-capable client models, and repair completion. Each request binds
	// the fetcher to its own context, so a cancelled request frees its
	// in-flight fetch.
	AIA *aia.HTTPFetcher
	// Workers bounds the per-request client-matrix fan-out (0 = GOMAXPROCS).
	Workers int
	// MaxInFlight is the admission-control width: verdict requests beyond
	// it are shed with 429 (0 = DefaultMaxInFlight).
	MaxInFlight int
	// MaxBody caps the request body in bytes (0 = DefaultMaxBody).
	MaxBody int64
	// ScanTimeout bounds a live-scan connection attempt (0 = 5s).
	ScanTimeout time.Duration
	// Now is the validation time for the client models; the zero time
	// disables validity checks, making verdicts purely structural and
	// therefore stable for the cache's whole lifetime.
	Now time.Time
	// Metrics receives the service's counters, gauges, and histograms.
	// May be nil (all instrumentation becomes no-ops).
	Metrics *obs.Registry
}

// Server answers verdict requests. Create with New; the zero value is not
// usable.
type Server struct {
	cfg      Config
	profiles []clients.Profile
	scope    certmodel.FP
	cache    *verdictcache.Cache[*memo]
	scanner  *tlsscan.Scanner
	sem      chan struct{}

	// Drain accounting: admitted counts requests past admission control,
	// completed counts responses fully written. After a graceful drain the
	// two must match — that equality is the "zero dropped in-flight" proof.
	admitted  *obs.Counter
	completed *obs.Counter
	shed      *obs.Counter
	cacheable *obs.Counter
}

// memo is the cached, domain-independent part of a verdict: the order and
// completeness analyses, the client matrix, and the repair. Leaf placement
// depends on the queried hostname and is recomputed per request; the
// hostname's only influence on everything here is the leaf-match bit, which
// is part of the cache key.
type memo struct {
	Order        compliance.OrderReport
	Completeness compliance.CompletenessReport
	Matrix       []ClientVerdict
	Repair       *Repair
	RepairErr    string
}

// New builds a Server from cfg, applying defaults and registering metrics.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.ScanTimeout <= 0 {
		cfg.ScanTimeout = DefaultScanTimeout
	}
	s := &Server{
		cfg:      cfg,
		profiles: clients.All(),
		cache:    verdictcache.New[*memo]("chainserved.vcache", cfg.Metrics),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		scanner: &tlsscan.Scanner{
			Timeout: cfg.ScanTimeout,
			Metrics: cfg.Metrics,
		},
		admitted:  cfg.Metrics.Counter("chainserved.verdict.admitted"),
		completed: cfg.Metrics.Counter("chainserved.verdict.completed"),
		shed:      cfg.Metrics.Counter("chainserved.verdict.shed"),
		cacheable: cfg.Metrics.Counter("chainserved.verdict.cached_responses"),
	}
	s.scope = clients.Fingerprint(s.profiles)
	return s
}

// Handler returns the service mux:
//
//	POST /v1/verdict  — grade a chain (PEM body or live-scan target)
//	GET  /healthz     — liveness + in-flight count
//	GET  /metrics     — the registry snapshot as JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/verdict", s.instrument("verdict", s.handleVerdict))
	mux.Handle("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("/metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// Admitted returns the number of verdict requests accepted past admission
// control, Completed the number fully answered. A drained server reports
// equal values. Shed counts requests turned away with 429.
func (s *Server) Admitted() int64  { return s.admitted.Value() }
func (s *Server) Completed() int64 { return s.completed.Value() }
func (s *Server) Shed() int64      { return s.shed.Value() }

// instrument wraps an endpoint with its per-endpoint request counter,
// in-flight gauge, and latency histogram (chainserved.<name>.requests /
// .inflight / .latency).
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	requests := s.cfg.Metrics.Counter("chainserved." + name + ".requests")
	inflight := s.cfg.Metrics.Gauge("chainserved." + name + ".inflight")
	latency := s.cfg.Metrics.Histogram("chainserved."+name+".latency", obs.LatencyBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inflight.Add(1)
		start := s.cfg.Metrics.Time()
		h(w, r)
		latency.ObserveDuration(s.cfg.Metrics.Time().Sub(start))
		inflight.Add(-1)
	})
}

// VerdictRequest is the POST /v1/verdict body. Exactly one of PEM and
// Target must be set.
type VerdictRequest struct {
	// Domain is the hostname the chain serves; it drives leaf placement
	// and hostname validation. Defaults to the Target's host for live
	// scans; may be empty for pasted PEM (the leaf then grades as
	// mismatched, never matched).
	Domain string `json:"domain"`
	// PEM is the server-supplied certificate list, leaf first, as a PEM
	// bundle.
	PEM string `json:"pem,omitempty"`
	// Target is a host:port to live-scan instead of supplying PEM.
	Target string `json:"target,omitempty"`
	// KeepRoot retains the self-signed root in the repaired chain.
	KeepRoot bool `json:"keep_root,omitempty"`
}

// ClientVerdict is one cell of the construction matrix.
type ClientVerdict struct {
	Client string `json:"client"`
	Kind   string `json:"kind"`
	OK     bool   `json:"ok"`
}

// OrderJSON summarizes the issuance-order analysis.
type OrderJSON struct {
	Compliant     bool `json:"compliant"`
	Duplicates    bool `json:"duplicates"`
	Irrelevant    bool `json:"irrelevant"`
	MultiplePaths bool `json:"multiple_paths"`
	Reversed      bool `json:"reversed"`
}

// CompletenessJSON summarizes the completeness analysis.
type CompletenessJSON struct {
	Class                string `json:"class"`
	AIARecoverable       bool   `json:"aia_recoverable,omitempty"`
	MissingIntermediates int    `json:"missing_intermediates,omitempty"`
}

// Repair is the chainfix result rendered for the wire.
type Repair struct {
	Actions   []string `json:"actions"`
	PEM       string   `json:"pem"`
	Compliant bool     `json:"compliant"`
}

// VerdictResponse is the POST /v1/verdict answer.
type VerdictResponse struct {
	Domain        string           `json:"domain"`
	Source        string           `json:"source"` // "pem" or "scan"
	Digest        string           `json:"digest"`
	Cached        bool             `json:"cached"`
	Compliant     bool             `json:"compliant"`
	LeafPlacement string           `json:"leaf_placement"`
	Order         OrderJSON        `json:"order"`
	Completeness  CompletenessJSON `json:"completeness"`
	Matrix        []ClientVerdict  `json:"matrix"`
	Repair        *Repair          `json:"repair,omitempty"`
	RepairError   string           `json:"repair_error,omitempty"`
}

// ErrorBody is the structured error envelope every failure answers with.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorJSON struct {
	Error ErrorBody `json:"error"`
}

// Error codes.
const (
	CodeBadRequest   = "bad_request"
	CodeBadPEM       = "bad_pem"
	CodeBodyTooLarge = "body_too_large"
	CodeOverloaded   = "overloaded"
	CodeScanDial     = "scan_dial"
	CodeScanShake    = "scan_handshake"
	CodeScanParse    = "scan_parse"
	CodeCancelled    = "cancelled"
)

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorJSON{Error: ErrorBody{Code: code, Message: msg}}) //nolint:errcheck // response write
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response write
}

// handleHealthz answers liveness probes with the current verdict in-flight
// count (admission occupancy, not the HTTP-level gauge).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":   "ok",
		"inflight": len(s.sem),
	})
}

// handleMetrics serves the registry snapshot; a nil registry serves an
// empty snapshot so probes need not branch.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	data, err := s.cfg.Metrics.Snapshot().JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // response write
}

// handleVerdict is the service's reason to exist: admission control, body
// decode, chain acquisition (PEM or live scan), grading, and the response.
func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, CodeBadRequest, "POST only")
		return
	}

	// Admission: take a slot or shed. Shedding immediately (no queue wait)
	// keeps the 429 cheap and the Retry-After honest — by the time the
	// client retries, a slot has very likely turned over.
	select {
	case s.sem <- struct{}{}:
	default:
		s.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeOverloaded,
			fmt.Sprintf("verdict queue full (%d in flight); retry shortly", cap(s.sem)))
		return
	}
	s.admitted.Inc()
	defer func() {
		s.completed.Inc()
		<-s.sem
	}()

	var req VerdictRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBody))
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if (req.PEM == "") == (req.Target == "") {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			`exactly one of "pem" and "target" must be set`)
		return
	}

	var list []*certmodel.Certificate
	source := "pem"
	if req.PEM != "" {
		var err error
		list, err = certmodel.ParsePEMBundle([]byte(req.PEM))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadPEM, err.Error())
			return
		}
	} else {
		source = "scan"
		host, _, err := net.SplitHostPort(req.Target)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("target %q is not host:port: %v", req.Target, err))
			return
		}
		if req.Domain == "" {
			req.Domain = host
		}
		res := s.scanner.Scan(r.Context(), tlsscan.Target{Addr: req.Target, Domain: req.Domain})
		if res.Err != nil {
			code, status := scanError(res.Cause)
			writeError(w, status, code,
				fmt.Sprintf("scan %s: %v", req.Target, res.Err))
			return
		}
		list = res.List
	}
	if len(list) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadPEM, "no certificates in input")
		return
	}

	resp := s.grade(r.Context(), list, req.Domain, req.KeepRoot)
	resp.Source = source
	writeJSON(w, resp)
}

// scanError maps a scan failure cause to its wire code and HTTP status:
// transport losses are upstream failures (502), cancellations follow the
// client (499, the de-facto "client closed request" status).
func scanError(cause tlsscan.ErrorCause) (string, int) {
	switch cause {
	case tlsscan.CauseDial:
		return CodeScanDial, http.StatusBadGateway
	case tlsscan.CauseHandshake:
		return CodeScanShake, http.StatusBadGateway
	case tlsscan.CauseCancelled:
		return CodeCancelled, 499
	default:
		return CodeScanParse, http.StatusBadGateway
	}
}

// grade runs the full analysis over one acquired chain, consulting the
// verdict cache first. KeepRoot changes the repair output, so it perturbs
// the cache scope: the two repair configurations are distinct gradings that
// must never share an entry.
func (s *Server) grade(ctx context.Context, list []*certmodel.Certificate, domain string, keepRoot bool) *VerdictResponse {
	scope := s.scope
	if keepRoot {
		scope[0] ^= 0xFF
	}
	key := verdictcache.Key{
		Digest: certmodel.ListDigest(list),
		Scope:  scope,
		Match:  list[0].MatchesDomain(domain),
	}

	m, hit := s.cache.Get(key)
	if !hit {
		m = s.compute(ctx, list, domain, keepRoot)
		if ctx.Err() == nil {
			// A cancelled request may have aborted AIA fetches mid-chase;
			// its partial analysis must not poison the cache.
			s.cache.Put(key, m)
		}
	} else {
		s.cacheable.Inc()
	}

	leaf := compliance.ClassifyLeafPlacement(list, domain)
	resp := &VerdictResponse{
		Domain:        domain,
		Digest:        fmt.Sprintf("%x", key.Digest),
		Cached:        hit,
		Compliant:     leaf.CorrectlyPlaced() && !m.Order.NonCompliant() && m.Completeness.Class != compliance.Incomplete,
		LeafPlacement: leaf.String(),
		Order: OrderJSON{
			Compliant:     !m.Order.NonCompliant(),
			Duplicates:    m.Order.HasDuplicates,
			Irrelevant:    m.Order.HasIrrelevant,
			MultiplePaths: m.Order.MultiplePaths,
			Reversed:      m.Order.ReversedAny,
		},
		Completeness: CompletenessJSON{
			Class:                m.Completeness.Class.String(),
			AIARecoverable:       m.Completeness.AIARecoverable,
			MissingIntermediates: m.Completeness.MissingIntermediates,
		},
		Matrix:      m.Matrix,
		Repair:      m.Repair,
		RepairError: m.RepairErr,
	}
	return resp
}

// compute performs the uncached analysis: order + completeness, the
// eight-client construction matrix fanned out over the worker pool, and the
// chainfix repair. AIA fetches are bound to the request context throughout.
func (s *Server) compute(ctx context.Context, list []*certmodel.Certificate, domain string, keepRoot bool) *memo {
	var fetcher aia.Fetcher
	if s.cfg.AIA != nil {
		fetcher = s.cfg.AIA.WithContext(ctx)
	}

	analyzer := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{
		Roots:   s.cfg.Roots,
		Fetcher: fetcher,
	}}
	report := analyzer.Analyze(domain, topo.Build(list))

	// The matrix: one fresh Builder per profile (Builders own scratch and
	// are not goroutine-safe), fanned out over the bounded pool. Each gets
	// a fresh intermediate cache so verdicts never depend on what this
	// process graded earlier.
	profiles := s.profiles
	matrix, err := parallel.Map(ctx, s.cfg.Workers, profiles, func(i int, p clients.Profile) ClientVerdict {
		b := &pathbuild.Builder{
			Policy:  p.Policy,
			Roots:   s.cfg.Roots,
			Fetcher: fetcher,
			Cache:   rootstore.New("cache"),
			Now:     s.cfg.Now,
			Metrics: s.cfg.Metrics,
		}
		out := b.Build(list, domain)
		b.FlushMetrics()
		return ClientVerdict{Client: p.Name, Kind: p.Kind.String(), OK: out.OK()}
	})
	if err != nil {
		// Context cancelled mid-fan-out: the caller discards the memo.
		matrix = nil
	}

	m := &memo{
		Order:        report.Order,
		Completeness: report.Completeness,
		Matrix:       matrix,
	}

	fixer := &chainfix.Fixer{Roots: s.cfg.Roots, Fetcher: fetcher, KeepRoot: keepRoot}
	res, err := fixer.Fix(list, domain)
	if err != nil {
		m.RepairErr = err.Error()
		return m
	}
	pem, err := certmodel.EncodePEM(res.List)
	if err != nil {
		m.RepairErr = err.Error()
		return m
	}
	actions := make([]string, len(res.Actions))
	for i, a := range res.Actions {
		actions[i] = a.String()
	}
	m.Repair = &Repair{
		Actions:   actions,
		PEM:       string(pem),
		Compliant: res.Report.Compliant(),
	}
	return m
}
