package chainserved

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/faults"
	"chainchaos/internal/obs"
	"chainchaos/internal/rootstore"
)

// fixture builds one PKI and a server over it: root → ca2 → ca1 → leaf for
// "served.example", plus the raw materials for broken chains.
type fixture struct {
	roots *rootstore.Store
	leaf  *certgen.Leaf
	ca1   *certgen.Authority
	ca2   *certgen.Authority
	root  *certgen.Authority
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	root, err := certgen.NewRoot("Served Root")
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := root.NewIntermediate("Served CA 2")
	if err != nil {
		t.Fatal(err)
	}
	ca1, err := ca2.NewIntermediate("Served CA 1")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca1.NewLeaf("served.example")
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		roots: rootstore.NewWith("test", root.Cert),
		leaf:  leaf, ca1: ca1, ca2: ca2, root: root,
	}
}

// pem encodes a chain for the request body.
func (f *fixture) pem(t *testing.T, list ...*certmodel.Certificate) string {
	t.Helper()
	data, err := certmodel.EncodePEM(list)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func (f *fixture) server(cfg Config) *Server {
	if cfg.Roots == nil {
		cfg.Roots = f.roots
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Now.IsZero() {
		cfg.Now = certgen.Reference
	}
	return New(cfg)
}

// post submits a verdict request and returns the recorder.
func post(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/verdict", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// decodeError asserts a structured error envelope with the given code.
func decodeError(t *testing.T, w *httptest.ResponseRecorder, wantStatus int, wantCode string) {
	t.Helper()
	if w.Code != wantStatus {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, wantStatus, w.Body)
	}
	var e errorJSON
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not structured JSON: %v (%s)", err, w.Body)
	}
	if e.Error.Code != wantCode {
		t.Fatalf("error code = %q, want %q (message %q)", e.Error.Code, wantCode, e.Error.Message)
	}
	if e.Error.Message == "" {
		t.Fatal("error message is empty")
	}
}

func body(t *testing.T, req VerdictRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHandlerErrors covers the request-validation table: every rejection is
// a structured JSON error with the right status and code.
func TestHandlerErrors(t *testing.T) {
	f := newFixture(t)
	h := f.server(Config{MaxBody: 4096}).Handler()
	okPEM := f.pem(t, f.leaf.Cert, f.ca1.Cert, f.ca2.Cert)

	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"malformed-json", "{not json", http.StatusBadRequest, CodeBadRequest},
		{"neither-pem-nor-target", `{"domain":"x"}`, http.StatusBadRequest, CodeBadRequest},
		{"both-pem-and-target", body(t, VerdictRequest{PEM: okPEM, Target: "x:443"}), http.StatusBadRequest, CodeBadRequest},
		{"bad-pem", `{"pem":"-----BEGIN CERTIFICATE-----\nZZZZ\n-----END CERTIFICATE-----\n"}`, http.StatusBadRequest, CodeBadPEM},
		{"empty-pem-bundle", `{"pem":"no pem blocks here"}`, http.StatusBadRequest, CodeBadPEM},
		{"bad-target", `{"target":"no-port-here"}`, http.StatusBadRequest, CodeBadRequest},
		{"oversized-body", body(t, VerdictRequest{Domain: "served.example",
			PEM: okPEM + strings.Repeat(" ", 8192)}), http.StatusRequestEntityTooLarge, CodeBodyTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			decodeError(t, post(t, h, tc.body), tc.wantStatus, tc.wantCode)
		})
	}

	t.Run("method-not-allowed", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/v1/verdict", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		decodeError(t, w, http.StatusMethodNotAllowed, CodeBadRequest)
	})
}

// TestVerdictCompliantChain asserts the happy path end to end: a compliant
// deployment grades compliant, all eight clients accept it, and the repair
// is a no-op-shaped success.
func TestVerdictCompliantChain(t *testing.T) {
	f := newFixture(t)
	h := f.server(Config{}).Handler()

	w := post(t, h, body(t, VerdictRequest{
		Domain: "served.example",
		PEM:    f.pem(t, f.leaf.Cert, f.ca1.Cert, f.ca2.Cert),
	}))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var resp VerdictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Compliant {
		t.Errorf("compliant = false, want true: %+v", resp)
	}
	if resp.Source != "pem" || resp.Cached || resp.Digest == "" {
		t.Errorf("source/cached/digest = %q/%v/%q", resp.Source, resp.Cached, resp.Digest)
	}
	if resp.LeafPlacement != "correct-placed/matched" {
		t.Errorf("leaf placement = %q", resp.LeafPlacement)
	}
	if len(resp.Matrix) != 8 {
		t.Fatalf("matrix has %d clients, want 8", len(resp.Matrix))
	}
	for _, v := range resp.Matrix {
		if !v.OK {
			t.Errorf("client %s rejects a compliant chain", v.Client)
		}
	}
	if resp.Repair == nil || !resp.Repair.Compliant {
		t.Fatalf("repair = %+v, want compliant repair", resp.Repair)
	}
}

// TestVerdictBrokenChain submits the doctor example's pathology — reversed
// bundle, duplicated leaf, stray root — and expects a non-compliant verdict
// with a working repair whose output parses and grades compliant.
func TestVerdictBrokenChain(t *testing.T) {
	f := newFixture(t)
	h := f.server(Config{}).Handler()
	stray, err := certgen.NewRoot("Stray Root")
	if err != nil {
		t.Fatal(err)
	}

	sick := f.pem(t, f.leaf.Cert, f.leaf.Cert, f.root.Cert, f.ca2.Cert, f.ca1.Cert, stray.Cert)
	w := post(t, h, body(t, VerdictRequest{Domain: "served.example", PEM: sick}))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var resp VerdictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Compliant {
		t.Error("broken chain graded compliant")
	}
	if !resp.Order.Duplicates || !resp.Order.Irrelevant || !resp.Order.Reversed {
		t.Errorf("order analysis missed defects: %+v", resp.Order)
	}
	if resp.Repair == nil {
		t.Fatalf("no repair; error %q", resp.RepairError)
	}
	if !resp.Repair.Compliant || len(resp.Repair.Actions) == 0 {
		t.Errorf("repair = %+v", resp.Repair)
	}
	repaired, err := certmodel.ParsePEMBundle([]byte(resp.Repair.PEM))
	if err != nil {
		t.Fatalf("repaired PEM does not parse: %v", err)
	}
	// Recommended shape: leaf, ca1, ca2 — root stripped.
	if len(repaired) != 3 || !repaired[0].MatchesDomain("served.example") {
		t.Errorf("repaired chain has %d certs, leaf %q", len(repaired), repaired[0].Subject)
	}
}

// TestVerdictCacheHitRate submits one chain repeatedly and asserts the
// memoization contract: first miss, then hits; cached responses are flagged
// and still carry the full verdict; the per-request leaf placement stays
// correct across different domains sharing one cache entry scope.
func TestVerdictCacheHitRate(t *testing.T) {
	f := newFixture(t)
	reg := obs.NewRegistry()
	h := f.server(Config{Metrics: reg}).Handler()
	chain := body(t, VerdictRequest{Domain: "served.example",
		PEM: f.pem(t, f.leaf.Cert, f.ca1.Cert, f.ca2.Cert)})

	const n = 5
	for i := 0; i < n; i++ {
		w := post(t, h, chain)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, w.Code)
		}
		var resp VerdictResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Cached != (i > 0) {
			t.Errorf("request %d: cached = %v", i, resp.Cached)
		}
		if !resp.Compliant || len(resp.Matrix) != 8 {
			t.Errorf("request %d: degraded cached verdict: %+v", i, resp)
		}
	}
	snap := reg.Snapshot()
	if hits := snap.Counters["chainserved.vcache.hits"]; hits != n-1 {
		t.Errorf("vcache.hits = %d, want %d", hits, n-1)
	}
	if misses := snap.Counters["chainserved.vcache.misses"]; misses != 1 {
		t.Errorf("vcache.misses = %d, want 1", misses)
	}

	// A mismatched domain flips the leaf-match key bit: new entry, and the
	// per-request leaf placement reflects the new domain.
	w := post(t, h, body(t, VerdictRequest{Domain: "other.example",
		PEM: f.pem(t, f.leaf.Cert, f.ca1.Cert, f.ca2.Cert)}))
	var resp VerdictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("mismatched-domain request must not share the matched-domain entry")
	}
	if resp.LeafPlacement != "correct-placed/mismatched" {
		t.Errorf("leaf placement = %q", resp.LeafPlacement)
	}
}

// TestScanDialFailure live-scans a port that refuses connections and
// expects a structured scan_dial error, not a bare 500.
func TestScanDialFailure(t *testing.T) {
	f := newFixture(t)
	h := f.server(Config{ScanTimeout: 2 * time.Second}).Handler()

	// Reserve a port, then close it: the follow-up dial is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	w := post(t, h, body(t, VerdictRequest{Target: addr}))
	decodeError(t, w, http.StatusBadGateway, CodeScanDial)
}

// TestAdmissionControl fills the single verdict slot with a live scan
// against a listener that accepts and stalls, then asserts the next request
// is shed with 429 + Retry-After while a healthz probe still answers.
func TestAdmissionControl(t *testing.T) {
	f := newFixture(t)
	reg := obs.NewRegistry()
	s := f.server(Config{MaxInFlight: 1, ScanTimeout: 30 * time.Second, Metrics: reg})
	h := s.Handler()

	// The tar pit: accepts TCP, never completes a handshake.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/verdict",
			strings.NewReader(body(t, VerdictRequest{Target: ln.Addr().String()})))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req.WithContext(ctx))
		done <- w
	}()

	// Wait for the scan to occupy the slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Admitted() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	w := post(t, h, body(t, VerdictRequest{Domain: "served.example",
		PEM: f.pem(t, f.leaf.Cert, f.ca1.Cert, f.ca2.Cert)}))
	decodeError(t, w, http.StatusTooManyRequests, CodeOverloaded)
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Health stays green while verdicts shed.
	hw := httptest.NewRecorder()
	h.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hw.Code != http.StatusOK {
		t.Errorf("healthz = %d during saturation", hw.Code)
	}

	// Release the tar-pitted request; it reports the cancellation
	// structurally and frees its slot.
	cancel()
	first := <-done
	if first.Code != 499 {
		t.Errorf("cancelled scan status = %d, want 499 (body %s)", first.Code, first.Body)
	}
	if got := reg.Snapshot().Counters["chainserved.verdict.shed"]; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	if a, c := s.Admitted(), s.Completed(); a != c {
		t.Errorf("admitted %d != completed %d after release", a, c)
	}
}

// TestGracefulDrain runs the service on a real listener, keeps a burst of
// concurrent verdict requests in flight, shuts the server down mid-burst,
// and asserts the drain contract: every admitted request completes with a
// full response (zero dropped in flight), admitted == completed, and
// Shutdown returns cleanly. Run under -race this also exercises the
// handler's concurrency.
func TestGracefulDrain(t *testing.T) {
	f := newFixture(t)
	reg := obs.NewRegistry()
	s := f.server(Config{Metrics: reg, MaxInFlight: 64})
	srv := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	base := "http://" + ln.Addr().String()

	// Distinct chains per goroutine so the burst does real grading work
	// rather than collapsing into one cache entry.
	const n = 24
	bodies := make([]string, n)
	for i := range bodies {
		leaf, err := f.ca1.NewLeaf(fmt.Sprintf("drain-%d.example", i))
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = body(t, VerdictRequest{
			Domain: fmt.Sprintf("drain-%d.example", i),
			PEM:    f.pem(t, leaf.Cert, f.ca1.Cert, f.ca2.Cert),
		})
	}

	// Fresh connection per request: the transport silently retries requests
	// written on a reused connection the server closed concurrently, which
	// would let one server-side completion show up client-side as an error
	// and break the delivered == Completed() equality below.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer client.CloseIdleConnections()

	var wg sync.WaitGroup
	type outcome struct {
		status int
		ok     bool // response decoded as a full verdict
		reject bool // connection refused (arrived after drain began)
	}
	results := make([]outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Post(base+"/v1/verdict", "application/json",
				bytes.NewReader([]byte(bodies[i])))
			if err != nil {
				results[i] = outcome{reject: true}
				return
			}
			defer resp.Body.Close()
			var v VerdictResponse
			decodeErr := json.NewDecoder(resp.Body).Decode(&v)
			results[i] = outcome{
				status: resp.StatusCode,
				ok:     decodeErr == nil && len(v.Matrix) == 8,
			}
		}(i)
	}

	// Begin the drain while the burst is in flight.
	deadline := time.Now().Add(5 * time.Second)
	for s.Admitted() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("burst never started")
		}
		time.Sleep(time.Millisecond)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	delivered := 0
	for i, r := range results {
		switch {
		case r.reject:
			// Arrived after the listener closed — shed at the door, fine.
		case r.status == http.StatusOK && r.ok:
			delivered++
		default:
			t.Errorf("request %d: status %d, full verdict %v — an admitted request was dropped", i, r.status, r.ok)
		}
	}
	if delivered == 0 {
		t.Fatal("no request completed; the drain test proved nothing")
	}
	if a, c := s.Admitted(), s.Completed(); a != c {
		t.Errorf("admitted %d != completed %d after drain", a, c)
	}
	if int64(delivered) != s.Completed() {
		t.Errorf("clients saw %d full responses, server completed %d", delivered, s.Completed())
	}
}

// TestEndpointInstrumentation asserts the per-endpoint histograms and
// gauges exist and observe: nonzero latency counts for every endpoint hit,
// and the in-flight gauges return to zero at rest.
func TestEndpointInstrumentation(t *testing.T) {
	f := newFixture(t)
	reg := obs.NewRegistry()
	h := f.server(Config{Metrics: reg}).Handler()

	post(t, h, body(t, VerdictRequest{Domain: "served.example",
		PEM: f.pem(t, f.leaf.Cert, f.ca1.Cert, f.ca2.Cert)}))
	for _, path := range []string{"/healthz", "/metrics"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("%s = %d", path, w.Code)
		}
	}

	snap := reg.Snapshot()
	for _, ep := range []string{"verdict", "healthz", "metrics"} {
		hs, ok := snap.Histograms["chainserved."+ep+".latency"]
		if !ok || hs.Count == 0 {
			t.Errorf("endpoint %s: latency histogram missing or empty", ep)
		}
		if got := snap.Gauges["chainserved."+ep+".inflight"]; got != 0 {
			t.Errorf("endpoint %s: inflight gauge = %d at rest", ep, got)
		}
		if snap.Counters["chainserved."+ep+".requests"] == 0 {
			t.Errorf("endpoint %s: request counter is zero", ep)
		}
	}
}

// TestLatencyHistogramFakeClock: endpoint latency must come from the metrics
// registry's injectable clock. A handler that advances a FakeClock by a fixed
// amount per request yields a latency histogram whose count and sum are exact,
// which is impossible to assert against the wall clock.
func TestLatencyHistogramFakeClock(t *testing.T) {
	const (
		requests = 5
		step     = 13 * time.Millisecond
	)
	clock := faults.NewFakeClock(time.Date(2024, 3, 15, 12, 0, 0, 0, time.UTC))
	reg := obs.NewRegistry()
	reg.Now = clock.Now

	f := newFixture(t)
	s := f.server(Config{Metrics: reg})
	// Wrap a trivial handler in the same instrumentation the real endpoints
	// use, with the handler itself standing in for request work: each request
	// "takes" exactly one clock step.
	h := s.instrument("fake", func(w http.ResponseWriter, r *http.Request) {
		clock.Advance(step)
		w.WriteHeader(http.StatusNoContent)
	})
	for i := 0; i < requests; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/fake", nil))
	}

	hist := reg.Histogram("chainserved.fake.latency", obs.LatencyBuckets)
	if hist.Count() != requests {
		t.Fatalf("latency count = %d, want %d", hist.Count(), requests)
	}
	if want := int64(requests) * int64(step); hist.Sum() != want {
		t.Fatalf("latency sum = %d ns, want exactly %d ns", hist.Sum(), want)
	}
}
