package certgen

import (
	"bytes"
	"crypto/x509"
	"testing"

	"chainchaos/internal/certmodel"
)

func TestRootParsesAndSelfVerifies(t *testing.T) {
	root, err := NewRoot("Test Root CA")
	if err != nil {
		t.Fatal(err)
	}
	c := root.Cert
	if c.X509 == nil {
		t.Fatal("root has no parsed x509 backing")
	}
	if !c.IsCA || !c.BasicConstraintsValid {
		t.Errorf("root basic constraints: IsCA=%v valid=%v", c.IsCA, c.BasicConstraintsValid)
	}
	if !c.SelfSigned() {
		t.Error("root does not verify as self-signed")
	}
	if c.Subject.CommonName != "Test Root CA" {
		t.Errorf("subject CN = %q", c.Subject.CommonName)
	}
	if !c.HasKeyUsage || c.KeyUsage&certmodel.KeyUsageCertSign == 0 {
		t.Errorf("root key usage: has=%v ku=%b", c.HasKeyUsage, c.KeyUsage)
	}
	if len(c.SubjectKeyID) != 20 {
		t.Errorf("SKID length = %d, want 20", len(c.SubjectKeyID))
	}
	// The stdlib verifier must accept a chain anchored at this root.
	pool := x509.NewCertPool()
	pool.AddCert(c.X509)
	inter, err := root.NewIntermediate("Test Issuing CA")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := inter.NewLeaf("example.com")
	if err != nil {
		t.Fatal(err)
	}
	inters := x509.NewCertPool()
	inters.AddCert(inter.Cert.X509)
	if _, err := leaf.Cert.X509.Verify(x509.VerifyOptions{
		Roots:         pool,
		Intermediates: inters,
		CurrentTime:   Reference,
		DNSName:       "example.com",
	}); err != nil {
		t.Fatalf("stdlib verification of generated chain failed: %v", err)
	}
}

func TestIssuanceEvidence(t *testing.T) {
	root, _ := NewRoot("Evidence Root")
	inter, _ := root.NewIntermediate("Evidence CA")
	leaf, _ := inter.NewLeaf("evidence.example")

	if !certmodel.Issued(root.Cert, inter.Cert) {
		t.Error("root should issue intermediate")
	}
	if !certmodel.Issued(inter.Cert, leaf.Cert) {
		t.Error("intermediate should issue leaf")
	}
	if certmodel.Issued(root.Cert, leaf.Cert) {
		t.Error("root should not directly issue leaf")
	}
	ev := certmodel.CheckIssuance(inter.Cert, leaf.Cert)
	if !ev.Signature || !ev.NameMatch || !ev.KIDComparable || !ev.KIDMatch {
		t.Errorf("issuance evidence incomplete: %+v", ev)
	}
}

func TestMalformedShapes(t *testing.T) {
	root, _ := NewRoot("Malformed Root")

	t.Run("CAWithoutSKID", func(t *testing.T) {
		inter, err := root.NewIntermediate("No SKID CA", WithoutSKID())
		if err != nil {
			t.Fatal(err)
		}
		if inter.Cert.SubjectKeyID != nil {
			t.Errorf("SKID present: %x", inter.Cert.SubjectKeyID)
		}
	})
	t.Run("MismatchedAKID", func(t *testing.T) {
		bad := bytes.Repeat([]byte{0xab}, 20)
		inter, err := root.NewIntermediate("Bad AKID CA", WithAKID(bad))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(inter.Cert.AuthorityKeyID, bad) {
			t.Errorf("AKID = %x, want %x", inter.Cert.AuthorityKeyID, bad)
		}
		// Signature still verifies: the AKID lies but the crypto is real.
		if !inter.Cert.SignatureVerifiedBy(root.Cert) {
			t.Error("signature should still verify despite bad AKID")
		}
	})
	t.Run("NoKeyUsage", func(t *testing.T) {
		inter, err := root.NewIntermediate("No KU CA", WithoutKeyUsage())
		if err != nil {
			t.Fatal(err)
		}
		if inter.Cert.HasKeyUsage {
			t.Error("KeyUsage extension should be absent")
		}
	})
	t.Run("PathLenZero", func(t *testing.T) {
		inter, err := root.NewIntermediate("PathLen0 CA", WithPathLen(0))
		if err != nil {
			t.Fatal(err)
		}
		if inter.Cert.MaxPathLen != 0 {
			t.Errorf("MaxPathLen = %d, want 0", inter.Cert.MaxPathLen)
		}
	})
	t.Run("PathLenUnset", func(t *testing.T) {
		inter, err := root.NewIntermediate("PathLenUnset CA")
		if err != nil {
			t.Fatal(err)
		}
		if inter.Cert.MaxPathLen != certmodel.MaxPathLenUnset {
			t.Errorf("MaxPathLen = %d, want unset", inter.Cert.MaxPathLen)
		}
	})
	t.Run("AIAURLs", func(t *testing.T) {
		leaf, err := root.NewLeaf("aia.example", WithAIA("http://repo.example/ca.der"))
		if err != nil {
			t.Fatal(err)
		}
		if len(leaf.Cert.AIAIssuerURLs) != 1 || leaf.Cert.AIAIssuerURLs[0] != "http://repo.example/ca.der" {
			t.Errorf("AIA URLs = %v", leaf.Cert.AIAIssuerURLs)
		}
	})
}

func TestCrossSignSharesSubjectAndSKID(t *testing.T) {
	rootA, _ := NewRoot("Root A")
	rootB, _ := NewRoot("Root B")
	inter, _ := rootA.NewIntermediate("Shared CA")
	cross, err := rootB.CrossSign(inter)
	if err != nil {
		t.Fatal(err)
	}
	if cross.Subject != inter.Cert.Subject {
		t.Errorf("cross subject %v != %v", cross.Subject, inter.Cert.Subject)
	}
	if !bytes.Equal(cross.SubjectKeyID, inter.Cert.SubjectKeyID) {
		t.Error("cross-signed cert must keep the SKID")
	}
	if cross.Issuer != rootB.Cert.Subject {
		t.Errorf("cross issuer = %v", cross.Issuer)
	}
	// Both parents must verify a child of the shared key.
	leaf, _ := inter.NewLeaf("cross.example")
	if !certmodel.Issued(inter.Cert, leaf.Cert) {
		t.Error("original intermediate should issue leaf")
	}
	if !certmodel.Issued(cross, leaf.Cert) {
		t.Error("cross-signed intermediate should also issue leaf (same key)")
	}
}

func TestReissueIntermediate(t *testing.T) {
	root, _ := NewRoot("Reissue Root")
	inter, _ := root.NewIntermediate("Reissued CA")
	newer, err := root.ReissueIntermediate(inter,
		WithValidity(Reference.AddDate(-1, 0, 0), Reference.AddDate(9, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if newer.Subject != inter.Cert.Subject {
		t.Error("reissued cert subject changed")
	}
	if !bytes.Equal(newer.SubjectKeyID, inter.Cert.SubjectKeyID) {
		t.Error("reissued cert must keep the SKID")
	}
	if newer.Equal(inter.Cert) {
		t.Error("reissued cert should not be bit-identical (serial/validity differ)")
	}
	leaf, _ := inter.NewLeaf("reissue.example")
	if !certmodel.Issued(newer, leaf.Cert) {
		t.Error("reissued intermediate must verify the same leaves")
	}
}

func TestPEMRoundTrip(t *testing.T) {
	root, _ := NewRoot("PEM Root")
	inter, _ := root.NewIntermediate("PEM CA")
	leaf, _ := inter.NewLeaf("pem.example")
	list := []*certmodel.Certificate{leaf.Cert, inter.Cert, root.Cert}

	pemBytes, err := certmodel.EncodePEM(list)
	if err != nil {
		t.Fatal(err)
	}
	back, err := certmodel.ParsePEMBundle(pemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("round-trip count = %d", len(back))
	}
	for i := range list {
		if !back[i].Equal(list[i]) {
			t.Errorf("cert %d not identical after PEM round trip", i)
		}
	}
}
