package certgen

import (
	"crypto/ecdsa"
	"crypto/x509"
)

// marshalPKIX wraps x509.MarshalPKIXPublicKey so the SKID derivation in
// authority.go and the encoder in der.go share one SPKI encoding.
func marshalPKIX(pub *ecdsa.PublicKey) ([]byte, error) {
	return x509.MarshalPKIXPublicKey(pub)
}
