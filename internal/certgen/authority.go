package certgen

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"math/big"
	"net"
	"sync/atomic"
	"time"

	"chainchaos/internal/certmodel"
)

// Reference is the fixed point in time the generated PKI is anchored to. The
// paper's measurement ran in March 2024; pinning the clock keeps every test
// and benchmark deterministic regardless of when it executes. Validation code
// throughout the repository takes an explicit "current time" and is handed
// Reference (or an offset of it) rather than time.Now.
var Reference = time.Date(2024, time.March, 15, 12, 0, 0, 0, time.UTC)

var serialCounter atomic.Int64

func nextSerial() *big.Int {
	return big.NewInt(serialCounter.Add(1))
}

// Authority is a CA: a certificate together with the private key that signs
// children. Leaf holds an end-entity certificate and its key (needed to
// stand up real TLS listeners).
type Authority struct {
	Cert *certmodel.Certificate
	Key  *ecdsa.PrivateKey
}

// Leaf is an end-entity certificate with its private key.
type Leaf struct {
	Cert *certmodel.Certificate
	Key  *ecdsa.PrivateKey
}

// Option mutates the certificate template before encoding.
type Option func(*Template)

// WithValidity sets the validity window.
func WithValidity(notBefore, notAfter time.Time) Option {
	return func(t *Template) { t.NotBefore, t.NotAfter = notBefore, notAfter }
}

// WithSerial forces a specific serial number.
func WithSerial(n int64) Option {
	return func(t *Template) { t.Serial = big.NewInt(n) }
}

// WithPathLen sets an explicit pathLenConstraint.
func WithPathLen(n int) Option {
	return func(t *Template) { t.HasPathLen, t.MaxPathLen = true, n }
}

// WithoutBasicConstraints drops the BasicConstraints extension entirely.
func WithoutBasicConstraints() Option {
	return func(t *Template) { t.IncludeBasicConstraints = false; t.IsCA = false }
}

// WithKeyUsage replaces the KeyUsage bits.
func WithKeyUsage(ku certmodel.KeyUsage) Option {
	return func(t *Template) { t.IncludeKeyUsage, t.KeyUsage = true, ku }
}

// WithoutKeyUsage drops the KeyUsage extension.
func WithoutKeyUsage() Option {
	return func(t *Template) { t.IncludeKeyUsage = false; t.KeyUsage = 0 }
}

// WithoutSKID suppresses the Subject Key Identifier extension — a shape
// x509.CreateCertificate cannot produce for CA certificates, and the reason
// this package has its own encoder.
func WithoutSKID() Option {
	return func(t *Template) { t.SKID = nil }
}

// WithSKID overrides the Subject Key Identifier (use for deliberate
// mismatches against a child's AKID).
func WithSKID(id []byte) Option {
	return func(t *Template) { t.SKID = id }
}

// WithAKID overrides the Authority Key Identifier (use for deliberate
// mismatches).
func WithAKID(id []byte) Option {
	return func(t *Template) { t.AKID = id }
}

// WithoutAKID suppresses the Authority Key Identifier extension.
func WithoutAKID() Option {
	return func(t *Template) { t.AKID = nil }
}

// WithAIA sets the caIssuers URIs of the Authority Information Access
// extension.
func WithAIA(urls ...string) Option {
	return func(t *Template) { t.AIAIssuerURLs = urls }
}

// WithDNSNames sets the SAN dNSName entries.
func WithDNSNames(names ...string) Option {
	return func(t *Template) { t.DNSNames = names }
}

// WithIPAddresses sets the SAN iPAddress entries.
func WithIPAddresses(ips ...net.IP) Option {
	return func(t *Template) { t.IPAddresses = ips }
}

// WithEKU sets the Extended Key Usage purposes.
func WithEKU(ekus ...certmodel.ExtKeyUsage) Option {
	return func(t *Template) { t.ExtKeyUsages = ekus }
}

// WithNameConstraints sets permitted and excluded dNSName subtrees.
func WithNameConstraints(permitted, excluded []string) Option {
	return func(t *Template) { t.PermittedDNSDomains, t.ExcludedDNSDomains = permitted, excluded }
}

// WithWeakSignature signs the certificate with deprecated ECDSA-SHA1.
func WithWeakSignature() Option {
	return func(t *Template) { t.WeakSignature = true }
}

// WithSubject replaces the whole subject name.
func WithSubject(n certmodel.Name) Option {
	return func(t *Template) { t.Subject = n }
}

func generateKey() (*ecdsa.PrivateKey, error) {
	return ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
}

func skidFor(pub *ecdsa.PublicKey) []byte {
	// Mirror certmodel.FromX509: SHA-256 of the SPKI, truncated to 20 bytes.
	spki, err := marshalSPKI(pub)
	if err != nil {
		return nil
	}
	sum := sha256.Sum256(spki)
	return sum[:20]
}

// NewRoot creates a self-signed root CA.
func NewRoot(name string, opts ...Option) (*Authority, error) {
	key, err := generateKey()
	if err != nil {
		return nil, err
	}
	subject := certmodel.Name{CommonName: name, Organization: name + " Trust Services"}
	tpl := Template{
		Subject:                 subject,
		Issuer:                  subject,
		Serial:                  nextSerial(),
		NotBefore:               Reference.AddDate(-4, 0, 0),
		NotAfter:                Reference.AddDate(10, 0, 0),
		IncludeBasicConstraints: true,
		IsCA:                    true,
		IncludeKeyUsage:         true,
		KeyUsage:                certmodel.KeyUsageCertSign | certmodel.KeyUsageCRLSign,
		SKID:                    skidFor(&key.PublicKey),
	}
	for _, o := range opts {
		o(&tpl)
	}
	cert, err := EncodeToModel(tpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certgen: root %q: %w", name, err)
	}
	return &Authority{Cert: cert, Key: key}, nil
}

// NewIntermediate creates a CA certificate for cn signed by a.
func (a *Authority) NewIntermediate(cn string, opts ...Option) (*Authority, error) {
	key, err := generateKey()
	if err != nil {
		return nil, err
	}
	tpl := a.intermediateTemplate(cn, &key.PublicKey)
	for _, o := range opts {
		o(&tpl)
	}
	cert, err := EncodeToModel(tpl, &key.PublicKey, a.Key)
	if err != nil {
		return nil, fmt.Errorf("certgen: intermediate %q: %w", cn, err)
	}
	return &Authority{Cert: cert, Key: key}, nil
}

// ReissueIntermediate creates another certificate for an existing
// intermediate's key — same subject, same SKID, same public key — signed by
// a. This produces the same-subject/same-key candidate sets of the paper's
// priority tests (Table 2, tests 4–7) and of Figure 5's DigiCert example.
func (a *Authority) ReissueIntermediate(existing *Authority, opts ...Option) (*certmodel.Certificate, error) {
	tpl := a.intermediateTemplate(existing.Cert.Subject.CommonName, &existing.Key.PublicKey)
	tpl.Subject = existing.Cert.Subject
	for _, o := range opts {
		o(&tpl)
	}
	cert, err := EncodeToModel(tpl, &existing.Key.PublicKey, a.Key)
	if err != nil {
		return nil, fmt.Errorf("certgen: reissue %q: %w", existing.Cert.Subject, err)
	}
	return cert, nil
}

func (a *Authority) intermediateTemplate(cn string, pub *ecdsa.PublicKey) Template {
	return Template{
		Subject:                 certmodel.Name{CommonName: cn, Organization: a.Cert.Subject.Organization},
		Issuer:                  a.Cert.Subject,
		Serial:                  nextSerial(),
		NotBefore:               Reference.AddDate(-2, 0, 0),
		NotAfter:                Reference.AddDate(5, 0, 0),
		IncludeBasicConstraints: true,
		IsCA:                    true,
		IncludeKeyUsage:         true,
		KeyUsage:                certmodel.KeyUsageCertSign | certmodel.KeyUsageCRLSign,
		SKID:                    skidFor(pub),
		AKID:                    a.Cert.SubjectKeyID,
	}
}

// NewLeaf creates an end-entity certificate for domain signed by a.
func (a *Authority) NewLeaf(domain string, opts ...Option) (*Leaf, error) {
	key, err := generateKey()
	if err != nil {
		return nil, err
	}
	tpl := Template{
		Subject:                 certmodel.Name{CommonName: domain},
		Issuer:                  a.Cert.Subject,
		Serial:                  nextSerial(),
		NotBefore:               Reference.AddDate(0, -3, 0),
		NotAfter:                Reference.AddDate(1, 0, 0),
		IncludeBasicConstraints: true,
		IsCA:                    false,
		IncludeKeyUsage:         true,
		KeyUsage:                certmodel.KeyUsageDigitalSignature | certmodel.KeyUsageKeyEncipherment,
		SKID:                    skidFor(&key.PublicKey),
		AKID:                    a.Cert.SubjectKeyID,
		DNSNames:                []string{domain},
	}
	for _, o := range opts {
		o(&tpl)
	}
	cert, err := EncodeToModel(tpl, &key.PublicKey, a.Key)
	if err != nil {
		return nil, fmt.Errorf("certgen: leaf %q: %w", domain, err)
	}
	return &Leaf{Cert: cert, Key: key}, nil
}

// SelfSignedLeaf creates a self-signed end-entity certificate for domain —
// the "ES" certificate of Table 2's test 9.
func SelfSignedLeaf(domain string, opts ...Option) (*Leaf, error) {
	key, err := generateKey()
	if err != nil {
		return nil, err
	}
	subject := certmodel.Name{CommonName: domain}
	tpl := Template{
		Subject:                 subject,
		Issuer:                  subject,
		Serial:                  nextSerial(),
		NotBefore:               Reference.AddDate(0, -3, 0),
		NotAfter:                Reference.AddDate(1, 0, 0),
		IncludeBasicConstraints: true,
		IsCA:                    false,
		IncludeKeyUsage:         true,
		KeyUsage:                certmodel.KeyUsageDigitalSignature | certmodel.KeyUsageKeyEncipherment,
		SKID:                    skidFor(&key.PublicKey),
		DNSNames:                []string{domain},
	}
	for _, o := range opts {
		o(&tpl)
	}
	cert, err := EncodeToModel(tpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certgen: self-signed leaf %q: %w", domain, err)
	}
	return &Leaf{Cert: cert, Key: key}, nil
}

// CrossSign issues a certificate over target's existing key and subject,
// signed by a. The result shares target's subject DN and SKID but chains to
// a — the cross-signing shape behind the paper's multiple-path chains.
func (a *Authority) CrossSign(target *Authority, opts ...Option) (*certmodel.Certificate, error) {
	tpl := Template{
		Subject:                 target.Cert.Subject,
		Issuer:                  a.Cert.Subject,
		Serial:                  nextSerial(),
		NotBefore:               Reference.AddDate(-2, 0, 0),
		NotAfter:                Reference.AddDate(4, 0, 0),
		IncludeBasicConstraints: true,
		IsCA:                    true,
		IncludeKeyUsage:         true,
		KeyUsage:                certmodel.KeyUsageCertSign | certmodel.KeyUsageCRLSign,
		SKID:                    target.Cert.SubjectKeyID,
		AKID:                    a.Cert.SubjectKeyID,
	}
	for _, o := range opts {
		o(&tpl)
	}
	cert, err := EncodeToModel(tpl, &target.Key.PublicKey, a.Key)
	if err != nil {
		return nil, fmt.Errorf("certgen: cross-sign %q by %q: %w", target.Cert.Subject, a.Cert.Subject, err)
	}
	return cert, nil
}

func marshalSPKI(pub *ecdsa.PublicKey) ([]byte, error) {
	return marshalPKIX(pub)
}
