package certgen

import (
	"crypto/x509"
	"math/big"
	"net"
	"testing"
	"time"

	"chainchaos/internal/certmodel"
)

func TestKeyUsageBits(t *testing.T) {
	cases := []struct {
		ku      certmodel.KeyUsage
		wantLen int
	}{
		{certmodel.KeyUsageDigitalSignature, 1}, // bit 0 only
		{certmodel.KeyUsageCertSign, 6},         // bit 5
		{certmodel.KeyUsageCRLSign, 7},          // bit 6
		{certmodel.KeyUsageDigitalSignature | certmodel.KeyUsageCRLSign, 7},
		{0, 1},
	}
	for _, tc := range cases {
		bs := keyUsageBits(tc.ku)
		if bs.BitLength != tc.wantLen {
			t.Errorf("keyUsageBits(%b).BitLength = %d, want %d", tc.ku, bs.BitLength, tc.wantLen)
		}
	}
	// Round-trip through a real certificate: the parsed KeyUsage must
	// match what went in.
	root, err := NewRoot("KU Encode Root")
	if err != nil {
		t.Fatal(err)
	}
	for _, ku := range []certmodel.KeyUsage{
		certmodel.KeyUsageDigitalSignature,
		certmodel.KeyUsageCertSign | certmodel.KeyUsageCRLSign,
		certmodel.KeyUsageKeyEncipherment | certmodel.KeyUsageDigitalSignature,
	} {
		leaf, err := root.NewLeaf("ku-rt.example", WithKeyUsage(ku))
		if err != nil {
			t.Fatal(err)
		}
		if leaf.Cert.KeyUsage != ku {
			t.Errorf("round trip %b -> %b", ku, leaf.Cert.KeyUsage)
		}
	}
}

func TestGeneralizedTimeBeyond2050(t *testing.T) {
	// ASN.1 UTCTime ends at 2049; longer-lived roots need GeneralizedTime.
	// encoding/asn1 switches automatically; verify the round trip.
	nb := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	na := time.Date(2055, 1, 1, 0, 0, 0, 0, time.UTC)
	root, err := NewRoot("Long Lived Root", WithValidity(nb, na))
	if err != nil {
		t.Fatal(err)
	}
	if !root.Cert.NotAfter.Equal(na) {
		t.Errorf("NotAfter = %v, want %v", root.Cert.NotAfter, na)
	}
	if _, err := x509.ParseCertificate(root.Cert.Raw); err != nil {
		t.Errorf("stdlib reparse failed: %v", err)
	}
}

func TestSANEncodings(t *testing.T) {
	root, err := NewRoot("SAN Root")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := root.NewLeaf("san.example",
		WithDNSNames("san.example", "*.san.example"),
		WithIPAddresses(net.ParseIP("192.0.2.9"), net.ParseIP("2001:db8::9")))
	if err != nil {
		t.Fatal(err)
	}
	c := leaf.Cert
	if len(c.DNSNames) != 2 || c.DNSNames[1] != "*.san.example" {
		t.Errorf("DNS SANs = %v", c.DNSNames)
	}
	if len(c.IPAddresses) != 2 {
		t.Fatalf("IP SANs = %v", c.IPAddresses)
	}
	if !c.MatchesDomain("192.0.2.9") || !c.MatchesDomain("x.san.example") {
		t.Error("SAN matching broken after encoding")
	}
}

func TestSerialRequired(t *testing.T) {
	tpl := Template{Subject: certmodel.Name{CommonName: "No Serial"}}
	root, err := NewRoot("Serial Root")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(tpl, &root.Key.PublicKey, root.Key); err == nil {
		t.Error("missing serial accepted")
	}
	tpl.Serial = big.NewInt(42)
	tpl.Issuer = tpl.Subject
	tpl.NotBefore = Reference
	tpl.NotAfter = Reference.AddDate(1, 0, 0)
	der, err := Encode(tpl, &root.Key.PublicKey, root.Key)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := certmodel.ParseDER(der)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.SerialNumber != "42" {
		t.Errorf("serial = %s", parsed.SerialNumber)
	}
	// Minimal template: no extensions at all.
	if parsed.BasicConstraintsValid || parsed.HasKeyUsage || parsed.SubjectKeyID != nil {
		t.Error("extension-free template produced extensions")
	}
}

func TestSerialsMonotonic(t *testing.T) {
	a, err := NewRoot("Serial A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRoot("Serial B")
	if err != nil {
		t.Fatal(err)
	}
	if a.Cert.SerialNumber == b.Cert.SerialNumber {
		t.Error("serials collide")
	}
}

func TestSelfSignedLeafHelper(t *testing.T) {
	es, err := SelfSignedLeaf("ss.example")
	if err != nil {
		t.Fatal(err)
	}
	if !es.Cert.SelfSigned() {
		t.Error("not self-signed")
	}
	if es.Cert.IsCA {
		t.Error("self-signed leaf must not be a CA")
	}
	if !es.Cert.MatchesDomain("ss.example") {
		t.Error("domain mismatch")
	}
}

func TestWeakSignature(t *testing.T) {
	root, err := NewRoot("Weak Sig Root")
	if err != nil {
		t.Fatal(err)
	}
	weak, err := root.NewIntermediate("Weak Sig CA", certgen_WithWeakSignature())
	if err != nil {
		t.Fatal(err)
	}
	if !weak.Cert.HasWeakSignature() {
		t.Error("SHA1-signed certificate not flagged weak")
	}
	// The structural link still verifies (stdlib CheckSignature allows
	// SHA1 so analyzers can see the issuance edge, matching how the
	// paper's measurement tooling links such certs); rejection is the
	// validator's job via ProblemDeprecatedCrypto.
	if !weak.Cert.SignatureVerifiedBy(root.Cert) {
		t.Error("SHA1 signature should remain structurally linkable")
	}
	// A normal sibling is unaffected.
	ok, err := root.NewIntermediate("Strong Sig CA")
	if err != nil {
		t.Fatal(err)
	}
	if ok.Cert.HasWeakSignature() || !ok.Cert.SignatureVerifiedBy(root.Cert) {
		t.Error("SHA256 sibling misclassified")
	}
}

// certgen_WithWeakSignature aliases the option for the test (avoids import
// cycles in editors that auto-group).
func certgen_WithWeakSignature() Option { return WithWeakSignature() }
