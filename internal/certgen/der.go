// Package certgen creates real, cryptographically signed X.509 certificates
// for the client-capability tests and the TLS scan substrate.
//
// It contains its own DER encoder rather than using x509.CreateCertificate,
// because the paper's test chains require malformed shapes the stdlib
// constructor refuses to emit: CA certificates without a Subject Key
// Identifier (Table 2 test 5), mismatching Authority Key Identifiers, absent
// KeyUsage extensions, and incorrect pathLenConstraints. The encoder produces
// standard DER that crypto/x509 parses and verifies normally, so everything
// downstream — including the real TLS handshakes in internal/tlsserve — works
// with these certificates.
package certgen

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"fmt"
	"math/big"
	"net"
	"time"

	"chainchaos/internal/certmodel"
)

// Object identifiers used in certificate construction.
var (
	oidSignatureECDSAWithSHA256 = asn1.ObjectIdentifier{1, 2, 840, 10045, 4, 3, 2}
	oidSignatureECDSAWithSHA1   = asn1.ObjectIdentifier{1, 2, 840, 10045, 4, 1}
	oidExtBasicConstraints      = asn1.ObjectIdentifier{2, 5, 29, 19}
	oidExtKeyUsage              = asn1.ObjectIdentifier{2, 5, 29, 15}
	oidExtSubjectKeyID          = asn1.ObjectIdentifier{2, 5, 29, 14}
	oidExtAuthorityKeyID        = asn1.ObjectIdentifier{2, 5, 29, 35}
	oidExtSubjectAltName        = asn1.ObjectIdentifier{2, 5, 29, 17}
	oidExtAIA                   = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 1, 1}
	oidAIACAIssuers             = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 48, 2}
	oidExtExtendedKeyUsage      = asn1.ObjectIdentifier{2, 5, 29, 37}
	oidExtNameConstraints       = asn1.ObjectIdentifier{2, 5, 29, 30}

	oidEKUServerAuth      = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 3, 1}
	oidEKUClientAuth      = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 3, 2}
	oidEKUCodeSigning     = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 3, 3}
	oidEKUEmailProtection = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 3, 4}
	oidEKUOCSPSigning     = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 3, 9}
	oidEKUAny             = asn1.ObjectIdentifier{2, 5, 29, 37, 0}
)

// Template fully describes a certificate to encode. Zero values mean
// "absent": no BasicConstraints unless IncludeBasicConstraints, no KeyUsage
// unless IncludeKeyUsage, no pathLenConstraint unless HasPathLen, and no
// SKID/AKID unless the respective byte slices are non-nil.
type Template struct {
	Subject certmodel.Name
	Issuer  certmodel.Name
	Serial  *big.Int

	NotBefore time.Time
	NotAfter  time.Time

	IncludeBasicConstraints bool
	IsCA                    bool
	HasPathLen              bool
	MaxPathLen              int

	IncludeKeyUsage bool
	KeyUsage        certmodel.KeyUsage

	// SKID and AKID extension values; nil omits the extension.
	SKID []byte
	AKID []byte

	DNSNames    []string
	IPAddresses []net.IP

	AIAIssuerURLs []string

	// ExtKeyUsages adds an Extended Key Usage extension when non-empty.
	ExtKeyUsages []certmodel.ExtKeyUsage

	// Name Constraints (dNSName form); the extension is emitted when
	// either list is non-empty.
	PermittedDNSDomains []string
	ExcludedDNSDomains  []string

	// WeakSignature signs the certificate with ECDSA-SHA1, an algorithm
	// modern verifiers refuse — the DEPRECATED_CRYPTO test material.
	// crypto/x509 parses such certificates but rejects their signatures.
	WeakSignature bool
}

type tbsCertificate struct {
	Version            int `asn1:"optional,explicit,default:0,tag:0"`
	SerialNumber       *big.Int
	SignatureAlgorithm pkix.AlgorithmIdentifier
	Issuer             asn1.RawValue
	Validity           validity
	Subject            asn1.RawValue
	PublicKey          asn1.RawValue
	Extensions         []pkix.Extension `asn1:"optional,explicit,tag:3,omitempty"`
}

type validity struct {
	NotBefore, NotAfter time.Time
}

type certificate struct {
	TBSCertificate     asn1.RawValue
	SignatureAlgorithm pkix.AlgorithmIdentifier
	SignatureValue     asn1.BitString
}

type basicConstraintsWithLen struct {
	IsCA bool `asn1:"optional"`
	// default:-1 forces a pathLenConstraint of zero to be encoded rather
	// than elided as an optional zero value.
	MaxPathLen int `asn1:"optional,default:-1"`
}

type basicConstraintsNoLen struct {
	IsCA bool `asn1:"optional"`
}

type authorityKeyID struct {
	ID []byte `asn1:"optional,tag:0"`
}

type accessDescription struct {
	Method   asn1.ObjectIdentifier
	Location asn1.RawValue
}

type nameConstraints struct {
	Permitted []generalSubtree `asn1:"optional,tag:0"`
	Excluded  []generalSubtree `asn1:"optional,tag:1"`
}

type generalSubtree struct {
	Base string `asn1:"tag:2"` // dNSName
}

// Encode builds and signs the certificate described by tpl. The subject's
// public key is pub; signer is the issuer's private key (the subject's own
// key for self-signed certificates). It returns the DER encoding.
func Encode(tpl Template, pub *ecdsa.PublicKey, signer *ecdsa.PrivateKey) ([]byte, error) {
	if tpl.Serial == nil {
		return nil, fmt.Errorf("certgen: template for %q has no serial", tpl.Subject)
	}
	spki, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("certgen: marshal public key: %w", err)
	}
	issuerDER, err := asn1.Marshal(tpl.Issuer.ToPKIXName().ToRDNSequence())
	if err != nil {
		return nil, fmt.Errorf("certgen: marshal issuer: %w", err)
	}
	subjectDER, err := asn1.Marshal(tpl.Subject.ToPKIXName().ToRDNSequence())
	if err != nil {
		return nil, fmt.Errorf("certgen: marshal subject: %w", err)
	}
	exts, err := buildExtensions(tpl)
	if err != nil {
		return nil, err
	}

	algo := pkix.AlgorithmIdentifier{Algorithm: oidSignatureECDSAWithSHA256}
	if tpl.WeakSignature {
		algo = pkix.AlgorithmIdentifier{Algorithm: oidSignatureECDSAWithSHA1}
	}
	tbs := tbsCertificate{
		Version:            2, // X.509 v3
		SerialNumber:       tpl.Serial,
		SignatureAlgorithm: algo,
		Issuer:             asn1.RawValue{FullBytes: issuerDER},
		Validity:           validity{tpl.NotBefore.UTC(), tpl.NotAfter.UTC()},
		Subject:            asn1.RawValue{FullBytes: subjectDER},
		PublicKey:          asn1.RawValue{FullBytes: spki},
		Extensions:         exts,
	}
	tbsDER, err := asn1.Marshal(tbs)
	if err != nil {
		return nil, fmt.Errorf("certgen: marshal TBS: %w", err)
	}

	var digest []byte
	if tpl.WeakSignature {
		sum := sha1.Sum(tbsDER)
		digest = sum[:]
	} else {
		sum := sha256.Sum256(tbsDER)
		digest = sum[:]
	}
	sig, err := ecdsa.SignASN1(rand.Reader, signer, digest)
	if err != nil {
		return nil, fmt.Errorf("certgen: sign: %w", err)
	}

	der, err := asn1.Marshal(certificate{
		TBSCertificate:     asn1.RawValue{FullBytes: tbsDER},
		SignatureAlgorithm: algo,
		SignatureValue:     asn1.BitString{Bytes: sig, BitLength: len(sig) * 8},
	})
	if err != nil {
		return nil, fmt.Errorf("certgen: marshal certificate: %w", err)
	}
	return der, nil
}

// EncodeToModel encodes the template and returns it parsed into the unified
// certificate model.
func EncodeToModel(tpl Template, pub *ecdsa.PublicKey, signer *ecdsa.PrivateKey) (*certmodel.Certificate, error) {
	der, err := Encode(tpl, pub, signer)
	if err != nil {
		return nil, err
	}
	return certmodel.ParseDER(der)
}

func buildExtensions(tpl Template) ([]pkix.Extension, error) {
	var exts []pkix.Extension
	add := func(oid asn1.ObjectIdentifier, critical bool, value interface{}) error {
		der, err := asn1.Marshal(value)
		if err != nil {
			return fmt.Errorf("certgen: marshal extension %v: %w", oid, err)
		}
		exts = append(exts, pkix.Extension{Id: oid, Critical: critical, Value: der})
		return nil
	}

	if tpl.IncludeKeyUsage {
		bits := keyUsageBits(tpl.KeyUsage)
		if err := add(oidExtKeyUsage, true, bits); err != nil {
			return nil, err
		}
	}
	if tpl.IncludeBasicConstraints {
		var err error
		if tpl.HasPathLen {
			err = add(oidExtBasicConstraints, true, basicConstraintsWithLen{tpl.IsCA, tpl.MaxPathLen})
		} else {
			err = add(oidExtBasicConstraints, true, basicConstraintsNoLen{tpl.IsCA})
		}
		if err != nil {
			return nil, err
		}
	}
	if tpl.SKID != nil {
		if err := add(oidExtSubjectKeyID, false, tpl.SKID); err != nil {
			return nil, err
		}
	}
	if tpl.AKID != nil {
		if err := add(oidExtAuthorityKeyID, false, authorityKeyID{ID: tpl.AKID}); err != nil {
			return nil, err
		}
	}
	if len(tpl.DNSNames) > 0 || len(tpl.IPAddresses) > 0 {
		san, err := marshalSAN(tpl.DNSNames, tpl.IPAddresses)
		if err != nil {
			return nil, err
		}
		exts = append(exts, pkix.Extension{Id: oidExtSubjectAltName, Value: san})
	}
	if len(tpl.ExtKeyUsages) > 0 {
		var oids []asn1.ObjectIdentifier
		for _, e := range tpl.ExtKeyUsages {
			switch e {
			case certmodel.EKUServerAuth:
				oids = append(oids, oidEKUServerAuth)
			case certmodel.EKUClientAuth:
				oids = append(oids, oidEKUClientAuth)
			case certmodel.EKUCodeSigning:
				oids = append(oids, oidEKUCodeSigning)
			case certmodel.EKUEmailProtection:
				oids = append(oids, oidEKUEmailProtection)
			case certmodel.EKUOCSPSigning:
				oids = append(oids, oidEKUOCSPSigning)
			case certmodel.EKUAny:
				oids = append(oids, oidEKUAny)
			}
		}
		if err := add(oidExtExtendedKeyUsage, false, oids); err != nil {
			return nil, err
		}
	}
	if len(tpl.PermittedDNSDomains) > 0 || len(tpl.ExcludedDNSDomains) > 0 {
		var nc nameConstraints
		for _, d := range tpl.PermittedDNSDomains {
			nc.Permitted = append(nc.Permitted, generalSubtree{Base: d})
		}
		for _, d := range tpl.ExcludedDNSDomains {
			nc.Excluded = append(nc.Excluded, generalSubtree{Base: d})
		}
		if err := add(oidExtNameConstraints, true, nc); err != nil {
			return nil, err
		}
	}
	if len(tpl.AIAIssuerURLs) > 0 {
		var ads []accessDescription
		for _, u := range tpl.AIAIssuerURLs {
			ads = append(ads, accessDescription{
				Method:   oidAIACAIssuers,
				Location: asn1.RawValue{Class: asn1.ClassContextSpecific, Tag: 6, Bytes: []byte(u)},
			})
		}
		if err := add(oidExtAIA, false, ads); err != nil {
			return nil, err
		}
	}
	return exts, nil
}

// keyUsageBits converts the KeyUsage bitmask to the ASN.1 BIT STRING layout,
// where bit 0 (digitalSignature) is the most significant bit of the first
// byte.
func keyUsageBits(ku certmodel.KeyUsage) asn1.BitString {
	var buf [2]byte
	highest := -1
	for bit := 0; bit < 9; bit++ {
		if ku&(1<<bit) != 0 {
			buf[bit/8] |= 0x80 >> (bit % 8)
			highest = bit
		}
	}
	if highest < 0 {
		return asn1.BitString{Bytes: []byte{0}, BitLength: 1}
	}
	n := highest/8 + 1
	return asn1.BitString{Bytes: buf[:n], BitLength: highest + 1}
}

func marshalSAN(dnsNames []string, ips []net.IP) ([]byte, error) {
	var raw []asn1.RawValue
	for _, name := range dnsNames {
		raw = append(raw, asn1.RawValue{Class: asn1.ClassContextSpecific, Tag: 2, Bytes: []byte(name)})
	}
	for _, ip := range ips {
		b := ip.To4()
		if b == nil {
			b = ip.To16()
		}
		raw = append(raw, asn1.RawValue{Class: asn1.ClassContextSpecific, Tag: 7, Bytes: b})
	}
	return asn1.Marshal(raw)
}
