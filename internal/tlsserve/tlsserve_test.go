package tlsserve

import (
	"crypto/tls"
	"crypto/x509"
	"testing"
	"time"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
)

func testChain(t *testing.T, domain string) (*certgen.Leaf, []*certmodel.Certificate) {
	t.Helper()
	root, err := certgen.NewRoot("Serve Root")
	if err != nil {
		t.Fatal(err)
	}
	inter, err := root.NewIntermediate("Serve CA")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := inter.NewLeaf(domain)
	if err != nil {
		t.Fatal(err)
	}
	return leaf, []*certmodel.Certificate{leaf.Cert, inter.Cert, root.Cert}
}

func capture(t *testing.T, addr, sni string, maxVersion uint16) [][]byte {
	t.Helper()
	var raw [][]byte
	conn, err := tls.Dial("tcp", addr, &tls.Config{
		ServerName:         sni,
		InsecureSkipVerify: true,
		MaxVersion:         maxVersion,
		VerifyPeerCertificate: func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
			raw = rawCerts
			return nil
		},
	})
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	conn.Close()
	return raw
}

func TestServePresentsListVerbatim(t *testing.T) {
	leaf, list := testChain(t, "serve.example")
	// Scramble the order deliberately: the server must not fix it.
	scrambled := []*certmodel.Certificate{list[0], list[2], list[1]}
	srv, err := Start(Config{List: scrambled, Key: leaf.Key, Domain: "serve.example"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw := capture(t, srv.Addr(), "serve.example", 0)
	if len(raw) != 3 {
		t.Fatalf("captured %d certs", len(raw))
	}
	for i, want := range scrambled {
		got, err := certmodel.ParseDER(raw[i])
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("position %d differs", i)
		}
	}
	if srv.Connections() == 0 {
		t.Error("connection not counted")
	}
	if srv.Domain() != "serve.example" {
		t.Error("domain label lost")
	}
}

func TestStartRejectsBadConfigs(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Error("empty list accepted")
	}
	synth := certmodel.SyntheticRoot("Synth", time.Now())
	if _, err := Start(Config{List: []*certmodel.Certificate{synth}}); err == nil {
		t.Error("synthetic certificate accepted")
	}
}

func TestMaxVersionCap(t *testing.T) {
	leaf, list := testChain(t, "cap.example")
	srv, err := Start(Config{List: list, Key: leaf.Key, Domain: "cap.example", MaxVersion: tls.VersionTLS12})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := tls.Dial("tcp", srv.Addr(), &tls.Config{InsecureSkipVerify: true, ServerName: "cap.example"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if v := conn.ConnectionState().Version; v != tls.VersionTLS12 {
		t.Errorf("negotiated %x, want TLS 1.2", v)
	}
}

func TestFarmLifecycle(t *testing.T) {
	f := NewFarm()
	defer f.Close()
	leaf, list := testChain(t, "farm.example")
	srv, err := f.Add(Config{List: list, Key: leaf.Key, Domain: "farm.example"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Addr("farm.example") != srv.Addr() {
		t.Error("farm address lookup wrong")
	}
	if f.Addr("missing.example") != "" {
		t.Error("missing domain should yield empty address")
	}
	if len(f.Domains()) != 1 {
		t.Errorf("domains = %v", f.Domains())
	}
	// Replacing a domain closes the old server.
	leaf2, list2 := testChain(t, "farm.example")
	srv2, err := f.Add(Config{List: list2, Key: leaf2.Key, Domain: "farm.example"})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Addr() == srv.Addr() {
		t.Error("replacement reused the address")
	}
	if len(f.Domains()) != 1 {
		t.Error("replacement duplicated the domain")
	}
	// Double close is safe.
	srv2.Close()
	srv2.Close()
}
