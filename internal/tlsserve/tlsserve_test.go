package tlsserve

import (
	"crypto/tls"
	"crypto/x509"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/faults"
)

func testChain(t *testing.T, domain string) (*certgen.Leaf, []*certmodel.Certificate) {
	t.Helper()
	root, err := certgen.NewRoot("Serve Root")
	if err != nil {
		t.Fatal(err)
	}
	inter, err := root.NewIntermediate("Serve CA")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := inter.NewLeaf(domain)
	if err != nil {
		t.Fatal(err)
	}
	return leaf, []*certmodel.Certificate{leaf.Cert, inter.Cert, root.Cert}
}

func capture(t *testing.T, addr, sni string, maxVersion uint16) [][]byte {
	t.Helper()
	var raw [][]byte
	conn, err := tls.Dial("tcp", addr, &tls.Config{
		ServerName:         sni,
		InsecureSkipVerify: true,
		MaxVersion:         maxVersion,
		VerifyPeerCertificate: func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
			raw = rawCerts
			return nil
		},
	})
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	conn.Close()
	return raw
}

func TestServePresentsListVerbatim(t *testing.T) {
	leaf, list := testChain(t, "serve.example")
	// Scramble the order deliberately: the server must not fix it.
	scrambled := []*certmodel.Certificate{list[0], list[2], list[1]}
	srv, err := Start(Config{List: scrambled, Key: leaf.Key, Domain: "serve.example"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw := capture(t, srv.Addr(), "serve.example", 0)
	if len(raw) != 3 {
		t.Fatalf("captured %d certs", len(raw))
	}
	for i, want := range scrambled {
		got, err := certmodel.ParseDER(raw[i])
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("position %d differs", i)
		}
	}
	if srv.Connections() == 0 {
		t.Error("connection not counted")
	}
	if srv.Domain() != "serve.example" {
		t.Error("domain label lost")
	}
}

func TestStartRejectsBadConfigs(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Error("empty list accepted")
	}
	synth := certmodel.SyntheticRoot("Synth", time.Now())
	if _, err := Start(Config{List: []*certmodel.Certificate{synth}}); err == nil {
		t.Error("synthetic certificate accepted")
	}
}

func TestMaxVersionCap(t *testing.T) {
	leaf, list := testChain(t, "cap.example")
	srv, err := Start(Config{List: list, Key: leaf.Key, Domain: "cap.example", MaxVersion: tls.VersionTLS12})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := tls.Dial("tcp", srv.Addr(), &tls.Config{InsecureSkipVerify: true, ServerName: "cap.example"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if v := conn.ConnectionState().Version; v != tls.VersionTLS12 {
		t.Errorf("negotiated %x, want TLS 1.2", v)
	}
}

// flakyListener fails its first N Accept calls with a temporary error
// before delegating to the real listener — the EMFILE shape that used to
// kill acceptLoop permanently.
type flakyListener struct {
	net.Listener
	mu       sync.Mutex
	failures int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.failures > 0 {
		l.failures--
		l.mu.Unlock()
		return nil, &net.OpError{Op: "accept", Net: "tcp", Err: syscall.EMFILE}
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

func TestAcceptLoopRetriesTemporaryErrors(t *testing.T) {
	leaf, list := testChain(t, "flaky.example")
	raw := make([][]byte, len(list))
	for i, c := range list {
		raw[i] = c.Raw
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clock := faults.NewFakeClock(time.Now())
	srv := startWithListener(&flakyListener{Listener: ln, failures: 3},
		Config{Key: leaf.Key, Domain: "flaky.example", Clock: clock}, raw)
	defer srv.Close()

	// The listener must survive the three EMFILEs and still serve.
	captured := capture(t, srv.Addr(), "flaky.example", 0)
	if len(captured) != 3 {
		t.Fatalf("captured %d certs after temporary accept errors", len(captured))
	}
	if got := srv.AcceptRetries(); got != 3 {
		t.Errorf("accept retries = %d, want 3", got)
	}
	// Backoff was paced on the fake clock: recorded, never really slept.
	if n := len(clock.Sleeps()); n != 3 {
		t.Errorf("backoff sleeps recorded = %d, want 3", n)
	}
}

func TestAcceptThenResetFault(t *testing.T) {
	leaf, list := testChain(t, "reset.example")
	srv, err := Start(Config{
		List: list, Key: leaf.Key, Domain: "reset.example",
		Faults: FaultConfig{AcceptThenReset: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err = tls.Dial("tcp", srv.Addr(), &tls.Config{InsecureSkipVerify: true, ServerName: "reset.example"})
	if err == nil {
		t.Fatal("handshake succeeded against an accept-then-reset server")
	}
	if srv.FaultsInjected() == 0 {
		t.Error("fault not counted")
	}
}

func TestFailFirstNFault(t *testing.T) {
	leaf, list := testChain(t, "failfirst.example")
	srv, err := Start(Config{
		List: list, Key: leaf.Key, Domain: "failfirst.example",
		Faults: FaultConfig{FailFirst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	fails := 0
	for i := 0; i < 2; i++ {
		if _, err := tls.Dial("tcp", srv.Addr(), &tls.Config{InsecureSkipVerify: true, ServerName: "failfirst.example"}); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("first two connections: %d failed, want 2", fails)
	}
	// The third connection is served normally.
	if raw := capture(t, srv.Addr(), "failfirst.example", 0); len(raw) != 3 {
		t.Errorf("post-fault capture got %d certs", len(raw))
	}
	if srv.FaultsInjected() != 2 {
		t.Errorf("faults injected = %d, want 2", srv.FaultsInjected())
	}
}

func TestHandshakeDeadlineFreesSilentPeer(t *testing.T) {
	leaf, list := testChain(t, "silent.example")
	srv, err := Start(Config{
		List: list, Key: leaf.Key, Domain: "silent.example",
		HandshakeTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Connect raw TCP and never send a ClientHello: the server-side
	// deadline must close the connection rather than pin it forever.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server wrote data to a silent peer")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server never closed the silent connection (client read timed out)")
	}
}

func TestSlowWriteStillServes(t *testing.T) {
	leaf, list := testChain(t, "slow.example")
	srv, err := Start(Config{
		List: list, Key: leaf.Key, Domain: "slow.example",
		Faults: FaultConfig{SlowWrite: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if raw := capture(t, srv.Addr(), "slow.example", 0); len(raw) != 3 {
		t.Errorf("slow-write capture got %d certs", len(raw))
	}
}

func TestFaultConfigActive(t *testing.T) {
	if (FaultConfig{}).Active() {
		t.Error("zero FaultConfig reports active")
	}
	for _, fc := range []FaultConfig{
		{FailFirst: 1}, {AcceptThenReset: true},
		{StallHandshake: time.Second}, {SlowWrite: time.Second},
	} {
		if !fc.Active() {
			t.Errorf("%+v reports inactive", fc)
		}
	}
}

func TestFarmLifecycle(t *testing.T) {
	f := NewFarm()
	defer f.Close()
	leaf, list := testChain(t, "farm.example")
	srv, err := f.Add(Config{List: list, Key: leaf.Key, Domain: "farm.example"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Addr("farm.example") != srv.Addr() {
		t.Error("farm address lookup wrong")
	}
	if f.Addr("missing.example") != "" {
		t.Error("missing domain should yield empty address")
	}
	if len(f.Domains()) != 1 {
		t.Errorf("domains = %v", f.Domains())
	}
	// Replacing a domain closes the old server.
	leaf2, list2 := testChain(t, "farm.example")
	srv2, err := f.Add(Config{List: list2, Key: leaf2.Key, Domain: "farm.example"})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Addr() == srv.Addr() {
		t.Error("replacement reused the address")
	}
	if len(f.Domains()) != 1 {
		t.Error("replacement duplicated the domain")
	}
	// Double close is safe.
	srv2.Close()
	srv2.Close()
}
