package tlsserve

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"chainchaos/internal/faults"
	"chainchaos/internal/obs"
)

// TestHandshakeDeadlineUsesInjectedClock pins the satellite bugfix: the
// per-connection handshake deadline must come off the injected faults.Clock,
// not time.Now(). A fake clock parked two days in the past yields a deadline
// that has already expired in real time, so a client that connects and never
// speaks is cut immediately — under the old time.Now() deadline it would pin
// the handler for the full 10s timeout and this test would hang.
func TestHandshakeDeadlineUsesInjectedClock(t *testing.T) {
	leaf, list := testChain(t, "deadline.example")
	clk := faults.NewFakeClock(time.Now().Add(-48 * time.Hour))
	reg := obs.NewRegistry()
	srv, err := Start(Config{
		List: list, Key: leaf.Key, Domain: "deadline.example",
		HandshakeTimeout: time.Second, Clock: clk, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing: the server's handshake read must fail on the expired
	// deadline, not block.
	deadline := time.Now().Add(5 * time.Second)
	for srv.DeadlineExpiries() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handshake deadline never expired — deadline not on the injected clock")
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.DeadlineExpiries(); got != 1 {
		t.Fatalf("DeadlineExpiries = %d, want 1", got)
	}
	if got := reg.Counter("serve.deadline_expiries").Value(); got != 1 {
		t.Fatalf("serve.deadline_expiries = %d, want 1", got)
	}
}

// TestSlowWritePropagatesCause pins the other satellite bugfix: an aborted
// slow write must surface the context's error (server close or external
// cancellation), not collapse into net.ErrClosed.
func TestSlowWritePropagatesCause(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := &slowConn{Conn: server, delay: time.Hour, clock: faults.Wall(), ctx: ctx}
	_, err := sc.Write([]byte("hello"))
	if err == nil {
		t.Fatal("write on a cancelled slowConn must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if errors.Is(err, net.ErrClosed) {
		t.Fatalf("err = %v; the old code collapsed the cause into net.ErrClosed", err)
	}
}

// TestServeMetricsMirrorAccessors asserts the serve.* counters published to
// a registry agree exactly with the per-server accessors — the invariant the
// study's reconciliation rests on.
func TestServeMetricsMirrorAccessors(t *testing.T) {
	leaf, list := testChain(t, "metrics.example")
	reg := obs.NewRegistry()
	srv, err := Start(Config{
		List: list, Key: leaf.Key, Domain: "metrics.example",
		Faults:  FaultConfig{FailFirst: 2},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Two connections eaten by FailFirst, then one clean handshake. The
	// RST can surface at connect time on loopback, so a failed dial still
	// counts as a connection the server accepted and reset.
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			continue
		}
		buf := make([]byte, 1)
		c.Read(buf) // wait for the reset so fault accounting is done
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.FaultsInjected() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d faults fired", srv.FaultsInjected())
		}
		time.Sleep(time.Millisecond)
	}
	capture(t, srv.Addr(), "metrics.example", 0)

	deadline = time.Now().Add(5 * time.Second)
	for srv.Connections() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d connections accepted", srv.Connections())
		}
		time.Sleep(time.Millisecond)
	}
	if got, want := reg.Counter("serve.accepts").Value(), int64(srv.Connections()); got != want {
		t.Fatalf("serve.accepts = %d, accessor says %d", got, want)
	}
	if got, want := reg.Counter("serve.faults").Value(), int64(srv.FaultsInjected()); got != want || got != 2 {
		t.Fatalf("serve.faults = %d, accessor says %d, want 2", got, want)
	}
	if got, want := reg.Counter("serve.accept_retries").Value(), int64(srv.AcceptRetries()); got != want {
		t.Fatalf("serve.accept_retries = %d, accessor says %d", got, want)
	}
}
