// Package tlsserve stands up real TLS listeners that present arbitrary —
// including structurally non-compliant — certificate lists. It is the
// counterpart of the paper's scanned web servers: whatever certificate list
// a deployment model produced goes onto the wire exactly as-is, because
// crypto/tls sends the configured [][]byte chain verbatim in the Certificate
// message.
//
// Servers can also misbehave on purpose: a FaultConfig turns a listener into
// the hostile endpoints a live scan meets — connections reset after accept,
// handshakes that stall, listeners that fail their first N clients, writers
// that trickle bytes — so the scanner's retry and deadline machinery can be
// exercised deterministically on loopback.
package tlsserve

import (
	"context"
	"crypto"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/faults"
	"chainchaos/internal/obs"
)

// FaultConfig describes the misbehaviours a server injects. The zero value
// injects nothing.
type FaultConfig struct {
	// FailFirst resets the first N accepted connections (TCP RST before any
	// TLS byte) and then behaves — the transient-outage shape a retrying
	// scanner must survive.
	FailFirst int
	// AcceptThenReset resets every accepted connection: the listener is up,
	// the handshake never happens.
	AcceptThenReset bool
	// StallHandshake delays the server side of the handshake by this long
	// after accepting — long stalls provoke the client's timeout, short
	// ones its patience.
	StallHandshake time.Duration
	// SlowWrite inserts this delay before every write on the connection, so
	// the Certificate message trickles out.
	SlowWrite time.Duration
}

// Active reports whether any fault is configured.
func (fc FaultConfig) Active() bool {
	return fc.FailFirst > 0 || fc.AcceptThenReset || fc.StallHandshake > 0 || fc.SlowWrite > 0
}

// Server is one TLS listener presenting a fixed certificate list.
type Server struct {
	listener net.Listener
	tlsCfg   *tls.Config
	domain   string
	faults   FaultConfig
	timeout  time.Duration
	clock    faults.Clock

	closeCtx  context.Context
	closeFn   context.CancelFunc
	closeOnce sync.Once

	m serveMetrics

	mu               sync.Mutex
	conns            int
	faultsFired      int
	acceptRetries    int
	deadlineExpiries int
}

// serveMetrics holds the server's resolved metric handles; all nil (no-op)
// without a registry. Counters are shared across every server wired to the
// same registry, so a farm's totals aggregate without extra bookkeeping.
type serveMetrics struct {
	accepts          *obs.Counter // serve.accepts
	faults           *obs.Counter // serve.faults: injected misbehaviours fired
	acceptRetries    *obs.Counter // serve.accept_retries: temporary Accept errors retried
	deadlineExpiries *obs.Counter // serve.deadline_expiries: handshakes cut by the per-conn deadline
}

func resolveServeMetrics(r *obs.Registry) serveMetrics {
	return serveMetrics{
		accepts:          r.Counter("serve.accepts"),
		faults:           r.Counter("serve.faults"),
		acceptRetries:    r.Counter("serve.accept_retries"),
		deadlineExpiries: r.Counter("serve.deadline_expiries"),
	}
}

// Config describes the deployment to serve.
type Config struct {
	// List is the wire-order certificate list. The first entry must be the
	// certificate matching Key — the same constraint real servers enforce
	// ("SSL_CTX_use_PrivateKey failed").
	List []*certmodel.Certificate
	// Key is the private key for List[0].
	Key crypto.PrivateKey
	// Domain is informational (used by inventory listings).
	Domain string
	// MaxVersion optionally caps the TLS version (the paper scanned with
	// TLS 1.2 and compared against 1.3); zero means the stdlib default.
	MaxVersion uint16
	// HandshakeTimeout bounds each accepted connection's handshake (default
	// 10s): a peer that connects and never writes must not pin a goroutine
	// forever.
	HandshakeTimeout time.Duration
	// Faults makes the server misbehave on purpose.
	Faults FaultConfig
	// Clock paces accept-error backoff, injected stalls, and the per-
	// connection handshake deadline; nil means the wall clock. Tests inject
	// a fake clock so nothing really sleeps and deadlines are controlled.
	Clock faults.Clock
	// Metrics, when non-nil, receives accept/fault/retry/deadline counters
	// (see serveMetrics for the names).
	Metrics *obs.Registry
}

// Start launches a listener on 127.0.0.1 (ephemeral port) presenting the
// configured list. Each accepted connection is handshaken and then closed;
// the server exists to hand chains to scanners, not to serve content.
func Start(cfg Config) (*Server, error) {
	if len(cfg.List) == 0 {
		return nil, fmt.Errorf("tlsserve: empty certificate list")
	}
	raw := make([][]byte, len(cfg.List))
	for i, c := range cfg.List {
		if c.X509 == nil {
			return nil, fmt.Errorf("tlsserve: certificate %d (%s) is synthetic; TLS needs real DER", i, c.Subject)
		}
		raw[i] = c.Raw
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("tlsserve: listen: %w", err)
	}
	return startWithListener(ln, cfg, raw), nil
}

// startWithListener finishes construction over an already-open listener;
// tests use it to inject listeners that fail Accept on purpose.
func startWithListener(ln net.Listener, cfg Config, raw [][]byte) *Server {
	timeout := cfg.HandshakeTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	clock := cfg.Clock
	if clock == nil {
		clock = faults.Wall()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		listener: ln,
		tlsCfg: &tls.Config{
			Certificates: []tls.Certificate{{Certificate: raw, PrivateKey: cfg.Key}},
			MaxVersion:   cfg.MaxVersion,
		},
		domain:   cfg.Domain,
		faults:   cfg.Faults,
		timeout:  timeout,
		clock:    clock,
		m:        resolveServeMetrics(cfg.Metrics),
		closeCtx: ctx,
		closeFn:  cancel,
	}
	go s.acceptLoop()
	return s
}

// acceptLoop accepts until the listener is closed. Temporary errors —
// EMFILE, aborted connections, timeouts — are retried with capped
// exponential backoff instead of silently killing the listener mid-study;
// only a closed listener (or a genuinely permanent error) ends the loop.
func (s *Server) acceptLoop() {
	const (
		baseBackoff = 5 * time.Millisecond
		maxBackoff  = time.Second
	)
	backoff := time.Duration(0)
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			if s.closeCtx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			if !faults.IsTemporaryAccept(err) {
				return
			}
			if backoff == 0 {
				backoff = baseBackoff
			} else if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			s.mu.Lock()
			s.acceptRetries++
			s.mu.Unlock()
			s.m.acceptRetries.Inc()
			if s.clock.Sleep(s.closeCtx, backoff) != nil {
				return
			}
			continue
		}
		backoff = 0
		s.mu.Lock()
		s.conns++
		n := s.conns
		s.mu.Unlock()
		s.m.accepts.Inc()
		go s.handle(conn, n)
	}
}

// handle runs one accepted connection: fault injection first, then a
// deadline-bounded handshake.
func (s *Server) handle(conn net.Conn, n int) {
	defer conn.Close()
	fc := s.faults
	if fc.AcceptThenReset || n <= fc.FailFirst {
		s.countFault()
		reset(conn)
		return
	}
	if fc.StallHandshake > 0 {
		s.countFault()
		if s.clock.Sleep(s.closeCtx, fc.StallHandshake) != nil {
			return // server closed mid-stall
		}
	}
	if fc.SlowWrite > 0 {
		conn = &slowConn{Conn: conn, delay: fc.SlowWrite, clock: s.clock, ctx: s.closeCtx}
	}
	tc := tls.Server(conn, s.tlsCfg)
	defer tc.Close()
	// A peer that connects and never writes must not hold this goroutine
	// (and its counted connection) forever. The deadline comes off the
	// injected clock, not time.Now(), so FakeClock fault tests control
	// exactly when it expires.
	_ = conn.SetDeadline(s.clock.Now().Add(s.timeout))
	// Complete the handshake so the client receives the Certificate
	// message even if it never writes afterwards.
	if err := tc.Handshake(); err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		s.mu.Lock()
		s.deadlineExpiries++
		s.mu.Unlock()
		s.m.deadlineExpiries.Inc()
	}
}

// countFault records one injected misbehaviour.
func (s *Server) countFault() {
	s.mu.Lock()
	s.faultsFired++
	s.mu.Unlock()
	s.m.faults.Inc()
}

// reset closes conn abruptly (RST instead of FIN where the transport allows
// it), modelling a peer that accepts and immediately drops.
func reset(conn net.Conn) {
	if tcp, ok := conn.(*net.TCPConn); ok {
		_ = tcp.SetLinger(0)
	}
	_ = conn.Close()
}

// slowConn delays every write, trickling the handshake onto the wire.
type slowConn struct {
	net.Conn
	delay time.Duration
	clock faults.Clock
	ctx   context.Context
}

// Write delays, then writes. An aborted sleep propagates its underlying
// cause (the context error — server close or external cancellation) instead
// of collapsing everything into net.ErrClosed, which mis-bucketed error
// classification for anything inspecting the handshake failure.
func (c *slowConn) Write(p []byte) (int, error) {
	if err := c.clock.Sleep(c.ctx, c.delay); err != nil {
		return 0, fmt.Errorf("tlsserve: slow write aborted: %w", err)
	}
	return c.Conn.Write(p)
}

// Addr returns the listener's host:port.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Domain returns the configured domain label.
func (s *Server) Domain() string { return s.domain }

// Connections returns how many connections were accepted.
func (s *Server) Connections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns
}

// FaultsInjected returns how many connections had a fault injected.
func (s *Server) FaultsInjected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faultsFired
}

// AcceptRetries returns how many temporary Accept errors were retried.
func (s *Server) AcceptRetries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acceptRetries
}

// DeadlineExpiries returns how many handshakes were cut short by the
// per-connection deadline.
func (s *Server) DeadlineExpiries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadlineExpiries
}

// Close shuts the listener down. Safe to call multiple times.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closeFn()
		s.listener.Close()
	})
}

// Farm manages a set of servers, one per domain — the "measurement testbed"
// the examples and integration tests scan.
type Farm struct {
	mu      sync.Mutex
	servers map[string]*Server // domain -> server
}

// NewFarm creates an empty farm.
func NewFarm() *Farm {
	return &Farm{servers: make(map[string]*Server)}
}

// Add starts a server for cfg and registers it under cfg.Domain.
func (f *Farm) Add(cfg Config) (*Server, error) {
	srv, err := Start(cfg)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if old, ok := f.servers[cfg.Domain]; ok {
		old.Close()
	}
	f.servers[cfg.Domain] = srv
	return srv, nil
}

// Addr returns the address serving domain, or "".
func (f *Farm) Addr(domain string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.servers[domain]; ok {
		return s.Addr()
	}
	return ""
}

// Domains returns the registered domains.
func (f *Farm) Domains() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.servers))
	for d := range f.servers {
		out = append(out, d)
	}
	return out
}

// Close shuts every server down.
func (f *Farm) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.servers {
		s.Close()
	}
}
