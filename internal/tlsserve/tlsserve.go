// Package tlsserve stands up real TLS listeners that present arbitrary —
// including structurally non-compliant — certificate lists. It is the
// counterpart of the paper's scanned web servers: whatever certificate list
// a deployment model produced goes onto the wire exactly as-is, because
// crypto/tls sends the configured [][]byte chain verbatim in the Certificate
// message.
package tlsserve

import (
	"crypto"
	"crypto/tls"
	"fmt"
	"net"
	"sync"

	"chainchaos/internal/certmodel"
)

// Server is one TLS listener presenting a fixed certificate list.
type Server struct {
	listener net.Listener
	domain   string

	mu        sync.Mutex
	conns     int
	closed    bool
	closeOnce sync.Once
}

// Config describes the deployment to serve.
type Config struct {
	// List is the wire-order certificate list. The first entry must be the
	// certificate matching Key — the same constraint real servers enforce
	// ("SSL_CTX_use_PrivateKey failed").
	List []*certmodel.Certificate
	// Key is the private key for List[0].
	Key crypto.PrivateKey
	// Domain is informational (used by inventory listings).
	Domain string
	// MaxVersion optionally caps the TLS version (the paper scanned with
	// TLS 1.2 and compared against 1.3); zero means the stdlib default.
	MaxVersion uint16
}

// Start launches a listener on 127.0.0.1 (ephemeral port) presenting the
// configured list. Each accepted connection is handshaken and then closed;
// the server exists to hand chains to scanners, not to serve content.
func Start(cfg Config) (*Server, error) {
	if len(cfg.List) == 0 {
		return nil, fmt.Errorf("tlsserve: empty certificate list")
	}
	raw := make([][]byte, len(cfg.List))
	for i, c := range cfg.List {
		if c.X509 == nil {
			return nil, fmt.Errorf("tlsserve: certificate %d (%s) is synthetic; TLS needs real DER", i, c.Subject)
		}
		raw[i] = c.Raw
	}
	tlsCfg := &tls.Config{
		Certificates: []tls.Certificate{{Certificate: raw, PrivateKey: cfg.Key}},
		MaxVersion:   cfg.MaxVersion,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("tlsserve: listen: %w", err)
	}
	s := &Server{listener: tls.NewListener(ln, tlsCfg), domain: cfg.Domain}
	go s.acceptLoop()
	return s, nil
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns++
		s.mu.Unlock()
		go func(c net.Conn) {
			defer c.Close()
			if tc, ok := c.(*tls.Conn); ok {
				// Complete the handshake so the client receives the
				// Certificate message even if it never writes.
				_ = tc.Handshake()
			}
		}(conn)
	}
}

// Addr returns the listener's host:port.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Domain returns the configured domain label.
func (s *Server) Domain() string { return s.domain }

// Connections returns how many connections were accepted.
func (s *Server) Connections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns
}

// Close shuts the listener down. Safe to call multiple times.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.listener.Close()
	})
}

// Farm manages a set of servers, one per domain — the "measurement testbed"
// the examples and integration tests scan.
type Farm struct {
	mu      sync.Mutex
	servers map[string]*Server // domain -> server
}

// NewFarm creates an empty farm.
func NewFarm() *Farm {
	return &Farm{servers: make(map[string]*Server)}
}

// Add starts a server for cfg and registers it under cfg.Domain.
func (f *Farm) Add(cfg Config) (*Server, error) {
	srv, err := Start(cfg)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if old, ok := f.servers[cfg.Domain]; ok {
		old.Close()
	}
	f.servers[cfg.Domain] = srv
	return srv, nil
}

// Addr returns the address serving domain, or "".
func (f *Farm) Addr(domain string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.servers[domain]; ok {
		return s.Addr()
	}
	return ""
}

// Domains returns the registered domains.
func (f *Farm) Domains() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.servers))
	for d := range f.servers {
		out = append(out, d)
	}
	return out
}

// Close shuts every server down.
func (f *Farm) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.servers {
		s.Close()
	}
}
