package pipeline

import (
	"path/filepath"
	"testing"
)

// TestJournalSurfacesWriteErrors: a journal whose appends fail (disk full,
// revoked fd) must report the failure from Flush/Close and from the
// write-through record appenders — not keep returning nil while the resume
// state silently stops advancing.
func TestJournalSurfacesWriteErrors(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "ckpt.journal"))
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the fd so every subsequent append fails.
	if err := j.f.Close(); err != nil {
		t.Fatal(err)
	}
	j.Retire("grade.sink", 99)
	if err := j.Flush(); err == nil {
		t.Fatal("Flush reported success after a failed append")
	}
	if err := j.Anchor("grade", 7, 70, 80, "dd44", false); err == nil {
		t.Fatal("Anchor reported success after a failed append")
	}
	if err := j.RunRoot("grade", 8, 80, "ee55"); err == nil {
		t.Fatal("RunRoot reported success after a failed append")
	}
	if err := j.Close(); err == nil {
		t.Fatal("Close reported success after a failed append")
	}
}

// TestJournalLeaseAndAnchorRecordsCoexist: lease readers must not surface
// anchor records and vice versa — they share the journal file.
func TestJournalLeaseAndAnchorRecordsCoexist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Lease("grant", 0, 0, 100, 0)
	if err := j.Anchor("grade", 0, 0, 64, "aa", false); err != nil {
		t.Fatal(err)
	}
	j.Lease("done", 0, 0, 100, 0)
	if err := j.RunRoot("grade", 1, 64, "bb"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	leases, err := ReadLeases(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 2 || leases[0].Event != "grant" || leases[1].Event != "done" {
		t.Fatalf("leases = %+v", leases)
	}
	anchors, err := ReadAnchors(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(anchors) != 2 || anchors[0].Event != "anchor" || anchors[1].Event != "runroot" {
		t.Fatalf("anchors = %+v", anchors)
	}
}
