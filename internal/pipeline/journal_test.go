package pipeline

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalWatermarks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Every = 3
	if got := j.Last("grade"); got != -1 {
		t.Fatalf("empty journal Last = %d, want -1", got)
	}
	for rank := 0; rank < 10; rank++ {
		j.Retire("grade", rank)
	}
	// Ranks 0..9 with Every=3 → lines at 2, 5, 8; rank 9 is in memory only
	// until Flush/Close.
	if got := j.Last("grade"); got != 8 {
		t.Fatalf("pre-flush Last = %d, want 8", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: Close's final flush makes all 10 retirements visible.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Last("grade"); got != 9 {
		t.Fatalf("reopened Last = %d, want 9", got)
	}
	if got := j2.Last("unknown"); got != -1 {
		t.Fatalf("unknown stage Last = %d, want -1", got)
	}
}

func TestJournalTornTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Every = 1
	j.Retire("sink", 0)
	j.Retire("sink", 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append garbage with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"stage":"sink","ra`)
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Last("sink"); got != 1 {
		t.Fatalf("Last after torn line = %d, want 1", got)
	}
}

// TestResumeSkipsRetiredRanks: a journaled pipeline interrupted mid-run
// restarts from the watermark and processes only the remaining ranks.
func TestResumeSkipsRetiredRanks(t *testing.T) {
	const n = 100
	path := filepath.Join(t.TempDir(), "run.ckpt")
	interrupted := errors.New("interrupted")

	runOnce := func(stopAfter int) ([]int, error) {
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		j.Every = 1
		resume := j.Last(SinkName("double")) + 1
		opts := Options{Journal: j, Resume: resume}
		f := From(context.Background(), opts, "src", 4, func(rank int) (int, bool, error) {
			return rank, rank < n, nil
		})
		g := Through(f, Stage[int, int]{Name: "double", Workers: 4,
			Fn: func(_ context.Context, _, _ int, v int) (int, error) { return 2 * v, nil }})
		var got []int
		err = g.Drain(func(rank int, v int) error {
			if stopAfter >= 0 && len(got) >= stopAfter {
				return interrupted
			}
			got = append(got, v)
			return nil
		})
		return got, err
	}

	first, err := runOnce(40)
	if !errors.Is(err, interrupted) {
		t.Fatalf("first run err = %v, want interruption", err)
	}
	if len(first) != 40 {
		t.Fatalf("first run retired %d, want 40", len(first))
	}
	second, err := runOnce(-1)
	if err != nil {
		t.Fatal(err)
	}
	combined := append(first, second...)
	if len(combined) != n {
		t.Fatalf("combined length %d, want %d (second run redid %d)", len(combined), n, len(second))
	}
	for i, v := range combined {
		if v != 2*i {
			t.Fatalf("rank %d: got %d, want %d", i, v, 2*i)
		}
	}
}
