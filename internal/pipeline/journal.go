// The shard journal: a JSONL watermark stream recording, per stage, the
// highest rank retired so far. Because every stage releases ranks strictly
// in order, a single integer per stage is a complete description of
// progress — rank r retired implies every rank below r retired too. A run
// that is interrupted resumes from Last(stage)+1 and redoes at most the
// work between the last written watermark and the crash.
//
// Multi-writer safety: the file is opened O_APPEND and every record is
// appended with a single write(2) under an advisory flock, so several
// processes (a distributed coordinator and its workers, or per-worker
// shards later merged) can share one journal without tearing each other's
// lines. A distributed run additionally appends lease records — grant,
// done, expire events for each leased rank range — interleaved with the
// stage watermarks; the watermark loader skips them.
package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// journalEntry is one JSONL line of the shard journal. Stage watermarks use
// only (Stage, Rank); lease and ledger-anchor records carry the extra fields
// and a non-empty Event, which is what the watermark loader keys off to skip
// them.
type journalEntry struct {
	Stage string `json:"stage"`
	Rank  int    `json:"rank"`

	Event string `json:"event,omitempty"`
	Lease int    `json:"lease,omitempty"`
	Lo    int    `json:"lo,omitempty"`
	Hi    int    `json:"hi,omitempty"`
	Epoch int    `json:"epoch,omitempty"`

	// Ledger anchor fields (Event "anchor" / "runroot"): Batch is the batch
	// index (the batch count for a runroot), Root the Merkle root in hex,
	// Partial marks a latency flush of an incomplete batch. Anchors reuse
	// Lo/Hi for the leaf span and Rank for Hi-1.
	Batch   int    `json:"batch,omitempty"`
	Root    string `json:"root,omitempty"`
	Partial bool   `json:"partial,omitempty"`
}

// AnchorRecord is one ledger commitment read back from a journal: the
// Merkle root (hex) of leaves [Lo, Hi) of batch Batch for the stage's sink.
// A "runroot" record carries the run-level root over all Batch batch roots.
type AnchorRecord struct {
	Stage   string
	Event   string // "anchor" or "runroot"
	Batch   int
	Lo, Hi  int
	Root    string
	Partial bool
}

// LeaseRecord is one lease event of a distributed run, as read back from a
// journal: the coordinator granted, completed, or expired the lease covering
// ranks [Lo, Hi). Epoch counts reassignments of the same range.
type LeaseRecord struct {
	Event string
	Lease int
	Lo    int
	Hi    int
	Epoch int
}

// Journal is an append-only JSONL watermark file shared by every stage of a
// pipeline run. All methods are safe for concurrent use and are no-ops on a
// nil receiver, so an unjournaled run pays one nil check per retirement.
// Concurrent appenders — other handles in this process or other processes —
// are safe too: appends are single O_APPEND writes under an advisory flock.
type Journal struct {
	// Every is the write cadence: a stage's watermark line is appended every
	// Every retirements (and once more at Close). Lower values shrink the
	// redo window after a crash at the cost of more write calls; the default
	// is 64.
	Every int

	mu      sync.Mutex
	f       *os.File
	last    map[string]int // highest rank journaled per stage
	since   map[string]int // retirements since the stage's last written line
	high    map[string]int // highest rank retired (in memory) per stage
	anchors map[string]map[int]string // final anchor root per (stage, batch)
	werr    error                     // first append error, surfaced by Flush/Close
}

// OpenJournal opens (or creates) the journal at path and loads every
// existing watermark, so Last immediately reflects the previous run.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pipeline: open journal: %w", err)
	}
	j := &Journal{
		Every:   64,
		f:       f,
		last:    make(map[string]int),
		since:   make(map[string]int),
		high:    make(map[string]int),
		anchors: make(map[string]map[int]string),
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// A torn trailing line from a crash mid-write: older watermarks
			// still stand, so ignore it rather than refuse to resume.
			continue
		}
		if e.Event == "anchor" && !e.Partial {
			m := j.anchors[e.Stage]
			if m == nil {
				m = make(map[int]string)
				j.anchors[e.Stage] = m
			}
			m[e.Batch] = e.Root
			continue
		}
		if e.Event != "" {
			continue // lease or runroot record, not a watermark
		}
		if cur, ok := j.last[e.Stage]; !ok || e.Rank > cur {
			j.last[e.Stage] = e.Rank
			j.high[e.Stage] = e.Rank
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("pipeline: read journal: %w", err)
	}
	return j, nil
}

// Checkpoint opens (creating if absent) the journal at path and returns it
// together with the resume rank for stage's sink — the first rank the
// previous run had not yet retired, 0 for a fresh journal. It is the
// -checkpoint flag's implementation, shared by every streaming command.
func Checkpoint(path, stage string) (*Journal, int, error) {
	j, err := OpenJournal(path)
	if err != nil {
		return nil, 0, err
	}
	return j, j.Last(SinkName(stage)) + 1, nil
}

// ReadLeases returns every lease record in the journal at path, in append
// order. A missing file returns no records; torn lines are skipped.
func ReadLeases(path string) ([]LeaseRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: read leases: %w", err)
	}
	defer f.Close()
	var out []LeaseRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var e journalEntry
		if json.Unmarshal(sc.Bytes(), &e) != nil || e.Event == "" || e.Event == "anchor" || e.Event == "runroot" {
			continue
		}
		out = append(out, LeaseRecord{Event: e.Event, Lease: e.Lease, Lo: e.Lo, Hi: e.Hi, Epoch: e.Epoch})
	}
	return out, sc.Err()
}

// Last returns the highest journaled rank for the stage, or -1 if the stage
// has no watermark. Returns -1 on a nil journal.
func (j *Journal) Last(stage string) int {
	if j == nil {
		return -1
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if r, ok := j.last[stage]; ok {
		return r
	}
	return -1
}

// Retire records that the stage retired rank. A watermark line is written
// every Every retirements; in between, progress is tracked in memory only
// (Close writes the final line). No-op on a nil journal.
func (j *Journal) Retire(stage string, rank int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	// Stages retire ranks in strictly increasing order, so the latest rank
	// is the watermark.
	j.high[stage] = rank
	j.since[stage]++
	every := j.Every
	if every <= 0 {
		every = 1
	}
	if j.since[stage] >= every {
		j.writeLocked(journalEntry{Stage: stage, Rank: j.high[stage]})
	}
}

// Lease appends one lease record: event is "grant", "done", or "expire";
// the lease covers ranks [lo, hi) and epoch counts reassignments. Lease
// records are written through immediately — they are the audit trail a
// failure analysis reads, not a cadence-batched watermark. No-op on nil.
func (j *Journal) Lease(event string, lease, lo, hi, epoch int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.writeLocked(journalEntry{Stage: "lease", Rank: hi - 1, Event: event, Lease: lease, Lo: lo, Hi: hi, Epoch: epoch})
}

// Anchor appends one ledger anchor record for the stage's sink: the Merkle
// root (hex) of leaves [lo, hi) of batch. Anchors write through immediately
// — they are the tamper-evidence trail — and a write failure is returned
// here, not deferred: a run must not keep emitting records it cannot anchor.
// Duplicate final anchors for a batch are dropped when the root matches and
// rejected when it does not. No-op on a nil journal.
func (j *Journal) Anchor(stage string, batch, lo, hi int, root string, partial bool) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !partial {
		m := j.anchors[stage]
		if prev, ok := m[batch]; ok {
			if prev != root {
				return fmt.Errorf("pipeline: anchor %s batch %d: root %s conflicts with journaled %s", stage, batch, root, prev)
			}
			return nil
		}
		if m == nil {
			m = make(map[int]string)
			j.anchors[stage] = m
		}
		m[batch] = root
	}
	j.writeLocked(journalEntry{Stage: stage, Rank: hi - 1, Event: "anchor", Batch: batch, Lo: lo, Hi: hi, Root: root, Partial: partial})
	return j.werr
}

// RunRoot appends the run-level commitment: the Merkle root (hex) over the
// batches batch roots, covering leaves [0, leaves). No-op on nil.
func (j *Journal) RunRoot(stage string, batches, leaves int, root string) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.writeLocked(journalEntry{Stage: stage, Rank: leaves - 1, Event: "runroot", Batch: batches, Lo: 0, Hi: leaves, Root: root})
	return j.werr
}

// AnchorRoot returns the journaled final anchor root (hex) for the stage's
// batch, if any — the resume hook a rebuilt ledger batcher checks before
// re-emitting. Returns "", false on a nil journal.
func (j *Journal) AnchorRoot(stage string, batch int) (string, bool) {
	if j == nil {
		return "", false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	root, ok := j.anchors[stage][batch]
	return root, ok
}

// ReadAnchors returns every ledger anchor and runroot record in the journal
// at path, in append order. A missing file returns no records; torn lines
// are skipped.
func ReadAnchors(path string) ([]AnchorRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: read anchors: %w", err)
	}
	defer f.Close()
	var out []AnchorRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var e journalEntry
		if json.Unmarshal(sc.Bytes(), &e) != nil || (e.Event != "anchor" && e.Event != "runroot") {
			continue
		}
		out = append(out, AnchorRecord{Stage: e.Stage, Event: e.Event, Batch: e.Batch, Lo: e.Lo, Hi: e.Hi, Root: e.Root, Partial: e.Partial})
	}
	return out, sc.Err()
}

// writeLocked appends one journal line as a single O_APPEND write under the
// file's advisory lock. Callers hold j.mu. The first write or marshal error
// is recorded and surfaced by Flush/Close (and by the write-through record
// appenders): a journal on a full disk must not keep reporting success.
func (j *Journal) writeLocked(e journalEntry) {
	data, err := json.Marshal(e)
	if err != nil {
		if j.werr == nil {
			j.werr = fmt.Errorf("pipeline: journal marshal: %w", err)
		}
		return
	}
	data = append(data, '\n')
	lockFile(j.f)
	_, err = j.f.Write(data)
	unlockFile(j.f)
	if err != nil {
		if j.werr == nil {
			j.werr = fmt.Errorf("pipeline: journal append: %w", err)
		}
		return
	}
	if e.Event == "" {
		j.last[e.Stage] = e.Rank
		j.since[e.Stage] = 0
	}
}

// Flush writes the current in-memory watermark of every stage that advanced
// past its last written line, and reports the journal's first append error
// — including errors from earlier cadence-batched Retire writes that had no
// error path of their own.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for stage, rank := range j.high {
		if last, ok := j.last[stage]; !ok || rank > last {
			j.writeLocked(journalEntry{Stage: stage, Rank: rank})
		}
	}
	return j.werr
}

// Close flushes the final watermarks and closes the file, reporting the
// journal's first append error. No-op on nil.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	ferr := j.Flush()
	cerr := j.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
