//go:build !unix

package pipeline

import "os"

// Non-unix platforms have no flock; O_APPEND atomicity for small writes is
// the only cross-process guarantee. Single-process journals (the common
// case) are fully serialized by Journal.mu regardless.
func lockFile(*os.File)   {}
func unlockFile(*os.File) {}
