package pipeline

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestJournalConcurrentAppenders: several Journal handles open on the same
// path (the distributed coordinator plus any future co-writers) append
// concurrently without tearing lines — every handle's final watermark is
// recoverable, and every line in the file parses.
func TestJournalConcurrentAppenders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.ckpt")
	const writers = 4
	const ranks = 300

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		j.Every = 1 // every retirement appends: maximal interleaving
		wg.Add(1)
		go func(w int, j *Journal) {
			defer wg.Done()
			stage := "stage" + string(rune('A'+w))
			for r := 0; r <= ranks; r++ {
				j.Retire(stage, r)
			}
			if err := j.Close(); err != nil {
				t.Errorf("writer %d: close: %v", w, err)
			}
		}(w, j)
	}
	wg.Wait()

	// No torn lines: every byte of the file is valid JSONL.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("line %d torn: %q", i, line)
		}
	}

	// Every stage's watermark survived the interleaving.
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for w := 0; w < writers; w++ {
		stage := "stage" + string(rune('A'+w))
		if got := j.Last(stage); got != ranks {
			t.Fatalf("stage %s watermark = %d, want %d", stage, got, ranks)
		}
	}
}

// TestJournalLeaseRecordsInterleaved: lease events written between stage
// watermarks are invisible to watermark recovery (Checkpoint resumes at the
// right rank) but fully recoverable via ReadLeases — the coordinator's
// audit trail and the pipeline's resume logic share one file without
// stepping on each other.
func TestJournalLeaseRecordsInterleaved(t *testing.T) {
	path := filepath.Join(t.TempDir(), "leases.ckpt")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Every = 1
	sink := SinkName("grade")
	j.Lease("grant", 0, 0, 100, 0)
	for r := 0; r < 50; r++ {
		j.Retire(sink, r)
		if r == 20 {
			j.Lease("expire", 1, 100, 200, 0)
			j.Lease("grant", 1, 100, 200, 1)
		}
	}
	j.Lease("done", 0, 0, 100, 0)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, resume, err := Checkpoint(path, "grade")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if resume != 50 {
		t.Fatalf("resume rank = %d, want 50 (lease records must not disturb watermarks)", resume)
	}

	leases, err := ReadLeases(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	for _, lr := range leases {
		events = append(events, lr.Event)
	}
	want := "grant,expire,grant,done"
	if got := strings.Join(events, ","); got != want {
		t.Fatalf("lease events = %q, want %q", got, want)
	}
	if leases[2].Lease != 1 || leases[2].Lo != 100 || leases[2].Hi != 200 || leases[2].Epoch != 1 {
		t.Fatalf("reassigned lease record wrong: %+v", leases[2])
	}
}
