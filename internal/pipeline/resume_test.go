package pipeline

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// recoverFixture writes an output file and a journal with the given sink
// watermark, then runs RecoverOutput over them.
func recoverFixture(t *testing.T, content string, watermark, header int, rankOf func([]byte) (int, bool)) (int, string) {
	t.Helper()
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	if err := os.WriteFile(out, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Every = 1
	if watermark >= 0 {
		j.Retire(SinkName("work"), watermark)
	}
	resume, err := RecoverOutput(out, header, j, "work", rankOf)
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return resume, string(after)
}

func TestRecoverOutputDenseFileAhead(t *testing.T) {
	// Watermark says rank 2 retired; the file already holds ranks 0-5 plus a
	// torn line. The extra lines are truncated and ranks 3+ redo.
	content := "r0\nr1\nr2\nr3\nr4\nr5\ntorn"
	resume, after := recoverFixture(t, content, 2, 0, nil)
	if resume != 3 || after != "r0\nr1\nr2\n" {
		t.Fatalf("resume=%d file=%q", resume, after)
	}
}

func TestRecoverOutputDenseFileBehind(t *testing.T) {
	// The journal recorded rank 9 but a buffered writer lost everything past
	// rank 1: resume drops to the file's true progress, leaving no gap.
	resume, after := recoverFixture(t, "r0\nr1\n", 9, 0, nil)
	if resume != 2 || after != "r0\nr1\n" {
		t.Fatalf("resume=%d file=%q", resume, after)
	}
}

func TestRecoverOutputHeader(t *testing.T) {
	resume, after := recoverFixture(t, "col1\tcol2\nr0\nr1\nr2\n", 1, 1, nil)
	if resume != 2 || after != "col1\tcol2\nr0\nr1\n" {
		t.Fatalf("resume=%d file=%q", resume, after)
	}
}

func TestRecoverOutputFreshStart(t *testing.T) {
	// No watermark at all: whatever made it to the file is untrustworthy
	// (the header might be torn), so the run restarts with a clean file.
	resume, after := recoverFixture(t, "col1\tcol2\nr0", -1, 1, nil)
	if resume != 0 || after != "" {
		t.Fatalf("resume=%d file=%q", resume, after)
	}
}

func TestRecoverOutputMissingFile(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	resume, err := RecoverOutput(filepath.Join(t.TempDir(), "absent"), 0, j, "work", nil)
	if err != nil || resume != 0 {
		t.Fatalf("resume=%d err=%v", resume, err)
	}
}

func TestRecoverOutputSparse(t *testing.T) {
	// Sparse output: only some ranks produce lines, each carrying its rank.
	// Watermark 6 keeps ranks {1,4} and truncates rank 8's line.
	line := func(rank int) string {
		b, _ := json.Marshal(map[string]int{"rank": rank})
		return string(b) + "\n"
	}
	content := line(1) + line(4) + line(8)
	rankOf := func(l []byte) (int, bool) {
		var rec struct{ Rank int }
		if json.Unmarshal(l, &rec) != nil {
			return 0, false
		}
		return rec.Rank, true
	}
	resume, after := recoverFixture(t, content, 6, 0, rankOf)
	if resume != 7 || after != line(1)+line(4) {
		t.Fatalf("resume=%d file=%q", resume, after)
	}
	if !strings.HasSuffix(after, "\n") {
		t.Fatal("retained prefix must end at a line boundary")
	}
}

func TestRecoverOutputSparseUnparseable(t *testing.T) {
	resume, after := recoverFixture(t, "{\"rank\":0}\ngarbage\n{\"rank\":2}\n", 5, 0,
		func(l []byte) (int, bool) {
			n, err := strconv.Atoi(strings.TrimPrefix(strings.TrimSuffix(string(l), "}"), "{\"rank\":"))
			return n, err == nil
		})
	if resume != 6 || after != "{\"rank\":0}\n" {
		t.Fatalf("resume=%d file=%q", resume, after)
	}
}
