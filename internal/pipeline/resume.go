// Crash recovery for line-oriented result files. A streaming command pairs
// an append-only output (one record line per retired rank, or a sparse
// subset of ranks) with the shard journal; after an unclean stop the two can
// disagree in either direction: the journal's write cadence leaves the file
// up to Every-1 records ahead of the watermark, and a buffered output writer
// can lose a tail the journal already recorded. RecoverOutput reconciles
// them so the resumed run appends exactly the missing records and the final
// file is byte-identical to an uninterrupted run.
package pipeline

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
)

// RecoverOutput aligns the output file at path with stage's sink watermark
// in j and returns the rank the run should resume from. header counts
// non-record lines at the top of the file (a TSV header). rankOf maps a
// record line to its zero-based pipeline rank; nil means line i is rank i —
// a dense output with one line per rank in rank order.
//
// The file is truncated to the longest prefix of complete lines whose ranks
// all precede the resume rank (a torn trailing line is dropped with them).
// For dense outputs the resume rank is lowered to the file's line count when
// a buffered tail was lost, so no gap is possible; sparse outputs cannot
// reveal a lost tail and must therefore be written unbuffered. A missing
// file resumes from rank 0.
func RecoverOutput(path string, header int, j *Journal, stage string, rankOf func(line []byte) (int, bool)) (int, error) {
	resume := j.Last(SinkName(stage)) + 1
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("pipeline: recover output: %w", err)
	}
	defer f.Close()

	var (
		keep    int64 // byte length of the retained prefix
		scanned int64 // offset after the last complete line read
		lines   int   // complete lines read
		rows    int   // record lines retained
	)
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			break // EOF; an unterminated trailing line is dropped
		}
		scanned += int64(len(line))
		lines++
		if lines <= header {
			keep = scanned
			continue
		}
		rank := rows
		if rankOf != nil {
			rk, ok := rankOf(bytes.TrimSuffix(line, []byte{'\n'}))
			if !ok {
				break // unparseable record: truncate from here on
			}
			rank = rk
		}
		if rank >= resume {
			break // ahead of the watermark: these ranks will be redone
		}
		rows++
		keep = scanned
	}
	if rankOf == nil && rows < resume {
		resume = rows // the file lost a buffered tail the journal recorded
	}
	if resume == 0 {
		keep = 0 // nothing resumable: restart with a clean file
	}
	if err := os.Truncate(path, keep); err != nil {
		return 0, fmt.Errorf("pipeline: recover output: %w", err)
	}
	return resume, nil
}
