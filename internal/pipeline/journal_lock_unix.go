//go:build unix

package pipeline

import (
	"os"
	"syscall"
)

// lockFile takes the file's advisory exclusive lock (flock). Appends are
// single write(2) calls, so the lock's job is only to serialize appenders
// from different processes sharing one journal; EINTR is retried, any other
// failure degrades to the O_APPEND atomicity small writes already have.
func lockFile(f *os.File) {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
		if err != syscall.EINTR {
			return
		}
	}
}

// unlockFile releases the advisory lock.
func unlockFile(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN) //nolint:errcheck
}
