// Package pipeline is the repository's staged-dataflow engine: a Source
// feeding a chain of stages feeding a Sink, every hop a bounded channel, so a
// run over millions of ranks holds O(workers · queue depth) items in memory
// instead of the whole corpus. The population generator, the study
// orchestrator, and the differential-testing harness are all built on it —
// their batch APIs are thin wrappers that attach a collecting sink.
//
// The engine keeps the guarantees internal/parallel established for the
// batch paths:
//
//   - Determinism. Work is identified by a dense rank (0, 1, 2, ...); stage
//     functions derive any randomness from (seed, rank) alone, and a reorder
//     buffer at every stage exit releases results strictly in rank order.
//     The sink therefore observes exactly the serial order, bit-identical
//     for any worker count or queue depth.
//   - Cancellation. Every goroutine watches the run context; cancelling it
//     (or any stage returning an error) drains the whole graph promptly.
//   - Panic propagation. A panic in any stage worker is captured, the run is
//     cancelled, and the panic is re-raised on the goroutine that called
//     Drain — never silently swallowed, never deadlocking the graph.
//
// Backpressure falls out of the bounded hops: a slow stage fills its output
// queue, its reorder buffer fills, and upstream workers block until the
// consumer catches up. A faults.Policy on a stage retries transient per-item
// failures before they fail the run, and an attached Journal records the
// last retired rank per stage as a JSONL watermark stream so an interrupted
// run can resume where it stopped.
package pipeline

import (
	"context"
	"sync"

	"chainchaos/internal/faults"
	"chainchaos/internal/obs"
	"chainchaos/internal/parallel"
)

// Options configures a pipeline run (shared by every stage of one Flow).
type Options struct {
	// Name prefixes the run's metric names: pipeline.<stage>.* by default,
	// or <Name>.<stage>.* when set.
	Name string
	// Metrics, when non-nil, instruments every stage: an items counter, a
	// latency histogram, and an output queue-depth gauge per stage.
	Metrics *obs.Registry
	// Journal, when non-nil, receives per-stage retirement watermarks and
	// provides the resume point.
	Journal *Journal
	// Resume is the first rank the source emits (0 is a full run). Callers
	// resuming from a Journal pass Last(sinkStage)+1.
	Resume int
	// Limit, when > 0, is the first rank the source does NOT emit: the run
	// covers exactly [Resume, Limit). It is how a distributed worker executes
	// a leased sub-range of the population — per-rank seeding makes the
	// leased ranks bit-identical to the same ranks of a full-range run.
	Limit int
}

// item is one unit of work flowing between stages.
type item[T any] struct {
	rank int
	val  T
}

// run is the shared state of one pipeline execution.
type run struct {
	parent  context.Context // the caller's context; its Err outlives teardown
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	mu      sync.Mutex
	err     error
	panicV  any
	panicOK bool
	opts    Options
}

// fail records the run's first error and cancels the context. Subsequent
// errors (usually cancellation fallout) are dropped.
func (r *run) fail(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.cancel()
}

// panicked records a worker panic (first wins) and cancels the run.
func (r *run) panicked(v any) {
	r.mu.Lock()
	if !r.panicOK {
		r.panicOK = true
		r.panicV = v
	}
	r.mu.Unlock()
	r.cancel()
}

// finish waits for every goroutine, re-raises a captured panic, and returns
// the run's first error (a recorded failure wins over bare cancellation).
func (r *run) finish() error {
	r.wg.Wait()
	r.cancel()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.panicOK {
		panic(r.panicV)
	}
	if r.err != nil {
		return r.err
	}
	// The run context is cancelled as part of normal teardown; only the
	// caller's own cancellation is an error.
	return r.parent.Err()
}

// metricName builds "<run>.<stage>.<metric>".
func (r *run) metricName(stage, metric string) string {
	prefix := r.opts.Name
	if prefix == "" {
		prefix = "pipeline"
	}
	return prefix + "." + stage + "." + metric
}

// Flow is a pipeline whose last stage emits T values. Extend it with Through
// and terminate it with Drain or Collect (each Flow must be terminated
// exactly once).
type Flow[T any] struct {
	run  *run
	name string // name of the stage that feeds out
	out  <-chan item[T]
}

// queueDepth normalizes a queue depth: values <= 0 mean 2×workers.
func queueDepth(queue, workers int) int {
	if queue > 0 {
		return queue
	}
	return 2 * workers
}

// From starts a Flow: a single source goroutine calls next(rank) for
// rank = opts.Resume, Resume+1, ... and pushes each value into a bounded
// queue, stopping when next reports done, errors, or the run is cancelled.
// The source is serial by design — rank order is the pipeline's spine; put
// parallel work in a Through stage.
func From[T any](ctx context.Context, opts Options, name string, queue int, next func(rank int) (T, bool, error)) *Flow[T] {
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	r := &run{parent: parent, ctx: ctx, cancel: cancel, opts: opts}
	out := make(chan item[T], queueDepth(queue, 1))
	items := opts.Metrics.Counter(r.metricName(name, "items"))
	depth := opts.Metrics.Gauge(r.metricName(name, "queue"))

	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(out)
		defer func() {
			if v := recover(); v != nil {
				r.panicked(v)
			}
		}()
		for rank := opts.Resume; ctx.Err() == nil; rank++ {
			if opts.Limit > 0 && rank >= opts.Limit {
				return
			}
			v, ok, err := next(rank)
			if err != nil {
				r.fail(err)
				return
			}
			if !ok {
				return
			}
			select {
			case out <- item[T]{rank: rank, val: v}:
				items.Inc()
				depth.Set(int64(len(out)))
			case <-ctx.Done():
				return
			}
		}
	}()
	return &Flow[T]{run: r, name: name, out: out}
}

// Stage is one parallel processing step.
type Stage[In, Out any] struct {
	// Name labels the stage in metrics and journal entries.
	Name string
	// Workers bounds the stage's goroutines; <= 0 means GOMAXPROCS.
	Workers int
	// Queue bounds the stage's output channel; <= 0 means 2×workers.
	Queue int
	// Retry, when non-zero, re-runs Fn on transient errors (faults.Policy
	// semantics: bounded attempts, capped backoff, seeded jitter) before the
	// error fails the run.
	Retry faults.Policy
	// Fn processes one item. worker identifies the executing worker
	// (0 <= worker < Workers) so stages can keep per-worker scratch state;
	// rank is the item's position in the stream. Fn must be deterministic in
	// (rank, in) — never in worker or call order.
	Fn func(ctx context.Context, worker, rank int, in In) (Out, error)
	// OnWorker, when non-nil, is called once per worker before it processes
	// its first item; the returned func (if non-nil) runs at worker
	// retirement. Stages use it to build per-worker state (builders, rngs)
	// and flush per-worker tallies — the streaming equivalent of
	// internal/parallel's per-shard setup.
	OnWorker func(worker int) func()
}

// Through appends a stage to the flow. Workers consume the upstream channel
// freely, but a reorder buffer releases results strictly in rank order, so
// downstream stages and the sink observe the serial order regardless of
// scheduling. The buffer admits at most workers+queue out-of-order results
// (the rank currently blocking release is always admitted), which is what
// bounds the stage's memory and propagates backpressure upstream.
func Through[In, Out any](f *Flow[In], st Stage[In, Out]) *Flow[Out] {
	r := f.run
	workers := parallel.Workers(st.Workers)
	queue := queueDepth(st.Queue, workers)
	out := make(chan item[Out], queue)
	ro := newReorder[Out](r.ctx, out, workers+queue)
	ro.next = r.opts.Resume

	items := r.opts.Metrics.Counter(r.metricName(st.Name, "items"))
	depth := r.opts.Metrics.Gauge(r.metricName(st.Name, "queue"))
	latency := r.opts.Metrics.Histogram(r.metricName(st.Name, "latency"), obs.LatencyBuckets)
	retries := r.opts.Metrics.Counter(r.metricName(st.Name, "retries"))

	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		r.wg.Add(1)
		go func(worker int) {
			defer r.wg.Done()
			defer workerWG.Done()
			defer func() {
				if v := recover(); v != nil {
					r.panicked(v)
				}
			}()
			var retire func()
			if st.OnWorker != nil {
				retire = st.OnWorker(worker)
			}
			if retire != nil {
				defer retire()
			}
			for in := range f.out {
				if r.ctx.Err() != nil {
					return
				}
				began := r.opts.Metrics.Time()
				var outV Out
				attempt := 0
				err := st.Retry.Do(r.ctx, func(ctx context.Context) error {
					if attempt++; attempt > 1 {
						retries.Inc()
					}
					var fnErr error
					outV, fnErr = st.Fn(ctx, worker, in.rank, in.val)
					return fnErr
				})
				if err != nil {
					r.fail(err)
					return
				}
				latency.ObserveDuration(r.opts.Metrics.Time().Sub(began))
				items.Inc()
				if !ro.put(in.rank, outV) {
					return
				}
			}
		}(w)
	}

	// Releaser: waits for rank-ordered results, pushes them downstream, and
	// journals the stage's retirement watermark. It is the stage's only
	// sender on (and closer of) the out channel.
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(out)
		defer func() {
			if v := recover(); v != nil {
				r.panicked(v)
			}
		}()
		// Workers stop putting once the upstream channel closes; tell the
		// reorder buffer no further ranks are coming so it can drain out.
		go func() {
			workerWG.Wait()
			ro.closeInput()
		}()
		for {
			rank, v, ok := ro.take()
			if !ok {
				return
			}
			select {
			case out <- item[Out]{rank: rank, val: v}:
				depth.Set(int64(len(out)))
				r.opts.Journal.Retire(st.Name, rank)
			case <-r.ctx.Done():
				return
			}
		}
	}()
	return &Flow[Out]{run: r, name: st.Name, out: out}
}

// Drain terminates the flow on the calling goroutine: sink is invoked once
// per item in strict rank order. A sink error fails the run. Drain returns
// after every pipeline goroutine has stopped; a worker panic is re-raised
// here. The sink's retirement watermark is journaled under "<stage>.sink"
// where <stage> is the last stage's name.
func (f *Flow[T]) Drain(sink func(rank int, v T) error) error {
	r := f.run
	sinkStage := f.name + ".sink"
	sinkErr := false
	for it := range f.out {
		if r.ctx.Err() != nil {
			break
		}
		if err := sink(it.rank, it.val); err != nil {
			r.fail(err)
			sinkErr = true
			break
		}
		r.opts.Journal.Retire(sinkStage, it.rank)
	}
	r.cancel()
	if sinkErr {
		// Unblock upstream senders still parked on the out channel.
		for range f.out {
		}
	}
	return r.finish()
}

// SinkName returns the journal stage name Drain retires under for a flow
// whose final stage is named stage — callers resolving a resume point use
// Journal.Last(SinkName(stage)).
func SinkName(stage string) string { return stage + ".sink" }

// Collect terminates the flow by appending every value, in rank order, to a
// slice. It is the batch adapter: the pipeline's memory bound is forfeited,
// everything else (determinism, cancellation, instrumentation) is kept.
func Collect[T any](f *Flow[T]) ([]T, error) {
	var out []T
	err := f.Drain(func(_ int, v T) error {
		out = append(out, v)
		return nil
	})
	return out, err
}

// reorder releases stage results in rank order. Workers put completed ranks;
// a single taker (the stage releaser) removes them in order. Admission is
// capped so a stalled rank cannot let the buffer grow without bound: a put
// for a rank other than the next-to-release blocks once cap pending results
// are held. The next-to-release rank is always admitted, which keeps the
// graph deadlock-free (see the package comment on backpressure).
type reorder[T any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ctx     context.Context
	pending map[int]T
	next    int
	cap     int
	closed  bool // no further puts will arrive
}

func newReorder[T any](ctx context.Context, _ chan<- item[T], capacity int) *reorder[T] {
	ro := &reorder[T]{ctx: ctx, pending: make(map[int]T), cap: capacity}
	ro.cond = sync.NewCond(&ro.mu)
	// Wake all waiters when the run is cancelled so nothing stays parked on
	// the condition variable forever.
	go func() {
		<-ctx.Done()
		ro.mu.Lock()
		ro.cond.Broadcast()
		ro.mu.Unlock()
	}()
	return ro
}

// put hands a completed rank to the buffer, blocking while the buffer is at
// capacity (unless rank is the next to release). Returns false if the run
// was cancelled.
func (ro *reorder[T]) put(rank int, v T) bool {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	for len(ro.pending) >= ro.cap && rank != ro.next {
		if ro.ctx.Err() != nil {
			return false
		}
		ro.cond.Wait()
	}
	if ro.ctx.Err() != nil {
		return false
	}
	ro.pending[rank] = v
	ro.cond.Broadcast()
	return true
}

// take removes and returns the next rank in order, blocking until it is
// available. ok is false when the stream is exhausted or cancelled.
func (ro *reorder[T]) take() (rank int, v T, ok bool) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	for {
		if v, present := ro.pending[ro.next]; present {
			rank = ro.next
			delete(ro.pending, ro.next)
			ro.next++
			ro.cond.Broadcast()
			return rank, v, true
		}
		if ro.closed || ro.ctx.Err() != nil {
			var zero T
			return 0, zero, false
		}
		ro.cond.Wait()
	}
}

// closeInput marks that no further puts will arrive.
func (ro *reorder[T]) closeInput() {
	ro.mu.Lock()
	ro.closed = true
	ro.cond.Broadcast()
	ro.mu.Unlock()
}
