package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chainchaos/internal/faults"
	"chainchaos/internal/obs"
)

// source over [0, n): emits rank as the value.
func intSource(ctx context.Context, opts Options, n int) *Flow[int] {
	return From(ctx, opts, "src", 4, func(rank int) (int, bool, error) {
		return rank, rank < n, nil
	})
}

// TestOrderPreserved: randomized per-item delays must not reorder the sink's
// view — the reorder buffer releases strictly by rank.
func TestOrderPreserved(t *testing.T) {
	const n = 500
	f := intSource(context.Background(), Options{}, n)
	rng := rand.New(rand.NewSource(1))
	delays := make([]time.Duration, n)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
	}
	g := Through(f, Stage[int, int]{
		Name: "jitter", Workers: 8,
		Fn: func(_ context.Context, _, rank int, v int) (int, error) {
			time.Sleep(delays[rank])
			return v * 3, nil
		},
	})
	got, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("collected %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("rank %d: got %d, want %d", i, v, i*3)
		}
	}
}

// TestWorkerAndQueueInvariance: the collected output is bit-identical for
// any (workers, queue) combination.
func TestWorkerAndQueueInvariance(t *testing.T) {
	const n = 300
	runWith := func(workers, queue int) []int {
		f := intSource(context.Background(), Options{}, n)
		g := Through(f, Stage[int, int]{
			Name: "sq", Workers: workers, Queue: queue,
			Fn: func(_ context.Context, _, rank int, v int) (int, error) {
				return v*v + rank, nil
			},
		})
		out, err := Collect(g)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := runWith(1, 1)
	for _, cfg := range [][2]int{{2, 1}, {4, 8}, {16, 2}, {64, 64}} {
		got := runWith(cfg[0], cfg[1])
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d queue=%d: rank %d = %d, want %d",
					cfg[0], cfg[1], i, got[i], want[i])
			}
		}
	}
}

// TestBoundedInFlight: with one stalled rank, the number of items past the
// source but not yet retired must stay O(workers + queue), never O(n) — the
// memory bound the streaming refactor exists for.
func TestBoundedInFlight(t *testing.T) {
	const (
		n       = 2000
		workers = 4
		queue   = 4
	)
	release := make(chan struct{})
	var inFlight, maxInFlight atomic.Int64
	f := From(context.Background(), Options{}, "src", queue, func(rank int) (int, bool, error) {
		if rank >= n {
			return 0, false, nil
		}
		cur := inFlight.Add(1)
		for {
			prev := maxInFlight.Load()
			if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
				break
			}
		}
		return rank, true, nil
	})
	g := Through(f, Stage[int, int]{
		Name: "stall", Workers: workers, Queue: queue,
		Fn: func(_ context.Context, _, rank int, v int) (int, error) {
			if rank == 0 {
				<-release // rank 0 blocks the whole reorder buffer
			}
			return v, nil
		},
	})
	done := make(chan error, 1)
	var retired atomic.Int64
	go func() {
		done <- g.Drain(func(int, int) error {
			retired.Add(1)
			inFlight.Add(-1)
			return nil
		})
	}()
	// Let the pipeline fill to its bound, then release the stalled rank.
	time.Sleep(50 * time.Millisecond)
	if retired.Load() != 0 {
		t.Fatal("items retired while rank 0 was stalled")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if retired.Load() != n {
		t.Fatalf("retired %d, want %d", retired.Load(), n)
	}
	// Generous bound: every hop's buffer plus every worker plus the reorder
	// slack. The point is it must be far below n.
	bound := int64(4*(workers+queue) + 2*workers + 8)
	if got := maxInFlight.Load(); got > bound {
		t.Errorf("max in-flight = %d exceeds bound %d (n=%d)", got, bound, n)
	}
}

// TestStageErrorFailsRun: a stage error cancels the run and surfaces as
// Drain's return value.
func TestStageErrorFailsRun(t *testing.T) {
	boom := errors.New("boom at rank 37")
	f := intSource(context.Background(), Options{}, 10000)
	g := Through(f, Stage[int, int]{
		Name: "explode", Workers: 4,
		Fn: func(_ context.Context, _, rank int, v int) (int, error) {
			if rank == 37 {
				return 0, boom
			}
			return v, nil
		},
	})
	_, err := Collect(g)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestSinkErrorFailsRun: an error from the sink stops the pipeline too.
func TestSinkErrorFailsRun(t *testing.T) {
	stop := errors.New("sink full")
	f := intSource(context.Background(), Options{}, 10000)
	g := Through(f, Stage[int, int]{Name: "id", Workers: 4,
		Fn: func(_ context.Context, _, _ int, v int) (int, error) { return v, nil }})
	err := g.Drain(func(rank int, _ int) error {
		if rank == 10 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want %v", err, stop)
	}
}

// TestPanicPropagates: a worker panic is re-raised on the Drain goroutine.
func TestPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic swallowed")
		}
		if fmt.Sprint(r) != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	f := intSource(context.Background(), Options{}, 1000)
	g := Through(f, Stage[int, int]{
		Name: "panic", Workers: 4,
		Fn: func(_ context.Context, _, rank int, v int) (int, error) {
			if rank == 123 {
				panic("kaboom")
			}
			return v, nil
		},
	})
	_, _ = Collect(g)
}

// TestCancelStopsRun: cancelling the parent context stops the pipeline
// promptly with the context's error.
func TestCancelStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	f := intSource(ctx, Options{}, 1<<30) // effectively unbounded
	g := Through(f, Stage[int, int]{Name: "id", Workers: 4,
		Fn: func(_ context.Context, _, _ int, v int) (int, error) { return v, nil }})
	var n atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- g.Drain(func(int, int) error { n.Add(1); return nil })
	}()
	for n.Load() < 100 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline did not stop after cancellation")
	}
}

// TestRetryPolicyAbsorbsTransients: a stage with a Retry policy survives
// transient failures, counts the retries, and the output is unaffected.
func TestRetryPolicyAbsorbsTransients(t *testing.T) {
	const n = 50
	reg := obs.NewRegistry()
	clock := faults.NewFakeClock(time.Unix(0, 0))
	var mu sync.Mutex
	failedOnce := map[int]bool{}
	f := intSource(context.Background(), Options{Metrics: reg}, n)
	g := Through(f, Stage[int, int]{
		Name: "flaky", Workers: 4,
		Retry: faults.Policy{
			Attempts: 3, BaseDelay: time.Millisecond, Clock: clock,
			Retryable: func(error) bool { return true },
		},
		Fn: func(_ context.Context, _, rank int, v int) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			// Every third rank fails its first attempt and passes the retry.
			if rank%3 == 0 && !failedOnce[rank] {
				failedOnce[rank] = true
				return 0, fmt.Errorf("transient failure at rank %d", rank)
			}
			return v, nil
		},
	})
	got, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("rank %d: got %d", i, v)
		}
	}
	if c := reg.Snapshot().Counters["pipeline.flaky.retries"]; c == 0 {
		t.Error("retries counter = 0, want > 0")
	}
	if clock.SleptTotal() == 0 {
		t.Error("retry backoff never slept on the injected clock")
	}
}

// TestStageMetrics: items counters, latency histograms, and queue gauges are
// published under the run's prefix.
func TestStageMetrics(t *testing.T) {
	const n = 200
	reg := obs.NewRegistry()
	f := intSource(context.Background(), Options{Metrics: reg, Name: "tp"}, n)
	g := Through(f, Stage[int, int]{Name: "work", Workers: 4,
		Fn: func(_ context.Context, _, _ int, v int) (int, error) { return v, nil }})
	if _, err := Collect(g); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if c := snap.Counters["tp.src.items"]; c != n {
		t.Errorf("tp.src.items = %d, want %d", c, n)
	}
	if c := snap.Counters["tp.work.items"]; c != n {
		t.Errorf("tp.work.items = %d, want %d", c, n)
	}
	if h := snap.Histograms["tp.work.latency"]; h.Count != n {
		t.Errorf("tp.work.latency count = %d, want %d", h.Count, n)
	}
	if _, ok := snap.Gauges["tp.work.queue"]; !ok {
		t.Error("tp.work.queue gauge missing")
	}
}

// TestOnWorkerHooks: OnWorker fires once per worker, retirements run at
// worker exit, and hooks see the correct worker indices.
func TestOnWorkerHooks(t *testing.T) {
	const workers = 5
	var started, retired atomic.Int64
	f := intSource(context.Background(), Options{}, 1000)
	g := Through(f, Stage[int, int]{
		Name: "hooked", Workers: workers,
		OnWorker: func(worker int) func() {
			if worker < 0 || worker >= workers {
				t.Errorf("worker index %d out of range", worker)
			}
			started.Add(1)
			return func() { retired.Add(1) }
		},
		Fn: func(_ context.Context, _, _ int, v int) (int, error) { return v, nil },
	})
	if _, err := Collect(g); err != nil {
		t.Fatal(err)
	}
	if started.Load() != workers || retired.Load() != workers {
		t.Fatalf("hooks: started=%d retired=%d, want %d each", started.Load(), retired.Load(), workers)
	}
}

// TestTwoStageChain: stages compose; both reorder buffers hold.
func TestTwoStageChain(t *testing.T) {
	const n = 400
	f := intSource(context.Background(), Options{}, n)
	g := Through(f, Stage[int, int]{Name: "a", Workers: 7,
		Fn: func(_ context.Context, _, _ int, v int) (int, error) { return v + 1, nil }})
	h := Through(g, Stage[int, string]{Name: "b", Workers: 3,
		Fn: func(_ context.Context, _, _ int, v int) (string, error) { return fmt.Sprint(v * 2), nil }})
	got, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range got {
		if want := fmt.Sprint((i + 1) * 2); s != want {
			t.Fatalf("rank %d: got %q want %q", i, s, want)
		}
	}
}

// TestStageLatencyFakeClock: stage latency must be measured on the metrics
// registry's injectable clock, not the wall clock. With a FakeClock that the
// stage Fn advances by a fixed amount per item, the latency histogram records
// exactly that amount for every item — count, sum, and quantiles are all
// asserted to the nanosecond.
func TestStageLatencyFakeClock(t *testing.T) {
	const (
		n    = 8
		step = 7 * time.Millisecond
	)
	clock := faults.NewFakeClock(time.Date(2024, 3, 15, 12, 0, 0, 0, time.UTC))
	reg := obs.NewRegistry()
	reg.Now = clock.Now

	f := intSource(context.Background(), Options{Name: "fc", Metrics: reg}, n)
	g := Through(f, Stage[int, int]{
		// A single worker keeps the clock advances strictly interleaved with
		// the start/stop reads, so every observed latency is exactly one step.
		Name: "tick", Workers: 1,
		Fn: func(_ context.Context, _, _ int, v int) (int, error) {
			clock.Advance(step)
			return v, nil
		},
	})
	if _, err := Collect(g); err != nil {
		t.Fatal(err)
	}

	h := reg.Histogram("fc.tick.latency", obs.LatencyBuckets)
	if h.Count() != n {
		t.Fatalf("latency count = %d, want %d", h.Count(), n)
	}
	if want := int64(n) * int64(step); h.Sum() != want {
		t.Fatalf("latency sum = %d ns, want exactly %d ns", h.Sum(), want)
	}
}
