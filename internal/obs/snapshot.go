package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"chainchaos/internal/report"
)

// HistogramStat is the exported state of one histogram: totals plus the
// p50/p95/p99 estimates the pipeline tables print.
type HistogramStat struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// TimerStat is the exported state of one stage timer.
type TimerStat struct {
	Count   int64         `json:"count"`
	TotalNS time.Duration `json:"total_ns"`
}

// Snapshot is a point-in-time export of a registry. Maps marshal with sorted
// keys (encoding/json's map behaviour), so two snapshots of identical state
// produce identical bytes — the determinism the FakeClock tests assert.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]int64         `json:"gauges,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
	Timers     map[string]TimerStat     `json:"timers,omitempty"`
}

// Snapshot exports the registry's current state. Individual metric reads are
// atomic; the snapshot as a whole is not a consistent cut under concurrent
// writers (take it after the pipeline quiesces for exact totals). Returns an
// empty snapshot on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramStat{},
		Timers:     map[string]TimerStat{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = HistogramStat{
			Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		}
	}
	for name, t := range r.timers {
		snap.Timers[name] = TimerStat{Count: t.Count(), TotalNS: t.Total()}
	}
	return snap
}

// MarshalJSON-friendly export: MarshalIndent for the -metrics dump files.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// sortedKeys returns the sorted key set of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Tables renders the snapshot as report tables: one for counters and gauges,
// one for histograms (count/p50/p95/p99), and the pipeline table of stage
// timers. Empty sections are omitted.
func (s *Snapshot) Tables() []*report.Table {
	var tables []*report.Table
	if len(s.Counters) > 0 || len(s.Gauges) > 0 {
		t := report.New("metrics — counters and gauges", "Metric", "Value")
		for _, name := range sortedKeys(s.Counters) {
			t.Addf(name, s.Counters[name])
		}
		for _, name := range sortedKeys(s.Gauges) {
			t.Addf(name+" (gauge)", s.Gauges[name])
		}
		tables = append(tables, t)
	}
	if len(s.Histograms) > 0 {
		t := report.New("metrics — latency and size distributions",
			"Histogram", "Count", "p50", "p95", "p99")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			t.Add(name, fmt.Sprintf("%d", h.Count),
				histCell(name, h.P50), histCell(name, h.P95), histCell(name, h.P99))
		}
		tables = append(tables, t)
	}
	if pt := s.PipelineTable(); pt != nil {
		tables = append(tables, pt)
	}
	return tables
}

// PipelineTable renders the stage timers as the per-stage accounting table
// ("pipeline") the study report embeds; nil when no stage was timed.
func (s *Snapshot) PipelineTable() *report.Table {
	if len(s.Timers) == 0 {
		return nil
	}
	t := report.New("pipeline — per-stage wall time", "Stage", "Intervals", "Total", "Mean")
	for _, name := range sortedKeys(s.Timers) {
		ts := s.Timers[name]
		mean := time.Duration(0)
		if ts.Count > 0 {
			mean = ts.TotalNS / time.Duration(ts.Count)
		}
		t.Add(name, fmt.Sprintf("%d", ts.Count),
			ts.TotalNS.Round(time.Microsecond).String(),
			mean.Round(time.Microsecond).String())
	}
	return t
}

// histCell renders a histogram quantile: durations for latency histograms
// (names ending in "latency" or "wall"), plain numbers otherwise.
func histCell(name string, v int64) string {
	if n := len(name); (n >= 7 && name[n-7:] == "latency") || (n >= 4 && name[n-4:] == "wall") {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", v)
}
