package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bucket layout for network latencies: upper
// bounds in nanoseconds, exponential from 100µs to 30s. The span covers
// everything the pipeline times — loopback handshakes land in the first few
// buckets, stalled/retried ones toward the tail, and the +Inf bucket catches
// pathology.
var LatencyBuckets = durations(
	100*time.Microsecond, 250*time.Microsecond, 500*time.Microsecond,
	time.Millisecond, 2500*time.Microsecond, 5*time.Millisecond,
	10*time.Millisecond, 25*time.Millisecond, 50*time.Millisecond,
	100*time.Millisecond, 250*time.Millisecond, 500*time.Millisecond,
	time.Second, 2500*time.Millisecond, 5*time.Second,
	10*time.Second, 30*time.Second,
)

// SizeBuckets is the default bucket layout for small cardinalities — chain
// lengths, candidate counts per step, path lengths.
var SizeBuckets = []int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

func durations(ds ...time.Duration) []int64 {
	out := make([]int64, len(ds))
	for i, d := range ds {
		out[i] = int64(d)
	}
	return out
}

// Histogram is a fixed-bucket histogram over int64 observations (nanoseconds
// for latencies, plain counts for sizes). Buckets are chosen at creation and
// never change, so Observe is lock-free: a binary search over the bounds and
// two atomic adds.
type Histogram struct {
	bounds  []int64        // sorted upper bounds; observations > last land in the overflow bucket
	buckets []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records v. No-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds. No-op on nil.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations; 0 on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Tally is a single-goroutine accumulator for a histogram. Hot loops that
// observe per item from many workers would ping-pong the histogram's shared
// cache lines on every event; a Tally updates plain ints locally and Flush
// publishes the whole batch with one atomic add per touched bucket. A nil
// Tally (from a nil Histogram) is a no-op everywhere.
type Tally struct {
	h       *Histogram
	buckets []int64
	count   int64
	sum     int64
}

// Tally creates a local accumulator for h; nil on a nil histogram.
func (h *Histogram) Tally() *Tally {
	if h == nil {
		return nil
	}
	return &Tally{h: h, buckets: make([]int64, len(h.buckets))}
}

// Observe records v locally. No-op on nil.
func (t *Tally) Observe(v int64) {
	if t == nil {
		return
	}
	i := sort.Search(len(t.h.bounds), func(i int) bool { return t.h.bounds[i] >= v })
	t.buckets[i]++
	t.count++
	t.sum += v
}

// Flush publishes the batch into the histogram and resets the tally. No-op
// on nil or when empty.
func (t *Tally) Flush() {
	if t == nil || t.count == 0 {
		return
	}
	for i, n := range t.buckets {
		if n != 0 {
			t.h.buckets[i].Add(n)
			t.buckets[i] = 0
		}
	}
	t.h.count.Add(t.count)
	t.h.sum.Add(t.sum)
	t.count, t.sum = 0, 0
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank; observations in the overflow
// bucket report the largest finite bound. Returns 0 with no observations or
// on nil.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if seen+n < rank {
			seen += n
			continue
		}
		if i >= len(h.bounds) {
			// Overflow bucket: no finite upper bound to interpolate
			// against; report the largest finite bound.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := int64(0)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - seen) / n
		return lo + int64(float64(hi-lo)*frac)
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}
