package obs

import "testing"

// TestRecordMaxRSS: on Linux the gauge reports a live process's peak RSS —
// strictly positive and visible in the snapshot.
func TestRecordMaxRSS(t *testing.T) {
	kb := MaxRSSKB()
	if kb <= 0 {
		t.Skip("no procfs VmHWM on this platform")
	}
	r := NewRegistry()
	r.RecordMaxRSS()
	got := r.Snapshot().Gauges["proc.max_rss_kb"]
	if got <= 0 {
		t.Fatalf("proc.max_rss_kb = %d, want > 0", got)
	}
}
