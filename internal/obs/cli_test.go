package obs

import (
	"strings"
	"testing"
)

// TestCLIValidate covers every distributed-flag combination the commands can
// see: each contradictory or orphaned combination is rejected with a
// diagnostic naming the offending flag, and every legitimate mode passes.
func TestCLIValidate(t *testing.T) {
	cases := []struct {
		name    string
		cli     CLI
		wantErr string // substring of the diagnostic; empty = valid
	}{
		{"zero-value", CLI{}, ""},
		{"coordinator", CLI{Distribute: 4}, ""},
		{"coordinator-listen", CLI{Distribute: 4, DistListen: "127.0.0.1:9999"}, ""},
		{"coordinator-lease", CLI{Distribute: 4, DistLease: 5000}, ""},
		{"coordinator-listen-lease", CLI{Distribute: 2, DistListen: ":0", DistLease: 64}, ""},
		{"worker-stdio", CLI{Worker: true}, ""},
		{"worker-connect", CLI{Worker: true, Connect: "127.0.0.1:9999"}, ""},

		{"worker-and-distribute", CLI{Worker: true, Distribute: 4}, "mutually exclusive"},
		{"worker-and-distribute-connect", CLI{Worker: true, Distribute: 4, Connect: "x:1"}, "mutually exclusive"},
		{"connect-without-worker", CLI{Connect: "127.0.0.1:9999"}, "-connect"},
		{"connect-on-coordinator", CLI{Distribute: 4, Connect: "127.0.0.1:9999"}, "-connect"},
		{"dist-listen-without-distribute", CLI{DistListen: ":7000"}, "-dist-listen"},
		{"dist-listen-on-worker", CLI{Worker: true, DistListen: ":7000"}, "-dist-listen"},
		{"dist-lease-without-distribute", CLI{DistLease: 1000}, "-dist-lease"},
		{"dist-lease-on-worker", CLI{Worker: true, DistLease: 1000}, "-dist-lease"},
		{"negative-distribute", CLI{Distribute: -1}, "-distribute"},
		{"negative-lease", CLI{Distribute: 2, DistLease: -5}, "-dist-lease"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cli.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}
