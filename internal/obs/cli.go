package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// StartPprof serves the net/http/pprof handlers on addr (e.g.
// "localhost:6060") in a background goroutine, returning the bound address.
// The commands expose it behind a -pprof flag so a long scan can be profiled
// live; an empty addr is a no-op returning "".
//
// The listener is bound synchronously — a bad address fails here, not later
// in a goroutine whose error nobody sees.
func StartPprof(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux) //nolint:errcheck // dies with the process
	return ln.Addr().String(), nil
}

// WriteJSON renders the registry's snapshot as indented JSON and writes it
// to path — the -metrics flag's implementation. A nil registry writes an
// empty snapshot, so the flag behaves identically whether or not the run
// wired metrics.
func WriteJSON(r *Registry, path string) error {
	data, err := r.Snapshot().JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
