package obs

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// CLI owns the flag wiring the long-running commands used to copy-paste:
// the worker/retry knobs and the -metrics/-pprof observability pair. A
// command binds the flags it wants before flag.Parse, calls Start after,
// and Finish once the run is done:
//
//	cli := obs.NewCLI("study")
//	cli.BindWorkers("parallel workers for the grading loop (0 = GOMAXPROCS)")
//	cli.BindObs()
//	flag.Parse()
//	cli.Start()
//	... run with cli.Workers / cli.Metrics ...
//	cli.Finish()
type CLI struct {
	// Prog prefixes every diagnostic ("study: ...").
	Prog string
	// Workers is the -workers value once parsed (0 = GOMAXPROCS).
	Workers int
	// Retries is the -retries value once parsed.
	Retries int
	// Metrics is the run's registry; always non-nil so commands can wire it
	// unconditionally. It is only exported when -metrics names a file.
	Metrics *Registry

	// Distribute is the -distribute value once parsed: the number of worker
	// processes a distributed run fans out to (0 = single-process).
	Distribute int
	// Worker is true when this process was started as a -worker: it speaks
	// the dist wire protocol on stdin/stdout (or the -connect address) and
	// must write nothing else to stdout.
	Worker bool
	// Connect is the coordinator address a -worker dials; empty means the
	// worker was fork/exec'd and serves on stdio.
	Connect string
	// DistListen, when set on a coordinator, accepts workers on this TCP
	// address instead of fork/exec'ing them — remote workers run the same
	// command with -worker -connect <addr>.
	DistListen string
	// DistLease is the -dist-lease value: ranks per lease (0 = auto,
	// span/(8·workers) capped below at 64). Larger leases amortize per-lease
	// substrate setup — under -dedup every lease re-deploys and re-scans the
	// distinct-chain pool it encounters — at the cost of a coarser redo unit
	// when a worker dies.
	DistLease int

	// LedgerBatch is the -ledger-batch value: leaves per anchored Merkle
	// batch in a checkpointed run (0 disables the ledger entirely).
	LedgerBatch int
	// LedgerLatency is the -ledger-latency value: how long appended records
	// may sit without a (partial) anchor commitment; 0 anchors only at batch
	// boundaries.
	LedgerLatency time.Duration
	// LedgerSidecar is the -ledger-sidecar value: the leaf-hash sidecar file
	// letting ledgerverify name the exact tampered rank.
	LedgerSidecar string

	metricsFile string
	pprofAddr   string
}

// NewCLI creates the flag helper for a command named prog.
func NewCLI(prog string) *CLI {
	return &CLI{Prog: prog, Metrics: NewRegistry()}
}

// BindWorkers registers -workers on the default flag set.
func (c *CLI) BindWorkers(usage string) {
	if usage == "" {
		usage = "parallel workers (0 = GOMAXPROCS)"
	}
	flag.IntVar(&c.Workers, "workers", 0, usage)
}

// BindRetries registers -retries with the command's default attempt budget.
func (c *CLI) BindRetries(def int, usage string) {
	if usage == "" {
		usage = "extra attempts after a transient failure (0 = try once)"
	}
	flag.IntVar(&c.Retries, "retries", def, usage)
}

// BindDistribute registers the distributed-execution trio: -distribute N
// runs the command as a coordinator fanning out to N worker processes,
// -worker marks a process as one of those workers, and -connect points a
// worker at a remote coordinator's TCP listener instead of stdio.
func (c *CLI) BindDistribute() {
	flag.IntVar(&c.Distribute, "distribute", 0, "fan the run out to this many worker processes (0 = single-process)")
	flag.BoolVar(&c.Worker, "worker", false, "serve as a distributed worker (stdout is the wire protocol)")
	flag.StringVar(&c.Connect, "connect", "", "coordinator address a -worker dials (empty = stdio to the parent)")
	flag.StringVar(&c.DistListen, "dist-listen", "", "accept -distribute workers on this TCP address instead of spawning them locally")
	flag.IntVar(&c.DistLease, "dist-lease", 0, "ranks per lease in a distributed run (0 = auto; larger leases amortize per-lease setup, smaller ones bound the redo window)")
}

// BindLedger registers the tamper-evident ledger trio. The ledger is active
// whenever the run checkpoints (-checkpoint) and -ledger-batch is non-zero:
// every emitted record line becomes a Merkle leaf, batch roots anchor into
// the checkpoint journal, and cmd/ledgerverify audits the output against
// them afterwards.
func (c *CLI) BindLedger() {
	flag.IntVar(&c.LedgerBatch, "ledger-batch", 1024, "leaves per anchored Merkle batch in a checkpointed run (0 disables the ledger)")
	flag.DurationVar(&c.LedgerLatency, "ledger-latency", 0, "flush a provisional anchor when records sit unanchored this long (0 = batch boundaries only)")
	flag.StringVar(&c.LedgerSidecar, "ledger-sidecar", "", "write one leaf hash per record to this file so ledgerverify can name the exact tampered rank")
}

// BindObs registers the -metrics and -pprof pair.
func (c *CLI) BindObs() {
	flag.StringVar(&c.metricsFile, "metrics", "", "write the run's metrics snapshot as JSON to this file")
	flag.StringVar(&c.pprofAddr, "pprof", "", "serve net/http/pprof on this address for the run's duration")
}

// Validate rejects contradictory or orphaned distributed-flag combinations.
// Each of the five flags has a governing mode: -distribute marks a
// coordinator, -worker marks a worker, and the two are mutually exclusive;
// -connect is meaningful only on a worker, -dist-listen and -dist-lease only
// on a coordinator. Silently accepting a stray flag (the pre-PR-8 behaviour)
// meant, e.g., `-worker -distribute 4` ran as a worker that never fanned out,
// with nothing telling the operator which half of the command line won.
func (c *CLI) Validate() error {
	if c.Distribute < 0 {
		return fmt.Errorf("-distribute %d: worker count cannot be negative", c.Distribute)
	}
	if c.DistLease < 0 {
		return fmt.Errorf("-dist-lease %d: lease size cannot be negative", c.DistLease)
	}
	if c.Worker && c.Distribute > 0 {
		return errors.New("-worker and -distribute are mutually exclusive (a process is a coordinator or a worker, never both)")
	}
	if c.Connect != "" && !c.Worker {
		return fmt.Errorf("-connect %s requires -worker (only a worker dials a coordinator)", c.Connect)
	}
	if c.DistListen != "" && c.Distribute == 0 {
		return fmt.Errorf("-dist-listen %s requires -distribute (only a coordinator accepts workers)", c.DistListen)
	}
	if c.DistLease > 0 && c.Distribute == 0 {
		return fmt.Errorf("-dist-lease %d requires -distribute (lease size is a coordinator knob)", c.DistLease)
	}
	if c.LedgerBatch < 0 {
		return fmt.Errorf("-ledger-batch %d: batch size cannot be negative", c.LedgerBatch)
	}
	if c.LedgerLatency < 0 {
		return fmt.Errorf("-ledger-latency %s: latency cannot be negative", c.LedgerLatency)
	}
	if c.LedgerSidecar != "" && c.LedgerBatch == 0 {
		return errors.New("-ledger-sidecar requires -ledger-batch > 0 (the sidecar is part of the ledger)")
	}
	return nil
}

// Start performs the post-Parse setup (flag validation, then the pprof
// listener), exiting with a diagnostic on failure so every command reports
// errors the same way. Commands that branch into -worker mode before Start
// must call Validate themselves — the worker path returns early.
func (c *CLI) Start() {
	if err := c.Validate(); err != nil {
		c.Fatal(err)
	}
	addr, err := StartPprof(c.pprofAddr)
	if err != nil {
		c.Fatal(err)
	}
	if addr != "" {
		fmt.Fprintf(os.Stderr, "%s: pprof on http://%s/debug/pprof/\n", c.Prog, addr)
	}
}

// Finish exports the metrics snapshot when -metrics was given. The snapshot
// includes the run's peak RSS (proc.max_rss_kb), so the JSON doubles as the
// memory record for benchmark scripts.
func (c *CLI) Finish() {
	if c.metricsFile == "" {
		return
	}
	c.Metrics.RecordMaxRSS()
	if err := WriteJSON(c.Metrics, c.metricsFile); err != nil {
		c.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: metrics written to %s\n", c.Prog, c.metricsFile)
}

// Fatal prints a prog-prefixed diagnostic and exits non-zero — the error
// path every command previously hand-rolled.
func (c *CLI) Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", c.Prog, err)
	os.Exit(1)
}

// StartPprof serves the net/http/pprof handlers on addr (e.g.
// "localhost:6060") in a background goroutine, returning the bound address.
// The commands expose it behind a -pprof flag so a long scan can be profiled
// live; an empty addr is a no-op returning "".
//
// The listener is bound synchronously — a bad address fails here, not later
// in a goroutine whose error nobody sees.
func StartPprof(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux) //nolint:errcheck // dies with the process
	return ln.Addr().String(), nil
}

// WriteJSON renders the registry's snapshot as indented JSON and writes it
// to path — the -metrics flag's implementation. A nil registry writes an
// empty snapshot, so the flag behaves identically whether or not the run
// wired metrics.
func WriteJSON(r *Registry, path string) error {
	data, err := r.Snapshot().JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
