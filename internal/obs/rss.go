package obs

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// MaxRSSKB returns the process's peak resident set size in kilobytes, read
// from /proc/self/status (VmHWM). It returns 0 on platforms without procfs —
// callers treat a zero as "unavailable", never as a measurement.
func MaxRSSKB() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, "VmHWM:"))
		if len(fields) == 0 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

// RecordMaxRSS publishes the peak RSS as the proc.max_rss_kb gauge, so a
// -metrics JSON doubles as the memory record of a run (the box has no GNU
// time). A zero reading (no procfs) records nothing.
func (r *Registry) RecordMaxRSS() {
	if kb := MaxRSSKB(); kb > 0 {
		r.Gauge("proc.max_rss_kb").Set(kb)
	}
}
