// Package obs is the repository's observability substrate: a dependency-free
// metrics registry of atomic counters, gauges, fixed-bucket histograms and
// named stage timers, built for instrumenting the scan→build→diff pipeline
// without perturbing it.
//
// The design goals, in order:
//
//   - Allocation-lean hot path. Instrumented code resolves its metric handles
//     once (Registry lookups take a lock) and then updates them with single
//     atomic operations — no map lookups, no interface boxing, no allocation
//     per event.
//   - Nil-safety. Every handle method is a no-op on a nil receiver and every
//     Registry getter returns nil from a nil registry, so components carry an
//     optional *Registry and instrument unconditionally; an unwired pipeline
//     pays one predictable branch per event.
//   - Deterministic snapshots. Registries take their time from an injectable
//     Now func (tests wire a faults.FakeClock), snapshot maps render in
//     sorted key order, and the JSON encoding is byte-stable for a given
//     state — the property the fault-injection tests assert.
//
// The paper's credibility rests on measurement transparency: every rate in
// Tables 3–11 is backed by a count of handshakes, AIA fetches, construction
// attempts and retries, and this package is where those counts live.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is valid everywhere and yields nil handles,
// whose methods are no-ops.
type Registry struct {
	// Now is the registry's time source, used by stage timers and snapshot
	// timestamps; nil means time.Now. Tests inject a fake clock's Now so
	// timer output is deterministic.
	Now func() time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// NewRegistry creates an empty registry on the wall clock.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// now returns the registry's current time.
func (r *Registry) now() time.Time {
	if r != nil && r.Now != nil {
		return r.Now()
	}
	return time.Now()
}

// Time returns the registry's current time: the injected Now when set, the
// wall clock otherwise. Safe on a nil registry. Instrumented code that needs
// a raw timestamp (rather than a Timer) reads it here so latency measurements
// stay deterministic under a fake clock.
func (r *Registry) Time() time.Time { return r.now() }

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later callers share the first creation's
// buckets). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Timer returns the named stage timer, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{reg: r}
		r.timers[name] = t
	}
	return t
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n to the gauge. No-op on nil.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value; 0 on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates the wall time of a named pipeline stage: total duration
// and the number of timed intervals. Stage timings use the registry's Now.
type Timer struct {
	reg   *Registry
	total atomic.Int64 // nanoseconds
	count atomic.Int64
}

// Observe records one interval of duration d. No-op on nil.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.total.Add(int64(d))
	t.count.Add(1)
}

// Start begins timing an interval; call Stop on the returned Stopwatch to
// record it. Valid on a nil timer (Stop is then a no-op), so stage code does
// not branch on whether metrics are wired.
func (t *Timer) Start() Stopwatch {
	if t == nil {
		return Stopwatch{}
	}
	return Stopwatch{timer: t, began: t.reg.now()}
}

// Total returns the accumulated duration; 0 on nil.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total.Load())
}

// Count returns how many intervals were recorded; 0 on nil.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Stopwatch is one in-flight timer interval. The zero value's Stop is a
// no-op.
type Stopwatch struct {
	timer *Timer
	began time.Time
}

// Stop records the interval on the owning timer and returns its duration
// (0 on the zero Stopwatch).
func (s Stopwatch) Stop() time.Duration {
	if s.timer == nil {
		return 0
	}
	d := s.timer.reg.now().Sub(s.began)
	s.timer.Observe(d)
	return d
}
