package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"chainchaos/internal/faults"
	"chainchaos/internal/parallel"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	// Every handle off a nil registry must be nil and every method a no-op.
	r.Counter("c").Inc()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1)
	r.Histogram("h", LatencyBuckets).Observe(42)
	r.Histogram("h", LatencyBuckets).ObserveDuration(time.Second)
	r.Timer("t").Observe(time.Second)
	sw := r.Timer("t").Start()
	if d := sw.Stop(); d != 0 {
		t.Fatalf("nil stopwatch duration = %v, want 0", d)
	}
	if v := r.Counter("c").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	snap := r.Snapshot()
	if snap == nil {
		t.Fatal("nil registry snapshot must be non-nil")
	}
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Timers) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if _, err := snap.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]int64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20]: p50 sits exactly on the
	// boundary of the first bucket, p95 interpolates inside the second.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if got := h.Count(); got != 20 {
		t.Fatalf("count = %d, want 20", got)
	}
	if got := h.Sum(); got != 200 {
		t.Fatalf("sum = %d, want 200", got)
	}
	if got := h.Quantile(0.50); got != 10 {
		t.Fatalf("p50 = %d, want 10", got)
	}
	if got := h.Quantile(0.95); got <= 10 || got > 20 {
		t.Fatalf("p95 = %d, want within (10,20]", got)
	}
	if got := h.Quantile(1.0); got != 20 {
		t.Fatalf("p100 = %d, want 20", got)
	}
	// Overflow bucket reports the largest finite bound.
	h2 := newHistogram([]int64{10})
	h2.Observe(1_000_000)
	if got := h2.Quantile(0.5); got != 10 {
		t.Fatalf("overflow quantile = %d, want 10", got)
	}
	// Empty histogram.
	if got := newHistogram([]int64{10}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
}

// TestConcurrentExactTotals hammers one counter, one histogram, and one timer
// from parallel.For workers and asserts the totals are exact — the atomic
// counters must not drop updates under contention. Run with -race in CI.
func TestConcurrentExactTotals(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer.count")
	h := r.Histogram("hammer.hist", SizeBuckets)
	tm := r.Timer("hammer.timer")

	const n = 10_000
	parallel.For(context.Background(), n, 8, func(i int) {
		c.Inc()
		h.Observe(int64(i%64 + 1))
		tm.Observe(time.Microsecond)
		// Exercise the registry's locked lookup path concurrently too.
		r.Counter("hammer.count").Add(1)
	})

	if got := c.Value(); got != 2*n {
		t.Fatalf("counter = %d, want %d", got, 2*n)
	}
	if got := h.Count(); got != n {
		t.Fatalf("histogram count = %d, want %d", got, n)
	}
	var wantSum int64
	for i := 0; i < n; i++ {
		wantSum += int64(i%64 + 1)
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("histogram sum = %d, want %d", got, wantSum)
	}
	if got := tm.Count(); got != n {
		t.Fatalf("timer count = %d, want %d", got, n)
	}
	if got := tm.Total(); got != n*time.Microsecond {
		t.Fatalf("timer total = %v, want %v", got, n*time.Microsecond)
	}
}

// buildFixture drives a registry through a fixed sequence of updates on a
// fake clock. Two runs of this function must yield byte-identical JSON.
func buildFixture() ([]byte, error) {
	clk := faults.NewFakeClock(time.Unix(1700000000, 0))
	r := NewRegistry()
	r.Now = clk.Now

	r.Counter("scan.handshakes").Add(40)
	r.Counter("scan.errors.dial").Add(3)
	r.Gauge("pool.size").Set(12)
	h := r.Histogram("scan.handshake_latency", LatencyBuckets)
	for i := 0; i < 10; i++ {
		h.ObserveDuration(time.Duration(i+1) * time.Millisecond)
	}
	sw := r.Timer("study.scan").Start()
	clk.Advance(250 * time.Millisecond)
	sw.Stop()

	return r.Snapshot().JSON()
}

func TestSnapshotDeterministicUnderFakeClock(t *testing.T) {
	a, err := buildFixture()
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildFixture()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a, b)
	}
	var snap Snapshot
	if err := json.Unmarshal(a, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["scan.handshakes"] != 40 {
		t.Fatalf("handshakes = %d, want 40", snap.Counters["scan.handshakes"])
	}
	if got := snap.Timers["study.scan"]; got.Count != 1 || got.TotalNS != 250*time.Millisecond {
		t.Fatalf("study.scan = %+v, want {1 250ms} — the timer must tick on the injected clock", got)
	}
	if snap.Histograms["scan.handshake_latency"].Count != 10 {
		t.Fatal("histogram lost observations")
	}
}

func TestSnapshotTables(t *testing.T) {
	clk := faults.NewFakeClock(time.Unix(1700000000, 0))
	r := NewRegistry()
	r.Now = clk.Now
	r.Counter("serve.faults").Add(7)
	r.Gauge("pool.size").Set(3)
	r.Histogram("scan.dial_latency", LatencyBuckets).ObserveDuration(2 * time.Millisecond)
	r.Histogram("pathbuild.chain_length", SizeBuckets).Observe(3)
	sw := r.Timer("study.deploy").Start()
	clk.Advance(time.Second)
	sw.Stop()

	tables := r.Snapshot().Tables()
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want 3 (counters+gauges, histograms, pipeline)", len(tables))
	}
	out := ""
	for _, tb := range tables {
		out += tb.String()
	}
	for _, want := range []string{"serve.faults", "pool.size", "scan.dial_latency", "pipeline", "study.deploy", "1s"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("rendered tables missing %q:\n%s", want, out)
		}
	}
	// A snapshot with no timers has no pipeline table.
	if pt := NewRegistry().Snapshot().PipelineTable(); pt != nil {
		t.Fatal("empty registry must not produce a pipeline table")
	}
}

func TestStartPprofDisabled(t *testing.T) {
	addr, err := StartPprof("")
	if err != nil || addr != "" {
		t.Fatalf("StartPprof(\"\") = %q, %v; want no-op", addr, err)
	}
	if _, err := StartPprof("256.0.0.1:0"); err == nil {
		t.Fatal("StartPprof must fail synchronously on a bad address")
	}
}
