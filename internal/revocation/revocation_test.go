package revocation

import (
	"sync"
	"testing"
	"time"

	"chainchaos/internal/certmodel"
)

var base = time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)

func TestListBasics(t *testing.T) {
	root := certmodel.SyntheticRoot("Rev Root", base)
	inter := certmodel.SyntheticIntermediate("Rev CA", root, base)

	l := NewList()
	if l.IsRevoked(inter) || l.Len() != 0 {
		t.Error("fresh list revokes")
	}
	l.Revoke(inter)
	if !l.IsRevoked(inter) {
		t.Error("revoked cert not flagged")
	}
	if l.IsRevoked(root) {
		t.Error("unrevoked cert flagged")
	}
	if l.Len() != 1 {
		t.Errorf("len = %d", l.Len())
	}
	l.Revoke(nil) // no-op
	if l.Len() != 1 {
		t.Error("nil revoke changed the list")
	}
}

func TestNilListRevokesNothing(t *testing.T) {
	var l *List
	root := certmodel.SyntheticRoot("Rev Nil Root", base)
	if l.IsRevoked(root) || l.Len() != 0 {
		t.Error("nil list misbehaves")
	}
}

func TestRevocationIsPerSerial(t *testing.T) {
	root := certmodel.SyntheticRoot("Rev Serial Root", base)
	a := certmodel.SyntheticLeaf("rev.example", "serial-a", root, base, base.AddDate(1, 0, 0))
	b := certmodel.SyntheticLeaf("rev.example", "serial-b", root, base, base.AddDate(1, 0, 0))
	l := NewList()
	l.Revoke(a)
	if !l.IsRevoked(a) || l.IsRevoked(b) {
		t.Error("revocation must be per (issuer, serial)")
	}
}

func TestConcurrent(t *testing.T) {
	root := certmodel.SyntheticRoot("Rev Conc Root", base)
	l := NewList()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := certmodel.SyntheticLeaf("conc.example", string(rune('a'+i)), root, base, base.AddDate(1, 0, 0))
			l.Revoke(c)
			l.IsRevoked(c)
			l.Len()
		}(i)
	}
	wg.Wait()
	if l.Len() != 8 {
		t.Errorf("len = %d", l.Len())
	}
}
