// Package revocation provides a CRL-equivalent revocation oracle. The paper
// scopes revocation out of its measurements (§6.3) while noting that it does
// influence path construction — MbedTLS checks revocation status while
// selecting candidates (§3.2), and a revoked intermediate is precisely the
// situation where backtracking onto a cross-signed alternative keeps a site
// reachable. This package supplies the oracle those code paths consume.
package revocation

import (
	"sync"

	"chainchaos/internal/certmodel"
)

// key identifies a certificate the way CRLs do: by issuer and serial.
type key struct {
	issuer certmodel.Name
	serial string
}

// List is a thread-safe set of revoked certificates.
type List struct {
	mu      sync.RWMutex
	revoked map[key]bool
}

// NewList creates an empty revocation list.
func NewList() *List {
	return &List{revoked: make(map[key]bool)}
}

// Add revokes the certificate identified by issuer and serial.
func (l *List) Add(issuer certmodel.Name, serial string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.revoked[key{issuer, serial}] = true
}

// Revoke marks cert itself revoked.
func (l *List) Revoke(cert *certmodel.Certificate) {
	if cert == nil {
		return
	}
	l.Add(cert.Issuer, cert.SerialNumber)
}

// IsRevoked reports whether cert appears on the list. A nil list revokes
// nothing, so callers may pass one through unconditionally.
func (l *List) IsRevoked(cert *certmodel.Certificate) bool {
	if l == nil || cert == nil {
		return false
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.revoked[key{cert.Issuer, cert.SerialNumber}]
}

// Len returns the number of revoked entries.
func (l *List) Len() int {
	if l == nil {
		return 0
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.revoked)
}
