package validate

import (
	"strings"
	"testing"
	"time"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/rootstore"
)

var base = time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)

type fixture struct {
	root, ca2, ca1, leaf *certmodel.Certificate
	roots                *rootstore.Store
	now                  time.Time
}

func newFixture() *fixture {
	root := certmodel.SyntheticRoot("Val Root", base)
	ca2 := certmodel.SyntheticIntermediate("Val CA2", root, base)
	ca1 := certmodel.SyntheticIntermediate("Val CA1", ca2, base)
	leaf := certmodel.SyntheticLeaf("val.example", "1", ca1, base, base.AddDate(1, 0, 0))
	return &fixture{root, ca2, ca1, leaf, rootstore.NewWith("val", root), base.AddDate(0, 1, 0)}
}

func (f *fixture) opts() Options {
	return Options{Roots: f.roots, Now: f.now, Domain: "val.example"}
}

func (f *fixture) path() []*certmodel.Certificate {
	return []*certmodel.Certificate{f.leaf, f.ca1, f.ca2, f.root}
}

func TestValidPath(t *testing.T) {
	f := newFixture()
	res := Path(f.path(), f.opts())
	if !res.OK {
		t.Fatalf("valid path rejected: %v", res.Findings)
	}
	// Root omitted but issuer in store: still anchored.
	res = Path(f.path()[:3], f.opts())
	if !res.OK {
		t.Fatalf("root-omitted path rejected: %v", res.Findings)
	}
}

func TestEmptyPath(t *testing.T) {
	f := newFixture()
	res := Path(nil, f.opts())
	if res.OK || !res.Has(ProblemEmptyPath) {
		t.Errorf("empty path result = %+v", res)
	}
}

func TestHostnameMismatch(t *testing.T) {
	f := newFixture()
	opts := f.opts()
	opts.Domain = "other.example"
	res := Path(f.path(), opts)
	if res.OK || !res.Has(ProblemHostnameMismatch) {
		t.Errorf("hostname mismatch not flagged: %+v", res)
	}
	opts.Domain = "" // disabled
	if res := Path(f.path(), opts); !res.OK {
		t.Error("empty domain should skip hostname checks")
	}
}

func TestExpiryWindows(t *testing.T) {
	f := newFixture()
	opts := f.opts()
	opts.Now = base.AddDate(2, 0, 0) // leaf expired
	res := Path(f.path(), opts)
	if res.OK || !res.Has(ProblemExpired) {
		t.Errorf("expired leaf not flagged: %+v", res)
	}
	opts.Now = base.AddDate(-20, 0, 0)
	res = Path(f.path(), opts)
	if res.OK || !res.Has(ProblemNotYetValid) {
		t.Errorf("not-yet-valid not flagged: %+v", res)
	}
	opts.Now = time.Time{} // zero disables validity checks
	if res := Path(f.path(), opts); !res.OK {
		t.Errorf("zero Now should disable validity: %+v", res.Findings)
	}
}

func TestNotCA(t *testing.T) {
	f := newFixture()
	otherLeaf := certmodel.SyntheticLeaf("other.example", "2", f.ca1, base, base.AddDate(1, 0, 0))
	// Splice a non-CA certificate into the issuer position (signature will
	// also fail; both findings must surface).
	path := []*certmodel.Certificate{f.leaf, otherLeaf, f.ca2, f.root}
	res := Path(path, f.opts())
	if res.OK || !res.Has(ProblemNotCA) || !res.Has(ProblemBadSignature) {
		t.Errorf("non-CA issuer findings = %+v", res.Findings)
	}
}

func TestPathLenConstraint(t *testing.T) {
	root := certmodel.SyntheticRoot("PL Root", base)
	mk := func(cn string, parent *certmodel.Certificate, pathLen int, hasPL bool) *certmodel.Certificate {
		return certmodel.NewSynthetic(certmodel.SyntheticConfig{
			Subject: certmodel.Name{CommonName: cn}, Issuer: parent.Subject,
			Serial: cn, NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
			Key: certmodel.NewSyntheticKey(cn), SignedBy: certmodel.KeyOf(parent),
			IsCA: true, BasicConstraintsValid: true,
			KeyUsage: certmodel.KeyUsageCertSign, HasKeyUsage: true,
			MaxPathLen: pathLen, HasPathLen: hasPL,
		})
	}
	// ca2 has pathLen 0 but one intermediate (ca1) hangs below it.
	ca2 := mk("PL CA2", root, 0, true)
	ca1 := mk("PL CA1", ca2, 0, true)
	leaf := certmodel.SyntheticLeaf("pl.example", "1", ca1, base, base.AddDate(1, 0, 0))
	roots := rootstore.NewWith("pl", root)

	res := Path([]*certmodel.Certificate{leaf, ca1, ca2, root}, Options{Roots: roots, Now: base})
	if res.OK || !res.Has(ProblemPathLenExceeded) {
		t.Errorf("pathLen violation not flagged: %+v", res.Findings)
	}
	// Direct issuance from ca2 (pathLen 0 allows zero intermediates below).
	leaf2 := certmodel.SyntheticLeaf("pl2.example", "2", ca2, base, base.AddDate(1, 0, 0))
	res = Path([]*certmodel.Certificate{leaf2, ca2, root}, Options{Roots: roots, Now: base})
	if !res.OK {
		t.Errorf("pathLen 0 with no intermediates below should pass: %+v", res.Findings)
	}
}

func TestBadKeyUsage(t *testing.T) {
	root := certmodel.SyntheticRoot("KU Root", base)
	badCA := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "KU Bad CA"}, Issuer: root.Subject,
		Serial: "1", NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
		Key: certmodel.NewSyntheticKey("ku-bad"), SignedBy: certmodel.KeyOf(root),
		IsCA: true, BasicConstraintsValid: true,
		KeyUsage: certmodel.KeyUsageDigitalSignature, HasKeyUsage: true,
	})
	leaf := certmodel.SyntheticLeaf("ku.example", "1", badCA, base, base.AddDate(1, 0, 0))
	res := Path([]*certmodel.Certificate{leaf, badCA, root},
		Options{Roots: rootstore.NewWith("ku", root), Now: base})
	if res.OK || !res.Has(ProblemBadKeyUsage) {
		t.Errorf("bad KeyUsage not flagged: %+v", res.Findings)
	}
}

func TestUntrustedAnchor(t *testing.T) {
	f := newFixture()
	res := Path(f.path(), Options{Roots: rootstore.New("empty"), Now: f.now, Domain: "val.example"})
	if res.OK || !res.Has(ProblemUntrusted) {
		t.Errorf("untrusted path accepted: %+v", res)
	}
	res = Path(f.path(), Options{Now: f.now}) // nil store
	if res.OK || !res.Has(ProblemUntrusted) {
		t.Error("nil store should never anchor")
	}
}

func TestSkipSignatures(t *testing.T) {
	f := newFixture()
	// Break the chain: ca2 does not actually issue the leaf.
	path := []*certmodel.Certificate{f.leaf, f.ca2, f.root}
	res := Path(path, f.opts())
	if res.OK || !res.Has(ProblemBadSignature) {
		t.Errorf("bad signature not flagged: %+v", res.Findings)
	}
	opts := f.opts()
	opts.SkipSignatures = true
	res = Path(path, opts)
	if res.Has(ProblemBadSignature) {
		t.Error("SkipSignatures ignored")
	}
}

func TestFindingsAccumulate(t *testing.T) {
	// An expired chain with a hostname mismatch and no anchor: every
	// problem must surface, not just the first.
	f := newFixture()
	opts := Options{Roots: rootstore.New("empty"), Now: base.AddDate(3, 0, 0), Domain: "wrong.example"}
	res := Path(f.path(), opts)
	if len(res.Findings) < 3 {
		t.Errorf("findings = %v, want several", res.Findings)
	}
	if res.FirstProblem() != ProblemHostnameMismatch {
		t.Errorf("first problem = %v", res.FirstProblem())
	}
}

func TestProblemAndFindingStrings(t *testing.T) {
	for p := ProblemExpired; p <= ProblemEmptyPath; p++ {
		if s := p.String(); s == "" || strings.HasPrefix(s, "problem(") {
			t.Errorf("problem %d renders %q", int(p), s)
		}
	}
	f := Finding{Index: 2, Problem: ProblemExpired, Detail: "x"}
	if !strings.Contains(f.String(), "cert[2]") {
		t.Errorf("finding string = %q", f)
	}
	f.Index = -1
	if strings.Contains(f.String(), "cert[") {
		t.Errorf("path-level finding string = %q", f)
	}
	var empty Result
	if empty.FirstProblem() != Problem(-1) {
		t.Error("FirstProblem on empty result")
	}
}
