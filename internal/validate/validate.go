// Package validate implements certification path validation — the second
// step of Figure 1 in the paper, deliberately separated from path
// construction (internal/pathbuild). A constructed path is checked for
// validity windows, CA status, pathLenConstraints, KeyUsage, signatures,
// hostname match, and anchoring in a trust store.
package validate

import (
	"fmt"
	"time"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/revocation"
	"chainchaos/internal/rootstore"
)

// Problem enumerates the defects path validation can find.
type Problem int

const (
	ProblemExpired Problem = iota
	ProblemNotYetValid
	ProblemNotCA
	ProblemPathLenExceeded
	ProblemBadKeyUsage
	ProblemBadSignature
	ProblemUntrusted
	ProblemHostnameMismatch
	ProblemEmptyPath
	ProblemRevoked
	ProblemBadEKU
	ProblemNameConstraintViolation
	ProblemDeprecatedCrypto
)

// String returns the problem's name.
func (p Problem) String() string {
	switch p {
	case ProblemExpired:
		return "expired"
	case ProblemNotYetValid:
		return "not-yet-valid"
	case ProblemNotCA:
		return "not-a-ca"
	case ProblemPathLenExceeded:
		return "path-length-exceeded"
	case ProblemBadKeyUsage:
		return "bad-key-usage"
	case ProblemBadSignature:
		return "bad-signature"
	case ProblemUntrusted:
		return "untrusted"
	case ProblemHostnameMismatch:
		return "hostname-mismatch"
	case ProblemEmptyPath:
		return "empty-path"
	case ProblemRevoked:
		return "revoked"
	case ProblemBadEKU:
		return "bad-extended-key-usage"
	case ProblemNameConstraintViolation:
		return "name-constraint-violation"
	case ProblemDeprecatedCrypto:
		return "deprecated-crypto"
	default:
		return fmt.Sprintf("problem(%d)", int(p))
	}
}

// Finding locates one problem within the path.
type Finding struct {
	// Index is the position in the path (0 = leaf); -1 for path-level
	// findings such as ProblemUntrusted.
	Index   int
	Problem Problem
	Detail  string
}

func (f Finding) String() string {
	if f.Index < 0 {
		return fmt.Sprintf("%s: %s", f.Problem, f.Detail)
	}
	return fmt.Sprintf("cert[%d]: %s: %s", f.Index, f.Problem, f.Detail)
}

// Result is the outcome of validating one path.
type Result struct {
	OK       bool
	Findings []Finding
}

// FirstProblem returns the first finding's problem, or -1 if OK.
func (r Result) FirstProblem() Problem {
	if len(r.Findings) == 0 {
		return Problem(-1)
	}
	return r.Findings[0].Problem
}

// Has reports whether the result contains a finding with the given problem.
func (r Result) Has(p Problem) bool {
	for _, f := range r.Findings {
		if f.Problem == p {
			return true
		}
	}
	return false
}

// Options configures path validation.
type Options struct {
	// Roots is the trust store; the path's terminal certificate must be in
	// it, or be directly issued by a member.
	Roots *rootstore.Store
	// Now is the validation time; the zero value disables validity checks
	// (used by construction-only capability probes).
	Now time.Time
	// Domain, when non-empty, must match the leaf.
	Domain string
	// SkipSignatures disables pairwise signature verification (used by the
	// ablation benchmarks to isolate signature cost).
	SkipSignatures bool
	// Revocation, when non-nil, is consulted for every certificate on the
	// path.
	Revocation *revocation.List
}

// Path validates path[0]=leaf … path[len-1]=top against opts. All findings
// are collected, not just the first.
func Path(path []*certmodel.Certificate, opts Options) Result {
	var res Result
	if len(path) == 0 {
		res.Findings = append(res.Findings, Finding{Index: -1, Problem: ProblemEmptyPath, Detail: "no certificates"})
		return res
	}

	leaf := path[0]
	if opts.Domain != "" && !leaf.MatchesDomain(opts.Domain) {
		res.Findings = append(res.Findings, Finding{Index: 0, Problem: ProblemHostnameMismatch,
			Detail: fmt.Sprintf("leaf %q does not match %q", leaf.Subject.CommonName, opts.Domain)})
	}
	if !leaf.PermitsServerAuth() {
		res.Findings = append(res.Findings, Finding{Index: 0, Problem: ProblemBadEKU,
			Detail: "leaf EKU set excludes serverAuth"})
	}

	for i, cert := range path {
		if cert.HasWeakSignature() && !cert.SelfSigned() {
			// Trust-anchor signatures are never evaluated, so a weak
			// self-signature on a root is harmless; anywhere else it is a
			// deprecated-crypto rejection.
			res.Findings = append(res.Findings, Finding{Index: i, Problem: ProblemDeprecatedCrypto,
				Detail: "certificate signed with a deprecated algorithm"})
		}
		if opts.Revocation.IsRevoked(cert) {
			res.Findings = append(res.Findings, Finding{Index: i, Problem: ProblemRevoked,
				Detail: fmt.Sprintf("serial %s revoked by %q", cert.SerialNumber, cert.Issuer)})
		}
		if !opts.Now.IsZero() {
			if opts.Now.After(cert.NotAfter) {
				res.Findings = append(res.Findings, Finding{Index: i, Problem: ProblemExpired,
					Detail: fmt.Sprintf("notAfter %s", cert.NotAfter.Format(time.RFC3339))})
			}
			if opts.Now.Before(cert.NotBefore) {
				res.Findings = append(res.Findings, Finding{Index: i, Problem: ProblemNotYetValid,
					Detail: fmt.Sprintf("notBefore %s", cert.NotBefore.Format(time.RFC3339))})
			}
		}
		if i == 0 {
			continue
		}
		// Issuer checks: CA status, KeyUsage, pathLenConstraint.
		if !cert.IsCA || !cert.BasicConstraintsValid {
			res.Findings = append(res.Findings, Finding{Index: i, Problem: ProblemNotCA,
				Detail: fmt.Sprintf("%q is not a CA certificate", cert.Subject.CommonName)})
		}
		if !cert.CanSignCertificates() {
			res.Findings = append(res.Findings, Finding{Index: i, Problem: ProblemBadKeyUsage,
				Detail: "KeyUsage lacks certSign"})
		}
		// RFC 5280 §4.2.1.9: pathLenConstraint bounds the number of
		// non-self-issued intermediate certificates that may follow this
		// certificate in a valid path. In leaf-first order, the
		// intermediates below path[i] are positions 1..i-1.
		if cert.MaxPathLen != certmodel.MaxPathLenUnset {
			below := i - 1
			if below > cert.MaxPathLen {
				res.Findings = append(res.Findings, Finding{Index: i, Problem: ProblemPathLenExceeded,
					Detail: fmt.Sprintf("pathLen %d but %d intermediates below", cert.MaxPathLen, below)})
			}
		}
		// Extended Key Usage chains transitively in Web PKI practice: a CA
		// whose EKU set excludes serverAuth cannot appear on a server path.
		if !cert.PermitsServerAuth() {
			res.Findings = append(res.Findings, Finding{Index: i, Problem: ProblemBadEKU,
				Detail: "EKU set excludes serverAuth"})
		}
		// Name constraints on this CA apply to every subject below it
		// (RFC 5280 §4.2.1.10); checking the leaf covers the hostname
		// identities that matter for TLS.
		if !leaf.NamesAllowedBy(cert) {
			res.Findings = append(res.Findings, Finding{Index: i, Problem: ProblemNameConstraintViolation,
				Detail: fmt.Sprintf("leaf names violate %q's name constraints", cert.Subject.CommonName)})
		}
		if !opts.SkipSignatures && !path[i-1].SignatureVerifiedBy(cert) {
			res.Findings = append(res.Findings, Finding{Index: i, Problem: ProblemBadSignature,
				Detail: fmt.Sprintf("%q does not verify %q", cert.Subject.CommonName, path[i-1].Subject.CommonName)})
		}
	}

	if !anchored(path, opts.Roots) {
		res.Findings = append(res.Findings, Finding{Index: -1, Problem: ProblemUntrusted,
			Detail: fmt.Sprintf("path terminates at %q with no trust anchor", path[len(path)-1].Subject)})
	}

	res.OK = len(res.Findings) == 0
	return res
}

// anchored reports whether the path reaches a trust anchor: its terminal
// certificate is in the store, or is directly issued by a store member.
func anchored(path []*certmodel.Certificate, roots *rootstore.Store) bool {
	if roots == nil {
		return false
	}
	last := path[len(path)-1]
	if roots.Contains(last) {
		return true
	}
	return len(roots.FindIssuers(last)) > 0
}
