package validate

import (
	"testing"

	"chainchaos/internal/certmodel"
	"chainchaos/internal/rootstore"
)

// extFixture builds a root -> CA -> leaf chain where the CA's extension
// fields are controlled per test.
func extFixture(mutCA func(*certmodel.SyntheticConfig), mutLeaf func(*certmodel.SyntheticConfig)) ([]*certmodel.Certificate, *rootstore.Store) {
	root := certmodel.SyntheticRoot("Ext Root", base)
	caCfg := certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "Ext CA"}, Issuer: root.Subject,
		Serial: "ca", NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
		Key: certmodel.NewSyntheticKey("ext-ca"), SignedBy: certmodel.KeyOf(root),
		IsCA: true, BasicConstraintsValid: true,
		KeyUsage: certmodel.KeyUsageCertSign, HasKeyUsage: true,
	}
	if mutCA != nil {
		mutCA(&caCfg)
	}
	ca := certmodel.NewSynthetic(caCfg)
	leafCfg := certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "ext.example"}, Issuer: ca.Subject,
		Serial: "leaf", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: certmodel.NewSyntheticKey("ext-leaf"), SignedBy: certmodel.KeyOf(ca),
		DNSNames: []string{"ext.example"},
	}
	if mutLeaf != nil {
		mutLeaf(&leafCfg)
	}
	leaf := certmodel.NewSynthetic(leafCfg)
	return []*certmodel.Certificate{leaf, ca, root}, rootstore.NewWith("ext", root)
}

func TestEKUEnforcement(t *testing.T) {
	// CA whose EKU excludes serverAuth poisons the chain.
	path, roots := extFixture(func(c *certmodel.SyntheticConfig) {
		c.ExtKeyUsages = []certmodel.ExtKeyUsage{certmodel.EKUClientAuth}
	}, nil)
	res := Path(path, Options{Roots: roots, Now: base})
	if res.OK || !res.Has(ProblemBadEKU) {
		t.Errorf("clientAuth-only CA accepted: %+v", res.Findings)
	}

	// serverAuth (or absent) EKU passes.
	path, roots = extFixture(func(c *certmodel.SyntheticConfig) {
		c.ExtKeyUsages = []certmodel.ExtKeyUsage{certmodel.EKUServerAuth, certmodel.EKUClientAuth}
	}, nil)
	if res := Path(path, Options{Roots: roots, Now: base}); !res.OK {
		t.Errorf("serverAuth CA rejected: %+v", res.Findings)
	}

	// A leaf with a non-TLS EKU fails at index 0.
	path, roots = extFixture(nil, func(c *certmodel.SyntheticConfig) {
		c.ExtKeyUsages = []certmodel.ExtKeyUsage{certmodel.EKUEmailProtection}
	})
	res = Path(path, Options{Roots: roots, Now: base})
	if res.OK || !res.Has(ProblemBadEKU) {
		t.Errorf("email-only leaf accepted: %+v", res.Findings)
	}
}

func TestNameConstraintEnforcement(t *testing.T) {
	path, roots := extFixture(func(c *certmodel.SyntheticConfig) {
		c.PermittedDNSDomains = []string{"corp.example"}
	}, nil)
	res := Path(path, Options{Roots: roots, Now: base})
	if res.OK || !res.Has(ProblemNameConstraintViolation) {
		t.Errorf("constrained CA accepted an out-of-tree leaf: %+v", res.Findings)
	}

	path, roots = extFixture(func(c *certmodel.SyntheticConfig) {
		c.PermittedDNSDomains = []string{"example"}
	}, nil)
	if res := Path(path, Options{Roots: roots, Now: base}); !res.OK {
		t.Errorf("in-tree leaf rejected: %+v", res.Findings)
	}

	path, roots = extFixture(func(c *certmodel.SyntheticConfig) {
		c.ExcludedDNSDomains = []string{"ext.example"}
	}, nil)
	res = Path(path, Options{Roots: roots, Now: base})
	if res.OK || !res.Has(ProblemNameConstraintViolation) {
		t.Errorf("excluded leaf accepted: %+v", res.Findings)
	}
}

func TestDeprecatedCryptoEnforcement(t *testing.T) {
	path, roots := extFixture(func(c *certmodel.SyntheticConfig) {
		c.WeakSignature = true
	}, nil)
	res := Path(path, Options{Roots: roots, Now: base})
	if res.OK || !res.Has(ProblemDeprecatedCrypto) {
		t.Errorf("weak-signature CA accepted: %+v", res.Findings)
	}

	// A weak SELF-signature on the trust anchor itself is harmless: root
	// signatures are never evaluated.
	root := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "Weak Root"}, Issuer: certmodel.Name{CommonName: "Weak Root"},
		Serial: "r", NotBefore: base, NotAfter: base.AddDate(10, 0, 0),
		Key: certmodel.NewSyntheticKey("weak-root"), SignedBy: certmodel.NewSyntheticKey("weak-root"),
		IsCA: true, BasicConstraintsValid: true, WeakSignature: true,
	})
	leaf := certmodel.SyntheticLeaf("weakroot.example", "1", root, base, base.AddDate(1, 0, 0))
	res = Path([]*certmodel.Certificate{leaf, root},
		Options{Roots: rootstore.NewWith("w", root), Now: base})
	if !res.OK {
		t.Errorf("weak self-signed anchor should not poison the path: %+v", res.Findings)
	}
}
