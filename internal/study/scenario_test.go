package study

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"chainchaos/internal/population"
)

// studyTestScenarios builds injectable scenarios from a donor population's
// chains, the shape cmd/divfuzz -scenarios emits.
func studyTestScenarios(t *testing.T) []population.Scenario {
	t.Helper()
	donor := population.Generate(population.Config{Size: 4, Seed: 99})
	var out []population.Scenario
	for i := 0; i < 2; i++ {
		d := donor.Domains[i]
		sc := population.Scenario{Name: fmt.Sprintf("study-test-%d", i), Domain: d.Name}
		for _, c := range d.List {
			sc.Certs = append(sc.Certs, population.CertSpecOf(c))
		}
		out = append(out, sc)
	}
	return out
}

// TestStudyScenarioReplay: scenario-replay sites appear in the streamed run
// (graded as captured without a listener or handshake), present the
// scenario's exact chain, and the JSONL stream stays byte-identical across
// worker/concurrency/queue configurations.
func TestStudyScenarioReplay(t *testing.T) {
	scs := studyTestScenarios(t)
	base := Config{
		Sites: 24, Seed: 4, Vantages: 1, Concurrency: 4,
		Scenarios: scs, ScenarioRate: 0.3,
	}

	wantDomain := map[string]string{}
	for _, s := range scs {
		wantDomain[s.Name] = s.Domain
	}

	var firstJSONL []byte
	for _, tc := range []struct {
		workers, concurrency, queue int
	}{
		{1, 1, 1},
		{4, 8, 2},
		{8, 4, 16},
	} {
		cfg := base
		cfg.Workers = tc.workers
		cfg.Concurrency = tc.concurrency
		var buf bytes.Buffer
		rep, err := RunStream(context.Background(), cfg, Stream{
			Out: &buf, Queue: tc.queue, KeepSites: true,
		})
		if err != nil {
			t.Fatalf("workers=%d queue=%d: %v", tc.workers, tc.queue, err)
		}

		replayed := 0
		for i, s := range rep.Sites {
			if s.Scenario == "" {
				continue
			}
			replayed++
			if s.Injected != defectScenario || s.Server != "scenario" {
				t.Fatalf("site %d: scenario site tagged injected=%v server=%q", i, s.Injected, s.Server)
			}
			domain, ok := wantDomain[s.Scenario]
			if !ok {
				t.Fatalf("site %d replays unknown scenario %q", i, s.Scenario)
			}
			if s.Domain != domain {
				t.Fatalf("site %d: scenario %q served domain %q, want %q", i, s.Scenario, s.Domain, domain)
			}
		}
		if replayed == 0 {
			t.Fatalf("workers=%d: no scenario site replayed at rate %v over %d sites",
				tc.workers, base.ScenarioRate, base.Sites)
		}

		if firstJSONL == nil {
			firstJSONL = append([]byte(nil), buf.Bytes()...)
		} else if !bytes.Equal(firstJSONL, buf.Bytes()) {
			t.Fatalf("workers=%d queue=%d: JSONL stream differs from the first configuration", tc.workers, tc.queue)
		}
	}

	// Scenario records stream as scanned sites carrying the scenario name.
	scanned := 0
	for _, line := range bytes.Split(bytes.TrimSpace(firstJSONL), []byte("\n")) {
		var rec SiteRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Scenario == "" {
			continue
		}
		if rec.Injected != "scenario" || !rec.Scanned {
			t.Fatalf("rank %d: scenario record injected=%q scanned=%v", rec.Rank, rec.Injected, rec.Scanned)
		}
		scanned++
	}
	if scanned == 0 {
		t.Fatal("JSONL stream holds no scenario records")
	}
}

// TestStudyScenarioZeroIdentity: the scenario coin lives on its own salted
// streams, so a config with no scenarios (or a zero rate) streams
// byte-identical JSONL to a config that never heard of replay.
func TestStudyScenarioZeroIdentity(t *testing.T) {
	run := func(cfg Config) []byte {
		var buf bytes.Buffer
		if _, err := RunStream(context.Background(), cfg, Stream{Out: &buf, Queue: 2}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	base := Config{Sites: 12, Seed: 4, Vantages: 1, Concurrency: 4, Workers: 4}
	plain := run(base)

	zeroRate := base
	zeroRate.Scenarios = studyTestScenarios(t)
	zeroRate.ScenarioRate = 0
	if !bytes.Equal(run(zeroRate), plain) {
		t.Fatal("zero-rate scenario config changed the stream")
	}

	noScenarios := base
	noScenarios.ScenarioRate = 0.5
	if !bytes.Equal(run(noScenarios), plain) {
		t.Fatal("rate without scenarios changed the stream")
	}
}
