package study

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"chainchaos/internal/pipeline"
)

// TestStudyStreamMatchesBatch: the streaming study produces the same report
// and site results as the batch path for the same seed, across several
// (workers, queue) configurations, and the JSONL record stream is
// byte-identical between configurations.
func TestStudyStreamMatchesBatch(t *testing.T) {
	const sites = 16
	base := Config{Sites: sites, Seed: 4, Vantages: 2, Concurrency: 8}
	batch, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	var firstJSONL []byte
	for _, tc := range []struct {
		workers, concurrency, queue int
	}{
		{1, 1, 1},
		{4, 8, 2},
		{8, 4, 16},
	} {
		cfg := base
		cfg.Workers = tc.workers
		cfg.Concurrency = tc.concurrency
		var buf bytes.Buffer
		stream, err := RunStream(context.Background(), cfg, Stream{
			Out: &buf, Queue: tc.queue, KeepSites: true,
		})
		if err != nil {
			t.Fatalf("workers=%d queue=%d: %v", tc.workers, tc.queue, err)
		}

		if len(stream.Sites) != len(batch.Sites) {
			t.Fatalf("workers=%d queue=%d: %d sites, batch has %d", tc.workers, tc.queue, len(stream.Sites), len(batch.Sites))
		}
		for i := range stream.Sites {
			ss, bs := stream.Sites[i], batch.Sites[i]
			if ss.Domain != bs.Domain || ss.Injected != bs.Injected || ss.Server != bs.Server {
				t.Fatalf("site %d assignment differs: %s/%v/%s vs %s/%v/%s",
					i, ss.Domain, ss.Injected, ss.Server, bs.Domain, bs.Injected, bs.Server)
			}
			if ss.Report.Compliant() != bs.Report.Compliant() {
				t.Fatalf("site %d compliance differs", i)
			}
			if !reflect.DeepEqual(ss.Verdicts, bs.Verdicts) {
				t.Fatalf("site %d verdicts differ: %v vs %v", i, ss.Verdicts, bs.Verdicts)
			}
		}
		if stream.ScanErrors != batch.ScanErrors || stream.Rescanned != batch.Rescanned ||
			stream.Lost != batch.Lost || stream.LeavesGenerated != batch.LeavesGenerated {
			t.Fatalf("workers=%d queue=%d: aggregates differ: %+v vs %+v", tc.workers, tc.queue, stream, batch)
		}

		if firstJSONL == nil {
			firstJSONL = append([]byte(nil), buf.Bytes()...)
		} else if !bytes.Equal(firstJSONL, buf.Bytes()) {
			t.Fatalf("workers=%d queue=%d: JSONL stream differs from the first configuration", tc.workers, tc.queue)
		}
	}
	if len(bytes.Split(bytes.TrimSpace(firstJSONL), []byte("\n"))) != sites {
		t.Fatalf("JSONL stream does not hold one line per site")
	}
}

// failAfter errors every write past the first n.
type failAfter struct {
	buf  bytes.Buffer
	n    int
	errv error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.errv
	}
	f.n--
	return f.buf.Write(p)
}

// TestStudyStreamResume: a checkpointed run killed mid-stream resumes from
// the journal watermark and the concatenated output is byte-identical to an
// uninterrupted run.
func TestStudyStreamResume(t *testing.T) {
	const sites = 12
	cfg := Config{Sites: sites, Seed: 4, Vantages: 1, Concurrency: 4, Workers: 4}

	var full bytes.Buffer
	if _, err := RunStream(context.Background(), cfg, Stream{Out: &full, Queue: 2}); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "study.ckpt")
	j, err := pipeline.OpenJournal(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	j.Every = 1
	interrupted := errors.New("killed")
	w := &failAfter{n: 5, errv: interrupted}
	_, err = RunStream(context.Background(), cfg, Stream{Out: w, Queue: 2, Journal: j})
	if !errors.Is(err, interrupted) {
		t.Fatalf("first run err = %v, want the injected kill", err)
	}
	j.Close()

	j2, err := pipeline.OpenJournal(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resume := j2.Last(pipeline.SinkName("grade")) + 1
	if resume != 5 {
		t.Fatalf("resume rank = %d, want 5 (five lines were written)", resume)
	}
	rest := &bytes.Buffer{}
	rep, err := RunStream(context.Background(), cfg, Stream{Out: rest, Queue: 2, Journal: j2, Resume: resume})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeavesGenerated != sites-resume {
		t.Errorf("resumed run minted %d leaves, want %d", rep.LeavesGenerated, sites-resume)
	}

	combined := append(append([]byte(nil), w.buf.Bytes()...), rest.Bytes()...)
	if !bytes.Equal(combined, full.Bytes()) {
		t.Fatalf("resumed output differs from uninterrupted run:\ncombined:\n%s\nfull:\n%s", combined, full.Bytes())
	}
}
