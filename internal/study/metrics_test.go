package study

import (
	"encoding/json"
	"testing"
	"time"

	"chainchaos/internal/faults"
	"chainchaos/internal/obs"
	"chainchaos/internal/tlsserve"
)

// TestStudyMetricsReconcile is the ledger check the -metrics flag rests on:
// every counter the registry publishes must agree EXACTLY with the fields
// the study Report derives independently (its own per-result loops and the
// listeners' accessors). A chaos config makes all the interesting counters
// nonzero first.
func TestStudyMetricsReconcile(t *testing.T) {
	const sites = 10
	reg := obs.NewRegistry()
	rep, err := Run(Config{
		Sites: sites, Seed: 4, Vantages: 2, Concurrency: 4,
		Faults:  tlsserve.FaultConfig{FailFirst: 2},
		Clock:   faults.NewFakeClock(time.Now()),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := rep.Snapshot
	if snap == nil {
		t.Fatal("report carries no snapshot despite a wired registry")
	}
	c := snap.Counters

	// Scanner: final-result error counters mirror the cause breakdown.
	if got, want := c["scan.errors.dial"], int64(rep.ScanErrorCauses.Dial); got != want {
		t.Errorf("scan.errors.dial = %d, report says %d", got, want)
	}
	if got, want := c["scan.errors.handshake"], int64(rep.ScanErrorCauses.Handshake); got != want {
		t.Errorf("scan.errors.handshake = %d, report says %d", got, want)
	}
	if got, want := c["scan.errors.parse"], int64(rep.ScanErrorCauses.Parse); got != want {
		t.Errorf("scan.errors.parse = %d, report says %d", got, want)
	}
	if got, want := c["scan.errors.cancelled"], int64(rep.ScanErrorCauses.Cancelled); got != want {
		t.Errorf("scan.errors.cancelled = %d, report says %d", got, want)
	}
	errSum := c["scan.errors.dial"] + c["scan.errors.handshake"] + c["scan.errors.parse"] + c["scan.errors.cancelled"]
	if errSum != int64(rep.ScanErrors) {
		t.Errorf("scan error counters sum to %d, report says %d", errSum, rep.ScanErrors)
	}
	if c["scan.handshakes"] == 0 {
		t.Error("scan.handshakes = 0; successful captures went uncounted")
	}

	// Re-scan recovery and the listeners' fault ledger.
	if got, want := c["study.rescanned"], int64(rep.Rescanned); got != want {
		t.Errorf("study.rescanned = %d, report says %d", got, want)
	}
	if got, want := c["serve.faults"], int64(rep.FaultsInjected); got != want {
		t.Errorf("serve.faults = %d, report says %d", got, want)
	}
	if rep.FaultsInjected != 2*sites {
		t.Errorf("faults injected = %d, want %d (FailFirst=2 per listener)", rep.FaultsInjected, 2*sites)
	}
	if got, want := c["serve.accept_retries"], int64(rep.AcceptRetries); got != want {
		t.Errorf("serve.accept_retries = %d, report says %d", got, want)
	}
	if got, want := c["serve.deadline_expiries"], int64(rep.DeadlineExpiries); got != want {
		t.Errorf("serve.deadline_expiries = %d, report says %d", got, want)
	}

	// The no-waste proof: exactly one leaf minted per site, even though the
	// seed lands stale-leaf defects in this population.
	if rep.LeavesGenerated != sites {
		t.Errorf("leaves generated = %d, want %d", rep.LeavesGenerated, sites)
	}
	if got := c["study.leaves_generated"]; got != int64(sites) {
		t.Errorf("study.leaves_generated = %d, want %d", got, sites)
	}

	// Stage timers all fired, and the snapshot ships as valid JSON with a
	// rendered pipeline table (the fourth table).
	for _, stage := range []string{"study.deploy", "study.scan", "study.rescan", "study.grade"} {
		if snap.Timers[stage].Count == 0 {
			t.Errorf("stage timer %s never fired", stage)
		}
	}
	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round obs.Snapshot
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	tables := rep.Tables()
	if len(tables) != 4 {
		t.Fatalf("tables = %d, want 4 (overview, per-client, failures, pipeline)", len(tables))
	}
}

// TestStudyStaleLeafServedDirectly asserts the stale-leaf fix end to end: a
// run whose population includes stale-leaf sites serves the expired leaf
// itself (every client rejects it; graders see a structurally fine chain)
// and still mints exactly one certificate per site.
func TestStudyStaleLeafServedDirectly(t *testing.T) {
	rep, err := Run(Config{Sites: 24, Seed: 4, Vantages: 1, Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeavesGenerated != len(rep.Sites) {
		t.Fatalf("leaves generated = %d for %d sites", rep.LeavesGenerated, len(rep.Sites))
	}
	var stale int
	for _, s := range rep.Sites {
		if s.Injected != defectStaleLeaf {
			continue
		}
		stale++
		if s.Verdicts == nil {
			t.Fatalf("%s: never graded", s.Domain)
		}
		for client, ok := range s.Verdicts {
			if ok {
				t.Errorf("%s: %s accepted an expired leaf", s.Domain, client)
			}
		}
	}
	if stale == 0 {
		t.Skip("seed produced no stale-leaf site; adjust seed")
	}
}
