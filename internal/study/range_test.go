package study

import (
	"bytes"
	"context"
	"testing"
)

// TestStudyStreamRangeInvariance: a range-restricted run over [Resume, Limit)
// emits exactly the bytes ranks Resume..Limit-1 of a full run emit — the
// property the distributed coordinator leans on when leasing sub-ranges to
// workers. The concatenation of disjoint sub-range runs is byte-identical to
// one full run, including under chain reuse (slot sites) and dedup.
func TestStudyStreamRangeInvariance(t *testing.T) {
	const sites = 24
	cfg := Config{
		Sites: sites, Seed: 11, Vantages: 1, Concurrency: 4, Workers: 4,
		Reuse: 0.4, Dedup: true,
	}

	var full bytes.Buffer
	fullRep, err := RunStream(context.Background(), cfg, Stream{Out: &full, Queue: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Three disjoint leases covering [0, sites), run out of order — each must
	// reproduce its slice of the full stream regardless of execution order.
	ranges := [][2]int{{9, 17}, {0, 9}, {17, sites}}
	parts := make(map[[2]int][]byte, len(ranges))
	sumStreamed := 0
	var recorded int
	for _, r := range ranges {
		var buf bytes.Buffer
		rep, err := RunStream(context.Background(), cfg, Stream{
			Out: &buf, Queue: 2, Resume: r[0], Limit: r[1],
			Record: func(rank int, line []byte) error {
				if rank < r[0] || rank >= r[1] {
					t.Errorf("Record rank %d outside lease [%d, %d)", rank, r[0], r[1])
				}
				if len(line) == 0 {
					t.Errorf("Record rank %d: empty line", rank)
				}
				recorded++
				return nil
			},
		})
		if err != nil {
			t.Fatalf("range [%d, %d): %v", r[0], r[1], err)
		}
		parts[r] = append([]byte(nil), buf.Bytes()...)
		sumStreamed += rep.Streamed
	}
	if recorded != sites {
		t.Fatalf("Record hook fired %d times, want %d", recorded, sites)
	}
	if sumStreamed != fullRep.Streamed {
		t.Fatalf("sub-range Streamed sums to %d, full run %d", sumStreamed, fullRep.Streamed)
	}

	var combined []byte
	for _, r := range [][2]int{{0, 9}, {9, 17}, {17, sites}} {
		combined = append(combined, parts[r]...)
	}
	if !bytes.Equal(combined, full.Bytes()) {
		t.Fatalf("concatenated sub-range output differs from the full run:\ncombined:\n%s\nfull:\n%s", combined, full.Bytes())
	}
}

// TestReportTalliesRoundTrip: the wire tallies carry every additive
// aggregate, and merging the tallies of disjoint sub-ranges reproduces the
// full run's aggregate report.
func TestReportTalliesRoundTrip(t *testing.T) {
	cfg := Config{Sites: 12, Seed: 7, Vantages: 1, Concurrency: 4, Workers: 2}
	fullRep, err := RunStream(context.Background(), cfg, Stream{})
	if err != nil {
		t.Fatal(err)
	}

	merged := map[string]int64{}
	for _, r := range [][2]int{{0, 5}, {5, 12}} {
		rep, err := RunStream(context.Background(), cfg, Stream{Resume: r[0], Limit: r[1]})
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range rep.Tallies() {
			merged[k] += v
		}
	}
	got := ReportFromTallies(cfg, merged)
	if got.Streamed != fullRep.Streamed ||
		got.StreamedCompliant != fullRep.StreamedCompliant ||
		got.LeavesGenerated != fullRep.LeavesGenerated ||
		got.ScanErrors != fullRep.ScanErrors ||
		got.Lost != fullRep.Lost {
		t.Fatalf("merged tallies %+v differ from full report %+v", got, fullRep)
	}
}
