// Package study orchestrates the paper's entire measurement as one run over
// real infrastructure: it generates a real-certificate web population (no
// synthetic back end anywhere), deploys each site through an HTTP-server
// model onto a loopback TLS listener, scans every listener from multiple
// vantage points with the ZGrab2-style scanner, merges the captures, grades
// structural compliance, and differentially tests the eight client models —
// the full RQ1+RQ2 pipeline with actual handshakes on every chain.
//
// It is the end-to-end counterpart of internal/experiments, which runs the
// same analyses at six-figure scale over the synthetic population; the study
// trades scale for full physical fidelity.
package study

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/faults"
	"chainchaos/internal/httpserver"
	"chainchaos/internal/obs"
	"chainchaos/internal/parallel"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/report"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/tlsscan"
	"chainchaos/internal/tlsserve"
	"chainchaos/internal/topo"
)

// Config parameterizes a study run.
type Config struct {
	// Sites is the number of TLS listeners to stand up (default 40 — each
	// one needs real key generation and a socket).
	Sites int
	// Seed drives defect assignment.
	Seed int64
	// Vantages is the number of scan passes to merge (default 2, the
	// paper's US/AU pair).
	Vantages int
	// Concurrency bounds parallel scanning (default 8).
	Concurrency int
	// Timeout bounds each handshake (default 5s).
	Timeout time.Duration
	// Workers bounds the parallel grade-and-difftest loop over scanned
	// sites; <= 0 means GOMAXPROCS. Results are deterministic for any
	// worker count.
	Workers int
	// Retries is the extra handshake attempts the scanner spends on each
	// transport failure (0 = scan once).
	Retries int
	// RescanPasses bounds the re-scan sweeps over sites that every vantage
	// failed to capture (default 1; negative disables).
	RescanPasses int
	// Faults misconfigures every listener on purpose, so the run exercises
	// the retry/re-scan machinery instead of assuming a polite network.
	Faults tlsserve.FaultConfig
	// Clock paces scan backoff, throttling, and injected server faults;
	// nil means the wall clock.
	Clock faults.Clock
	// Metrics, when non-nil, instruments the whole pipeline: scanner and
	// listener counters, AIA repository hits, per-client construction
	// metrics, and per-stage timers (study.deploy / study.scan /
	// study.rescan / study.grade). The final Report carries a Snapshot and
	// its Tables() gain the pipeline stage table. When Clock is also set
	// and the registry has no Now of its own, the registry is put on the
	// same clock, so fault-injection runs snapshot deterministically.
	Metrics *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.Sites <= 0 {
		c.Sites = 40
	}
	if c.Vantages <= 0 {
		c.Vantages = 2
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.RescanPasses == 0 {
		c.RescanPasses = 1
	}
	if c.RescanPasses < 0 {
		c.RescanPasses = 0
	}
}

// defect enumerates the deployment mutations the study injects.
type defect int

const (
	defectNone defect = iota
	defectReversed
	defectDuplicateLeaf
	defectIncomplete
	defectIrrelevant
	defectStaleLeaf
)

func (d defect) String() string {
	switch d {
	case defectNone:
		return "compliant"
	case defectReversed:
		return "reversed"
	case defectDuplicateLeaf:
		return "duplicate-leaf"
	case defectIncomplete:
		return "incomplete"
	case defectIrrelevant:
		return "irrelevant"
	case defectStaleLeaf:
		return "stale-leaf"
	default:
		return "unknown"
	}
}

// Site is one deployed listener.
type Site struct {
	Domain   string
	Addr     string
	Injected defect
	Server   string

	Report   compliance.Report
	Verdicts map[string]bool
}

// ErrorBreakdown counts failed scan attempts per cause — the transport-vs-
// finding distinction a single integer conflated.
type ErrorBreakdown struct {
	Dial, Handshake, Parse, Cancelled int
}

func (b *ErrorBreakdown) add(c tlsscan.ErrorCause) {
	switch c {
	case tlsscan.CauseDial:
		b.Dial++
	case tlsscan.CauseHandshake:
		b.Handshake++
	case tlsscan.CauseParse:
		b.Parse++
	case tlsscan.CauseCancelled:
		b.Cancelled++
	}
}

// Total is the sum over all causes.
func (b ErrorBreakdown) Total() int {
	return b.Dial + b.Handshake + b.Parse + b.Cancelled
}

// Report is a completed study.
type Report struct {
	Cfg   Config
	Sites []*Site

	// ScanErrors is the total number of failed scan results across every
	// vantage and re-scan pass (a site recovered by a later pass still
	// counts its earlier failures here).
	ScanErrors int
	// ScanErrorCauses breaks ScanErrors down by cause.
	ScanErrorCauses ErrorBreakdown
	// Rescanned is how many sites were recovered by the bounded re-scan
	// passes after every vantage missed them.
	Rescanned int
	// Lost is how many sites were never captured by any pass; grading
	// skips them, and a healthy run reports zero.
	Lost int
	// FaultsInjected is the total number of misbehaviours the listeners
	// fired (sum over the farm).
	FaultsInjected int
	// AcceptRetries is the total number of temporary Accept errors the
	// listeners retried.
	AcceptRetries int
	// DeadlineExpiries is how many server-side handshakes were cut by the
	// per-connection deadline.
	DeadlineExpiries int
	// LeavesGenerated counts end-entity certificates minted for the farm.
	// Exactly one leaf is generated per site — stale-leaf sites mint their
	// expired leaf directly instead of minting a fresh one first and
	// discarding it — so this always equals len(Sites).
	LeavesGenerated int
	// Snapshot is the metrics export taken after the run when Cfg.Metrics
	// was wired; nil otherwise.
	Snapshot *obs.Snapshot
}

// CompliantCount returns how many scanned sites graded compliant.
func (r *Report) CompliantCount() int {
	n := 0
	for _, s := range r.Sites {
		if s.Report.Compliant() {
			n++
		}
	}
	return n
}

// Tables renders the study as report tables (an overview plus per-client
// pass rates over the non-compliant sites).
func (r *Report) Tables() []*report.Table {
	overview := report.New(
		fmt.Sprintf("study — %d sites scanned from %d vantages", len(r.Sites), r.Cfg.Vantages),
		"Domain", "Injected", "Server", "Leaf", "Order OK", "Completeness", "Verdict")
	for _, s := range r.Sites {
		verdict := "COMPLIANT"
		if !s.Report.Compliant() {
			verdict = "NON-COMPLIANT"
		}
		overview.Addf(s.Domain, s.Injected, s.Server,
			s.Report.Leaf, report.Mark(s.Report.Order.SequentialOK),
			s.Report.Completeness.Class, verdict)
	}

	perClient := report.New("per-client pass rate over non-compliant sites", "Client", "Pass")
	bad := 0
	passes := map[string]int{}
	for _, s := range r.Sites {
		if s.Report.Compliant() {
			continue
		}
		bad++
		for name, ok := range s.Verdicts {
			if ok {
				passes[name]++
			}
		}
	}
	for _, p := range clients.All() {
		perClient.Add(p.Name, report.Count(passes[p.Name], bad))
	}

	failures := report.New("scan failures by cause (all passes)", "Cause", "Failed attempts")
	failures.Addf("dial", r.ScanErrorCauses.Dial)
	failures.Addf("handshake", r.ScanErrorCauses.Handshake)
	failures.Addf("parse", r.ScanErrorCauses.Parse)
	failures.Addf("cancelled", r.ScanErrorCauses.Cancelled)
	failures.Addf("total", r.ScanErrors)
	failures.Addf("sites recovered by re-scan", r.Rescanned)
	failures.Addf("sites lost", r.Lost)
	failures.Addf("server faults injected", r.FaultsInjected)
	failures.Addf("server accept retries", r.AcceptRetries)
	failures.Addf("server deadline expiries", r.DeadlineExpiries)
	tables := []*report.Table{overview, perClient, failures}
	if r.Snapshot != nil {
		if pt := r.Snapshot.PipelineTable(); pt != nil {
			tables = append(tables, pt)
		}
	}
	return tables
}

// Run executes the study.
func Run(cfg Config) (*Report, error) {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	reg := cfg.Metrics
	if reg != nil && cfg.Clock != nil && reg.Now == nil {
		// Deterministic fault runs: stage timers tick on the same injected
		// clock as the faults and backoff they time.
		reg.Now = cfg.Clock.Now
	}
	deployTimer := reg.Timer("study.deploy")
	scanTimer := reg.Timer("study.scan")
	rescanTimer := reg.Timer("study.rescan")
	gradeTimer := reg.Timer("study.grade")
	leavesCounter := reg.Counter("study.leaves_generated")

	deploySW := deployTimer.Start()
	// Real PKI: a root with two intermediates, AIA-wired.
	root, err := certgen.NewRoot("Study Root")
	if err != nil {
		return nil, err
	}
	ca2, err := root.NewIntermediate("Study CA 2")
	if err != nil {
		return nil, err
	}
	const ca2URI = "http://repo.study.example/ca2.der"
	ca1, err := ca2.NewIntermediate("Study CA 1", certgen.WithAIA(ca2URI))
	if err != nil {
		return nil, err
	}
	stray, err := certgen.NewRoot("Study Stray Root")
	if err != nil {
		return nil, err
	}
	repo := aia.NewRepository().Instrument(reg)
	repo.Put(ca2URI, ca2.Cert)
	roots := rootstore.NewWith("study", root.Cert)
	// The study trust store never grows after this point; sealed, the
	// parallel site-grading workers read it without locking. The per-site
	// intermediate caches created below stay unsealed — Firefox-style
	// builders keep feeding them during the measurement.
	roots.Seal()

	servers := []httpserver.Model{
		httpserver.ApacheOld(), httpserver.Apache(), httpserver.Nginx(),
		httpserver.AzureAppGateway(), httpserver.IIS(), httpserver.AWSELB(),
	}
	defects := []defect{
		defectNone, defectNone, defectNone, defectNone, defectNone, defectNone,
		defectReversed, defectDuplicateLeaf, defectIncomplete, defectIrrelevant, defectStaleLeaf,
	}

	farm := tlsserve.NewFarm()
	defer farm.Close()

	rep := &Report{Cfg: cfg}
	var targets []tlsscan.Target
	var listeners []*tlsserve.Server
	for i := 0; i < cfg.Sites; i++ {
		domain := fmt.Sprintf("site-%03d.study.example", i)
		inj := defects[rng.Intn(len(defects))]
		model := servers[rng.Intn(len(servers))]

		// Exactly one leaf per site: a stale-leaf site mints its expired
		// leaf directly (the admin who never renewed) instead of minting a
		// fresh leaf first and then a second, stale one — the old path
		// silently doubled certgen work. LeavesGenerated proves no cert is
		// wasted.
		var leafOpts []certgen.Option
		if inj == defectStaleLeaf {
			leafOpts = append(leafOpts, certgen.WithValidity(
				certgen.Reference.AddDate(-2, 0, 0), certgen.Reference.AddDate(-1, 0, 0)))
		}
		leaf, err := ca1.NewLeaf(domain, leafOpts...)
		if err != nil {
			return nil, err
		}
		rep.LeavesGenerated++
		leavesCounter.Inc()

		chain := []*certmodel.Certificate{ca1.Cert, ca2.Cert}
		switch inj {
		case defectReversed:
			chain = []*certmodel.Certificate{root.Cert, ca2.Cert, ca1.Cert}
		case defectDuplicateLeaf:
			chain = append([]*certmodel.Certificate{leaf.Cert}, chain...)
		case defectIncomplete:
			chain = []*certmodel.Certificate{ca1.Cert}
		case defectIrrelevant:
			chain = append(chain, stray.Cert)
		}

		in := httpserver.ConfigInput{
			CertFile:      []*certmodel.Certificate{leaf.Cert},
			ChainFile:     chain,
			Fullchain:     append([]*certmodel.Certificate{leaf.Cert}, chain...),
			PrivateKeyFor: leaf.Cert,
		}
		wire, err := model.Deploy(in)
		if err == httpserver.ErrDuplicateLeaf {
			// The server's check fired; the administrator fixes the files.
			fixed := chain[1:]
			in.ChainFile = fixed
			in.Fullchain = append([]*certmodel.Certificate{leaf.Cert}, fixed...)
			inj = defectNone
			wire, err = model.Deploy(in)
		}
		if err != nil {
			return nil, fmt.Errorf("study: deploy %s on %s: %w", domain, model.Name, err)
		}
		srv, err := farm.Add(tlsserve.Config{
			List: wire, Key: leaf.Key, Domain: domain,
			Faults: cfg.Faults, Clock: cfg.Clock, Metrics: cfg.Metrics,
		})
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, srv)
		site := &Site{Domain: domain, Addr: srv.Addr(), Injected: inj, Server: model.Name}
		rep.Sites = append(rep.Sites, site)
		targets = append(targets, tlsscan.Target{Addr: srv.Addr(), Domain: domain})
	}
	deploySW.Stop()

	// Multi-vantage scan and merge. Transient failures are retried inside
	// the scanner; whatever still fails is counted per cause.
	scanner := &tlsscan.Scanner{
		Timeout:     cfg.Timeout,
		Concurrency: cfg.Concurrency,
		Clock:       cfg.Clock,
		Metrics:     cfg.Metrics,
	}
	if cfg.Retries > 0 {
		scanner.Retry = faults.Policy{
			Attempts:  cfg.Retries + 1,
			BaseDelay: 20 * time.Millisecond,
			MaxDelay:  500 * time.Millisecond,
			Seed:      cfg.Seed,
			Clock:     cfg.Clock,
		}
	}
	countErrors := func(results []tlsscan.Result) {
		for _, res := range results {
			if res.Err != nil {
				rep.ScanErrors++
				rep.ScanErrorCauses.add(res.Cause)
			}
		}
	}
	passes := make([][]tlsscan.Result, 0, cfg.Vantages+cfg.RescanPasses)
	scanSW := scanTimer.Start()
	for v := 0; v < cfg.Vantages; v++ {
		results := scanner.ScanAll(context.Background(), targets)
		countErrors(results)
		passes = append(passes, results)
	}
	scanSW.Stop()
	merged := tlsscan.MergeVantages(passes...)

	// Bounded re-scan: sites that every vantage failed to capture get up
	// to RescanPasses more sweeps, so one flaky window does not lose a
	// site for the whole study.
	rescannedCounter := reg.Counter("study.rescanned")
	for pass := 0; pass < cfg.RescanPasses; pass++ {
		var missing []tlsscan.Target
		for i, site := range rep.Sites {
			if len(merged[site.Domain]) == 0 {
				missing = append(missing, targets[i])
			}
		}
		if len(missing) == 0 {
			break
		}
		rescanSW := rescanTimer.Start()
		results := scanner.ScanAll(context.Background(), missing)
		rescanSW.Stop()
		countErrors(results)
		passes = append(passes, results)
		merged = tlsscan.MergeVantages(passes...)
		for _, res := range results {
			if res.Err == nil {
				rep.Rescanned++
				rescannedCounter.Inc()
			}
		}
	}
	for _, site := range rep.Sites {
		if len(merged[site.Domain]) == 0 {
			rep.Lost++
		}
	}

	// Grade and differentially test every captured chain. Iterating
	// rep.Sites (not the merged map) keeps report tables and error
	// attribution deterministic across runs; sites are sharded across
	// workers, each shard reusing one builder per client profile. Every
	// worker writes only to its own sites, so no locking is needed.
	analyzer := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{Roots: roots, Fetcher: repo}}
	profiles := clients.All()
	gradeSW := gradeTimer.Start()
	parallel.Shards(context.Background(), len(rep.Sites), cfg.Workers, func(_, lo, hi int) {
		builders := make([]*pathbuild.Builder, len(profiles))
		for i, p := range profiles {
			builders[i] = &pathbuild.Builder{
				Policy: p.Policy, Roots: roots, Fetcher: repo,
				Cache: rootstore.New("cache"), Now: certgen.Reference,
				Metrics: cfg.Metrics,
			}
		}
		for i := lo; i < hi; i++ {
			site := rep.Sites[i]
			results := merged[site.Domain]
			if len(results) == 0 {
				continue
			}
			list := results[0].List
			site.Report = analyzer.Analyze(site.Domain, topo.Build(list))
			site.Verdicts = make(map[string]bool, len(profiles))
			for j, p := range profiles {
				// Each site gets a fresh intermediate cache: verdicts must
				// not depend on which other sites a worker graded first.
				builders[j].Cache = rootstore.New("cache")
				site.Verdicts[p.Name] = builders[j].Build(list, site.Domain).OK()
			}
		}
		for _, b := range builders {
			b.FlushMetrics()
		}
	})
	gradeSW.Stop()

	// Fold the listeners' own tallies into the report before the deferred
	// farm.Close tears them down. These mirror the serve.* counters exactly,
	// which the reconciliation test pins.
	for _, srv := range listeners {
		rep.FaultsInjected += srv.FaultsInjected()
		rep.AcceptRetries += srv.AcceptRetries()
		rep.DeadlineExpiries += srv.DeadlineExpiries()
	}
	if reg != nil {
		rep.Snapshot = reg.Snapshot()
	}
	return rep, nil
}
