// Package study orchestrates the paper's entire measurement as one run over
// real infrastructure: it generates a real-certificate web population (no
// synthetic back end anywhere), deploys each site through an HTTP-server
// model onto a loopback TLS listener, scans every listener from multiple
// vantage points with the ZGrab2-style scanner, merges the captures, grades
// structural compliance, and differentially tests the eight client models —
// the full RQ1+RQ2 pipeline with actual handshakes on every chain.
//
// It is the end-to-end counterpart of internal/experiments, which runs the
// same analyses at six-figure scale over the synthetic population; the study
// trades scale for full physical fidelity.
package study

import (
	"fmt"
	"time"

	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/faults"
	"chainchaos/internal/obs"
	"chainchaos/internal/population"
	"chainchaos/internal/report"
	"chainchaos/internal/tlsscan"
	"chainchaos/internal/tlsserve"
)

// Config parameterizes a study run.
type Config struct {
	// Sites is the number of TLS listeners to stand up (default 40 — each
	// one needs real key generation and a socket).
	Sites int
	// Seed drives defect assignment.
	Seed int64
	// Vantages is the number of scan passes to merge (default 2, the
	// paper's US/AU pair).
	Vantages int
	// Concurrency bounds parallel scanning (default 8).
	Concurrency int
	// Timeout bounds each handshake (default 5s).
	Timeout time.Duration
	// Workers bounds the parallel grade-and-difftest loop over scanned
	// sites; <= 0 means GOMAXPROCS. Results are deterministic for any
	// worker count.
	Workers int
	// Retries is the extra handshake attempts the scanner spends on each
	// transport failure (0 = scan once).
	Retries int
	// RescanPasses bounds the re-scan sweeps over sites that every vantage
	// failed to capture (default 1; negative disables).
	RescanPasses int
	// Faults misconfigures every listener on purpose, so the run exercises
	// the retry/re-scan machinery instead of assuming a polite network.
	Faults tlsserve.FaultConfig
	// Clock paces scan backoff, throttling, and injected server faults;
	// nil means the wall clock.
	Clock faults.Clock
	// Reuse is the fraction of sites that present a chain drawn from a
	// shared slot pool instead of minting their own — the population shape
	// the paper measured, where a handful of hosting-provider chains serve
	// most of the Top-1M. 0 disables (every site mints its own leaf).
	// Decisions derive from (Seed, rank) alone, so the shape is identical
	// for any worker count or resume point.
	Reuse float64
	// DistinctChains is the slot-pool size under Reuse (default 3000). The
	// slot draw is power-law skewed, so the head slots dominate.
	DistinctChains int
	// Dedup memoizes per distinct chain: slot sites share one listener and
	// one physical scan (sync.Once), and the grade stage consults a
	// verdict cache (study.vcache) keyed by (chain digest, client-profile
	// fingerprint, leaf-match bit), so a duplicate chain costs a map
	// lookup plus leaf classification instead of keygen + handshake +
	// analysis + eight client path-builds. On a fault-free run the report
	// tables and the streamed JSONL are byte-identical with Dedup on or
	// off; under injected faults only the run-level scan/fault tallies may
	// differ (shared sites are physically scanned once, not per site).
	Dedup bool
	// Scenarios are fuzzer-discovered chain topologies to replay: at
	// ScenarioRate, a site presents a scenario's synthetic chain verbatim
	// instead of minting a deployment (see cmd/divfuzz -scenarios). Synthetic
	// certificates cannot complete a real TLS handshake, so scenario sites
	// skip the physical listener and scan; their lists enter the grade stage
	// directly, against a trust store extended with the scenarios' anchors.
	Scenarios []population.Scenario
	// ScenarioRate is the fraction of sites replaying a scenario when
	// Scenarios is non-empty. The coin and pick are salted per-rank streams
	// (see reuse.go), so replay is worker-invariant and an empty Scenarios
	// leaves the run byte-identical.
	ScenarioRate float64
	// Metrics, when non-nil, instruments the whole pipeline: scanner and
	// listener counters, AIA repository hits, per-client construction
	// metrics, and per-stage timers (study.deploy / study.scan /
	// study.rescan / study.grade). The final Report carries a Snapshot and
	// its Tables() gain the pipeline stage table. When Clock is also set
	// and the registry has no Now of its own, the registry is put on the
	// same clock, so fault-injection runs snapshot deterministically.
	Metrics *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.Sites <= 0 {
		c.Sites = 40
	}
	if c.Vantages <= 0 {
		c.Vantages = 2
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.RescanPasses == 0 {
		c.RescanPasses = 1
	}
	if c.RescanPasses < 0 {
		c.RescanPasses = 0
	}
	if c.Reuse > 0 && c.DistinctChains <= 0 {
		c.DistinctChains = 3000
	}
}

// defect enumerates the deployment mutations the study injects.
type defect int

const (
	defectNone defect = iota
	defectReversed
	defectDuplicateLeaf
	defectIncomplete
	defectIrrelevant
	defectStaleLeaf
	// defectScenario marks a site replaying a fuzzer-discovered topology;
	// the actual defect shape is the scenario's, not this enum's.
	defectScenario
)

func (d defect) String() string {
	switch d {
	case defectNone:
		return "compliant"
	case defectReversed:
		return "reversed"
	case defectDuplicateLeaf:
		return "duplicate-leaf"
	case defectIncomplete:
		return "incomplete"
	case defectIrrelevant:
		return "irrelevant"
	case defectStaleLeaf:
		return "stale-leaf"
	case defectScenario:
		return "scenario"
	default:
		return "unknown"
	}
}

// Site is one deployed listener.
type Site struct {
	Domain   string
	Addr     string
	Injected defect
	Server   string
	// Scenario names the replayed scenario for defectScenario sites.
	Scenario string

	Report   compliance.Report
	Verdicts map[string]bool
}

// ErrorBreakdown counts failed scan attempts per cause — the transport-vs-
// finding distinction a single integer conflated.
type ErrorBreakdown struct {
	Dial, Handshake, Parse, Cancelled int
}

func (b *ErrorBreakdown) add(c tlsscan.ErrorCause) {
	switch c {
	case tlsscan.CauseDial:
		b.Dial++
	case tlsscan.CauseHandshake:
		b.Handshake++
	case tlsscan.CauseParse:
		b.Parse++
	case tlsscan.CauseCancelled:
		b.Cancelled++
	}
}

// Total is the sum over all causes.
func (b ErrorBreakdown) Total() int {
	return b.Dial + b.Handshake + b.Parse + b.Cancelled
}

// Report is a completed study.
type Report struct {
	Cfg   Config
	Sites []*Site

	// ScanErrors is the total number of failed scan results across every
	// vantage and re-scan pass (a site recovered by a later pass still
	// counts its earlier failures here).
	ScanErrors int
	// ScanErrorCauses breaks ScanErrors down by cause.
	ScanErrorCauses ErrorBreakdown
	// Rescanned is how many sites were recovered by the bounded re-scan
	// passes after every vantage missed them.
	Rescanned int
	// Lost is how many sites were never captured by any pass; grading
	// skips them, and a healthy run reports zero.
	Lost int
	// FaultsInjected is the total number of misbehaviours the listeners
	// fired (sum over the farm).
	FaultsInjected int
	// AcceptRetries is the total number of temporary Accept errors the
	// listeners retried.
	AcceptRetries int
	// DeadlineExpiries is how many server-side handshakes were cut by the
	// per-connection deadline.
	DeadlineExpiries int
	// LeavesGenerated counts end-entity certificates minted for the farm.
	// Exactly one leaf is generated per site — stale-leaf sites mint their
	// expired leaf directly instead of minting a fresh one first and
	// discarding it — so without Cfg.Reuse this always equals len(Sites).
	// Under Reuse, slot sites share their slot's wildcard leaf, so it
	// equals unique sites + slots materialized.
	LeavesGenerated int
	// Streamed and StreamedCompliant tally sites as they retire through the
	// pipeline sink, so a streaming run that does not keep Sites still
	// reports how many it graded compliant. When Sites are kept, Streamed ==
	// len(Sites) and StreamedCompliant == CompliantCount().
	Streamed          int
	StreamedCompliant int
	// Snapshot is the metrics export taken after the run when Cfg.Metrics
	// was wired; nil otherwise.
	Snapshot *obs.Snapshot
}

// CompliantCount returns how many scanned sites graded compliant. It is
// meaningful for streaming runs too, where Sites themselves are not kept.
func (r *Report) CompliantCount() int {
	return r.StreamedCompliant
}

// SiteCount returns how many sites the run processed — len(Sites) when they
// were kept, the sink tally otherwise.
func (r *Report) SiteCount() int {
	return r.Streamed
}

// Tables renders the study as report tables (an overview plus per-client
// pass rates over the non-compliant sites).
func (r *Report) Tables() []*report.Table {
	overview := report.New(
		fmt.Sprintf("study — %d sites scanned from %d vantages", len(r.Sites), r.Cfg.Vantages),
		"Domain", "Injected", "Server", "Leaf", "Order OK", "Completeness", "Verdict")
	for _, s := range r.Sites {
		verdict := "COMPLIANT"
		if !s.Report.Compliant() {
			verdict = "NON-COMPLIANT"
		}
		overview.Addf(s.Domain, s.Injected, s.Server,
			s.Report.Leaf, report.Mark(s.Report.Order.SequentialOK),
			s.Report.Completeness.Class, verdict)
	}

	perClient := report.New("per-client pass rate over non-compliant sites", "Client", "Pass")
	bad := 0
	passes := map[string]int{}
	for _, s := range r.Sites {
		if s.Report.Compliant() {
			continue
		}
		bad++
		for name, ok := range s.Verdicts {
			if ok {
				passes[name]++
			}
		}
	}
	for _, p := range clients.All() {
		perClient.Add(p.Name, report.Count(passes[p.Name], bad))
	}

	failures := report.New("scan failures by cause (all passes)", "Cause", "Failed attempts")
	failures.Addf("dial", r.ScanErrorCauses.Dial)
	failures.Addf("handshake", r.ScanErrorCauses.Handshake)
	failures.Addf("parse", r.ScanErrorCauses.Parse)
	failures.Addf("cancelled", r.ScanErrorCauses.Cancelled)
	failures.Addf("total", r.ScanErrors)
	failures.Addf("sites recovered by re-scan", r.Rescanned)
	failures.Addf("sites lost", r.Lost)
	failures.Addf("server faults injected", r.FaultsInjected)
	failures.Addf("server accept retries", r.AcceptRetries)
	failures.Addf("server deadline expiries", r.DeadlineExpiries)
	tables := []*report.Table{overview, perClient, failures}
	if r.Snapshot != nil {
		if pt := r.Snapshot.PipelineTable(); pt != nil {
			tables = append(tables, pt)
		}
	}
	return tables
}
