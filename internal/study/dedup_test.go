package study

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"chainchaos/internal/obs"
	"chainchaos/internal/pipeline"
)

// reuseCfg is a study farm with paper-realistic chain sharing: most sites
// serve one of a handful of pooled slot chains.
func reuseStudyCfg(sites int) Config {
	return Config{
		Sites: sites, Seed: 9, Vantages: 2, Concurrency: 4, Workers: 4,
		Reuse: 0.8, DistinctChains: 6,
	}
}

// TestStudyDedupBitIdentical: with chain reuse in the farm, Dedup must change
// only the cost of the run — the per-site JSONL stream, the kept sites, and
// the fault-free aggregates stay identical with the cache on or off.
func TestStudyDedupBitIdentical(t *testing.T) {
	cfg := reuseStudyCfg(80)

	run := func(dedup bool) (*Report, []byte, *obs.Snapshot) {
		c := cfg
		c.Dedup = dedup
		c.Metrics = obs.NewRegistry()
		var buf bytes.Buffer
		rep, err := RunStream(context.Background(), c, Stream{Out: &buf, KeepSites: true})
		if err != nil {
			t.Fatalf("RunStream(dedup=%v): %v", dedup, err)
		}
		return rep, buf.Bytes(), c.Metrics.Snapshot()
	}

	off, offOut, offSnap := run(false)
	on, onOut, onSnap := run(true)

	if !bytes.Equal(offOut, onOut) {
		t.Errorf("JSONL streams differ dedup on vs off (%d vs %d bytes)", len(offOut), len(onOut))
	}
	if len(on.Sites) != len(off.Sites) {
		t.Fatalf("site counts differ: %d vs %d", len(on.Sites), len(off.Sites))
	}
	for i := range on.Sites {
		a, b := on.Sites[i], off.Sites[i]
		if a.Domain != b.Domain || a.Injected != b.Injected || a.Server != b.Server {
			t.Fatalf("site %d assignment differs: %s/%v/%s vs %s/%v/%s",
				i, a.Domain, a.Injected, a.Server, b.Domain, b.Injected, b.Server)
		}
		if !reflect.DeepEqual(a.Report, b.Report) {
			t.Fatalf("site %d report differs:\n on: %+v\noff: %+v", i, a.Report, b.Report)
		}
		if !reflect.DeepEqual(a.Verdicts, b.Verdicts) {
			t.Fatalf("site %d verdicts differ: %v vs %v", i, a.Verdicts, b.Verdicts)
		}
	}
	if on.ScanErrors != off.ScanErrors || on.Lost != off.Lost ||
		on.Rescanned != off.Rescanned || on.FaultsInjected != off.FaultsInjected {
		t.Errorf("fault-free aggregates differ:\n on: %+v\noff: %+v", on, off)
	}
	if on.LeavesGenerated != off.LeavesGenerated {
		t.Errorf("leaves minted differ: %d vs %d", on.LeavesGenerated, off.LeavesGenerated)
	}
	if on.LeavesGenerated >= cfg.Sites {
		t.Errorf("reuse minted %d leaves for %d sites: slots did not share", on.LeavesGenerated, cfg.Sites)
	}

	hits, misses := onSnap.Counters["study.vcache.hits"], onSnap.Counters["study.vcache.misses"]
	if hits == 0 {
		t.Error("dedup run saw no cache hits over a Reuse=0.8 farm")
	}
	if hits+misses != int64(cfg.Sites) {
		t.Errorf("hits(%d)+misses(%d) != sites(%d)", hits, misses, cfg.Sites)
	}
	if n := offSnap.Counters["study.vcache.hits"] + offSnap.Counters["study.vcache.misses"]; n != 0 {
		t.Errorf("dedup-off run consulted the cache %d times; want 0", n)
	}
}

// TestStudyDedupWorkerInvariant: the dedup stream is byte-identical for any
// (workers, concurrency, queue) configuration — the cache changes who grades
// a chain first, never what any site's record says.
func TestStudyDedupWorkerInvariant(t *testing.T) {
	base := reuseStudyCfg(48)
	base.Dedup = true
	var first []byte
	for _, tc := range []struct{ workers, concurrency, queue int }{
		{1, 1, 1},
		{4, 8, 2},
		{8, 4, 16},
	} {
		cfg := base
		cfg.Workers, cfg.Concurrency = tc.workers, tc.concurrency
		var buf bytes.Buffer
		if _, err := RunStream(context.Background(), cfg, Stream{Out: &buf, Queue: tc.queue}); err != nil {
			t.Fatalf("workers=%d queue=%d: %v", tc.workers, tc.queue, err)
		}
		if first == nil {
			first = append([]byte(nil), buf.Bytes()...)
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("workers=%d concurrency=%d queue=%d: JSONL differs from first configuration",
				tc.workers, tc.concurrency, tc.queue)
		}
	}
}

// TestStudyDedupResume: a checkpointed dedup run killed mid-stream resumes
// from the journal watermark; the resumed process re-materializes the slots
// it needs and the concatenated output is byte-identical to an uninterrupted
// run.
func TestStudyDedupResume(t *testing.T) {
	cfg := reuseStudyCfg(24)
	cfg.Dedup = true
	cfg.Vantages = 1

	var full bytes.Buffer
	if _, err := RunStream(context.Background(), cfg, Stream{Out: &full, Queue: 2}); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "study.ckpt")
	j, err := pipeline.OpenJournal(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	j.Every = 1
	interrupted := errors.New("killed")
	w := &failAfter{n: 7, errv: interrupted}
	_, err = RunStream(context.Background(), cfg, Stream{Out: w, Queue: 2, Journal: j})
	if !errors.Is(err, interrupted) {
		t.Fatalf("first run err = %v, want the injected kill", err)
	}
	j.Close()

	j2, err := pipeline.OpenJournal(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resume := j2.Last(pipeline.SinkName("grade")) + 1
	if resume != 7 {
		t.Fatalf("resume rank = %d, want 7 (seven lines were written)", resume)
	}
	rest := &bytes.Buffer{}
	if _, err := RunStream(context.Background(), cfg, Stream{Out: rest, Queue: 2, Journal: j2, Resume: resume}); err != nil {
		t.Fatal(err)
	}

	combined := append(append([]byte(nil), w.buf.Bytes()...), rest.Bytes()...)
	if !bytes.Equal(combined, full.Bytes()) {
		t.Fatalf("resumed output differs from uninterrupted run:\ncombined:\n%s\nfull:\n%s", combined, full.Bytes())
	}
}
