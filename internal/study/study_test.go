package study

import "testing"

func TestStudyEndToEnd(t *testing.T) {
	rep, err := Run(Config{Sites: 24, Seed: 4, Vantages: 2, Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sites) != 24 {
		t.Fatalf("sites = %d", len(rep.Sites))
	}
	if rep.ScanErrors != 0 {
		t.Errorf("scan errors = %d", rep.ScanErrors)
	}

	var sawDefect, sawCompliant bool
	for _, s := range rep.Sites {
		if s.Verdicts == nil {
			t.Fatalf("%s: never scanned", s.Domain)
		}
		switch s.Injected {
		case defectNone:
			sawCompliant = true
			if !s.Report.Compliant() {
				t.Errorf("%s: clean deployment graded non-compliant (%+v)", s.Domain, s.Report.Order)
			}
			for client, ok := range s.Verdicts {
				if !ok {
					t.Errorf("%s: %s rejected a compliant chain", s.Domain, client)
				}
			}
		case defectReversed:
			sawDefect = true
			if s.Report.Compliant() {
				t.Errorf("%s: reversed deployment graded compliant", s.Domain)
			}
			if s.Verdicts["MbedTLS"] {
				t.Errorf("%s: MbedTLS accepted a reversed chain", s.Domain)
			}
			if !s.Verdicts["Chrome"] {
				t.Errorf("%s: Chrome rejected a reorderable chain", s.Domain)
			}
		case defectIncomplete:
			sawDefect = true
			if s.Verdicts["OpenSSL"] {
				t.Errorf("%s: OpenSSL accepted an incomplete chain", s.Domain)
			}
			if !s.Verdicts["CryptoAPI"] {
				t.Errorf("%s: CryptoAPI failed to AIA-complete", s.Domain)
			}
		}
	}
	if !sawDefect || !sawCompliant {
		t.Error("defect mix not exercised; adjust seed")
	}

	tables := rep.Tables()
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	if tables[0].String() == "" || tables[1].String() == "" {
		t.Error("empty table rendering")
	}
}
