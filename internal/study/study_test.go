package study

import (
	"testing"
	"time"

	"chainchaos/internal/faults"
	"chainchaos/internal/tlsserve"
)

func TestStudyEndToEnd(t *testing.T) {
	rep, err := Run(Config{Sites: 24, Seed: 4, Vantages: 2, Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sites) != 24 {
		t.Fatalf("sites = %d", len(rep.Sites))
	}
	if rep.ScanErrors != 0 {
		t.Errorf("scan errors = %d", rep.ScanErrors)
	}

	var sawDefect, sawCompliant bool
	for _, s := range rep.Sites {
		if s.Verdicts == nil {
			t.Fatalf("%s: never scanned", s.Domain)
		}
		switch s.Injected {
		case defectNone:
			sawCompliant = true
			if !s.Report.Compliant() {
				t.Errorf("%s: clean deployment graded non-compliant (%+v)", s.Domain, s.Report.Order)
			}
			for client, ok := range s.Verdicts {
				if !ok {
					t.Errorf("%s: %s rejected a compliant chain", s.Domain, client)
				}
			}
		case defectReversed:
			sawDefect = true
			if s.Report.Compliant() {
				t.Errorf("%s: reversed deployment graded compliant", s.Domain)
			}
			if s.Verdicts["MbedTLS"] {
				t.Errorf("%s: MbedTLS accepted a reversed chain", s.Domain)
			}
			if !s.Verdicts["Chrome"] {
				t.Errorf("%s: Chrome rejected a reorderable chain", s.Domain)
			}
		case defectIncomplete:
			sawDefect = true
			if s.Verdicts["OpenSSL"] {
				t.Errorf("%s: OpenSSL accepted an incomplete chain", s.Domain)
			}
			if !s.Verdicts["CryptoAPI"] {
				t.Errorf("%s: CryptoAPI failed to AIA-complete", s.Domain)
			}
		}
	}
	if !sawDefect || !sawCompliant {
		t.Error("defect mix not exercised; adjust seed")
	}

	tables := rep.Tables()
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	for i, table := range tables {
		if table.String() == "" {
			t.Errorf("table %d renders empty", i)
		}
	}
	if rep.Lost != 0 || rep.Rescanned != 0 || rep.ScanErrorCauses.Total() != 0 {
		t.Errorf("clean run reported lost=%d rescanned=%d causes=%+v",
			rep.Lost, rep.Rescanned, rep.ScanErrorCauses)
	}
}

// TestStudyFaultsRecoveredByRetry: every listener resets its first
// connection; the scanner's retry budget absorbs it and the report shows a
// clean run — zero lost sites, zero residual errors.
func TestStudyFaultsRecoveredByRetry(t *testing.T) {
	clock := faults.NewFakeClock(time.Now())
	rep, err := Run(Config{
		Sites: 10, Seed: 4, Vantages: 2, Concurrency: 4,
		Retries: 3,
		Faults:  tlsserve.FaultConfig{FailFirst: 1},
		Clock:   clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScanErrors != 0 {
		t.Errorf("scan errors = %d (%+v); retries should have absorbed the resets",
			rep.ScanErrors, rep.ScanErrorCauses)
	}
	if rep.Lost != 0 {
		t.Errorf("lost sites = %d", rep.Lost)
	}
	for _, s := range rep.Sites {
		if s.Verdicts == nil {
			t.Errorf("%s: never graded", s.Domain)
		}
	}
	if clock.SleptTotal() == 0 {
		t.Error("retry backoff never used the injected clock")
	}
}

// TestStudyFaultsRecoveredByRescan: with no retry budget and two failing
// connections per listener, both vantages miss every site; the bounded
// re-scan pass recovers all of them, and the failures land under the
// handshake cause (TCP connected, TLS reset).
func TestStudyFaultsRecoveredByRescan(t *testing.T) {
	const sites = 8
	rep, err := Run(Config{
		Sites: sites, Seed: 4, Vantages: 2, Concurrency: 4,
		Faults: tlsserve.FaultConfig{FailFirst: 2},
		Clock:  faults.NewFakeClock(time.Now()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScanErrors != 2*sites {
		t.Errorf("scan errors = %d, want %d (two reset vantages per site)", rep.ScanErrors, 2*sites)
	}
	if got := rep.ScanErrorCauses.Total(); got != rep.ScanErrors {
		t.Errorf("cause breakdown sums to %d, want %d", got, rep.ScanErrors)
	}
	if rep.ScanErrorCauses.Parse != 0 || rep.ScanErrorCauses.Cancelled != 0 {
		t.Errorf("transport faults misclassified: %+v", rep.ScanErrorCauses)
	}
	if rep.Rescanned != sites {
		t.Errorf("rescanned = %d, want %d", rep.Rescanned, sites)
	}
	if rep.Lost != 0 {
		t.Errorf("lost sites = %d, want 0", rep.Lost)
	}
	for _, s := range rep.Sites {
		if s.Verdicts == nil {
			t.Errorf("%s: lost despite re-scan", s.Domain)
		}
	}
}

// TestStudySlowAndStallFaults: every FaultConfig mode that still completes a
// handshake (slow write, short stall) must cost wall patience, not sites.
func TestStudySlowAndStallFaults(t *testing.T) {
	rep, err := Run(Config{
		Sites: 6, Seed: 2, Vantages: 1, Concurrency: 6,
		Retries: 2,
		Faults: tlsserve.FaultConfig{
			StallHandshake: 5 * time.Millisecond,
			SlowWrite:      time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 {
		t.Errorf("lost sites = %d under stall+slow-write", rep.Lost)
	}
	for _, s := range rep.Sites {
		if s.Verdicts == nil {
			t.Errorf("%s: never graded", s.Domain)
		}
	}
}
