// Tally flattening for distributed runs: a worker ships its sub-range
// Report as a flat counter map over the wire, and the coordinator folds the
// maps from every lease back into one merged Report.
package study

// Tally keys. Kept stable: they cross the coordinator/worker wire.
const (
	tallyScanErrors       = "scan_errors"
	tallyErrDial          = "scan_err_dial"
	tallyErrHandshake     = "scan_err_handshake"
	tallyErrParse         = "scan_err_parse"
	tallyErrCancelled     = "scan_err_cancelled"
	tallyRescanned        = "rescanned"
	tallyLost             = "lost"
	tallyFaultsInjected   = "faults_injected"
	tallyAcceptRetries    = "accept_retries"
	tallyDeadlineExpiries = "deadline_expiries"
	tallyLeaves           = "leaves_generated"
	tallyStreamed         = "streamed"
	tallyCompliant        = "streamed_compliant"
)

// Tallies flattens the report's additive aggregate counts into the wire
// form a distributed worker returns per lease. Only counts that sum across
// disjoint rank ranges are included — Sites, Cfg, and Snapshot stay local.
func (r *Report) Tallies() map[string]int64 {
	return map[string]int64{
		tallyScanErrors:       int64(r.ScanErrors),
		tallyErrDial:          int64(r.ScanErrorCauses.Dial),
		tallyErrHandshake:     int64(r.ScanErrorCauses.Handshake),
		tallyErrParse:         int64(r.ScanErrorCauses.Parse),
		tallyErrCancelled:     int64(r.ScanErrorCauses.Cancelled),
		tallyRescanned:        int64(r.Rescanned),
		tallyLost:             int64(r.Lost),
		tallyFaultsInjected:   int64(r.FaultsInjected),
		tallyAcceptRetries:    int64(r.AcceptRetries),
		tallyDeadlineExpiries: int64(r.DeadlineExpiries),
		tallyLeaves:           int64(r.LeavesGenerated),
		tallyStreamed:         int64(r.Streamed),
		tallyCompliant:        int64(r.StreamedCompliant),
	}
}

// ReportFromTallies rebuilds the merged aggregate Report from the summed
// tally maps of every lease of a distributed run.
func ReportFromTallies(cfg Config, t map[string]int64) *Report {
	return &Report{
		Cfg:        cfg,
		ScanErrors: int(t[tallyScanErrors]),
		ScanErrorCauses: ErrorBreakdown{
			Dial:      int(t[tallyErrDial]),
			Handshake: int(t[tallyErrHandshake]),
			Parse:     int(t[tallyErrParse]),
			Cancelled: int(t[tallyErrCancelled]),
		},
		Rescanned:         int(t[tallyRescanned]),
		Lost:              int(t[tallyLost]),
		FaultsInjected:    int(t[tallyFaultsInjected]),
		AcceptRetries:     int(t[tallyAcceptRetries]),
		DeadlineExpiries:  int(t[tallyDeadlineExpiries]),
		LeavesGenerated:   int(t[tallyLeaves]),
		Streamed:          int(t[tallyStreamed]),
		StreamedCompliant: int(t[tallyCompliant]),
	}
}
