// The study's staged dataflow: deploy → scan (+rescan) → grade, one site per
// rank, on the pipeline engine. Every stage hop is a bounded channel, so the
// number of live listeners — each one a real socket plus goroutines — is
// O(workers + queue) for any site count, instead of every listener for the
// whole run as the batch path once held. Run is the batch adapter (it keeps
// Report.Sites); RunStream adds the JSONL record sink and checkpoint/resume.
package study

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"chainchaos/internal/aia"
	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/clients"
	"chainchaos/internal/compliance"
	"chainchaos/internal/faults"
	"chainchaos/internal/httpserver"
	"chainchaos/internal/ledger"
	"chainchaos/internal/parallel"
	"chainchaos/internal/pathbuild"
	"chainchaos/internal/pipeline"
	"chainchaos/internal/population"
	"chainchaos/internal/rootstore"
	"chainchaos/internal/tlsscan"
	"chainchaos/internal/tlsserve"
	"chainchaos/internal/topo"
	"chainchaos/internal/verdictcache"
)

// Stream configures the streaming variant of a study run.
type Stream struct {
	// Out, when non-nil, receives one JSONL SiteRecord per site, in rank
	// order. Records carry only rank-deterministic fields (never the
	// ephemeral listener address), so two runs with the same (Seed, Sites)
	// write byte-identical streams for any worker count or queue depth.
	Out io.Writer
	// Journal, when non-nil, checkpoints per-stage retirement watermarks so
	// an interrupted run can resume.
	Journal *pipeline.Journal
	// Resume is the first site rank to deploy; a resuming caller passes
	// Journal.Last(pipeline.SinkName("grade"))+1. Ranks below Resume are
	// skipped entirely (every per-rank assignment is salted by (Seed, rank),
	// so the remaining sites are identical to a full run's).
	Resume int
	// Limit, when > 0, is the first rank the run does NOT process: the run
	// covers exactly [Resume, Limit) of a cfg.Sites-site study. Because
	// every per-rank decision is salted by (Seed, rank), the records of a
	// range-restricted run are byte-identical to the same ranks of a full
	// run — the property the distributed coordinator leans on when leasing
	// sub-ranges to workers.
	Limit int
	// Record, when non-nil, receives each site's JSONL record (without
	// trailing newline) in rank order — the distributed worker's tap. It
	// runs in addition to Out, before it.
	Record func(rank int, line []byte) error
	// Ledger, when non-nil, receives each emitted record line as a Merkle
	// leaf after it is written, so batch roots anchor into the checkpoint
	// journal. The sink is dense — every rank emits exactly one line — so
	// rank == leaf index. Nil is inert.
	Ledger *ledger.Batcher
	// Queue bounds each stage hop; <= 0 means 2× the stage's workers.
	Queue int
	// KeepSites retains every graded *Site in Report.Sites — the batch
	// behavior. Streaming callers leave it false: the Report then carries
	// only the aggregate tallies and memory stays bounded.
	KeepSites bool
}

// SiteRecord is the JSONL line RunStream emits per site.
type SiteRecord struct {
	Rank         int             `json:"rank"`
	Domain       string          `json:"domain"`
	Injected     string          `json:"injected"`
	Server       string          `json:"server"`
	Scanned      bool            `json:"scanned"`
	Compliant    bool            `json:"compliant"`
	Leaf         string          `json:"leaf,omitempty"`
	OrderOK      bool            `json:"order_ok"`
	Completeness string          `json:"completeness,omitempty"`
	Verdicts     map[string]bool `json:"verdicts,omitempty"`
	ScanErrors   int             `json:"scan_errors,omitempty"`
	Rescanned    bool            `json:"rescanned,omitempty"`
	Scenario     string          `json:"scenario,omitempty"`
}

// deployed is one live site between the deploy source and the scan stage.
type deployed struct {
	site   *Site
	srv    *tlsserve.Server
	target tlsscan.Target
	// slot is non-nil for a Dedup-mode shared site: the scan stage then
	// reuses the slot's once-only physical scan instead of srv/target.
	slot *studySlot
	// list is non-nil for a scenario-replay site: the synthetic chain cannot
	// complete a real handshake, so it bypasses the listener and scan and is
	// graded as captured.
	list []*certmodel.Certificate
	// minted records whether this rank minted a leaf (always true for
	// unique sites; true for the slot site that materialized its slot).
	minted bool
}

// scannedSite adds the site's merged capture and scan tallies.
type scannedSite struct {
	deployed
	list      []*certmodel.Certificate
	digest    certmodel.FP
	errs      ErrorBreakdown
	rescanned bool
	lost      bool
}

// gradedSite is the retired form: the listener is closed, its fault ledger
// folded in.
type gradedSite struct {
	site             *Site
	errs             ErrorBreakdown
	rescanned        bool
	lost             bool
	minted           bool
	faultsInjected   int
	acceptRetries    int
	deadlineExpiries int
}

// studyMemo is the verdict-cache value under Config.Dedup: every grading
// output that does not depend on the site's hostname. Leaf placement — the
// one hostname-dependent piece — is recomputed per site on a hit; the
// Verdicts map is aliased read-only by every hit site (the leaf-match bit is
// part of the cache key, so the verdicts are exactly what regrading would
// produce).
type studyMemo struct {
	Order        compliance.OrderReport
	Completeness compliance.CompletenessReport
	Verdicts     map[string]bool
}

// liveServers tracks listeners between deploy and grade so an aborted run
// closes every socket it opened.
type liveServers struct {
	mu sync.Mutex
	m  map[*tlsserve.Server]struct{}
}

func (l *liveServers) add(s *tlsserve.Server) {
	l.mu.Lock()
	l.m[s] = struct{}{}
	l.mu.Unlock()
}

func (l *liveServers) remove(s *tlsserve.Server) {
	l.mu.Lock()
	delete(l.m, s)
	l.mu.Unlock()
}

func (l *liveServers) closeAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for s := range l.m {
		s.Close()
	}
	l.m = map[*tlsserve.Server]struct{}{}
}

// Run executes the study. It is the batch adapter over the streaming
// pipeline: same stages, same report, with every site retained.
func Run(cfg Config) (*Report, error) {
	return RunStream(context.Background(), cfg, Stream{KeepSites: true})
}

// RunStream executes the study as a deploy→scan→grade pipeline. Sites flow
// through bounded stage queues: the serial deploy source assigns defects
// from per-rank salted splitmix64 streams (bit-identical to the batch path
// for any worker count), cfg.Concurrency scan workers handshake each site from every
// vantage and re-scan the missed ones, and cfg.Workers grade workers run the
// analyzer plus all eight client models before the listener is torn down.
// The sink aggregates the Report and, when st.Out is set, writes one JSONL
// SiteRecord per site in rank order.
func RunStream(ctx context.Context, cfg Config, st Stream) (*Report, error) {
	cfg.fillDefaults()
	reg := cfg.Metrics
	if reg != nil && cfg.Clock != nil && reg.Now == nil {
		// Deterministic fault runs: stage timers tick on the same injected
		// clock as the faults and backoff they time.
		reg.Now = cfg.Clock.Now
	}
	deployTimer := reg.Timer("study.deploy")
	scanTimer := reg.Timer("study.scan")
	rescanTimer := reg.Timer("study.rescan")
	gradeTimer := reg.Timer("study.grade")
	leavesCounter := reg.Counter("study.leaves_generated")
	rescannedCounter := reg.Counter("study.rescanned")

	pkiSW := deployTimer.Start()
	// Real PKI: a root with two intermediates, AIA-wired.
	root, err := certgen.NewRoot("Study Root")
	if err != nil {
		return nil, err
	}
	ca2, err := root.NewIntermediate("Study CA 2")
	if err != nil {
		return nil, err
	}
	const ca2URI = "http://repo.study.example/ca2.der"
	ca1, err := ca2.NewIntermediate("Study CA 1", certgen.WithAIA(ca2URI))
	if err != nil {
		return nil, err
	}
	stray, err := certgen.NewRoot("Study Stray Root")
	if err != nil {
		return nil, err
	}
	// Scenario replay: materialize the injected topologies up front so their
	// trust anchors land in the store before it seals and their AIA entries
	// are served alongside the study's own.
	scenarios := make([]*population.MaterializedScenario, 0, len(cfg.Scenarios))
	for _, s := range cfg.Scenarios {
		m, err := s.Materialize()
		if err != nil {
			return nil, fmt.Errorf("study: scenario %q: %w", s.Name, err)
		}
		scenarios = append(scenarios, m)
	}

	repo := aia.NewRepository().Instrument(reg)
	repo.Put(ca2URI, ca2.Cert)
	for _, m := range scenarios {
		uris, certs := m.AIAEntries()
		for i, uri := range uris {
			repo.Put(uri, certs[i])
		}
	}
	roots := rootstore.NewWith("study", root.Cert)
	for _, m := range scenarios {
		for _, r := range m.Roots {
			roots.Add(r)
		}
	}
	// The study trust store never grows after this point; sealed, the
	// parallel site-grading workers read it without locking. The per-site
	// intermediate caches created below stay unsealed — Firefox-style
	// builders keep feeding them during the measurement.
	roots.Seal()
	pkiSW.Stop()

	servers := []httpserver.Model{
		httpserver.ApacheOld(), httpserver.Apache(), httpserver.Nginx(),
		httpserver.AzureAppGateway(), httpserver.IIS(), httpserver.AWSELB(),
	}
	defects := []defect{
		defectNone, defectNone, defectNone, defectNone, defectNone, defectNone,
		defectReversed, defectDuplicateLeaf, defectIncomplete, defectIrrelevant, defectStaleLeaf,
	}

	live := &liveServers{m: map[*tlsserve.Server]struct{}{}}
	defer live.closeAll()

	// mintDeployment mints one leaf (exactly one — a stale-leaf deployment
	// mints its expired leaf directly, the admin who never renewed, instead
	// of a fresh leaf plus a discarded second) and runs the server model
	// over it. LeavesGenerated proves no cert is wasted.
	mintDeployment := func(name string, inj defect, model httpserver.Model) (*certgen.Leaf, []*certmodel.Certificate, defect, error) {
		var leafOpts []certgen.Option
		if inj == defectStaleLeaf {
			leafOpts = append(leafOpts, certgen.WithValidity(
				certgen.Reference.AddDate(-2, 0, 0), certgen.Reference.AddDate(-1, 0, 0)))
		}
		leaf, err := ca1.NewLeaf(name, leafOpts...)
		if err != nil {
			return nil, nil, inj, err
		}
		leavesCounter.Inc()

		chain := []*certmodel.Certificate{ca1.Cert, ca2.Cert}
		switch inj {
		case defectReversed:
			chain = []*certmodel.Certificate{root.Cert, ca2.Cert, ca1.Cert}
		case defectDuplicateLeaf:
			chain = append([]*certmodel.Certificate{leaf.Cert}, chain...)
		case defectIncomplete:
			chain = []*certmodel.Certificate{ca1.Cert}
		case defectIrrelevant:
			chain = append(chain, stray.Cert)
		}

		// The upload follows the model's file scheme: split-scheme servers
		// take CertFile+ChainFile, the rest one Fullchain. Deploy now
		// rejects a Fullchain handed to a split-scheme server, so the input
		// must pick one layout, exactly as an administrator does.
		input := func(chain []*certmodel.Certificate) httpserver.ConfigInput {
			in := httpserver.ConfigInput{PrivateKeyFor: leaf.Cert}
			if model.Scheme == httpserver.SchemeSplit {
				in.CertFile = []*certmodel.Certificate{leaf.Cert}
				in.ChainFile = chain
			} else {
				in.Fullchain = append([]*certmodel.Certificate{leaf.Cert}, chain...)
			}
			return in
		}
		wire, err := model.Deploy(input(chain))
		if err == httpserver.ErrDuplicateLeaf {
			// The server's check fired; the administrator fixes the files.
			inj = defectNone
			wire, err = model.Deploy(input(chain[1:]))
		}
		if err != nil {
			return nil, nil, inj, fmt.Errorf("study: deploy %s on %s: %w", name, model.Name, err)
		}
		return leaf, wire, inj, nil
	}

	// mintSlot materializes (once, in the serial source) a reuse slot: its
	// defect and server model come from slot-salted streams, its leaf is the
	// zone wildcard every slot site matches. Under Dedup the slot also gets
	// the one shared listener its first scanned site will probe and close.
	slots := map[int]*studySlot{}
	mintSlot := func(idx int) (*studySlot, bool, error) {
		if s, ok := slots[idx]; ok {
			return s, false, nil
		}
		s := &studySlot{
			zone:  slotZone(idx),
			inj:   defects[pick(len(defects), cfg.Seed, idx, slotDefectSalt)],
			model: servers[pick(len(servers), cfg.Seed, idx, slotServerSalt)],
		}
		leaf, wire, inj, err := mintDeployment("*."+s.zone, s.inj, s.model)
		if err != nil {
			return nil, false, err
		}
		s.leaf, s.wire, s.inj = leaf, wire, inj
		if cfg.Dedup {
			srv, err := tlsserve.Start(tlsserve.Config{
				List: wire, Key: leaf.Key, Domain: "*." + s.zone,
				Faults: cfg.Faults, Clock: cfg.Clock, Metrics: cfg.Metrics,
			})
			if err != nil {
				return nil, false, err
			}
			live.add(srv)
			s.srv = srv
			s.target = tlsscan.Target{Addr: srv.Addr(), Domain: "probe." + s.zone}
		}
		slots[idx] = s
		return s, true, nil
	}

	opts := pipeline.Options{Name: "study", Metrics: reg, Journal: st.Journal, Resume: st.Resume, Limit: st.Limit}
	src := pipeline.From(ctx, opts, "deploy", st.Queue, func(rank int) (deployed, bool, error) {
		if rank >= cfg.Sites {
			return deployed{}, false, nil
		}
		sw := deployTimer.Start()
		defer sw.Stop()
		// Each rank's defect and server-model assignment comes from its own
		// salted splitmix64 stream, so a resumed or range-restricted run needs
		// no replay: rank r draws the same pair in every run shape. Shared
		// sites take their assignment from the slot instead.
		inj := defects[pick(len(defects), cfg.Seed, rank, siteDefectSalt)]
		model := servers[pick(len(servers), cfg.Seed, rank, siteServerSalt)]

		if replay, idx := cfg.scenarioPlan(rank); replay {
			// Scenario sites present a fuzzer-discovered synthetic chain. No
			// leaf is minted and no listener started — the chain cannot
			// handshake — so the site skips the physical scan and its list is
			// graded as captured.
			m := scenarios[idx]
			site := &Site{Domain: m.Domain, Injected: defectScenario, Server: "scenario", Scenario: m.Name}
			return deployed{site: site, list: m.List}, true, nil
		}

		if shared, idx := cfg.reusePlan(rank); shared {
			s, minted, err := mintSlot(idx)
			if err != nil {
				return deployed{}, false, err
			}
			site := &Site{Domain: slotSiteName(rank, idx), Injected: s.inj, Server: s.model.Name}
			if cfg.Dedup {
				site.Addr = s.target.Addr
				return deployed{site: site, slot: s, minted: minted}, true, nil
			}
			// Dedup off: the shared chain still gets its own listener and
			// full physical scan — the baseline the cache is measured
			// against.
			srv, err := tlsserve.Start(tlsserve.Config{
				List: s.wire, Key: s.leaf.Key, Domain: site.Domain,
				Faults: cfg.Faults, Clock: cfg.Clock, Metrics: cfg.Metrics,
			})
			if err != nil {
				return deployed{}, false, err
			}
			live.add(srv)
			site.Addr = srv.Addr()
			return deployed{site: site, srv: srv, target: tlsscan.Target{Addr: srv.Addr(), Domain: site.Domain}, minted: minted}, true, nil
		}

		domain := fmt.Sprintf("site-%03d.study.example", rank)
		leaf, wire, inj, err := mintDeployment(domain, inj, model)
		if err != nil {
			return deployed{}, false, err
		}
		srv, err := tlsserve.Start(tlsserve.Config{
			List: wire, Key: leaf.Key, Domain: domain,
			Faults: cfg.Faults, Clock: cfg.Clock, Metrics: cfg.Metrics,
		})
		if err != nil {
			return deployed{}, false, err
		}
		live.add(srv)
		site := &Site{Domain: domain, Addr: srv.Addr(), Injected: inj, Server: model.Name}
		return deployed{site: site, srv: srv, target: tlsscan.Target{Addr: srv.Addr(), Domain: domain}, minted: true}, true, nil
	})

	// Multi-vantage scan per site. Transient failures are retried inside the
	// scanner; whatever still fails is counted per cause, and a site every
	// vantage missed gets up to RescanPasses more attempts — the same
	// per-site connection sequence the batch sweeps produced.
	scanner := &tlsscan.Scanner{
		Timeout:     cfg.Timeout,
		Concurrency: cfg.Concurrency,
		Clock:       cfg.Clock,
		Metrics:     cfg.Metrics,
	}
	if cfg.Retries > 0 {
		scanner.Retry = faults.Policy{
			Attempts:  cfg.Retries + 1,
			BaseDelay: 20 * time.Millisecond,
			MaxDelay:  500 * time.Millisecond,
			Seed:      cfg.Seed,
			Clock:     cfg.Clock,
		}
	}
	scanned := pipeline.Through(src, pipeline.Stage[deployed, scannedSite]{
		Name:    "scan",
		Workers: cfg.Concurrency,
		Queue:   st.Queue,
		Fn: func(ctx context.Context, _, _ int, d deployed) (scannedSite, error) {
			out := scannedSite{deployed: d}
			if d.list != nil {
				// Scenario replay: the chain is already "captured" verbatim.
				out.list, out.digest = d.list, certmodel.ListDigest(d.list)
				return out, nil
			}
			if d.slot != nil {
				// Shared chain under Dedup: the slot's first site to arrive
				// performs the one physical scan — same vantage and re-scan
				// policy as a unique site — then retires the shared listener.
				// Its scan tallies and fault ledger are folded into the run
				// totals after the drain, never into per-site records.
				s := d.slot
				s.once.Do(func() {
					var captured []tlsscan.Result
					sw := scanTimer.Start()
					for v := 0; v < cfg.Vantages; v++ {
						res := scanner.Scan(ctx, s.target)
						if res.Err != nil {
							s.errs.add(res.Cause)
						} else {
							captured = append(captured, res)
						}
					}
					sw.Stop()
					for pass := 0; pass < cfg.RescanPasses && len(captured) == 0; pass++ {
						rsw := rescanTimer.Start()
						res := scanner.Scan(ctx, s.target)
						rsw.Stop()
						if res.Err != nil {
							s.errs.add(res.Cause)
						} else {
							captured = append(captured, res)
							s.rescanned = true
							rescannedCounter.Inc()
						}
					}
					if len(captured) == 0 {
						s.lost = true
					} else {
						s.list = captured[0].List
						s.digest = captured[0].Digest
					}
					s.srv.Close()
					live.remove(s.srv)
				})
				out.list, out.digest, out.lost = s.list, s.digest, s.lost
				return out, nil
			}
			var captured []tlsscan.Result
			sw := scanTimer.Start()
			for v := 0; v < cfg.Vantages; v++ {
				res := scanner.Scan(ctx, d.target)
				if res.Err != nil {
					out.errs.add(res.Cause)
				} else {
					captured = append(captured, res)
				}
			}
			sw.Stop()
			for pass := 0; pass < cfg.RescanPasses && len(captured) == 0; pass++ {
				rsw := rescanTimer.Start()
				res := scanner.Scan(ctx, d.target)
				rsw.Stop()
				if res.Err != nil {
					out.errs.add(res.Cause)
				} else {
					captured = append(captured, res)
					out.rescanned = true
					rescannedCounter.Inc()
				}
			}
			if len(captured) == 0 {
				out.lost = true
			} else {
				out.list = captured[0].List
				out.digest = captured[0].Digest
			}
			return out, nil
		},
	})

	// Grade and differentially test each captured chain, then retire the
	// listener: its fault ledger is folded into the site result and the
	// socket closed, which is what keeps the live-listener count bounded.
	analyzer := &compliance.Analyzer{Completeness: compliance.CompletenessConfig{Roots: roots, Fetcher: repo}}
	profiles := clients.All()
	// Under Dedup the grade stage consults the verdict cache first: keyed by
	// (chain digest, profile-set fingerprint, leaf-match bit), so a hit is
	// sound to share across sites — the only hostname-dependent outputs are
	// the leaf placement (recomputed per site) and the match bit (in the
	// key). A nil cache is inert: every Get misses, every Put is dropped.
	var vcache *verdictcache.Cache[studyMemo]
	var scope certmodel.FP
	if cfg.Dedup {
		vcache = verdictcache.New[studyMemo]("study.vcache", reg)
		scope = clients.Fingerprint(profiles)
	}
	gradeWorkers := parallel.Workers(cfg.Workers)
	builderSets := make([][]*pathbuild.Builder, gradeWorkers)
	graded := pipeline.Through(scanned, pipeline.Stage[scannedSite, gradedSite]{
		Name:    "grade",
		Workers: gradeWorkers,
		Queue:   st.Queue,
		OnWorker: func(worker int) func() {
			builders := make([]*pathbuild.Builder, len(profiles))
			for i, p := range profiles {
				builders[i] = &pathbuild.Builder{
					Policy: p.Policy, Roots: roots, Fetcher: repo,
					Cache: rootstore.New("cache"), Now: certgen.Reference,
					Metrics: cfg.Metrics,
				}
			}
			builderSets[worker] = builders
			return func() {
				for _, b := range builders {
					b.FlushMetrics()
				}
			}
		},
		Fn: func(_ context.Context, worker, _ int, sc scannedSite) (gradedSite, error) {
			if !sc.lost {
				sw := gradeTimer.Start()
				key := verdictcache.Key{Digest: sc.digest, Scope: scope,
					Match: len(sc.list) > 0 && sc.list[0].MatchesDomain(sc.site.Domain)}
				if memo, ok := vcache.Get(key); ok {
					sc.site.Report = compliance.Report{
						Domain:       sc.site.Domain,
						Leaf:         compliance.ClassifyLeafPlacement(sc.list, sc.site.Domain),
						Order:        memo.Order,
						Completeness: memo.Completeness,
					}
					sc.site.Verdicts = memo.Verdicts
				} else {
					builders := builderSets[worker]
					sc.site.Report = analyzer.Analyze(sc.site.Domain, topo.Build(sc.list))
					sc.site.Verdicts = make(map[string]bool, len(profiles))
					for j, p := range profiles {
						// Each site gets a fresh intermediate cache: verdicts
						// must not depend on which other sites a worker graded
						// first.
						builders[j].Cache = rootstore.New("cache")
						sc.site.Verdicts[p.Name] = builders[j].Build(sc.list, sc.site.Domain).OK()
					}
					vcache.Put(key, studyMemo{
						Order:        sc.site.Report.Order,
						Completeness: sc.site.Report.Completeness,
						Verdicts:     sc.site.Verdicts,
					})
				}
				sw.Stop()
			}
			g := gradedSite{
				site:      sc.site,
				errs:      sc.errs,
				rescanned: sc.rescanned,
				lost:      sc.lost,
				minted:    sc.minted,
			}
			if sc.srv != nil {
				g.faultsInjected = sc.srv.FaultsInjected()
				g.acceptRetries = sc.srv.AcceptRetries()
				g.deadlineExpiries = sc.srv.DeadlineExpiries()
				sc.srv.Close()
				live.remove(sc.srv)
			}
			return g, nil
		},
	})

	rep := &Report{Cfg: cfg}
	err = graded.Drain(func(rank int, g gradedSite) error {
		if g.minted {
			rep.LeavesGenerated++
		}
		rep.ScanErrors += g.errs.Total()
		rep.ScanErrorCauses.Dial += g.errs.Dial
		rep.ScanErrorCauses.Handshake += g.errs.Handshake
		rep.ScanErrorCauses.Parse += g.errs.Parse
		rep.ScanErrorCauses.Cancelled += g.errs.Cancelled
		if g.rescanned {
			rep.Rescanned++
		}
		if g.lost {
			rep.Lost++
		}
		rep.FaultsInjected += g.faultsInjected
		rep.AcceptRetries += g.acceptRetries
		rep.DeadlineExpiries += g.deadlineExpiries
		rep.Streamed++
		if !g.lost && g.site.Report.Compliant() {
			rep.StreamedCompliant++
		}
		if st.KeepSites {
			rep.Sites = append(rep.Sites, g.site)
		}
		if st.Out != nil || st.Record != nil {
			data, err := marshalSiteRecord(rank, g)
			if err != nil {
				return err
			}
			if st.Record != nil {
				if err := st.Record(rank, data); err != nil {
					return err
				}
			}
			if st.Out != nil {
				if _, err := st.Out.Write(append(data, '\n')); err != nil {
					return err
				}
			}
			if err := st.Ledger.Append(data); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Fold the shared-listener ledgers and once-scan tallies into the run
	// totals: under Dedup each slot was physically scanned once, on behalf
	// of all its sites, so its errors and faults belong to the run, not to
	// any one site record. Safe to read here — the drain has joined every
	// stage, so no once-scan is still in flight.
	for _, s := range slots {
		if s.srv != nil {
			rep.FaultsInjected += s.srv.FaultsInjected()
			rep.AcceptRetries += s.srv.AcceptRetries()
			rep.DeadlineExpiries += s.srv.DeadlineExpiries()
		}
		rep.ScanErrors += s.errs.Total()
		rep.ScanErrorCauses.Dial += s.errs.Dial
		rep.ScanErrorCauses.Handshake += s.errs.Handshake
		rep.ScanErrorCauses.Parse += s.errs.Parse
		rep.ScanErrorCauses.Cancelled += s.errs.Cancelled
		if s.rescanned {
			rep.Rescanned++
		}
	}
	if reg != nil {
		rep.Snapshot = reg.Snapshot()
	}
	return rep, nil
}

// marshalSiteRecord builds one site's JSONL line, without the trailing
// newline. encoding/json emits map keys sorted, and the record excludes
// every nondeterministic field, so the byte stream depends only on
// (Seed, Sites, Resume, Limit).
func marshalSiteRecord(rank int, g gradedSite) ([]byte, error) {
	rec := SiteRecord{
		Rank:       rank,
		Domain:     g.site.Domain,
		Injected:   g.site.Injected.String(),
		Server:     g.site.Server,
		Scanned:    !g.lost,
		ScanErrors: g.errs.Total(),
		Rescanned:  g.rescanned,
		Scenario:   g.site.Scenario,
	}
	if !g.lost {
		rec.Compliant = g.site.Report.Compliant()
		rec.Leaf = fmt.Sprint(g.site.Report.Leaf)
		rec.OrderOK = g.site.Report.Order.SequentialOK
		rec.Completeness = fmt.Sprint(g.site.Report.Completeness.Class)
		rec.Verdicts = g.site.Verdicts
	}
	return json.Marshal(rec)
}
