// Chain-reuse slots for the study farm: under Config.Reuse, a fraction of
// sites serve their slot's shared chain (one wildcard leaf, one deployment)
// instead of minting their own — the shared-hosting shape that makes a 10M-
// site run tractable on one box, because the physical cost (keygen, listener,
// handshake) is paid per distinct chain, not per site.
//
// Determinism contract: the reuse coin, the slot pick, and each slot's defect
// and server-model assignment derive from (Config.Seed, rank|slot) through
// salted splitmix64 streams that never touch the deploy source's serial rng,
// so a Reuse=0 run is byte-identical to the pre-reuse study and reuse runs
// are invariant under worker count, queue depth, and resume rank.
package study

import (
	"fmt"
	"sync"

	"chainchaos/internal/certgen"
	"chainchaos/internal/certmodel"
	"chainchaos/internal/httpserver"
	"chainchaos/internal/tlsscan"
	"chainchaos/internal/tlsserve"
)

// Stream salts keep each decision on its own independent stream.
const (
	studyCoinSalt  = 0xC0117A6B5D4C5E55
	studySlotSalt  = 0xDC0FFEE51F8B08BA
	slotDefectSalt = 0x5EEDF00D7E57AB1E
	slotServerSalt = 0xA11CE5B0B5CAFE17
	siteDefectSalt = 0x9E11F15CA1DED00D
	siteServerSalt = 0x0DDBA11FEEDC0DE5

	studyScenarioCoinSalt = 0xFEE1DEADC0DEBA5E
	studyScenarioPickSalt = 0xBEEFCAFEF01DAB1E
)

// unit derives a uniform [0,1) draw for (seed, rank) on the salted stream —
// the splitmix64 finalizer over the combined words.
func unit(seed int64, rank int, salt uint64) float64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(rank)*0xD1B54A32D192ED03 + salt + 1
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// pick maps a salted draw for (seed, key) onto [0, n).
func pick(n int, seed int64, key int, salt uint64) int {
	i := int(unit(seed, key, salt) * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// reusePlan decides, per rank, whether the site serves a pooled chain and
// which slot it draws. The slot pick is power-law skewed (u³): the head slot
// alone serves a large share of reusing sites, with a long tail.
func (c *Config) reusePlan(rank int) (bool, int) {
	if c.Reuse <= 0 {
		return false, 0
	}
	if unit(c.Seed, rank, studyCoinSalt) >= c.Reuse {
		return false, 0
	}
	u := unit(c.Seed, rank, studySlotSalt)
	slot := int(float64(c.DistinctChains) * u * u * u)
	if slot >= c.DistinctChains {
		slot = c.DistinctChains - 1
	}
	return true, slot
}

// scenarioPlan decides, per rank, whether the site replays an injected
// scenario and which one. The draws live on their own salted streams, so a
// run with no scenarios loaded is byte-identical to one before replay
// existed. Scenario replay preempts the reuse plan: a scenario rank never
// consults the reuse coin's outcome.
func (c *Config) scenarioPlan(rank int) (bool, int) {
	if len(c.Scenarios) == 0 || c.ScenarioRate <= 0 {
		return false, 0
	}
	if unit(c.Seed, rank, studyScenarioCoinSalt) >= c.ScenarioRate {
		return false, 0
	}
	return true, pick(len(c.Scenarios), c.Seed, rank, studyScenarioPickSalt)
}

// slotZone is the DNS zone a slot's sites share; the slot leaf is the zone
// wildcard, so every vhost of the slot matches it.
func slotZone(slot int) string {
	return fmt.Sprintf("shard-%04d.study.example", slot)
}

// slotSiteName is the per-site vhost under the slot zone.
func slotSiteName(rank, slot int) string {
	return fmt.Sprintf("site-%06d.%s", rank, slotZone(slot))
}

// studySlot is one pooled deployment: the wildcard leaf, the wire chain as
// the slot's server model emitted it, and — under Dedup — the one shared
// listener plus the once-only physical scan every slot site reuses.
type studySlot struct {
	zone  string
	leaf  *certgen.Leaf
	inj   defect
	model httpserver.Model
	wire  []*certmodel.Certificate

	// Dedup-mode listener state. The first slot site to reach the scan
	// stage performs the physical scan under once and closes the listener;
	// its fault ledger and scan tallies are folded into the run totals
	// after the drain, never into per-site records.
	srv    *tlsserve.Server
	target tlsscan.Target
	once   sync.Once

	list      []*certmodel.Certificate
	digest    certmodel.FP
	errs      ErrorBreakdown
	rescanned bool
	lost      bool
}
