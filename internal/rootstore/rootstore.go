// Package rootstore models trust anchor stores. The paper's completeness
// analysis (§3.1) matches the last certificate of each path against the union
// of the Mozilla, Chrome, Microsoft and Apple root programs, and Table 8
// quantifies how results shift when a client trusts only one vendor's store.
package rootstore

import (
	"bytes"
	"sort"
	"sync"
	"sync/atomic"

	"chainchaos/internal/certmodel"
)

// Store is a set of trusted root certificates, indexed the two ways chain
// completion needs: by certificate identity (is this exact cert trusted?),
// by subject key identifier (does any root's SKID match this AKID?), and by
// subject DN (candidate roots for an orphan whose AKID is absent).
//
// Stores follow a write-once-then-read-many lifecycle: populate with Add,
// then call Seal before handing the store to concurrent readers. Sealed
// stores answer every read without touching the mutex and without copying,
// which keeps the path-building hot loop allocation-free; unsealed stores
// remain fully mutex-guarded (the Firefox-style learning intermediate cache
// stays unsealed because successful builds keep feeding it).
type Store struct {
	mu        sync.RWMutex
	sealed    atomic.Bool
	name      string
	byFP      map[certmodel.FP]*certmodel.Certificate
	bySKID    map[string][]*certmodel.Certificate
	bySubject map[certmodel.Name][]*certmodel.Certificate
}

// New creates an empty named store.
func New(name string) *Store {
	return &Store{
		name:      name,
		byFP:      make(map[certmodel.FP]*certmodel.Certificate),
		bySKID:    make(map[string][]*certmodel.Certificate),
		bySubject: make(map[certmodel.Name][]*certmodel.Certificate),
	}
}

// NewWith creates a named store preloaded with roots.
func NewWith(name string, roots ...*certmodel.Certificate) *Store {
	s := New(name)
	for _, r := range roots {
		s.Add(r)
	}
	return s
}

// Name returns the store's name ("Mozilla", "union", ...).
func (s *Store) Name() string { return s.name }

// Seal freezes the store: subsequent Add calls panic and every read path
// skips the mutex. Seal must happen-before any read it is meant to
// de-synchronize (seal during single-threaded construction, then share);
// sealing twice is a no-op.
func (s *Store) Seal() {
	s.sealed.Store(true)
}

// Sealed reports whether the store has been sealed.
func (s *Store) Sealed() bool { return s.sealed.Load() }

// Add inserts a root. Adding the same certificate twice is a no-op. Add
// panics on a sealed store.
func (s *Store) Add(root *certmodel.Certificate) {
	if root == nil {
		return
	}
	if s.sealed.Load() {
		panic("rootstore: Add on sealed store " + s.name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := root.Fingerprint()
	if _, ok := s.byFP[fp]; ok {
		return
	}
	s.byFP[fp] = root
	if len(root.SubjectKeyID) > 0 {
		k := string(root.SubjectKeyID)
		s.bySKID[k] = append(s.bySKID[k], root)
	}
	s.bySubject[root.Subject] = append(s.bySubject[root.Subject], root)
}

// Contains reports whether this exact certificate (bit-for-bit) is trusted.
func (s *Store) Contains(cert *certmodel.Certificate) bool {
	if cert == nil {
		return false
	}
	if !s.sealed.Load() {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	_, ok := s.byFP[cert.Fingerprint()]
	return ok
}

// FindBySKID returns the trusted roots whose SKID equals akid — the store
// lookup the paper performs for the AKID of a path's last certificate.
// Sealed stores return an internal slice that callers must not mutate;
// unsealed stores return a copy.
func (s *Store) FindBySKID(akid []byte) []*certmodel.Certificate {
	if len(akid) == 0 {
		return nil
	}
	if s.sealed.Load() {
		return s.bySKID[string(akid)]
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*certmodel.Certificate(nil), s.bySKID[string(akid)]...)
}

// FindBySubject returns the trusted roots with the given subject DN. Sealed
// stores return an internal slice that callers must not mutate; unsealed
// stores return a copy.
func (s *Store) FindBySubject(subject certmodel.Name) []*certmodel.Certificate {
	if s.sealed.Load() {
		return s.bySubject[subject]
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*certmodel.Certificate(nil), s.bySubject[subject]...)
}

// FindIssuers returns the trusted roots that actually issued cert under the
// paper's issuance rule (signature plus DN-or-KID).
func (s *Store) FindIssuers(cert *certmodel.Certificate) []*certmodel.Certificate {
	return s.AppendIssuers(nil, cert)
}

// AppendIssuers appends the trusted roots that issued cert to dst and
// returns the extended slice — the allocation-free form of FindIssuers for
// callers that own a reusable buffer. Duplicate roots reachable through both
// the SKID and the subject index are folded by pointer identity, which is
// sound because Add deduplicates by fingerprint: within one store, equal
// bytes means the same pointer.
func (s *Store) AppendIssuers(dst []*certmodel.Certificate, cert *certmodel.Certificate) []*certmodel.Certificate {
	if cert == nil {
		return dst
	}
	if !s.sealed.Load() {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	base := len(dst)
	if len(cert.AuthorityKeyID) > 0 {
		// A root appears at most once per chain, so no dedup is needed
		// within the SKID pass.
		for _, root := range s.bySKID[string(cert.AuthorityKeyID)] {
			if certmodel.Issued(root, cert) {
				dst = append(dst, root)
			}
		}
	}
	for _, root := range s.bySubject[cert.Issuer] {
		dup := false
		for _, have := range dst[base:] {
			if have == root {
				dup = true
				break
			}
		}
		if !dup && certmodel.Issued(root, cert) {
			dst = append(dst, root)
		}
	}
	return dst
}

// HasIssuer reports whether any trusted root issued cert, without
// materializing the issuer list.
func (s *Store) HasIssuer(cert *certmodel.Certificate) bool {
	if cert == nil {
		return false
	}
	if !s.sealed.Load() {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	if len(cert.AuthorityKeyID) > 0 {
		for _, root := range s.bySKID[string(cert.AuthorityKeyID)] {
			if certmodel.Issued(root, cert) {
				return true
			}
		}
	}
	for _, root := range s.bySubject[cert.Issuer] {
		if certmodel.Issued(root, cert) {
			return true
		}
	}
	return false
}

// Len returns the number of roots in the store.
func (s *Store) Len() int {
	if !s.sealed.Load() {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	return len(s.byFP)
}

// All returns the roots in a deterministic (fingerprint-sorted) order.
func (s *Store) All() []*certmodel.Certificate {
	if !s.sealed.Load() {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	out := make([]*certmodel.Certificate, 0, len(s.byFP))
	for _, root := range s.byFP {
		out = append(out, root)
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := out[i].Fingerprint(), out[j].Fingerprint()
		return bytes.Compare(fi[:], fj[:]) < 0
	})
	return out
}

// Union combines stores into a new store named name. The paper uses the
// four-vendor union to avoid overstating incompleteness.
func Union(name string, stores ...*Store) *Store {
	u := New(name)
	for _, s := range stores {
		for _, root := range s.All() {
			u.Add(root)
		}
	}
	return u
}

// VendorSet groups the four vendor stores the paper consults plus their
// union.
type VendorSet struct {
	Mozilla   *Store
	Chrome    *Store
	Microsoft *Store
	Apple     *Store
	Union     *Store
}

// Stores returns the four vendor stores in the paper's column order.
func (v *VendorSet) Stores() []*Store {
	return []*Store{v.Mozilla, v.Chrome, v.Microsoft, v.Apple}
}

// Seal freezes all five stores (the four vendors and their union).
func (v *VendorSet) Seal() {
	for _, s := range v.Stores() {
		s.Seal()
	}
	v.Union.Seal()
}

// NewVendorSet builds four vendor stores over the given roots. Membership is
// controlled by the omit function: omit(root, vendor) reports that vendor's
// store does NOT carry the root. A nil omit includes every root everywhere.
// Vendor indices are 0=Mozilla, 1=Chrome, 2=Microsoft, 3=Apple.
func NewVendorSet(roots []*certmodel.Certificate, omit func(root *certmodel.Certificate, vendor int) bool) *VendorSet {
	names := []string{"Mozilla", "Chrome", "Microsoft", "Apple"}
	stores := make([]*Store, len(names))
	for i, n := range names {
		stores[i] = New(n)
	}
	for _, root := range roots {
		for i := range stores {
			if omit == nil || !omit(root, i) {
				stores[i].Add(root)
			}
		}
	}
	v := &VendorSet{Mozilla: stores[0], Chrome: stores[1], Microsoft: stores[2], Apple: stores[3]}
	v.Union = Union("union", stores...)
	return v
}

// EqualRoots reports whether two certificates are the same root (bit-for-bit
// or same subject+key), a convenience for tests.
func EqualRoots(a, b *certmodel.Certificate) bool {
	if a.Equal(b) {
		return true
	}
	return a.Subject == b.Subject && bytes.Equal(a.PublicKeyID, b.PublicKeyID)
}
