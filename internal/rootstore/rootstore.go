// Package rootstore models trust anchor stores. The paper's completeness
// analysis (§3.1) matches the last certificate of each path against the union
// of the Mozilla, Chrome, Microsoft and Apple root programs, and Table 8
// quantifies how results shift when a client trusts only one vendor's store.
package rootstore

import (
	"bytes"
	"sort"
	"sync"

	"chainchaos/internal/certmodel"
)

// Store is a set of trusted root certificates, indexed the two ways chain
// completion needs: by certificate identity (is this exact cert trusted?),
// by subject key identifier (does any root's SKID match this AKID?), and by
// subject DN (candidate roots for an orphan whose AKID is absent).
type Store struct {
	mu        sync.RWMutex
	name      string
	byFP      map[string]*certmodel.Certificate
	bySKID    map[string][]*certmodel.Certificate
	bySubject map[certmodel.Name][]*certmodel.Certificate
}

// New creates an empty named store.
func New(name string) *Store {
	return &Store{
		name:      name,
		byFP:      make(map[string]*certmodel.Certificate),
		bySKID:    make(map[string][]*certmodel.Certificate),
		bySubject: make(map[certmodel.Name][]*certmodel.Certificate),
	}
}

// NewWith creates a named store preloaded with roots.
func NewWith(name string, roots ...*certmodel.Certificate) *Store {
	s := New(name)
	for _, r := range roots {
		s.Add(r)
	}
	return s
}

// Name returns the store's name ("Mozilla", "union", ...).
func (s *Store) Name() string { return s.name }

// Add inserts a root. Adding the same certificate twice is a no-op.
func (s *Store) Add(root *certmodel.Certificate) {
	if root == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := root.FingerprintHex()
	if _, ok := s.byFP[fp]; ok {
		return
	}
	s.byFP[fp] = root
	if len(root.SubjectKeyID) > 0 {
		k := string(root.SubjectKeyID)
		s.bySKID[k] = append(s.bySKID[k], root)
	}
	s.bySubject[root.Subject] = append(s.bySubject[root.Subject], root)
}

// Contains reports whether this exact certificate (bit-for-bit) is trusted.
func (s *Store) Contains(cert *certmodel.Certificate) bool {
	if cert == nil {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.byFP[cert.FingerprintHex()]
	return ok
}

// FindBySKID returns the trusted roots whose SKID equals akid — the store
// lookup the paper performs for the AKID of a path's last certificate.
func (s *Store) FindBySKID(akid []byte) []*certmodel.Certificate {
	if len(akid) == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*certmodel.Certificate(nil), s.bySKID[string(akid)]...)
}

// FindBySubject returns the trusted roots with the given subject DN.
func (s *Store) FindBySubject(subject certmodel.Name) []*certmodel.Certificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*certmodel.Certificate(nil), s.bySubject[subject]...)
}

// FindIssuers returns the trusted roots that actually issued cert under the
// paper's issuance rule (signature plus DN-or-KID).
func (s *Store) FindIssuers(cert *certmodel.Certificate) []*certmodel.Certificate {
	if cert == nil {
		return nil
	}
	var out []*certmodel.Certificate
	seen := map[string]bool{}
	consider := func(root *certmodel.Certificate) {
		fp := root.FingerprintHex()
		if seen[fp] {
			return
		}
		if certmodel.Issued(root, cert) {
			seen[fp] = true
			out = append(out, root)
		}
	}
	for _, root := range s.FindBySKID(cert.AuthorityKeyID) {
		consider(root)
	}
	for _, root := range s.FindBySubject(cert.Issuer) {
		consider(root)
	}
	return out
}

// Len returns the number of roots in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byFP)
}

// All returns the roots in a deterministic (fingerprint-sorted) order.
func (s *Store) All() []*certmodel.Certificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fps := make([]string, 0, len(s.byFP))
	for fp := range s.byFP {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	out := make([]*certmodel.Certificate, 0, len(fps))
	for _, fp := range fps {
		out = append(out, s.byFP[fp])
	}
	return out
}

// Union combines stores into a new store named name. The paper uses the
// four-vendor union to avoid overstating incompleteness.
func Union(name string, stores ...*Store) *Store {
	u := New(name)
	for _, s := range stores {
		for _, root := range s.All() {
			u.Add(root)
		}
	}
	return u
}

// VendorSet groups the four vendor stores the paper consults plus their
// union.
type VendorSet struct {
	Mozilla   *Store
	Chrome    *Store
	Microsoft *Store
	Apple     *Store
	Union     *Store
}

// Stores returns the four vendor stores in the paper's column order.
func (v *VendorSet) Stores() []*Store {
	return []*Store{v.Mozilla, v.Chrome, v.Microsoft, v.Apple}
}

// NewVendorSet builds four vendor stores over the given roots. Membership is
// controlled by the omit function: omit(root, vendor) reports that vendor's
// store does NOT carry the root. A nil omit includes every root everywhere.
// Vendor indices are 0=Mozilla, 1=Chrome, 2=Microsoft, 3=Apple.
func NewVendorSet(roots []*certmodel.Certificate, omit func(root *certmodel.Certificate, vendor int) bool) *VendorSet {
	names := []string{"Mozilla", "Chrome", "Microsoft", "Apple"}
	stores := make([]*Store, len(names))
	for i, n := range names {
		stores[i] = New(n)
	}
	for _, root := range roots {
		for i := range stores {
			if omit == nil || !omit(root, i) {
				stores[i].Add(root)
			}
		}
	}
	v := &VendorSet{Mozilla: stores[0], Chrome: stores[1], Microsoft: stores[2], Apple: stores[3]}
	v.Union = Union("union", stores...)
	return v
}

// EqualRoots reports whether two certificates are the same root (bit-for-bit
// or same subject+key), a convenience for tests.
func EqualRoots(a, b *certmodel.Certificate) bool {
	if a.Equal(b) {
		return true
	}
	return a.Subject == b.Subject && bytes.Equal(a.PublicKeyID, b.PublicKeyID)
}
