package rootstore

import (
	"testing"

	"chainchaos/internal/certmodel"
)

func TestSealPanicsOnAdd(t *testing.T) {
	root := certmodel.SyntheticRoot("Seal Root", base)
	late := certmodel.SyntheticRoot("Seal Latecomer", base)

	s := NewWith("seal", root)
	if s.Sealed() {
		t.Fatal("fresh store reports sealed")
	}
	s.Seal()
	s.Seal() // idempotent
	if !s.Sealed() {
		t.Fatal("Sealed() false after Seal")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Add on a sealed store did not panic")
		}
	}()
	s.Add(late)
}

// TestSealedReadsMatchUnsealed: sealing must not change any answer, only the
// synchronization strategy behind it.
func TestSealedReadsMatchUnsealed(t *testing.T) {
	root := certmodel.SyntheticRoot("Seal RM Root", base)
	other := certmodel.SyntheticRoot("Seal RM Other", base)
	inter := certmodel.SyntheticIntermediate("Seal RM CA", root, base)
	orphan := certmodel.SyntheticIntermediate("Seal RM Orphan", other, base)

	unsealed := NewWith("rm", root)
	sealed := NewWith("rm", root)
	sealed.Seal()

	for _, cert := range []*certmodel.Certificate{root, inter, orphan} {
		if unsealed.Contains(cert) != sealed.Contains(cert) {
			t.Errorf("Contains(%s) differs after seal", cert.Subject.CommonName)
		}
		u, s := unsealed.FindIssuers(cert), sealed.FindIssuers(cert)
		if len(u) != len(s) {
			t.Fatalf("FindIssuers(%s): %d unsealed, %d sealed", cert.Subject.CommonName, len(u), len(s))
		}
		for i := range u {
			if !u[i].Equal(s[i]) {
				t.Errorf("FindIssuers(%s)[%d] differs after seal", cert.Subject.CommonName, i)
			}
		}
		if unsealed.HasIssuer(cert) != sealed.HasIssuer(cert) {
			t.Errorf("HasIssuer(%s) differs after seal", cert.Subject.CommonName)
		}
	}
	if unsealed.Len() != sealed.Len() {
		t.Error("Len differs after seal")
	}
	ua, sa := unsealed.All(), sealed.All()
	if len(ua) != len(sa) {
		t.Fatal("All length differs after seal")
	}
	for i := range ua {
		if !ua[i].Equal(sa[i]) {
			t.Errorf("All()[%d] differs after seal", i)
		}
	}
}

// TestHasIssuerMatchesFindIssuers on a mixed store: orphans, SKID matches
// and DN-only matches.
func TestHasIssuerMatchesFindIssuers(t *testing.T) {
	rootA := certmodel.SyntheticRoot("HI Root A", base)
	rootB := certmodel.SyntheticRoot("HI Root B", base)
	childA := certmodel.SyntheticIntermediate("HI CA A", rootA, base)
	childB := certmodel.SyntheticIntermediate("HI CA B", rootB, base)

	s := NewWith("hi", rootA)
	for _, cert := range []*certmodel.Certificate{childA, childB, rootA, nil} {
		want := len(s.FindIssuers(cert)) > 0
		if got := s.HasIssuer(cert); got != want {
			t.Errorf("HasIssuer = %v, FindIssuers finds %v", got, want)
		}
	}
}

// TestAppendIssuersReusesBuffer: AppendIssuers must extend the passed slice
// in place and leave earlier elements alone.
func TestAppendIssuersReusesBuffer(t *testing.T) {
	root := certmodel.SyntheticRoot("AI Root", base)
	inter := certmodel.SyntheticIntermediate("AI CA", root, base)
	s := NewWith("ai", root)
	s.Seal()

	buf := make([]*certmodel.Certificate, 0, 4)
	buf = s.AppendIssuers(buf, inter)
	if len(buf) != 1 || !buf[0].Equal(root) {
		t.Fatalf("AppendIssuers = %v", buf)
	}
	marker := buf[0]
	buf = s.AppendIssuers(buf, inter)
	if len(buf) != 2 || buf[0] != marker {
		t.Fatalf("second append disturbed the buffer: %v", buf)
	}

	vs := NewVendorSet([]*certmodel.Certificate{root}, nil)
	vs.Seal()
	for _, st := range append(vs.Stores(), vs.Union) {
		if !st.Sealed() {
			t.Errorf("VendorSet.Seal left %s unsealed", st.Name())
		}
	}
}
