package rootstore

import (
	"sync"
	"testing"
	"time"

	"chainchaos/internal/certmodel"
)

var base = time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)

func TestAddAndLookup(t *testing.T) {
	root := certmodel.SyntheticRoot("RS Root", base)
	inter := certmodel.SyntheticIntermediate("RS CA", root, base)

	s := New("test")
	if s.Name() != "test" || s.Len() != 0 {
		t.Fatal("fresh store wrong")
	}
	s.Add(root)
	s.Add(root) // idempotent
	s.Add(nil)  // no-op
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if !s.Contains(root) || s.Contains(inter) || s.Contains(nil) {
		t.Error("Contains wrong")
	}
	if got := s.FindBySKID(root.SubjectKeyID); len(got) != 1 {
		t.Errorf("FindBySKID = %v", got)
	}
	if got := s.FindBySKID(nil); got != nil {
		t.Errorf("FindBySKID(nil) = %v", got)
	}
	if got := s.FindBySubject(root.Subject); len(got) != 1 {
		t.Errorf("FindBySubject = %v", got)
	}
	if got := s.FindIssuers(inter); len(got) != 1 || !got[0].Equal(root) {
		t.Errorf("FindIssuers = %v", got)
	}
	if got := s.FindIssuers(nil); got != nil {
		t.Error("FindIssuers(nil) should be nil")
	}
}

func TestFindIssuersRequiresSignature(t *testing.T) {
	root := certmodel.SyntheticRoot("RS Sig Root", base)
	impostor := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: root.Subject, Issuer: root.Subject, Serial: "impostor",
		NotBefore: base, NotAfter: base.AddDate(10, 0, 0),
		Key: certmodel.NewSyntheticKey("rs-impostor"), SignedBy: certmodel.NewSyntheticKey("rs-impostor"),
	})
	child := certmodel.SyntheticIntermediate("RS Sig CA", root, base)

	s := NewWith("sig", impostor)
	if got := s.FindIssuers(child); len(got) != 0 {
		t.Errorf("impostor with matching DN accepted as issuer: %v", got)
	}
}

func TestFindIssuersNoAKIDFallsBackToSubject(t *testing.T) {
	root := certmodel.SyntheticRoot("RS DN Root", base)
	child := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: certmodel.Name{CommonName: "RS DN CA"}, Issuer: root.Subject,
		Serial: "1", NotBefore: base, NotAfter: base.AddDate(5, 0, 0),
		Key: certmodel.NewSyntheticKey("rs-dn"), SignedBy: certmodel.KeyOf(root),
		OmitAKID: true,
	})
	s := NewWith("dn", root)
	if got := s.FindIssuers(child); len(got) != 1 {
		t.Errorf("DN-based issuer lookup failed: %v", got)
	}
}

func TestAllDeterministicOrder(t *testing.T) {
	s := New("order")
	var roots []*certmodel.Certificate
	for i := 0; i < 5; i++ {
		r := certmodel.SyntheticRoot("RS Order "+string(rune('A'+i)), base)
		roots = append(roots, r)
		s.Add(r)
	}
	first := s.All()
	second := s.All()
	if len(first) != 5 {
		t.Fatalf("All() = %d", len(first))
	}
	for i := range first {
		if !first[i].Equal(second[i]) {
			t.Fatal("All() order not deterministic")
		}
	}
}

func TestUnion(t *testing.T) {
	a := NewWith("a", certmodel.SyntheticRoot("RS U1", base), certmodel.SyntheticRoot("RS U2", base))
	b := NewWith("b", certmodel.SyntheticRoot("RS U2", base), certmodel.SyntheticRoot("RS U3", base))
	u := Union("u", a, b)
	if u.Len() != 3 {
		t.Errorf("union len = %d, want 3 (shared root deduplicated)", u.Len())
	}
}

func TestVendorSet(t *testing.T) {
	r1 := certmodel.SyntheticRoot("RS V1", base)
	r2 := certmodel.SyntheticRoot("RS V2", base)
	v := NewVendorSet([]*certmodel.Certificate{r1, r2}, func(root *certmodel.Certificate, vendor int) bool {
		return root.Equal(r2) && vendor == 0 // Mozilla lacks r2
	})
	if v.Mozilla.Len() != 1 || v.Chrome.Len() != 2 || v.Microsoft.Len() != 2 || v.Apple.Len() != 2 {
		t.Errorf("vendor lens = %d %d %d %d", v.Mozilla.Len(), v.Chrome.Len(), v.Microsoft.Len(), v.Apple.Len())
	}
	if v.Union.Len() != 2 {
		t.Errorf("union len = %d", v.Union.Len())
	}
	if len(v.Stores()) != 4 {
		t.Error("Stores() wrong")
	}
	// nil omit includes everything.
	all := NewVendorSet([]*certmodel.Certificate{r1, r2}, nil)
	if all.Mozilla.Len() != 2 {
		t.Error("nil omit should include all roots")
	}
}

func TestEqualRoots(t *testing.T) {
	r := certmodel.SyntheticRoot("RS Eq", base)
	cross := certmodel.NewSynthetic(certmodel.SyntheticConfig{
		Subject: r.Subject, Issuer: certmodel.Name{CommonName: "Legacy"}, Serial: "x",
		NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: certmodel.KeyOf(r), SignedBy: certmodel.NewSyntheticKey("rs-legacy"),
	})
	if !EqualRoots(r, r) || !EqualRoots(r, cross) {
		t.Error("same-key roots should compare equal")
	}
	other := certmodel.SyntheticRoot("RS Eq Other", base)
	if EqualRoots(r, other) {
		t.Error("distinct roots compare equal")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New("conc")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r := certmodel.SyntheticRoot("RS Conc "+string(rune('A'+i)), base)
				s.Add(r)
				s.Contains(r)
				s.FindBySubject(r.Subject)
				s.FindBySKID(r.SubjectKeyID)
				s.All()
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Errorf("len = %d, want 8", s.Len())
	}
}
