package certmodel

import (
	"bytes"
	"testing"
	"time"
)

var base = time.Date(2024, time.March, 1, 0, 0, 0, 0, time.UTC)

func TestFingerprintStableAndCached(t *testing.T) {
	c := SyntheticRoot("FP Root", base)
	fp1 := c.Fingerprint()
	fp2 := c.Fingerprint()
	if fp1 != fp2 {
		t.Error("fingerprint not stable")
	}
	if c.FingerprintHex() == "" || len(c.FingerprintHex()) != 64 {
		t.Errorf("hex fingerprint = %q", c.FingerprintHex())
	}
	other := SyntheticRoot("FP Root 2", base)
	if other.Fingerprint() == fp1 {
		t.Error("distinct certs share a fingerprint")
	}
}

func TestEqualSemantics(t *testing.T) {
	a := SyntheticRoot("Eq Root", base)
	b := SyntheticRoot("Eq Root", base) // same config => same bytes
	c := SyntheticRoot("Eq Root Other", base)
	if !a.Equal(b) {
		t.Error("identical configs should be bit-for-bit equal")
	}
	if a.Equal(c) {
		t.Error("different subjects compare equal")
	}
	if a.Equal(nil) || (*Certificate)(nil).Equal(a) {
		t.Error("nil comparisons should be false")
	}
	if !a.Equal(a) {
		t.Error("self comparison should be true")
	}
}

func TestSelfSigned(t *testing.T) {
	root := SyntheticRoot("SS Root", base)
	if !root.SelfSigned() {
		t.Error("root should be self-signed")
	}
	inter := SyntheticIntermediate("SS CA", root, base)
	if inter.SelfSigned() {
		t.Error("intermediate should not be self-signed")
	}
	// Same subject as issuer but signed by a different key: self-issued
	// but NOT self-signed.
	otherKey := NewSyntheticKey("SS other key")
	fake := NewSynthetic(SyntheticConfig{
		Subject: root.Subject, Issuer: root.Subject, Serial: "fake",
		NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: NewSyntheticKey("SS inner"), SignedBy: otherKey,
	})
	if fake.SelfSigned() {
		t.Error("self-issued cert with foreign signature reported self-signed")
	}
	if (*Certificate)(nil).SelfSigned() {
		t.Error("nil cert self-signed")
	}
}

func TestValidAt(t *testing.T) {
	c := SyntheticLeaf("valid.example", "1", SyntheticRoot("V Root", base), base, base.AddDate(1, 0, 0))
	cases := []struct {
		at   time.Time
		want bool
	}{
		{base, true},
		{base.AddDate(0, 6, 0), true},
		{base.AddDate(1, 0, 0), true}, // inclusive notAfter
		{base.Add(-time.Second), false},
		{base.AddDate(1, 0, 1), false},
	}
	for _, tc := range cases {
		if got := c.ValidAt(tc.at); got != tc.want {
			t.Errorf("ValidAt(%s) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestCanSignCertificates(t *testing.T) {
	root := SyntheticRoot("KU Root", base)
	if !root.CanSignCertificates() {
		t.Error("certSign root rejected")
	}
	noKU := NewSynthetic(SyntheticConfig{
		Subject: Name{CommonName: "NoKU"}, Issuer: root.Subject, Serial: "1",
		NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: NewSyntheticKey("noku"), SignedBy: KeyOf(root),
		IsCA: true, BasicConstraintsValid: true,
	})
	if !noKU.CanSignCertificates() {
		t.Error("absent KeyUsage must impose no restriction")
	}
	badKU := NewSynthetic(SyntheticConfig{
		Subject: Name{CommonName: "BadKU"}, Issuer: root.Subject, Serial: "2",
		NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: NewSyntheticKey("badku"), SignedBy: KeyOf(root),
		KeyUsage: KeyUsageDigitalSignature, HasKeyUsage: true,
		IsCA: true, BasicConstraintsValid: true,
	})
	if badKU.CanSignCertificates() {
		t.Error("digitalSignature-only KeyUsage allowed certSign")
	}
}

func TestSignatureVerifiedByMixedBackends(t *testing.T) {
	root := SyntheticRoot("Mix Root", base)
	leaf := SyntheticLeaf("mix.example", "1", root, base, base.AddDate(1, 0, 0))
	if !leaf.SignatureVerifiedBy(root) {
		t.Fatal("synthetic signature should verify")
	}
	// The mixed-backend rule is checked in certgen tests with actual DER;
	// here verify the nil guards.
	if leaf.SignatureVerifiedBy(nil) || (*Certificate)(nil).SignatureVerifiedBy(root) {
		t.Error("nil-parent/child verification should fail")
	}
}

func TestStringRendering(t *testing.T) {
	root := SyntheticRoot("Str Root", base)
	s := root.String()
	if s == "" || s == "<nil cert>" {
		t.Errorf("String() = %q", s)
	}
	if (*Certificate)(nil).String() != "<nil cert>" {
		t.Error("nil String() wrong")
	}
	if !bytes.Contains([]byte(s), []byte("Str Root")) {
		t.Errorf("String() lacks subject: %q", s)
	}
}
