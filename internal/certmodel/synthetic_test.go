package certmodel

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"
	"testing/quick"
)

// randomConfig makes SyntheticConfig a quick.Generator input by building it
// from primitive random values.
func randomConfig(r *rand.Rand) SyntheticConfig {
	names := []string{"Alpha CA", "Beta CA", "Gamma Root", "Delta Issuing"}
	nb := base.AddDate(0, -r.Intn(36), 0)
	cfg := SyntheticConfig{
		Subject:               Name{CommonName: names[r.Intn(len(names))], Organization: "Org"},
		Issuer:                Name{CommonName: names[r.Intn(len(names))]},
		Serial:                string(rune('a' + r.Intn(26))),
		NotBefore:             nb,
		NotAfter:              nb.AddDate(r.Intn(10)+1, 0, 0),
		Key:                   NewSyntheticKey(names[r.Intn(len(names))] + "-key"),
		SignedBy:              NewSyntheticKey(names[r.Intn(len(names))] + "-signer"),
		OmitSKID:              r.Intn(4) == 0,
		OmitAKID:              r.Intn(4) == 0,
		KeyUsage:              KeyUsage(r.Intn(128)),
		HasKeyUsage:           r.Intn(2) == 0,
		IsCA:                  r.Intn(2) == 0,
		BasicConstraintsValid: r.Intn(2) == 0,
		MaxPathLen:            r.Intn(4),
		HasPathLen:            r.Intn(3) == 0,
	}
	if r.Intn(3) == 0 {
		cfg.DNSNames = []string{"a.example", "b.example"}
	}
	return cfg
}

// TestQuickSyntheticDeterministic: identical configs yield bit-identical
// certificates — the duplicate detector's foundation.
func TestQuickSyntheticDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := randomConfig(r)
		a, b := NewSynthetic(cfg), NewSynthetic(cfg)
		return a.Equal(b) && a.Fingerprint() == b.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSerialChangesBytes: any serial difference changes the encoding.
func TestQuickSerialChangesBytes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := randomConfig(r)
		a := NewSynthetic(cfg)
		cfg.Serial += "x"
		b := NewSynthetic(cfg)
		return !a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickIssuanceConsistency: a child built with SignedBy=parent's key and
// Issuer=parent's subject is always Issued by the parent, and never by an
// unrelated root.
func TestQuickIssuanceConsistency(t *testing.T) {
	stranger := SyntheticRoot("Quick Stranger", base)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		parent := SyntheticRoot("Quick Parent", base.AddDate(-r.Intn(5), 0, 0))
		cfg := randomConfig(r)
		cfg.Issuer = parent.Subject
		cfg.SignedBy = KeyOf(parent)
		cfg.OmitAKID = false
		cfg.AKIDOverride = nil
		child := NewSynthetic(cfg)
		return Issued(parent, child) && !Issued(stranger, child)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSyntheticKeyDerivation(t *testing.T) {
	a, b := NewSyntheticKey("same"), NewSyntheticKey("same")
	if !bytes.Equal(a.ID(), b.ID()) {
		t.Error("same name, different key ids")
	}
	c := NewSyntheticKey("different")
	if bytes.Equal(a.ID(), c.ID()) {
		t.Error("different names share a key id")
	}
	if len(a.ID()) != 20 {
		t.Errorf("key id length = %d", len(a.ID()))
	}
	var zero SyntheticKey
	if !zero.IsZero() || a.IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestSyntheticFieldControls(t *testing.T) {
	key, signer := NewSyntheticKey("fc-key"), NewSyntheticKey("fc-signer")
	mk := func(mut func(*SyntheticConfig)) *Certificate {
		cfg := SyntheticConfig{
			Subject: Name{CommonName: "FC"}, Issuer: Name{CommonName: "FC Issuer"},
			Serial: "1", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
			Key: key, SignedBy: signer,
		}
		if mut != nil {
			mut(&cfg)
		}
		return NewSynthetic(cfg)
	}

	plain := mk(nil)
	if !bytes.Equal(plain.SubjectKeyID, key.ID()) || !bytes.Equal(plain.AuthorityKeyID, signer.ID()) {
		t.Error("default SKID/AKID not derived from keys")
	}
	if plain.MaxPathLen != MaxPathLenUnset {
		t.Errorf("default MaxPathLen = %d", plain.MaxPathLen)
	}

	noSKID := mk(func(c *SyntheticConfig) { c.OmitSKID = true })
	if noSKID.SubjectKeyID != nil {
		t.Error("OmitSKID ignored")
	}
	noAKID := mk(func(c *SyntheticConfig) { c.OmitAKID = true })
	if noAKID.AuthorityKeyID != nil {
		t.Error("OmitAKID ignored")
	}
	override := mk(func(c *SyntheticConfig) { c.AKIDOverride = []byte{1, 2, 3} })
	if !bytes.Equal(override.AuthorityKeyID, []byte{1, 2, 3}) {
		t.Error("AKIDOverride ignored")
	}
	pl0 := mk(func(c *SyntheticConfig) { c.HasPathLen = true; c.MaxPathLen = 0 })
	if pl0.MaxPathLen != 0 {
		t.Errorf("pathlen 0 lost: %d", pl0.MaxPathLen)
	}

	// Each control changes the encoding.
	for i, v := range []*Certificate{noSKID, noAKID, override, pl0} {
		if v.Equal(plain) {
			t.Errorf("variant %d encodes identically to the plain cert", i)
		}
	}
}

func TestKeyOfLinksBack(t *testing.T) {
	root := SyntheticRoot("KeyOf Root", base)
	cross := NewSynthetic(SyntheticConfig{
		Subject: root.Subject, Issuer: Name{CommonName: "Legacy"},
		Serial: "x", NotBefore: base, NotAfter: base.AddDate(1, 0, 0),
		Key: KeyOf(root), SignedBy: NewSyntheticKey("legacy-key"),
	})
	if !bytes.Equal(cross.PublicKeyID, root.PublicKeyID) {
		t.Error("KeyOf did not preserve the key identity")
	}
	leaf := SyntheticLeaf("keyof.example", "1", root, base, base.AddDate(1, 0, 0))
	// Both the root and its cross-signed variant verify the leaf: the
	// cross-signing property the population relies on.
	if !leaf.SignatureVerifiedBy(root) || !leaf.SignatureVerifiedBy(cross) {
		t.Error("cross-signed variant does not verify the same children")
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	in := []string{"b", "a", "c"}
	out := sortedCopy(in)
	if !reflect.DeepEqual(out, []string{"a", "b", "c"}) {
		t.Errorf("sortedCopy = %v", out)
	}
	if !reflect.DeepEqual(in, []string{"b", "a", "c"}) {
		t.Errorf("input mutated: %v", in)
	}
}

func TestSyntheticRootHelpers(t *testing.T) {
	root := SyntheticRoot("Helper Root", base)
	if !root.IsCA || !root.BasicConstraintsValid || !root.SelfSigned() {
		t.Error("SyntheticRoot shape wrong")
	}
	inter := SyntheticIntermediate("Helper CA", root, base)
	if !Issued(root, inter) {
		t.Error("intermediate not issued by root")
	}
	leaf := SyntheticLeaf("helper.example", "1", inter, base, base.AddDate(1, 0, 0))
	if !Issued(inter, leaf) || leaf.IsCA {
		t.Error("leaf shape wrong")
	}
	if !leaf.MatchesDomain("helper.example") {
		t.Error("leaf does not match its own domain")
	}
	if leaf.NotAfter != base.AddDate(1, 0, 0) {
		t.Error("leaf validity wrong")
	}
}

// TestSyntheticConfigOfRoundTrip: NewSynthetic(SyntheticConfigOf(c)) must
// reproduce c bit-identically for every shape of synthetic certificate the
// generator and the fuzzer's mutation operators produce — including omitted
// key IDs, AKID overrides, path-length constraints, and name constraints.
func TestSyntheticConfigOfRoundTrip(t *testing.T) {
	base := time.Date(2024, 3, 15, 12, 0, 0, 0, time.UTC)
	root := SyntheticRoot("Round Trip Root", base)
	inter := SyntheticIntermediate("Round Trip CA", root, base)
	leaf := SyntheticLeaf("rt.example", "rt-1", inter, base, base.AddDate(1, 0, 0))

	variants := []*Certificate{
		root, inter, leaf,
		NewSynthetic(SyntheticConfig{
			Subject:   Name{CommonName: "No KID CA"},
			Issuer:    root.Subject,
			Serial:    "nokid",
			NotBefore: base,
			NotAfter:  base.AddDate(2, 0, 0),
			Key:       NewSyntheticKey("nokid"),
			SignedBy:  KeyOf(root),
			OmitSKID:  true,
			OmitAKID:  true,
			IsCA:      true, BasicConstraintsValid: true,
		}),
		NewSynthetic(SyntheticConfig{
			Subject:      Name{CommonName: "AKID Mismatch"},
			Issuer:       root.Subject,
			Serial:       "badakid",
			NotBefore:    base,
			NotAfter:     base.AddDate(2, 0, 0),
			Key:          NewSyntheticKey("badakid"),
			SignedBy:     KeyOf(root),
			AKIDOverride: []byte("not-the-signer-id-20"),
			MaxPathLen:   0, HasPathLen: true,
			IsCA: true, BasicConstraintsValid: true,
			PermittedDNSDomains: []string{".example"},
			ExcludedDNSDomains:  []string{".forbidden.example"},
			ExtKeyUsages:        []ExtKeyUsage{EKUServerAuth},
			WeakSignature:       true,
		}),
	}
	for _, want := range variants {
		got := NewSynthetic(SyntheticConfigOf(want))
		if !got.Equal(want) {
			t.Errorf("%s: round trip differs:\n got %s\nwant %s",
				want.Subject.CommonName, got.Raw, want.Raw)
		}
	}
}

// TestKeyFromID: the wrapped key must carry the exact identifier and be
// usable as a signer, and the zero cases must collapse to the zero key.
func TestKeyFromID(t *testing.T) {
	orig := NewSyntheticKey("from-id")
	k := KeyFromID(orig.ID())
	if !bytes.Equal(k.ID(), orig.ID()) {
		t.Fatalf("KeyFromID id = %x, want %x", k.ID(), orig.ID())
	}
	if !KeyFromID(nil).IsZero() || !KeyFromID([]byte{}).IsZero() {
		t.Fatal("KeyFromID of empty input must be the zero key")
	}
}
