package certmodel

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
	"time"
)

// SyntheticKey names a simulated key pair. Two synthetic certificates are
// linked by "signature" when the child's SignedByKeyID equals the parent's
// PublicKeyID, so a key is nothing more than a stable 20-byte identifier
// derived from its name. Cross-signing falls out naturally: two certificates
// built with the same subject Key but different SignedBy keys share a
// PublicKeyID (and hence an SKID) while chaining to different parents —
// exactly the USERTrust topology of the paper's Figure 2c.
type SyntheticKey struct {
	name string
	id   []byte
}

// NewSyntheticKey derives a key identity from a name. The same name always
// yields the same identity.
func NewSyntheticKey(name string) SyntheticKey {
	sum := sha256.Sum256([]byte("key:" + name))
	return SyntheticKey{name: name, id: sum[:20]}
}

// ID returns the 20-byte key identifier.
func (k SyntheticKey) ID() []byte { return k.id }

// IsZero reports whether the key is the zero value (no identity).
func (k SyntheticKey) IsZero() bool { return len(k.id) == 0 }

// SyntheticConfig describes a synthetic certificate. The zero value of each
// field means "absent": no SKID/AKID extension unless a key is given, no
// KeyUsage extension unless HasKeyUsage, no pathLenConstraint unless
// HasPathLen.
type SyntheticConfig struct {
	Subject Name
	Issuer  Name
	Serial  string

	NotBefore time.Time
	NotAfter  time.Time

	// Key is the subject key pair; SignedBy is the key that signs the
	// certificate. A self-signed certificate uses the same key for both.
	Key      SyntheticKey
	SignedBy SyntheticKey

	// OmitSKID / OmitAKID suppress the key-identifier extensions even when
	// the corresponding keys are known, modelling certificates that lack
	// them (Table 2 test 5 includes a no-KID candidate).
	OmitSKID bool
	OmitAKID bool

	// AKIDOverride, when non-nil, replaces the derived AKID with an
	// arbitrary (typically mismatching) value.
	AKIDOverride []byte

	KeyUsage    KeyUsage
	HasKeyUsage bool

	IsCA                  bool
	BasicConstraintsValid bool
	// MaxPathLen is used only when HasPathLen is true.
	MaxPathLen int
	HasPathLen bool

	DNSNames    []string
	IPAddresses []string

	AIAIssuerURLs []string

	ExtKeyUsages []ExtKeyUsage

	PermittedDNSDomains []string
	ExcludedDNSDomains  []string

	// WeakSignature marks the simulated signature as using a deprecated
	// algorithm.
	WeakSignature bool
}

// NewSynthetic builds a synthetic certificate. Raw is a canonical text
// encoding of every field, so two certificates built from identical configs
// are bit-for-bit duplicates and any field difference changes the encoding —
// the properties the duplicate detector relies on.
func NewSynthetic(cfg SyntheticConfig) *Certificate {
	c := &Certificate{
		Subject:               cfg.Subject,
		Issuer:                cfg.Issuer,
		SerialNumber:          cfg.Serial,
		NotBefore:             cfg.NotBefore,
		NotAfter:              cfg.NotAfter,
		KeyUsage:              cfg.KeyUsage,
		HasKeyUsage:           cfg.HasKeyUsage,
		IsCA:                  cfg.IsCA,
		BasicConstraintsValid: cfg.BasicConstraintsValid,
		MaxPathLen:            MaxPathLenUnset,
		DNSNames:              append([]string(nil), cfg.DNSNames...),
		IPAddresses:           append([]string(nil), cfg.IPAddresses...),
		AIAIssuerURLs:         append([]string(nil), cfg.AIAIssuerURLs...),
		ExtKeyUsages:          append([]ExtKeyUsage(nil), cfg.ExtKeyUsages...),
		PermittedDNSDomains:   append([]string(nil), cfg.PermittedDNSDomains...),
		ExcludedDNSDomains:    append([]string(nil), cfg.ExcludedDNSDomains...),
		WeakSignature:         cfg.WeakSignature,
		PublicKeyID:           cfg.Key.ID(),
		SignedByKeyID:         cfg.SignedBy.ID(),
	}
	if cfg.HasPathLen {
		c.MaxPathLen = cfg.MaxPathLen
	}
	if !cfg.OmitSKID && !cfg.Key.IsZero() {
		c.SubjectKeyID = cfg.Key.ID()
	}
	switch {
	case cfg.AKIDOverride != nil:
		c.AuthorityKeyID = append([]byte(nil), cfg.AKIDOverride...)
	case !cfg.OmitAKID && !cfg.SignedBy.IsZero():
		c.AuthorityKeyID = cfg.SignedBy.ID()
	}
	c.Raw = encodeSynthetic(c)
	return c
}

// encodeSynthetic renders every semantic field into a canonical byte string.
func encodeSynthetic(c *Certificate) []byte {
	var b strings.Builder
	b.WriteString("synthetic-cert/v1\n")
	fmt.Fprintf(&b, "subject=%s\n", c.Subject)
	fmt.Fprintf(&b, "issuer=%s\n", c.Issuer)
	fmt.Fprintf(&b, "serial=%s\n", c.SerialNumber)
	fmt.Fprintf(&b, "notBefore=%d\n", c.NotBefore.Unix())
	fmt.Fprintf(&b, "notAfter=%d\n", c.NotAfter.Unix())
	fmt.Fprintf(&b, "skid=%x\n", c.SubjectKeyID)
	fmt.Fprintf(&b, "akid=%x\n", c.AuthorityKeyID)
	fmt.Fprintf(&b, "keyUsage=%d/%v\n", c.KeyUsage, c.HasKeyUsage)
	fmt.Fprintf(&b, "ca=%v/%v pathLen=%d\n", c.IsCA, c.BasicConstraintsValid, c.MaxPathLen)
	fmt.Fprintf(&b, "dns=%s\n", strings.Join(sortedCopy(c.DNSNames), ","))
	fmt.Fprintf(&b, "ip=%s\n", strings.Join(sortedCopy(c.IPAddresses), ","))
	fmt.Fprintf(&b, "aia=%s\n", strings.Join(c.AIAIssuerURLs, ","))
	fmt.Fprintf(&b, "eku=%v\n", c.ExtKeyUsages)
	fmt.Fprintf(&b, "ncPermit=%s\n", strings.Join(c.PermittedDNSDomains, ","))
	fmt.Fprintf(&b, "ncExclude=%s\n", strings.Join(c.ExcludedDNSDomains, ","))
	fmt.Fprintf(&b, "weakSig=%v\n", c.WeakSignature)
	fmt.Fprintf(&b, "pub=%x\n", c.PublicKeyID)
	fmt.Fprintf(&b, "sig=%x\n", c.SignedByKeyID)
	return []byte(b.String())
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

// SyntheticRoot builds a self-signed synthetic CA certificate with a ten-year
// validity starting at base.
func SyntheticRoot(name string, base time.Time) *Certificate {
	key := NewSyntheticKey(name)
	subject := Name{CommonName: name, Organization: name + " Trust Services"}
	return NewSynthetic(SyntheticConfig{
		Subject:               subject,
		Issuer:                subject,
		Serial:                "root-" + name,
		NotBefore:             base,
		NotAfter:              base.AddDate(10, 0, 0),
		Key:                   key,
		SignedBy:              key,
		KeyUsage:              KeyUsageCertSign | KeyUsageCRLSign,
		HasKeyUsage:           true,
		IsCA:                  true,
		BasicConstraintsValid: true,
	})
}

// SyntheticIntermediate builds a CA certificate for subjectCN issued by
// parent. The parent must itself be synthetic.
func SyntheticIntermediate(subjectCN string, parent *Certificate, base time.Time) *Certificate {
	key := NewSyntheticKey(subjectCN)
	return NewSynthetic(SyntheticConfig{
		Subject:               Name{CommonName: subjectCN, Organization: parent.Subject.Organization},
		Issuer:                parent.Subject,
		Serial:                "int-" + subjectCN,
		NotBefore:             base,
		NotAfter:              base.AddDate(5, 0, 0),
		Key:                   key,
		SignedBy:              SyntheticKey{name: "", id: parent.PublicKeyID},
		KeyUsage:              KeyUsageCertSign | KeyUsageCRLSign,
		HasKeyUsage:           true,
		IsCA:                  true,
		BasicConstraintsValid: true,
	})
}

// SyntheticLeaf builds an end-entity certificate for domain issued by parent.
func SyntheticLeaf(domain, serial string, parent *Certificate, notBefore, notAfter time.Time) *Certificate {
	key := NewSyntheticKey("leaf:" + domain + ":" + serial)
	return NewSynthetic(SyntheticConfig{
		Subject:               Name{CommonName: domain},
		Issuer:                parent.Subject,
		Serial:                serial,
		NotBefore:             notBefore,
		NotAfter:              notAfter,
		Key:                   key,
		SignedBy:              SyntheticKey{name: "", id: parent.PublicKeyID},
		KeyUsage:              KeyUsageDigitalSignature | KeyUsageKeyEncipherment,
		HasKeyUsage:           true,
		BasicConstraintsValid: true,
		DNSNames:              []string{domain},
	})
}

// KeyOf returns a SyntheticKey referring to cert's existing public key,
// letting callers sign further synthetic certificates with it (used for
// cross-signing and for crafting AKID-correct variants).
func KeyOf(cert *Certificate) SyntheticKey {
	return SyntheticKey{name: "", id: cert.PublicKeyID}
}

// KeyFromID wraps a raw key identifier (a PublicKeyID or SignedByKeyID taken
// from an existing synthetic certificate) as a SyntheticKey. A nil or empty
// id yields the zero key.
func KeyFromID(id []byte) SyntheticKey {
	if len(id) == 0 {
		return SyntheticKey{}
	}
	return SyntheticKey{id: append([]byte(nil), id...)}
}

// SyntheticConfigOf reverse-maps a synthetic certificate to a SyntheticConfig
// that rebuilds it bit-identically: NewSynthetic(SyntheticConfigOf(c)) has
// Raw equal to c.Raw. Mutation operators use it to rebuild a certificate with
// one field perturbed instead of constructing configs from scratch.
func SyntheticConfigOf(c *Certificate) SyntheticConfig {
	cfg := SyntheticConfig{
		Subject:               c.Subject,
		Issuer:                c.Issuer,
		Serial:                c.SerialNumber,
		NotBefore:             c.NotBefore,
		NotAfter:              c.NotAfter,
		Key:                   KeyFromID(c.PublicKeyID),
		SignedBy:              KeyFromID(c.SignedByKeyID),
		KeyUsage:              c.KeyUsage,
		HasKeyUsage:           c.HasKeyUsage,
		IsCA:                  c.IsCA,
		BasicConstraintsValid: c.BasicConstraintsValid,
		DNSNames:              append([]string(nil), c.DNSNames...),
		IPAddresses:           append([]string(nil), c.IPAddresses...),
		AIAIssuerURLs:         append([]string(nil), c.AIAIssuerURLs...),
		ExtKeyUsages:          append([]ExtKeyUsage(nil), c.ExtKeyUsages...),
		PermittedDNSDomains:   append([]string(nil), c.PermittedDNSDomains...),
		ExcludedDNSDomains:    append([]string(nil), c.ExcludedDNSDomains...),
		WeakSignature:         c.WeakSignature,
	}
	if c.MaxPathLen != MaxPathLenUnset {
		cfg.MaxPathLen = c.MaxPathLen
		cfg.HasPathLen = true
	}
	cfg.OmitSKID = c.SubjectKeyID == nil && !cfg.Key.IsZero()
	switch {
	case c.AuthorityKeyID == nil:
		cfg.OmitAKID = !cfg.SignedBy.IsZero()
	case !bytes.Equal(c.AuthorityKeyID, c.SignedByKeyID):
		cfg.AKIDOverride = append([]byte(nil), c.AuthorityKeyID...)
	}
	return cfg
}
