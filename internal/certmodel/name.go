package certmodel

import (
	"crypto/x509/pkix"
	"strings"
)

// Name is a simplified X.501 distinguished name. It carries the attributes
// that matter for chain construction and compliance analysis: chain builders
// compare the child's issuer DN against the parent's subject DN, and the
// leaf-placement analyzer inspects the CommonName.
//
// Name is a comparable value type so it can be used directly as a map key.
type Name struct {
	CommonName         string
	Organization       string
	OrganizationalUnit string
	Country            string
}

// IsZero reports whether every attribute of the name is empty. Certificates
// with empty subjects exist in the wild (the paper's "Other" leaf category
// includes empty-CN test certificates).
func (n Name) IsZero() bool {
	return n == Name{}
}

// String renders the name in the conventional comma-separated RDN form,
// omitting empty attributes, e.g. "C=US, O=DigiCert Inc, CN=DigiCert TLS CA".
func (n Name) String() string {
	parts := make([]string, 0, 4)
	if n.Country != "" {
		parts = append(parts, "C="+n.Country)
	}
	if n.Organization != "" {
		parts = append(parts, "O="+n.Organization)
	}
	if n.OrganizationalUnit != "" {
		parts = append(parts, "OU="+n.OrganizationalUnit)
	}
	if n.CommonName != "" {
		parts = append(parts, "CN="+n.CommonName)
	}
	if len(parts) == 0 {
		return "<empty>"
	}
	return strings.Join(parts, ", ")
}

// FromPKIXName converts a pkix.Name from a parsed X.509 certificate into a
// Name, keeping the first value of each multi-valued attribute.
func FromPKIXName(p pkix.Name) Name {
	n := Name{CommonName: p.CommonName}
	if len(p.Organization) > 0 {
		n.Organization = p.Organization[0]
	}
	if len(p.OrganizationalUnit) > 0 {
		n.OrganizationalUnit = p.OrganizationalUnit[0]
	}
	if len(p.Country) > 0 {
		n.Country = p.Country[0]
	}
	return n
}

// ToPKIXName converts the Name back to a pkix.Name for use in certificate
// templates handed to crypto/x509.
func (n Name) ToPKIXName() pkix.Name {
	p := pkix.Name{CommonName: n.CommonName}
	if n.Organization != "" {
		p.Organization = []string{n.Organization}
	}
	if n.OrganizationalUnit != "" {
		p.OrganizationalUnit = []string{n.OrganizationalUnit}
	}
	if n.Country != "" {
		p.Country = []string{n.Country}
	}
	return p
}
